package mcs

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// jsonRetryClient is retryClient over the JSON wire: same attempts, same
// backoff, different encoding. The chaos matrix below must behave
// identically through it.
func jsonRetryClient(url string) *Client {
	return NewClient(url, testAlice,
		WithTransport(TransportJSON),
		WithRetry(5),
		WithBackoff(time.Millisecond, 4*time.Millisecond))
}

// TestChaosFaultMatrixJSON re-runs the exactly-once fault matrix over the
// JSON transport: every mutating operation, against faults injected at
// dispatch, post-handler, transport and database sites, must succeed after
// retries and be applied exactly once. This is the chaos proof that the
// retry contract — pinned request IDs, idempotency keys, the server replay
// cache — carried over to the new wire unchanged.
func TestChaosFaultMatrixJSON(t *testing.T) {
	sites := []struct {
		name string
		rule func(op string) FaultRule
	}{
		{"dispatch-error", func(op string) FaultRule {
			return FaultRule{Site: FaultSiteDispatch, Op: op, Kind: FaultKindError, Times: 3}
		}},
		{"after-error", func(op string) FaultRule {
			return FaultRule{Site: FaultSiteAfter, Op: op, Kind: FaultKindError, Times: 3}
		}},
		{"transport-partial", func(op string) FaultRule {
			return FaultRule{Site: FaultSiteTransport, Op: op, Kind: FaultKindPartial, Times: 3}
		}},
		{"db-error", func(op string) FaultRule {
			return FaultRule{Site: FaultSiteDB, Kind: FaultKindError, Times: 3}
		}},
	}
	for _, seed := range chaosSeeds(t) {
		for _, site := range sites {
			for _, op := range chaosOps() {
				t.Run(fmt.Sprintf("seed%d/%s/%s", seed, site.name, op.name), func(t *testing.T) {
					inj := NewFaultInjector(seed, site.rule(op.name))
					inj.SetEnabled(false) // setup and verify run fault-free
					_, url := startServer(t, ServerOptions{FaultInjector: inj})
					admin := NewClient(url, testAlice)
					if op.setup != nil {
						op.setup(t, admin)
					}

					c := jsonRetryClient(url)
					inj.SetEnabled(true)
					err := op.invoke(c)
					inj.SetEnabled(false)

					if err != nil {
						t.Fatalf("%s over json through %s faults = %v, want success after retries",
							op.name, site.name, err)
					}
					if got := inj.Total(); got != 3 {
						t.Fatalf("faults injected = %d, want all 3", got)
					}
					if st := c.RetryStats(); st.Retries != 3 {
						t.Fatalf("retries = %d, want exactly 3 (one per injected fault)", st.Retries)
					}
					op.verify(t, admin)
				})
			}
		}
	}
}

// TestChaosNoRetrySentinelsJSON pins the sentinel contract over the JSON
// wire with retries off: injected server-side errors surface as
// ErrUnavailable, severed replies as ErrTransport — byte-for-byte the SOAP
// wire's behavior, because both decode the same "Server.<Code>" strings.
func TestChaosNoRetrySentinelsJSON(t *testing.T) {
	cases := []struct {
		name string
		rule FaultRule
		want error
	}{
		{"dispatch-error", FaultRule{Site: FaultSiteDispatch, Kind: FaultKindError, Times: 1}, ErrUnavailable},
		{"after-error", FaultRule{Site: FaultSiteAfter, Kind: FaultKindError, Times: 1}, ErrUnavailable},
		{"db-error", FaultRule{Site: FaultSiteDB, Kind: FaultKindError, Times: 1}, ErrUnavailable},
		{"transport-partial", FaultRule{Site: FaultSiteTransport, Kind: FaultKindPartial, Times: 1}, ErrTransport},
		{"transport-drop", FaultRule{Site: FaultSiteTransport, Kind: FaultKindDrop, Times: 1}, ErrTransport},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj := NewFaultInjector(1, tc.rule)
			_, url := startServer(t, ServerOptions{FaultInjector: inj})
			c := NewClient(url, testAlice, WithTransport(TransportJSON)) // retries off
			_, err := c.CreateFile(FileSpec{Name: "s.dat"})
			if !Retryable(err) {
				t.Fatalf("err = %v, want retryable", err)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want errors.Is %v", err, tc.want)
			}
		})
	}
}

// TestJSONRetryReplayCache focuses the exactly-once witness: a reply lost
// after commit (the after-site fault) forces a retry whose idempotency key
// hits the server's replay cache — one file version, one audit record, and
// a replay counted in /statz.
func TestJSONRetryReplayCache(t *testing.T) {
	inj := NewFaultInjector(1, FaultRule{
		Site: FaultSiteAfter, Op: "createFile", Kind: FaultKindError, Times: 1,
	})
	srv, url := startServer(t, ServerOptions{FaultInjector: inj})
	c := jsonRetryClient(url)
	if _, err := c.CreateFile(FileSpec{Name: "once.dat", Audited: true}); err != nil {
		t.Fatalf("create through lost reply: %v", err)
	}
	if st := c.RetryStats(); st.Retries != 1 {
		t.Fatalf("retries = %d, want 1", st.Retries)
	}
	vs, err := c.FileVersions("once.dat")
	if err != nil || len(vs) != 1 {
		t.Fatalf("versions = %+v, %v; want exactly one", vs, err)
	}
	auditCount(t, NewClient(url, testAlice), ObjectFile, "once.dat", 1)
	if hits := srv.Catalog().ReplayHits(); hits != 1 {
		t.Fatalf("replay cache hits = %d, want 1", hits)
	}
}
