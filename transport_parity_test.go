package mcs

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"mcs/internal/jsonwire"
	"mcs/internal/soap"
)

// fixedClock pins catalog timestamps so two servers running the same script
// produce byte-identical state — IDs are deterministic sequences already.
func fixedClock() time.Time { return time.Date(2004, 6, 1, 12, 0, 0, 0, time.UTC) }

// parityStep is one scripted call in the cross-transport parity suite: the
// operation it exercises on the wire and the typed client call that drives
// it. Result values and error sentinels must come out identical over SOAP
// and JSON.
type parityStep struct {
	op  string
	run func(c *Client) (any, error)
}

// parityScript exercises every registered operation at least once, in
// dependency order, including representative error legs. The op field feeds
// the coverage check against the server's dispatch table.
func parityScript() []parityStep {
	dt := "hdf5"
	return []parityStep{
		{"ping", func(c *Client) (any, error) { return c.Ping() }},
		{"defineAttribute", func(c *Client) (any, error) { return c.DefineAttribute("color", AttrString, "hue") }},
		{"defineAttribute", func(c *Client) (any, error) { return c.DefineAttribute("size", AttrInt, "bytes") }},
		{"listAttributeDefs", func(c *Client) (any, error) { return c.ListAttributeDefs() }},
		{"createCollection", func(c *Client) (any, error) {
			return c.CreateCollection(CollectionSpec{Name: "col", Description: "run data", Audited: true})
		}},
		{"createCollection", func(c *Client) (any, error) { return c.CreateCollection(CollectionSpec{Name: "dst"}) }},
		{"getCollection", func(c *Client) (any, error) { return c.GetCollection("col") }},
		{"createFile", func(c *Client) (any, error) {
			return c.CreateFile(FileSpec{
				Name: "a.dat", Collection: "col", DataType: "binary", Audited: true,
				Provenance: "generated", Attributes: []Attribute{{Name: "color", Value: String("red")}},
			})
		}},
		{"createFile", func(c *Client) (any, error) { return c.CreateFile(FileSpec{Name: "b.dat", Collection: "col"}) }},
		// Error leg: duplicate create must map to the same sentinel.
		{"createFile", func(c *Client) (any, error) { return c.CreateFile(FileSpec{Name: "a.dat"}) }},
		{"getFile", func(c *Client) (any, error) { return c.GetFile("a.dat", 0) }},
		// Error leg: missing object.
		{"getFile", func(c *Client) (any, error) { return c.GetFile("nope.dat", 0) }},
		{"updateFile", func(c *Client) (any, error) { return c.UpdateFile("a.dat", 0, FileUpdate{DataType: &dt}) }},
		{"fileVersions", func(c *Client) (any, error) { return c.FileVersions("a.dat") }},
		{"setAttribute", func(c *Client) (any, error) {
			return nil, c.SetAttribute(ObjectFile, "a.dat", "size", Int(42))
		}},
		{"getAttributes", func(c *Client) (any, error) { return c.GetAttributes(ObjectFile, "a.dat") }},
		{"query", func(c *Client) (any, error) {
			return c.RunQuery(Query{Predicates: []Predicate{{Attribute: "color", Op: OpEq, Value: String("red")}}})
		}},
		{"queryPage", func(c *Client) (any, error) {
			names, next, err := c.RunQueryPage(Query{Predicates: []Predicate{
				{Attribute: "color", Op: OpEq, Value: String("red")}}}, 1, "")
			return []any{names, next}, err
		}},
		{"queryAttrs", func(c *Client) (any, error) {
			return c.RunQueryAttrs(Query{Predicates: []Predicate{
				{Attribute: "color", Op: OpEq, Value: String("red")}}}, []string{"size"})
		}},
		{"collectionContents", func(c *Client) (any, error) {
			files, subs, err := c.CollectionContents("col")
			return []any{files, subs}, err
		}},
		{"collectionContentsPage", func(c *Client) (any, error) {
			files, subs, next, err := c.CollectionContentsPage("col", 1, "")
			return []any{files, subs, next}, err
		}},
		{"listCollections", func(c *Client) (any, error) { return c.ListCollections("") }},
		{"createView", func(c *Client) (any, error) {
			return c.CreateView(ViewSpec{Name: "v", Description: "subset"})
		}},
		{"addToView", func(c *Client) (any, error) { return nil, c.AddToView("v", ObjectFile, "a.dat") }},
		{"viewContents", func(c *Client) (any, error) { return c.ViewContents("v") }},
		{"expandView", func(c *Client) (any, error) { return c.ExpandView("v") }},
		{"removeFromView", func(c *Client) (any, error) { return nil, c.RemoveFromView("v", ObjectFile, "a.dat") }},
		{"annotate", func(c *Client) (any, error) { return c.Annotate(ObjectFile, "a.dat", "looks good") }},
		{"getAnnotations", func(c *Client) (any, error) { return c.Annotations(ObjectFile, "a.dat") }},
		{"addProvenance", func(c *Client) (any, error) { return nil, c.AddProvenance("a.dat", 0, "recalibrated") }},
		{"getProvenance", func(c *Client) (any, error) { return c.Provenance("a.dat", 0) }},
		{"auditLog", func(c *Client) (any, error) { return c.AuditLog(ObjectFile, "a.dat") }},
		{"grant", func(c *Client) (any, error) { return nil, c.Grant(ObjectFile, "a.dat", testBob, PermRead) }},
		{"revoke", func(c *Client) (any, error) { return nil, c.Revoke(ObjectFile, "a.dat", testBob, PermRead) }},
		{"registerWriter", func(c *Client) (any, error) {
			return nil, c.RegisterWriter(Writer{DN: testAlice, Institution: "ISI", Email: "alice@isi.edu"})
		}},
		{"getWriter", func(c *Client) (any, error) { return c.GetWriter(testAlice) }},
		{"registerExternalCatalog", func(c *Client) (any, error) {
			return c.RegisterExternalCatalog(ExternalCatalog{Name: "rc", Type: "replica", Host: "rc.isi.edu"})
		}},
		{"listExternalCatalogs", func(c *Client) (any, error) { return c.ListExternalCatalogs() }},
		{"batchWrite", func(c *Client) (any, error) {
			return c.BatchWrite([]BatchOp{
				{CreateFile: &FileSpec{Name: "bw1.dat", Collection: "col"}},
				{CreateFile: &FileSpec{Name: "bw2.dat", Collection: "col"}},
			})
		}},
		{"moveFile", func(c *Client) (any, error) { return nil, c.MoveFile("b.dat", 0, "dst") }},
		{"unsetAttribute", func(c *Client) (any, error) { return nil, c.UnsetAttribute(ObjectFile, "a.dat", "size") }},
		{"deleteFile", func(c *Client) (any, error) { return nil, c.DeleteFile("bw2.dat", 0) }},
		{"deleteView", func(c *Client) (any, error) { return nil, c.DeleteView("v") }},
		// Error leg: non-empty collection refuses deletion.
		{"deleteCollection", func(c *Client) (any, error) { return nil, c.DeleteCollection("col") }},
		{"deleteCollection", func(c *Client) (any, error) {
			if err := c.DeleteFile("b.dat", 0); err != nil {
				return nil, err
			}
			return nil, c.DeleteCollection("dst")
		}},
		{"stats", func(c *Client) (any, error) { return c.Stats() }},
		{"discoverySummary", func(c *Client) (any, error) { return c.FetchDiscoverySummary(0.001) }},
	}
}

// sentinelName classifies an error by which package sentinel it matches, so
// the parity comparison checks error identity — the cross-wire contract —
// rather than message rendering, which legitimately differs per encoding.
func sentinelName(err error) string {
	if err == nil {
		return ""
	}
	for _, fs := range faultSentinels {
		if errors.Is(err, fs.Err) {
			return fs.Code
		}
	}
	if errors.Is(err, ErrTransport) {
		return "Transport"
	}
	return "unclassified: " + err.Error()
}

// runParityScript executes the script against a fresh deterministic server
// over the given transport, returning one (value, sentinel) pair per step.
func runParityScript(t *testing.T, kind TransportKind) (results []any, sentinels []string) {
	t.Helper()
	_, url := startServer(t, ServerOptions{CatalogOptions: Options{Clock: fixedClock}})
	c := NewClient(url, testAlice, WithTransport(kind))
	for i, step := range parityScript() {
		v, err := step.run(c)
		if err != nil {
			v = nil // a failed call's partial value is not part of the contract
		}
		results = append(results, v)
		sentinels = append(sentinels, sentinelName(err))
		if s := sentinels[i]; strings.HasPrefix(s, "unclassified") {
			t.Fatalf("step %d (%s) over %s: %s", i, step.op, kind, s)
		}
	}
	return results, sentinels
}

// TestTransportParityAllOps proves the tentpole claim: every registered
// operation, executed through the same dispatch table over both wires,
// yields identical results and identical error sentinels. Catalog clocks
// are pinned, so even timestamps must match field for field.
func TestTransportParityAllOps(t *testing.T) {
	script := parityScript()

	// Coverage: the script must exercise every operation both wires serve.
	srv, _ := startServer(t, ServerOptions{})
	covered := map[string]bool{}
	for _, step := range script {
		covered[step.op] = true
	}
	for _, op := range srv.Table().Ops() {
		if !covered[op] {
			t.Errorf("parity script does not cover registered op %q", op)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	soapResults, soapSentinels := runParityScript(t, TransportSOAP)
	jsonResults, jsonSentinels := runParityScript(t, TransportJSON)

	for i := range script {
		if soapSentinels[i] != jsonSentinels[i] {
			t.Errorf("step %d (%s): sentinel over soap = %q, over json = %q",
				i, script[i].op, soapSentinels[i], jsonSentinels[i])
		}
		if !reflect.DeepEqual(soapResults[i], jsonResults[i]) {
			t.Errorf("step %d (%s): result mismatch\n soap: %#v\n json: %#v",
				i, script[i].op, soapResults[i], jsonResults[i])
		}
	}
}

// TestTransportMutatingTableParity pins the dispatch table's Mutating flags
// to the client's mutatingActions map: the two ends of the wire must agree
// on which operations carry idempotency keys.
func TestTransportMutatingTableParity(t *testing.T) {
	srv, _ := startServer(t, ServerOptions{})
	ops := srv.Table().Ops()
	for _, op := range ops {
		if got, want := srv.Table().Lookup(op).Mutating, mutatingActions[op]; got != want {
			t.Errorf("table.Lookup(%q).Mutating = %v, mutatingActions = %v", op, got, want)
		}
	}
	// Every client-side mutating action must exist server-side; a typo'd
	// entry would silently drop idempotency keys.
	reg := map[string]bool{}
	for _, op := range ops {
		reg[op] = true
	}
	for op := range mutatingActions {
		if !reg[op] {
			t.Errorf("mutatingActions lists %q, which is not a registered operation", op)
		}
	}
}

// TestTransportOpsEndpoint checks the JSON wire's discovery endpoint lists
// exactly the registered operations.
func TestTransportOpsEndpoint(t *testing.T) {
	srv, url := startServer(t, ServerOptions{})
	resp, err := http.Get(url + "/api/v1/ops")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /api/v1/ops = %d: %s", resp.StatusCode, body)
	}
	for _, op := range srv.Table().Ops() {
		if !strings.Contains(string(body), fmt.Sprintf("%q", op)) {
			t.Errorf("ops listing missing %q: %s", op, body)
		}
	}
}

// TestTransportDisableJSONAPI checks the knob: with the JSON wire off,
// /api/v1 requests fall through to the SOAP dispatcher and fail, while SOAP
// keeps working.
func TestTransportDisableJSONAPI(t *testing.T) {
	_, url := startServer(t, ServerOptions{DisableJSONAPI: true})
	if _, err := NewClient(url, testAlice).Ping(); err != nil {
		t.Fatalf("soap ping with JSON API disabled: %v", err)
	}
	if _, err := NewClient(url, testAlice, WithTransport(TransportJSON)).Ping(); err == nil {
		t.Fatal("json ping succeeded against a server with DisableJSONAPI")
	}
}

// TestTransportMetricsLabels checks dispatch instrumentation separates the
// wires: SOAP calls keep the historical unlabeled series, JSON calls get a
// transport="json" label — so existing dashboards keep working and the new
// wire is observable on its own.
func TestTransportMetricsLabels(t *testing.T) {
	srv, url := startServer(t, ServerOptions{})
	if _, err := NewClient(url, testAlice).Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(url, testAlice, WithTransport(TransportJSON)).Ping(); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := srv.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`mcs_requests_total{op="ping"} 1`,
		`mcs_requests_total{op="ping",transport="json"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if srv.Metrics().Op("ping").Requests() != 1 {
		t.Errorf("soap ping requests = %d, want 1", srv.Metrics().Op("ping").Requests())
	}
	if srv.Metrics().TransportOp("json", "ping").Requests() != 1 {
		t.Errorf("json ping requests = %d, want 1", srv.Metrics().TransportOp("json", "ping").Requests())
	}
}

// TestTransportErrorParity checks the two wires report undecodable replies
// identically: same sentinel, same HTTP status, same body prefix — so
// operators debugging a misbehaving proxy see the same evidence regardless
// of encoding.
func TestTransportErrorParity(t *testing.T) {
	// A "server" that answers every request with an HTML error page.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
		io.WriteString(w, "<html>upstream dead</html>") //nolint:errcheck
	}))
	t.Cleanup(ts.Close)

	type evidence struct{ status, body string }
	var got []evidence
	for _, kind := range []TransportKind{TransportSOAP, TransportJSON} {
		c := NewClient(ts.URL, testAlice, WithTransport(kind))
		_, err := c.Ping()
		if !errors.Is(err, ErrTransport) {
			t.Fatalf("%s against non-wire server: %v, want ErrTransport", kind, err)
		}
		var ste *soap.TransportError
		var jte *jsonwire.TransportError
		switch {
		case errors.As(err, &ste):
			got = append(got, evidence{ste.Status, ste.Body})
		case errors.As(err, &jte):
			got = append(got, evidence{jte.Status, jte.Body})
		default:
			t.Fatalf("%s error %v carries no TransportError", kind, err)
		}
	}
	if got[0].status != got[1].status || got[0].body != got[1].body {
		t.Fatalf("transport error evidence differs:\n soap: %+v\n json: %+v", got[0], got[1])
	}
	if got[0].status == "" || got[0].body == "" {
		t.Fatalf("transport error evidence empty: %+v", got[0])
	}
}
