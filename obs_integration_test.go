package mcs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"mcs/internal/obs"
)

// fetch GETs a diagnostic endpoint and returns its body.
func fetch(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// The /metrics endpoint must reflect real traffic: request counts, error
// counts and latency histograms per operation, in both exposition formats.
func TestMetricsEndpointReflectsTraffic(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	c := NewClient(url, testAlice)

	for i := 0; i < 5; i++ {
		if _, err := c.CreateFile(FileSpec{Name: fmt.Sprintf("m-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := c.GetFile("m-0", 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := c.GetFile("no-such-file", 0); !errors.Is(err, ErrNotFound) {
			t.Fatalf("err = %v, want ErrNotFound", err)
		}
	}

	// Prometheus text format (the default).
	code, text := fetch(t, url+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		`mcs_requests_total{op="createFile"} 5`,
		`mcs_requests_total{op="getFile"} 5`,
		`mcs_errors_total{op="getFile"} 2`,
		`mcs_errors_total{op="createFile"} 0`,
		`mcs_latency_seconds_bucket{op="createFile",le="+Inf"} 5`,
		`mcs_latency_seconds_count{op="getFile"} 5`,
		`mcs_malformed_requests_total 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, text)
		}
	}

	// JSON format.
	code, body := fetch(t, url+"/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("/metrics?format=json status = %d", code)
	}
	var snap struct {
		UptimeSeconds int64 `json:"uptime_seconds"`
		Malformed     int64 `json:"malformed_requests"`
		Operations    map[string]struct {
			Requests int64 `json:"requests"`
			Errors   int64 `json:"errors"`
			InFlight int64 `json:"in_flight"`
			P50US    int64 `json:"p50_us"`
			P99US    int64 `json:"p99_us"`
		} `json:"operations"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("bad /metrics JSON: %v\n%s", err, body)
	}
	cf := snap.Operations["createFile"]
	if cf.Requests != 5 || cf.Errors != 0 || cf.InFlight != 0 {
		t.Fatalf("createFile snapshot = %+v", cf)
	}
	gf := snap.Operations["getFile"]
	if gf.Requests != 5 || gf.Errors != 2 {
		t.Fatalf("getFile snapshot = %+v", gf)
	}
	if cf.P50US <= 0 || cf.P99US < cf.P50US {
		t.Fatalf("createFile quantiles = p50 %d, p99 %d", cf.P50US, cf.P99US)
	}
}

// A single ping must show up in the latency histogram series.
func TestMetricsEndpointContainsHistogram(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	c := NewClient(url, testAlice)
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	_, text := fetch(t, url+"/metrics")
	if !strings.Contains(text, `mcs_latency_seconds_bucket{op="ping",le="+Inf"} 1`) ||
		!strings.Contains(text, `mcs_latency_seconds_count{op="ping"} 1`) {
		t.Fatalf("/metrics missing ping histogram:\n%s", text)
	}
}

// /healthz and /statz report liveness and catalog row counts.
func TestHealthzAndStatz(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	c := NewClient(url, testAlice)
	for i := 0; i < 3; i++ {
		if _, err := c.CreateFile(FileSpec{Name: fmt.Sprintf("s-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}

	code, body := fetch(t, url+"/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = fetch(t, url+"/statz")
	if code != http.StatusOK {
		t.Fatalf("/statz status = %d", code)
	}
	var st struct {
		Files int `json:"files"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("bad /statz JSON: %v\n%s", err, body)
	}
	if st.Files != 3 {
		t.Fatalf("/statz files = %d, want 3", st.Files)
	}
}

// Disabling the endpoints must hide them without affecting SOAP dispatch.
func TestEndpointsDisabled(t *testing.T) {
	_, url := startServer(t, ServerOptions{Obs: ObsOptions{DisableEndpoints: true}})
	c := NewClient(url, testAlice)
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// The paths fall through to the SOAP dispatcher, which never renders
	// metrics or stats content.
	for _, path := range []string{"/metrics", "/healthz", "/statz"} {
		_, body := fetch(t, url+path)
		if strings.Contains(body, "mcs_requests_total") || strings.Contains(body, "uptime_seconds") || body == "ok\n" {
			t.Fatalf("GET %s still serves diagnostics with endpoints disabled: %q", path, body)
		}
	}
}

// Metrics must stay consistent when many clients hammer the server
// concurrently (run under -race).
func TestMetricsConcurrentClients(t *testing.T) {
	srv, url := startServer(t, ServerOptions{})
	const workers, callsPerWorker = 8, 15

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewClient(url, testAlice) // one client host per worker
			for i := 0; i < callsPerWorker; i++ {
				name := fmt.Sprintf("conc-%02d-%03d", w, i)
				if _, err := c.CreateFile(FileSpec{Name: name}); err != nil {
					t.Errorf("create %s: %v", name, err)
					return
				}
				if _, err := c.GetFile(name, 0); err != nil {
					t.Errorf("get %s: %v", name, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	reg := srv.Metrics()
	if reg == nil {
		t.Fatal("metrics registry is nil")
	}
	want := int64(workers * callsPerWorker)
	if got := reg.Op("createFile").Requests(); got != want {
		t.Fatalf("createFile requests = %d, want %d", got, want)
	}
	if got := reg.Op("getFile").Requests(); got != want {
		t.Fatalf("getFile requests = %d, want %d", got, want)
	}
	if got := reg.Op("createFile").Errors(); got != 0 {
		t.Fatalf("createFile errors = %d", got)
	}
	if got := reg.Op("createFile").Latency().Count(); got != want {
		t.Fatalf("createFile latency samples = %d, want %d", got, want)
	}
}

// A request ID supplied by the client must travel through the SOAP layer
// into the audit record of the write it caused; without one, the client
// generates a fresh ID per call.
func TestRequestIDPropagationEndToEnd(t *testing.T) {
	_, url := startServer(t, ServerOptions{})

	// Caller-supplied ID (e.g. from an upstream workflow system).
	c := NewClient(url, testAlice)
	c.soap.Header = http.Header{}
	c.soap.Header.Set(obs.RequestIDHeader, "workflow-step-17")
	if _, err := c.CreateFile(FileSpec{Name: "traced", Audited: true}); err != nil {
		t.Fatal(err)
	}
	recs, err := c.AuditLog(ObjectFile, "traced")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].RequestID != "workflow-step-17" {
		t.Fatalf("audit records = %+v, want RequestID workflow-step-17", recs)
	}

	// Client-generated IDs: fresh, well-formed, distinct per call.
	g := NewClient(url, testAlice)
	if _, err := g.CreateFile(FileSpec{Name: "gen-a", Audited: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.CreateFile(FileSpec{Name: "gen-b", Audited: true}); err != nil {
		t.Fatal(err)
	}
	idPattern := regexp.MustCompile(`^[0-9a-f]{16}$`)
	var ids []string
	for _, name := range []string{"gen-a", "gen-b"} {
		recs, err := g.AuditLog(ObjectFile, name)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || !idPattern.MatchString(recs[0].RequestID) {
			t.Fatalf("audit for %s = %+v, want generated hex request ID", name, recs)
		}
		ids = append(ids, recs[0].RequestID)
	}
	if ids[0] == ids[1] {
		t.Fatalf("request IDs not unique per call: %q", ids[0])
	}

	// With client-side propagation disabled the server mints its own ID,
	// so audit records stay correlatable.
	d := NewClient(url, testAlice, WithRequestIDHeader(""))
	if _, err := d.CreateFile(FileSpec{Name: "untraced", Audited: true}); err != nil {
		t.Fatal(err)
	}
	recs, err = d.AuditLog(ObjectFile, "untraced")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !idPattern.MatchString(recs[0].RequestID) {
		t.Fatalf("audit records = %+v, want server-minted hex request ID", recs)
	}
}

// syncLogBuffer is a goroutine-safe sink for the slow-op logger.
type syncLogBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncLogBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncLogBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// With a tiny threshold every operation is "slow" and must be logged with
// its operation name, request ID and caller DN.
func TestSlowOpLogEndToEnd(t *testing.T) {
	var buf syncLogBuffer
	_, url := startServer(t, ServerOptions{Obs: ObsOptions{
		SlowOpThreshold: time.Nanosecond,
		SlowOpLogger:    log.New(&buf, "", 0),
	}})
	c := NewClient(url, testAlice)
	c.soap.Header = http.Header{}
	c.soap.Header.Set(obs.RequestIDHeader, "slow-req-1")
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "slow-op op=ping") ||
		!strings.Contains(out, "req=slow-req-1") ||
		!strings.Contains(out, "threshold=1ns") {
		t.Fatalf("slow-op log = %q", out)
	}
}

// Every sentinel the catalog can raise must survive the SOAP round trip:
// the client error matches the same sentinel with errors.Is, and the
// server's human-readable message is preserved.
func TestFaultSentinelRoundTrip(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	c := NewClient(url, testAlice)

	// Fixtures shared by the trigger functions below.
	if _, err := c.DefineAttribute("dup", AttrString, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateCollection(CollectionSpec{Name: "full"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateFile(FileSpec{Name: "inside", Collection: "full"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateView(ViewSpec{Name: "self"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateFile(FileSpec{Name: "multi"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateFile(FileSpec{Name: "multi"}); err != nil {
		t.Fatal(err)
	}

	// A second server with authorization enforced, for ErrDenied.
	_, authzURL := startServer(t, ServerOptions{
		CatalogOptions: Options{Owner: testAlice, EnforceAuthz: true},
	})
	bob := NewClient(authzURL, testBob)

	cases := []struct {
		sentinel error
		name     string
		trigger  func() error
	}{
		{ErrNotFound, "ErrNotFound", func() error {
			_, err := c.GetFile("no-such", 0)
			return err
		}},
		{ErrExists, "ErrExists", func() error {
			_, err := c.DefineAttribute("dup", AttrString, "")
			return err
		}},
		{ErrDenied, "ErrDenied", func() error {
			_, err := bob.CreateFile(FileSpec{Name: "bobs"})
			return err
		}},
		{ErrInvalidInput, "ErrInvalidInput", func() error {
			_, err := c.CreateFile(FileSpec{})
			return err
		}},
		{ErrCycle, "ErrCycle", func() error {
			return c.AddToView("self", ObjectView, "self")
		}},
		{ErrNotEmpty, "ErrNotEmpty", func() error {
			return c.DeleteCollection("full")
		}},
		{ErrAmbiguousFile, "ErrAmbiguousFile", func() error {
			_, err := c.GetFile("multi", 0)
			return err
		}},
	}
	for _, tc := range cases {
		err := tc.trigger()
		if err == nil {
			t.Errorf("%s: trigger returned nil", tc.name)
			continue
		}
		if !errors.Is(err, tc.sentinel) {
			t.Errorf("%s: errors.Is failed on %v", tc.name, err)
		}
		if err.Error() == "" || !strings.Contains(err.Error(), "soap fault") {
			t.Errorf("%s: message lost: %q", tc.name, err)
		}
	}
}

// The fault mapping table must cover every sentinel the package exports,
// and every entry must round-trip code -> sentinel -> code.
func TestFaultSentinelTableExhaustive(t *testing.T) {
	all := map[string]error{
		"ErrNotFound":      ErrNotFound,
		"ErrExists":        ErrExists,
		"ErrDenied":        ErrDenied,
		"ErrInvalidInput":  ErrInvalidInput,
		"ErrCycle":         ErrCycle,
		"ErrNotEmpty":      ErrNotEmpty,
		"ErrAmbiguousFile": ErrAmbiguousFile,
		"ErrUnavailable":   ErrUnavailable,
		"ErrPartialResult": ErrPartialResult,
	}
	// ErrTransport is deliberately absent: it is a client-side diagnosis
	// (no decodable reply), never a wire fault code.
	if len(faultSentinels) != len(all) {
		t.Fatalf("faultSentinels has %d entries, package exports %d sentinels",
			len(faultSentinels), len(all))
	}
	covered := map[string]bool{}
	for name, sentinel := range all {
		code := faultCodeFor(fmt.Errorf("wrapped: %w", sentinel))
		if code == "" {
			t.Errorf("%s missing from faultSentinels", name)
			continue
		}
		if covered[code] {
			t.Errorf("fault code %q mapped twice", code)
		}
		covered[code] = true
		back := sentinelForFault("soapenv:Server." + code)
		if back != sentinel { //nolint:errorlint // table stores exact sentinels
			t.Errorf("%s: round trip gave %v", name, back)
		}
	}
	// Unknown and malformed codes map to nothing.
	if sentinelForFault("soapenv:Server.Bogus") != nil || sentinelForFault("soapenv:Server") != nil {
		t.Error("unknown fault codes must not map to sentinels")
	}
	// A generic server error carries no code suffix.
	if code := faultCodeFor(errors.New("disk on fire")); code != "" {
		t.Errorf("generic error mapped to %q", code)
	}
}

// Context cancellation must abort client calls at the mcs level, and a
// transport error must not be mistaken for a catalog sentinel.
func TestClientContextCancellation(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	c := NewClient(url, testAlice)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.GetFileCtx(ctx, "whatever", 0)
	if err == nil {
		t.Fatal("call with canceled context succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	if errors.Is(err, ErrNotFound) {
		t.Fatalf("transport error mapped to catalog sentinel: %v", err)
	}

	// A deadline in the future works normally.
	ctx, cancel = context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := c.PingCtx(ctx); err != nil {
		t.Fatal(err)
	}
}
