// Allocation gates for the add path. The write-amplification work (compact
// Values, batched index maintenance, shared-interior btree copies) is easy to
// regress invisibly — throughput benchmarks drift with hardware, but bytes
// allocated per add do not. These tests pin hard budgets well above today's
// measurements and far below the pre-optimization numbers, so a change that
// reintroduces per-row index descent or fat value copies fails in CI.
package mcs_test

import (
	"fmt"
	"runtime"
	"testing"

	"mcs/internal/bench"
	"mcs/internal/core"
)

// allocsPerAdd runs n adds via add and returns (bytes, allocations) per add,
// measured from the heap's monotonic counters so background GC cannot skew
// the numbers downward.
func allocsPerAdd(n int, add func(i int)) (bytesPer, allocsPer float64) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < n; i++ {
		add(i)
	}
	runtime.ReadMemStats(&after)
	return float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
		float64(after.Mallocs-before.Mallocs) / float64(n)
}

// Budgets. A direct add (CreateFile with 10 attributes) currently costs
// ~200 KB / ~800 allocations against a 10k-file catalog; before this PR it
// cost ~900 KB / ~1900 allocations. The gates sit at roughly 2× today's
// numbers: loose enough for tree-depth noise and toolchain drift, tight
// enough that losing any one optimization trips them.
const (
	singleAddByteBudget  = 450_000
	singleAddAllocBudget = 1_800
	batchAddByteBudget   = 150_000 // per add inside a 100-op batch (~54 KB today)
	batchAddAllocBudget  = 500
)

func gateCatalog(t *testing.T) *core.Catalog {
	t.Helper()
	if testing.Short() {
		t.Skip("allocation gate needs a populated catalog")
	}
	cat, err := bench.Load(bench.DefaultConfig(2000))
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// BenchmarkFig17AddSingle and BenchmarkFig17AddBatch100 are the testing.B
// counterparts of the Fig. 17 sweep and of the gates above: pure adds (no
// compensating delete), with B/op and allocs/op reported beside the rate.
func BenchmarkFig17AddSingle(b *testing.B) {
	cat := loadedCatalog(b)
	cfg := bench.DefaultConfig(benchFiles())
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := addSeq.Add(1)
			_, err := cat.CreateFile(bench.LoaderDN, core.FileSpec{
				Name:       fmt.Sprintf("bench-addonly-%d", i),
				DataType:   "binary",
				Attributes: bench.FileAttributes(int(i), cfg.AttrsPerFile),
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig17AddBatch100(b *testing.B) {
	cat := loadedCatalog(b)
	cfg := bench.DefaultConfig(benchFiles())
	const batch = 100
	b.ReportAllocs()
	b.ResetTimer()
	// Each iteration registers one file; whole batches are timed and the
	// per-file cost is what B/op and ns/op report.
	for n := 0; n < b.N; n += batch {
		ops := make([]core.BatchOp, batch)
		for j := range ops {
			i := addSeq.Add(1)
			ops[j] = core.BatchOp{CreateFile: &core.FileSpec{
				Name:       fmt.Sprintf("bench-addonly-%d", i),
				DataType:   "binary",
				Attributes: bench.FileAttributes(int(i), cfg.AttrsPerFile),
			}}
		}
		if _, err := cat.BatchWrite(bench.LoaderDN, ops); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSingleAddAllocBudget(t *testing.T) {
	cat := gateCatalog(t)
	cfg := bench.DefaultConfig(2000)
	add := func(i int) {
		_, err := cat.CreateFile(bench.LoaderDN, core.FileSpec{
			Name:       fmt.Sprintf("alloc-gate-%d", i),
			DataType:   "binary",
			Attributes: bench.FileAttributes(i, cfg.AttrsPerFile),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	add(1 << 20) // warm caches and the attribute-definition lookups
	bytesPer, allocsPer := allocsPerAdd(200, add)
	t.Logf("single add: %.0f B / %.0f allocs per add", bytesPer, allocsPer)
	if bytesPer > singleAddByteBudget {
		t.Errorf("single add allocates %.0f B per add, budget %d", bytesPer, singleAddByteBudget)
	}
	if allocsPer > singleAddAllocBudget {
		t.Errorf("single add makes %.0f allocations per add, budget %d", allocsPer, singleAddAllocBudget)
	}
}

func TestBatch100AddAllocBudget(t *testing.T) {
	cat := gateCatalog(t)
	cfg := bench.DefaultConfig(2000)
	const batch = 100
	seq := 0
	addBatch := func(i int) {
		ops := make([]core.BatchOp, batch)
		for j := range ops {
			seq++
			ops[j] = core.BatchOp{CreateFile: &core.FileSpec{
				Name:       fmt.Sprintf("alloc-gate-batch-%d-%d", i, seq),
				DataType:   "binary",
				Attributes: bench.FileAttributes(seq, cfg.AttrsPerFile),
			}}
		}
		if _, err := cat.BatchWrite(bench.LoaderDN, ops); err != nil {
			t.Fatal(err)
		}
	}
	addBatch(1 << 20)
	bytesPerBatch, allocsPerBatch := allocsPerAdd(5, addBatch)
	bytesPer, allocsPer := bytesPerBatch/batch, allocsPerBatch/batch
	t.Logf("batch-100 add: %.0f B / %.0f allocs per add", bytesPer, allocsPer)
	if bytesPer > batchAddByteBudget {
		t.Errorf("batched add allocates %.0f B per add, budget %d", bytesPer, batchAddByteBudget)
	}
	if allocsPer > batchAddAllocBudget {
		t.Errorf("batched add makes %.0f allocations per add, budget %d", allocsPer, batchAddAllocBudget)
	}
}
