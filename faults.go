package mcs

import (
	"errors"

	"mcs/internal/jsonwire"
	"mcs/internal/mcswire"
	"mcs/internal/soap"
)

// faultSentinels is the exhaustive, symmetric mapping between the catalog's
// sentinel errors and SOAP fault code suffixes. It lives in
// internal/mcswire so the shard router maps errors identically without
// importing this package; every core.Err* sentinel must appear there
// exactly once (TestFaultSentinelTableExhaustive enforces it).
var faultSentinels = mcswire.Sentinels

// ErrTransport marks calls that failed without a decodable reply — on
// either wire: the request never completed, the connection dropped
// mid-body, or an intermediary answered in the wrong encoding. The server
// may or may not have applied the operation, which is exactly why mutating
// calls carry idempotency keys; with retries enabled the client re-sends
// these automatically.
var ErrTransport = errors.New("mcs: transport failure")

// transportError couples a transport failure with the ErrTransport sentinel
// while keeping the underlying chain (url.Error, context errors, io
// errors) reachable for errors.Is/As.
type transportError struct {
	inner error
}

func (e *transportError) Error() string { return e.inner.Error() }

// Unwrap exposes the cause and the sentinel.
func (e *transportError) Unwrap() []error { return []error{e.inner, ErrTransport} }

// faultCodeFor maps a handler error to its fault code suffix ("" when the
// error wraps no known sentinel).
func faultCodeFor(err error) string { return mcswire.CodeForError(err) }

// sentinelForFault maps a wire fault code (e.g. "soapenv:Server.NotFound")
// back to its sentinel, or nil for unrecognized codes.
func sentinelForFault(code string) error { return mcswire.SentinelForCode(code) }

// wireError couples the SOAP fault a call returned with the sentinel its
// fault code names, so callers can both read the server's message and match
// with errors.Is(err, mcs.ErrNotFound) etc.
type wireError struct {
	fault    *soap.Fault
	sentinel error
}

func (e *wireError) Error() string { return e.fault.Error() }

// Unwrap exposes both the fault (for errors.As(*soap.Fault)) and the
// sentinel (for errors.Is).
func (e *wireError) Unwrap() []error { return []error{e.fault, e.sentinel} }

// jsonWireError couples a JSON wire error with the sentinel its code names
// — the JSON-wire twin of wireError, carrying the same "Server.<Code>"
// strings the SOAP faultcode does, so both wires decode to identical
// sentinels.
type jsonWireError struct {
	wire     *jsonwire.Error
	sentinel error
}

func (e *jsonWireError) Error() string { return e.wire.Error() }

// Unwrap exposes both the wire error (for errors.As) and the sentinel (for
// errors.Is).
func (e *jsonWireError) Unwrap() []error { return []error{e.wire, e.sentinel} }

// mapWireError decorates wire faults (SOAP or JSON) with their sentinel and
// transport failures with ErrTransport; other errors (marshal problems,
// context cancellation before send) pass through unchanged.
func mapWireError(err error) error {
	if err == nil {
		return nil
	}
	var fault *soap.Fault
	if errors.As(err, &fault) {
		if sentinel := sentinelForFault(fault.Code); sentinel != nil {
			return &wireError{fault: fault, sentinel: sentinel}
		}
		return err
	}
	var jerr *jsonwire.Error
	if errors.As(err, &jerr) {
		if sentinel := sentinelForFault(jerr.Code); sentinel != nil {
			return &jsonWireError{wire: jerr, sentinel: sentinel}
		}
		return err
	}
	var ste *soap.TransportError
	if errors.As(err, &ste) {
		return &transportError{inner: err}
	}
	var jte *jsonwire.TransportError
	if errors.As(err, &jte) {
		return &transportError{inner: err}
	}
	return err
}
