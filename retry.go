package mcs

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"net/http"
	"reflect"
	"time"

	"mcs/internal/mcswire"
	"mcs/internal/obs"
)

// mutatingActions lists the operations that change catalog state. Retried
// mutations carry an idempotency key so the server applies them exactly
// once no matter how many attempts reach it; read-only operations are
// trivially safe to repeat and need no key. The table lives in
// internal/mcswire so the shard router shares it.
var mutatingActions = mcswire.MutatingOps

// Retryable reports whether err is worth retrying: the server said it was
// temporarily unavailable (ErrUnavailable) or the call failed without a
// decodable reply (ErrTransport). Catalog verdicts — ErrNotFound, ErrExists,
// ErrDenied and the rest — are final and retrying them cannot help.
func Retryable(err error) bool {
	return errors.Is(err, ErrUnavailable) || errors.Is(err, ErrTransport)
}

// RetryStats reports the client's cumulative retry activity.
type RetryStats struct {
	// Attempts counts HTTP round trips issued by retry-enabled calls.
	Attempts int64
	// Retries counts attempts beyond the first, i.e. Attempts minus the
	// number of logical calls.
	Retries int64
}

// RetryStats returns cumulative counters for retry-enabled calls. Calls made
// with retries off (the default) are not counted.
func (c *Client) RetryStats() RetryStats {
	return RetryStats{Attempts: c.attempts.Load(), Retries: c.retries.Load()}
}

// callRetry runs one logical call as up to c.retryAttempts attempts. The
// request correlation ID and (for mutating actions) the idempotency key are
// pinned once and repeated verbatim on every attempt, so the server can
// recognize replays and the audit log shows one logical request.
func (c *Client) callRetry(ctx context.Context, action string, req, resp any) error {
	hdr := make(http.Header)
	// Both wire clients share one Header and keep RequestIDHeader in sync
	// (see NewClient), so reading the SOAP side covers either transport.
	if h := c.soap.RequestIDHeader; h != "" && c.soap.Header.Get(h) == "" {
		hdr.Set(h, obs.NewRequestID())
	}
	if mutatingActions[action] {
		hdr.Set(obs.IdempotencyKeyHeader, obs.NewRequestID())
	}
	for attempt := 1; ; attempt++ {
		c.attempts.Add(1)
		err := mapWireError(c.callOnce(ctx, action, hdr, req, resp, attempt > 1))
		if err == nil || attempt >= c.retryAttempts || ctx.Err() != nil || !Retryable(err) {
			return err
		}
		c.retries.Add(1)
		if c.sleep(ctx, c.backoffFor(attempt)) != nil {
			// The caller's context died while we were backing off; the last
			// attempt's error describes the failure better than ctx.Err alone.
			return err
		}
	}
}

// callOnce performs a single attempt. Retry attempts decode into a fresh
// response struct — wire decoding can append to slices, and a failed attempt
// can partially fill resp before erroring — and copy it over resp only on
// success, so the caller never sees doubled slice elements or fields left
// over from a dead attempt.
func (c *Client) callOnce(ctx context.Context, action string, hdr http.Header, req, resp any, fresh bool) error {
	target := resp
	rv := reflect.ValueOf(resp)
	useFresh := fresh && resp != nil && rv.Kind() == reflect.Pointer && !rv.IsNil()
	if useFresh {
		target = reflect.New(rv.Elem().Type()).Interface()
	}
	err := c.transport.Call(ctx, action, hdr, req, target)
	if err == nil && useFresh {
		rv.Elem().Set(reflect.ValueOf(target).Elem())
	}
	return err
}

// backoffFor returns the pause before the next attempt: exponential in the
// attempt number, capped at backoffMax, with jitter drawn uniformly from
// [d/2, d) so a fleet of clients recovering from the same outage does not
// retry in lockstep.
func (c *Client) backoffFor(attempt int) time.Duration {
	d := c.backoffBase
	for i := 1; i < attempt && d < c.backoffMax; i++ {
		d *= 2
	}
	if d > c.backoffMax {
		d = c.backoffMax
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	c.rngMu.Lock()
	c.rngState += 0x9e3779b97f4a7c15
	z := c.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	c.rngMu.Unlock()
	return half + time.Duration(z%uint64(half))
}

// ctxSleep pauses for d or until ctx is done, whichever comes first.
func ctxSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// seedRNG seeds the jitter generator from the OS entropy pool; jitter
// quality is not security-sensitive, so a failed read just falls back to a
// fixed odd constant.
func seedRNG() uint64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return 0x9e3779b97f4a7c15
	}
	return binary.LittleEndian.Uint64(b[:])
}
