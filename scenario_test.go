package mcs_test

// Integration test of the paper's Figure 2 scenario across real network
// services: (1) attribute query to the MCS, (2) logical names back,
// (3) RLS query, (4) physical locations back, (5) contact the storage
// system, (6) data returned over GridFTP — plus the federated-discovery
// extension of section 9.

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mcs"
	"mcs/internal/core"
	"mcs/internal/federation"
	"mcs/internal/gridftp"
	"mcs/internal/rls"
)

const scenarioDN = "/O=Grid/OU=Test/CN=scenario"

func TestFigure2Scenario(t *testing.T) {
	// --- Services. ---
	srv, err := mcs.NewServer(mcs.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mcsHTTP := httptest.NewServer(srv)
	defer mcsHTTP.Close()
	catalog := mcs.NewClient(mcsHTTP.URL, scenarioDN)

	lrc := rls.NewLRC("lrc://site")
	rli := rls.NewRLI()
	rlsHTTP := httptest.NewServer(rls.NewServer(lrc, rli))
	defer rlsHTTP.Close()
	replica := rls.NewClient(rlsHTTP.URL)

	store := gridftp.NewMemStore()
	ftp := gridftp.NewServer(store)
	ftpAddr, err := ftp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ftp.Close()

	// --- Publication: data + replica mapping + descriptive metadata. ---
	if _, err := catalog.DefineAttribute("experiment", mcs.AttrString, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := catalog.DefineAttribute("energy", mcs.AttrFloat, "GeV"); err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("event-data;"), 10000)
	store.Put("cms-run-42.root", content)
	if err := replica.AddMapping("cms-run-42.root", "gsiftp://"+ftpAddr+"/cms-run-42.root"); err != nil {
		t.Fatal(err)
	}
	if err := replica.SendUpdate("lrc://site", lrc.LFNs(), nil, time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := catalog.CreateFile(mcs.FileSpec{
		Name: "cms-run-42.root", DataType: "binary",
		Attributes: []mcs.Attribute{
			{Name: "experiment", Value: mcs.String("cms")},
			{Name: "energy", Value: mcs.Float(7000)},
		},
	}); err != nil {
		t.Fatal(err)
	}

	// --- Steps 1-2: attribute query -> logical names. ---
	names, err := catalog.RunQuery(mcs.Query{Predicates: []mcs.Predicate{
		{Attribute: "experiment", Op: mcs.OpEq, Value: mcs.String("cms")},
		{Attribute: "energy", Op: mcs.OpGe, Value: mcs.Float(5000)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "cms-run-42.root" {
		t.Fatalf("step 1-2: %v", names)
	}

	// --- Steps 3-4: RLI -> LRC -> physical locations. ---
	lrcs, err := replica.QueryRLI(names[0])
	if err != nil || len(lrcs) != 1 {
		t.Fatalf("step 3: %v, %v", lrcs, err)
	}
	pfns, err := replica.Lookup(names[0])
	if err != nil || len(pfns) != 1 {
		t.Fatalf("step 4: %v, %v", pfns, err)
	}

	// --- Steps 5-6: GridFTP retrieval with parallel streams. ---
	rest := strings.TrimPrefix(pfns[0], "gsiftp://")
	slash := strings.IndexByte(rest, '/')
	got, err := gridftp.NewClient(rest[:slash], 4).Retrieve(rest[slash+1:])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("step 6: retrieved bytes differ")
	}
}

func TestFederatedDiscoveryScenario(t *testing.T) {
	// Two sites, each a full MCS; an aggregating index screens queries.
	type site struct {
		cat *core.Catalog
		url string
	}
	sites := map[string]*site{}
	for _, name := range []string{"site-east", "site-west"} {
		cat, err := mcs.OpenCatalog(mcs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := mcs.NewServer(mcs.ServerOptions{Catalog: cat})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		sites[name] = &site{cat: cat, url: ts.URL}
	}
	// Publish distinct experiments at each site.
	for name, exp := range map[string]string{"site-east": "atlas", "site-west": "cms"} {
		c := mcs.NewClient(sites[name].url, scenarioDN)
		if _, err := c.DefineAttribute("experiment", mcs.AttrString, ""); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := c.CreateFile(mcs.FileSpec{
				Name:       fmt.Sprintf("%s-%d.root", exp, i),
				Attributes: []mcs.Attribute{{Name: "experiment", Value: mcs.String(exp)}},
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Index the sites via soft-state summaries.
	ix := federation.NewIndex()
	for name, s := range sites {
		sum, err := federation.Summarize(s.cat, name, 0.001)
		if err != nil {
			t.Fatal(err)
		}
		ix.Update(sum, time.Minute)
	}
	fc := &federation.Client{
		Index: ix,
		Dial: func(name string) (federation.Querier, error) {
			return mcs.NewClient(sites[name].url, scenarioDN), nil
		},
	}
	res, err := fc.Query(mcs.Query{Predicates: []mcs.Predicate{
		{Attribute: "experiment", Op: mcs.OpEq, Value: mcs.String("cms")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 1 {
		t.Fatalf("index did not screen: %+v", res)
	}
	if got := res.Merged(); len(got) != 5 || !strings.HasPrefix(got[0], "cms-") {
		t.Fatalf("merged = %v", got)
	}
}
