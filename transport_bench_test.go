package mcs

import (
	"net/http/httptest"
	"testing"
)

// BenchmarkTransportPing isolates pure wire cost: ping does no catalog
// work, so each iteration is one envelope encode/decode plus one HTTP
// round trip. The soap/json gap here is the per-call encoding tax the
// Fig. 16 sweep measures under real workloads.
func BenchmarkTransportPing(b *testing.B) {
	srv, err := NewServer(ServerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	b.Cleanup(ts.Close)

	for _, kind := range []TransportKind{TransportSOAP, TransportJSON} {
		b.Run(string(kind), func(b *testing.B) {
			c := NewClient(ts.URL, testAlice, WithTransport(kind))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Ping(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTransportCreateFile measures one mutating call per iteration
// over each wire — the add-path unit the Fig. 16 sweep integrates.
func BenchmarkTransportCreateFile(b *testing.B) {
	srv, err := NewServer(ServerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	b.Cleanup(ts.Close)

	for _, kind := range []TransportKind{TransportSOAP, TransportJSON} {
		b.Run(string(kind), func(b *testing.B) {
			c := NewClient(ts.URL, testAlice, WithTransport(kind))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				name := "bench-" + string(kind) + "-" + itoa(i) + ".dat"
				if _, err := c.CreateFile(FileSpec{Name: name}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// itoa avoids pulling strconv into the hot loop's measured allocations in
// an obvious way (fmt.Sprintf allocates more).
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}
