package mcs

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mcs/internal/mcswire"
	"mcs/internal/obs"
	"mcs/internal/soap"
)

// The backoff schedule is exponential with jitter: attempt n waits a
// duration drawn uniformly from [d/2, d) where d doubles from the base up
// to the cap. Two injected failures make the schedule observable through a
// recorded sleep hook.
func TestRetryBackoffScheduleAndStats(t *testing.T) {
	inj := NewFaultInjector(1, FaultRule{
		Site: FaultSiteDispatch, Op: "createFile", Kind: FaultKindError, Calls: []uint64{1, 2},
	})
	_, url := startServer(t, ServerOptions{FaultInjector: inj})

	const base = 8 * time.Millisecond
	c := NewClient(url, testAlice, WithRetry(4), WithBackoff(base, time.Second))
	var sleeps []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		sleeps = append(sleeps, d)
		return nil // don't actually wait; the schedule is what's under test
	}

	if _, err := c.CreateFile(FileSpec{Name: "bo.dat"}); err != nil {
		t.Fatalf("create = %v, want success on attempt 3", err)
	}
	if st := c.RetryStats(); st.Attempts != 3 || st.Retries != 2 {
		t.Fatalf("stats = %+v, want 3 attempts / 2 retries", st)
	}
	if len(sleeps) != 2 {
		t.Fatalf("sleeps = %v, want one per retry", sleeps)
	}
	for i, want := range []time.Duration{base, 2 * base} {
		if lo, hi := want/2, want; sleeps[i] < lo || sleeps[i] >= hi {
			t.Errorf("sleep %d = %v, want jittered within [%v, %v)", i+1, sleeps[i], lo, hi)
		}
	}
}

// The cap bounds the exponential: far attempts all draw from [max/2, max).
func TestRetryBackoffCapped(t *testing.T) {
	c := NewClient("http://unused", testAlice, WithBackoff(time.Millisecond, 4*time.Millisecond))
	for attempt := 3; attempt < 10; attempt++ {
		d := c.backoffFor(attempt)
		if d < 2*time.Millisecond || d >= 4*time.Millisecond {
			t.Fatalf("backoffFor(%d) = %v, want within [2ms, 4ms)", attempt, d)
		}
	}
}

// Catalog verdicts are final: a NotFound must not burn retry attempts.
func TestRetryStopsOnNonRetryable(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	c := retryClient(url)
	_, err := c.GetFile("absent.dat", 0)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if st := c.RetryStats(); st.Attempts != 1 || st.Retries != 0 {
		t.Fatalf("stats = %+v, want a single attempt and no retries", st)
	}
}

// A canceled context stops the retry loop immediately, keeping the last
// attempt's error rather than masking it.
func TestRetryStopsOnCanceledContext(t *testing.T) {
	inj := NewFaultInjector(1, FaultRule{Site: FaultSiteDispatch, Kind: FaultKindError})
	_, url := startServer(t, ServerOptions{FaultInjector: inj})
	c := retryClient(url)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.CreateFileCtx(ctx, FileSpec{Name: "cx.dat"})
	if err == nil {
		t.Fatal("expected an error with a canceled context")
	}
	if st := c.RetryStats(); st.Retries != 0 {
		t.Fatalf("stats = %+v, want no retries after cancellation", st)
	}
}

// Regression: a failed attempt can partially decode into the response
// struct (XML decoding appends to slices; a non-2xx body is sniffed for
// faults). The retry must decode into a fresh struct, or the caller sees
// doubled slice elements. This server answers first with HTTP 503 carrying
// a well-formed fileVersions reply, then with the same reply and HTTP 200 —
// without the fresh-struct guard the final result holds two files.
func TestRetryDoesNotDoubleDecodeResponse(t *testing.T) {
	body, err := soap.Marshal(&mcswire.FileVersionsResponse{
		Files: []mcswire.WireFile{{ID: 1, Name: "dd.dat", Version: 1, Valid: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		w.Write(body) //nolint:errcheck
	}))
	defer ts.Close()

	c := NewClient(ts.URL, testAlice, WithRetry(3), WithBackoff(time.Millisecond, time.Millisecond))
	vs, err := c.FileVersions("dd.dat")
	if err != nil {
		t.Fatalf("versions = %v, want success on retry", err)
	}
	if len(vs) != 1 {
		t.Fatalf("versions = %+v, want exactly one (no double decode)", vs)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2", got)
	}
}

// Retried attempts of one logical call repeat the same request ID and (for
// mutating ops) the same idempotency key; distinct logical calls get
// distinct keys.
func TestRetryPinsRequestIDAndIdempotencyKey(t *testing.T) {
	type seen struct{ reqID, idemKey string }
	var mu sync.Mutex
	var attempts []seen
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts = append(attempts, seen{r.Header.Get(obs.RequestIDHeader), r.Header.Get(obs.IdempotencyKeyHeader)})
		mu.Unlock()
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("catalog restarting")) //nolint:errcheck
			return
		}
		body, _ := soap.Marshal(&mcswire.CreateFileResponse{File: mcswire.WireFile{ID: 1, Name: "p.dat", Version: 1}})
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		w.Write(body) //nolint:errcheck
	}))
	defer ts.Close()

	c := NewClient(ts.URL, testAlice, WithRetry(3), WithBackoff(time.Millisecond, time.Millisecond))
	if _, err := c.CreateFile(FileSpec{Name: "p.dat"}); err != nil {
		t.Fatalf("create = %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(attempts) != 2 {
		t.Fatalf("server saw %d attempts, want 2", len(attempts))
	}
	if attempts[0].reqID == "" || attempts[0].idemKey == "" {
		t.Fatalf("first attempt missing correlation headers: %+v", attempts[0])
	}
	if attempts[0] != attempts[1] {
		t.Fatalf("attempts carried different identities: %+v vs %+v", attempts[0], attempts[1])
	}

	// A second logical call must not reuse the first call's key.
	mu.Unlock()
	_, err := c.CreateFile(FileSpec{Name: "p2.dat"})
	mu.Lock()
	if err != nil {
		t.Fatalf("second create = %v", err)
	}
	if last := attempts[len(attempts)-1]; last.idemKey == attempts[0].idemKey {
		t.Fatal("distinct logical calls shared an idempotency key")
	}
}
