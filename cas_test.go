package mcs

import (
	"net/http/httptest"
	"testing"
	"time"

	"mcs/internal/gsi"
)

// The CAS integration tests: section 9 of the paper plans MCS+CAS; here the
// full flow runs — community policy at the CAS, a signed assertion carried
// by the client, and the MCS mapping the member onto the community identity
// whose rights the catalog administrator granted.

const (
	casAdmin     = "/O=Grid/CN=Admin"
	casCommunity = "/O=Grid/CN=ligo-community"
	casMember    = "/O=LIGO/CN=Carol"
)

func startCASServer(t *testing.T) (*gsi.CAS, *Client, *Client) {
	t.Helper()
	cas, err := gsi.NewCAS("ligo.org")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerOptions{
		CatalogOptions: Options{Owner: casAdmin, EnforceAuthz: true},
		CAS: &CASIntegration{
			Community:   "ligo.org",
			Key:         cas.PublicKey(),
			CommunityDN: casCommunity,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	adminC := NewClient(ts.URL, casAdmin)
	// The administrator grants the community identity service-level create
	// rights — the coarse grant of the CAS model.
	if err := adminC.Grant(ObjectService, "", casCommunity, PermCreate); err != nil {
		t.Fatal(err)
	}
	memberC := NewClient(ts.URL, casMember)
	return cas, adminC, memberC
}

func TestCASAssertionEnablesCommunityRights(t *testing.T) {
	cas, _, memberC := startCASServer(t)

	// Without an assertion, the member has no rights of their own.
	if _, err := memberC.CreateFile(FileSpec{Name: "denied.dat"}); err == nil {
		t.Fatal("assertion-less create succeeded")
	}

	// CAS policy: Carol may create under /ligo.
	cas.Grant(casMember, "", gsi.RightCreate, gsi.RightRead, gsi.RightWrite)
	a, err := cas.IssueAssertion(casMember, "", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	encoded, err := gsi.EncodeAssertion(a)
	if err != nil {
		t.Fatal(err)
	}
	memberC.UseAssertion(encoded)

	f, err := memberC.CreateFile(FileSpec{Name: "allowed.dat"})
	if err != nil {
		t.Fatal(err)
	}
	// The operation ran as the community identity.
	if f.Creator != casCommunity {
		t.Fatalf("creator = %q, want community DN", f.Creator)
	}
	// Reads through the community identity work too.
	if _, err := memberC.GetFile("allowed.dat", 0); err != nil {
		t.Fatal(err)
	}
}

func TestCASAssertionRightsAreChecked(t *testing.T) {
	cas, _, memberC := startCASServer(t)
	// Assertion granting only read cannot create.
	cas.Grant(casMember, "", gsi.RightRead)
	a, _ := cas.IssueAssertion(casMember, "", time.Hour)
	encoded, _ := gsi.EncodeAssertion(a)
	memberC.UseAssertion(encoded)
	if _, err := memberC.CreateFile(FileSpec{Name: "x"}); err == nil {
		t.Fatal("read-only assertion allowed create")
	}
}

func TestCASAssertionSubjectMustMatch(t *testing.T) {
	// Carol presents an assertion issued to someone else: rejected.
	cas, _, carol := startCASServer(t)
	cas.Grant("/O=LIGO/CN=SomeoneElse", "", gsi.RightCreate)
	a, err := cas.IssueAssertion("/O=LIGO/CN=SomeoneElse", "", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	encoded, err := gsi.EncodeAssertion(a)
	if err != nil {
		t.Fatal(err)
	}
	carol.UseAssertion(encoded)
	if _, err := carol.CreateFile(FileSpec{Name: "stolen"}); err == nil {
		t.Fatal("assertion with mismatched subject accepted")
	}
}

func TestCASWrongCommunityKeyRejected(t *testing.T) {
	_, _, memberC := startCASServer(t)
	// An assertion signed by a different CAS must be ignored.
	otherCAS, err := gsi.NewCAS("ligo.org")
	if err != nil {
		t.Fatal(err)
	}
	otherCAS.Grant(casMember, "", gsi.RightCreate)
	a, _ := otherCAS.IssueAssertion(casMember, "", time.Hour)
	encoded, _ := gsi.EncodeAssertion(a)
	memberC.UseAssertion(encoded)
	if _, err := memberC.CreateFile(FileSpec{Name: "x"}); err == nil {
		t.Fatal("foreign-CAS assertion accepted")
	}
}
