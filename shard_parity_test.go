package mcs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"mcs/internal/shard"
)

// shardedDeployment is two deterministic mcsd shards behind an mcsrouter
// core, all in-process: shard s0 owns the "s0-" prefix (and the catch-all),
// shard s1 owns "s1-".
type shardedDeployment struct {
	url    string
	router *shard.Router
	shards []*Server
}

// startSharded builds a two-shard deployment. shardOpts[i], when present,
// customizes shard i (fault injectors for chaos legs); routerOpts customizes
// the router (its Map is filled in here).
func startSharded(t *testing.T, routerOpts shard.Options, shardOpts ...ServerOptions) *shardedDeployment {
	t.Helper()
	d := &shardedDeployment{}
	var eps []string
	for i := 0; i < 2; i++ {
		opts := ServerOptions{}
		if i < len(shardOpts) {
			opts = shardOpts[i]
		}
		if opts.CatalogOptions.Clock == nil {
			opts.CatalogOptions.Clock = fixedClock
		}
		srv, url := startServer(t, opts)
		d.shards = append(d.shards, srv)
		eps = append(eps, url)
	}
	m, err := shard.ParseInline(fmt.Sprintf("s0-=%s,s1-=%s,*=%s", eps[0], eps[1], eps[0]))
	if err != nil {
		t.Fatal(err)
	}
	routerOpts.Map = m
	d.router, err = shard.NewRouter(routerOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.router.Stop)
	ts := httptest.NewServer(d.router)
	t.Cleanup(ts.Close)
	d.url = ts.URL
	return d
}

// shardScript is the cross-shard parity script: every routed operation at
// least once, with objects spread across both shards and representative
// error legs. Query-shaped steps sort their results in the step itself —
// the sharded contract is set equality, and the direct server's unpaged
// query order is storage order, not name order.
func shardScript() []parityStep {
	dt := "hdf5"
	red := []Predicate{{Attribute: "color", Op: OpEq, Value: String("red")}}
	return []parityStep{
		{"ping", func(c *Client) (any, error) { return c.Ping() }},
		{"defineAttribute", func(c *Client) (any, error) { return c.DefineAttribute("color", AttrString, "hue") }},
		{"defineAttribute", func(c *Client) (any, error) { return c.DefineAttribute("size", AttrInt, "bytes") }},
		{"listAttributeDefs", func(c *Client) (any, error) { return c.ListAttributeDefs() }},
		{"createCollection", func(c *Client) (any, error) {
			return c.CreateCollection(CollectionSpec{Name: "s0-col", Description: "shard zero", Audited: true})
		}},
		{"createCollection", func(c *Client) (any, error) { return c.CreateCollection(CollectionSpec{Name: "s0-dst"}) }},
		{"createCollection", func(c *Client) (any, error) { return c.CreateCollection(CollectionSpec{Name: "s1-col"}) }},
		{"getCollection", func(c *Client) (any, error) { return c.GetCollection("s1-col") }},
		{"createFile", func(c *Client) (any, error) {
			return c.CreateFile(FileSpec{
				Name: "s0-a.dat", Collection: "s0-col", DataType: "binary", Audited: true,
				Provenance: "generated",
			})
		}},
		// color=red goes on the single-version files only: s0-a.dat grows a
		// second version below, and queryAttrs hydration refuses ambiguous
		// names on direct and sharded deployments alike.
		{"createFile", func(c *Client) (any, error) {
			return c.CreateFile(FileSpec{
				Name: "s0-b.dat", Collection: "s0-col",
				Attributes: []Attribute{{Name: "color", Value: String("red")}},
			})
		}},
		{"createFile", func(c *Client) (any, error) {
			return c.CreateFile(FileSpec{
				Name: "s1-a.dat", Collection: "s1-col",
				Attributes: []Attribute{{Name: "color", Value: String("red")}},
			})
		}},
		// Versioned re-create (s0-a.dat grows version 2) plus the ambiguous
		// version-0 legs it causes below: all single-shard, so the router
		// must pass those sentinels through unchanged.
		{"createFile", func(c *Client) (any, error) { return c.CreateFile(FileSpec{Name: "s0-a.dat"}) }},
		{"getFile", func(c *Client) (any, error) { return c.GetFile("s0-a.dat", 0) }},
		{"getFile", func(c *Client) (any, error) { return c.GetFile("s1-nope.dat", 0) }},
		{"updateFile", func(c *Client) (any, error) { return c.UpdateFile("s0-a.dat", 0, FileUpdate{DataType: &dt}) }},
		{"fileVersions", func(c *Client) (any, error) { return c.FileVersions("s0-a.dat") }},
		{"setAttribute", func(c *Client) (any, error) {
			return nil, c.SetAttribute(ObjectFile, "s1-a.dat", "size", Int(42))
		}},
		{"getAttributes", func(c *Client) (any, error) { return c.GetAttributes(ObjectFile, "s1-a.dat") }},
		// The cross-shard scatter: color=red matches one file on each shard.
		{"query", func(c *Client) (any, error) {
			names, err := c.RunQuery(Query{Predicates: red})
			sort.Strings(names)
			return names, err
		}},
		{"query", func(c *Client) (any, error) {
			var names []string
			err := c.RunQueryStream(Query{Predicates: red}, func(n string) error {
				names = append(names, n)
				return nil
			})
			// The SOAP client pages this through queryPage, whose routed
			// order is shard-grouped; compare as a set.
			sort.Strings(names)
			return names, err
		}},
		{"queryPage", func(c *Client) (any, error) {
			var all []string
			token := ""
			for {
				names, next, err := c.RunQueryPage(Query{Predicates: red}, 1, token)
				if err != nil {
					return nil, err
				}
				all = append(all, names...)
				if next == "" {
					sort.Strings(all)
					return all, nil
				}
				token = next
			}
		}},
		{"queryAttrs", func(c *Client) (any, error) {
			res, err := c.RunQueryAttrs(Query{Predicates: red}, []string{"size"})
			sort.Slice(res, func(i, j int) bool { return res[i].Name < res[j].Name })
			return res, err
		}},
		{"collectionContents", func(c *Client) (any, error) {
			files, subs, err := c.CollectionContents("s0-col")
			return []any{files, subs}, err
		}},
		{"collectionContentsPage", func(c *Client) (any, error) {
			var allFiles []File
			var allSubs []Collection
			token := ""
			for {
				files, subs, next, err := c.CollectionContentsPage("s0-col", 1, token)
				if err != nil {
					return nil, err
				}
				allFiles = append(allFiles, files...)
				allSubs = append(allSubs, subs...)
				if next == "" {
					return []any{allFiles, allSubs}, nil
				}
				token = next
			}
		}},
		{"listCollections", func(c *Client) (any, error) { return c.ListCollections("") }},
		{"createView", func(c *Client) (any, error) {
			return c.CreateView(ViewSpec{Name: "s0-v", Description: "subset"})
		}},
		{"addToView", func(c *Client) (any, error) { return nil, c.AddToView("s0-v", ObjectFile, "s0-a.dat") }},
		{"viewContents", func(c *Client) (any, error) { return c.ViewContents("s0-v") }},
		{"expandView", func(c *Client) (any, error) { return c.ExpandView("s0-v") }},
		{"removeFromView", func(c *Client) (any, error) { return nil, c.RemoveFromView("s0-v", ObjectFile, "s0-a.dat") }},
		{"annotate", func(c *Client) (any, error) { return c.Annotate(ObjectFile, "s1-a.dat", "looks good") }},
		{"getAnnotations", func(c *Client) (any, error) { return c.Annotations(ObjectFile, "s1-a.dat") }},
		{"addProvenance", func(c *Client) (any, error) { return nil, c.AddProvenance("s0-a.dat", 0, "recalibrated") }},
		{"getProvenance", func(c *Client) (any, error) { return c.Provenance("s0-a.dat", 0) }},
		{"auditLog", func(c *Client) (any, error) { return c.AuditLog(ObjectFile, "s0-a.dat") }},
		{"grant", func(c *Client) (any, error) { return nil, c.Grant(ObjectFile, "s0-a.dat", testBob, PermRead) }},
		{"revoke", func(c *Client) (any, error) { return nil, c.Revoke(ObjectFile, "s0-a.dat", testBob, PermRead) }},
		// Service-level (global) grant and revoke broadcast to every shard.
		{"grant", func(c *Client) (any, error) { return nil, c.Grant(ObjectService, "", testBob, PermCreate) }},
		{"revoke", func(c *Client) (any, error) { return nil, c.Revoke(ObjectService, "", testBob, PermCreate) }},
		{"registerWriter", func(c *Client) (any, error) {
			return nil, c.RegisterWriter(Writer{DN: testAlice, Institution: "ISI", Email: "alice@isi.edu"})
		}},
		{"getWriter", func(c *Client) (any, error) { return c.GetWriter(testAlice) }},
		{"registerExternalCatalog", func(c *Client) (any, error) {
			return c.RegisterExternalCatalog(ExternalCatalog{Name: "rc", Type: "replica", Host: "rc.isi.edu"})
		}},
		{"listExternalCatalogs", func(c *Client) (any, error) { return c.ListExternalCatalogs() }},
		{"batchWrite", func(c *Client) (any, error) {
			return c.BatchWrite([]BatchOp{
				{CreateFile: &FileSpec{Name: "s0-bw1.dat", Collection: "s0-col"}},
				{CreateFile: &FileSpec{Name: "s0-bw2.dat", Collection: "s0-col"}},
			})
		}},
		{"moveFile", func(c *Client) (any, error) { return nil, c.MoveFile("s0-b.dat", 0, "s0-dst") }},
		{"unsetAttribute", func(c *Client) (any, error) { return nil, c.UnsetAttribute(ObjectFile, "s1-a.dat", "size") }},
		{"deleteFile", func(c *Client) (any, error) { return nil, c.DeleteFile("s0-bw2.dat", 0) }},
		{"deleteView", func(c *Client) (any, error) { return nil, c.DeleteView("s0-v") }},
		// Error leg: non-empty collection refuses deletion.
		{"deleteCollection", func(c *Client) (any, error) { return nil, c.DeleteCollection("s0-col") }},
		{"deleteCollection", func(c *Client) (any, error) {
			if err := c.DeleteFile("s0-b.dat", 0); err != nil {
				return nil, err
			}
			return nil, c.DeleteCollection("s0-dst")
		}},
		{"stats", func(c *Client) (any, error) { return c.Stats() }},
	}
}

// stripVolatile returns a deep copy of v (via its JSON encoding) with
// server-assigned identifiers removed: ID sequences advance independently on
// each shard, and request IDs are random per run, so neither is part of the
// sharding contract. Everything else — names, versions, timestamps, values,
// counts — must match field for field.
func stripVolatile(t *testing.T, v any) any {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal parity value: %v", err)
	}
	var d any
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("unmarshal parity value: %v", err)
	}
	return stripIDs(d)
}

func stripIDs(v any) any {
	switch x := v.(type) {
	case map[string]any:
		for k, val := range x {
			if k == "ID" || k == "id" || strings.HasSuffix(k, "ID") || strings.HasSuffix(k, "Id") {
				delete(x, k)
				continue
			}
			x[k] = stripIDs(val)
		}
		return x
	case []any:
		for i := range x {
			x[i] = stripIDs(x[i])
		}
		return x
	}
	return v
}

// runShardScript executes the script against url over the given transport,
// returning stripped result values and error sentinels per step.
func runShardScript(t *testing.T, url string, kind TransportKind) (results []any, sentinels []string) {
	t.Helper()
	c := NewClient(url, testAlice, WithTransport(kind))
	for i, step := range shardScript() {
		v, err := step.run(c)
		if err != nil {
			v = nil
		}
		results = append(results, stripVolatile(t, v))
		sentinels = append(sentinels, sentinelName(err))
		if s := sentinels[i]; strings.HasPrefix(s, "unclassified") {
			t.Fatalf("step %d (%s) over %s: %s", i, step.op, kind, s)
		}
	}
	return results, sentinels
}

// TestShardRouterParity proves the tentpole claim: the full operation mix,
// run against a router fronting two shards, yields the same results and the
// same error sentinels as a single direct mcsd — over both wires.
func TestShardRouterParity(t *testing.T) {
	script := shardScript()
	for _, kind := range []TransportKind{TransportSOAP, TransportJSON} {
		t.Run(string(kind), func(t *testing.T) {
			_, directURL := startServer(t, ServerOptions{CatalogOptions: Options{Clock: fixedClock}})
			sharded := startSharded(t, shard.Options{})

			directResults, directSentinels := runShardScript(t, directURL, kind)
			routedResults, routedSentinels := runShardScript(t, sharded.url, kind)

			for i := range script {
				if directSentinels[i] != routedSentinels[i] {
					t.Errorf("step %d (%s): sentinel direct = %q, routed = %q",
						i, script[i].op, directSentinels[i], routedSentinels[i])
				}
				if !reflect.DeepEqual(directResults[i], routedResults[i]) {
					t.Errorf("step %d (%s): result mismatch\n direct: %#v\n routed: %#v",
						i, script[i].op, directResults[i], routedResults[i])
				}
			}
			// Both shards must actually have participated: the script is a
			// distribution test, not a passthrough test.
			for i, srv := range sharded.shards {
				st, err := srv.Catalog().Stats()
				if err != nil {
					t.Fatal(err)
				}
				if st.Files == 0 {
					t.Errorf("shard %d holds no files; script did not distribute", i)
				}
			}
		})
	}
}

// TestShardRouterTableCoverage pins the router's dispatch table to the
// server's: every server operation except discoverySummary (the router is
// not a catalog — summaries are pulled from shards, never merged), and the
// parity script covers all of them.
func TestShardRouterTableCoverage(t *testing.T) {
	srv, _ := startServer(t, ServerOptions{})
	sharded := startSharded(t, shard.Options{})

	var want []string
	for _, op := range srv.Table().Ops() {
		if op != "discoverySummary" {
			want = append(want, op)
		}
	}
	got := sharded.router.Table().Ops()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("router ops = %v\nwant server ops minus discoverySummary = %v", got, want)
	}

	covered := map[string]bool{}
	for _, step := range shardScript() {
		covered[step.op] = true
	}
	for _, op := range got {
		if !covered[op] {
			t.Errorf("shard parity script does not cover routed op %q", op)
		}
	}
}

// TestShardRouterCrossShardBatchAndMove pins the single-shard write
// contract: a batch spanning shards and a cross-shard move are refused with
// InvalidInput rather than half-applied.
func TestShardRouterCrossShardBatchAndMove(t *testing.T) {
	sharded := startSharded(t, shard.Options{})
	c := NewClient(sharded.url, testAlice, WithTransport(TransportJSON))
	for _, name := range []string{"s0-col", "s1-col"} {
		if _, err := c.CreateCollection(CollectionSpec{Name: name}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.CreateFile(FileSpec{Name: "s0-f.dat", Collection: "s0-col"}); err != nil {
		t.Fatal(err)
	}

	_, err := c.BatchWrite([]BatchOp{
		{CreateFile: &FileSpec{Name: "s0-x.dat", Collection: "s0-col"}},
		{CreateFile: &FileSpec{Name: "s1-x.dat", Collection: "s1-col"}},
	})
	if !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("cross-shard batch = %v, want ErrInvalidInput", err)
	}
	if _, err := c.GetFile("s0-x.dat", 0); !errors.Is(err, ErrNotFound) {
		t.Fatal("refused batch still created s0-x.dat")
	}

	if err := c.MoveFile("s0-f.dat", 0, "s1-col"); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("cross-shard move = %v, want ErrInvalidInput", err)
	}
}

// TestShardRouterRetriedMutation proves exactly-once survives the extra hop:
// the router's own reply is dropped after it forwarded the mutation, the
// client retries with its pinned idempotency key, the router re-forwards the
// same key, and the shard's replay cache answers — one version, one replay.
func TestShardRouterRetriedMutation(t *testing.T) {
	for _, kind := range []TransportKind{TransportSOAP, TransportJSON} {
		t.Run(string(kind), func(t *testing.T) {
			inj := NewFaultInjector(1, FaultRule{
				Site: FaultSiteAfter, Op: "createFile", Kind: FaultKindError, Times: 1,
			})
			sharded := startSharded(t, shard.Options{FaultInjector: inj})
			c := NewClient(sharded.url, testAlice, WithTransport(kind), WithRetry(5))
			if _, err := c.CreateFile(FileSpec{Name: "s0-once.dat", Audited: true}); err != nil {
				t.Fatalf("create through lost router reply: %v", err)
			}
			if st := c.RetryStats(); st.Retries != 1 {
				t.Fatalf("retries = %d, want 1", st.Retries)
			}
			vs, err := c.FileVersions("s0-once.dat")
			if err != nil || len(vs) != 1 {
				t.Fatalf("versions = %+v, %v; want exactly one", vs, err)
			}
			if hits := sharded.shards[0].Catalog().ReplayHits(); hits != 1 {
				t.Fatalf("shard replay cache hits = %d, want 1", hits)
			}
		})
	}
}

// TestShardRouterChaosPartialResult kills one shard (persistent injected
// dispatch errors) and pins the degradation contract: single-shard
// operations on the healthy shard keep working, operations owned by the dead
// shard surface its retryable Unavailable, and scatter queries fail with the
// typed, non-retryable ErrPartialResult instead of silently returning half
// an answer.
func TestShardRouterChaosPartialResult(t *testing.T) {
	inj := NewFaultInjector(1, FaultRule{Site: FaultSiteDispatch, Kind: FaultKindError})
	inj.SetEnabled(false)
	sharded := startSharded(t, shard.Options{}, ServerOptions{}, ServerOptions{FaultInjector: inj})
	c := NewClient(sharded.url, testAlice, WithTransport(TransportJSON))
	if _, err := c.DefineAttribute("color", AttrString, "hue"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"s0-f.dat", "s1-f.dat"} {
		if _, err := c.CreateFile(FileSpec{
			Name: name, Attributes: []Attribute{{Name: "color", Value: String("red")}},
		}); err != nil {
			t.Fatal(err)
		}
	}

	inj.SetEnabled(true)
	if _, err := c.GetFile("s0-f.dat", 0); err != nil {
		t.Fatalf("healthy-shard op during outage: %v", err)
	}
	if _, err := c.GetFile("s1-f.dat", 0); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("dead-shard op = %v, want ErrUnavailable", err)
	}
	for _, kind := range []TransportKind{TransportSOAP, TransportJSON} {
		_, err := NewClient(sharded.url, testAlice, WithTransport(kind)).
			RunQuery(Query{Predicates: []Predicate{{Attribute: "color", Op: OpEq, Value: String("red")}}})
		if !errors.Is(err, ErrPartialResult) {
			t.Fatalf("scatter during outage over %s = %v, want ErrPartialResult", kind, err)
		}
		if Retryable(err) {
			t.Fatalf("partial result over %s is retryable; retries cannot resurrect the dead shard's rows", kind)
		}
	}
	if _, err := c.Stats(); !errors.Is(err, ErrPartialResult) {
		t.Fatalf("stats during outage = %v, want ErrPartialResult", err)
	}

	inj.SetEnabled(false)
	names, err := c.RunQuery(Query{Predicates: []Predicate{{Attribute: "color", Op: OpEq, Value: String("red")}}})
	if err != nil || len(names) != 2 {
		t.Fatalf("scatter after recovery = %v, %v; want both files", names, err)
	}
}

// swapHandler lets a test replace the server behind a fixed URL — the
// in-process stand-in for a shard process restart.
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	h.ServeHTTP(w, r)
}

func (s *swapHandler) swap(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

// TestShardRouterPaginationAcrossShardRestart drives a paged scatter query,
// restarts a shard (snapshot, new process, same state) mid-iteration, and
// finishes the walk with the token issued before the restart: both the
// shard's cursor tokens and the router's composed tokens are stateless, so
// the iteration completes exactly.
func TestShardRouterPaginationAcrossShardRestart(t *testing.T) {
	sw := make([]*swapHandler, 2)
	srvs := make([]*Server, 2)
	var eps []string
	for i := range sw {
		srv, err := NewServer(ServerOptions{CatalogOptions: Options{Clock: fixedClock}})
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = srv
		sw[i] = &swapHandler{h: srv}
		ts := httptest.NewServer(sw[i])
		t.Cleanup(ts.Close)
		eps = append(eps, ts.URL)
	}
	m, err := shard.ParseInline(fmt.Sprintf("s0-=%s,s1-=%s", eps[0], eps[1]))
	if err != nil {
		t.Fatal(err)
	}
	router, err := shard.NewRouter(shard.Options{Map: m})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Stop)
	rts := httptest.NewServer(router)
	t.Cleanup(rts.Close)

	c := NewClient(rts.URL, testAlice, WithTransport(TransportJSON))
	if _, err := c.DefineAttribute("run", AttrString, "science run"); err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, name := range []string{"s0-a", "s0-b", "s0-c", "s1-a", "s1-b", "s1-c"} {
		if _, err := c.CreateFile(FileSpec{
			Name: name, Attributes: []Attribute{{Name: "run", Value: String("S2")}},
		}); err != nil {
			t.Fatal(err)
		}
		want = append(want, name)
	}

	q := Query{Predicates: []Predicate{{Attribute: "run", Op: OpEq, Value: String("S2")}}}
	var got []string
	names, token, err := c.RunQueryPage(q, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, names...)

	// Restart shard s1 behind its URL: snapshot its state, build a fresh
	// server from the snapshot, swap it in. The old server is gone; only
	// durable state and the client-held token survive.
	var snap bytes.Buffer
	if err := srvs[1].Catalog().Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreCatalog(Options{Clock: fixedClock}, &snap)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(ServerOptions{Catalog: restored})
	if err != nil {
		t.Fatal(err)
	}
	sw[1].swap(srv2)

	for token != "" {
		names, token, err = c.RunQueryPage(q, 2, token)
		if err != nil {
			t.Fatalf("page after shard restart: %v", err)
		}
		got = append(got, names...)
	}
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("paged walk across restart = %v, want %v", got, want)
	}
}

// TestShardRouterBloomScreening pins the scatter-narrowing contract: fresh
// summaries route a selective query to only the shard that can match; a
// mutation forwarded after the pull marks its shard dirty so the very next
// query still sees the new object (staleness must never cost an answer);
// and a refresh restores screening.
func TestShardRouterBloomScreening(t *testing.T) {
	sharded := startSharded(t, shard.Options{})
	c := NewClient(sharded.url, testAlice, WithTransport(TransportJSON))
	if _, err := c.DefineAttribute("run", AttrString, "science run"); err != nil {
		t.Fatal(err)
	}
	mk := func(name, run string) {
		t.Helper()
		if _, err := c.CreateFile(FileSpec{
			Name: name, Attributes: []Attribute{{Name: "run", Value: String(run)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	mk("s0-f.dat", "S2")
	mk("s1-f.dat", "S5")
	if err := sharded.router.RefreshSummaries(); err != nil {
		t.Fatalf("refresh: %v", err)
	}

	query := func(run string) []string {
		t.Helper()
		names, err := c.RunQuery(Query{Predicates: []Predicate{
			{Attribute: "run", Op: OpEq, Value: String(run)}}})
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(names)
		return names
	}
	subqueries := func() int64 {
		t.Helper()
		st := routerStatz(t, sharded.url)
		return st.ScatterSubqueries
	}

	base := subqueries()
	if got := query("S2"); !reflect.DeepEqual(got, []string{"s0-f.dat"}) {
		t.Fatalf("query S2 = %v", got)
	}
	if d := subqueries() - base; d != 1 {
		t.Fatalf("screened query hit %d shards, want 1", d)
	}
	base = subqueries()
	if got := query("S9"); len(got) != 0 {
		t.Fatalf("query S9 = %v, want empty", got)
	}
	if d := subqueries() - base; d != 0 {
		t.Fatalf("fully screened query hit %d shards, want 0", d)
	}

	// The soft-state guarantee: a write lands on s1 after the summary pull;
	// a query for it must include the dirty shard even though the stale
	// bloom says "no match here".
	mk("s1-g.dat", "S9")
	if got := query("S9"); !reflect.DeepEqual(got, []string{"s1-g.dat"}) {
		t.Fatalf("query S9 after write = %v; stale summary cost an answer", got)
	}

	if err := sharded.router.RefreshSummaries(); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	base = subqueries()
	if got := query("S9"); !reflect.DeepEqual(got, []string{"s1-g.dat"}) {
		t.Fatalf("query S9 after refresh = %v", got)
	}
	if d := subqueries() - base; d != 1 {
		t.Fatalf("re-screened query hit %d shards, want 1", d)
	}
}

// routerStatzPayload is the subset of the router's /statz the tests read.
type routerStatzPayload struct {
	Role              string `json:"role"`
	ScatterSubqueries int64  `json:"scatter_subqueries"`
	Shards            []struct {
		Endpoint  string `json:"endpoint"`
		Healthy   bool   `json:"healthy"`
		Forwarded int64  `json:"forwarded"`
	} `json:"shards"`
}

func routerStatz(t *testing.T, url string) routerStatzPayload {
	t.Helper()
	resp, err := http.Get(url + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st routerStatzPayload
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestShardRouterObservability checks the router's diagnostic surface:
// mcs_router_* counters on /metrics, per-shard breakdown in /statz, and
// /healthz degrading per shard health.
func TestShardRouterObservability(t *testing.T) {
	inj := NewFaultInjector(1, FaultRule{Site: FaultSiteDispatch, Kind: FaultKindError})
	inj.SetEnabled(false)
	sharded := startSharded(t, shard.Options{}, ServerOptions{}, ServerOptions{FaultInjector: inj})
	c := NewClient(sharded.url, testAlice, WithTransport(TransportJSON))
	if _, err := c.CreateFile(FileSpec{Name: "s0-f.dat"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ListCollections(""); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(sharded.url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"mcs_router_scatter_ops_total 1",
		"mcs_router_scatter_subqueries_total 2",
		"mcs_router_shard_forwarded_total",
		"mcs_router_shard_unreachable_total",
		"mcs_router_bloom_fp_subqueries_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	st := routerStatz(t, sharded.url)
	if st.Role != "router" || len(st.Shards) != 2 {
		t.Fatalf("statz = %+v", st)
	}
	var forwarded int64
	for _, sh := range st.Shards {
		forwarded += sh.Forwarded
	}
	if forwarded < 3 {
		t.Fatalf("statz forwarded total = %d, want >= 3", forwarded)
	}

	get := func() (int, string) {
		resp, err := http.Get(sharded.url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get(); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz all-up = %d %q", code, body)
	}
	inj.SetEnabled(true)
	if code, body := get(); code != http.StatusOK || !strings.Contains(body, "degraded") {
		t.Fatalf("healthz one-down = %d %q, want degraded", code, body)
	}
}
