package mcs

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// chaosSeeds returns the seeds the chaos suite runs under. MCS_CHAOS_SEEDS
// overrides the default three (comma-separated), so CI can pin or widen the
// schedule space without code changes.
func chaosSeeds(t *testing.T) []uint64 {
	t.Helper()
	spec := os.Getenv("MCS_CHAOS_SEEDS")
	if spec == "" {
		spec = "1,7,42"
	}
	var seeds []uint64
	for _, part := range strings.Split(spec, ",") {
		n, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			t.Fatalf("MCS_CHAOS_SEEDS: bad seed %q", part)
		}
		seeds = append(seeds, n)
	}
	return seeds
}

// retryClient returns a client configured the way the chaos suite hammers
// faulty servers: enough attempts to outlast three injected failures, tight
// backoff so the suite stays fast.
func retryClient(url string) *Client {
	return NewClient(url, testAlice,
		WithRetry(5),
		WithBackoff(time.Millisecond, 4*time.Millisecond))
}

// chaosOp is one mutating operation in the fault matrix: how to prepare its
// preconditions, how to invoke it through a faulty path, and how to prove
// afterwards that it was applied exactly once.
type chaosOp struct {
	name   string
	setup  func(t *testing.T, admin *Client)
	invoke func(c *Client) error
	verify func(t *testing.T, admin *Client)
}

// auditCount asserts the object's audit log holds exactly want records —
// the strongest exactly-once witness available over the wire.
func auditCount(t *testing.T, admin *Client, objType ObjectType, name string, want int) {
	t.Helper()
	recs, err := admin.AuditLog(objType, name)
	if err != nil {
		t.Fatalf("audit log: %v", err)
	}
	if len(recs) != want {
		t.Fatalf("audit records for %s = %d, want %d (%+v)", name, len(recs), want, recs)
	}
}

// chaosOps is the fault matrix's operation axis: every mutating client
// operation, each with an exactly-once postcondition.
func chaosOps() []chaosOp {
	dataType := "hdf5"
	return []chaosOp{
		{
			name:   "createFile",
			invoke: func(c *Client) error { _, err := c.CreateFile(FileSpec{Name: "cf.dat", Audited: true}); return err },
			verify: func(t *testing.T, admin *Client) {
				vs, err := admin.FileVersions("cf.dat")
				if err != nil || len(vs) != 1 || vs[0].Version != 1 {
					t.Fatalf("versions = %+v, %v; want exactly one v1", vs, err)
				}
				auditCount(t, admin, ObjectFile, "cf.dat", 1)
			},
		},
		{
			name: "updateFile",
			setup: func(t *testing.T, admin *Client) {
				if _, err := admin.CreateFile(FileSpec{Name: "uf.dat", Audited: true}); err != nil {
					t.Fatal(err)
				}
			},
			invoke: func(c *Client) error {
				_, err := c.UpdateFile("uf.dat", 0, FileUpdate{DataType: &dataType})
				return err
			},
			verify: func(t *testing.T, admin *Client) {
				f, err := admin.GetFile("uf.dat", 0)
				if err != nil || f.DataType != dataType {
					t.Fatalf("file = %+v, %v; want DataType %q", f, err, dataType)
				}
				auditCount(t, admin, ObjectFile, "uf.dat", 2) // create + exactly one update
			},
		},
		{
			name: "deleteFile",
			setup: func(t *testing.T, admin *Client) {
				if _, err := admin.CreateFile(FileSpec{Name: "df.dat"}); err != nil {
					t.Fatal(err)
				}
			},
			invoke: func(c *Client) error { return c.DeleteFile("df.dat", 0) },
			verify: func(t *testing.T, admin *Client) {
				if _, err := admin.GetFile("df.dat", 0); err == nil {
					t.Fatal("file still exists after delete")
				}
			},
		},
		{
			name: "moveFile",
			setup: func(t *testing.T, admin *Client) {
				if _, err := admin.CreateCollection(CollectionSpec{Name: "dst"}); err != nil {
					t.Fatal(err)
				}
				if _, err := admin.CreateFile(FileSpec{Name: "mv.dat"}); err != nil {
					t.Fatal(err)
				}
			},
			invoke: func(c *Client) error { return c.MoveFile("mv.dat", 0, "dst") },
			verify: func(t *testing.T, admin *Client) {
				files, _, err := admin.CollectionContents("dst")
				if err != nil || len(files) != 1 || files[0].Name != "mv.dat" {
					t.Fatalf("dst contents = %+v, %v; want just mv.dat", files, err)
				}
			},
		},
		{
			name: "batchWrite",
			invoke: func(c *Client) error {
				_, err := c.BatchWrite([]BatchOp{
					{CreateFile: &FileSpec{Name: "b1.dat", Audited: true}},
					{CreateFile: &FileSpec{Name: "b2.dat", Audited: true}},
					{CreateFile: &FileSpec{Name: "b3.dat", Audited: true}},
				})
				return err
			},
			verify: func(t *testing.T, admin *Client) {
				for _, name := range []string{"b1.dat", "b2.dat", "b3.dat"} {
					vs, err := admin.FileVersions(name)
					if err != nil || len(vs) != 1 {
						t.Fatalf("versions(%s) = %+v, %v; want exactly one", name, vs, err)
					}
					auditCount(t, admin, ObjectFile, name, 1)
				}
			},
		},
		{
			name: "createCollection",
			invoke: func(c *Client) error {
				_, err := c.CreateCollection(CollectionSpec{Name: "cc", Audited: true})
				return err
			},
			verify: func(t *testing.T, admin *Client) {
				if _, err := admin.GetCollection("cc"); err != nil {
					t.Fatalf("collection missing: %v", err)
				}
				auditCount(t, admin, ObjectCollection, "cc", 1)
			},
		},
		{
			name: "deleteCollection",
			setup: func(t *testing.T, admin *Client) {
				if _, err := admin.CreateCollection(CollectionSpec{Name: "dc"}); err != nil {
					t.Fatal(err)
				}
			},
			invoke: func(c *Client) error { return c.DeleteCollection("dc") },
			verify: func(t *testing.T, admin *Client) {
				if _, err := admin.GetCollection("dc"); err == nil {
					t.Fatal("collection still exists after delete")
				}
			},
		},
		{
			name: "createView",
			invoke: func(c *Client) error {
				_, err := c.CreateView(ViewSpec{Name: "cv", Audited: true})
				return err
			},
			verify: func(t *testing.T, admin *Client) {
				if _, err := admin.ViewContents("cv"); err != nil {
					t.Fatalf("view missing: %v", err)
				}
				auditCount(t, admin, ObjectView, "cv", 1)
			},
		},
		{
			name: "addToView",
			setup: func(t *testing.T, admin *Client) {
				if _, err := admin.CreateView(ViewSpec{Name: "av", Audited: true}); err != nil {
					t.Fatal(err)
				}
				if _, err := admin.CreateFile(FileSpec{Name: "avm.dat"}); err != nil {
					t.Fatal(err)
				}
			},
			invoke: func(c *Client) error { return c.AddToView("av", ObjectFile, "avm.dat") },
			verify: func(t *testing.T, admin *Client) {
				ms, err := admin.ViewContents("av")
				if err != nil || len(ms) != 1 {
					t.Fatalf("members = %+v, %v; want exactly one", ms, err)
				}
				auditCount(t, admin, ObjectView, "av", 2) // create + exactly one add-member
			},
		},
		{
			name: "removeFromView",
			setup: func(t *testing.T, admin *Client) {
				if _, err := admin.CreateView(ViewSpec{Name: "rv"}); err != nil {
					t.Fatal(err)
				}
				if _, err := admin.CreateFile(FileSpec{Name: "rvm.dat"}); err != nil {
					t.Fatal(err)
				}
				if err := admin.AddToView("rv", ObjectFile, "rvm.dat"); err != nil {
					t.Fatal(err)
				}
			},
			invoke: func(c *Client) error { return c.RemoveFromView("rv", ObjectFile, "rvm.dat") },
			verify: func(t *testing.T, admin *Client) {
				ms, err := admin.ViewContents("rv")
				if err != nil || len(ms) != 0 {
					t.Fatalf("members = %+v, %v; want empty", ms, err)
				}
			},
		},
		{
			name: "deleteView",
			setup: func(t *testing.T, admin *Client) {
				if _, err := admin.CreateView(ViewSpec{Name: "dv"}); err != nil {
					t.Fatal(err)
				}
			},
			invoke: func(c *Client) error { return c.DeleteView("dv") },
			verify: func(t *testing.T, admin *Client) {
				if _, err := admin.ViewContents("dv"); err == nil {
					t.Fatal("view still exists after delete")
				}
			},
		},
		{
			name: "defineAttribute",
			invoke: func(c *Client) error {
				_, err := c.DefineAttribute("chaosattr", AttrString, "chaos test attribute")
				return err
			},
			verify: func(t *testing.T, admin *Client) {
				defs, err := admin.ListAttributeDefs()
				if err != nil {
					t.Fatal(err)
				}
				n := 0
				for _, d := range defs {
					if d.Name == "chaosattr" {
						n++
					}
				}
				if n != 1 {
					t.Fatalf("chaosattr defined %d times, want exactly once", n)
				}
			},
		},
		{
			name: "setAttribute",
			setup: func(t *testing.T, admin *Client) {
				if _, err := admin.DefineAttribute("sa", AttrString, ""); err != nil {
					t.Fatal(err)
				}
				if _, err := admin.CreateFile(FileSpec{Name: "sa.dat"}); err != nil {
					t.Fatal(err)
				}
			},
			invoke: func(c *Client) error {
				return c.SetAttribute(ObjectFile, "sa.dat", "sa", String("v1"))
			},
			verify: func(t *testing.T, admin *Client) {
				attrs, err := admin.GetAttributes(ObjectFile, "sa.dat")
				if err != nil || len(attrs) != 1 || attrs[0].Value.Render() != "v1" {
					t.Fatalf("attrs = %+v, %v; want exactly one sa=v1", attrs, err)
				}
			},
		},
		{
			name: "unsetAttribute",
			setup: func(t *testing.T, admin *Client) {
				if _, err := admin.DefineAttribute("ua", AttrString, ""); err != nil {
					t.Fatal(err)
				}
				if _, err := admin.CreateFile(FileSpec{Name: "ua.dat"}); err != nil {
					t.Fatal(err)
				}
				if err := admin.SetAttribute(ObjectFile, "ua.dat", "ua", String("x")); err != nil {
					t.Fatal(err)
				}
			},
			invoke: func(c *Client) error { return c.UnsetAttribute(ObjectFile, "ua.dat", "ua") },
			verify: func(t *testing.T, admin *Client) {
				attrs, err := admin.GetAttributes(ObjectFile, "ua.dat")
				if err != nil || len(attrs) != 0 {
					t.Fatalf("attrs = %+v, %v; want none", attrs, err)
				}
			},
		},
		{
			name: "annotate",
			setup: func(t *testing.T, admin *Client) {
				if _, err := admin.CreateFile(FileSpec{Name: "an.dat"}); err != nil {
					t.Fatal(err)
				}
			},
			invoke: func(c *Client) error {
				_, err := c.Annotate(ObjectFile, "an.dat", "calibration run")
				return err
			},
			verify: func(t *testing.T, admin *Client) {
				anns, err := admin.Annotations(ObjectFile, "an.dat")
				if err != nil || len(anns) != 1 {
					t.Fatalf("annotations = %+v, %v; want exactly one", anns, err)
				}
			},
		},
		{
			name: "addProvenance",
			setup: func(t *testing.T, admin *Client) {
				if _, err := admin.CreateFile(FileSpec{Name: "pv.dat"}); err != nil {
					t.Fatal(err)
				}
			},
			invoke: func(c *Client) error { return c.AddProvenance("pv.dat", 0, "transformed by step 3") },
			verify: func(t *testing.T, admin *Client) {
				recs, err := admin.Provenance("pv.dat", 0)
				if err != nil || len(recs) != 1 {
					t.Fatalf("provenance = %+v, %v; want exactly one record", recs, err)
				}
			},
		},
		{
			name: "grant",
			setup: func(t *testing.T, admin *Client) {
				if _, err := admin.CreateFile(FileSpec{Name: "gr.dat"}); err != nil {
					t.Fatal(err)
				}
			},
			// Grant is naturally idempotent (duplicate grants are no-ops), so
			// it needs no replay key — retries must still converge.
			invoke: func(c *Client) error { return c.Grant(ObjectFile, "gr.dat", testBob, PermRead) },
			verify: func(t *testing.T, admin *Client) {},
		},
		{
			name: "revoke",
			setup: func(t *testing.T, admin *Client) {
				if _, err := admin.CreateFile(FileSpec{Name: "rk.dat"}); err != nil {
					t.Fatal(err)
				}
				if err := admin.Grant(ObjectFile, "rk.dat", testBob, PermRead); err != nil {
					t.Fatal(err)
				}
			},
			invoke: func(c *Client) error { return c.Revoke(ObjectFile, "rk.dat", testBob, PermRead) },
			verify: func(t *testing.T, admin *Client) {},
		},
		{
			name: "registerWriter",
			invoke: func(c *Client) error {
				return c.RegisterWriter(Writer{DN: testBob, Institution: "ISI", Email: "bob@isi.edu"})
			},
			verify: func(t *testing.T, admin *Client) {
				w, err := admin.GetWriter(testBob)
				if err != nil || w.Institution != "ISI" {
					t.Fatalf("writer = %+v, %v", w, err)
				}
			},
		},
		{
			name: "registerExternalCatalog",
			invoke: func(c *Client) error {
				_, err := c.RegisterExternalCatalog(ExternalCatalog{
					Name: "rls-east", Type: "RLS", Host: "rls.example.org",
				})
				return err
			},
			verify: func(t *testing.T, admin *Client) {
				list, err := admin.ListExternalCatalogs()
				if err != nil {
					t.Fatal(err)
				}
				n := 0
				for _, ec := range list {
					if ec.Name == "rls-east" {
						n++
					}
				}
				if n != 1 {
					t.Fatalf("rls-east registered %d times, want exactly once", n)
				}
			},
		},
	}
}

// TestChaosFaultMatrix is the headline chaos suite: every mutating client
// operation crossed with every fault site. Each cell injects three failures
// (Times: 3) into that operation's path and asserts that a retrying client
// with idempotency keys lands the mutation exactly once. The after-site
// cells are the critical ones — the handler commits, the reply is lost, and
// only the replay cache stands between the retry and a double apply.
func TestChaosFaultMatrix(t *testing.T) {
	sites := []struct {
		name string
		rule func(op string) FaultRule
	}{
		{"dispatch-error", func(op string) FaultRule {
			return FaultRule{Site: FaultSiteDispatch, Op: op, Kind: FaultKindError, Times: 3}
		}},
		{"after-error", func(op string) FaultRule {
			return FaultRule{Site: FaultSiteAfter, Op: op, Kind: FaultKindError, Times: 3}
		}},
		{"transport-partial", func(op string) FaultRule {
			return FaultRule{Site: FaultSiteTransport, Op: op, Kind: FaultKindPartial, Times: 3}
		}},
		// No op filter on the db site: the op name there is the statement
		// verb, and failing the first three statements of any verb covers
		// pre-reads, the mutation itself, audit and replay writes alike.
		{"db-error", func(op string) FaultRule {
			return FaultRule{Site: FaultSiteDB, Kind: FaultKindError, Times: 3}
		}},
	}
	for _, seed := range chaosSeeds(t) {
		for _, site := range sites {
			for _, op := range chaosOps() {
				t.Run(fmt.Sprintf("seed%d/%s/%s", seed, site.name, op.name), func(t *testing.T) {
					inj := NewFaultInjector(seed, site.rule(op.name))
					inj.SetEnabled(false) // setup and verify run fault-free
					_, url := startServer(t, ServerOptions{FaultInjector: inj})
					admin := NewClient(url, testAlice)
					if op.setup != nil {
						op.setup(t, admin)
					}

					c := retryClient(url)
					inj.SetEnabled(true)
					err := op.invoke(c)
					inj.SetEnabled(false)

					if err != nil {
						t.Fatalf("%s through %s faults = %v, want success after retries", op.name, site.name, err)
					}
					if got := inj.Total(); got != 3 {
						t.Fatalf("faults injected = %d, want all 3", got)
					}
					if st := c.RetryStats(); st.Retries != 3 {
						t.Fatalf("retries = %d, want exactly 3 (one per injected fault)", st.Retries)
					}
					op.verify(t, admin)
				})
			}
		}
	}
}

// With retries off, each fault surfaces as its documented sentinel: injected
// server-side errors match ErrUnavailable, severed replies match
// ErrTransport — the contract callers build their own retry policies on.
func TestChaosNoRetrySentinels(t *testing.T) {
	cases := []struct {
		name string
		rule FaultRule
		want error
	}{
		{"dispatch-error", FaultRule{Site: FaultSiteDispatch, Kind: FaultKindError, Times: 1}, ErrUnavailable},
		{"after-error", FaultRule{Site: FaultSiteAfter, Kind: FaultKindError, Times: 1}, ErrUnavailable},
		{"db-error", FaultRule{Site: FaultSiteDB, Kind: FaultKindError, Times: 1}, ErrUnavailable},
		{"transport-partial", FaultRule{Site: FaultSiteTransport, Kind: FaultKindPartial, Times: 1}, ErrTransport},
		{"transport-drop", FaultRule{Site: FaultSiteTransport, Kind: FaultKindDrop, Times: 1}, ErrTransport},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj := NewFaultInjector(1, tc.rule)
			_, url := startServer(t, ServerOptions{FaultInjector: inj})
			c := NewClient(url, testAlice) // retries off
			_, err := c.CreateFile(FileSpec{Name: "s.dat"})
			if !Retryable(err) {
				t.Fatalf("error %v should be Retryable", err)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want errors.Is %v", err, tc.want)
			}
		})
	}
}

// TestChaosSoak hammers a probabilistically faulty server with concurrent
// batch writers and paginating readers, then turns injection off and checks
// convergence: every batch a writer saw succeed exists exactly once, and a
// batch that exhausted its retries either vanished whole or landed whole —
// never partially, never twice.
func TestChaosSoak(t *testing.T) {
	const (
		writers       = 4
		readersN      = 2
		batchesPerW   = 25
		filesPerBatch = 5
	)
	inj := NewFaultInjector(42,
		FaultRule{Site: FaultSiteDispatch, Kind: FaultKindError, Prob: 0.05},
		FaultRule{Site: FaultSiteAfter, Kind: FaultKindError, Prob: 0.05},
		FaultRule{Site: FaultSiteTransport, Kind: FaultKindPartial, Prob: 0.05},
		FaultRule{Site: FaultSiteDB, Op: "insert", Kind: FaultKindError, Prob: 0.01},
	)
	inj.SetEnabled(false)
	_, url := startServer(t, ServerOptions{FaultInjector: inj})
	admin := NewClient(url, testAlice)
	if _, err := admin.DefineAttribute("soak", AttrString, ""); err != nil {
		t.Fatal(err)
	}
	inj.SetEnabled(true)

	var (
		mu        sync.Mutex
		committed []string // batches the writer saw succeed
		unknown   []string // batches that exhausted retries (outcome unknown)
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewClient(url, testAlice,
				WithRetry(8), WithBackoff(500*time.Microsecond, 4*time.Millisecond))
			for b := 0; b < batchesPerW; b++ {
				var ops []BatchOp
				var names []string
				for f := 0; f < filesPerBatch; f++ {
					name := fmt.Sprintf("soak-w%d-b%d-f%d.dat", w, b, f)
					names = append(names, name)
					ops = append(ops, BatchOp{CreateFile: &FileSpec{
						Name:       name,
						Attributes: []Attribute{{Name: "soak", Value: String("1")}},
					}})
				}
				_, err := c.BatchWrite(ops)
				mu.Lock()
				if err == nil {
					committed = append(committed, names...)
				} else if Retryable(err) {
					unknown = append(unknown, names...)
				} else {
					t.Errorf("writer %d batch %d: non-retryable %v", w, b, err)
				}
				mu.Unlock()
			}
		}(w)
	}

	for r := 0; r < readersN; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewClient(url, testAlice,
				WithRetry(8), WithBackoff(500*time.Microsecond, 4*time.Millisecond))
			q := Query{Target: ObjectFile, Predicates: []Predicate{
				{Attribute: "soak", Op: OpEq, Value: String("1")},
			}}
			token := ""
			for {
				select {
				case <-stop:
					return
				default:
				}
				names, next, err := c.RunQueryPage(q, 50, token)
				if err != nil {
					if !Retryable(err) {
						t.Errorf("reader: non-retryable %v", err)
						return
					}
					token = "" // transient outage outlived the retries; restart the walk
					continue
				}
				_ = names
				token = next
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Writers finish on their own; readers poll until told to stop.
	for {
		mu.Lock()
		writtenAll := len(committed)+len(unknown) == writers*batchesPerW*filesPerBatch
		mu.Unlock()
		if writtenAll {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	<-done
	inj.SetEnabled(false)

	// Convergence: committed batches exist exactly once; unknown batches are
	// all-or-nothing (the batch transaction is atomic even when the reply
	// never arrived).
	for _, name := range committed {
		vs, err := admin.FileVersions(name)
		if err != nil || len(vs) != 1 {
			t.Fatalf("committed %s: versions = %+v, %v; want exactly one", name, vs, err)
		}
	}
	byBatch := map[string]int{}
	for _, name := range unknown {
		batch := name[:strings.LastIndex(name, "-")]
		if _, err := admin.FileVersions(name); err == nil {
			byBatch[batch]++
		} else {
			byBatch[batch] += 0
		}
	}
	for batch, n := range byBatch {
		if n != 0 && n != filesPerBatch {
			t.Fatalf("unknown batch %s landed %d/%d files — batches must be all-or-nothing", batch, n, filesPerBatch)
		}
	}
	if inj.Total() == 0 {
		t.Fatal("soak injected no faults; the schedule is vacuous")
	}
	t.Logf("soak: %d faults injected, %d files committed, %d files in unknown batches",
		inj.Total(), len(committed), len(unknown))
}
