package mcs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// httpPost sends a raw SOAP envelope and returns the response body.
func httpPost(url, body string) (string, error) {
	resp, err := http.Post(url, "text/xml", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return string(raw), err
}

// Client-side failure handling: dead endpoints, timeouts and bad payloads
// must surface as errors, never hangs or corrupt results.

func TestClientDeadEndpoint(t *testing.T) {
	c := NewClient("http://127.0.0.1:1", "/CN=x") // port 1: connection refused
	c.SetTimeout(2 * time.Second)
	if _, err := c.Ping(); err == nil {
		t.Fatal("call to dead endpoint succeeded")
	}
	if _, err := c.GetFile("f", 0); err == nil {
		t.Fatal("GetFile against dead endpoint succeeded")
	}
}

func TestClientNonSOAPResponder(t *testing.T) {
	ts := httptest.NewServer(nil) // 404s for everything
	defer ts.Close()
	c := NewClient(ts.URL+"/nosuch", "/CN=x")
	if _, err := c.Ping(); err == nil {
		t.Fatal("non-SOAP responder accepted")
	}
}

func TestServerRejectsBadAttributeOnWire(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	c := NewClient(url, testAlice)
	if _, err := c.DefineAttribute("n", AttrInt, ""); err != nil {
		t.Fatal(err)
	}
	// A raw envelope with an unparsable attribute value: the server must
	// fault and create nothing.
	env := `<?xml version="1.0"?>
<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/">
 <soapenv:Body>
  <createFile xmlns="urn:mcs">
   <caller>` + testAlice + `</caller>
   <name>bad</name>
   <attributes><attribute><name>n</name><type>int</type><value>not-a-number</value></attribute></attributes>
  </createFile>
 </soapenv:Body>
</soapenv:Envelope>`
	resp, err := httpPost(url, env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp, "Fault") {
		t.Fatalf("no fault in response: %s", resp)
	}
	if _, err := c.GetFile("bad", 0); err == nil {
		t.Fatal("file created despite bad attribute")
	}
}

func TestFaultMessagesAreInformative(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	c := NewClient(url, testAlice)
	_, err := c.CreateFile(FileSpec{Name: ""})
	if err == nil || !strings.Contains(err.Error(), "name required") {
		t.Fatalf("err = %v", err)
	}
	err = c.DeleteCollection("ghost")
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("err = %v", err)
	}
}
