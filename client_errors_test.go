package mcs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// httpPost sends a raw SOAP envelope and returns the response body.
func httpPost(url, body string) (string, error) {
	resp, err := http.Post(url, "text/xml", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return string(raw), err
}

// Client-side failure handling: dead endpoints, timeouts and bad payloads
// must surface as errors, never hangs or corrupt results.

func TestClientDeadEndpoint(t *testing.T) {
	c := NewClient("http://127.0.0.1:1", "/CN=x") // port 1: connection refused
	c.SetTimeout(2 * time.Second)
	if _, err := c.Ping(); err == nil {
		t.Fatal("call to dead endpoint succeeded")
	}
	if _, err := c.GetFile("f", 0); err == nil {
		t.Fatal("GetFile against dead endpoint succeeded")
	}
}

func TestClientNonSOAPResponder(t *testing.T) {
	ts := httptest.NewServer(nil) // 404s for everything
	defer ts.Close()
	c := NewClient(ts.URL+"/nosuch", "/CN=x")
	if _, err := c.Ping(); err == nil {
		t.Fatal("non-SOAP responder accepted")
	}
}

func TestClientNon2xxQuotesStatusAndBody(t *testing.T) {
	// An intermediary's error page (a proxy 502, a load balancer's HTML)
	// must not reach the XML decoder as if it were a SOAP reply: the error
	// quotes the HTTP status and a prefix of the body so the operator can
	// see what actually answered.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		w.WriteHeader(http.StatusBadGateway)
		io.WriteString(w, "<html><body>upstream connect error</body></html>")
	}))
	defer ts.Close()
	c := NewClient(ts.URL, "/CN=x")
	_, err := c.Ping()
	if err == nil {
		t.Fatal("502 HTML response accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "502") {
		t.Fatalf("error does not quote the HTTP status: %v", err)
	}
	if !strings.Contains(msg, "upstream connect error") {
		t.Fatalf("error does not quote the body: %v", err)
	}
}

func TestClientFaultOn500StillFault(t *testing.T) {
	// Real SOAP faults arrive with HTTP 500 (SOAP 1.1 binding) and must
	// keep surfacing as faults, not as opaque status errors.
	_, url := startServer(t, ServerOptions{})
	c := NewClient(url, testAlice)
	_, err := c.GetFile("no-such-file", 0)
	if err == nil {
		t.Fatal("missing file lookup succeeded")
	}
	if strings.Contains(err.Error(), "server returned") {
		t.Fatalf("fault degraded to a status error: %v", err)
	}
	if !strings.Contains(err.Error(), "not found") {
		t.Fatalf("fault message lost: %v", err)
	}
}

func TestServerRejectsBadAttributeOnWire(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	c := NewClient(url, testAlice)
	if _, err := c.DefineAttribute("n", AttrInt, ""); err != nil {
		t.Fatal(err)
	}
	// A raw envelope with an unparsable attribute value: the server must
	// fault and create nothing.
	env := `<?xml version="1.0"?>
<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/">
 <soapenv:Body>
  <createFile xmlns="urn:mcs">
   <caller>` + testAlice + `</caller>
   <name>bad</name>
   <attributes><attribute><name>n</name><type>int</type><value>not-a-number</value></attribute></attributes>
  </createFile>
 </soapenv:Body>
</soapenv:Envelope>`
	resp, err := httpPost(url, env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp, "Fault") {
		t.Fatalf("no fault in response: %s", resp)
	}
	if _, err := c.GetFile("bad", 0); err == nil {
		t.Fatal("file created despite bad attribute")
	}
}

func TestFaultMessagesAreInformative(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	c := NewClient(url, testAlice)
	_, err := c.CreateFile(FileSpec{Name: ""})
	if err == nil || !strings.Contains(err.Error(), "name required") {
		t.Fatalf("err = %v", err)
	}
	err = c.DeleteCollection("ghost")
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("err = %v", err)
	}
}
