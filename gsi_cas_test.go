package mcs

import (
	"net/http/httptest"
	"testing"
	"time"

	"mcs/internal/gsi"
)

// TestGSIAndCASCombined runs the full security stack at once: requests must
// be GSI-signed (authenticating the member DN from the credential chain)
// AND carry a CAS assertion for that authenticated DN before the community
// identity's rights apply.
func TestGSIAndCASCombined(t *testing.T) {
	ca, err := gsi.NewCA("/O=Grid/CN=RootCA")
	if err != nil {
		t.Fatal(err)
	}
	cas, err := gsi.NewCAS("ligo.org")
	if err != nil {
		t.Fatal(err)
	}
	const (
		adminDN     = "/O=Grid/CN=Admin"
		communityDN = "/O=Grid/CN=ligo-community"
		memberDN    = "/O=LIGO/CN=Dana"
	)
	srv, err := NewServer(ServerOptions{
		CatalogOptions: Options{Owner: adminDN, EnforceAuthz: true},
		TrustStore:     gsi.NewTrustStore(ca.Root),
		CAS: &CASIntegration{
			Community: "ligo.org", Key: cas.PublicKey(), CommunityDN: communityDN,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Admin grants the community service create rights (admin also signs).
	adminCred, err := ca.Issue(adminDN, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	adminC := NewClient(ts.URL, "ignored")
	adminC.UseCredential(adminCred)
	if err := adminC.Grant(ObjectService, "", communityDN, PermCreate); err != nil {
		t.Fatal(err)
	}

	// Member with a proxy credential but no assertion: authenticated, but
	// unauthorized.
	memberCred, err := ca.Issue(memberDN, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := memberCred.Delegate(10 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	memberC := NewClient(ts.URL, "ignored")
	memberC.UseCredential(proxy)
	if _, err := memberC.CreateFile(FileSpec{Name: "x"}); err == nil {
		t.Fatal("create without assertion succeeded")
	}

	// CAS policy grants Dana create rights; the assertion subject must be
	// the GSI-authenticated DN (the proxy's effective identity).
	cas.Grant(memberDN, "", gsi.RightCreate, gsi.RightRead)
	a, err := cas.IssueAssertion(memberDN, "", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	encoded, err := gsi.EncodeAssertion(a)
	if err != nil {
		t.Fatal(err)
	}
	memberC.UseAssertion(encoded)
	f, err := memberC.CreateFile(FileSpec{Name: "signed-and-asserted.dat"})
	if err != nil {
		t.Fatal(err)
	}
	if f.Creator != communityDN {
		t.Fatalf("creator = %q, want community identity", f.Creator)
	}

	// A forged client declaring Dana's DN but signing with a different
	// credential cannot use her assertion: the assertion subject is checked
	// against the authenticated identity, not the declared one.
	eveCred, err := ca.Issue("/O=Evil/CN=Eve", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	eveC := NewClient(ts.URL, memberDN) // declares Dana
	eveC.UseCredential(eveCred)         // but signs as Eve
	eveC.UseAssertion(encoded)          // with Dana's stolen assertion
	if _, err := eveC.CreateFile(FileSpec{Name: "stolen.dat"}); err == nil {
		t.Fatal("stolen assertion over mismatched credential accepted")
	}
}
