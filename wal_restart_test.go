package mcs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Restart-durability tests at the catalog level: the write-ahead log must
// carry every acknowledged mutation across a hard crash — no graceful
// shutdown, no final snapshot — and compose with snapshots as checkpoints.
// A "crash" here is simply abandoning the catalog and its WAL without
// closing either: exactly what kill -9 leaves behind, minus the torn tail
// (which internal/sqldb's torn-write corpus covers byte-by-byte).

// openWALCatalog opens a fresh catalog with a WAL at path attached.
func openWALCatalog(t *testing.T, path string) (*Catalog, *WAL, WALReplayStats) {
	t.Helper()
	cat, err := OpenCatalog(Options{})
	if err != nil {
		t.Fatal(err)
	}
	w, stats, err := cat.OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	return cat, w, stats
}

func TestWALRestartDurability(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "cat.snap.wal")

	cat, _, _ := openWALCatalog(t, walPath)
	if _, err := cat.CreateFile(testAlice, FileSpec{Name: "a.dat", Audited: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.DefineAttribute(testAlice, "run", AttrInt, "run number"); err != nil {
		t.Fatal(err)
	}
	if err := cat.SetAttribute(testAlice, ObjectFile, "a.dat", "run", Int(42)); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateCollection(testAlice, CollectionSpec{Name: "c1"}); err != nil {
		t.Fatal(err)
	}

	// Hard crash: no snapshot, no WAL close. Recover from the log alone.
	cat2, _, stats := openWALCatalog(t, walPath)
	if stats.Applied == 0 || stats.TornBytes != 0 {
		t.Fatalf("recovery stats = %+v, want clean replay", stats)
	}
	vs, err := cat2.FileVersions(testAlice, "a.dat")
	if err != nil || len(vs) != 1 {
		t.Fatalf("versions = %+v, %v; want exactly one", vs, err)
	}
	attrs, err := cat2.GetAttributes(testAlice, ObjectFile, "a.dat")
	if err != nil || len(attrs) != 1 || attrs[0].Value.Render() != "42" {
		t.Fatalf("attrs = %+v, %v; want run=42", attrs, err)
	}
	recs, err := cat2.AuditLog(testAlice, ObjectFile, "a.dat")
	if err != nil || len(recs) != 1 {
		t.Fatalf("audit = %+v, %v; want exactly one record", recs, err)
	}
	if _, err := cat2.GetCollection(testAlice, "c1"); err != nil {
		t.Fatalf("collection lost across crash: %v", err)
	}
}

func TestWALRestartFromSnapshotPlusSuffix(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "cat.snap")
	walPath := snapPath + ".wal"

	cat, w, _ := openWALCatalog(t, walPath)
	if _, err := cat.CreateFile(testAlice, FileSpec{Name: "pre.dat"}); err != nil {
		t.Fatal(err)
	}

	// Checkpoint: rotate, snapshot, drop the covered generation — the
	// sequence mcsd runs on its snapshot ticker.
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	lsn := cat.LastLSN()
	var snap bytes.Buffer
	if err := cat.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if err := w.DropCovered(lsn); err != nil {
		t.Fatal(err)
	}

	// Post-checkpoint commits live only in the log suffix.
	if _, err := cat.CreateFile(testAlice, FileSpec{Name: "post.dat"}); err != nil {
		t.Fatal(err)
	}

	// Crash; recover from snapshot + suffix.
	cat2, err := RestoreCatalog(Options{}, &snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := cat2.LastLSN(); got != lsn {
		t.Fatalf("restored LSN = %d, want %d", got, lsn)
	}
	_, stats, err := cat2.OpenWAL(walPath, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The suffix re-applies only what the snapshot misses: post.dat (plus
	// nothing from the dropped, fully covered generation).
	if stats.Applied != 1 {
		t.Fatalf("replay stats = %+v, want exactly 1 applied", stats)
	}
	for _, name := range []string{"pre.dat", "post.dat"} {
		vs, err := cat2.FileVersions(testAlice, name)
		if err != nil || len(vs) != 1 {
			t.Fatalf("versions(%s) = %+v, %v; want exactly one", name, vs, err)
		}
	}
}

// TestChaosWALKillReplay is the kill-and-replay leg of the chaos matrix: a
// retried mutation straddles a simulated crash, and the replay cache —
// committed in the same transaction as the mutation and therefore in the
// same WAL record — must yield exactly-once application and a single audit
// record after recovery. Two fault gates:
//
//   - append-error: the first commit attempt dies before publication; the
//     pre-crash retry is the one that lands.
//   - fsync-error: the first commit attempt is applied and logged but
//     acknowledged as failed (durability uncertain); the pre-crash retry is
//     answered from the replay cache.
//
// In both legs a post-crash retry with the same idempotency key must also
// come from the (recovered) replay cache, never re-apply.
func TestChaosWALKillReplay(t *testing.T) {
	gates := []struct {
		name string
		op   string
	}{
		{"append-error", "append"},
		{"fsync-error", "fsync"},
	}
	for _, seed := range chaosSeeds(t) {
		for _, gate := range gates {
			t.Run(fmt.Sprintf("seed%d/%s", seed, gate.name), func(t *testing.T) {
				dir := t.TempDir()
				walPath := filepath.Join(dir, "cat.snap.wal")
				cat, w, _ := openWALCatalog(t, walPath)

				// NewServer wires the injector into the WAL's fault hook —
				// the same path mcsd's -fault-spec "site=wal,..." takes.
				inj := NewFaultInjector(seed, FaultRule{
					Site: FaultSiteWAL, Op: gate.op, Kind: FaultKindError, Times: 1,
				})
				if _, err := NewServer(ServerOptions{Catalog: cat, WAL: w, FaultInjector: inj}); err != nil {
					t.Fatal(err)
				}

				key := "kill-replay-" + gate.name
				spec := FileSpec{Name: "kz.dat", Audited: true}
				if _, err := cat.CreateFile(testAlice, spec, WithIdempotencyKey(key)); err == nil {
					t.Fatalf("first attempt through %s gate succeeded, want injected failure", gate.name)
				}
				// The client-side retry, pre-crash.
				if _, err := cat.CreateFile(testAlice, spec, WithIdempotencyKey(key)); err != nil {
					t.Fatalf("pre-crash retry: %v", err)
				}
				if inj.Total() != 1 {
					t.Fatalf("faults injected = %d, want 1", inj.Total())
				}
				hitsBefore := cat.ReplayHits()
				if gate.op == "fsync" && hitsBefore != 1 {
					// fsync gate: the mutation landed on attempt one, so the
					// retry must have been a replay hit, not a re-apply.
					t.Fatalf("pre-crash replay hits = %d, want 1", hitsBefore)
				}

				// Crash (abandon catalog and WAL), then recover.
				cat2, _, stats := openWALCatalog(t, walPath)
				if stats.Applied == 0 {
					t.Fatalf("recovery replayed nothing: %+v", stats)
				}
				vs, err := cat2.FileVersions(testAlice, "kz.dat")
				if err != nil || len(vs) != 1 || vs[0].Version != 1 {
					t.Fatalf("versions = %+v, %v; want exactly one v1", vs, err)
				}
				recs, err := cat2.AuditLog(testAlice, ObjectFile, "kz.dat")
				if err != nil || len(recs) != 1 {
					t.Fatalf("audit = %+v, %v; want exactly one record", recs, err)
				}

				// The straddling retry: same key, other side of the crash.
				// The replay cache rode the same WAL record as the mutation,
				// so this must be a cache hit, not a second application.
				if _, err := cat2.CreateFile(testAlice, spec, WithIdempotencyKey(key)); err != nil {
					t.Fatalf("post-crash retry: %v", err)
				}
				if hits := cat2.ReplayHits(); hits != 1 {
					t.Fatalf("post-crash replay hits = %d, want 1", hits)
				}
				vs, err = cat2.FileVersions(testAlice, "kz.dat")
				if err != nil || len(vs) != 1 {
					t.Fatalf("versions after post-crash retry = %+v, %v; want still one", vs, err)
				}
				recs, err = cat2.AuditLog(testAlice, ObjectFile, "kz.dat")
				if err != nil || len(recs) != 1 {
					t.Fatalf("audit after post-crash retry = %+v, %v; want still one", recs, err)
				}
			})
		}
	}
}

// The wal fault site is reachable from the -fault-spec grammar, so chaos
// runs against a real daemon can gate the log without code changes.
func TestWALFaultSpecParses(t *testing.T) {
	rules, err := ParseFaultSpec("site=wal,op=fsync,kind=error,times=2;site=wal,op=append,kind=partial,truncate=5")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].Site != FaultSiteWAL || rules[1].TruncateAt != 5 {
		t.Fatalf("rules = %+v", rules)
	}
}

// A server with a WAL exposes its counters on /metrics and /statz.
func TestWALServerCounters(t *testing.T) {
	dir := t.TempDir()
	cat, w, _ := openWALCatalog(t, filepath.Join(dir, "cat.snap.wal"))
	srv, url := startServer(t, ServerOptions{Catalog: cat, WAL: w})
	c := NewClient(url, testAlice)
	if _, err := c.CreateFile(FileSpec{Name: "m.dat"}); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Appends == 0 || st.DurableLSN == 0 {
		t.Fatalf("wal stats = %+v, want appends and durable lsn > 0", st)
	}
	var buf bytes.Buffer
	if err := srv.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"mcs_wal_appends_total", "mcs_wal_fsyncs_total", "mcs_wal_replayed_total"} {
		if !bytes.Contains(buf.Bytes(), []byte(metric)) {
			t.Fatalf("/metrics lacks %s:\n%s", metric, buf.String())
		}
	}
}

// Sanity: the log file actually exists and grows beside the snapshot path,
// the operator-visible contract of -snapshot + -wal.
func TestWALFileOnDisk(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "cat.snap.wal")
	cat, _, _ := openWALCatalog(t, walPath)
	if _, err := cat.CreateFile(testAlice, FileSpec{Name: "d.dat"}); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(walPath)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("wal file = %v, %v; want non-empty", fi, err)
	}
}
