package mcs

import (
	"context"
	"net/http"

	"mcs/internal/jsonwire"
	"mcs/internal/soap"
)

// TransportKind selects one of the built-in wire encodings.
type TransportKind string

const (
	// TransportSOAP is the paper-faithful SOAP/HTTP wire (the default).
	TransportSOAP TransportKind = "soap"
	// TransportJSON is the compact JSON/HTTP wire (/api/v1/<op>): the same
	// operations, error identities and retry semantics with cheaper
	// encoding, plus NDJSON streaming for large results.
	TransportJSON TransportKind = "json"
)

// Transport is one wire encoding of the MCS operation set. Both built-in
// transports carry identical semantics — same operations, same
// X-MCS-Request-ID / X-MCS-Idempotency-Key headers, same fault-code-to-
// sentinel mapping — so a Client behaves identically over either; only the
// bytes differ. Implementations must honor extra headers by overriding any
// per-client defaults, because the retry layer pins request IDs and
// idempotency keys through them.
type Transport interface {
	// Call performs one request/response round trip for the named
	// operation, decoding the reply into resp.
	Call(ctx context.Context, action string, extra http.Header, req, resp any) error
}

// StreamTransport is implemented by transports whose encoding supports
// incremental results (NDJSON on the JSON wire). Rows are decoded one at a
// time into values from newRow and handed to row as they arrive.
type StreamTransport interface {
	Transport
	Stream(ctx context.Context, action string, extra http.Header, req any,
		newRow func() any, row func(any) error) error
}

// soapTransport adapts the SOAP wire client to the Transport interface.
type soapTransport struct{ c *soap.Client }

func (t soapTransport) Call(ctx context.Context, action string, extra http.Header, req, resp any) error {
	return t.c.CallHdrCtx(ctx, action, extra, req, resp)
}

// jsonTransport adapts the JSON wire client; it also streams.
type jsonTransport struct{ c *jsonwire.Client }

func (t jsonTransport) Call(ctx context.Context, action string, extra http.Header, req, resp any) error {
	return t.c.CallHdrCtx(ctx, action, extra, req, resp)
}

func (t jsonTransport) Stream(ctx context.Context, action string, extra http.Header, req any,
	newRow func() any, row func(any) error) error {
	return t.c.StreamCtx(ctx, action, extra, req, newRow, row)
}
