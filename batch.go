package mcs

import (
	"context"

	"mcs/internal/mcswire"
)

// BatchBuilder accumulates mutations for one BatchWrite call. Methods chain:
//
//	res, err := c.BatchWrite(mcs.NewBatch().
//		CreateFile(mcs.FileSpec{Name: "f1"}).
//		SetAttribute(mcs.ObjectFile, "f1", mcs.Attribute{Name: "owner", Value: mcs.String("cms")}).
//		Ops())
type BatchBuilder struct {
	ops []BatchOp
}

// NewBatch returns an empty batch builder.
func NewBatch() *BatchBuilder { return &BatchBuilder{} }

// CreateFile appends a file registration.
func (b *BatchBuilder) CreateFile(spec FileSpec) *BatchBuilder {
	b.ops = append(b.ops, BatchOp{CreateFile: &spec})
	return b
}

// UpdateFile appends a static-metadata update of the named file version
// (version 0 = latest).
func (b *BatchBuilder) UpdateFile(name string, version int, upd FileUpdate) *BatchBuilder {
	b.ops = append(b.ops, BatchOp{UpdateFile: &BatchFileUpdate{Name: name, Version: version, Update: upd}})
	return b
}

// DeleteFile appends a file deletion (version 0 = latest).
func (b *BatchBuilder) DeleteFile(name string, version int) *BatchBuilder {
	b.ops = append(b.ops, BatchOp{DeleteFile: &BatchFileRef{Name: name, Version: version}})
	return b
}

// SetAttribute appends a user-defined attribute binding.
func (b *BatchBuilder) SetAttribute(objType ObjectType, object string, a Attribute) *BatchBuilder {
	b.ops = append(b.ops, BatchOp{SetAttribute: &BatchSetAttribute{Object: objType, Name: object, Attribute: a}})
	return b
}

// Annotate appends a free-text annotation.
func (b *BatchBuilder) Annotate(objType ObjectType, object, text string) *BatchBuilder {
	b.ops = append(b.ops, BatchOp{Annotate: &BatchAnnotation{Object: objType, Name: object, Text: text}})
	return b
}

// Len returns the number of accumulated ops.
func (b *BatchBuilder) Len() int { return len(b.ops) }

// Ops returns the accumulated ops in insertion order.
func (b *BatchBuilder) Ops() []BatchOp { return b.ops }

// BatchWrite applies a batch with context.Background.
func (c *Client) BatchWrite(ops []BatchOp) ([]BatchResult, error) {
	return c.BatchWriteCtx(context.Background(), ops)
}

// BatchWriteCtx applies a sequence of mutations in one server-side
// transaction and one SOAP round trip. The batch is all-or-nothing: on
// error nothing was applied, and the error names the failing op by index.
func (c *Client) BatchWriteCtx(ctx context.Context, ops []BatchOp) ([]BatchResult, error) {
	req := &mcswire.BatchWriteRequest{Caller: c.dn}
	for _, op := range ops {
		wo, err := mcswire.BatchOpToWire(op)
		if err != nil {
			return nil, err
		}
		req.Ops = append(req.Ops, wo)
	}
	var resp mcswire.BatchWriteResponse
	if err := c.call(ctx, "batchWrite", req, &resp); err != nil {
		return nil, err
	}
	results := make([]BatchResult, 0, len(resp.Results))
	for _, wr := range resp.Results {
		results = append(results, BatchResult{Action: wr.Action, ID: wr.ID, Version: wr.Version})
	}
	return results, nil
}

// BatchWriteQuiet applies a batch without per-op acks, with
// context.Background.
func (c *Client) BatchWriteQuiet(ops []BatchOp) (int, error) {
	return c.BatchWriteQuietCtx(context.Background(), ops)
}

// BatchWriteQuietCtx applies a batch like BatchWriteCtx but asks the server
// to suppress the per-op results, returning only the count of applied ops.
// Bulk loaders that never read the acks save one result element per op in
// serialization, transfer and parsing; atomicity and error reporting are
// identical to BatchWriteCtx.
func (c *Client) BatchWriteQuietCtx(ctx context.Context, ops []BatchOp) (int, error) {
	req := &mcswire.BatchWriteRequest{Caller: c.dn, Quiet: true}
	for _, op := range ops {
		wo, err := mcswire.BatchOpToWire(op)
		if err != nil {
			return 0, err
		}
		req.Ops = append(req.Ops, wo)
	}
	var resp mcswire.BatchWriteResponse
	if err := c.call(ctx, "batchWrite", req, &resp); err != nil {
		return 0, err
	}
	return resp.Count, nil
}

// RunQueryPage runs one page of a query with context.Background.
func (c *Client) RunQueryPage(q Query, pageSize int, token string) ([]string, string, error) {
	return c.RunQueryPageCtx(context.Background(), q, pageSize, token)
}

// RunQueryPageCtx executes a discovery query returning at most pageSize
// matching names plus a continuation token; "" means the scan is done. A
// page may come back shorter than pageSize — even empty — with a non-empty
// token when authorization filtering hides names, so iterate until the
// token is "" rather than until a short page.
func (c *Client) RunQueryPageCtx(ctx context.Context, q Query, pageSize int, token string) ([]string, string, error) {
	req := &mcswire.QueryPageRequest{
		Caller: c.dn, Target: string(q.Target), PageSize: pageSize, Token: token,
	}
	for _, p := range q.Predicates {
		req.Predicates = append(req.Predicates, mcswire.WirePredicate{
			Attribute: p.Attribute, Op: string(p.Op),
			Type: string(p.Value.Type), Value: p.Value.Render(),
		})
	}
	var resp mcswire.QueryPageResponse
	if err := c.call(ctx, "queryPage", req, &resp); err != nil {
		return nil, "", err
	}
	return resp.Names, resp.Next, nil
}

// QueryEachCtx streams every match of a query through fn, fetching pages of
// pageSize behind the scenes. Iteration stops early when fn returns an
// error, which is returned as-is.
func (c *Client) QueryEachCtx(ctx context.Context, q Query, pageSize int, fn func(name string) error) error {
	token := ""
	for {
		names, next, err := c.RunQueryPageCtx(ctx, q, pageSize, token)
		if err != nil {
			return err
		}
		for _, name := range names {
			if err := fn(name); err != nil {
				return err
			}
		}
		if next == "" {
			return nil
		}
		token = next
	}
}

// CollectionContentsPage lists one page of a collection with
// context.Background.
func (c *Client) CollectionContentsPage(name string, pageSize int, token string) ([]File, []Collection, string, error) {
	return c.CollectionContentsPageCtx(context.Background(), name, pageSize, token)
}

// CollectionContentsPageCtx lists up to pageSize direct members of a
// collection (sub-collections first, then files) plus a continuation token;
// "" means the listing is complete.
func (c *Client) CollectionContentsPageCtx(ctx context.Context, name string, pageSize int, token string) ([]File, []Collection, string, error) {
	req := &mcswire.CollectionContentsPageRequest{
		Caller: c.dn, Name: name, PageSize: pageSize, Token: token,
	}
	var resp mcswire.CollectionContentsPageResponse
	if err := c.call(ctx, "collectionContentsPage", req, &resp); err != nil {
		return nil, nil, "", err
	}
	files := make([]File, 0, len(resp.Files))
	for _, wf := range resp.Files {
		files = append(files, mcswire.FileFromWire(wf))
	}
	subs := make([]Collection, 0, len(resp.SubCollections))
	for _, wc := range resp.SubCollections {
		subs = append(subs, mcswire.CollectionFromWire(wc))
	}
	return files, subs, resp.Next, nil
}

// CollectionContentsEachCtx streams every direct member of a collection,
// fetching pages of pageSize behind the scenes. Sub-collections arrive via
// onSub (nil to skip), files via onFile (nil to skip); an error from either
// stops the walk and is returned as-is.
func (c *Client) CollectionContentsEachCtx(ctx context.Context, name string, pageSize int,
	onFile func(File) error, onSub func(Collection) error) error {
	token := ""
	for {
		files, subs, next, err := c.CollectionContentsPageCtx(ctx, name, pageSize, token)
		if err != nil {
			return err
		}
		for _, s := range subs {
			if onSub != nil {
				if err := onSub(s); err != nil {
					return err
				}
			}
		}
		for _, f := range files {
			if onFile != nil {
				if err := onFile(f); err != nil {
					return err
				}
			}
		}
		if next == "" {
			return nil
		}
		token = next
	}
}
