// Benchmarks mirroring the paper's evaluation (Figures 5-11), one family
// per figure, plus the ablation benches called out in DESIGN.md. They use a
// laptop-scale database (10k files by default; set MCS_BENCH_FILES to
// change) — the paper's own finding is that add and simple-query rates are
// insensitive to database size, and the complex-query benches sweep the
// size-sensitive dimension (attribute count) directly.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// The full parameter sweeps (thread counts, host counts, all three database
// sizes) are produced by cmd/mcsbench, which prints the same series the
// paper plots.
package mcs_test

import (
	"fmt"
	"net/http/httptest"
	"os"
	"strconv"
	"sync/atomic"
	"testing"

	"mcs"
	"mcs/internal/bench"
	"mcs/internal/core"
)

// benchFiles is the database size used by the benchmarks.
func benchFiles() int {
	if s := os.Getenv("MCS_BENCH_FILES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 10000
}

// benchState caches the loaded catalog across benchmarks in one process.
var benchState struct {
	files   int
	catalog *core.Catalog
}

func loadedCatalog(b *testing.B) *core.Catalog {
	b.Helper()
	n := benchFiles()
	if benchState.catalog == nil || benchState.files != n {
		cat, err := bench.Load(bench.DefaultConfig(n))
		if err != nil {
			b.Fatal(err)
		}
		benchState.catalog = cat
		benchState.files = n
	}
	return benchState.catalog
}

// soapTarget starts a web-service front end over the shared catalog.
func soapTarget(b *testing.B) bench.SOAP {
	b.Helper()
	srv, err := mcs.NewServer(mcs.ServerOptions{Catalog: loadedCatalog(b)})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	b.Cleanup(ts.Close)
	return bench.SOAP{Client: mcs.NewClient(ts.URL, bench.LoaderDN)}
}

var addSeq atomic.Int64

func runAdd(b *testing.B, tgt bench.Target) {
	b.Helper()
	cfg := bench.DefaultConfig(benchFiles())
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := addSeq.Add(1)
			name := fmt.Sprintf("bench-add-%d", i)
			if err := tgt.AddAndDelete(name, bench.FileAttributes(int(i), cfg.AttrsPerFile)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func runSimple(b *testing.B, tgt bench.Target) {
	b.Helper()
	n := benchFiles()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if err := tgt.SimpleQuery(bench.FileName((i * 7919) % n)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func runComplex(b *testing.B, tgt bench.Target, attrs int) {
	b.Helper()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if err := tgt.AttrQuery(bench.Predicates(attrs, i%50)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Figure 5: add rate, direct vs web service. ---

func BenchmarkFig5AddDirect(b *testing.B) {
	runAdd(b, bench.Direct{Catalog: loadedCatalog(b)})
}

func BenchmarkFig5AddWebService(b *testing.B) {
	runAdd(b, soapTarget(b))
}

// --- Figure 6: simple query rate, direct vs web service. ---

func BenchmarkFig6SimpleQueryDirect(b *testing.B) {
	runSimple(b, bench.Direct{Catalog: loadedCatalog(b)})
}

func BenchmarkFig6SimpleQueryWebService(b *testing.B) {
	runSimple(b, soapTarget(b))
}

// --- Figure 7: complex query rate (10 attributes), direct vs web. ---

func BenchmarkFig7ComplexQueryDirect(b *testing.B) {
	runComplex(b, bench.Direct{Catalog: loadedCatalog(b)}, 10)
}

func BenchmarkFig7ComplexQueryWebService(b *testing.B) {
	runComplex(b, soapTarget(b), 10)
}

// --- Figures 8-10: multi-host aggregate rates (4 threads per host). ---

func runMultiHost(b *testing.B, op bench.Op, hosts int) {
	b.Helper()
	cat := loadedCatalog(b)
	srv, err := mcs.NewServer(mcs.ServerOptions{Catalog: cat})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	targets := make([]bench.Target, hosts)
	for h := range targets {
		targets[h] = bench.SOAP{Client: mcs.NewClient(ts.URL, bench.LoaderDN)}
	}
	cfg := bench.DefaultConfig(benchFiles())
	// Fixed-work benchmark: b.N operations split across hosts*4 workers.
	b.ResetTimer()
	done := make(chan error, hosts*4)
	var seq atomic.Int64
	for h := 0; h < hosts; h++ {
		for t := 0; t < 4; t++ {
			go func(h, t int, tgt bench.Target) {
				for {
					i := seq.Add(1)
					if i > int64(b.N) {
						done <- nil
						return
					}
					var err error
					switch op {
					case bench.OpAdd:
						err = tgt.AddAndDelete(fmt.Sprintf("mh-%d-%d-%d", h, t, i),
							bench.FileAttributes(int(i), cfg.AttrsPerFile))
					case bench.OpSimpleQuery:
						err = tgt.SimpleQuery(bench.FileName(int(i*7919) % cfg.Files))
					case bench.OpComplexQuery:
						err = tgt.AttrQuery(bench.Predicates(10, int(i)%50))
					}
					if err != nil {
						done <- err
						return
					}
				}
			}(h, t, targets[h])
		}
	}
	for i := 0; i < hosts*4; i++ {
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8MultiHostAdd(b *testing.B) {
	for _, hosts := range []int{1, 4} {
		b.Run(fmt.Sprintf("hosts=%d", hosts), func(b *testing.B) {
			runMultiHost(b, bench.OpAdd, hosts)
		})
	}
}

func BenchmarkFig9MultiHostSimple(b *testing.B) {
	for _, hosts := range []int{1, 4} {
		b.Run(fmt.Sprintf("hosts=%d", hosts), func(b *testing.B) {
			runMultiHost(b, bench.OpSimpleQuery, hosts)
		})
	}
}

func BenchmarkFig10MultiHostComplex(b *testing.B) {
	for _, hosts := range []int{1, 4} {
		b.Run(fmt.Sprintf("hosts=%d", hosts), func(b *testing.B) {
			runMultiHost(b, bench.OpComplexQuery, hosts)
		})
	}
}

// --- Figure 11: complex query rate vs number of matched attributes. ---

func BenchmarkFig11AttrSweep(b *testing.B) {
	cat := loadedCatalog(b)
	for _, attrs := range []int{1, 2, 4, 6, 8, 10} {
		b.Run(fmt.Sprintf("attrs=%d", attrs), func(b *testing.B) {
			runComplex(b, bench.Direct{Catalog: cat}, attrs)
		})
	}
}

// --- Ablations (DESIGN.md section 5). ---

// BenchmarkAblationTransport isolates the web-service overhead the paper
// measures: the same ping-weight operation in-process vs through SOAP/HTTP.
func BenchmarkAblationTransport(b *testing.B) {
	cat := loadedCatalog(b)
	b.Run("direct", func(b *testing.B) {
		d := bench.Direct{Catalog: cat}
		for i := 0; i < b.N; i++ {
			if err := d.SimpleQuery(bench.FileName(i % benchFiles())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("soap", func(b *testing.B) {
		s := soapTarget(b)
		for i := 0; i < b.N; i++ {
			if err := s.SimpleQuery(bench.FileName(i % benchFiles())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationNoIndex quantifies what the paper's index set buys: the
// same single-attribute match with and without the (attr_id, value) index
// path (the unindexed variant matches on an inequality the planner cannot
// route to an index prefix scan).
func BenchmarkAblationNoIndex(b *testing.B) {
	cat := loadedCatalog(b)
	b.Run("indexed", func(b *testing.B) {
		d := bench.Direct{Catalog: cat}
		for i := 0; i < b.N; i++ {
			if err := d.AttrQuery(bench.Predicates(1, i%50)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		// A LIKE predicate on the name forces a table scan.
		for i := 0; i < b.N; i++ {
			_, err := cat.RunQuery(bench.LoaderDN, core.Query{Predicates: []core.Predicate{
				{Attribute: "name", Op: core.OpLike, Value: core.String(fmt.Sprintf("%%%07d", i%1000))},
			}})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationAuthz measures the authorization chain walk.
func BenchmarkAblationAuthz(b *testing.B) {
	run := func(b *testing.B, enforce bool) {
		opts := core.Options{}
		if enforce {
			opts = core.Options{Owner: "/CN=root", EnforceAuthz: true}
		}
		cat, err := core.Open(opts)
		if err != nil {
			b.Fatal(err)
		}
		owner := bench.LoaderDN
		if enforce {
			owner = "/CN=root"
		}
		if _, err := cat.CreateCollection(owner, core.CollectionSpec{Name: "c"}); err != nil {
			b.Fatal(err)
		}
		if _, err := cat.CreateFile(owner, core.FileSpec{Name: "f", Collection: "c"}); err != nil {
			b.Fatal(err)
		}
		reader := "/CN=reader"
		if enforce {
			if err := cat.Grant(owner, core.ObjectCollection, "c", reader, core.PermRead); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cat.GetFile(reader, "f", 0); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}
