// Quickstart: publish logical files with descriptive metadata into the
// Metadata Catalog Service and discover them with attribute-based queries —
// the publication and discovery roles of section 2 of the paper, end to end
// over the SOAP web service.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"mcs"
)

const me = "/O=Grid/OU=Example/CN=Quickstart"

func main() {
	log.SetFlags(0)

	// 1. Start an MCS server (normally `mcsd`; embedded here so the example
	//    is self-contained).
	srv, err := mcs.NewServer(mcs.ServerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv) //nolint:errcheck // lives for the process
	endpoint := "http://" + ln.Addr().String()
	fmt.Println("MCS server listening at", endpoint)

	c := mcs.NewClient(endpoint, me)

	// 2. Declare the domain-specific attribute ontology (the paper's
	//    user-defined attribute extension).
	must(defineAttrs(c))

	// 3. Publish: a logical collection and some logical files with
	//    descriptive metadata and provenance.
	_, err = c.CreateCollection(mcs.CollectionSpec{
		Name:        "climate-run-7",
		Description: "CCSM2 control run, year 7",
	})
	must(err)
	for month := 1; month <= 12; month++ {
		_, err := c.CreateFile(mcs.FileSpec{
			Name:       fmt.Sprintf("ccsm2-y7-m%02d.nc", month),
			DataType:   "binary",
			Collection: "climate-run-7",
			Attributes: []mcs.Attribute{
				{Name: "variable", Value: mcs.String("surface_temperature")},
				{Name: "month", Value: mcs.Int(int64(month))},
				{Name: "meanTempK", Value: mcs.Float(287.0 + float64(month%6))},
			},
			Provenance: "produced by CCSM2 control simulation",
		})
		must(err)
	}
	fmt.Println("published 12 monthly files into collection climate-run-7")

	// 4. Discover: which files have the warm months?
	names, err := c.RunQuery(mcs.Query{Predicates: []mcs.Predicate{
		{Attribute: "variable", Op: mcs.OpEq, Value: mcs.String("surface_temperature")},
		{Attribute: "meanTempK", Op: mcs.OpGt, Value: mcs.Float(290.0)},
	}})
	must(err)
	fmt.Printf("query variable=surface_temperature AND meanTempK>290 -> %d files:\n", len(names))
	for _, n := range names {
		fmt.Println("  ", n)
	}

	// 5. Inspect one result: static metadata, user attributes, provenance.
	f, err := c.GetFile(names[0], 0)
	must(err)
	fmt.Printf("%s: version %d, type %s, created by %s\n", f.Name, f.Version, f.DataType, f.Creator)
	attrs, err := c.GetAttributes(mcs.ObjectFile, names[0])
	must(err)
	for _, a := range attrs {
		fmt.Printf("  %s = %s\n", a.Name, a.Value.Render())
	}
	prov, err := c.Provenance(names[0], 0)
	must(err)
	fmt.Printf("  provenance: %s\n", prov[0].Description)

	// 6. Annotate and aggregate into a personal view.
	_, err = c.Annotate(mcs.ObjectFile, names[0], "anomalously warm; double-check forcing")
	must(err)
	_, err = c.CreateView(mcs.ViewSpec{Name: "warm-months", Description: "months above 290K"})
	must(err)
	for _, n := range names {
		must(c.AddToView("warm-months", mcs.ObjectFile, n))
	}
	expanded, err := c.ExpandView("warm-months")
	must(err)
	fmt.Printf("view warm-months expands to %d files\n", len(expanded))

	st, err := c.Stats()
	must(err)
	fmt.Printf("catalog now holds %d files, %d collections, %d views, %d attribute bindings\n",
		st.Files, st.Collections, st.Views, st.Attributes)
}

func defineAttrs(c *mcs.Client) error {
	for _, def := range []struct {
		name string
		typ  mcs.AttrType
	}{
		{"variable", mcs.AttrString},
		{"month", mcs.AttrInt},
		{"meanTempK", mcs.AttrFloat},
	} {
		if _, err := c.DefineAttribute(def.name, def.typ, ""); err != nil {
			return err
		}
	}
	return nil
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
