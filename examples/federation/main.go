// Federated MCS example: the distributed catalog design of the paper's
// section 9, running live.
//
// Three virtual organizations each operate their own self-consistent MCS.
// Every catalog pushes periodic soft-state summaries — a bloom filter over
// its (attribute, value) bindings — to an aggregating index node. A client
// with a discovery query first asks the index which catalogs could match,
// then subqueries only those, merging the answers. The output shows how
// much fan-out the index saves and that expiry removes catalogs that stop
// refreshing.
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"mcs"
	"mcs/internal/core"
	"mcs/internal/federation"
)

const me = "/O=Grid/CN=federated-user"

type site struct {
	name    string
	catalog *core.Catalog
	url     string
	updater *federation.Updater
}

func main() {
	log.SetFlags(0)
	index := federation.NewIndex()

	// --- Three sites, each its own MCS with its own metadata ontology. ---
	specs := []struct {
		name, project string
		files         int
	}{
		{"ligo-caltech", "ligo", 40},
		{"esg-ncar", "esg", 25},
		{"griphyn-ufl", "cms", 30},
	}
	sites := make([]*site, 0, len(specs))
	for _, sp := range specs {
		cat, err := mcs.OpenCatalog(mcs.Options{})
		must(err)
		srv, err := mcs.NewServer(mcs.ServerOptions{Catalog: cat})
		must(err)
		ts := httptest.NewServer(srv)
		defer ts.Close()

		client := mcs.NewClient(ts.URL, me)
		_, err = client.DefineAttribute("project", mcs.AttrString, "")
		must(err)
		_, err = client.DefineAttribute("segment", mcs.AttrInt, "")
		must(err)
		for i := 0; i < sp.files; i++ {
			_, err := client.CreateFile(mcs.FileSpec{
				Name: fmt.Sprintf("%s-data-%03d", sp.project, i),
				Attributes: []mcs.Attribute{
					{Name: "project", Value: mcs.String(sp.project)},
					{Name: "segment", Value: mcs.Int(int64(i / 10))},
				},
			})
			must(err)
		}

		u := &federation.Updater{
			Catalog: cat, Name: sp.name,
			TTL: 2 * time.Second, Interval: 500 * time.Millisecond,
			Push: func(s *federation.Summary, ttl time.Duration) error {
				index.Update(s, ttl)
				return nil
			},
		}
		must(u.Start())
		defer u.Stop()
		sites = append(sites, &site{name: sp.name, catalog: cat, url: ts.URL, updater: u})
		fmt.Printf("site %-14s serving %2d files at %s\n", sp.name, sp.files, ts.URL)
	}
	fmt.Printf("index knows %v\n\n", index.Known())

	dial := func(name string) (federation.Querier, error) {
		for _, s := range sites {
			if s.name == name {
				return mcs.NewClient(s.url, me), nil
			}
		}
		return nil, fmt.Errorf("unknown site %q", name)
	}
	fed := &federation.Client{Index: index, Dial: dial}

	// --- Query 1: a value held by one site; the index screens the rest. ---
	res, err := fed.Query(mcs.Query{Predicates: []mcs.Predicate{
		{Attribute: "project", Op: mcs.OpEq, Value: mcs.String("esg")},
	}})
	must(err)
	fmt.Printf("project=esg: index screened to %v (skipped %d subqueries); %d matches\n",
		res.Candidates, res.Skipped, len(res.Merged()))

	// --- Query 2: a range predicate fans out to every site. ---
	res, err = fed.Query(mcs.Query{Predicates: []mcs.Predicate{
		{Attribute: "segment", Op: mcs.OpGe, Value: mcs.Int(3)},
	}})
	must(err)
	fmt.Printf("segment>=3: candidates %v; merged %d names from %d catalogs\n",
		res.Candidates, len(res.Merged()), len(res.Names))

	// --- Soft state: a site that stops refreshing drops out of discovery. ---
	sites[0].updater.Stop()
	fmt.Printf("\nstopping %s's updater; waiting for its summary to expire...\n", sites[0].name)
	time.Sleep(2500 * time.Millisecond)
	res, err = fed.Query(mcs.Query{Predicates: []mcs.Predicate{
		{Attribute: "project", Op: mcs.OpEq, Value: mcs.String("ligo")},
	}})
	must(err)
	fmt.Printf("project=ligo after expiry: candidates %v, index knows %v\n",
		res.Candidates, index.Known())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
