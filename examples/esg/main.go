// Earth System Grid example: the paper's section 6.2 experience, end to end.
//
// ESG metadata arrives as XML — netCDF-convention dataset descriptions plus
// Dublin Core records. The documents are "shredded" into individual
// attribute values, the attribute declarations are created on the fly, and
// the values are bound to the published logical files in the MCS. Scientists
// then discover data by attribute query, resolve locations through the RLS
// and fetch the data over GridFTP (the Figure 2 scenario). Small monthly
// summary objects are grouped through the external container service the
// MCS schema points at.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"mcs"
	"mcs/internal/container"
	"mcs/internal/gridftp"
	"mcs/internal/rls"
	"mcs/internal/xmlshred"
)

const curator = "/O=ESG/OU=NCAR/CN=curator"

// netcdfXML is the kind of dataset description the ESG testbed carried.
func netcdfXML(model string, year int, meanTemp float64) string {
	return fmt.Sprintf(`<?xml version="1.0"?>
<netcdf name="%s-y%d">
  <dimension name="lat" length="64"/>
  <dimension name="lon" length="128"/>
  <variable name="surface_temperature">
    <units>K</units>
    <mean>%g</mean>
  </variable>
  <global>
    <institution>NCAR</institution>
    <model>%s</model>
    <year>%d</year>
    <created>2002-08-15</created>
  </global>
</netcdf>`, model, year, meanTemp, model, year)
}

// dublinCoreXML is the digital-library-style record ESG also stored.
func dublinCoreXML(model string, year int) string {
	return fmt.Sprintf(`<record xmlns:dc="http://purl.org/dc/elements/1.1/">
  <dc:title>%s control run year %d</dc:title>
  <dc:creator>NCAR</dc:creator>
  <dc:publisher>Earth System Grid</dc:publisher>
  <dc:date>2002-08-15</dc:date>
  <dc:format>netCDF</dc:format>
</record>`, model, year)
}

func main() {
	log.SetFlags(0)

	// --- Fabric: MCS over SOAP, RLS over HTTP, a GridFTP data node. ---
	srv, err := mcs.NewServer(mcs.ServerOptions{})
	must(err)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	go http.Serve(ln, srv) //nolint:errcheck
	catalog := mcs.NewClient("http://"+ln.Addr().String(), curator)
	// The shredder works against the embedded engine for bulk ingestion
	// (the ESG scientists observed shredding through the service was slow).
	engine := srv.Catalog()

	lrc := rls.NewLRC("lrc://esg-ncar")
	rli := rls.NewRLI()
	rlsHTTP := httptest.NewServer(rls.NewServer(lrc, rli))
	defer rlsHTTP.Close()
	rlsClient := rls.NewClient(rlsHTTP.URL)

	dataStore := gridftp.NewMemStore()
	dataNode := gridftp.NewServer(dataStore)
	dataAddr, err := dataNode.Listen("127.0.0.1:0")
	must(err)
	defer dataNode.Close()
	fmt.Printf("MCS at http://%s, RLS at %s, GridFTP node at %s\n",
		ln.Addr(), rlsHTTP.URL, dataAddr)

	// --- Publish ESG datasets: data + shredded XML metadata. ---
	models := []string{"CCSM2", "PCM"}
	published := 0
	totalAttrs := 0
	for _, model := range models {
		for year := 1; year <= 3; year++ {
			lfn := fmt.Sprintf("%s-y%d.nc", strings.ToLower(model), year)
			content := []byte(strings.Repeat(fmt.Sprintf("%s:%d;", model, year), 4096))
			dataStore.Put(lfn, content)
			must(rlsClient.AddMapping(lfn, "gsiftp://"+dataAddr+"/"+lfn))

			_, err := catalog.CreateFile(mcs.FileSpec{Name: lfn, DataType: "binary"})
			must(err)

			// Shred the netCDF description and the Dublin Core record.
			mean := 286.5 + float64(year)
			fields, err := xmlshred.Shred(strings.NewReader(netcdfXML(model, year, mean)), "esg")
			must(err)
			dcFields, err := xmlshred.ShredDublinCore(strings.NewReader(dublinCoreXML(model, year)))
			must(err)
			fields = append(fields, dcFields...)
			_, set, errs := xmlshred.Ingest(engine, curator, mcs.ObjectFile, lfn, fields)
			if len(errs) > 0 {
				log.Fatalf("ingest errors: %v", errs)
			}
			published++
			totalAttrs += set
		}
	}
	fmt.Printf("published %d datasets; shredded %d attribute values out of XML\n",
		published, totalAttrs)

	// --- Soft-state: the LRC summarizes itself into the RLI. ---
	must(rlsClient.SendUpdate("lrc://esg-ncar", lrc.LFNs(), nil, time.Minute))

	// --- Discovery (Fig. 2 steps 1-2): attribute query against the MCS. ---
	names, err := catalog.RunQuery(mcs.Query{Predicates: []mcs.Predicate{
		{Attribute: "esg.netcdf.global.model", Op: mcs.OpEq, Value: mcs.String("CCSM2")},
		{Attribute: "esg.netcdf.variable.mean", Op: mcs.OpGt, Value: mcs.Float(288.0)},
	}})
	must(err)
	fmt.Printf("query model=CCSM2 AND mean>288K -> %v\n", names)

	// Dublin Core attributes are queryable too.
	dcNames, err := catalog.RunQuery(mcs.Query{Predicates: []mcs.Predicate{
		{Attribute: "dc.publisher", Op: mcs.OpEq, Value: mcs.String("Earth System Grid")},
	}})
	must(err)
	fmt.Printf("query dc.publisher='Earth System Grid' -> %d datasets\n", len(dcNames))

	// --- Location (steps 3-4): RLI -> LRC -> physical names. ---
	target := names[0]
	lrcs, err := rlsClient.QueryRLI(target)
	must(err)
	pfns, err := rlsClient.Lookup(target)
	must(err)
	fmt.Printf("RLS: %s known to %v at %v\n", target, lrcs, pfns)

	// --- Access (steps 5-6): parallel GridFTP retrieval. ---
	rest := strings.TrimPrefix(pfns[0], "gsiftp://")
	slash := strings.IndexByte(rest, '/')
	data, err := gridftp.NewClient(rest[:slash], 4).Retrieve(rest[slash+1:])
	must(err)
	fmt.Printf("retrieved %s: %d bytes over 4 parallel streams\n", target, len(data))

	// --- Containers: group small monthly summaries, reference from MCS. ---
	containers := container.NewService("esg-containers")
	cid := containers.Create()
	for month := 1; month <= 12; month++ {
		must(containers.Add(cid, fmt.Sprintf("summary-m%02d.txt", month),
			[]byte(fmt.Sprintf("monthly summary %d", month))))
	}
	must(containers.Seal(cid))
	_, err = catalog.CreateFile(mcs.FileSpec{
		Name: "ccsm2-y1-summaries", DataType: "container",
		ContainerID: cid, ContainerService: "esg-containers",
	})
	must(err)
	f, err := catalog.GetFile("ccsm2-y1-summaries", 0)
	must(err)
	objs, err := containers.List(f.ContainerID)
	must(err)
	extracted, err := containers.Extract(f.ContainerID, objs[3])
	must(err)
	fmt.Printf("container %s holds %d objects; extracted %q -> %q\n",
		f.ContainerID, len(objs), objs[3], extracted)

	st, err := catalog.Stats()
	must(err)
	fmt.Printf("catalog: %d files, %d attribute bindings, %d attribute definitions\n",
		st.Files, st.Attributes, st.AttrDefs)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
