// LIGO/Pegasus example: the paper's section 6.1 scenario, end to end.
//
// A Pegasus-style planner receives an abstract pulsar-search workflow.
// It queries the MCS for existing data products (data reuse), locates raw
// gravitational-wave frames through the Replica Location Service, stages
// them from an archive site with parallel GridFTP streams, runs the
// transformations, and registers the new data products — with the
// LIGO-specific user-defined attributes the paper mentions (23 of them) —
// back into the MCS and RLS. A second planning pass then shows every job
// pruned, because the products already exist.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"mcs"
	"mcs/internal/core"
	"mcs/internal/gridftp"
	"mcs/internal/pegasus"
	"mcs/internal/rls"
)

const planner = "/O=LIGO/OU=Caltech/CN=pegasus-planner"

// ligoAttrs is the LIGO metadata ontology: the paper reports adding 23
// user-defined attributes for the experiment.
var ligoAttrs = []struct {
	name string
	typ  mcs.AttrType
}{
	{"interferometer", mcs.AttrString}, {"run", mcs.AttrString},
	{"dataProductType", mcs.AttrString}, {"channel", mcs.AttrString},
	{"frameType", mcs.AttrString}, {"calibrationVersion", mcs.AttrString},
	{"instrumentState", mcs.AttrString}, {"segmentQuality", mcs.AttrString},
	{"analysisGroup", mcs.AttrString}, {"pipelineVersion", mcs.AttrString},
	{"gpsStart", mcs.AttrInt}, {"gpsEnd", mcs.AttrInt},
	{"duration", mcs.AttrInt}, {"frameCount", mcs.AttrInt},
	{"sampleRate", mcs.AttrInt}, {"segmentNumber", mcs.AttrInt},
	{"freqLow", mcs.AttrFloat}, {"freqHigh", mcs.AttrFloat},
	{"snrThreshold", mcs.AttrFloat}, {"confidence", mcs.AttrFloat},
	{"observationDate", mcs.AttrDate}, {"calibrationTime", mcs.AttrDateTime},
	{"publishTime", mcs.AttrDateTime},
}

func main() {
	log.SetFlags(0)

	// --- Grid fabric: MCS, RLS (LRC + RLI), an archive GridFTP server. ---
	srv, err := mcs.NewServer(mcs.ServerOptions{})
	must(err)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	go http.Serve(ln, srv) //nolint:errcheck
	catalog := mcs.NewClient("http://"+ln.Addr().String(), planner)
	fmt.Println("MCS up at http://" + ln.Addr().String())

	archiveStore := gridftp.NewMemStore()
	archive := gridftp.NewServer(archiveStore)
	archiveAddr, err := archive.Listen("127.0.0.1:0")
	must(err)
	defer archive.Close()
	fmt.Println("archive GridFTP server at", archiveAddr)

	lrc := rls.NewLRC("lrc://ligo-archive")
	rli := rls.NewRLI()
	updater := &rls.Updater{
		LRC: lrc, BloomFP: 0.01, TTL: time.Minute, Interval: 50 * time.Millisecond,
		Push: func(name string, lfns []string, b *rls.Bloom, ttl time.Duration) error {
			rli.UpdateBloom(name, b, ttl)
			return nil
		},
	}
	must(updater.Start())
	defer updater.Stop()

	// --- Declare the LIGO ontology (23 user-defined attributes). ---
	for _, a := range ligoAttrs {
		_, err := catalog.DefineAttribute(a.name, a.typ, "LIGO "+a.name)
		must(err)
	}
	fmt.Printf("defined %d LIGO user attributes in the MCS\n", len(ligoAttrs))

	// --- Publish the raw S2 frames: archive data + RLS + MCS metadata. ---
	rawFrames := []string{"H-R-730000000-16.gwf", "H-R-730000016-16.gwf", "H-R-730000032-16.gwf"}
	for i, lfn := range rawFrames {
		content := []byte(strings.Repeat(fmt.Sprintf("strain[%d];", i), 2000))
		archiveStore.Put(lfn, content)
		lrc.Add(lfn, "gsiftp://"+archiveAddr+"/"+lfn)
		_, err := catalog.CreateFile(mcs.FileSpec{
			Name: lfn, DataType: "binary",
			Attributes: []mcs.Attribute{
				{Name: "interferometer", Value: mcs.String("H1")},
				{Name: "run", Value: mcs.String("S2")},
				{Name: "dataProductType", Value: mcs.String("rawFrame")},
				{Name: "gpsStart", Value: mcs.Int(int64(730000000 + 16*i))},
				{Name: "duration", Value: mcs.Int(16)},
				{Name: "sampleRate", Value: mcs.Int(16384)},
			},
			Provenance: "recorded by the Hanford 4km interferometer",
		})
		must(err)
	}
	fmt.Printf("published %d raw frames (MCS metadata, RLS locations, archive copies)\n", len(rawFrames))

	// --- Pegasus: an abstract pulsar-search workflow. ---
	wf := pegasus.Workflow{
		Name: "pulsar-search-S2",
		Jobs: []pegasus.Job{
			{
				ID: "merge", Executable: "frame-merge",
				Args:    append([]string{"H-R-merged-S2.gwf"}, rawFrames...),
				Inputs:  rawFrames,
				Outputs: []string{"H-R-merged-S2.gwf"},
				OutputMeta: map[string][]core.Attribute{
					"H-R-merged-S2.gwf": {
						{Name: "dataProductType", Value: mcs.String("timeSeries")},
						{Name: "run", Value: mcs.String("S2")},
						{Name: "duration", Value: mcs.Int(48)},
					},
				},
			},
			{
				ID: "search", Executable: "pulsar-search",
				Args:    []string{"pulsar-candidates-S2.xml", "H-R-merged-S2.gwf"},
				Inputs:  []string{"H-R-merged-S2.gwf"},
				Outputs: []string{"pulsar-candidates-S2.xml"},
				OutputMeta: map[string][]core.Attribute{
					"pulsar-candidates-S2.xml": {
						{Name: "dataProductType", Value: mcs.String("pulsarSearch")},
						{Name: "run", Value: mcs.String("S2")},
						{Name: "freqLow", Value: mcs.Float(40.0)},
						{Name: "freqHigh", Value: mcs.Float(60.0)},
					},
				},
			},
		},
	}

	// The executor's site storage, fed by real GridFTP transfers.
	site := map[string][]byte{}
	exec := &pegasus.Executor{
		Metadata: catalog,
		Replicas: lrc,
		Transforms: map[string]pegasus.TransformFunc{
			"frame-merge": func(args []string, in map[string][]byte) (map[string][]byte, error) {
				var merged []byte
				for _, name := range args[1:] {
					merged = append(merged, in[name]...)
				}
				return map[string][]byte{args[0]: merged}, nil
			},
			"pulsar-search": func(args []string, in map[string][]byte) (map[string][]byte, error) {
				candidates := fmt.Sprintf("<candidates run=\"S2\" inputBytes=\"%d\"/>",
					len(in[args[1]]))
				return map[string][]byte{args[0]: []byte(candidates)}, nil
			},
		},
		ReadLocal:  func(lfn string) ([]byte, bool) { d, ok := site[lfn]; return d, ok },
		WriteLocal: func(lfn string, data []byte) { site[lfn] = data },
		Fetch: func(pfn string) ([]byte, error) {
			// pfn is gsiftp://host:port/name — fetch with 4 parallel streams.
			rest := strings.TrimPrefix(pfn, "gsiftp://")
			slash := strings.IndexByte(rest, '/')
			return gridftp.NewClient(rest[:slash], 4).Retrieve(rest[slash+1:])
		},
		PFNPrefix: "site://isi-condor/",
	}

	plnr := &pegasus.Planner{Metadata: catalog, Replicas: lrc, Site: "isi-condor"}
	plan, err := plnr.Plan(wf)
	must(err)
	fmt.Printf("\nplan 1: %d concrete jobs (%s)\n", len(plan.Jobs), describe(plan))
	res, err := exec.Execute(plan)
	must(err)
	fmt.Printf("executed: %d stage-ins over GridFTP, %d computes, %d products registered\n",
		res.StagedIn, res.ComputeRan, res.Registered)

	// --- Discovery: find the pulsar-search product by its attributes. ---
	names, err := catalog.RunQuery(mcs.Query{Predicates: []mcs.Predicate{
		{Attribute: "dataProductType", Op: mcs.OpEq, Value: mcs.String("pulsarSearch")},
		{Attribute: "run", Op: mcs.OpEq, Value: mcs.String("S2")},
		{Attribute: "freqLow", Op: mcs.OpGe, Value: mcs.Float(40.0)},
	}})
	must(err)
	fmt.Printf("\nMCS attribute query for S2 pulsar products -> %v\n", names)
	prov, err := catalog.Provenance(names[0], 0)
	must(err)
	fmt.Printf("provenance of %s: %s\n", names[0], prov[0].Description)
	pfns := lrc.Lookup(names[0])
	fmt.Printf("RLS locations: %v\n", pfns)

	// --- Re-plan: everything already materialized -> full pruning. ---
	plan2, err := plnr.Plan(wf)
	must(err)
	fmt.Printf("\nplan 2 (re-run): %d jobs, pruned %v — data reuse from the MCS\n",
		len(plan2.Jobs), plan2.Pruned)

	// The RLI (soft state) now also resolves the products after the next
	// periodic summary push.
	time.Sleep(150 * time.Millisecond)
	lrcs := rli.Query(names[0])
	fmt.Printf("RLI soft-state resolves %s to LRCs %v\n", names[0], lrcs)
}

func describe(p *pegasus.Plan) string {
	counts := map[pegasus.JobType]int{}
	for _, j := range p.Jobs {
		counts[j.Type]++
	}
	return fmt.Sprintf("%d stage-in, %d compute, %d register",
		counts[pegasus.JobStageIn], counts[pegasus.JobCompute], counts[pegasus.JobRegister])
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
