// Package mcs is the public API of the Metadata Catalog Service
// reproduction: an embeddable catalog engine, a SOAP-over-HTTP server, and a
// typed client — the Go equivalent of the paper's Tomcat/Axis service and
// its generated Java client library.
//
// Quick start:
//
//	srv, _ := mcs.NewServer(mcs.ServerOptions{})
//	ln, _ := net.Listen("tcp", "127.0.0.1:0")
//	go http.Serve(ln, srv)
//	client := mcs.NewClient("http://"+ln.Addr().String(), "/O=Grid/CN=me")
//	client.CreateFile(mcs.FileSpec{Name: "run42.dat"})
package mcs

import (
	"crypto/ed25519"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strings"
	"time"

	"mcs/internal/core"
	"mcs/internal/faultinject"
	"mcs/internal/federation"
	"mcs/internal/gsi"
	"mcs/internal/jsonwire"
	"mcs/internal/mcswire"
	"mcs/internal/obs"
	"mcs/internal/soap"
	"mcs/internal/sqldb"
)

// Re-exported write-ahead-log types (see Catalog.OpenWAL): the daemon opens
// and checkpoints the log; embedders get per-commit durability the same way.
type (
	// WAL is the catalog's write-ahead log, opened with Catalog.OpenWAL.
	WAL = sqldb.WAL
	// WALOptions configures a WAL (sync policy).
	WALOptions = sqldb.WALOptions
	// WALStats reports WAL counters (appends, fsyncs, replayed records).
	WALStats = sqldb.WALStats
	// WALReplayStats reports what recovery found in the log at open.
	WALReplayStats = sqldb.ReplayStats
	// WALFault is an injected WAL failure (chaos harness).
	WALFault = sqldb.WALFault
)

// Re-exported core types, so downstream users only import this package.
type (
	// Catalog is the embedded MCS engine (usable without the web service).
	Catalog = core.Catalog
	// Options configures an embedded Catalog.
	Options = core.Options
	// FileSpec describes a logical file to create.
	FileSpec = core.FileSpec
	// CollectionSpec describes a logical collection to create.
	CollectionSpec = core.CollectionSpec
	// ViewSpec describes a logical view to create.
	ViewSpec = core.ViewSpec
	// File is logical-file static metadata.
	File = core.File
	// Collection is logical-collection metadata.
	Collection = core.Collection
	// View is logical-view metadata.
	View = core.View
	// ViewMember is one element of a view.
	ViewMember = core.ViewMember
	// Attribute is a user-defined attribute binding.
	Attribute = core.Attribute
	// AttributeDef is a user-defined attribute declaration.
	AttributeDef = core.AttributeDef
	// AttrValue is a typed user-defined attribute value.
	AttrValue = core.AttrValue
	// AttrType enumerates attribute value types.
	AttrType = core.AttrType
	// ObjectType distinguishes files, collections and views.
	ObjectType = core.ObjectType
	// Query is an attribute-based discovery request.
	Query = core.Query
	// Predicate is one query constraint.
	Predicate = core.Predicate
	// Op is a query comparison operator.
	Op = core.Op
	// Permission names one right on an object.
	Permission = core.Permission
	// Annotation is a free-text note on an object.
	Annotation = core.Annotation
	// ProvenanceRecord is one transformation-history entry.
	ProvenanceRecord = core.ProvenanceRecord
	// AuditRecord is one audit-log entry.
	AuditRecord = core.AuditRecord
	// Writer is a metadata-writer contact record.
	Writer = core.Writer
	// ExternalCatalog points at another metadata catalog.
	ExternalCatalog = core.ExternalCatalog
	// FileUpdate selects static file attributes to modify.
	FileUpdate = core.FileUpdate
	// BatchOp is one mutation inside a BatchWrite.
	BatchOp = core.BatchOp
	// BatchFileUpdate is a batched file update (name + FileUpdate).
	BatchFileUpdate = core.BatchFileUpdate
	// BatchFileRef identifies a file version for a batched delete.
	BatchFileRef = core.BatchFileRef
	// BatchSetAttribute is a batched attribute binding.
	BatchSetAttribute = core.BatchSetAttribute
	// BatchAnnotation is a batched annotation.
	BatchAnnotation = core.BatchAnnotation
	// BatchResult reports one op's outcome in a committed batch.
	BatchResult = core.BatchResult
	// Stats reports catalog row counts.
	Stats = core.Stats
	// QueryResult couples a matched logical name with requested attributes.
	QueryResult = core.QueryResult
)

// Attribute value constructors and helpers, re-exported.
var (
	String    = core.String
	Int       = core.Int
	Float     = core.Float
	Date      = core.Date
	TimeOfDay = core.TimeOfDay
	DateTime  = core.DateTime
	// ParseAttrValue parses the Render()ed form of an attribute value.
	ParseAttrValue = core.ParseAttrValue
)

// Object types, attribute types, operators and permissions.
const (
	ObjectFile       = core.ObjectFile
	ObjectCollection = core.ObjectCollection
	ObjectView       = core.ObjectView
	ObjectService    = core.ObjectService

	AttrString   = core.AttrString
	AttrInt      = core.AttrInt
	AttrFloat    = core.AttrFloat
	AttrDate     = core.AttrDate
	AttrTime     = core.AttrTime
	AttrDateTime = core.AttrDateTime

	OpEq   = core.OpEq
	OpNe   = core.OpNe
	OpLt   = core.OpLt
	OpLe   = core.OpLe
	OpGt   = core.OpGt
	OpGe   = core.OpGe
	OpLike = core.OpLike

	PermRead     = core.PermRead
	PermWrite    = core.PermWrite
	PermCreate   = core.PermCreate
	PermDelete   = core.PermDelete
	PermAnnotate = core.PermAnnotate
)

// Sentinel errors, re-exported.
var (
	ErrNotFound      = core.ErrNotFound
	ErrExists        = core.ErrExists
	ErrDenied        = core.ErrDenied
	ErrInvalidInput  = core.ErrInvalidInput
	ErrCycle         = core.ErrCycle
	ErrNotEmpty      = core.ErrNotEmpty
	ErrAmbiguousFile = core.ErrAmbiguousFile
	ErrUnavailable   = core.ErrUnavailable
	// ErrPartialResult is returned by the shard router when a scatter-gather
	// operation could not reach every shard it needed.
	ErrPartialResult = mcswire.ErrPartialResult
)

// Fault-injection surface, re-exported so chaos harnesses and operators only
// import this package. A FaultInjector built from rules (literal or parsed
// from a -fault-spec string) is handed to ServerOptions.FaultInjector; the
// server then injects deterministic, seed-reproducible failures at four
// sites: SOAP dispatch, post-handler (reply lost after commit — the case
// idempotency keys exist for), the HTTP transport, and individual database
// statements.
type (
	// FaultInjector decides, deterministically per (site, op, call), whether
	// a request suffers an injected fault.
	FaultInjector = faultinject.Injector
	// FaultRule is one injection rule (site, kind, and selection gates).
	FaultRule = faultinject.Rule
	// FaultSite names a code location faults can be injected at.
	FaultSite = faultinject.Site
	// FaultKind names a failure mode (error, latency, drop, partial).
	FaultKind = faultinject.Kind
)

// Fault sites and kinds, re-exported.
const (
	FaultSiteDispatch  = faultinject.SiteDispatch
	FaultSiteAfter     = faultinject.SiteAfter
	FaultSiteTransport = faultinject.SiteTransport
	FaultSiteDB        = faultinject.SiteDB
	FaultSiteWAL       = faultinject.SiteWAL

	FaultKindError   = faultinject.KindError
	FaultKindLatency = faultinject.KindLatency
	FaultKindDrop    = faultinject.KindDrop
	FaultKindPartial = faultinject.KindPartial
)

// NewFaultInjector builds a deterministic injector from a seed and rules.
var NewFaultInjector = faultinject.New

// ParseFaultSpec parses the -fault-spec rule syntax, e.g.
// "site=dispatch,kind=error,op=createFile,calls=1-3".
var ParseFaultSpec = faultinject.ParseSpec

// OpOption threads per-call settings (request ID, idempotency key) into an
// embedded Catalog mutation, as the SOAP layer does for remote callers.
type OpOption = core.OpOption

// WithRequestID tags a catalog mutation with a correlation ID (audit trail,
// slow-op log).
var WithRequestID = core.WithRequestID

// WithIdempotencyKey marks a catalog mutation replayable: a retry carrying
// the same key returns the recorded response instead of applying twice.
var WithIdempotencyKey = core.WithIdempotencyKey

// OpenCatalog creates an embedded catalog engine (no web service).
func OpenCatalog(opts Options) (*Catalog, error) { return core.Open(opts) }

// RestoreCatalog opens a catalog from a snapshot stream previously written
// with Catalog.Snapshot (daemon restart durability).
var RestoreCatalog = core.Restore

// CASIntegration configures Community Authorization Service support — the
// integration the paper lists as modeled but unimplemented ("we will
// integrate the MCS with the Community Authorization Service"). A request
// carrying a valid CAS assertion (header gsi.AssertionHeader) whose subject
// matches the caller and whose scope and rights cover the operation runs as
// the community identity, to which the catalog administrator grants the
// community's coarse-grained rights. Fine-grained per-member policy lives
// at the CAS, exactly as in the CAS paper's model.
type CASIntegration struct {
	// Community is the expected community name of assertions.
	Community string
	// Key validates assertion signatures (cas.PublicKey()).
	Key ed25519.PublicKey
	// CommunityDN is the catalog identity community operations run as.
	CommunityDN string
}

// ObsOptions configures the server's observability layer. The zero value
// enables dispatch instrumentation and the /metrics, /healthz and /statz
// endpoints, with the slow-operation log off.
type ObsOptions struct {
	// DisableMetrics turns off per-operation dispatch instrumentation.
	DisableMetrics bool
	// DisableEndpoints removes the /metrics, /healthz and /statz HTTP
	// endpoints, leaving only the SOAP endpoint.
	DisableEndpoints bool
	// SlowOpThreshold logs operations slower than this, with their request
	// ID and caller DN, to SlowOpLogger. Zero disables the slow-op log.
	SlowOpThreshold time.Duration
	// SlowOpLogger receives slow-op lines; nil uses the process default
	// logger.
	SlowOpLogger *log.Logger
}

// ServerOptions configures an MCS server.
type ServerOptions struct {
	// Catalog embeds an existing catalog; nil opens a fresh one with
	// CatalogOptions.
	Catalog *Catalog
	// CatalogOptions configures the catalog opened when Catalog is nil.
	CatalogOptions Options
	// TrustStore enables GSI authentication of requests when non-nil.
	TrustStore *gsi.TrustStore
	// CAS enables Community Authorization Service assertions when non-nil.
	CAS *CASIntegration
	// Obs configures metrics, diagnostic endpoints and the slow-op log.
	Obs ObsOptions
	// FaultInjector, when non-nil, injects deterministic failures into
	// dispatch, reply writing, the HTTP transport and database statements —
	// the chaos-testing harness. Production servers leave it nil; there is
	// no injection code on any hot path when disabled.
	FaultInjector *FaultInjector
	// WAL, when non-nil, is the catalog's write-ahead log (already opened
	// and attached via Catalog.OpenWAL). The server only observes it —
	// wal_appends/wal_fsyncs/wal_replayed counters on /metrics and /statz —
	// and routes "wal"-site fault-injection rules into it.
	WAL *WAL
	// DisableJSONAPI removes the compact JSON wire (/api/v1/<op>), leaving
	// SOAP as the only operation transport. Both wires serve the same
	// dispatch table; disabling one never changes the other's behavior.
	DisableJSONAPI bool
}

// Server is the MCS web service: a SOAP endpoint in front of a Catalog.
// It implements http.Handler.
//
// Unless disabled via ObsOptions, the handler also serves:
//
//	/metrics — per-operation request/error counts, in-flight gauges and
//	           latency histograms; Prometheus text format by default,
//	           expvar-style JSON with ?format=json
//	/healthz — liveness probe (checks the catalog answers queries)
//	/statz   — catalog row counts (Catalog.Stats) as JSON
type Server struct {
	*soap.Server
	catalog   *Catalog
	cas       *CASIntegration
	metrics   *obs.Registry
	slow      *obs.SlowOpLog
	faults    *faultinject.Injector
	wal       *WAL
	table     *mcswire.Table
	json      *jsonwire.Server
	endpoints bool
	started   time.Time
}

// FaultInjector returns the server's fault injector, or nil when chaos
// testing is not configured.
func (s *Server) FaultInjector() *FaultInjector { return s.faults }

// Catalog returns the server's underlying catalog engine.
func (s *Server) Catalog() *Catalog { return s.catalog }

// Metrics returns the server's metrics registry, or nil when dispatch
// instrumentation is disabled.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// SlowOps returns the server's slow-operation log, or nil when disabled.
func (s *Server) SlowOps() *obs.SlowOpLog { return s.slow }

// Table returns the transport-neutral dispatch table: every catalog
// operation, registered exactly once and mounted by both wire servers.
func (s *Server) Table() *mcswire.Table { return s.table }

// caller resolves the effective identity of a request: the authenticated
// GSI DN when available, otherwise the client-declared identity (the mode
// the paper's scalability study ran in). When CAS integration is on and
// the request bears a valid assertion for this caller covering (right,
// resource), the operation runs as the community identity instead.
func (s *Server) caller(ctx *mcswire.Ctx, declared string, right gsi.Right, resource string) string {
	dn := ctx.DN
	if dn == "" {
		dn = declared
	}
	if dn == "" {
		dn = "anonymous"
	}
	if s.cas == nil {
		return dn
	}
	encoded := ctx.Header.Get(gsi.AssertionHeader)
	if encoded == "" {
		return dn
	}
	a, err := gsi.DecodeAssertion(encoded, s.cas.Key)
	if err != nil || a.Community != s.cas.Community || a.Subject != dn {
		return dn
	}
	if !a.Grants(right, resource, time.Now()) {
		return dn
	}
	return s.cas.CommunityDN
}

// NewServer builds an MCS server with every catalog operation registered.
func NewServer(opts ServerOptions) (*Server, error) {
	cat := opts.Catalog
	if cat == nil {
		var err error
		cat, err = core.Open(opts.CatalogOptions)
		if err != nil {
			return nil, err
		}
	}
	ss := soap.NewServer("MetadataCatalogService", mcswire.NS)
	if opts.TrustStore != nil {
		ss.SetAuthenticator(&gsi.Verifier{Trust: opts.TrustStore})
	}
	s := &Server{
		Server: ss, catalog: cat, cas: opts.CAS,
		wal:       opts.WAL,
		endpoints: !opts.Obs.DisableEndpoints,
		started:   time.Now(),
	}
	if !opts.Obs.DisableMetrics {
		s.metrics = obs.NewRegistry()
		ss.SetMetrics(s.metrics)
		if w := opts.WAL; w != nil {
			s.metrics.RegisterCounter("mcs_wal_appends_total",
				"Commit records appended to the write-ahead log.",
				func() int64 { return int64(w.Stats().Appends) })
			s.metrics.RegisterCounter("mcs_wal_fsyncs_total",
				"Group-commit fsync rounds on the write-ahead log.",
				func() int64 { return int64(w.Stats().Fsyncs) })
			s.metrics.RegisterCounter("mcs_wal_replayed_total",
				"Log records replayed during recovery at startup.",
				func() int64 { return int64(w.Stats().Replayed) })
		}
	}
	if opts.Obs.SlowOpThreshold > 0 {
		s.slow = obs.NewSlowOpLog(opts.Obs.SlowOpThreshold, opts.Obs.SlowOpLogger)
		ss.SetSlowOpLog(s.slow)
	}
	if inj := opts.FaultInjector; inj != nil {
		if inj.DefaultErr == nil {
			inj.DefaultErr = core.ErrUnavailable
		}
		s.faults = inj
		ss.SetFaultInjector(inj)
		cat.DB().SetFaultHook(func(verb string) error {
			f := inj.Eval(faultinject.SiteDB, verb, "")
			if f == nil {
				return nil
			}
			if s.metrics != nil {
				s.metrics.FaultInjected(string(faultinject.SiteDB))
			}
			if f.Delay > 0 {
				inj.Sleep(f.Delay)
			}
			if f.Kind == faultinject.KindLatency {
				return nil
			}
			return fmt.Errorf("%w: injected %s fault on db %s", f.Err, f.Kind, verb)
		})
		if w := opts.WAL; w != nil {
			w.SetFaultHook(func(op string) *WALFault {
				f := inj.Eval(faultinject.SiteWAL, op, "")
				if f == nil {
					return nil
				}
				if s.metrics != nil {
					s.metrics.FaultInjected(string(faultinject.SiteWAL))
				}
				wf := &WALFault{Delay: f.Delay}
				switch f.Kind {
				case faultinject.KindLatency:
					// delay only
				case faultinject.KindPartial:
					wf.ShortWrite = f.TruncateAt
					if wf.ShortWrite <= 0 {
						wf.ShortWrite = 5 // into the header: an undeniably torn record
					}
					wf.Err = fmt.Errorf("%w: injected torn write on wal %s", f.Err, op)
				default:
					wf.Err = fmt.Errorf("%w: injected %s fault on wal %s", f.Err, f.Kind, op)
				}
				return wf
			})
		}
	}
	ss.SetErrorCode(faultCodeFor)
	s.register()
	if !opts.DisableJSONAPI {
		js := jsonwire.NewServer(s.table)
		if opts.TrustStore != nil {
			js.SetAuthenticator(&gsi.Verifier{Trust: opts.TrustStore})
		}
		if s.metrics != nil {
			js.SetMetrics(s.metrics)
		}
		if s.slow != nil {
			js.SetSlowOpLog(s.slow)
		}
		if s.faults != nil {
			js.SetFaultInjector(s.faults)
		}
		js.SetErrorCode(faultCodeFor)
		s.json = js
	}
	return s, nil
}

// ListenAndServe runs the server on addr until the listener fails.
func (s *Server) ListenAndServe(addr string) error {
	return http.ListenAndServe(addr, s)
}

// ServeHTTP routes the diagnostic endpoints when enabled, the JSON API
// under /api/v1/ unless disabled, and hands everything else to the SOAP
// dispatcher.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.endpoints {
		switch r.URL.Path {
		case "/metrics":
			s.serveMetrics(w, r)
			return
		case "/healthz":
			s.serveHealthz(w, r)
			return
		case "/statz":
			s.serveStatz(w, r)
			return
		}
	}
	if s.json != nil && strings.HasPrefix(r.URL.Path, jsonwire.Prefix) {
		s.json.ServeHTTP(w, r)
		return
	}
	s.Server.ServeHTTP(w, r)
}

// serveMetrics renders the registry: Prometheus text exposition format by
// default (the conventional /metrics contract), expvar-style JSON with
// ?format=json.
func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	if s.metrics == nil {
		http.Error(w, "metrics disabled", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		s.metrics.WriteJSON(w) //nolint:errcheck // best-effort response write
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w) //nolint:errcheck // best-effort response write
}

// serveHealthz reports liveness: 200 when the catalog answers queries.
func (s *Server) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	if _, err := s.catalog.Stats(); err != nil {
		http.Error(w, fmt.Sprintf("catalog unhealthy: %v", err), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n") //nolint:errcheck // best-effort response write
}

// serveStatz reports catalog row counts as JSON.
func (s *Server) serveStatz(w http.ResponseWriter, _ *http.Request) {
	st, err := s.catalog.Stats()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	var faultsInjected int64
	if s.faults != nil {
		faultsInjected = int64(s.faults.Total())
	}
	var wal WALStats
	if s.wal != nil {
		wal = s.wal.Stats()
	}
	enc.Encode(struct { //nolint:errcheck // best-effort response write
		UptimeSeconds  int64  `json:"uptime_seconds"`
		Files          int    `json:"files"`
		Collections    int    `json:"collections"`
		Views          int    `json:"views"`
		Attributes     int    `json:"attributes"`
		AttrDefs       int    `json:"attr_defs"`
		FaultsInjected int64  `json:"faults_injected"`
		ReplayedWrites int64  `json:"replayed_writes"`
		WALAppends     uint64 `json:"wal_appends"`
		WALFsyncs      uint64 `json:"wal_fsyncs"`
		WALReplayed    uint64 `json:"wal_replayed"`
		WALDurableLSN  uint64 `json:"wal_durable_lsn"`
	}{
		UptimeSeconds: int64(time.Since(s.started).Seconds()),
		Files:         st.Files, Collections: st.Collections, Views: st.Views,
		Attributes: st.Attributes, AttrDefs: st.AttrDefs,
		FaultsInjected: faultsInjected,
		ReplayedWrites: s.catalog.ReplayHits(),
		WALAppends:     wal.Appends,
		WALFsyncs:      wal.Fsyncs,
		WALReplayed:    wal.Replayed,
		WALDurableLSN:  wal.DurableLSN,
	})
}

// handle registers one typed operation handler in the dispatch table,
// type-erasing it for the wire servers. Mutating comes from the same
// mutatingActions map the client retry layer consults, so both ends of the
// wire agree — from one source — on which calls carry idempotency keys.
func handle[Req, Resp any](t *mcswire.Table, name string, fn func(ctx *mcswire.Ctx, req *Req) (*Resp, error)) {
	t.Register(mcswire.Handler{
		Name:     name,
		Mutating: mutatingActions[name],
		New:      func() any { return new(Req) },
		Call: func(ctx *mcswire.Ctx, req any) (any, error) {
			return fn(ctx, req.(*Req))
		},
	})
}

// mountSOAP serves every dispatch-table operation over the SOAP wire. The
// SOAP layer owns XML decoding and envelope encoding; the table handler in
// between is the same one the JSON wire runs.
func (s *Server) mountSOAP() {
	for _, name := range s.table.Ops() {
		h := s.table.Lookup(name)
		s.Server.HandleAny(h.Name, h.New, func(ctx *soap.Ctx, req any) (any, error) {
			return h.Call(&mcswire.Ctx{
				DN: ctx.DN, RemoteAddr: ctx.RemoteAddr, Header: ctx.Header,
				RequestID: ctx.RequestID, IdempotencyKey: ctx.IdempotencyKey,
				Transport: "soap",
			}, req)
		})
	}
}

// queryFromWire converts a wire query (target + string-typed predicates)
// into a core Query, shared by the query, queryPage and queryAttrs handlers
// and the streamed query path.
func queryFromWire(target string, limit int, preds []mcswire.WirePredicate) (Query, error) {
	q := Query{Target: ObjectType(target), Limit: limit}
	for _, wp := range preds {
		v, err := core.ParseAttrValue(AttrType(wp.Type), wp.Value)
		if err != nil {
			return Query{}, fmt.Errorf("predicate %q: %w", wp.Attribute, err)
		}
		q.Predicates = append(q.Predicates, Predicate{
			Attribute: wp.Attribute, Op: Op(wp.Op), Value: v,
		})
	}
	return q, nil
}

// streamPageSize bounds how many result rows a streamed operation holds in
// memory at once: the server walks the catalog page by page and writes rows
// out as they surface, so response size never drives server memory.
const streamPageSize = 512

// register builds the transport-neutral dispatch table — every catalog
// operation, registered exactly once — and mounts it on the SOAP server.
// NewServer mounts the same table on the JSON wire.
func (s *Server) register() {
	cat := s.catalog
	t := mcswire.NewTable()
	s.table = t

	// opOpts threads per-request correlation into every mutating catalog
	// call: the request ID (audit trail, slow-op log) and the idempotency
	// key (replay detection for retried writes).
	opOpts := func(ctx *mcswire.Ctx) []core.OpOption {
		return []core.OpOption{
			core.WithRequestID(ctx.RequestID),
			core.WithIdempotencyKey(ctx.IdempotencyKey),
		}
	}

	handle(t, "ping", func(ctx *mcswire.Ctx, req *mcswire.PingRequest) (*mcswire.PingResponse, error) {
		return &mcswire.PingResponse{DN: ctx.DN}, nil
	})

	handle(t, "createFile", func(ctx *mcswire.Ctx, req *mcswire.CreateFileRequest) (*mcswire.CreateFileResponse, error) {
		attrs := make([]Attribute, 0, len(req.Attributes))
		for _, wa := range req.Attributes {
			a, err := wa.ToCore()
			if err != nil {
				return nil, err
			}
			attrs = append(attrs, a)
		}
		f, err := cat.CreateFile(s.caller(ctx, req.Caller, gsi.RightCreate, req.Name), FileSpec{
			Name: req.Name, Version: req.Version, DataType: req.DataType,
			Collection: req.Collection, ContainerID: req.ContainerID,
			ContainerService: req.ContainerService, MasterCopy: req.MasterCopy,
			Audited: req.Audited, Provenance: req.Provenance, Attributes: attrs,
		}, opOpts(ctx)...)
		if err != nil {
			return nil, err
		}
		return &mcswire.CreateFileResponse{File: mcswire.FileToWire(f)}, nil
	})

	handle(t, "getFile", func(ctx *mcswire.Ctx, req *mcswire.GetFileRequest) (*mcswire.GetFileResponse, error) {
		f, err := cat.GetFile(s.caller(ctx, req.Caller, gsi.RightRead, req.Name), req.Name, req.Version)
		if err != nil {
			return nil, err
		}
		return &mcswire.GetFileResponse{File: mcswire.FileToWire(f)}, nil
	})

	handle(t, "fileVersions", func(ctx *mcswire.Ctx, req *mcswire.FileVersionsRequest) (*mcswire.FileVersionsResponse, error) {
		fs, err := cat.FileVersions(s.caller(ctx, req.Caller, gsi.RightRead, req.Name), req.Name)
		if err != nil {
			return nil, err
		}
		resp := &mcswire.FileVersionsResponse{}
		for _, f := range fs {
			resp.Files = append(resp.Files, mcswire.FileToWire(f))
		}
		return resp, nil
	})

	handle(t, "updateFile", func(ctx *mcswire.Ctx, req *mcswire.UpdateFileRequest) (*mcswire.UpdateFileResponse, error) {
		var upd FileUpdate
		if req.SetDataType {
			upd.DataType = &req.DataType
		}
		if req.SetValid {
			upd.Valid = &req.Valid
		}
		if req.SetContainerID {
			upd.ContainerID = &req.ContainerID
		}
		if req.SetContainerService {
			upd.ContainerService = &req.ContainerService
		}
		if req.SetMasterCopy {
			upd.MasterCopy = &req.MasterCopy
		}
		f, err := cat.UpdateFile(s.caller(ctx, req.Caller, gsi.RightWrite, req.Name), req.Name, req.Version, upd,
			opOpts(ctx)...)
		if err != nil {
			return nil, err
		}
		return &mcswire.UpdateFileResponse{File: mcswire.FileToWire(f)}, nil
	})

	handle(t, "deleteFile", func(ctx *mcswire.Ctx, req *mcswire.DeleteFileRequest) (*mcswire.DeleteFileResponse, error) {
		if err := cat.DeleteFile(s.caller(ctx, req.Caller, gsi.RightDelete, req.Name), req.Name, req.Version,
			opOpts(ctx)...); err != nil {
			return nil, err
		}
		return &mcswire.DeleteFileResponse{OK: true}, nil
	})

	handle(t, "moveFile", func(ctx *mcswire.Ctx, req *mcswire.MoveFileRequest) (*mcswire.MoveFileResponse, error) {
		if err := cat.MoveFile(s.caller(ctx, req.Caller, gsi.RightWrite, req.Name), req.Name, req.Version, req.Collection, opOpts(ctx)...); err != nil {
			return nil, err
		}
		return &mcswire.MoveFileResponse{OK: true}, nil
	})

	handle(t, "batchWrite", func(ctx *mcswire.Ctx, req *mcswire.BatchWriteRequest) (*mcswire.BatchWriteResponse, error) {
		ops := make([]BatchOp, 0, len(req.Ops))
		for i, wo := range req.Ops {
			op, err := mcswire.BatchOpFromWire(wo)
			if err != nil {
				return nil, fmt.Errorf("%w: batch op %d: %v", ErrInvalidInput, i, err)
			}
			ops = append(ops, op)
		}
		// Per-object authorization happens per op inside the transaction;
		// the transport-level CAS check covers the batch as one write.
		results, err := cat.BatchWrite(s.caller(ctx, req.Caller, gsi.RightWrite, ""), ops,
			opOpts(ctx)...)
		if err != nil {
			return nil, err
		}
		if s.metrics != nil {
			s.metrics.ObserveBatchSize(len(ops))
		}
		resp := &mcswire.BatchWriteResponse{Count: len(results)}
		if !req.Quiet {
			for _, r := range results {
				resp.Results = append(resp.Results, mcswire.WireBatchResult{
					Action: r.Action, ID: r.ID, Version: r.Version,
				})
			}
		}
		return resp, nil
	})

	handle(t, "createCollection", func(ctx *mcswire.Ctx, req *mcswire.CreateCollectionRequest) (*mcswire.CreateCollectionResponse, error) {
		attrs := make([]Attribute, 0, len(req.Attributes))
		for _, wa := range req.Attributes {
			a, err := wa.ToCore()
			if err != nil {
				return nil, err
			}
			attrs = append(attrs, a)
		}
		col, err := cat.CreateCollection(s.caller(ctx, req.Caller, gsi.RightCreate, req.Name), CollectionSpec{
			Name: req.Name, Description: req.Description, Parent: req.Parent,
			Audited: req.Audited, Attributes: attrs,
		}, opOpts(ctx)...)
		if err != nil {
			return nil, err
		}
		return &mcswire.CreateCollectionResponse{Collection: mcswire.CollectionToWire(col)}, nil
	})

	handle(t, "getCollection", func(ctx *mcswire.Ctx, req *mcswire.GetCollectionRequest) (*mcswire.GetCollectionResponse, error) {
		col, err := cat.GetCollection(s.caller(ctx, req.Caller, gsi.RightRead, req.Name), req.Name)
		if err != nil {
			return nil, err
		}
		return &mcswire.GetCollectionResponse{Collection: mcswire.CollectionToWire(col)}, nil
	})

	// collectionContents also streams: large collections page through the
	// catalog and emit one member per row instead of one giant reply.
	t.Register(mcswire.Handler{
		Name: "collectionContents",
		New:  func() any { return new(mcswire.CollectionContentsRequest) },
		Call: func(ctx *mcswire.Ctx, req any) (any, error) {
			r := req.(*mcswire.CollectionContentsRequest)
			files, subs, err := cat.CollectionContents(s.caller(ctx, r.Caller, gsi.RightRead, r.Name), r.Name)
			if err != nil {
				return nil, err
			}
			resp := &mcswire.CollectionContentsResponse{}
			for _, f := range files {
				resp.Files = append(resp.Files, mcswire.FileToWire(f))
			}
			for _, c := range subs {
				resp.SubCollections = append(resp.SubCollections, mcswire.CollectionToWire(c))
			}
			return resp, nil
		},
		Stream: func(ctx *mcswire.Ctx, req any, emit func(row any) error) error {
			r := req.(*mcswire.CollectionContentsRequest)
			who := s.caller(ctx, r.Caller, gsi.RightRead, r.Name)
			token := ""
			for {
				files, subs, next, err := cat.CollectionContentsPage(who, r.Name, streamPageSize, token)
				if err != nil {
					return err
				}
				for _, f := range files {
					wf := mcswire.FileToWire(f)
					if err := emit(mcswire.ContentsRow{File: &wf}); err != nil {
						return err
					}
				}
				for _, c := range subs {
					wc := mcswire.CollectionToWire(c)
					if err := emit(mcswire.ContentsRow{Collection: &wc}); err != nil {
						return err
					}
				}
				if next == "" {
					return nil
				}
				token = next
			}
		},
	})

	handle(t, "collectionContentsPage", func(ctx *mcswire.Ctx, req *mcswire.CollectionContentsPageRequest) (*mcswire.CollectionContentsPageResponse, error) {
		files, subs, next, err := cat.CollectionContentsPage(
			s.caller(ctx, req.Caller, gsi.RightRead, req.Name), req.Name, req.PageSize, req.Token)
		if err != nil {
			return nil, err
		}
		if s.metrics != nil {
			s.metrics.ObservePageSize(len(files) + len(subs))
		}
		resp := &mcswire.CollectionContentsPageResponse{Next: next}
		for _, f := range files {
			resp.Files = append(resp.Files, mcswire.FileToWire(f))
		}
		for _, c := range subs {
			resp.SubCollections = append(resp.SubCollections, mcswire.CollectionToWire(c))
		}
		return resp, nil
	})

	handle(t, "deleteCollection", func(ctx *mcswire.Ctx, req *mcswire.DeleteCollectionRequest) (*mcswire.DeleteCollectionResponse, error) {
		if err := cat.DeleteCollection(s.caller(ctx, req.Caller, gsi.RightDelete, req.Name), req.Name,
			opOpts(ctx)...); err != nil {
			return nil, err
		}
		return &mcswire.DeleteCollectionResponse{OK: true}, nil
	})

	handle(t, "listCollections", func(ctx *mcswire.Ctx, req *mcswire.ListCollectionsRequest) (*mcswire.ListCollectionsResponse, error) {
		names, err := cat.ListCollections(s.caller(ctx, req.Caller, gsi.RightRead, ""), req.Pattern)
		if err != nil {
			return nil, err
		}
		return &mcswire.ListCollectionsResponse{Names: names}, nil
	})

	handle(t, "createView", func(ctx *mcswire.Ctx, req *mcswire.CreateViewRequest) (*mcswire.CreateViewResponse, error) {
		attrs := make([]Attribute, 0, len(req.Attributes))
		for _, wa := range req.Attributes {
			a, err := wa.ToCore()
			if err != nil {
				return nil, err
			}
			attrs = append(attrs, a)
		}
		v, err := cat.CreateView(s.caller(ctx, req.Caller, gsi.RightCreate, req.Name), ViewSpec{
			Name: req.Name, Description: req.Description, Audited: req.Audited, Attributes: attrs,
		}, opOpts(ctx)...)
		if err != nil {
			return nil, err
		}
		return &mcswire.CreateViewResponse{View: mcswire.ViewToWire(v)}, nil
	})

	handle(t, "addToView", func(ctx *mcswire.Ctx, req *mcswire.AddToViewRequest) (*mcswire.AddToViewResponse, error) {
		if err := cat.AddToView(s.caller(ctx, req.Caller, gsi.RightWrite, req.View), req.View, ObjectType(req.ObjectType), req.Member,
			opOpts(ctx)...); err != nil {
			return nil, err
		}
		return &mcswire.AddToViewResponse{OK: true}, nil
	})

	handle(t, "removeFromView", func(ctx *mcswire.Ctx, req *mcswire.RemoveFromViewRequest) (*mcswire.RemoveFromViewResponse, error) {
		if err := cat.RemoveFromView(s.caller(ctx, req.Caller, gsi.RightWrite, req.View), req.View, ObjectType(req.ObjectType), req.Member, opOpts(ctx)...); err != nil {
			return nil, err
		}
		return &mcswire.RemoveFromViewResponse{OK: true}, nil
	})

	handle(t, "viewContents", func(ctx *mcswire.Ctx, req *mcswire.ViewContentsRequest) (*mcswire.ViewContentsResponse, error) {
		members, err := cat.ViewContents(s.caller(ctx, req.Caller, gsi.RightRead, req.Name), req.Name)
		if err != nil {
			return nil, err
		}
		resp := &mcswire.ViewContentsResponse{}
		for _, m := range members {
			resp.Members = append(resp.Members, mcswire.WireViewMember{
				Type: string(m.Type), ID: m.ID, Name: m.Name,
			})
		}
		return resp, nil
	})

	handle(t, "expandView", func(ctx *mcswire.Ctx, req *mcswire.ExpandViewRequest) (*mcswire.ExpandViewResponse, error) {
		names, err := cat.ExpandView(s.caller(ctx, req.Caller, gsi.RightRead, req.Name), req.Name)
		if err != nil {
			return nil, err
		}
		return &mcswire.ExpandViewResponse{Names: names}, nil
	})

	handle(t, "deleteView", func(ctx *mcswire.Ctx, req *mcswire.DeleteViewRequest) (*mcswire.DeleteViewResponse, error) {
		if err := cat.DeleteView(s.caller(ctx, req.Caller, gsi.RightDelete, req.Name), req.Name,
			opOpts(ctx)...); err != nil {
			return nil, err
		}
		return &mcswire.DeleteViewResponse{OK: true}, nil
	})

	handle(t, "defineAttribute", func(ctx *mcswire.Ctx, req *mcswire.DefineAttributeRequest) (*mcswire.DefineAttributeResponse, error) {
		def, err := cat.DefineAttribute(s.caller(ctx, req.Caller, gsi.RightCreate, req.Name), req.Name, AttrType(req.Type), req.Description, opOpts(ctx)...)
		if err != nil {
			return nil, err
		}
		return &mcswire.DefineAttributeResponse{
			ID: def.ID, Name: def.Name, Type: string(def.Type), Description: def.Description,
		}, nil
	})

	handle(t, "listAttributeDefs", func(ctx *mcswire.Ctx, req *mcswire.ListAttributeDefsRequest) (*mcswire.ListAttributeDefsResponse, error) {
		defs, err := cat.ListAttributeDefs()
		if err != nil {
			return nil, err
		}
		resp := &mcswire.ListAttributeDefsResponse{}
		for _, d := range defs {
			resp.Defs = append(resp.Defs, mcswire.WireAttrDef{
				ID: d.ID, Name: d.Name, Type: string(d.Type), Description: d.Description,
			})
		}
		return resp, nil
	})

	handle(t, "setAttribute", func(ctx *mcswire.Ctx, req *mcswire.SetAttributeRequest) (*mcswire.SetAttributeResponse, error) {
		a, err := req.Attribute.ToCore()
		if err != nil {
			return nil, err
		}
		if err := cat.SetAttribute(s.caller(ctx, req.Caller, gsi.RightWrite, req.Object), ObjectType(req.ObjectType), req.Object, a.Name, a.Value, opOpts(ctx)...); err != nil {
			return nil, err
		}
		return &mcswire.SetAttributeResponse{OK: true}, nil
	})

	handle(t, "unsetAttribute", func(ctx *mcswire.Ctx, req *mcswire.UnsetAttributeRequest) (*mcswire.UnsetAttributeResponse, error) {
		if err := cat.UnsetAttribute(s.caller(ctx, req.Caller, gsi.RightWrite, req.Object), ObjectType(req.ObjectType), req.Object, req.Attribute, opOpts(ctx)...); err != nil {
			return nil, err
		}
		return &mcswire.UnsetAttributeResponse{OK: true}, nil
	})

	handle(t, "getAttributes", func(ctx *mcswire.Ctx, req *mcswire.GetAttributesRequest) (*mcswire.GetAttributesResponse, error) {
		attrs, err := cat.GetAttributes(s.caller(ctx, req.Caller, gsi.RightRead, req.Object), ObjectType(req.ObjectType), req.Object)
		if err != nil {
			return nil, err
		}
		resp := &mcswire.GetAttributesResponse{}
		for _, a := range attrs {
			resp.Attributes = append(resp.Attributes, mcswire.FromCore(a))
		}
		return resp, nil
	})

	// query carries a Stream implementation beside the unary call: over a
	// streaming transport the server pages through the catalog and emits one
	// row per match, so neither side ever materializes the full result.
	t.Register(mcswire.Handler{
		Name: "query",
		New:  func() any { return new(mcswire.QueryRequest) },
		Call: func(ctx *mcswire.Ctx, req any) (any, error) {
			r := req.(*mcswire.QueryRequest)
			q, err := queryFromWire(r.Target, r.Limit, r.Predicates)
			if err != nil {
				return nil, err
			}
			names, err := cat.RunQuery(s.caller(ctx, r.Caller, gsi.RightRead, ""), q)
			if err != nil {
				return nil, err
			}
			return &mcswire.QueryResponse{Names: names}, nil
		},
		Stream: func(ctx *mcswire.Ctx, req any, emit func(row any) error) error {
			r := req.(*mcswire.QueryRequest)
			q, err := queryFromWire(r.Target, 0, r.Predicates)
			if err != nil {
				return err
			}
			who := s.caller(ctx, r.Caller, gsi.RightRead, "")
			sent, token := 0, ""
			for {
				names, next, err := cat.RunQueryPage(who, q, streamPageSize, token)
				if err != nil {
					return err
				}
				for _, n := range names {
					if r.Limit > 0 && sent >= r.Limit {
						return nil
					}
					if err := emit(mcswire.QueryRow{Name: n}); err != nil {
						return err
					}
					sent++
				}
				if next == "" {
					return nil
				}
				token = next
			}
		},
	})

	handle(t, "queryPage", func(ctx *mcswire.Ctx, req *mcswire.QueryPageRequest) (*mcswire.QueryPageResponse, error) {
		q, err := queryFromWire(req.Target, 0, req.Predicates)
		if err != nil {
			return nil, err
		}
		names, next, err := cat.RunQueryPage(s.caller(ctx, req.Caller, gsi.RightRead, ""), q, req.PageSize, req.Token)
		if err != nil {
			return nil, err
		}
		if s.metrics != nil {
			s.metrics.ObservePageSize(len(names))
		}
		return &mcswire.QueryPageResponse{Names: names, Next: next}, nil
	})

	handle(t, "queryAttrs", func(ctx *mcswire.Ctx, req *mcswire.QueryAttrsRequest) (*mcswire.QueryAttrsResponse, error) {
		q, err := queryFromWire(req.Target, req.Limit, req.Predicates)
		if err != nil {
			return nil, err
		}
		results, err := cat.RunQueryAttrs(s.caller(ctx, req.Caller, gsi.RightRead, ""), q, req.Return)
		if err != nil {
			return nil, err
		}
		resp := &mcswire.QueryAttrsResponse{}
		for _, r := range results {
			wr := mcswire.WireQueryResult{Name: r.Name}
			for _, a := range r.Attributes {
				wr.Attributes = append(wr.Attributes, mcswire.FromCore(a))
			}
			resp.Results = append(resp.Results, wr)
		}
		return resp, nil
	})

	handle(t, "annotate", func(ctx *mcswire.Ctx, req *mcswire.AnnotateRequest) (*mcswire.AnnotateResponse, error) {
		a, err := cat.Annotate(s.caller(ctx, req.Caller, gsi.RightAnnotate, req.Object), ObjectType(req.ObjectType), req.Object, req.Text, opOpts(ctx)...)
		if err != nil {
			return nil, err
		}
		return &mcswire.AnnotateResponse{ID: a.ID}, nil
	})

	handle(t, "getAnnotations", func(ctx *mcswire.Ctx, req *mcswire.GetAnnotationsRequest) (*mcswire.GetAnnotationsResponse, error) {
		anns, err := cat.Annotations(s.caller(ctx, req.Caller, gsi.RightRead, req.Object), ObjectType(req.ObjectType), req.Object)
		if err != nil {
			return nil, err
		}
		resp := &mcswire.GetAnnotationsResponse{}
		for _, a := range anns {
			resp.Annotations = append(resp.Annotations, mcswire.WireAnnotation{
				ID: a.ID, Text: a.Text, Creator: a.Creator, At: a.CreatedAt,
			})
		}
		return resp, nil
	})

	handle(t, "addProvenance", func(ctx *mcswire.Ctx, req *mcswire.AddProvenanceRequest) (*mcswire.AddProvenanceResponse, error) {
		if err := cat.AddProvenance(s.caller(ctx, req.Caller, gsi.RightWrite, req.Name), req.Name, req.Version, req.Description, opOpts(ctx)...); err != nil {
			return nil, err
		}
		return &mcswire.AddProvenanceResponse{OK: true}, nil
	})

	handle(t, "getProvenance", func(ctx *mcswire.Ctx, req *mcswire.GetProvenanceRequest) (*mcswire.GetProvenanceResponse, error) {
		recs, err := cat.Provenance(s.caller(ctx, req.Caller, gsi.RightRead, req.Name), req.Name, req.Version)
		if err != nil {
			return nil, err
		}
		resp := &mcswire.GetProvenanceResponse{}
		for _, r := range recs {
			resp.Records = append(resp.Records, mcswire.WireProvenance{
				ID: r.ID, Description: r.Description, At: r.At,
			})
		}
		return resp, nil
	})

	handle(t, "auditLog", func(ctx *mcswire.Ctx, req *mcswire.AuditLogRequest) (*mcswire.AuditLogResponse, error) {
		recs, err := cat.AuditLog(s.caller(ctx, req.Caller, gsi.RightRead, req.Object), ObjectType(req.ObjectType), req.Object)
		if err != nil {
			return nil, err
		}
		resp := &mcswire.AuditLogResponse{}
		for _, r := range recs {
			resp.Records = append(resp.Records, mcswire.WireAudit{
				ID: r.ID, Action: r.Action, DN: r.DN, Detail: r.Detail,
				RequestID: r.RequestID, At: r.At,
			})
		}
		return resp, nil
	})

	handle(t, "grant", func(ctx *mcswire.Ctx, req *mcswire.GrantRequest) (*mcswire.GrantResponse, error) {
		err := cat.Grant(s.caller(ctx, req.Caller, gsi.RightWrite, req.Object), ObjectType(req.ObjectType), req.Object,
			req.Principal, Permission(req.Permission))
		if err != nil {
			return nil, err
		}
		return &mcswire.GrantResponse{OK: true}, nil
	})

	handle(t, "revoke", func(ctx *mcswire.Ctx, req *mcswire.RevokeRequest) (*mcswire.RevokeResponse, error) {
		err := cat.Revoke(s.caller(ctx, req.Caller, gsi.RightWrite, req.Object), ObjectType(req.ObjectType), req.Object,
			req.Principal, Permission(req.Permission))
		if err != nil {
			return nil, err
		}
		return &mcswire.RevokeResponse{OK: true}, nil
	})

	handle(t, "registerWriter", func(ctx *mcswire.Ctx, req *mcswire.RegisterWriterRequest) (*mcswire.RegisterWriterResponse, error) {
		err := cat.RegisterWriter(s.caller(ctx, req.Caller, gsi.RightWrite, ""), Writer{
			DN: req.DN, Description: req.Description, Institution: req.Institution,
			Address: req.Address, Phone: req.Phone, Email: req.Email,
		}, opOpts(ctx)...)
		if err != nil {
			return nil, err
		}
		return &mcswire.RegisterWriterResponse{OK: true}, nil
	})

	handle(t, "getWriter", func(ctx *mcswire.Ctx, req *mcswire.GetWriterRequest) (*mcswire.GetWriterResponse, error) {
		w, err := cat.GetWriter(s.caller(ctx, req.Caller, gsi.RightRead, ""), req.DN)
		if err != nil {
			return nil, err
		}
		return &mcswire.GetWriterResponse{
			DN: w.DN, Description: w.Description, Institution: w.Institution,
			Address: w.Address, Phone: w.Phone, Email: w.Email,
		}, nil
	})

	handle(t, "registerExternalCatalog", func(ctx *mcswire.Ctx, req *mcswire.RegisterExternalCatalogRequest) (*mcswire.RegisterExternalCatalogResponse, error) {
		ec, err := cat.RegisterExternalCatalog(s.caller(ctx, req.Caller, gsi.RightCreate, req.Name), ExternalCatalog{
			Name: req.Name, Type: req.Type, Host: req.Host, IP: req.IP, Description: req.Description,
		}, opOpts(ctx)...)
		if err != nil {
			return nil, err
		}
		return &mcswire.RegisterExternalCatalogResponse{ID: ec.ID}, nil
	})

	handle(t, "listExternalCatalogs", func(ctx *mcswire.Ctx, req *mcswire.ListExternalCatalogsRequest) (*mcswire.ListExternalCatalogsResponse, error) {
		list, err := cat.ExternalCatalogs(s.caller(ctx, req.Caller, gsi.RightRead, ""))
		if err != nil {
			return nil, err
		}
		resp := &mcswire.ListExternalCatalogsResponse{}
		for _, ec := range list {
			resp.Catalogs = append(resp.Catalogs, mcswire.WireExternalCatalog{
				ID: ec.ID, Name: ec.Name, Type: ec.Type, Host: ec.Host,
				IP: ec.IP, Description: ec.Description,
			})
		}
		return resp, nil
	})

	handle(t, "stats", func(ctx *mcswire.Ctx, req *mcswire.StatsRequest) (*mcswire.StatsResponse, error) {
		st, err := cat.Stats()
		if err != nil {
			return nil, err
		}
		return &mcswire.StatsResponse{
			Files: st.Files, Collections: st.Collections, Views: st.Views,
			Attributes: st.Attributes, AttrDefs: st.AttrDefs,
		}, nil
	})

	handle(t, "discoverySummary", func(ctx *mcswire.Ctx, req *mcswire.DiscoverySummaryRequest) (*mcswire.DiscoverySummaryResponse, error) {
		fp := req.FP
		if fp <= 0 || fp >= 1 {
			fp = 0.01
		}
		sum, err := federation.Summarize(cat, "", fp)
		if err != nil {
			return nil, err
		}
		bloomJSON, err := json.Marshal(sum.Pairs)
		if err != nil {
			return nil, err
		}
		attrs := make([]string, 0, len(sum.Attrs))
		for name := range sum.Attrs {
			attrs = append(attrs, name)
		}
		sort.Strings(attrs)
		return &mcswire.DiscoverySummaryResponse{
			Attrs:   attrs,
			Pairs:   base64.StdEncoding.EncodeToString(bloomJSON),
			Objects: sum.Objects,
		}, nil
	})

	s.mountSOAP()
}
