package mcs

import (
	"time"

	"mcs/internal/gsi"
	"mcs/internal/mcswire"
	"mcs/internal/soap"
)

// Client is a typed MCS client over SOAP/HTTP: the equivalent of the Java
// client library generated from the service's WSDL in the original system.
//
// Each Client owns an independent HTTP connection pool, so one Client models
// one "client host" in the scalability experiments. A Client is safe for
// concurrent use by multiple goroutines ("client threads").
type Client struct {
	soap *soap.Client
	// dn is the identity declared on unauthenticated deployments. When a
	// GSI credential is attached with UseCredential, the server derives the
	// identity from the credential instead.
	dn string
}

// NewClient returns a client for the MCS at endpoint, acting as dn.
func NewClient(endpoint, dn string) *Client {
	return &Client{soap: soap.NewClient(endpoint), dn: dn}
}

// UseCredential attaches a GSI credential: every request is signed and the
// server authenticates the chain instead of trusting the declared DN.
func (c *Client) UseCredential(cred *gsi.Credential) {
	c.soap.Sign = cred.Sign
}

// SetTimeout adjusts the per-call HTTP timeout (default 30s). Long-running
// complex queries against large catalogs may need more on loaded servers.
func (c *Client) SetTimeout(d time.Duration) {
	c.soap.HTTP.Timeout = d
}

// UseAssertion attaches an encoded CAS capability assertion (from
// gsi.EncodeAssertion) to every request, enabling community-authorized
// operations on servers configured with CASIntegration.
func (c *Client) UseAssertion(encoded string) {
	if c.soap.Header == nil {
		c.soap.Header = make(map[string][]string)
	}
	c.soap.Header.Set(gsi.AssertionHeader, encoded)
}

// Ping checks liveness and returns the DN the server sees for this client.
func (c *Client) Ping() (string, error) {
	var resp mcswire.PingResponse
	if err := c.soap.Call("ping", &mcswire.PingRequest{}, &resp); err != nil {
		return "", err
	}
	return resp.DN, nil
}

// CreateFile registers a logical file with its user-defined attributes.
func (c *Client) CreateFile(spec FileSpec) (File, error) {
	req := &mcswire.CreateFileRequest{
		Caller: c.dn, Name: spec.Name, Version: spec.Version, DataType: spec.DataType,
		Collection: spec.Collection, ContainerID: spec.ContainerID,
		ContainerService: spec.ContainerService, MasterCopy: spec.MasterCopy,
		Audited: spec.Audited, Provenance: spec.Provenance,
	}
	for _, a := range spec.Attributes {
		req.Attributes = append(req.Attributes, mcswire.FromCore(a))
	}
	var resp mcswire.CreateFileResponse
	if err := c.soap.Call("createFile", req, &resp); err != nil {
		return File{}, err
	}
	return mcswire.FileFromWire(resp.File), nil
}

// GetFile fetches static file metadata; version 0 selects the sole version.
func (c *Client) GetFile(name string, version int) (File, error) {
	var resp mcswire.GetFileResponse
	err := c.soap.Call("getFile", &mcswire.GetFileRequest{Caller: c.dn, Name: name, Version: version}, &resp)
	if err != nil {
		return File{}, err
	}
	return mcswire.FileFromWire(resp.File), nil
}

// FileVersions lists every version of a logical name, oldest first.
func (c *Client) FileVersions(name string) ([]File, error) {
	var resp mcswire.FileVersionsResponse
	if err := c.soap.Call("fileVersions", &mcswire.FileVersionsRequest{Caller: c.dn, Name: name}, &resp); err != nil {
		return nil, err
	}
	files := make([]File, 0, len(resp.Files))
	for _, wf := range resp.Files {
		files = append(files, mcswire.FileFromWire(wf))
	}
	return files, nil
}

// UpdateFile modifies static file attributes (nil fields are unchanged).
func (c *Client) UpdateFile(name string, version int, upd FileUpdate) (File, error) {
	req := &mcswire.UpdateFileRequest{Caller: c.dn, Name: name, Version: version}
	if upd.DataType != nil {
		req.SetDataType, req.DataType = true, *upd.DataType
	}
	if upd.Valid != nil {
		req.SetValid, req.Valid = true, *upd.Valid
	}
	if upd.ContainerID != nil {
		req.SetContainerID, req.ContainerID = true, *upd.ContainerID
	}
	if upd.ContainerService != nil {
		req.SetContainerService, req.ContainerService = true, *upd.ContainerService
	}
	if upd.MasterCopy != nil {
		req.SetMasterCopy, req.MasterCopy = true, *upd.MasterCopy
	}
	var resp mcswire.UpdateFileResponse
	if err := c.soap.Call("updateFile", req, &resp); err != nil {
		return File{}, err
	}
	return mcswire.FileFromWire(resp.File), nil
}

// InvalidateFile clears a file's valid flag.
func (c *Client) InvalidateFile(name string, version int) error {
	valid := false
	_, err := c.UpdateFile(name, version, FileUpdate{Valid: &valid})
	return err
}

// DeleteFile removes a logical file and its dependent metadata.
func (c *Client) DeleteFile(name string, version int) error {
	var resp mcswire.DeleteFileResponse
	return c.soap.Call("deleteFile", &mcswire.DeleteFileRequest{Caller: c.dn, Name: name, Version: version}, &resp)
}

// MoveFile reassigns a file's logical collection ("" removes it).
func (c *Client) MoveFile(name string, version int, collection string) error {
	var resp mcswire.MoveFileResponse
	return c.soap.Call("moveFile", &mcswire.MoveFileRequest{
		Caller: c.dn, Name: name, Version: version, Collection: collection,
	}, &resp)
}

// CreateCollection registers a logical collection.
func (c *Client) CreateCollection(spec CollectionSpec) (Collection, error) {
	req := &mcswire.CreateCollectionRequest{
		Caller: c.dn, Name: spec.Name, Description: spec.Description,
		Parent: spec.Parent, Audited: spec.Audited,
	}
	for _, a := range spec.Attributes {
		req.Attributes = append(req.Attributes, mcswire.FromCore(a))
	}
	var resp mcswire.CreateCollectionResponse
	if err := c.soap.Call("createCollection", req, &resp); err != nil {
		return Collection{}, err
	}
	return mcswire.CollectionFromWire(resp.Collection), nil
}

// GetCollection fetches collection metadata by name.
func (c *Client) GetCollection(name string) (Collection, error) {
	var resp mcswire.GetCollectionResponse
	if err := c.soap.Call("getCollection", &mcswire.GetCollectionRequest{Caller: c.dn, Name: name}, &resp); err != nil {
		return Collection{}, err
	}
	return mcswire.CollectionFromWire(resp.Collection), nil
}

// CollectionContents lists a collection's direct files and sub-collections.
func (c *Client) CollectionContents(name string) ([]File, []Collection, error) {
	var resp mcswire.CollectionContentsResponse
	if err := c.soap.Call("collectionContents", &mcswire.CollectionContentsRequest{Caller: c.dn, Name: name}, &resp); err != nil {
		return nil, nil, err
	}
	files := make([]File, 0, len(resp.Files))
	for _, wf := range resp.Files {
		files = append(files, mcswire.FileFromWire(wf))
	}
	subs := make([]Collection, 0, len(resp.SubCollections))
	for _, wc := range resp.SubCollections {
		subs = append(subs, mcswire.CollectionFromWire(wc))
	}
	return files, subs, nil
}

// DeleteCollection removes an empty collection.
func (c *Client) DeleteCollection(name string) error {
	var resp mcswire.DeleteCollectionResponse
	return c.soap.Call("deleteCollection", &mcswire.DeleteCollectionRequest{Caller: c.dn, Name: name}, &resp)
}

// ListCollections lists collection names, optionally LIKE-filtered.
func (c *Client) ListCollections(pattern string) ([]string, error) {
	var resp mcswire.ListCollectionsResponse
	if err := c.soap.Call("listCollections", &mcswire.ListCollectionsRequest{Caller: c.dn, Pattern: pattern}, &resp); err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// CreateView registers a logical view.
func (c *Client) CreateView(spec ViewSpec) (View, error) {
	req := &mcswire.CreateViewRequest{
		Caller: c.dn, Name: spec.Name, Description: spec.Description, Audited: spec.Audited,
	}
	for _, a := range spec.Attributes {
		req.Attributes = append(req.Attributes, mcswire.FromCore(a))
	}
	var resp mcswire.CreateViewResponse
	if err := c.soap.Call("createView", req, &resp); err != nil {
		return View{}, err
	}
	return View{
		ID: resp.View.ID, Name: resp.View.Name, Description: resp.View.Description,
		Creator: resp.View.Creator, LastModifier: resp.View.LastModifier,
		Created: resp.View.Created, Modified: resp.View.Modified, Audited: resp.View.Audited,
	}, nil
}

// AddToView aggregates an object into a view.
func (c *Client) AddToView(view string, objType ObjectType, member string) error {
	var resp mcswire.AddToViewResponse
	return c.soap.Call("addToView", &mcswire.AddToViewRequest{
		Caller: c.dn, View: view, ObjectType: string(objType), Member: member,
	}, &resp)
}

// RemoveFromView removes a member from a view.
func (c *Client) RemoveFromView(view string, objType ObjectType, member string) error {
	var resp mcswire.RemoveFromViewResponse
	return c.soap.Call("removeFromView", &mcswire.RemoveFromViewRequest{
		Caller: c.dn, View: view, ObjectType: string(objType), Member: member,
	}, &resp)
}

// ViewContents lists a view's direct members.
func (c *Client) ViewContents(name string) ([]ViewMember, error) {
	var resp mcswire.ViewContentsResponse
	if err := c.soap.Call("viewContents", &mcswire.ViewContentsRequest{Caller: c.dn, Name: name}, &resp); err != nil {
		return nil, err
	}
	members := make([]ViewMember, 0, len(resp.Members))
	for _, m := range resp.Members {
		members = append(members, ViewMember{Type: ObjectType(m.Type), ID: m.ID, Name: m.Name})
	}
	return members, nil
}

// ExpandView recursively resolves a view to logical file names.
func (c *Client) ExpandView(name string) ([]string, error) {
	var resp mcswire.ExpandViewResponse
	if err := c.soap.Call("expandView", &mcswire.ExpandViewRequest{Caller: c.dn, Name: name}, &resp); err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// DeleteView removes a view (not its members).
func (c *Client) DeleteView(name string) error {
	var resp mcswire.DeleteViewResponse
	return c.soap.Call("deleteView", &mcswire.DeleteViewRequest{Caller: c.dn, Name: name}, &resp)
}

// DefineAttribute declares a user-defined attribute.
func (c *Client) DefineAttribute(name string, typ AttrType, description string) (AttributeDef, error) {
	var resp mcswire.DefineAttributeResponse
	err := c.soap.Call("defineAttribute", &mcswire.DefineAttributeRequest{
		Caller: c.dn, Name: name, Type: string(typ), Description: description,
	}, &resp)
	if err != nil {
		return AttributeDef{}, err
	}
	return AttributeDef{ID: resp.ID, Name: resp.Name, Type: AttrType(resp.Type), Description: resp.Description}, nil
}

// ListAttributeDefs lists every declared user-defined attribute.
func (c *Client) ListAttributeDefs() ([]AttributeDef, error) {
	var resp mcswire.ListAttributeDefsResponse
	if err := c.soap.Call("listAttributeDefs", &mcswire.ListAttributeDefsRequest{Caller: c.dn}, &resp); err != nil {
		return nil, err
	}
	defs := make([]AttributeDef, 0, len(resp.Defs))
	for _, d := range resp.Defs {
		defs = append(defs, AttributeDef{ID: d.ID, Name: d.Name, Type: AttrType(d.Type), Description: d.Description})
	}
	return defs, nil
}

// SetAttribute binds a user-defined attribute value on an object.
func (c *Client) SetAttribute(objType ObjectType, object, attr string, v AttrValue) error {
	var resp mcswire.SetAttributeResponse
	return c.soap.Call("setAttribute", &mcswire.SetAttributeRequest{
		Caller: c.dn, ObjectType: string(objType), Object: object,
		Attribute: mcswire.FromCore(Attribute{Name: attr, Value: v}),
	}, &resp)
}

// UnsetAttribute removes a user-defined attribute from an object.
func (c *Client) UnsetAttribute(objType ObjectType, object, attr string) error {
	var resp mcswire.UnsetAttributeResponse
	return c.soap.Call("unsetAttribute", &mcswire.UnsetAttributeRequest{
		Caller: c.dn, ObjectType: string(objType), Object: object, Attribute: attr,
	}, &resp)
}

// GetAttributes lists an object's user-defined attributes.
func (c *Client) GetAttributes(objType ObjectType, object string) ([]Attribute, error) {
	var resp mcswire.GetAttributesResponse
	err := c.soap.Call("getAttributes", &mcswire.GetAttributesRequest{
		Caller: c.dn, ObjectType: string(objType), Object: object,
	}, &resp)
	if err != nil {
		return nil, err
	}
	attrs := make([]Attribute, 0, len(resp.Attributes))
	for _, wa := range resp.Attributes {
		a, err := wa.ToCore()
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, a)
	}
	return attrs, nil
}

// RunQuery executes an attribute-based discovery query, returning matching
// logical names.
func (c *Client) RunQuery(q Query) ([]string, error) {
	req := &mcswire.QueryRequest{Caller: c.dn, Target: string(q.Target), Limit: q.Limit}
	for _, p := range q.Predicates {
		req.Predicates = append(req.Predicates, mcswire.WirePredicate{
			Attribute: p.Attribute, Op: string(p.Op),
			Type: string(p.Value.Type), Value: p.Value.Render(),
		})
	}
	var resp mcswire.QueryResponse
	if err := c.soap.Call("query", req, &resp); err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// RunQueryAttrs executes a discovery query and also returns the values of
// the named user-defined attributes for every match.
func (c *Client) RunQueryAttrs(q Query, returnAttrs []string) ([]QueryResult, error) {
	req := &mcswire.QueryAttrsRequest{
		Caller: c.dn, Target: string(q.Target), Limit: q.Limit, Return: returnAttrs,
	}
	for _, p := range q.Predicates {
		req.Predicates = append(req.Predicates, mcswire.WirePredicate{
			Attribute: p.Attribute, Op: string(p.Op),
			Type: string(p.Value.Type), Value: p.Value.Render(),
		})
	}
	var resp mcswire.QueryAttrsResponse
	if err := c.soap.Call("queryAttrs", req, &resp); err != nil {
		return nil, err
	}
	results := make([]QueryResult, 0, len(resp.Results))
	for _, wr := range resp.Results {
		r := QueryResult{Name: wr.Name}
		for _, wa := range wr.Attributes {
			a, err := wa.ToCore()
			if err != nil {
				return nil, err
			}
			r.Attributes = append(r.Attributes, a)
		}
		results = append(results, r)
	}
	return results, nil
}

// Annotate attaches a free-text note to an object.
func (c *Client) Annotate(objType ObjectType, object, text string) (int64, error) {
	var resp mcswire.AnnotateResponse
	err := c.soap.Call("annotate", &mcswire.AnnotateRequest{
		Caller: c.dn, ObjectType: string(objType), Object: object, Text: text,
	}, &resp)
	return resp.ID, err
}

// Annotations lists the notes on an object, oldest first.
func (c *Client) Annotations(objType ObjectType, object string) ([]Annotation, error) {
	var resp mcswire.GetAnnotationsResponse
	err := c.soap.Call("getAnnotations", &mcswire.GetAnnotationsRequest{
		Caller: c.dn, ObjectType: string(objType), Object: object,
	}, &resp)
	if err != nil {
		return nil, err
	}
	anns := make([]Annotation, 0, len(resp.Annotations))
	for _, a := range resp.Annotations {
		anns = append(anns, Annotation{ID: a.ID, Text: a.Text, Creator: a.Creator, CreatedAt: a.At})
	}
	return anns, nil
}

// AddProvenance appends a transformation-history record to a file.
func (c *Client) AddProvenance(name string, version int, description string) error {
	var resp mcswire.AddProvenanceResponse
	return c.soap.Call("addProvenance", &mcswire.AddProvenanceRequest{
		Caller: c.dn, Name: name, Version: version, Description: description,
	}, &resp)
}

// Provenance returns a file's transformation history, oldest first.
func (c *Client) Provenance(name string, version int) ([]ProvenanceRecord, error) {
	var resp mcswire.GetProvenanceResponse
	err := c.soap.Call("getProvenance", &mcswire.GetProvenanceRequest{
		Caller: c.dn, Name: name, Version: version,
	}, &resp)
	if err != nil {
		return nil, err
	}
	recs := make([]ProvenanceRecord, 0, len(resp.Records))
	for _, r := range resp.Records {
		recs = append(recs, ProvenanceRecord{ID: r.ID, Description: r.Description, At: r.At})
	}
	return recs, nil
}

// AuditLog returns the audit trail of an object, oldest first.
func (c *Client) AuditLog(objType ObjectType, object string) ([]AuditRecord, error) {
	var resp mcswire.AuditLogResponse
	err := c.soap.Call("auditLog", &mcswire.AuditLogRequest{
		Caller: c.dn, ObjectType: string(objType), Object: object,
	}, &resp)
	if err != nil {
		return nil, err
	}
	recs := make([]AuditRecord, 0, len(resp.Records))
	for _, r := range resp.Records {
		recs = append(recs, AuditRecord{ID: r.ID, Action: r.Action, DN: r.DN, Detail: r.Detail, At: r.At})
	}
	return recs, nil
}

// Grant gives principal a permission on an object ("" + ObjectService for
// service-level rights).
func (c *Client) Grant(objType ObjectType, object, principal string, perm Permission) error {
	var resp mcswire.GrantResponse
	return c.soap.Call("grant", &mcswire.GrantRequest{
		Caller: c.dn, ObjectType: string(objType), Object: object,
		Principal: principal, Permission: string(perm),
	}, &resp)
}

// Revoke removes a granted permission.
func (c *Client) Revoke(objType ObjectType, object, principal string, perm Permission) error {
	var resp mcswire.RevokeResponse
	return c.soap.Call("revoke", &mcswire.RevokeRequest{
		Caller: c.dn, ObjectType: string(objType), Object: object,
		Principal: principal, Permission: string(perm),
	}, &resp)
}

// RegisterWriter stores a metadata-writer contact record.
func (c *Client) RegisterWriter(w Writer) error {
	var resp mcswire.RegisterWriterResponse
	return c.soap.Call("registerWriter", &mcswire.RegisterWriterRequest{
		Caller: c.dn, DN: w.DN, Description: w.Description, Institution: w.Institution,
		Address: w.Address, Phone: w.Phone, Email: w.Email,
	}, &resp)
}

// GetWriter fetches a writer contact record by DN.
func (c *Client) GetWriter(dn string) (Writer, error) {
	var resp mcswire.GetWriterResponse
	if err := c.soap.Call("getWriter", &mcswire.GetWriterRequest{Caller: c.dn, DN: dn}, &resp); err != nil {
		return Writer{}, err
	}
	return Writer{DN: resp.DN, Description: resp.Description, Institution: resp.Institution,
		Address: resp.Address, Phone: resp.Phone, Email: resp.Email}, nil
}

// RegisterExternalCatalog records a pointer to another metadata catalog.
func (c *Client) RegisterExternalCatalog(ec ExternalCatalog) (int64, error) {
	var resp mcswire.RegisterExternalCatalogResponse
	err := c.soap.Call("registerExternalCatalog", &mcswire.RegisterExternalCatalogRequest{
		Caller: c.dn, Name: ec.Name, Type: ec.Type, Host: ec.Host, IP: ec.IP, Description: ec.Description,
	}, &resp)
	return resp.ID, err
}

// ListExternalCatalogs lists the registered external catalogs.
func (c *Client) ListExternalCatalogs() ([]ExternalCatalog, error) {
	var resp mcswire.ListExternalCatalogsResponse
	if err := c.soap.Call("listExternalCatalogs", &mcswire.ListExternalCatalogsRequest{Caller: c.dn}, &resp); err != nil {
		return nil, err
	}
	list := make([]ExternalCatalog, 0, len(resp.Catalogs))
	for _, ec := range resp.Catalogs {
		list = append(list, ExternalCatalog{
			ID: ec.ID, Name: ec.Name, Type: ec.Type, Host: ec.Host, IP: ec.IP, Description: ec.Description,
		})
	}
	return list, nil
}

// Stats returns catalog row counts.
func (c *Client) Stats() (Stats, error) {
	var resp mcswire.StatsResponse
	if err := c.soap.Call("stats", &mcswire.StatsRequest{Caller: c.dn}, &resp); err != nil {
		return Stats{}, err
	}
	return Stats{
		Files: resp.Files, Collections: resp.Collections, Views: resp.Views,
		Attributes: resp.Attributes, AttrDefs: resp.AttrDefs,
	}, nil
}
