package mcs

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mcs/internal/gsi"
	"mcs/internal/jsonwire"
	"mcs/internal/mcswire"
	"mcs/internal/soap"
)

// Client is a typed MCS client over SOAP/HTTP: the equivalent of the Java
// client library generated from the service's WSDL in the original system.
//
// Each Client owns an independent HTTP connection pool, so one Client models
// one "client host" in the scalability experiments. A Client is safe for
// concurrent use by multiple goroutines ("client threads").
//
// Construction takes functional options:
//
//	c := mcs.NewClient(url, dn,
//		mcs.WithTimeout(2*time.Minute),
//		mcs.WithCredential(cred))
//
// Every operation has two forms: a plain method (GetFile) that runs with
// context.Background, and a context-aware variant (GetFileCtx) whose
// deadline and cancellation are honored by the HTTP transport. Each call
// carries a request correlation ID in the X-MCS-Request-ID header
// (generated per call); the server echoes it, attaches it to audit records
// and quotes it in its slow-operation log.
//
// Errors returned by the service preserve their identity across the wire:
// a failed call can be matched with errors.Is against the package sentinels
// (ErrNotFound, ErrExists, ErrDenied, ErrInvalidInput, ErrCycle,
// ErrNotEmpty, ErrAmbiguousFile, ErrUnavailable), exactly as if the catalog
// were embedded. Calls that fail without a decodable reply match
// ErrTransport; WithRetry makes the client retry those (and ErrUnavailable)
// automatically with idempotency keys on mutating operations.
type Client struct {
	// soap and json are the two built-in wire clients. They share one HTTP
	// connection pool and one header set, so every option applies whichever
	// transport is (or later becomes) selected.
	soap      *soap.Client
	json      *jsonwire.Client
	transport Transport
	kind      TransportKind
	// dn is the identity declared on unauthenticated deployments. When a
	// GSI credential is attached with WithCredential, the server derives
	// the identity from the credential instead.
	dn string

	// Retry policy (off unless WithRetry raises retryAttempts above 1).
	retryAttempts int
	backoffBase   time.Duration
	backoffMax    time.Duration
	// sleep pauses between attempts; tests substitute a recorder.
	sleep func(ctx context.Context, d time.Duration) error
	// rngState drives backoff jitter (splitmix64; cheap, no global lock).
	rngMu    sync.Mutex
	rngState uint64
	attempts atomic.Int64
	retries  atomic.Int64
}

// ClientOption configures a Client at construction.
type ClientOption func(*Client)

// WithTimeout sets the per-call HTTP timeout (default 30s). Long-running
// complex queries against large catalogs may need more on loaded servers;
// per-call deadlines via the ...Ctx variants compose with (and can be
// shorter than) this ceiling.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.soap.HTTP.Timeout = d }
}

// WithCredential attaches a GSI credential: every request is signed and the
// server authenticates the chain instead of trusting the declared DN.
func WithCredential(cred *gsi.Credential) ClientOption {
	return func(c *Client) {
		c.soap.Sign = cred.Sign
		c.json.Sign = cred.Sign
	}
}

// WithAssertion attaches an encoded CAS capability assertion (from
// gsi.EncodeAssertion) to every request, enabling community-authorized
// operations on servers configured with CASIntegration.
func WithAssertion(encoded string) ClientOption {
	return func(c *Client) { c.soap.Header.Set(gsi.AssertionHeader, encoded) }
}

// WithTransport selects the wire encoding: TransportSOAP (the default, and
// the paper-faithful one) or TransportJSON (the compact /api/v1 wire). The
// two carry identical semantics — every operation, error sentinel, request
// correlation ID and idempotent-retry guarantee works the same over either.
func WithTransport(kind TransportKind) ClientOption {
	return func(c *Client) { c.setTransport(kind) }
}

// WithCustomTransport installs a caller-provided Transport implementation —
// for tests, proxies or alternative encodings. The retry layer still pins
// request IDs and idempotency keys through the extra-headers argument, so a
// semantics-preserving transport keeps exactly-once retries.
func WithCustomTransport(t Transport) ClientOption {
	return func(c *Client) { c.transport, c.kind = t, "" }
}

// WithHTTPClient substitutes the *http.Client both wire transports share —
// custom TLS configuration, proxies or instrumentation. It replaces the
// default pool including its timeout, so combine with WithTimeout (after
// this option) when a call ceiling is still wanted.
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *Client) {
		c.soap.HTTP = h
		c.json.HTTP = h
	}
}

// WithRetry enables automatic retry of failed calls: each logical call makes
// up to attempts HTTP round trips (attempts <= 1 disables retry, the
// default). Only transient failures are retried — server-declared
// unavailability (ErrUnavailable) and transport failures with no decodable
// reply (ErrTransport); catalog verdicts like ErrNotFound or ErrDenied are
// returned immediately. Every attempt of a logical call repeats the same
// request correlation ID, and mutating calls also carry a pinned idempotency
// key, so a server that already applied the operation answers the replay
// from its replay cache instead of applying it twice: with retries on, every
// mutation is applied exactly once even when replies are lost mid-flight.
func WithRetry(attempts int) ClientOption {
	return func(c *Client) { c.retryAttempts = attempts }
}

// WithBackoff tunes the pause between retry attempts (default 25ms base,
// 1s cap): attempt n waits base*2^(n-1) capped at max, jittered down by up
// to half so concurrent clients do not retry in lockstep. Only meaningful
// together with WithRetry.
func WithBackoff(base, max time.Duration) ClientOption {
	return func(c *Client) {
		if base > 0 {
			c.backoffBase = base
		}
		if max > 0 {
			c.backoffMax = max
		}
	}
}

// WithRequestIDHeader renames the header carrying the per-call request
// correlation ID (default obs.RequestIDHeader, "X-MCS-Request-ID"), for
// deployments that standardize on another name; "" disables request-ID
// propagation.
func WithRequestIDHeader(name string) ClientOption {
	return func(c *Client) {
		c.soap.RequestIDHeader = name
		c.json.RequestIDHeader = name
	}
}

// NewClient returns a client for the MCS at endpoint, acting as dn.
func NewClient(endpoint, dn string, opts ...ClientOption) *Client {
	c := &Client{
		soap:        soap.NewClient(endpoint),
		json:        jsonwire.NewClient(endpoint),
		dn:          dn,
		backoffBase: 25 * time.Millisecond,
		backoffMax:  time.Second,
		sleep:       ctxSleep,
		rngState:    seedRNG(),
	}
	// One pool, one header set: options and deprecated setters configure
	// the client, not a wire, so they must land on whichever transport is
	// ever selected.
	c.json.HTTP = c.soap.HTTP
	c.soap.Header = make(http.Header)
	c.json.Header = c.soap.Header
	c.setTransport(TransportSOAP)
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// setTransport points the client at one of the built-in wires.
func (c *Client) setTransport(kind TransportKind) {
	switch kind {
	case TransportJSON:
		c.transport, c.kind = jsonTransport{c.json}, TransportJSON
	default:
		c.transport, c.kind = soapTransport{c.soap}, TransportSOAP
	}
}

// TransportName reports which wire the client is using: TransportSOAP,
// TransportJSON, or "" for a custom Transport.
func (c *Client) TransportName() TransportKind { return c.kind }

// UseCredential attaches a GSI credential.
//
// Deprecated: pass WithCredential to NewClient.
func (c *Client) UseCredential(cred *gsi.Credential) { WithCredential(cred)(c) }

// SetTimeout adjusts the per-call HTTP timeout.
//
// Deprecated: pass WithTimeout to NewClient.
func (c *Client) SetTimeout(d time.Duration) { WithTimeout(d)(c) }

// UseAssertion attaches an encoded CAS capability assertion.
//
// Deprecated: pass WithAssertion to NewClient.
func (c *Client) UseAssertion(encoded string) { WithAssertion(encoded)(c) }

// call performs one logical call — a single wire round trip, or a retry
// loop when WithRetry is configured — and maps wire faults back to the
// sentinel their fault code names, whichever transport carried them.
func (c *Client) call(ctx context.Context, action string, req, resp any) error {
	if c.retryAttempts <= 1 {
		return mapWireError(c.transport.Call(ctx, action, nil, req, resp))
	}
	return c.callRetry(ctx, action, req, resp)
}

// Ping checks liveness with context.Background.
func (c *Client) Ping() (string, error) { return c.PingCtx(context.Background()) }

// PingCtx checks liveness and returns the DN the server sees for this
// client.
func (c *Client) PingCtx(ctx context.Context) (string, error) {
	var resp mcswire.PingResponse
	if err := c.call(ctx, "ping", &mcswire.PingRequest{}, &resp); err != nil {
		return "", err
	}
	return resp.DN, nil
}

// CreateFile registers a logical file with context.Background.
func (c *Client) CreateFile(spec FileSpec) (File, error) {
	return c.CreateFileCtx(context.Background(), spec)
}

// CreateFileCtx registers a logical file with its user-defined attributes.
func (c *Client) CreateFileCtx(ctx context.Context, spec FileSpec) (File, error) {
	req := &mcswire.CreateFileRequest{
		Caller: c.dn, Name: spec.Name, Version: spec.Version, DataType: spec.DataType,
		Collection: spec.Collection, ContainerID: spec.ContainerID,
		ContainerService: spec.ContainerService, MasterCopy: spec.MasterCopy,
		Audited: spec.Audited, Provenance: spec.Provenance,
	}
	for _, a := range spec.Attributes {
		req.Attributes = append(req.Attributes, mcswire.FromCore(a))
	}
	var resp mcswire.CreateFileResponse
	if err := c.call(ctx, "createFile", req, &resp); err != nil {
		return File{}, err
	}
	return mcswire.FileFromWire(resp.File), nil
}

// GetFile fetches file metadata with context.Background.
func (c *Client) GetFile(name string, version int) (File, error) {
	return c.GetFileCtx(context.Background(), name, version)
}

// GetFileCtx fetches static file metadata; version 0 selects the sole
// version.
func (c *Client) GetFileCtx(ctx context.Context, name string, version int) (File, error) {
	var resp mcswire.GetFileResponse
	err := c.call(ctx, "getFile", &mcswire.GetFileRequest{Caller: c.dn, Name: name, Version: version}, &resp)
	if err != nil {
		return File{}, err
	}
	return mcswire.FileFromWire(resp.File), nil
}

// FileVersions lists versions with context.Background.
func (c *Client) FileVersions(name string) ([]File, error) {
	return c.FileVersionsCtx(context.Background(), name)
}

// FileVersionsCtx lists every version of a logical name, oldest first.
func (c *Client) FileVersionsCtx(ctx context.Context, name string) ([]File, error) {
	var resp mcswire.FileVersionsResponse
	if err := c.call(ctx, "fileVersions", &mcswire.FileVersionsRequest{Caller: c.dn, Name: name}, &resp); err != nil {
		return nil, err
	}
	files := make([]File, 0, len(resp.Files))
	for _, wf := range resp.Files {
		files = append(files, mcswire.FileFromWire(wf))
	}
	return files, nil
}

// UpdateFile modifies file attributes with context.Background.
func (c *Client) UpdateFile(name string, version int, upd FileUpdate) (File, error) {
	return c.UpdateFileCtx(context.Background(), name, version, upd)
}

// UpdateFileCtx modifies static file attributes (nil fields are unchanged).
func (c *Client) UpdateFileCtx(ctx context.Context, name string, version int, upd FileUpdate) (File, error) {
	req := &mcswire.UpdateFileRequest{Caller: c.dn, Name: name, Version: version}
	if upd.DataType != nil {
		req.SetDataType, req.DataType = true, *upd.DataType
	}
	if upd.Valid != nil {
		req.SetValid, req.Valid = true, *upd.Valid
	}
	if upd.ContainerID != nil {
		req.SetContainerID, req.ContainerID = true, *upd.ContainerID
	}
	if upd.ContainerService != nil {
		req.SetContainerService, req.ContainerService = true, *upd.ContainerService
	}
	if upd.MasterCopy != nil {
		req.SetMasterCopy, req.MasterCopy = true, *upd.MasterCopy
	}
	var resp mcswire.UpdateFileResponse
	if err := c.call(ctx, "updateFile", req, &resp); err != nil {
		return File{}, err
	}
	return mcswire.FileFromWire(resp.File), nil
}

// InvalidateFile clears a file's valid flag with context.Background.
func (c *Client) InvalidateFile(name string, version int) error {
	return c.InvalidateFileCtx(context.Background(), name, version)
}

// InvalidateFileCtx clears a file's valid flag.
func (c *Client) InvalidateFileCtx(ctx context.Context, name string, version int) error {
	valid := false
	_, err := c.UpdateFileCtx(ctx, name, version, FileUpdate{Valid: &valid})
	return err
}

// DeleteFile removes a logical file with context.Background.
func (c *Client) DeleteFile(name string, version int) error {
	return c.DeleteFileCtx(context.Background(), name, version)
}

// DeleteFileCtx removes a logical file and its dependent metadata.
func (c *Client) DeleteFileCtx(ctx context.Context, name string, version int) error {
	var resp mcswire.DeleteFileResponse
	return c.call(ctx, "deleteFile", &mcswire.DeleteFileRequest{Caller: c.dn, Name: name, Version: version}, &resp)
}

// MoveFile reassigns a file's collection with context.Background.
func (c *Client) MoveFile(name string, version int, collection string) error {
	return c.MoveFileCtx(context.Background(), name, version, collection)
}

// MoveFileCtx reassigns a file's logical collection ("" removes it).
func (c *Client) MoveFileCtx(ctx context.Context, name string, version int, collection string) error {
	var resp mcswire.MoveFileResponse
	return c.call(ctx, "moveFile", &mcswire.MoveFileRequest{
		Caller: c.dn, Name: name, Version: version, Collection: collection,
	}, &resp)
}

// CreateCollection registers a collection with context.Background.
func (c *Client) CreateCollection(spec CollectionSpec) (Collection, error) {
	return c.CreateCollectionCtx(context.Background(), spec)
}

// CreateCollectionCtx registers a logical collection.
func (c *Client) CreateCollectionCtx(ctx context.Context, spec CollectionSpec) (Collection, error) {
	req := &mcswire.CreateCollectionRequest{
		Caller: c.dn, Name: spec.Name, Description: spec.Description,
		Parent: spec.Parent, Audited: spec.Audited,
	}
	for _, a := range spec.Attributes {
		req.Attributes = append(req.Attributes, mcswire.FromCore(a))
	}
	var resp mcswire.CreateCollectionResponse
	if err := c.call(ctx, "createCollection", req, &resp); err != nil {
		return Collection{}, err
	}
	return mcswire.CollectionFromWire(resp.Collection), nil
}

// GetCollection fetches collection metadata with context.Background.
func (c *Client) GetCollection(name string) (Collection, error) {
	return c.GetCollectionCtx(context.Background(), name)
}

// GetCollectionCtx fetches collection metadata by name.
func (c *Client) GetCollectionCtx(ctx context.Context, name string) (Collection, error) {
	var resp mcswire.GetCollectionResponse
	if err := c.call(ctx, "getCollection", &mcswire.GetCollectionRequest{Caller: c.dn, Name: name}, &resp); err != nil {
		return Collection{}, err
	}
	return mcswire.CollectionFromWire(resp.Collection), nil
}

// CollectionContents lists a collection with context.Background.
func (c *Client) CollectionContents(name string) ([]File, []Collection, error) {
	return c.CollectionContentsCtx(context.Background(), name)
}

// CollectionContentsCtx lists a collection's direct files and
// sub-collections.
func (c *Client) CollectionContentsCtx(ctx context.Context, name string) ([]File, []Collection, error) {
	var resp mcswire.CollectionContentsResponse
	if err := c.call(ctx, "collectionContents", &mcswire.CollectionContentsRequest{Caller: c.dn, Name: name}, &resp); err != nil {
		return nil, nil, err
	}
	files := make([]File, 0, len(resp.Files))
	for _, wf := range resp.Files {
		files = append(files, mcswire.FileFromWire(wf))
	}
	subs := make([]Collection, 0, len(resp.SubCollections))
	for _, wc := range resp.SubCollections {
		subs = append(subs, mcswire.CollectionFromWire(wc))
	}
	return files, subs, nil
}

// DeleteCollection removes an empty collection with context.Background.
func (c *Client) DeleteCollection(name string) error {
	return c.DeleteCollectionCtx(context.Background(), name)
}

// DeleteCollectionCtx removes an empty collection.
func (c *Client) DeleteCollectionCtx(ctx context.Context, name string) error {
	var resp mcswire.DeleteCollectionResponse
	return c.call(ctx, "deleteCollection", &mcswire.DeleteCollectionRequest{Caller: c.dn, Name: name}, &resp)
}

// ListCollections lists collection names with context.Background.
func (c *Client) ListCollections(pattern string) ([]string, error) {
	return c.ListCollectionsCtx(context.Background(), pattern)
}

// ListCollectionsCtx lists collection names, optionally LIKE-filtered.
func (c *Client) ListCollectionsCtx(ctx context.Context, pattern string) ([]string, error) {
	var resp mcswire.ListCollectionsResponse
	if err := c.call(ctx, "listCollections", &mcswire.ListCollectionsRequest{Caller: c.dn, Pattern: pattern}, &resp); err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// CreateView registers a logical view with context.Background.
func (c *Client) CreateView(spec ViewSpec) (View, error) {
	return c.CreateViewCtx(context.Background(), spec)
}

// CreateViewCtx registers a logical view.
func (c *Client) CreateViewCtx(ctx context.Context, spec ViewSpec) (View, error) {
	req := &mcswire.CreateViewRequest{
		Caller: c.dn, Name: spec.Name, Description: spec.Description, Audited: spec.Audited,
	}
	for _, a := range spec.Attributes {
		req.Attributes = append(req.Attributes, mcswire.FromCore(a))
	}
	var resp mcswire.CreateViewResponse
	if err := c.call(ctx, "createView", req, &resp); err != nil {
		return View{}, err
	}
	return View{
		ID: resp.View.ID, Name: resp.View.Name, Description: resp.View.Description,
		Creator: resp.View.Creator, LastModifier: resp.View.LastModifier,
		Created: resp.View.Created, Modified: resp.View.Modified, Audited: resp.View.Audited,
	}, nil
}

// AddToView aggregates an object into a view with context.Background.
func (c *Client) AddToView(view string, objType ObjectType, member string) error {
	return c.AddToViewCtx(context.Background(), view, objType, member)
}

// AddToViewCtx aggregates an object into a view.
func (c *Client) AddToViewCtx(ctx context.Context, view string, objType ObjectType, member string) error {
	var resp mcswire.AddToViewResponse
	return c.call(ctx, "addToView", &mcswire.AddToViewRequest{
		Caller: c.dn, View: view, ObjectType: string(objType), Member: member,
	}, &resp)
}

// RemoveFromView removes a view member with context.Background.
func (c *Client) RemoveFromView(view string, objType ObjectType, member string) error {
	return c.RemoveFromViewCtx(context.Background(), view, objType, member)
}

// RemoveFromViewCtx removes a member from a view.
func (c *Client) RemoveFromViewCtx(ctx context.Context, view string, objType ObjectType, member string) error {
	var resp mcswire.RemoveFromViewResponse
	return c.call(ctx, "removeFromView", &mcswire.RemoveFromViewRequest{
		Caller: c.dn, View: view, ObjectType: string(objType), Member: member,
	}, &resp)
}

// ViewContents lists a view's members with context.Background.
func (c *Client) ViewContents(name string) ([]ViewMember, error) {
	return c.ViewContentsCtx(context.Background(), name)
}

// ViewContentsCtx lists a view's direct members.
func (c *Client) ViewContentsCtx(ctx context.Context, name string) ([]ViewMember, error) {
	var resp mcswire.ViewContentsResponse
	if err := c.call(ctx, "viewContents", &mcswire.ViewContentsRequest{Caller: c.dn, Name: name}, &resp); err != nil {
		return nil, err
	}
	members := make([]ViewMember, 0, len(resp.Members))
	for _, m := range resp.Members {
		members = append(members, ViewMember{Type: ObjectType(m.Type), ID: m.ID, Name: m.Name})
	}
	return members, nil
}

// ExpandView resolves a view with context.Background.
func (c *Client) ExpandView(name string) ([]string, error) {
	return c.ExpandViewCtx(context.Background(), name)
}

// ExpandViewCtx recursively resolves a view to logical file names.
func (c *Client) ExpandViewCtx(ctx context.Context, name string) ([]string, error) {
	var resp mcswire.ExpandViewResponse
	if err := c.call(ctx, "expandView", &mcswire.ExpandViewRequest{Caller: c.dn, Name: name}, &resp); err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// DeleteView removes a view with context.Background.
func (c *Client) DeleteView(name string) error {
	return c.DeleteViewCtx(context.Background(), name)
}

// DeleteViewCtx removes a view (not its members).
func (c *Client) DeleteViewCtx(ctx context.Context, name string) error {
	var resp mcswire.DeleteViewResponse
	return c.call(ctx, "deleteView", &mcswire.DeleteViewRequest{Caller: c.dn, Name: name}, &resp)
}

// DefineAttribute declares an attribute with context.Background.
func (c *Client) DefineAttribute(name string, typ AttrType, description string) (AttributeDef, error) {
	return c.DefineAttributeCtx(context.Background(), name, typ, description)
}

// DefineAttributeCtx declares a user-defined attribute.
func (c *Client) DefineAttributeCtx(ctx context.Context, name string, typ AttrType, description string) (AttributeDef, error) {
	var resp mcswire.DefineAttributeResponse
	err := c.call(ctx, "defineAttribute", &mcswire.DefineAttributeRequest{
		Caller: c.dn, Name: name, Type: string(typ), Description: description,
	}, &resp)
	if err != nil {
		return AttributeDef{}, err
	}
	return AttributeDef{ID: resp.ID, Name: resp.Name, Type: AttrType(resp.Type), Description: resp.Description}, nil
}

// ListAttributeDefs lists attribute declarations with context.Background.
func (c *Client) ListAttributeDefs() ([]AttributeDef, error) {
	return c.ListAttributeDefsCtx(context.Background())
}

// ListAttributeDefsCtx lists every declared user-defined attribute.
func (c *Client) ListAttributeDefsCtx(ctx context.Context) ([]AttributeDef, error) {
	var resp mcswire.ListAttributeDefsResponse
	if err := c.call(ctx, "listAttributeDefs", &mcswire.ListAttributeDefsRequest{Caller: c.dn}, &resp); err != nil {
		return nil, err
	}
	defs := make([]AttributeDef, 0, len(resp.Defs))
	for _, d := range resp.Defs {
		defs = append(defs, AttributeDef{ID: d.ID, Name: d.Name, Type: AttrType(d.Type), Description: d.Description})
	}
	return defs, nil
}

// SetAttribute binds an attribute value with context.Background.
func (c *Client) SetAttribute(objType ObjectType, object, attr string, v AttrValue) error {
	return c.SetAttributeCtx(context.Background(), objType, object, attr, v)
}

// SetAttributeCtx binds a user-defined attribute value on an object.
func (c *Client) SetAttributeCtx(ctx context.Context, objType ObjectType, object, attr string, v AttrValue) error {
	var resp mcswire.SetAttributeResponse
	return c.call(ctx, "setAttribute", &mcswire.SetAttributeRequest{
		Caller: c.dn, ObjectType: string(objType), Object: object,
		Attribute: mcswire.FromCore(Attribute{Name: attr, Value: v}),
	}, &resp)
}

// UnsetAttribute removes an attribute binding with context.Background.
func (c *Client) UnsetAttribute(objType ObjectType, object, attr string) error {
	return c.UnsetAttributeCtx(context.Background(), objType, object, attr)
}

// UnsetAttributeCtx removes a user-defined attribute from an object.
func (c *Client) UnsetAttributeCtx(ctx context.Context, objType ObjectType, object, attr string) error {
	var resp mcswire.UnsetAttributeResponse
	return c.call(ctx, "unsetAttribute", &mcswire.UnsetAttributeRequest{
		Caller: c.dn, ObjectType: string(objType), Object: object, Attribute: attr,
	}, &resp)
}

// GetAttributes lists an object's attributes with context.Background.
func (c *Client) GetAttributes(objType ObjectType, object string) ([]Attribute, error) {
	return c.GetAttributesCtx(context.Background(), objType, object)
}

// GetAttributesCtx lists an object's user-defined attributes.
func (c *Client) GetAttributesCtx(ctx context.Context, objType ObjectType, object string) ([]Attribute, error) {
	var resp mcswire.GetAttributesResponse
	err := c.call(ctx, "getAttributes", &mcswire.GetAttributesRequest{
		Caller: c.dn, ObjectType: string(objType), Object: object,
	}, &resp)
	if err != nil {
		return nil, err
	}
	attrs := make([]Attribute, 0, len(resp.Attributes))
	for _, wa := range resp.Attributes {
		a, err := wa.ToCore()
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, a)
	}
	return attrs, nil
}

// RunQuery executes a discovery query with context.Background.
func (c *Client) RunQuery(q Query) ([]string, error) {
	return c.RunQueryCtx(context.Background(), q)
}

// RunQueryCtx executes an attribute-based discovery query, returning
// matching logical names.
func (c *Client) RunQueryCtx(ctx context.Context, q Query) ([]string, error) {
	req := &mcswire.QueryRequest{Caller: c.dn, Target: string(q.Target), Limit: q.Limit}
	for _, p := range q.Predicates {
		req.Predicates = append(req.Predicates, mcswire.WirePredicate{
			Attribute: p.Attribute, Op: string(p.Op),
			Type: string(p.Value.Type), Value: p.Value.Render(),
		})
	}
	var resp mcswire.QueryResponse
	if err := c.call(ctx, "query", req, &resp); err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// RunQueryStream streams query matches with context.Background.
func (c *Client) RunQueryStream(q Query, row func(name string) error) error {
	return c.RunQueryStreamCtx(context.Background(), q, row)
}

// RunQueryStreamCtx executes a discovery query and hands each matching name
// to row as it arrives, without materializing the full result on either
// side. Over a streaming transport (TransportJSON) the rows ride one NDJSON
// response; otherwise the client pages through queryPage, which preserves
// the bounded-memory contract at one round trip per page. A non-nil error
// from row aborts the stream and is returned.
func (c *Client) RunQueryStreamCtx(ctx context.Context, q Query, row func(name string) error) error {
	if st, ok := c.transport.(StreamTransport); ok {
		req := &mcswire.QueryRequest{Caller: c.dn, Target: string(q.Target), Limit: q.Limit}
		for _, p := range q.Predicates {
			req.Predicates = append(req.Predicates, mcswire.WirePredicate{
				Attribute: p.Attribute, Op: string(p.Op),
				Type: string(p.Value.Type), Value: p.Value.Render(),
			})
		}
		return mapWireError(st.Stream(ctx, "query", nil, req,
			func() any { return new(mcswire.QueryRow) },
			func(r any) error { return row(r.(*mcswire.QueryRow).Name) }))
	}
	sent, token := 0, ""
	for {
		names, next, err := c.RunQueryPageCtx(ctx, q, 512, token)
		if err != nil {
			return err
		}
		for _, n := range names {
			if q.Limit > 0 && sent >= q.Limit {
				return nil
			}
			if err := row(n); err != nil {
				return err
			}
			sent++
		}
		if next == "" {
			return nil
		}
		token = next
	}
}

// RunQueryAttrs executes a query returning attributes with
// context.Background.
func (c *Client) RunQueryAttrs(q Query, returnAttrs []string) ([]QueryResult, error) {
	return c.RunQueryAttrsCtx(context.Background(), q, returnAttrs)
}

// RunQueryAttrsCtx executes a discovery query and also returns the values
// of the named user-defined attributes for every match.
func (c *Client) RunQueryAttrsCtx(ctx context.Context, q Query, returnAttrs []string) ([]QueryResult, error) {
	req := &mcswire.QueryAttrsRequest{
		Caller: c.dn, Target: string(q.Target), Limit: q.Limit, Return: returnAttrs,
	}
	for _, p := range q.Predicates {
		req.Predicates = append(req.Predicates, mcswire.WirePredicate{
			Attribute: p.Attribute, Op: string(p.Op),
			Type: string(p.Value.Type), Value: p.Value.Render(),
		})
	}
	var resp mcswire.QueryAttrsResponse
	if err := c.call(ctx, "queryAttrs", req, &resp); err != nil {
		return nil, err
	}
	results := make([]QueryResult, 0, len(resp.Results))
	for _, wr := range resp.Results {
		r := QueryResult{Name: wr.Name}
		for _, wa := range wr.Attributes {
			a, err := wa.ToCore()
			if err != nil {
				return nil, err
			}
			r.Attributes = append(r.Attributes, a)
		}
		results = append(results, r)
	}
	return results, nil
}

// Annotate attaches a note with context.Background.
func (c *Client) Annotate(objType ObjectType, object, text string) (int64, error) {
	return c.AnnotateCtx(context.Background(), objType, object, text)
}

// AnnotateCtx attaches a free-text note to an object.
func (c *Client) AnnotateCtx(ctx context.Context, objType ObjectType, object, text string) (int64, error) {
	var resp mcswire.AnnotateResponse
	err := c.call(ctx, "annotate", &mcswire.AnnotateRequest{
		Caller: c.dn, ObjectType: string(objType), Object: object, Text: text,
	}, &resp)
	return resp.ID, err
}

// Annotations lists an object's notes with context.Background.
func (c *Client) Annotations(objType ObjectType, object string) ([]Annotation, error) {
	return c.AnnotationsCtx(context.Background(), objType, object)
}

// AnnotationsCtx lists the notes on an object, oldest first.
func (c *Client) AnnotationsCtx(ctx context.Context, objType ObjectType, object string) ([]Annotation, error) {
	var resp mcswire.GetAnnotationsResponse
	err := c.call(ctx, "getAnnotations", &mcswire.GetAnnotationsRequest{
		Caller: c.dn, ObjectType: string(objType), Object: object,
	}, &resp)
	if err != nil {
		return nil, err
	}
	anns := make([]Annotation, 0, len(resp.Annotations))
	for _, a := range resp.Annotations {
		anns = append(anns, Annotation{ID: a.ID, Text: a.Text, Creator: a.Creator, CreatedAt: a.At})
	}
	return anns, nil
}

// AddProvenance appends a history record with context.Background.
func (c *Client) AddProvenance(name string, version int, description string) error {
	return c.AddProvenanceCtx(context.Background(), name, version, description)
}

// AddProvenanceCtx appends a transformation-history record to a file.
func (c *Client) AddProvenanceCtx(ctx context.Context, name string, version int, description string) error {
	var resp mcswire.AddProvenanceResponse
	return c.call(ctx, "addProvenance", &mcswire.AddProvenanceRequest{
		Caller: c.dn, Name: name, Version: version, Description: description,
	}, &resp)
}

// Provenance returns a file's history with context.Background.
func (c *Client) Provenance(name string, version int) ([]ProvenanceRecord, error) {
	return c.ProvenanceCtx(context.Background(), name, version)
}

// ProvenanceCtx returns a file's transformation history, oldest first.
func (c *Client) ProvenanceCtx(ctx context.Context, name string, version int) ([]ProvenanceRecord, error) {
	var resp mcswire.GetProvenanceResponse
	err := c.call(ctx, "getProvenance", &mcswire.GetProvenanceRequest{
		Caller: c.dn, Name: name, Version: version,
	}, &resp)
	if err != nil {
		return nil, err
	}
	recs := make([]ProvenanceRecord, 0, len(resp.Records))
	for _, r := range resp.Records {
		recs = append(recs, ProvenanceRecord{ID: r.ID, Description: r.Description, At: r.At})
	}
	return recs, nil
}

// AuditLog returns an object's audit trail with context.Background.
func (c *Client) AuditLog(objType ObjectType, object string) ([]AuditRecord, error) {
	return c.AuditLogCtx(context.Background(), objType, object)
}

// AuditLogCtx returns the audit trail of an object, oldest first. Records
// written through the web service carry the request correlation ID of the
// call that caused them.
func (c *Client) AuditLogCtx(ctx context.Context, objType ObjectType, object string) ([]AuditRecord, error) {
	var resp mcswire.AuditLogResponse
	err := c.call(ctx, "auditLog", &mcswire.AuditLogRequest{
		Caller: c.dn, ObjectType: string(objType), Object: object,
	}, &resp)
	if err != nil {
		return nil, err
	}
	recs := make([]AuditRecord, 0, len(resp.Records))
	for _, r := range resp.Records {
		recs = append(recs, AuditRecord{
			ID: r.ID, Action: r.Action, DN: r.DN, Detail: r.Detail,
			RequestID: r.RequestID, At: r.At,
		})
	}
	return recs, nil
}

// Grant gives a permission with context.Background.
func (c *Client) Grant(objType ObjectType, object, principal string, perm Permission) error {
	return c.GrantCtx(context.Background(), objType, object, principal, perm)
}

// GrantCtx gives principal a permission on an object ("" + ObjectService
// for service-level rights).
func (c *Client) GrantCtx(ctx context.Context, objType ObjectType, object, principal string, perm Permission) error {
	var resp mcswire.GrantResponse
	return c.call(ctx, "grant", &mcswire.GrantRequest{
		Caller: c.dn, ObjectType: string(objType), Object: object,
		Principal: principal, Permission: string(perm),
	}, &resp)
}

// Revoke removes a permission with context.Background.
func (c *Client) Revoke(objType ObjectType, object, principal string, perm Permission) error {
	return c.RevokeCtx(context.Background(), objType, object, principal, perm)
}

// RevokeCtx removes a granted permission.
func (c *Client) RevokeCtx(ctx context.Context, objType ObjectType, object, principal string, perm Permission) error {
	var resp mcswire.RevokeResponse
	return c.call(ctx, "revoke", &mcswire.RevokeRequest{
		Caller: c.dn, ObjectType: string(objType), Object: object,
		Principal: principal, Permission: string(perm),
	}, &resp)
}

// RegisterWriter stores a writer record with context.Background.
func (c *Client) RegisterWriter(w Writer) error {
	return c.RegisterWriterCtx(context.Background(), w)
}

// RegisterWriterCtx stores a metadata-writer contact record.
func (c *Client) RegisterWriterCtx(ctx context.Context, w Writer) error {
	var resp mcswire.RegisterWriterResponse
	return c.call(ctx, "registerWriter", &mcswire.RegisterWriterRequest{
		Caller: c.dn, DN: w.DN, Description: w.Description, Institution: w.Institution,
		Address: w.Address, Phone: w.Phone, Email: w.Email,
	}, &resp)
}

// GetWriter fetches a writer record with context.Background.
func (c *Client) GetWriter(dn string) (Writer, error) {
	return c.GetWriterCtx(context.Background(), dn)
}

// GetWriterCtx fetches a writer contact record by DN.
func (c *Client) GetWriterCtx(ctx context.Context, dn string) (Writer, error) {
	var resp mcswire.GetWriterResponse
	if err := c.call(ctx, "getWriter", &mcswire.GetWriterRequest{Caller: c.dn, DN: dn}, &resp); err != nil {
		return Writer{}, err
	}
	return Writer{DN: resp.DN, Description: resp.Description, Institution: resp.Institution,
		Address: resp.Address, Phone: resp.Phone, Email: resp.Email}, nil
}

// RegisterExternalCatalog records a catalog pointer with
// context.Background.
func (c *Client) RegisterExternalCatalog(ec ExternalCatalog) (int64, error) {
	return c.RegisterExternalCatalogCtx(context.Background(), ec)
}

// RegisterExternalCatalogCtx records a pointer to another metadata catalog.
func (c *Client) RegisterExternalCatalogCtx(ctx context.Context, ec ExternalCatalog) (int64, error) {
	var resp mcswire.RegisterExternalCatalogResponse
	err := c.call(ctx, "registerExternalCatalog", &mcswire.RegisterExternalCatalogRequest{
		Caller: c.dn, Name: ec.Name, Type: ec.Type, Host: ec.Host, IP: ec.IP, Description: ec.Description,
	}, &resp)
	return resp.ID, err
}

// ListExternalCatalogs lists external catalogs with context.Background.
func (c *Client) ListExternalCatalogs() ([]ExternalCatalog, error) {
	return c.ListExternalCatalogsCtx(context.Background())
}

// ListExternalCatalogsCtx lists the registered external catalogs.
func (c *Client) ListExternalCatalogsCtx(ctx context.Context) ([]ExternalCatalog, error) {
	var resp mcswire.ListExternalCatalogsResponse
	if err := c.call(ctx, "listExternalCatalogs", &mcswire.ListExternalCatalogsRequest{Caller: c.dn}, &resp); err != nil {
		return nil, err
	}
	list := make([]ExternalCatalog, 0, len(resp.Catalogs))
	for _, ec := range resp.Catalogs {
		list = append(list, ExternalCatalog{
			ID: ec.ID, Name: ec.Name, Type: ec.Type, Host: ec.Host, IP: ec.IP, Description: ec.Description,
		})
	}
	return list, nil
}

// Stats returns catalog row counts with context.Background.
func (c *Client) Stats() (Stats, error) { return c.StatsCtx(context.Background()) }

// StatsCtx returns catalog row counts.
func (c *Client) StatsCtx(ctx context.Context) (Stats, error) {
	var resp mcswire.StatsResponse
	if err := c.call(ctx, "stats", &mcswire.StatsRequest{Caller: c.dn}, &resp); err != nil {
		return Stats{}, err
	}
	return Stats{
		Files: resp.Files, Collections: resp.Collections, Views: resp.Views,
		Attributes: resp.Attributes, AttrDefs: resp.AttrDefs,
	}, nil
}

// DiscoverySummary is the soft-state discovery summary a catalog publishes
// for federation and shard routing: its defined attribute names, a bloom
// filter over (attribute, value) bindings, and the binding count.
type DiscoverySummary struct {
	// Attrs lists the attribute names the catalog defines, sorted.
	Attrs []string
	// Pairs is the base64-encoded JSON bloom filter over attribute
	// bindings (decode with internal/rls.Bloom via encoding/json).
	Pairs string
	// Objects counts the summarized bindings.
	Objects int
}

// FetchDiscoverySummary fetches the catalog's discovery summary with
// context.Background. FP is the requested bloom false-positive rate
// (0 selects the server default of 0.01).
func (c *Client) FetchDiscoverySummary(fp float64) (DiscoverySummary, error) {
	return c.FetchDiscoverySummaryCtx(context.Background(), fp)
}

// FetchDiscoverySummaryCtx fetches the catalog's discovery summary.
func (c *Client) FetchDiscoverySummaryCtx(ctx context.Context, fp float64) (DiscoverySummary, error) {
	var resp mcswire.DiscoverySummaryResponse
	if err := c.call(ctx, "discoverySummary", &mcswire.DiscoverySummaryRequest{Caller: c.dn, FP: fp}, &resp); err != nil {
		return DiscoverySummary{}, err
	}
	return DiscoverySummary{Attrs: resp.Attrs, Pairs: resp.Pairs, Objects: resp.Objects}, nil
}
