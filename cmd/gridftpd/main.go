// Command gridftpd runs a GridFTP-style transfer server over an in-memory
// store, optionally seeded with synthetic files — the storage-system end of
// the paper's Figure 2 discovery-and-access scenario.
//
// Usage:
//
//	gridftpd -addr :2811
//	gridftpd -addr :2811 -seed 100 -seed-size 65536
//
// Talk to it with internal/gridftp.Client or any line-oriented TCP tool:
//
//	printf 'LIST\n' | nc localhost 2811
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"

	"mcs/internal/gridftp"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:2811", "listen address")
	root := flag.String("root", "", "serve files from this directory (default: in-memory store)")
	seed := flag.Int("seed", 0, "number of synthetic files to preload")
	seedSize := flag.Int("seed-size", 65536, "size of each synthetic file in bytes")
	flag.Parse()

	var store gridftp.Store
	if *root != "" {
		store = gridftp.NewDirStore(*root)
		log.Printf("gridftpd: serving directory %s", *root)
	} else {
		store = gridftp.NewMemStore()
	}
	if *seed > 0 {
		rng := rand.New(rand.NewSource(1))
		buf := make([]byte, *seedSize)
		for i := 0; i < *seed; i++ {
			rng.Read(buf)
			store.Put(fmt.Sprintf("seed-%06d.dat", i), buf)
		}
		log.Printf("gridftpd: seeded %d files of %d bytes", *seed, *seedSize)
	}
	srv := gridftp.NewServer(store)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("gridftpd: %v", err)
	}
	fmt.Fprintf(os.Stderr, "gridftpd: serving on %s\n", bound)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	srv.Close()
}
