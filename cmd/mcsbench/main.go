// Command mcsbench regenerates the evaluation figures of the MCS paper
// (SC'03, Figures 5–11): add, simple-query and complex-query rates against
// the catalog directly and through the SOAP web service, swept over client
// threads, client hosts, database sizes and attribute counts. Figure 12
// extends the evaluation with a batchWrite batch-size sweep: bulk
// registration throughput at 1, 10, 100 and 1000 files per call. Figure 13
// compares add rate and latency on a healthy server against a degraded one
// (injected dispatch errors and dropped replies) reached by a client with
// retries and idempotency keys — the cost of riding out failures.
//
// Usage:
//
//	mcsbench -fig 6                        # one figure, default settings
//	mcsbench -fig all -sizes 10000,50000   # every figure at chosen sizes
//	mcsbench -fig 11 -duration 5s          # longer measurement windows
//	mcsbench -fig 6 -latency               # p50/p95/p99 per data point
//	mcsbench -fig 12 -batch-sizes 1,100    # batch sweep at chosen sizes
//
// Figure 14 is the MVCC read-path sweep: query and add rates with one
// writer thread plus a growing pool of reader threads on one catalog —
// the workload the lock-free snapshot read path is built for. With
// -json FILE the fig 14 points are also written as machine-readable JSON
// (BENCH_readpath.json in CI).
//
// Figure 15 is the durability sweep: add rate directly against the engine
// with the write-ahead log disabled (snapshot-only, the pre-WAL baseline),
// enabled with group-commit fsync, and enabled without fsync. With
// -wal-json FILE the points land as JSON (BENCH_wal.json in CI), including
// the group-commit slowdown factor versus snapshot-only.
//
// Figure 16 is the wire comparison: add and simple-query rate through the
// same server over the SOAP envelope versus the compact JSON wire under
// /api/v1/ — the encoding tax, isolated, because both endpoints share one
// dispatch table. With -transport-json FILE the points land as JSON
// (BENCH_transport.json in CI), including the JSON-over-SOAP speedup on
// the add path.
//
// Figure 17 is the write-amplification sweep: pure add rate (no
// compensating delete — the bulk-ingest regime) directly against the engine,
// one CreateFile call per file versus 100 creates per batchWrite
// transaction, with heap bytes allocated per add alongside the rates. With
// -addpath-json FILE the points land as JSON (BENCH_addpath.json in CI),
// including the batch-over-single speedup.
//
// Figure 18 is the horizontal-sharding sweep: aggregate add, simple-query
// and scatter-query rate through the mcsrouter scatter-gather front end
// over a shard-count axis (1, 2 and 4 mcsd shards by default). Adds and
// simple queries carry shard-prefixed names and forward to exactly one
// shard; scatter queries fan out to every shard and merge. With -shard-json
// FILE the points land as JSON (BENCH_shard.json in CI), including the
// add-rate scale-out factor at the largest shard count. On a single-core
// host the sweep measures routing overhead, not scale-out — the shards and
// the router share the CPU — so the JSON records gomaxprocs alongside the
// ratios.
//
// Figure 11, the attribute-count sweep, runs single-threaded with a warmup
// and a forced GC before each measurement window so the 1-vs-8-attribute
// ratio is trustworthy on small hosts (see bench.AttrPathSweep). With
// -attr-json FILE the points — including the per-count EXPLAIN plan and the
// cliff ratio — land as JSON (BENCH_attrpath.json in CI).
//
// The paper's full-scale databases (100k/1M/5M files) are reachable with
// -sizes 100000,1000000,5000000 given enough memory and patience; the
// defaults are scaled so a laptop run finishes in minutes while preserving
// every qualitative shape (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mcs"
	"mcs/internal/bench"
	"mcs/internal/core"
	"mcs/internal/shard"
)

// readPathReport is the machine-readable form of the Fig. 14 sweep.
type readPathReport struct {
	Bench       string             `json:"bench"`
	GoMaxProcs  int                `json:"gomaxprocs"`
	NumCPU      int                `json:"num_cpu"`
	DBFiles     int                `json:"db_files"`
	DurationSec float64            `json:"duration_sec"`
	Points      []bench.MixedPoint `json:"points"`
	// QuerySpeedup is the aggregate query rate at the largest thread count
	// divided by the rate at the smallest — the multi-client scaling figure
	// of merit (meaningful only when GOMAXPROCS spans the thread counts).
	QuerySpeedup float64 `json:"query_speedup"`
}

// writeReadPathJSON emits the Fig. 14 points to path.
func writeReadPathJSON(path string, size int, d time.Duration, points []bench.MixedPoint) error {
	rep := readPathReport{
		Bench:       "readpath",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		DBFiles:     size,
		DurationSec: d.Seconds(),
		Points:      points,
	}
	if len(points) > 1 && points[0].QueryOps > 0 {
		rep.QuerySpeedup = points[len(points)-1].QueryOps / points[0].QueryOps
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// walReport is the machine-readable form of the Fig. 15 sweep.
type walReport struct {
	Bench       string           `json:"bench"`
	GoMaxProcs  int              `json:"gomaxprocs"`
	NumCPU      int              `json:"num_cpu"`
	DBFiles     int              `json:"db_files"`
	DurationSec float64          `json:"duration_sec"`
	Points      []bench.WALPoint `json:"points"`
	// GroupCommitSlowdown is the snapshot-only add rate divided by the
	// group-commit rate at the largest common thread count — the durability
	// tax. Group commit amortizes fsyncs across concurrent committers, so
	// the factor shrinks as threads grow.
	GroupCommitSlowdown float64 `json:"group_commit_slowdown"`
}

// writeWALJSON emits the Fig. 15 points to path.
func writeWALJSON(path string, size int, d time.Duration, points []bench.WALPoint) error {
	rep := walReport{
		Bench:       "wal",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		DBFiles:     size,
		DurationSec: d.Seconds(),
		Points:      points,
	}
	rate := func(mode string) float64 {
		best := -1
		var out float64
		for _, p := range points {
			if p.Mode == mode && p.Threads > best {
				best, out = p.Threads, p.AddsPerSec
			}
		}
		return out
	}
	if wal := rate("wal group commit"); wal > 0 {
		rep.GroupCommitSlowdown = rate("snapshot-only") / wal
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// transportReport is the machine-readable form of the Fig. 16 sweep.
type transportReport struct {
	Bench       string                 `json:"bench"`
	GoMaxProcs  int                    `json:"gomaxprocs"`
	NumCPU      int                    `json:"num_cpu"`
	DBFiles     int                    `json:"db_files"`
	DurationSec float64                `json:"duration_sec"`
	Points      []bench.TransportPoint `json:"points"`
	// AddSpeedup and QuerySpeedup are the JSON-wire rate divided by the
	// SOAP-wire rate for the same operation at the largest common thread
	// count — how much of the web-service overhead was envelope encoding.
	AddSpeedup   float64 `json:"add_speedup"`
	QuerySpeedup float64 `json:"query_speedup"`
}

// writeTransportJSON emits the Fig. 16 points to path.
func writeTransportJSON(path string, size int, d time.Duration, points []bench.TransportPoint) error {
	rep := transportReport{
		Bench:       "transport",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		DBFiles:     size,
		DurationSec: d.Seconds(),
		Points:      points,
	}
	rate := func(transport, op string) float64 {
		best := -1
		var out float64
		for _, p := range points {
			if p.Transport == transport && p.Op == op && p.Threads > best {
				best, out = p.Threads, p.OpsPerSec
			}
		}
		return out
	}
	if soap := rate("soap", "add"); soap > 0 {
		rep.AddSpeedup = rate("json", "add") / soap
	}
	if soap := rate("soap", "query"); soap > 0 {
		rep.QuerySpeedup = rate("json", "query") / soap
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// shardReport is the machine-readable form of the Fig. 18 sweep.
type shardReport struct {
	Bench       string             `json:"bench"`
	GoMaxProcs  int                `json:"gomaxprocs"`
	NumCPU      int                `json:"num_cpu"`
	DBFiles     int                `json:"db_files"`
	DurationSec float64            `json:"duration_sec"`
	Points      []bench.ShardPoint `json:"points"`
	// AddScale and QueryScale are the aggregate add and simple-query rates
	// at the largest shard count divided by the single-shard rates — the
	// scale-out figures of merit. Meaningful only when gomaxprocs exceeds
	// the shard count: on fewer cores the shards, the router and the load
	// generator time-slice one CPU and the ratio measures the router's
	// extra hop instead.
	AddScale   float64 `json:"add_scale"`
	QueryScale float64 `json:"query_scale"`
	// ScatterScale is the same ratio for the fan-out query: expected below
	// one on any host, since every scatter pays one subquery per shard.
	ScatterScale float64 `json:"scatter_scale"`
	MaxShards    int     `json:"max_shards"`
}

// writeShardJSON emits the Fig. 18 points to path.
func writeShardJSON(path string, size int, d time.Duration, points []bench.ShardPoint) error {
	rep := shardReport{
		Bench:       "shard",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		DBFiles:     size,
		DurationSec: d.Seconds(),
		Points:      points,
	}
	for _, p := range points {
		if p.Shards > rep.MaxShards {
			rep.MaxShards = p.Shards
		}
	}
	rate := func(op string, shards int) float64 {
		for _, p := range points {
			if p.Op == op && p.Shards == shards {
				return p.OpsPerSec
			}
		}
		return 0
	}
	for op, dst := range map[string]*float64{
		"add": &rep.AddScale, "query": &rep.QueryScale, "scatter": &rep.ScatterScale,
	} {
		if base := rate(op, 1); base > 0 {
			*dst = rate(op, rep.MaxShards) / base
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// attrPathReport is the machine-readable form of the Fig. 11 sweep.
type attrPathReport struct {
	Bench       string                `json:"bench"`
	GoMaxProcs  int                   `json:"gomaxprocs"`
	NumCPU      int                   `json:"num_cpu"`
	DBFiles     int                   `json:"db_files"`
	DurationSec float64               `json:"duration_sec"`
	Points      []bench.AttrPathPoint `json:"points"`
	// CliffRatio is the 1-attribute query rate divided by the 8-attribute
	// rate (10-attribute when the sweep has no 8): the Fig. 11 figure of
	// merit. The paper's nested-join cliff puts this near 10; the sorted-
	// rowid-intersection planner is held to 2 or below.
	CliffRatio float64 `json:"cliff_ratio"`
}

// writeAttrPathJSON emits the Fig. 11 points to path.
func writeAttrPathJSON(path string, size int, d time.Duration, points []bench.AttrPathPoint) error {
	rep := attrPathReport{
		Bench:       "attrpath",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		DBFiles:     size,
		DurationSec: d.Seconds(),
		Points:      points,
	}
	rate := func(attrs int) float64 {
		for _, p := range points {
			if p.Attrs == attrs {
				return p.QueriesPerSec
			}
		}
		return 0
	}
	wide := rate(8)
	if wide == 0 {
		wide = rate(10)
	}
	if wide > 0 {
		rep.CliffRatio = rate(1) / wide
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// addPathReport is the machine-readable form of the Fig. 17 sweep.
type addPathReport struct {
	Bench       string               `json:"bench"`
	GoMaxProcs  int                  `json:"gomaxprocs"`
	NumCPU      int                  `json:"num_cpu"`
	DBFiles     int                  `json:"db_files"`
	DurationSec float64              `json:"duration_sec"`
	Points      []bench.AddPathPoint `json:"points"`
	// SingleAddsPerSec and BatchAddsPerSec are the peak rates across the
	// thread sweep per mode (on a single-core host extra threads only add
	// queueing, so the peak — not the largest thread count — is the
	// machine's capability); BatchSpeedup is their ratio — what
	// per-transaction index batching and one-lock-per-batch commit buy.
	SingleAddsPerSec float64 `json:"single_adds_per_sec"`
	BatchAddsPerSec  float64 `json:"batch_adds_per_sec"`
	BatchSpeedup     float64 `json:"batch_speedup"`
	// SingleBytesPerAdd is the allocation footprint at that same point — the
	// write-amplification figure of merit tracked across PRs.
	SingleBytesPerAdd float64 `json:"single_bytes_per_add"`
}

// writeAddPathJSON emits the Fig. 17 points to path.
func writeAddPathJSON(path string, size int, d time.Duration, points []bench.AddPathPoint) error {
	rep := addPathReport{
		Bench:       "addpath",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		DBFiles:     size,
		DurationSec: d.Seconds(),
		Points:      points,
	}
	best := func(mode string) bench.AddPathPoint {
		var out bench.AddPathPoint
		for _, p := range points {
			if p.Mode == mode && p.AddsPerSec > out.AddsPerSec {
				out = p
			}
		}
		return out
	}
	single, batch := best("single"), best("batch100")
	rep.SingleAddsPerSec = single.AddsPerSec
	rep.BatchAddsPerSec = batch.AddsPerSec
	rep.SingleBytesPerAdd = single.BytesPerAdd
	if single.AddsPerSec > 0 {
		rep.BatchSpeedup = batch.AddsPerSec / single.AddsPerSec
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) { return parseSizes(s) }

func env() bench.Env {
	return bench.Env{
		StartServer: func(cat *core.Catalog) (string, func(), error) {
			srv, err := mcs.NewServer(mcs.ServerOptions{Catalog: cat})
			if err != nil {
				return "", nil, err
			}
			ts := httptest.NewUnstartedServer(srv)
			ts.Start()
			return ts.URL, ts.Close, nil
		},
		NewClient: func(url string) bench.SOAPClient {
			// Complex queries over the largest database can exceed the
			// default timeout when many simulated hosts share few cores.
			return mcs.NewClient(url, bench.LoaderDN, mcs.WithTimeout(10*time.Minute))
		},
		StartDegradedServer: func(cat *core.Catalog) (string, func(), error) {
			// Periodic (not probabilistic) rules keep the bench workers
			// deterministic: the retry that follows an injected failure lands
			// on the next call number and succeeds, so every logical add
			// completes and the measured cost is pure retry overhead.
			inj := mcs.NewFaultInjector(1,
				mcs.FaultRule{Site: mcs.FaultSiteDispatch, Kind: mcs.FaultKindError, Every: 7},
				mcs.FaultRule{Site: mcs.FaultSiteTransport, Kind: mcs.FaultKindDrop, Every: 13},
			)
			srv, err := mcs.NewServer(mcs.ServerOptions{Catalog: cat, FaultInjector: inj})
			if err != nil {
				return "", nil, err
			}
			ts := httptest.NewUnstartedServer(srv)
			ts.Start()
			return ts.URL, ts.Close, nil
		},
		NewRetryClient: func(url string) bench.SOAPClient {
			return mcs.NewClient(url, bench.LoaderDN,
				mcs.WithTimeout(10*time.Minute),
				mcs.WithRetry(5),
				mcs.WithBackoff(time.Millisecond, 20*time.Millisecond))
		},
		NewJSONClient: func(url string) bench.SOAPClient {
			return mcs.NewClient(url, bench.LoaderDN,
				mcs.WithTimeout(10*time.Minute),
				mcs.WithTransport(mcs.TransportJSON))
		},
		StartShardedRouter: func(cats []*core.Catalog) (string, func(), error) {
			var stops []func()
			stop := func() {
				for i := len(stops) - 1; i >= 0; i-- {
					stops[i]()
				}
			}
			var parts []string
			for i, cat := range cats {
				srv, err := mcs.NewServer(mcs.ServerOptions{Catalog: cat})
				if err != nil {
					stop()
					return "", nil, err
				}
				ts := httptest.NewServer(srv)
				stops = append(stops, ts.Close)
				parts = append(parts, bench.ShardPrefix(i)+"="+ts.URL)
				if i == 0 {
					parts = append(parts, "*="+ts.URL)
				}
			}
			m, err := shard.ParseInline(strings.Join(parts, ","))
			if err != nil {
				stop()
				return "", nil, err
			}
			router, err := shard.NewRouter(shard.Options{Map: m})
			if err != nil {
				stop()
				return "", nil, err
			}
			stops = append(stops, router.Stop)
			ts := httptest.NewServer(router)
			stops = append(stops, ts.Close)
			return ts.URL, stop, nil
		},
	}
}

func main() {
	log.SetFlags(0)
	fig := flag.String("fig", "all", `figure to regenerate: 5..17 or "all"`)
	sizes := flag.String("sizes", "10000,50000,100000", "database sizes (files), comma-separated")
	threads := flag.String("threads", "1,2,4,8,12,16", "thread sweep for figures 5-7")
	hosts := flag.String("hosts", "1,2,4,6,8,10", "host sweep for figures 8-10")
	threadsPerHost := flag.Int("threads-per-host", 4, "threads per host for figures 8-10")
	duration := flag.Duration("duration", 2*time.Second, "measurement window per data point")
	attrSweep := flag.String("attr-sweep", "1,2,4,6,8,10", "attribute counts for figure 11")
	batchSizes := flag.String("batch-sizes", "1,10,100,1000", "batch-size sweep for figure 12")
	latency := flag.Bool("latency", false, "also report per-operation latency (p50/p95/p99) per data point")
	jsonOut := flag.String("json", "", "write figure 14 points as JSON to this path (e.g. BENCH_readpath.json)")
	walJSONOut := flag.String("wal-json", "", "write figure 15 points as JSON to this path (e.g. BENCH_wal.json)")
	transportJSONOut := flag.String("transport-json", "", "write figure 16 points as JSON to this path (e.g. BENCH_transport.json)")
	addPathJSONOut := flag.String("addpath-json", "", "write figure 17 points as JSON to this path (e.g. BENCH_addpath.json)")
	attrJSONOut := flag.String("attr-json", "", "write figure 11 points as JSON to this path (e.g. BENCH_attrpath.json)")
	shardJSONOut := flag.String("shard-json", "", "write figure 18 points as JSON to this path (e.g. BENCH_shard.json)")
	shardCounts := flag.String("shard-counts", "1,2,4", "shard-count sweep for figure 18")
	shardThreads := flag.Int("shard-threads", 8, "client threads per figure 18 data point")
	flag.Parse()
	_ = http.DefaultClient // keep net/http linked for httptest servers

	szs, err := parseSizes(*sizes)
	if err != nil {
		log.Fatalf("mcsbench: %v", err)
	}
	thr, err := parseInts(*threads)
	if err != nil {
		log.Fatalf("mcsbench: %v", err)
	}
	hst, err := parseInts(*hosts)
	if err != nil {
		log.Fatalf("mcsbench: %v", err)
	}
	swp, err := parseInts(*attrSweep)
	if err != nil {
		log.Fatalf("mcsbench: %v", err)
	}
	bsz, err := parseInts(*batchSizes)
	if err != nil {
		log.Fatalf("mcsbench: %v", err)
	}
	shc, err := parseInts(*shardCounts)
	if err != nil {
		log.Fatalf("mcsbench: %v", err)
	}
	opt := bench.FigureOptions{
		Sizes: szs, Threads: thr, Hosts: hst,
		ThreadsPerHost: *threadsPerHost, Duration: *duration,
		AttrSweep: swp, BatchSizes: bsz, Latency: *latency, Env: env(),
	}

	var figs []int
	if *fig == "all" {
		figs = []int{5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18}
	} else {
		n, err := strconv.Atoi(*fig)
		if err != nil {
			log.Fatalf("mcsbench: bad -fig %q", *fig)
		}
		figs = []int{n}
	}

	// Figures 12, 15, 17 and 18 build their own fresh catalogs; preloaded
	// databases are only needed for the rest.
	needLoad := false
	for _, f := range figs {
		if f != 12 && f != 15 && f != 17 && f != 18 {
			needLoad = true
		}
	}
	if needLoad {
		fmt.Fprintf(os.Stderr, "mcsbench: loading databases %v...\n", szs)
		loadStart := time.Now()
		cats, err := bench.LoadAll(szs)
		if err != nil {
			log.Fatalf("mcsbench: load: %v", err)
		}
		opt.Catalogs = cats
		fmt.Fprintf(os.Stderr, "mcsbench: databases loaded in %s\n", time.Since(loadStart).Round(time.Second))
	}

	for _, f := range figs {
		fmt.Fprintf(os.Stderr, "mcsbench: running figure %d (sizes %v, window %s)...\n", f, szs, *duration)
		start := time.Now()
		if f == 14 {
			// Run the sweep once and feed both the rendered table and the
			// optional JSON report from the same points.
			size := szs[0]
			for _, s := range szs[1:] {
				if s < size {
					size = s
				}
			}
			points := bench.ReadPathSweep(opt.Catalogs[size], thr, *duration, bench.DefaultConfig(size))
			fmt.Println(bench.Render(14, bench.MixedPointSeries(size, points)))
			if *jsonOut != "" {
				if err := writeReadPathJSON(*jsonOut, size, *duration, points); err != nil {
					log.Fatalf("mcsbench: write %s: %v", *jsonOut, err)
				}
				fmt.Fprintf(os.Stderr, "mcsbench: wrote %s\n", *jsonOut)
			}
		} else if f == 11 {
			// One single-threaded, GC-settled sweep per size feeds both the
			// rendered table and the optional JSON report (largest size —
			// where the attribute cliff would be steepest if it came back).
			large := szs[0]
			for _, s := range szs[1:] {
				if s > large {
					large = s
				}
			}
			var series []bench.Series
			var largePoints []bench.AttrPathPoint
			for _, size := range szs {
				points, err := bench.AttrPathSweep(opt.Catalogs[size], swp, *duration, bench.DefaultConfig(size))
				if err != nil {
					log.Fatalf("mcsbench: figure 11: %v", err)
				}
				series = append(series, bench.AttrPathPointSeries(size, points)...)
				if size == large {
					largePoints = points
				}
			}
			fmt.Println(bench.Render(11, series))
			if *attrJSONOut != "" {
				if err := writeAttrPathJSON(*attrJSONOut, large, *duration, largePoints); err != nil {
					log.Fatalf("mcsbench: write %s: %v", *attrJSONOut, err)
				}
				fmt.Fprintf(os.Stderr, "mcsbench: wrote %s\n", *attrJSONOut)
			}
		} else if f == 16 {
			// Like figs 14/15: one sweep feeds both the table and the JSON.
			size := szs[0]
			for _, s := range szs[1:] {
				if s < size {
					size = s
				}
			}
			points, err := bench.TransportSweep(opt)
			if err != nil {
				log.Fatalf("mcsbench: figure 16: %v", err)
			}
			fmt.Println(bench.Render(16, bench.TransportPointSeries(size, points)))
			if *transportJSONOut != "" {
				if err := writeTransportJSON(*transportJSONOut, size, *duration, points); err != nil {
					log.Fatalf("mcsbench: write %s: %v", *transportJSONOut, err)
				}
				fmt.Fprintf(os.Stderr, "mcsbench: wrote %s\n", *transportJSONOut)
			}
		} else if f == 17 {
			// Like figs 14/15: one sweep feeds both the table and the JSON.
			size := szs[0]
			for _, s := range szs[1:] {
				if s < size {
					size = s
				}
			}
			points, err := bench.AddPathSweep(size, thr, *duration)
			if err != nil {
				log.Fatalf("mcsbench: figure 17: %v", err)
			}
			fmt.Println(bench.Render(17, bench.AddPathPointSeries(size, points)))
			if *addPathJSONOut != "" {
				if err := writeAddPathJSON(*addPathJSONOut, size, *duration, points); err != nil {
					log.Fatalf("mcsbench: write %s: %v", *addPathJSONOut, err)
				}
				fmt.Fprintf(os.Stderr, "mcsbench: wrote %s\n", *addPathJSONOut)
			}
		} else if f == 18 {
			// Like figs 14/15: one sweep feeds both the table and the JSON.
			size := szs[0]
			for _, s := range szs[1:] {
				if s < size {
					size = s
				}
			}
			points, err := bench.ShardSweep(opt, shc, *shardThreads)
			if err != nil {
				log.Fatalf("mcsbench: figure 18: %v", err)
			}
			fmt.Println(bench.Render(18, bench.ShardPointSeries(size, points)))
			if *shardJSONOut != "" {
				if err := writeShardJSON(*shardJSONOut, size, *duration, points); err != nil {
					log.Fatalf("mcsbench: write %s: %v", *shardJSONOut, err)
				}
				fmt.Fprintf(os.Stderr, "mcsbench: wrote %s\n", *shardJSONOut)
			}
		} else if f == 15 {
			// Like fig 14: one sweep feeds both the table and the JSON.
			size := szs[0]
			for _, s := range szs[1:] {
				if s < size {
					size = s
				}
			}
			points, err := bench.WALSweep(size, thr, *duration)
			if err != nil {
				log.Fatalf("mcsbench: figure 15: %v", err)
			}
			fmt.Println(bench.Render(15, bench.WALPointSeries(size, points)))
			if *walJSONOut != "" {
				if err := writeWALJSON(*walJSONOut, size, *duration, points); err != nil {
					log.Fatalf("mcsbench: write %s: %v", *walJSONOut, err)
				}
				fmt.Fprintf(os.Stderr, "mcsbench: wrote %s\n", *walJSONOut)
			}
		} else {
			series, err := bench.Figure(f, opt)
			if err != nil {
				log.Fatalf("mcsbench: figure %d: %v", f, err)
			}
			fmt.Println(bench.Render(f, series))
		}
		fmt.Fprintf(os.Stderr, "mcsbench: figure %d done in %s\n\n", f, time.Since(start).Round(time.Second))
	}
}
