// Command rlsd runs a Replica Location Service node over HTTP. A node can
// host a Local Replica Catalog (authoritative lfn→pfn mappings), a Replica
// Location Index (soft-state summaries of other LRCs), or both, and can
// push its own periodic soft-state updates to upstream RLIs — the Giggle
// framework deployment the MCS paper federates with.
//
// Usage:
//
//	rlsd -addr :9000 -name lrc://site-a
//	rlsd -addr :9001 -rli-only
//	rlsd -addr :9000 -name lrc://site-a -push http://index:9001 -bloom 0.01
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"mcs/internal/rls"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9000", "listen address")
	name := flag.String("name", "", "LRC name (default lrc://<addr>)")
	rliOnly := flag.Bool("rli-only", false, "serve only an index (no local catalog)")
	lrcOnly := flag.Bool("lrc-only", false, "serve only a local catalog (no index)")
	push := flag.String("push", "", "comma-separated RLI endpoints to push soft-state updates to")
	ttl := flag.Duration("ttl", time.Minute, "TTL carried by soft-state updates")
	interval := flag.Duration("interval", 0, "push interval (default ttl/3)")
	bloomFP := flag.Float64("bloom", 0, "bloom-compress updates at this false-positive rate (0 = full lists)")
	flag.Parse()

	var lrc *rls.LRC
	var rli *rls.RLI
	if !*rliOnly {
		n := *name
		if n == "" {
			n = "lrc://" + *addr
		}
		lrc = rls.NewLRC(n)
	}
	if !*lrcOnly {
		rli = rls.NewRLI()
	}
	if lrc == nil && rli == nil {
		log.Fatal("rlsd: -rli-only and -lrc-only are mutually exclusive")
	}

	if *push != "" {
		if lrc == nil {
			log.Fatal("rlsd: -push requires a local catalog")
		}
		endpoints := strings.Split(*push, ",")
		clients := make([]*rls.Client, 0, len(endpoints))
		for _, ep := range endpoints {
			clients = append(clients, rls.NewClient(strings.TrimSpace(ep)))
		}
		updater := &rls.Updater{
			LRC: lrc, TTL: *ttl, Interval: *interval, BloomFP: *bloomFP,
			Push: func(name string, lfns []string, bloom *rls.Bloom, ttl time.Duration) error {
				var firstErr error
				for _, c := range clients {
					if err := c.SendUpdate(name, lfns, bloom, ttl); err != nil && firstErr == nil {
						firstErr = err
					}
				}
				return firstErr
			},
		}
		if err := updater.Start(); err != nil {
			log.Fatalf("rlsd: start updater: %v", err)
		}
		defer updater.Stop()
		log.Printf("rlsd: pushing soft state to %v every %s (ttl %s)", endpoints, updater.Interval, *ttl)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("rlsd: %v", err)
	}
	roles := []string{}
	if lrc != nil {
		roles = append(roles, "LRC "+lrc.Name)
	}
	if rli != nil {
		roles = append(roles, "RLI")
	}
	fmt.Fprintf(os.Stderr, "rlsd: %s on http://%s\n", strings.Join(roles, " + "), ln.Addr())
	log.Fatal(http.Serve(ln, rls.NewServer(lrc, rli)))
}
