// Command mcsrouter runs the stateless scatter-gather router in front of a
// horizontally sharded MCS deployment: collection subtrees are partitioned
// across mcsd instances by logical-name prefix, and the router mounts the
// same SOAP + JSON surface as a single mcsd, so clients need no
// reconfiguration beyond the endpoint URL.
//
// Usage:
//
//	mcsrouter -addr :8090 -shards "ligo=http://shard-a:8080,sdss=http://shard-b:8080"
//	mcsrouter -addr :8090 -shard-map /etc/mcs/shards.map
//
// The shard-map file holds one "<prefix> <endpoint>" pair per line ("*" is
// the catch-all prefix; # starts a comment). Single-collection operations
// forward to exactly one shard; cross-shard queries scatter to the shards a
// bloom-filter summary cannot rule out and gather a merged result. The
// router also exposes /metrics, /healthz and /statz.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mcs/internal/shard"
)

// config carries mcsrouter's parsed flags.
type config struct {
	addr            string
	shardMapFile    string
	shardsInline    string
	summaryInterval time.Duration
	fp              float64
	callTimeout     time.Duration
	metrics         bool
	drainTimeout    time.Duration
}

// run starts the router and serves until stop delivers a signal or the
// listener fails. When ready is non-nil, the bound address is sent on it
// once the router is accepting connections.
func run(cfg config, stop <-chan os.Signal, ready chan<- net.Addr) error {
	var (
		m   *shard.Map
		err error
	)
	switch {
	case cfg.shardMapFile != "" && cfg.shardsInline != "":
		return fmt.Errorf("-shard-map and -shards are mutually exclusive")
	case cfg.shardMapFile != "":
		m, err = shard.ParseMapFile(cfg.shardMapFile)
	case cfg.shardsInline != "":
		m, err = shard.ParseInline(cfg.shardsInline)
	default:
		return fmt.Errorf("one of -shard-map or -shards is required")
	}
	if err != nil {
		return err
	}
	router, err := shard.NewRouter(shard.Options{
		Map:             m,
		FP:              cfg.fp,
		SummaryInterval: cfg.summaryInterval,
		CallTimeout:     cfg.callTimeout,
		DisableMetrics:  !cfg.metrics,
	})
	if err != nil {
		return err
	}
	router.Start()
	defer router.Stop()

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	extra := ""
	if cfg.metrics {
		extra = ", metrics at /metrics"
	}
	fmt.Fprintf(os.Stderr, "mcsrouter: routing %d shard(s) on http://%s (SOAP + JSON API at /api/v1/%s)\n",
		len(m.Endpoints()), ln.Addr(), extra)
	if ready != nil {
		ready <- ln.Addr()
	}
	httpSrv := &http.Server{Handler: router}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case sig := <-stop:
		log.Printf("mcsrouter: %v: draining requests", sig)
	}
	drain := cfg.drainTimeout
	if drain <= 0 {
		drain = 30 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("mcsrouter: drain: %v", err)
	}
	return nil
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8090", "listen address")
	flag.StringVar(&cfg.shardMapFile, "shard-map", "", "shard-map file: one \"<prefix> <endpoint>\" per line, \"*\" for the catch-all")
	flag.StringVar(&cfg.shardsInline, "shards", "", "inline shard map: \"prefix=endpoint,prefix=endpoint\" (\"*=endpoint\" for the catch-all)")
	flag.DurationVar(&cfg.summaryInterval, "summary-interval", 15*time.Second, "period of bloom-summary pulls from shards (0 disables screening)")
	flag.Float64Var(&cfg.fp, "fp", 0.01, "bloom false-positive rate requested from shard summaries")
	flag.DurationVar(&cfg.callTimeout, "call-timeout", 30*time.Second, "deadline for each forwarded shard call")
	flag.BoolVar(&cfg.metrics, "metrics", true, "expose the /metrics, /healthz and /statz operational endpoints")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "graceful-shutdown drain bound")
	flag.Parse()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(cfg, stop, nil); err != nil {
		log.Fatalf("mcsrouter: %v", err)
	}
}
