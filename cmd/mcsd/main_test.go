package main

import (
	"os"
	"path/filepath"
	"testing"

	"mcs"
)

func TestRestoreOrOpenFreshWhenMissing(t *testing.T) {
	cat, err := restoreOrOpen(filepath.Join(t.TempDir(), "none.mcs"), mcs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateFile("/CN=x", mcs.FileSpec{Name: "f"}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotCycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.mcs")
	cat, err := restoreOrOpen(path, mcs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateFile("/CN=x", mcs.FileSpec{Name: "persisted"}); err != nil {
		t.Fatal(err)
	}
	if err := snapshotTo(cat, path); err != nil {
		t.Fatal(err)
	}
	// No temp file left behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left: %v", err)
	}
	// A "restarted" daemon sees the data.
	restored, err := restoreOrOpen(path, mcs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.GetFile("/CN=x", "persisted", 0); err != nil {
		t.Fatalf("restored catalog missing file: %v", err)
	}
}

func TestRestoreOrOpenCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.mcs")
	if err := os.WriteFile(path, []byte("junk"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := restoreOrOpen(path, mcs.Options{}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}
