package main

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"syscall"
	"testing"
	"time"

	"mcs"
)

func TestRestoreOrOpenFreshWhenMissing(t *testing.T) {
	cat, restored, err := restoreOrOpen(filepath.Join(t.TempDir(), "none.mcs"), mcs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if restored {
		t.Fatal("missing snapshot reported as restored")
	}
	if _, err := cat.CreateFile("/CN=x", mcs.FileSpec{Name: "f"}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotCycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.mcs")
	cat, restored, err := restoreOrOpen(path, mcs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if restored {
		t.Fatal("fresh catalog reported as restored")
	}
	if _, err := cat.CreateFile("/CN=x", mcs.FileSpec{Name: "persisted"}); err != nil {
		t.Fatal(err)
	}
	if err := snapshotTo(cat, path); err != nil {
		t.Fatal(err)
	}
	// No temp file left behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left: %v", err)
	}
	// A "restarted" daemon sees the data.
	restoredCat, wasRestored, err := restoreOrOpen(path, mcs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !wasRestored {
		t.Fatal("existing snapshot not reported as restored")
	}
	if _, err := restoredCat.GetFile("/CN=x", "persisted", 0); err != nil {
		t.Fatalf("restored catalog missing file: %v", err)
	}
}

func TestRestoreOrOpenCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.mcs")
	if err := os.WriteFile(path, []byte("junk"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, _, err := restoreOrOpen(path, mcs.Options{}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

// fileSet lists the logical file names and versions in a catalog via the
// benchmark loader's query surface.
func fileSet(t *testing.T, cat *mcs.Catalog) []string {
	t.Helper()
	st, err := cat.Stats()
	if err != nil {
		t.Fatal(err)
	}
	return []string{fmt.Sprintf("files=%d attrs=%d collections=%d", st.Files, st.Attributes, st.Collections)}
}

// TestSnapshotRestartMutateResnapshot covers the full lifecycle:
// snapshot → restore → mutate → re-snapshot → restore, with row-count
// equality at each hop.
func TestSnapshotRestartMutateResnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "life.mcs")
	cat, _, err := restoreOrOpen(path, mcs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := cat.CreateFile("/CN=x", mcs.FileSpec{Name: fmt.Sprintf("gen1-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := snapshotTo(cat, path); err != nil {
		t.Fatal(err)
	}

	second, restored, err := restoreOrOpen(path, mcs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Fatal("snapshot not restored")
	}
	if got, want := fileSet(t, second), fileSet(t, cat); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored state %v != original %v", got, want)
	}
	// Mutate the restored catalog and snapshot again.
	if _, err := second.CreateFile("/CN=x", mcs.FileSpec{Name: "gen2"}); err != nil {
		t.Fatal(err)
	}
	if err := second.DeleteFile("/CN=x", "gen1-0", 0); err != nil {
		t.Fatal(err)
	}
	if err := snapshotTo(second, path); err != nil {
		t.Fatal(err)
	}

	third, _, err := restoreOrOpen(path, mcs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fileSet(t, third), fileSet(t, second); !reflect.DeepEqual(got, want) {
		t.Fatalf("re-restored state %v != mutated %v", got, want)
	}
	names, err := third.RunQuery("/CN=x", mcs.Query{})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	want := []string{"gen1-1", "gen1-2", "gen1-3", "gen1-4", "gen2"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("names after lifecycle = %v, want %v", names, want)
	}
}

// TestPreloadSkippedAfterRestore reproduces the restart crash: a daemon
// started with -preload and -snapshot must not re-run the preload when its
// state came from the snapshot (the duplicate creates used to Fatalf the
// server).
func TestPreloadSkippedAfterRestore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pre.mcs")
	cfg := config{
		addr: "127.0.0.1:0", preload: 20, snapshot: path,
		snapshotEvery: time.Hour, metrics: false, drainTimeout: 5 * time.Second,
	}
	for restart := 0; restart < 2; restart++ {
		stop := make(chan os.Signal, 1)
		ready := make(chan net.Addr, 1)
		done := make(chan error, 1)
		go func() { done <- run(cfg, stop, ready) }()
		select {
		case <-ready:
		case err := <-done:
			t.Fatalf("restart %d: daemon exited early: %v", restart, err)
		case <-time.After(10 * time.Second):
			t.Fatalf("restart %d: daemon not ready", restart)
		}
		stop <- syscall.SIGTERM
		if err := <-done; err != nil {
			t.Fatalf("restart %d: %v", restart, err)
		}
	}
	// The preload ran exactly once: the restored catalog holds 20 files.
	cat, restored, err := restoreOrOpen(path, mcs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Fatal("final snapshot missing")
	}
	st, err := cat.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 20 {
		t.Fatalf("files after restart = %d, want 20", st.Files)
	}
}

// TestFinalSnapshotOnSignal verifies that a graceful shutdown persists
// writes that arrived after the last periodic snapshot.
func TestFinalSnapshotOnSignal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "final.mcs")
	cfg := config{
		addr: "127.0.0.1:0", snapshot: path,
		snapshotEvery: time.Hour, // periodic snapshots never fire in this test
		metrics:       false, drainTimeout: 5 * time.Second,
	}
	stop := make(chan os.Signal, 1)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- run(cfg, stop, ready) }()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon not ready")
	}

	client := mcs.NewClient("http://"+addr.String(), "/CN=tester")
	if _, err := client.CreateFile(mcs.FileSpec{Name: "unsaved-until-shutdown"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("snapshot exists before shutdown: %v", err)
	}

	stop <- syscall.SIGTERM
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	cat, restored, err := restoreOrOpen(path, mcs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Fatal("no final snapshot written on SIGTERM")
	}
	if _, err := cat.GetFile("/CN=tester", "unsaved-until-shutdown", 0); err != nil {
		t.Fatalf("write lost across graceful shutdown: %v", err)
	}
}
