package main

import (
	"net"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"mcs"
)

// startDaemon runs the daemon in-process and returns its address plus a
// shutdown function that delivers SIGTERM and waits for exit.
func startDaemon(t *testing.T, cfg config) (net.Addr, func() error) {
	t.Helper()
	stop := make(chan os.Signal, 1)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- run(cfg, stop, ready) }()
	select {
	case addr := <-ready:
		return addr, func() error {
			stop <- syscall.SIGTERM
			return <-done
		}
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon not ready")
	}
	return nil, nil
}

// TestCheckpointFailureKeepsWAL is the regression test for the latent
// truncation bug: a checkpoint that fails mid-snapshot (here: unwritable
// snapshot path) used to leave the periodic ticker free to carry on while a
// later truncation dropped log records no persisted snapshot covered. With
// truncation conditional on the persisted checkpoint LSN, every commit on
// either side of the failed checkpoint must survive a crash.
func TestCheckpointFailureKeepsWAL(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "cat.snap")
	walPath := snapPath + ".wal"

	cat, err := mcs.OpenCatalog(mcs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w, _, err := cat.OpenWAL(walPath, mcs.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateFile("/CN=x", mcs.FileSpec{Name: "before-good.dat"}); err != nil {
		t.Fatal(err)
	}
	// A checkpoint that succeeds: snapshot v1 covers before-good.dat.
	if err := checkpoint(cat, w, snapPath); err != nil {
		t.Fatal(err)
	}
	if w.Sealed() {
		t.Fatal("successful checkpoint left the previous generation sealed")
	}

	if _, err := cat.CreateFile("/CN=x", mcs.FileSpec{Name: "before-bad.dat"}); err != nil {
		t.Fatal(err)
	}
	// A checkpoint that fails mid-snapshotTo: the rotation happened, the
	// snapshot did not, so the sealed generation (holding before-bad.dat)
	// must be retained — the persisted snapshot does not cover it.
	doomed := filepath.Join(dir, "no-such-dir", "cat.snap")
	if err := checkpoint(cat, w, doomed); err == nil {
		t.Fatal("checkpoint to unwritable path succeeded")
	}
	if !w.Sealed() {
		t.Fatal("failed checkpoint released the sealed generation")
	}
	if _, err := os.Stat(walPath + ".1"); err != nil {
		t.Fatalf("sealed generation missing after failed checkpoint: %v", err)
	}

	if _, err := cat.CreateFile("/CN=x", mcs.FileSpec{Name: "after-bad.dat"}); err != nil {
		t.Fatal(err)
	}

	// Crash (no graceful shutdown, no further checkpoint). Recovery sees
	// snapshot v1 + both log generations; nothing is lost.
	cat2, restored, err := restoreOrOpen(snapPath, mcs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Fatal("snapshot v1 missing")
	}
	w2, stats, err := cat2.OpenWAL(walPath, mcs.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != 2 {
		t.Fatalf("replay stats = %+v, want the 2 uncovered commits", stats)
	}
	for _, name := range []string{"before-good.dat", "before-bad.dat", "after-bad.dat"} {
		if _, err := cat2.GetFile("/CN=x", name, 0); err != nil {
			t.Fatalf("commit %q lost across failed checkpoint + crash: %v", name, err)
		}
	}

	// And once a checkpoint to the real path succeeds, the backlog drains:
	// both generations are covered and the sealed file is released.
	if err := checkpoint(cat2, w2, snapPath); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(walPath + ".1"); !os.IsNotExist(err) {
		t.Fatalf("sealed generation still present after successful checkpoint: %v", err)
	}
}

// TestDaemonWALCrashRecovery runs the real daemon with -snapshot and -wal,
// writes through the wire, and snapshots the on-disk state mid-flight — the
// exact image a kill -9 would leave (no final snapshot, unclosed log). A
// second daemon booted from that image must serve the write.
func TestDaemonWALCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	live := filepath.Join(dir, "live")
	crashed := filepath.Join(dir, "crashed")
	for _, d := range []string{live, crashed} {
		if err := os.Mkdir(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	snapPath := filepath.Join(live, "cat.snap")
	cfg := config{
		addr: "127.0.0.1:0", snapshot: snapPath, wal: true, walSync: "always",
		snapshotEvery: time.Hour, metrics: false, drainTimeout: 5 * time.Second,
	}
	addr, shutdown := startDaemon(t, cfg)

	client := mcs.NewClient("http://"+addr.String(), "/CN=tester")
	if _, err := client.CreateFile(mcs.FileSpec{Name: "survives-kill.dat"}); err != nil {
		t.Fatal(err)
	}

	// Capture the crash image while the daemon is still running: the WAL
	// holds the commit (fsynced before the client got its reply); the
	// snapshot does not exist yet.
	walBytes, err := os.ReadFile(snapPath + ".wal")
	if err != nil || len(walBytes) == 0 {
		t.Fatalf("live wal = %d bytes, %v; want non-empty", len(walBytes), err)
	}
	if _, err := os.Stat(snapPath); !os.IsNotExist(err) {
		t.Fatalf("snapshot exists before shutdown: %v", err)
	}
	crashedSnap := filepath.Join(crashed, "cat.snap")
	if err := os.WriteFile(crashedSnap+".wal", walBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}

	// Boot a daemon from the crash image and read the write back.
	cfg2 := cfg
	cfg2.snapshot = crashedSnap
	addr2, shutdown2 := startDaemon(t, cfg2)
	client2 := mcs.NewClient("http://"+addr2.String(), "/CN=tester")
	if _, err := client2.GetFile("survives-kill.dat", 0); err != nil {
		t.Fatalf("write lost across simulated crash: %v", err)
	}
	if err := shutdown2(); err != nil {
		t.Fatal(err)
	}

	// The recovered daemon shut down cleanly: its final checkpoint covers
	// the log, so a third boot restores from snapshot with nothing left to
	// replay.
	cat, restored, err := restoreOrOpen(crashedSnap, mcs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Fatal("final checkpoint snapshot missing")
	}
	_, stats, err := cat.OpenWAL(crashedSnap+".wal", mcs.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != 0 {
		t.Fatalf("replay after clean shutdown applied %d records, want 0", stats.Applied)
	}
	if _, err := cat.GetFile("/CN=tester", "survives-kill.dat", 0); err != nil {
		t.Fatalf("write lost across clean restart: %v", err)
	}
}
