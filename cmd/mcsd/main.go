// Command mcsd runs the Metadata Catalog Service daemon: a SOAP/HTTP
// endpoint in front of a fresh catalog, optionally with GSI authentication
// and authorization enabled.
//
// Usage:
//
//	mcsd -addr :8080
//	mcsd -addr :8080 -owner "/O=Grid/CN=Admin" -authz
//	mcsd -addr :8080 -preload 100000   # benchmark dataset preloaded
//	mcsd -addr :8080 -slow-op 250ms    # log operations slower than 250ms
//	mcsd -addr :8080 -fault-spec "site=dispatch,kind=error,every=10"  # chaos testing
//
// Unless -metrics=false, the server also exposes /metrics (Prometheus text,
// or JSON with ?format=json), /healthz and /statz beside the SOAP endpoint.
//
// With -snapshot, the daemon restores existing state at startup, writes the
// catalog to disk every -snapshot-interval, and — on SIGINT/SIGTERM —
// drains in-flight requests and writes a final snapshot before exiting, so
// a graceful shutdown never loses committed writes. Unless -wal=false, a
// write-ahead log at <snapshot>.wal extends that to per-commit durability:
// every mutation is fsynced (group-committed) before it is acknowledged,
// boot replays the log suffix the snapshot does not cover, and each
// snapshot becomes a checkpoint that truncates the log it covers. A hard
// crash — kill -9, power loss — then loses nothing but a torn final record,
// which recovery truncates.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"mcs"
	"mcs/internal/bench"
)

// restoreOrOpen loads the catalog from an existing snapshot file, or opens
// a fresh one when the file does not exist yet. restored reports whether
// state actually came from the snapshot — callers must not re-run initial
// data loads in that case.
func restoreOrOpen(path string, opts mcs.Options) (cat *mcs.Catalog, restored bool, err error) {
	if path == "" {
		cat, err = mcs.OpenCatalog(opts)
		return cat, false, err
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		cat, err = mcs.OpenCatalog(opts)
		return cat, false, err
	}
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	cat, err = mcs.RestoreCatalog(opts, f)
	if err != nil {
		return nil, false, fmt.Errorf("restore %s: %w", path, err)
	}
	log.Printf("mcsd: restored catalog from %s", path)
	return cat, true, nil
}

// snapshotTo writes the catalog atomically and durably: temp file, fsync,
// rename, then fsync of the parent directory. Without the file sync a crash
// shortly after the rename can leave a truncated "complete" snapshot;
// without the directory sync the rename itself may not have reached disk.
func snapshotTo(cat *mcs.Catalog, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := cat.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// checkpoint writes a snapshot and truncates the write-ahead log it covers:
// the log rotates (current file sealed, fresh file takes new appends), the
// snapshot is written durably, and only then — and only if the snapshot's
// LSN actually covers the sealed records — is the sealed file dropped. The
// covering LSN is captured before the dump, so a commit racing the snapshot
// can only make the snapshot newer than claimed, never older: a failed or
// short checkpoint always leaves every uncovered record on disk for the
// next recovery.
func checkpoint(cat *mcs.Catalog, w *mcs.WAL, path string) error {
	if w == nil {
		return snapshotTo(cat, path)
	}
	if err := w.Rotate(); err != nil {
		return fmt.Errorf("wal rotate: %w", err)
	}
	lsn := cat.LastLSN()
	if err := snapshotTo(cat, path); err != nil {
		return err
	}
	if err := w.DropCovered(lsn); err != nil {
		return fmt.Errorf("wal truncate: %w", err)
	}
	return nil
}

// config carries mcsd's parsed flags.
type config struct {
	addr          string
	owner         string
	authz         bool
	preload       int
	snapshot      string
	snapshotEvery time.Duration
	// wal enables the write-ahead log beside the snapshot (per-commit
	// durability); walSync selects its fsync policy ("always" or "off").
	wal     bool
	walSync string
	// jsonAPI serves the compact JSON wire under /api/v1/ beside SOAP.
	jsonAPI   bool
	metrics   bool
	slowOp    time.Duration
	slowOpLog string
	// drainTimeout bounds the graceful-shutdown drain.
	drainTimeout time.Duration
	// faultSpec/faultSeed configure deterministic fault injection — chaos
	// and resilience testing against a real daemon.
	faultSpec string
	faultSeed uint64
}

// run starts the daemon and serves until stop delivers a signal (graceful
// shutdown: drain in-flight requests, write a final snapshot) or the
// listener fails. When ready is non-nil, the bound address is sent on it
// once the server is accepting connections.
func run(cfg config, stop <-chan os.Signal, ready chan<- net.Addr) error {
	catalog, restored, err := restoreOrOpen(cfg.snapshot, mcs.Options{Owner: cfg.owner, EnforceAuthz: cfg.authz})
	if err != nil {
		return err
	}
	var wal *mcs.WAL
	if cfg.snapshot != "" && cfg.wal {
		var walOpts mcs.WALOptions
		switch cfg.walSync {
		case "", "always":
		case "off":
			walOpts.NoSync = true
		default:
			return fmt.Errorf("-wal-sync: unknown policy %q (want \"always\" or \"off\")", cfg.walSync)
		}
		w, stats, err := catalog.OpenWAL(cfg.snapshot+".wal", walOpts)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		wal = w
		defer wal.Close() //nolint:errcheck // commits were individually fsynced
		if stats.Applied > 0 || stats.TornBytes > 0 {
			log.Printf("mcsd: wal: replayed %d of %d records through lsn %d (%d torn bytes truncated)",
				stats.Applied, stats.Records, stats.LastLSN, stats.TornBytes)
		}
		if stats.Applied > 0 && !restored {
			// The log alone rebuilt committed state; -preload must not
			// re-create the dataset on top of it.
			restored = true
		}
	}
	obsOpts := mcs.ObsOptions{
		DisableEndpoints: !cfg.metrics,
		SlowOpThreshold:  cfg.slowOp,
	}
	if cfg.slowOpLog != "" {
		f, err := os.OpenFile(cfg.slowOpLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("slow-op log: %w", err)
		}
		defer f.Close()
		obsOpts.SlowOpLogger = log.New(f, "", log.LstdFlags|log.LUTC)
	}
	srvOpts := mcs.ServerOptions{Catalog: catalog, Obs: obsOpts, WAL: wal, DisableJSONAPI: !cfg.jsonAPI}
	if cfg.faultSpec != "" {
		rules, err := mcs.ParseFaultSpec(cfg.faultSpec)
		if err != nil {
			return fmt.Errorf("-fault-spec: %w", err)
		}
		srvOpts.FaultInjector = mcs.NewFaultInjector(cfg.faultSeed, rules...)
		log.Printf("mcsd: FAULT INJECTION ACTIVE: %d rule(s), seed %d — not for production", len(rules), cfg.faultSeed)
	}
	srv, err := mcs.NewServer(srvOpts)
	if err != nil {
		return err
	}
	if cfg.preload > 0 {
		if restored {
			// The snapshot already holds the dataset; loading again would
			// fail on the existing names.
			log.Printf("mcsd: catalog restored from %s, skipping -preload %d", cfg.snapshot, cfg.preload)
		} else {
			log.Printf("mcsd: preloading %d files (collections of 1000, 10 attributes each)", cfg.preload)
			if err := bench.LoadInto(srv.Catalog(), bench.DefaultConfig(cfg.preload)); err != nil {
				return fmt.Errorf("preload: %w", err)
			}
		}
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	if cfg.snapshot != "" && cfg.snapshotEvery > 0 {
		ticker := time.NewTicker(cfg.snapshotEvery)
		tickerDone := make(chan struct{})
		defer close(tickerDone)
		go func() {
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if err := checkpoint(catalog, wal, cfg.snapshot); err != nil {
						log.Printf("mcsd: snapshot: %v", err)
					}
				case <-tickerDone:
					return
				}
			}
		}()
	}
	extra := ""
	if cfg.jsonAPI {
		extra += ", JSON API at /api/v1/"
	}
	if cfg.metrics {
		extra += ", metrics at /metrics"
	}
	fmt.Fprintf(os.Stderr, "mcsd: Metadata Catalog Service listening on http://%s (WSDL at /?wsdl%s)\n",
		ln.Addr(), extra)
	if ready != nil {
		ready <- ln.Addr()
	}
	httpSrv := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case sig := <-stop:
		log.Printf("mcsd: %v: draining requests", sig)
	}
	drain := cfg.drainTimeout
	if drain <= 0 {
		drain = 30 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("mcsd: drain: %v", err)
	}
	if cfg.snapshot != "" {
		if err := checkpoint(catalog, wal, cfg.snapshot); err != nil {
			return fmt.Errorf("final snapshot: %w", err)
		}
		log.Printf("mcsd: final snapshot written to %s", cfg.snapshot)
	}
	return nil
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "listen address")
	flag.StringVar(&cfg.owner, "owner", "", "DN bootstrapped with service-level rights")
	flag.BoolVar(&cfg.authz, "authz", false, "enforce authorization (requires -owner)")
	flag.IntVar(&cfg.preload, "preload", 0, "preload this many benchmark files before serving")
	flag.StringVar(&cfg.snapshot, "snapshot", "", "snapshot file for restart durability")
	flag.DurationVar(&cfg.snapshotEvery, "snapshot-interval", time.Minute, "interval between periodic snapshots")
	flag.BoolVar(&cfg.wal, "wal", true, "with -snapshot, keep a write-ahead log beside it for per-commit durability")
	flag.StringVar(&cfg.walSync, "wal-sync", "always", "WAL fsync policy: \"always\" (group commit, crash-safe) or \"off\" (OS-paced, loses the unsynced tail on power failure)")
	flag.BoolVar(&cfg.jsonAPI, "json-api", true, "serve the compact JSON wire under /api/v1/ beside the SOAP endpoint")
	flag.BoolVar(&cfg.metrics, "metrics", true, "expose the /metrics, /healthz and /statz operational endpoints")
	flag.DurationVar(&cfg.slowOp, "slow-op", 0, "log operations slower than this threshold, with request ID and DN (0 disables)")
	flag.StringVar(&cfg.slowOpLog, "slow-op-log", "", "file receiving slow-op lines (default stderr)")
	flag.StringVar(&cfg.faultSpec, "fault-spec", "", "inject deterministic faults, e.g. \"site=dispatch,kind=error,op=createFile,every=10\"; rules separated by ';' (testing only)")
	flag.Uint64Var(&cfg.faultSeed, "fault-seed", 1, "seed for probabilistic fault rules (same seed = same fault sequence)")
	flag.Parse()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(cfg, stop, nil); err != nil {
		log.Fatalf("mcsd: %v", err)
	}
}
