// Command mcsd runs the Metadata Catalog Service daemon: a SOAP/HTTP
// endpoint in front of a fresh catalog, optionally with GSI authentication
// and authorization enabled.
//
// Usage:
//
//	mcsd -addr :8080
//	mcsd -addr :8080 -owner "/O=Grid/CN=Admin" -authz
//	mcsd -addr :8080 -preload 100000   # benchmark dataset preloaded
//	mcsd -addr :8080 -slow-op 250ms    # log operations slower than 250ms
//
// Unless -metrics=false, the server also exposes /metrics (Prometheus text,
// or JSON with ?format=json), /healthz and /statz beside the SOAP endpoint.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"mcs"
	"mcs/internal/bench"
)

// restoreOrOpen loads the catalog from an existing snapshot file, or opens
// a fresh one when the file does not exist yet.
func restoreOrOpen(path string, opts mcs.Options) (*mcs.Catalog, error) {
	if path == "" {
		return mcs.OpenCatalog(opts)
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return mcs.OpenCatalog(opts)
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cat, err := mcs.RestoreCatalog(opts, f)
	if err != nil {
		return nil, fmt.Errorf("restore %s: %w", path, err)
	}
	log.Printf("mcsd: restored catalog from %s", path)
	return cat, nil
}

// snapshotTo writes the catalog atomically (temp file + rename).
func snapshotTo(cat *mcs.Catalog, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := cat.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	owner := flag.String("owner", "", "DN bootstrapped with service-level rights")
	authz := flag.Bool("authz", false, "enforce authorization (requires -owner)")
	preload := flag.Int("preload", 0, "preload this many benchmark files before serving")
	snapshot := flag.String("snapshot", "", "snapshot file for restart durability")
	snapshotEvery := flag.Duration("snapshot-interval", time.Minute, "interval between periodic snapshots")
	metrics := flag.Bool("metrics", true, "expose the /metrics, /healthz and /statz operational endpoints")
	slowOp := flag.Duration("slow-op", 0, "log operations slower than this threshold, with request ID and DN (0 disables)")
	slowOpLog := flag.String("slow-op-log", "", "file receiving slow-op lines (default stderr)")
	flag.Parse()

	catalog, err := restoreOrOpen(*snapshot, mcs.Options{Owner: *owner, EnforceAuthz: *authz})
	if err != nil {
		log.Fatalf("mcsd: %v", err)
	}
	obsOpts := mcs.ObsOptions{
		DisableEndpoints: !*metrics,
		SlowOpThreshold:  *slowOp,
	}
	if *slowOpLog != "" {
		f, err := os.OpenFile(*slowOpLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("mcsd: slow-op log: %v", err)
		}
		defer f.Close()
		obsOpts.SlowOpLogger = log.New(f, "", log.LstdFlags|log.LUTC)
	}
	srv, err := mcs.NewServer(mcs.ServerOptions{Catalog: catalog, Obs: obsOpts})
	if err != nil {
		log.Fatalf("mcsd: %v", err)
	}
	if *snapshot != "" {
		go func() {
			for range time.Tick(*snapshotEvery) {
				if err := snapshotTo(catalog, *snapshot); err != nil {
					log.Printf("mcsd: snapshot: %v", err)
				}
			}
		}()
	}
	if *preload > 0 {
		log.Printf("mcsd: preloading %d files (collections of 1000, 10 attributes each)", *preload)
		if err := bench.LoadInto(srv.Catalog(), bench.DefaultConfig(*preload)); err != nil {
			log.Fatalf("mcsd: preload: %v", err)
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("mcsd: %v", err)
	}
	extra := ""
	if *metrics {
		extra = ", metrics at /metrics"
	}
	fmt.Fprintf(os.Stderr, "mcsd: Metadata Catalog Service listening on http://%s (WSDL at /?wsdl%s)\n",
		ln.Addr(), extra)
	log.Fatal(http.Serve(ln, srv))
}
