package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mcs"
)

// bulkLoad registers many files in batched transactions. Input is one file
// per line — "name [attr=type:value ...]" — read from the named file or
// stdin. Lines are shipped in batchWrite calls of -batch ops each, so a
// million-file registration costs thousands, not millions, of round trips.
func bulkLoad(c *mcs.Client, args []string) error {
	fs := flag.NewFlagSet("bulk-load", flag.ContinueOnError)
	batchSize := fs.Int("batch", 100, "files per batchWrite call")
	collection := fs.String("collection", "", "register every file into this collection")
	quiet := fs.Bool("q", false, "suppress the progress summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *batchSize < 1 {
		return fmt.Errorf("bulk-load: -batch must be positive")
	}
	in := io.Reader(os.Stdin)
	switch fs.NArg() {
	case 0:
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return fmt.Errorf("bulk-load: at most one input file")
	}

	batch := mcs.NewBatch()
	loaded, lineNo := 0, 0
	flush := func() error {
		if batch.Len() == 0 {
			return nil
		}
		if _, err := c.BatchWriteQuiet(batch.Ops()); err != nil {
			return err
		}
		loaded += batch.Len()
		batch = mcs.NewBatch()
		return nil
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		spec := mcs.FileSpec{Name: fields[0], Collection: *collection}
		for _, s := range fields[1:] {
			a, err := parseAttr(s)
			if err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			spec.Attributes = append(spec.Attributes, a)
		}
		batch.CreateFile(spec)
		if batch.Len() >= *batchSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	if !*quiet {
		fmt.Printf("loaded %d files\n", loaded)
	}
	return nil
}
