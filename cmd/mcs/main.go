// Command mcs is the command-line client of the Metadata Catalog Service,
// covering the operations of the paper's client API.
//
// Usage:
//
//	mcs [-server URL] [-dn DN] <command> [args]
//
// Commands:
//
//	create-file <name> [attr=type:value ...]     register a logical file
//	bulk-load [-batch N] [-collection C] [file]  batch-register files from a
//	                                             listing (one "name [attr=type:value ...]"
//	                                             per line; default stdin, batches of 100)
//	get-file <name>                              show static metadata
//	delete-file <name>                           remove a logical file
//	versions <name>                              list all versions
//	create-collection <name> [parent]            register a collection
//	ls <collection>                              list collection contents
//	create-view <name>                           register a view
//	view-add <view> <file|collection|view> <member>
//	view-ls <view>                               list view members
//	view-expand <view>                           resolve a view to file names
//	define-attr <name> <type> [description]      declare a user attribute
//	set-attr <objtype> <object> <name>=<type>:<value>
//	attrs <objtype> <object>                     show user attributes
//	query <attr><op><type>:<value> ...           attribute-based discovery
//	annotate <objtype> <object> <text>           attach an annotation
//	annotations <objtype> <object>               list annotations
//	provenance <file>                            show transformation history
//	grant <objtype> <object> <principal> <perm>  grant a permission
//	audit <objtype> <object>                     show the audit trail
//	stats                                        catalog row counts
//
// Attribute types: string, int, float, date, time, datetime.
// Query operators: = != < <= > >= ~ (LIKE).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mcs"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mcs [-server URL] [-dn DN] <command> [args]; see 'go doc mcs/cmd/mcs'")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mcs: %v\n", err)
	os.Exit(1)
}

// parseAttr parses "name=type:value" into an attribute binding.
func parseAttr(s string) (mcs.Attribute, error) {
	eq := strings.IndexByte(s, '=')
	if eq < 0 {
		return mcs.Attribute{}, fmt.Errorf("want name=type:value, got %q", s)
	}
	name := s[:eq]
	tv := s[eq+1:]
	colon := strings.IndexByte(tv, ':')
	if colon < 0 {
		return mcs.Attribute{}, fmt.Errorf("want name=type:value, got %q", s)
	}
	v, err := mcs.ParseAttrValue(mcs.AttrType(tv[:colon]), tv[colon+1:])
	if err != nil {
		return mcs.Attribute{}, err
	}
	return mcs.Attribute{Name: name, Value: v}, nil
}

// queryOps maps CLI spellings to query operators, longest first.
var queryOps = []struct {
	text string
	op   mcs.Op
}{
	{"<=", mcs.OpLe}, {">=", mcs.OpGe}, {"!=", mcs.OpNe},
	{"=", mcs.OpEq}, {"<", mcs.OpLt}, {">", mcs.OpGt}, {"~", mcs.OpLike},
}

// parsePredicate parses "attr<op>type:value".
func parsePredicate(s string) (mcs.Predicate, error) {
	for _, cand := range queryOps {
		idx := strings.Index(s, cand.text)
		if idx <= 0 {
			continue
		}
		attr := s[:idx]
		tv := s[idx+len(cand.text):]
		colon := strings.IndexByte(tv, ':')
		if colon < 0 {
			return mcs.Predicate{}, fmt.Errorf("want attr%stype:value, got %q", cand.text, s)
		}
		v, err := mcs.ParseAttrValue(mcs.AttrType(tv[:colon]), tv[colon+1:])
		if err != nil {
			return mcs.Predicate{}, err
		}
		return mcs.Predicate{Attribute: attr, Op: cand.op, Value: v}, nil
	}
	return mcs.Predicate{}, fmt.Errorf("no operator in predicate %q", s)
}

func main() {
	server := flag.String("server", "http://127.0.0.1:8080", "MCS endpoint URL")
	dn := flag.String("dn", "/O=Grid/CN=cli-user", "identity to act as")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	c := mcs.NewClient(*server, *dn)
	cmd, args := args[0], args[1:]

	switch cmd {
	case "create-file":
		if len(args) < 1 {
			usage()
		}
		spec := mcs.FileSpec{Name: args[0]}
		for _, s := range args[1:] {
			a, err := parseAttr(s)
			if err != nil {
				fatal(err)
			}
			spec.Attributes = append(spec.Attributes, a)
		}
		f, err := c.CreateFile(spec)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("created %s version %d (id %d)\n", f.Name, f.Version, f.ID)
	case "bulk-load":
		if err := bulkLoad(c, args); err != nil {
			fatal(err)
		}
	case "get-file":
		if len(args) != 1 {
			usage()
		}
		f, err := c.GetFile(args[0], 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("name: %s\nversion: %d\ndataType: %s\nvalid: %v\ncreator: %s\ncreated: %s\nmasterCopy: %s\n",
			f.Name, f.Version, f.DataType, f.Valid, f.Creator, f.Created, f.MasterCopy)
	case "delete-file":
		if len(args) != 1 {
			usage()
		}
		if err := c.DeleteFile(args[0], 0); err != nil {
			fatal(err)
		}
	case "versions":
		if len(args) != 1 {
			usage()
		}
		fs, err := c.FileVersions(args[0])
		if err != nil {
			fatal(err)
		}
		for _, f := range fs {
			fmt.Printf("%s version %d (valid=%v, modified %s)\n", f.Name, f.Version, f.Valid, f.Modified)
		}
	case "create-collection":
		if len(args) < 1 {
			usage()
		}
		spec := mcs.CollectionSpec{Name: args[0]}
		if len(args) > 1 {
			spec.Parent = args[1]
		}
		if _, err := c.CreateCollection(spec); err != nil {
			fatal(err)
		}
	case "ls":
		if len(args) != 1 {
			usage()
		}
		files, subs, err := c.CollectionContents(args[0])
		if err != nil {
			fatal(err)
		}
		for _, col := range subs {
			fmt.Printf("%s/\n", col.Name)
		}
		for _, f := range files {
			fmt.Printf("%s (v%d)\n", f.Name, f.Version)
		}
	case "create-view":
		if len(args) != 1 {
			usage()
		}
		if _, err := c.CreateView(mcs.ViewSpec{Name: args[0]}); err != nil {
			fatal(err)
		}
	case "view-add":
		if len(args) != 3 {
			usage()
		}
		if err := c.AddToView(args[0], mcs.ObjectType(args[1]), args[2]); err != nil {
			fatal(err)
		}
	case "view-ls":
		if len(args) != 1 {
			usage()
		}
		members, err := c.ViewContents(args[0])
		if err != nil {
			fatal(err)
		}
		for _, m := range members {
			fmt.Printf("%s %s\n", m.Type, m.Name)
		}
	case "view-expand":
		if len(args) != 1 {
			usage()
		}
		names, err := c.ExpandView(args[0])
		if err != nil {
			fatal(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}
	case "define-attr":
		if len(args) < 2 {
			usage()
		}
		desc := strings.Join(args[2:], " ")
		if _, err := c.DefineAttribute(args[0], mcs.AttrType(args[1]), desc); err != nil {
			fatal(err)
		}
	case "set-attr":
		if len(args) != 3 {
			usage()
		}
		a, err := parseAttr(args[2])
		if err != nil {
			fatal(err)
		}
		if err := c.SetAttribute(mcs.ObjectType(args[0]), args[1], a.Name, a.Value); err != nil {
			fatal(err)
		}
	case "attrs":
		if len(args) != 2 {
			usage()
		}
		attrs, err := c.GetAttributes(mcs.ObjectType(args[0]), args[1])
		if err != nil {
			fatal(err)
		}
		for _, a := range attrs {
			fmt.Printf("%s = %s (%s)\n", a.Name, a.Value.Render(), a.Value.Type)
		}
	case "query":
		if len(args) < 1 {
			usage()
		}
		var q mcs.Query
		for _, s := range args {
			p, err := parsePredicate(s)
			if err != nil {
				fatal(err)
			}
			q.Predicates = append(q.Predicates, p)
		}
		names, err := c.RunQuery(q)
		if err != nil {
			fatal(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}
	case "annotate":
		if len(args) < 3 {
			usage()
		}
		if _, err := c.Annotate(mcs.ObjectType(args[0]), args[1], strings.Join(args[2:], " ")); err != nil {
			fatal(err)
		}
	case "annotations":
		if len(args) != 2 {
			usage()
		}
		anns, err := c.Annotations(mcs.ObjectType(args[0]), args[1])
		if err != nil {
			fatal(err)
		}
		for _, a := range anns {
			fmt.Printf("[%s] %s: %s\n", a.CreatedAt.Format("2006-01-02 15:04"), a.Creator, a.Text)
		}
	case "provenance":
		if len(args) != 1 {
			usage()
		}
		recs, err := c.Provenance(args[0], 0)
		if err != nil {
			fatal(err)
		}
		for _, r := range recs {
			fmt.Printf("[%s] %s\n", r.At.Format("2006-01-02 15:04"), r.Description)
		}
	case "grant":
		if len(args) != 4 {
			usage()
		}
		if err := c.Grant(mcs.ObjectType(args[0]), args[1], args[2], mcs.Permission(args[3])); err != nil {
			fatal(err)
		}
	case "audit":
		if len(args) != 2 {
			usage()
		}
		recs, err := c.AuditLog(mcs.ObjectType(args[0]), args[1])
		if err != nil {
			fatal(err)
		}
		for _, r := range recs {
			req := ""
			if r.RequestID != "" {
				req = " req=" + r.RequestID
			}
			fmt.Printf("[%s] %s %s %s%s\n", r.At.Format("2006-01-02 15:04"), r.DN, r.Action, r.Detail, req)
		}
	case "stats":
		st, err := c.Stats()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("files: %d\ncollections: %d\nviews: %d\nattributes: %d\nattribute definitions: %d\n",
			st.Files, st.Collections, st.Views, st.Attributes, st.AttrDefs)
	default:
		usage()
	}
}
