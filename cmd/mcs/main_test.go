package main

import (
	"testing"

	"mcs"
)

func TestParseAttr(t *testing.T) {
	cases := []struct {
		in       string
		wantOK   bool
		name     string
		typ      mcs.AttrType
		rendered string
	}{
		{"freq=float:40.5", true, "freq", mcs.AttrFloat, "40.5"},
		{"run=string:S2", true, "run", mcs.AttrString, "S2"},
		{"n=int:-7", true, "n", mcs.AttrInt, "-7"},
		{"d=date:2003-11-15", true, "d", mcs.AttrDate, "2003-11-15"},
		{"s=string:has:colons", true, "s", mcs.AttrString, "has:colons"},
		{"noequals", false, "", "", ""},
		{"name=notype", false, "", "", ""},
		{"x=int:notanumber", false, "", "", ""},
		{"x=badtype:v", false, "", "", ""},
	}
	for _, c := range cases {
		a, err := parseAttr(c.in)
		if c.wantOK {
			if err != nil {
				t.Errorf("parseAttr(%q): %v", c.in, err)
				continue
			}
			if a.Name != c.name || a.Value.Type != c.typ || a.Value.Render() != c.rendered {
				t.Errorf("parseAttr(%q) = %+v", c.in, a)
			}
		} else if err == nil {
			t.Errorf("parseAttr(%q) accepted", c.in)
		}
	}
}

func TestParsePredicate(t *testing.T) {
	cases := []struct {
		in     string
		wantOK bool
		attr   string
		op     mcs.Op
	}{
		{"freq>=float:40", true, "freq", mcs.OpGe},
		{"freq<=float:40", true, "freq", mcs.OpLe},
		{"freq>float:40", true, "freq", mcs.OpGt},
		{"freq<float:40", true, "freq", mcs.OpLt},
		{"run=string:S2", true, "run", mcs.OpEq},
		{"run!=string:S2", true, "run", mcs.OpNe},
		{"name~string:H-%", true, "name", mcs.OpLike},
		{"nooperator", false, "", ""},
		{"=string:x", false, "", ""},
		{"a=string", false, "", ""},
	}
	for _, c := range cases {
		p, err := parsePredicate(c.in)
		if c.wantOK {
			if err != nil {
				t.Errorf("parsePredicate(%q): %v", c.in, err)
				continue
			}
			if p.Attribute != c.attr || p.Op != c.op {
				t.Errorf("parsePredicate(%q) = %+v", c.in, p)
			}
		} else if err == nil {
			t.Errorf("parsePredicate(%q) accepted: %+v", c.in, p)
		}
	}
}

// Longest-operator-first matters: ">=" must not parse as ">" + "=float...".
func TestParsePredicateOperatorPriority(t *testing.T) {
	p, err := parsePredicate("a>=int:5")
	if err != nil || p.Op != mcs.OpGe {
		t.Fatalf("got %+v, %v", p, err)
	}
	if p.Value.I != 5 {
		t.Fatalf("value = %+v", p.Value)
	}
}
