// Package shard implements horizontal sharding of the metadata catalog:
// collection subtrees are partitioned across N mcsd instances by logical-name
// prefix, and a thin stateless router (cmd/mcsrouter) mounts the same
// transport-neutral operation table as mcsd, forwarding single-collection
// operations to exactly one shard and scatter-gathering cross-shard queries.
//
// The unit of distribution is the collection subtree, exactly as the paper's
// section 9 sketches for a distributed MCS: collections are already the
// authorization and transaction scope, so every mutation is single-shard and
// no cross-shard coordination is ever needed on the write path. Deployments
// choose name prefixes (one per experiment, instrument or year, say) and
// name collections, their files and their views under the owning prefix —
// the same operational convention grid projects already use to partition
// logical namespaces. Routing metadata is soft state in the
// internal/federation style: the router periodically pulls each shard's
// bloom-filter discovery summary and uses it to screen shards out of
// cross-shard queries. Staleness is only ever allowed to cost a wasted
// subquery (a screened-in shard that holds no match), never a wrong answer:
// a shard that received a router-forwarded mutation since its last summary
// pull is marked dirty and always included in scatters until the next
// successful pull. Writes that bypass the router are outside that guarantee
// and are seen by screened queries only after the next summary interval.
package shard

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// Rule maps one logical-name prefix to the endpoint of the shard that owns
// it. The special prefix "*" is the catch-all for names no other rule
// matches.
type Rule struct {
	Prefix   string
	Endpoint string
}

// Map is a parsed shard map: an ordered set of prefix rules. Longest
// matching prefix wins, so "ligo-s5" can override "ligo" for one subtree.
type Map struct {
	rules    []Rule // sorted by descending prefix length, then lexically
	catchAll string // endpoint of the "*" rule, "" when absent
}

// ParseMap parses the shard-map text format: one "<prefix> <endpoint>" pair
// per line, blank lines and #-comments ignored. A "*" prefix declares the
// catch-all shard. Duplicate prefixes are an error (a name must route
// deterministically), but many prefixes may share one endpoint.
func ParseMap(text string) (*Map, error) {
	m := &Map{}
	seen := map[string]bool{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("shard map line %d: want \"<prefix> <endpoint>\", got %q", ln+1, line)
		}
		if err := m.add(fields[0], fields[1], seen); err != nil {
			return nil, fmt.Errorf("shard map line %d: %w", ln+1, err)
		}
	}
	return m.finish()
}

// ParseMapFile reads and parses a shard-map file.
func ParseMapFile(path string) (*Map, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseMap(string(raw))
}

// ParseInline parses the compact flag form "prefix=endpoint,prefix=endpoint"
// (use "*=endpoint" for the catch-all), for tests and one-line deployments.
func ParseInline(spec string) (*Map, error) {
	m := &Map{}
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		prefix, endpoint, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("shard spec %q: want \"<prefix>=<endpoint>\"", part)
		}
		if err := m.add(strings.TrimSpace(prefix), strings.TrimSpace(endpoint), seen); err != nil {
			return nil, err
		}
	}
	return m.finish()
}

func (m *Map) add(prefix, endpoint string, seen map[string]bool) error {
	if prefix == "" || endpoint == "" {
		return fmt.Errorf("empty prefix or endpoint")
	}
	if seen[prefix] {
		return fmt.Errorf("prefix %q mapped twice", prefix)
	}
	seen[prefix] = true
	endpoint = strings.TrimSuffix(endpoint, "/")
	if prefix == "*" {
		m.catchAll = endpoint
		return nil
	}
	m.rules = append(m.rules, Rule{Prefix: prefix, Endpoint: endpoint})
	return nil
}

func (m *Map) finish() (*Map, error) {
	if len(m.rules) == 0 && m.catchAll == "" {
		return nil, fmt.Errorf("shard map is empty")
	}
	sort.Slice(m.rules, func(i, j int) bool {
		if len(m.rules[i].Prefix) != len(m.rules[j].Prefix) {
			return len(m.rules[i].Prefix) > len(m.rules[j].Prefix)
		}
		return m.rules[i].Prefix < m.rules[j].Prefix
	})
	return m, nil
}

// Route returns the endpoint owning name: the longest matching prefix rule,
// falling back to the catch-all. ok is false when no rule matches and no
// catch-all is declared — the router surfaces that as an invalid-input
// error rather than guessing.
func (m *Map) Route(name string) (endpoint string, ok bool) {
	for _, r := range m.rules {
		if strings.HasPrefix(name, r.Prefix) {
			return r.Endpoint, true
		}
	}
	if m.catchAll != "" {
		return m.catchAll, true
	}
	return "", false
}

// Endpoints returns the distinct shard endpoints, sorted. The order is
// deterministic across router restarts, which keeps composed pagination
// tokens (which index into this order) valid across a router bounce.
func (m *Map) Endpoints() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range m.rules {
		if !seen[r.Endpoint] {
			seen[r.Endpoint] = true
			out = append(out, r.Endpoint)
		}
	}
	if m.catchAll != "" && !seen[m.catchAll] {
		out = append(out, m.catchAll)
	}
	sort.Strings(out)
	return out
}

// Rules returns the prefix rules in match order (longest first), plus the
// catch-all as a trailing "*" rule when declared — for /statz diagnostics.
func (m *Map) Rules() []Rule {
	out := append([]Rule(nil), m.rules...)
	if m.catchAll != "" {
		out = append(out, Rule{Prefix: "*", Endpoint: m.catchAll})
	}
	return out
}
