package shard

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mcs/internal/federation"
	"mcs/internal/jsonwire"
	"mcs/internal/mcswire"
	"mcs/internal/rls"
)

// backend is the router's view of one shard: a JSON wire client (the
// compact wire — the router never re-encodes XML shard-side) plus the
// shard's last soft-state discovery summary and health.
type backend struct {
	name   string // the shard's endpoint URL; also its identity in metrics
	client *jsonwire.Client

	// forwarded counts operations sent to this shard; unreachable counts
	// transport-level failures talking to it.
	forwarded   atomic.Int64
	unreachable atomic.Int64

	// dirty marks a mutation forwarded to this shard since its summary was
	// last pulled. A dirty shard is never screened out of a scatter: the
	// bloom cannot know about objects added after it was built, and missing
	// a just-written object would be a wrong answer, not a wasted subquery.
	// (Writes that bypass the router are outside this guarantee; see the
	// package comment.)
	dirty atomic.Bool

	mu        sync.Mutex
	summary   *federation.Summary
	summaryAt time.Time
	healthy   bool
	lastErr   string
}

// freshSummary returns the shard's summary when it is younger than ttl.
// A stale or missing summary means the shard cannot be screened out — the
// soft-state contract: staleness degrades to a wasted subquery, never a
// missed result.
func (b *backend) freshSummary(now time.Time, ttl time.Duration) (*federation.Summary, bool) {
	if b.dirty.Load() {
		return nil, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.summary == nil || now.Sub(b.summaryAt) > ttl {
		return nil, false
	}
	return b.summary, true
}

// refreshSummary pulls one discovery summary from the shard and installs it.
// The dirty flag is cleared before the pull starts — a write racing the pull
// re-marks it, so the installed summary never silently claims to cover
// writes it might predate. A failed pull restores dirty: with no fresh
// summary the shard must stay unscreenable.
func (b *backend) refreshSummary(ctx context.Context, fp float64, now func() time.Time) error {
	b.dirty.Store(false)
	var resp mcswire.DiscoverySummaryResponse
	err := b.client.CallCtx(ctx, "discoverySummary", &mcswire.DiscoverySummaryRequest{FP: fp}, &resp)
	if err == nil {
		var sum *federation.Summary
		sum, err = summaryFromWire(b.name, &resp)
		if err == nil {
			b.mu.Lock()
			b.summary, b.summaryAt, b.healthy, b.lastErr = sum, now(), true, ""
			b.mu.Unlock()
			return nil
		}
	}
	b.dirty.Store(true)
	b.mu.Lock()
	b.healthy, b.lastErr = false, err.Error()
	b.mu.Unlock()
	return err
}

// summaryFromWire decodes a wire discovery summary (attrs list + base64 JSON
// bloom) into a federation.Summary.
func summaryFromWire(catalog string, resp *mcswire.DiscoverySummaryResponse) (*federation.Summary, error) {
	raw, err := base64.StdEncoding.DecodeString(resp.Pairs)
	if err != nil {
		return nil, fmt.Errorf("shard %s: decode summary bloom: %w", catalog, err)
	}
	bloom := &rls.Bloom{}
	if err := json.Unmarshal(raw, bloom); err != nil {
		return nil, fmt.Errorf("shard %s: decode summary bloom: %w", catalog, err)
	}
	attrs := make(map[string]bool, len(resp.Attrs))
	for _, a := range resp.Attrs {
		attrs[a] = true
	}
	return &federation.Summary{
		Catalog: catalog, Pairs: bloom, Attrs: attrs, Objects: resp.Objects,
	}, nil
}

// status is one backend's snapshot for /statz and /healthz.
type status struct {
	Endpoint       string  `json:"endpoint"`
	Healthy        bool    `json:"healthy"`
	Forwarded      int64   `json:"forwarded"`
	Unreachable    int64   `json:"unreachable"`
	SummaryAgeSec  float64 `json:"summary_age_sec"`
	SummaryObjects int     `json:"summary_objects"`
	LastError      string  `json:"last_error,omitempty"`
}

func (b *backend) status(now time.Time) status {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := status{
		Endpoint:    b.name,
		Healthy:     b.healthy,
		Forwarded:   b.forwarded.Load(),
		Unreachable: b.unreachable.Load(),
		LastError:   b.lastErr,
	}
	if b.summary != nil {
		st.SummaryAgeSec = now.Sub(b.summaryAt).Seconds()
		st.SummaryObjects = b.summary.Objects
	}
	return st
}
