package shard

import (
	"strings"
	"testing"
)

func TestParseMapAndRoute(t *testing.T) {
	m, err := ParseMap(`
# experiment shards
ligo     http://shard-a:8080/
ligo-s5  http://shard-b:8080
sdss     http://shard-a:8080
*        http://shard-c:8080
`)
	if err != nil {
		t.Fatalf("ParseMap: %v", err)
	}
	cases := []struct {
		name, want string
	}{
		{"ligo-run1/file.gwf", "http://shard-a:8080"}, // prefix match, trailing / trimmed
		{"ligo-s5-seg9", "http://shard-b:8080"},       // longest prefix wins
		{"sdss-dr1", "http://shard-a:8080"},
		{"unmapped-name", "http://shard-c:8080"}, // catch-all
	}
	for _, c := range cases {
		got, ok := m.Route(c.name)
		if !ok || got != c.want {
			t.Errorf("Route(%q) = %q, %v; want %q", c.name, got, ok, c.want)
		}
	}
	eps := m.Endpoints()
	want := []string{"http://shard-a:8080", "http://shard-b:8080", "http://shard-c:8080"}
	if len(eps) != len(want) {
		t.Fatalf("Endpoints = %v, want %v", eps, want)
	}
	for i := range want {
		if eps[i] != want[i] {
			t.Fatalf("Endpoints = %v, want %v", eps, want)
		}
	}
}

func TestRouteWithoutCatchAll(t *testing.T) {
	m, err := ParseInline("a=http://x,b=http://y")
	if err != nil {
		t.Fatalf("ParseInline: %v", err)
	}
	if _, ok := m.Route("zzz"); ok {
		t.Fatal("Route matched a name with no owning prefix and no catch-all")
	}
	if ep, ok := m.Route("b-col"); !ok || ep != "http://y" {
		t.Fatalf("Route(b-col) = %q, %v", ep, ok)
	}
}

func TestParseMapErrors(t *testing.T) {
	for _, bad := range []string{
		"",                         // empty map
		"onlyprefix",               // missing endpoint
		"a http://x\na http://y",   // duplicate prefix
		"a http://x too-many-cols", // trailing junk
	} {
		if _, err := ParseMap(bad); err == nil {
			t.Errorf("ParseMap(%q) succeeded, want error", bad)
		}
	}
	if _, err := ParseInline("a=http://x,a=http://y"); err == nil {
		t.Error("ParseInline accepted a duplicate prefix")
	}
	if _, err := ParseInline("noequals"); err == nil {
		t.Error("ParseInline accepted a pair without =")
	}
}

func TestPageTokenRoundTrip(t *testing.T) {
	for _, tok := range []pageToken{
		{},
		{Shard: 3},
		{Shard: 1, Inner: "opaque-shard-cursor=="},
	} {
		enc := encodePageToken(tok)
		got, err := decodePageToken(enc)
		if err != nil {
			t.Fatalf("decode(%q): %v", enc, err)
		}
		if got != tok {
			t.Fatalf("round trip %+v -> %+v", tok, got)
		}
	}
	if _, err := decodePageToken("!!not-base64!!"); err == nil {
		t.Fatal("decodePageToken accepted garbage")
	}
	// A shard's own (non-composed) token must not decode by accident into a
	// valid composed token with the wrong meaning; garbage JSON is rejected.
	if _, err := decodePageToken("bm90LWpzb24"); err == nil {
		t.Fatal("decodePageToken accepted non-JSON payload")
	}
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(Options{}); err == nil {
		t.Fatal("NewRouter accepted a nil map")
	}
	m, err := ParseInline("a=http://x,b=http://y,*=http://z")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(Options{Map: m, DisableMetrics: true})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer r.Stop()
	// The dispatch table must not mount discoverySummary: the router is not
	// a catalog, and merged blooms would be meaningless.
	for _, op := range r.Table().Ops() {
		if op == "discoverySummary" {
			t.Fatal("router table mounts discoverySummary")
		}
	}
	if r.Table().Lookup("query") == nil || r.Table().Lookup("createFile") == nil {
		t.Fatal("router table missing core ops")
	}
	if !strings.HasPrefix(r.backends[0].name, "http://") {
		t.Fatalf("backend name %q", r.backends[0].name)
	}
}
