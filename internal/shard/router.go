package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcs/internal/core"
	"mcs/internal/faultinject"
	"mcs/internal/jsonwire"
	"mcs/internal/mcswire"
	"mcs/internal/obs"
	"mcs/internal/soap"
)

// Options configures a Router.
type Options struct {
	// Map is the shard map (required).
	Map *Map
	// FP is the bloom false-positive rate requested from shard summaries
	// (default 0.01).
	FP float64
	// SummaryInterval is the period of background summary polls; 0 disables
	// background polling (summaries then refresh only via
	// RefreshSummaries, as tests do for determinism).
	SummaryInterval time.Duration
	// SummaryTTL is how long a pulled summary may screen queries (default
	// 3×SummaryInterval, or 45s when polling is disabled).
	SummaryTTL time.Duration
	// CallTimeout bounds each forwarded call (default 30s).
	CallTimeout time.Duration
	// HTTP optionally substitutes the pooled *http.Client shared by every
	// backend connection.
	HTTP *http.Client
	// DisableMetrics turns off the registry and diagnostic endpoints.
	DisableMetrics bool
	// FaultInjector, when non-nil, injects failures into the router's own
	// wire dispatch (chaos tests of the extra hop); shard-side faults are
	// configured on the shards themselves.
	FaultInjector *faultinject.Injector
	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

// Router is the stateless scatter-gather front of a sharded MCS deployment.
// It mounts the same transport-neutral operation table as mcsd on both the
// SOAP and JSON wires, so any MCS client — either transport, retries and
// all — works unchanged against it. It implements http.Handler.
type Router struct {
	mapp     *Map
	backends []*backend // sorted by endpoint: the deterministic shard order
	byName   map[string]*backend

	table   *mcswire.Table
	soap    *soap.Server
	json    *jsonwire.Server
	metrics *obs.Registry

	fp          float64
	ttl         time.Duration
	interval    time.Duration
	callTimeout time.Duration
	now         func() time.Time
	started     time.Time

	// Scatter-gather observability: the fan-out distribution of executed
	// scatters, and subqueries a fresh bloom summary admitted that returned
	// nothing (false positives — the cost of soft-state routing).
	fanout  obs.SizeDist
	bloomFP atomic.Int64

	stopPoll chan struct{}
	pollDone chan struct{}
}

// NewRouter builds a router over the shard map. It performs no I/O; call
// Start (or RefreshSummaries) afterwards to begin pulling shard summaries.
func NewRouter(opts Options) (*Router, error) {
	if opts.Map == nil {
		return nil, fmt.Errorf("shard: Options.Map is required")
	}
	endpoints := opts.Map.Endpoints()
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("shard: map names no endpoints")
	}
	r := &Router{
		mapp:        opts.Map,
		byName:      make(map[string]*backend, len(endpoints)),
		fp:          opts.FP,
		ttl:         opts.SummaryTTL,
		interval:    opts.SummaryInterval,
		callTimeout: opts.CallTimeout,
		now:         opts.Clock,
	}
	if r.fp <= 0 || r.fp >= 1 {
		r.fp = 0.01
	}
	if r.callTimeout <= 0 {
		r.callTimeout = 30 * time.Second
	}
	if r.ttl <= 0 {
		if r.interval > 0 {
			r.ttl = 3 * r.interval
		} else {
			r.ttl = 45 * time.Second
		}
	}
	if r.now == nil {
		r.now = time.Now
	}
	r.started = r.now()
	pool := opts.HTTP
	if pool == nil {
		pool = &http.Client{
			Timeout: r.callTimeout,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 64,
			},
		}
	}
	for _, ep := range endpoints {
		b := &backend{name: ep, client: jsonwire.NewClientWithHTTP(ep, pool)}
		r.backends = append(r.backends, b)
		r.byName[ep] = b
	}
	if !opts.DisableMetrics {
		r.metrics = obs.NewRegistry()
		r.registerCounters()
	}
	r.table = mcswire.NewTable()
	r.buildTable()

	ss := soap.NewServer("MetadataCatalogService", mcswire.NS)
	ss.SetErrorCode(mcswire.CodeForError)
	if r.metrics != nil {
		ss.SetMetrics(r.metrics)
	}
	if opts.FaultInjector != nil {
		if opts.FaultInjector.DefaultErr == nil {
			opts.FaultInjector.DefaultErr = core.ErrUnavailable
		}
		ss.SetFaultInjector(opts.FaultInjector)
	}
	for _, name := range r.table.Ops() {
		h := r.table.Lookup(name)
		ss.HandleAny(h.Name, h.New, func(ctx *soap.Ctx, req any) (any, error) {
			return h.Call(&mcswire.Ctx{
				DN: ctx.DN, RemoteAddr: ctx.RemoteAddr, Header: ctx.Header,
				RequestID: ctx.RequestID, IdempotencyKey: ctx.IdempotencyKey,
				Transport: "soap",
			}, req)
		})
	}
	r.soap = ss

	js := jsonwire.NewServer(r.table)
	js.SetErrorCode(mcswire.CodeForError)
	if r.metrics != nil {
		js.SetMetrics(r.metrics)
	}
	if opts.FaultInjector != nil {
		js.SetFaultInjector(opts.FaultInjector)
	}
	r.json = js
	return r, nil
}

// registerCounters exposes the router-wide counters on /metrics; per-shard
// forwarded-op counts and latency render as ordinary op metrics under
// transport="shard:<endpoint>" labels, and per-shard health lives in /statz.
func (r *Router) registerCounters() {
	r.metrics.RegisterCounter("mcs_router_scatter_ops_total",
		"Cross-shard scatter-gather operations executed by the router.",
		func() int64 { return r.fanout.Count() })
	r.metrics.RegisterCounter("mcs_router_scatter_subqueries_total",
		"Shard subqueries issued by scatter-gather operations (fan-out sum).",
		func() int64 { return r.fanout.Sum() })
	r.metrics.RegisterCounter("mcs_router_scatter_fanout_max",
		"Largest scatter fan-out observed.",
		func() int64 { return r.fanout.Max() })
	r.metrics.RegisterCounter("mcs_router_bloom_fp_subqueries_total",
		"Subqueries admitted by a fresh bloom summary that matched nothing (false positives).",
		func() int64 { return r.bloomFP.Load() })
	r.metrics.RegisterCounter("mcs_router_shard_forwarded_total",
		"Operations forwarded to shards (all shards; per-shard counts in /statz).",
		func() int64 {
			var n int64
			for _, b := range r.backends {
				n += b.forwarded.Load()
			}
			return n
		})
	r.metrics.RegisterCounter("mcs_router_shard_unreachable_total",
		"Transport-level failures reaching shards.",
		func() int64 {
			var n int64
			for _, b := range r.backends {
				n += b.unreachable.Load()
			}
			return n
		})
}

// Table exposes the router's dispatch table (tests compare its op coverage
// against the server's).
func (r *Router) Table() *mcswire.Table { return r.table }

// Start begins background summary polling (no-op when SummaryInterval is 0).
// The first poll runs synchronously so a freshly started router screens
// queries immediately; its errors are soft (an unreachable shard simply
// stays unscreenable).
func (r *Router) Start() {
	r.RefreshSummaries()
	if r.interval <= 0 || r.stopPoll != nil {
		return
	}
	r.stopPoll = make(chan struct{})
	r.pollDone = make(chan struct{})
	go func() {
		defer close(r.pollDone)
		t := time.NewTicker(r.interval)
		defer t.Stop()
		for {
			select {
			case <-r.stopPoll:
				return
			case <-t.C:
				r.RefreshSummaries()
			}
		}
	}()
}

// Stop halts background polling; safe to call without Start.
func (r *Router) Stop() {
	if r.stopPoll == nil {
		return
	}
	select {
	case <-r.stopPoll:
	default:
		close(r.stopPoll)
	}
	<-r.pollDone
	r.stopPoll = nil
}

// RefreshSummaries pulls a discovery summary from every shard, in parallel,
// and returns the first error (diagnostics only — routing tolerates failed
// refreshes by treating those shards as unscreenable).
func (r *Router) RefreshSummaries() error {
	var wg sync.WaitGroup
	errs := make([]error, len(r.backends))
	for i, b := range r.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), r.callTimeout)
			defer cancel()
			errs[i] = b.refreshSummary(ctx, r.fp, r.now)
		}(i, b)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// owner resolves the shard owning a logical name.
func (r *Router) owner(name string) (*backend, error) {
	ep, ok := r.mapp.Route(name)
	if !ok {
		return nil, fmt.Errorf("%w: no shard owns name %q", core.ErrInvalidInput, name)
	}
	return r.byName[ep], nil
}

// shardError couples a backend reply (or transport failure) with the
// sentinel it names, so the router's own wire servers re-encode the exact
// code — and the exact message — a direct server would have produced.
type shardError struct {
	msg      string
	sentinel error
}

func (e *shardError) Error() string { return e.msg }

// Unwrap exposes the sentinel for errors.Is and the wire error-code mapping.
func (e *shardError) Unwrap() error { return e.sentinel }

// mapBackendError translates a shard-side failure for the client. Decodable
// wire errors keep their message and sentinel verbatim; transport failures
// become ErrUnavailable (the shard may be down — retryable, and the
// idempotency key forwarded with the original attempt makes the retry safe).
func (r *Router) mapBackendError(b *backend, err error) error {
	if err == nil {
		return nil
	}
	var je *jsonwire.Error
	if errors.As(err, &je) {
		if s := mcswire.SentinelForCode(je.Code); s != nil {
			return &shardError{msg: je.Message, sentinel: s}
		}
		return &shardError{msg: je.Message, sentinel: errors.New(je.Code)}
	}
	var te *jsonwire.TransportError
	if errors.As(err, &te) {
		b.unreachable.Add(1)
		return &shardError{
			msg:      fmt.Sprintf("shard %s unreachable: %v", b.name, err),
			sentinel: core.ErrUnavailable,
		}
	}
	return err
}

// forwardHeaders builds the extra headers for one forwarded call: the
// client's request correlation ID and (for mutating ops) its idempotency
// key pass through verbatim, so a WithRetry client's replay reaches the
// owning shard's replay cache unchanged and the mutation applies exactly
// once across the extra hop. idemSuffix derives distinct per-shard keys for
// broadcast ops (each shard keeps its own replay cache).
func forwardHeaders(ctx *mcswire.Ctx, op, idemSuffix string) http.Header {
	hdr := make(http.Header, 2)
	if ctx.RequestID != "" {
		hdr.Set(obs.RequestIDHeader, ctx.RequestID)
	}
	if mcswire.MutatingOps[op] && ctx.IdempotencyKey != "" {
		hdr.Set(obs.IdempotencyKeyHeader, ctx.IdempotencyKey+idemSuffix)
	}
	return hdr
}

// injectCaller overwrites the request's declared Caller with the DN the
// router authenticated, when it authenticated one. The router-to-shard hop
// runs unauthenticated (a trusted backend network), so the shard trusts the
// declared field.
func injectCaller(req any, dn string) {
	if dn == "" {
		return
	}
	v := reflect.ValueOf(req)
	if v.Kind() != reflect.Pointer || v.IsNil() {
		return
	}
	f := v.Elem().FieldByName("Caller")
	if f.IsValid() && f.Kind() == reflect.String && f.CanSet() {
		f.SetString(dn)
	}
}

// call forwards one typed request to one backend and decodes the reply.
func call[Resp any](r *Router, ctx *mcswire.Ctx, b *backend, op string, req any, idemSuffix string) (*Resp, error) {
	injectCaller(req, ctx.DN)
	hdr := forwardHeaders(ctx, op, idemSuffix)
	mutating := mcswire.MutatingOps[op]
	if mutating {
		// Marked before the forward so a concurrent scatter can never screen
		// this shard out while the write is in flight...
		b.dirty.Store(true)
	}
	var om *obs.OpMetrics
	if r.metrics != nil {
		om = r.metrics.TransportOp("shard:"+b.name, op)
		om.Begin()
	}
	cctx, cancel := context.WithTimeout(context.Background(), r.callTimeout)
	defer cancel()
	start := time.Now()
	resp := new(Resp)
	err := b.client.CallHdrCtx(cctx, op, hdr, req, resp)
	if om != nil {
		om.End(time.Since(start), err)
	}
	if mutating {
		// ...and re-marked after it returns, in case a summary refresh that
		// sampled the shard before this write committed cleared the flag
		// mid-flight.
		b.dirty.Store(true)
	}
	b.forwarded.Add(1)
	if err != nil {
		return nil, r.mapBackendError(b, err)
	}
	return resp, nil
}

// route1 registers op as a single-shard forward: key extracts the logical
// name whose prefix picks the owning shard.
func route1[Req, Resp any](r *Router, op string, key func(*Req) string) {
	r.table.Register(mcswire.Handler{
		Name:     op,
		Mutating: mcswire.MutatingOps[op],
		New:      func() any { return new(Req) },
		Call: func(ctx *mcswire.Ctx, req any) (any, error) {
			tr := req.(*Req)
			b, err := r.owner(key(tr))
			if err != nil {
				return nil, err
			}
			return call[Resp](r, ctx, b, op, tr, "")
		},
	})
}

// broadcast registers op as an all-shards forward in deterministic shard
// order: global-namespace mutations (attribute definitions, writer and
// external-catalog registrations, global grants) replicate to every shard so
// each shard remains a self-consistent catalog. Each shard sees a distinct
// derived idempotency key; the first shard's response answers the client.
func broadcast[Req, Resp any](r *Router, op string) {
	r.table.Register(mcswire.Handler{
		Name:     op,
		Mutating: mcswire.MutatingOps[op],
		New:      func() any { return new(Req) },
		Call: func(ctx *mcswire.Ctx, req any) (any, error) {
			return broadcastCall[Req, Resp](r, ctx, op, req.(*Req))
		},
	})
}

func broadcastCall[Req, Resp any](r *Router, ctx *mcswire.Ctx, op string, req *Req) (*Resp, error) {
	var first *Resp
	for i, b := range r.backends {
		resp, err := call[Resp](r, ctx, b, op, req, fmt.Sprintf("#%d", i))
		if err != nil {
			// Surviving shards already applied the mutation; the derived
			// idempotency keys make the client's retry of the whole
			// broadcast safe (applied shards answer from replay cache).
			return nil, err
		}
		if first == nil {
			first = resp
		}
	}
	return first, nil
}

// pinned registers op as a forward to the first shard: read-only lookups of
// broadcast-replicated state, identical on every shard by construction.
func pinned[Req, Resp any](r *Router, op string) {
	r.table.Register(mcswire.Handler{
		Name:     op,
		Mutating: mcswire.MutatingOps[op],
		New:      func() any { return new(Req) },
		Call: func(ctx *mcswire.Ctx, req any) (any, error) {
			return call[Resp](r, ctx, r.backends[0], op, req.(*Req), "")
		},
	})
}

// buildTable registers every routed operation. Single-collection operations
// (all mutations, lookups, contents listings — the collection is already the
// authorization and transaction scope) forward to exactly one shard;
// global-namespace mutations broadcast; cross-shard reads scatter-gather
// (scatter.go). discoverySummary is deliberately not mounted: the router is
// a router, not a catalog — federation indexes poll shards directly.
func (r *Router) buildTable() {
	// Liveness is answered locally: the router itself is the probed service.
	r.table.Register(mcswire.Handler{
		Name: "ping",
		New:  func() any { return new(mcswire.PingRequest) },
		Call: func(ctx *mcswire.Ctx, req any) (any, error) {
			return &mcswire.PingResponse{DN: ctx.DN}, nil
		},
	})

	// Files route by their logical name; createFile routes by its collection
	// when one is named so the file always lands on its collection's shard.
	// Deployments name files under the same prefix as their collection (the
	// convention the shard map encodes), so both keys agree.
	route1[mcswire.CreateFileRequest, mcswire.CreateFileResponse](r, "createFile",
		func(q *mcswire.CreateFileRequest) string {
			if q.Collection != "" {
				return q.Collection
			}
			return q.Name
		})
	route1[mcswire.GetFileRequest, mcswire.GetFileResponse](r, "getFile",
		func(q *mcswire.GetFileRequest) string { return q.Name })
	route1[mcswire.FileVersionsRequest, mcswire.FileVersionsResponse](r, "fileVersions",
		func(q *mcswire.FileVersionsRequest) string { return q.Name })
	route1[mcswire.UpdateFileRequest, mcswire.UpdateFileResponse](r, "updateFile",
		func(q *mcswire.UpdateFileRequest) string { return q.Name })
	route1[mcswire.DeleteFileRequest, mcswire.DeleteFileResponse](r, "deleteFile",
		func(q *mcswire.DeleteFileRequest) string { return q.Name })
	route1[mcswire.AddProvenanceRequest, mcswire.AddProvenanceResponse](r, "addProvenance",
		func(q *mcswire.AddProvenanceRequest) string { return q.Name })
	route1[mcswire.GetProvenanceRequest, mcswire.GetProvenanceResponse](r, "getProvenance",
		func(q *mcswire.GetProvenanceRequest) string { return q.Name })

	// moveFile is single-shard only: collections are the transaction scope,
	// and a cross-shard move would need a distributed transaction this
	// design deliberately avoids.
	r.table.Register(mcswire.Handler{
		Name:     "moveFile",
		Mutating: true,
		New:      func() any { return new(mcswire.MoveFileRequest) },
		Call: func(ctx *mcswire.Ctx, req any) (any, error) {
			q := req.(*mcswire.MoveFileRequest)
			b, err := r.owner(q.Name)
			if err != nil {
				return nil, err
			}
			if q.Collection != "" {
				dst, err := r.owner(q.Collection)
				if err != nil {
					return nil, err
				}
				if dst != b {
					return nil, fmt.Errorf("%w: cross-shard move: file %q is on %s but collection %q is on %s",
						core.ErrInvalidInput, q.Name, b.name, q.Collection, dst.name)
				}
			}
			return call[mcswire.MoveFileResponse](r, ctx, b, "moveFile", q, "")
		},
	})

	// batchWrite keeps its all-or-nothing contract by requiring every op in
	// the batch to route to one shard; the whole batch then forwards as-is.
	r.table.Register(mcswire.Handler{
		Name:     "batchWrite",
		Mutating: true,
		New:      func() any { return new(mcswire.BatchWriteRequest) },
		Call: func(ctx *mcswire.Ctx, req any) (any, error) {
			q := req.(*mcswire.BatchWriteRequest)
			var b *backend
			for i, op := range q.Ops {
				key, err := batchOpKey(op)
				if err != nil {
					return nil, fmt.Errorf("%w: batch op %d: %v", core.ErrInvalidInput, i, err)
				}
				owner, err := r.owner(key)
				if err != nil {
					return nil, err
				}
				if b == nil {
					b = owner
				} else if owner != b {
					return nil, fmt.Errorf("%w: batch spans shards: op %d (%q) routes to %s, earlier ops to %s — split the batch per shard",
						core.ErrInvalidInput, i, key, owner.name, b.name)
				}
			}
			if b == nil {
				b = r.backends[0] // empty batch: any shard validates it
			}
			return call[mcswire.BatchWriteResponse](r, ctx, b, "batchWrite", q, "")
		},
	})

	// Collections route by name; contents listings are single-shard because
	// a collection subtree never spans shards.
	route1[mcswire.CreateCollectionRequest, mcswire.CreateCollectionResponse](r, "createCollection",
		func(q *mcswire.CreateCollectionRequest) string { return q.Name })
	route1[mcswire.GetCollectionRequest, mcswire.GetCollectionResponse](r, "getCollection",
		func(q *mcswire.GetCollectionRequest) string { return q.Name })
	route1[mcswire.DeleteCollectionRequest, mcswire.DeleteCollectionResponse](r, "deleteCollection",
		func(q *mcswire.DeleteCollectionRequest) string { return q.Name })
	route1[mcswire.CollectionContentsPageRequest, mcswire.CollectionContentsPageResponse](r, "collectionContentsPage",
		func(q *mcswire.CollectionContentsPageRequest) string { return q.Name })
	r.registerCollectionContents()

	// Views route by view name and are single-shard; deployments name a view
	// under the prefix of the objects it aggregates.
	route1[mcswire.CreateViewRequest, mcswire.CreateViewResponse](r, "createView",
		func(q *mcswire.CreateViewRequest) string { return q.Name })
	route1[mcswire.DeleteViewRequest, mcswire.DeleteViewResponse](r, "deleteView",
		func(q *mcswire.DeleteViewRequest) string { return q.Name })
	route1[mcswire.ViewContentsRequest, mcswire.ViewContentsResponse](r, "viewContents",
		func(q *mcswire.ViewContentsRequest) string { return q.Name })
	route1[mcswire.ExpandViewRequest, mcswire.ExpandViewResponse](r, "expandView",
		func(q *mcswire.ExpandViewRequest) string { return q.Name })
	route1[mcswire.AddToViewRequest, mcswire.AddToViewResponse](r, "addToView",
		func(q *mcswire.AddToViewRequest) string { return q.View })
	route1[mcswire.RemoveFromViewRequest, mcswire.RemoveFromViewResponse](r, "removeFromView",
		func(q *mcswire.RemoveFromViewRequest) string { return q.View })

	// Attribute bindings, annotations and audit trails live with the object.
	route1[mcswire.SetAttributeRequest, mcswire.SetAttributeResponse](r, "setAttribute",
		func(q *mcswire.SetAttributeRequest) string { return q.Object })
	route1[mcswire.UnsetAttributeRequest, mcswire.UnsetAttributeResponse](r, "unsetAttribute",
		func(q *mcswire.UnsetAttributeRequest) string { return q.Object })
	route1[mcswire.GetAttributesRequest, mcswire.GetAttributesResponse](r, "getAttributes",
		func(q *mcswire.GetAttributesRequest) string { return q.Object })
	route1[mcswire.AnnotateRequest, mcswire.AnnotateResponse](r, "annotate",
		func(q *mcswire.AnnotateRequest) string { return q.Object })
	route1[mcswire.GetAnnotationsRequest, mcswire.GetAnnotationsResponse](r, "getAnnotations",
		func(q *mcswire.GetAnnotationsRequest) string { return q.Object })
	route1[mcswire.AuditLogRequest, mcswire.AuditLogResponse](r, "auditLog",
		func(q *mcswire.AuditLogRequest) string { return q.Object })

	// Object-scoped grants route with the object; global grants (Object "")
	// are namespace-wide policy and broadcast like other global mutations.
	r.registerGrantRevoke()

	// Global-namespace mutations broadcast; their read-backs pin to the
	// first shard (replicated state is identical everywhere).
	broadcast[mcswire.DefineAttributeRequest, mcswire.DefineAttributeResponse](r, "defineAttribute")
	broadcast[mcswire.RegisterWriterRequest, mcswire.RegisterWriterResponse](r, "registerWriter")
	broadcast[mcswire.RegisterExternalCatalogRequest, mcswire.RegisterExternalCatalogResponse](r, "registerExternalCatalog")
	pinned[mcswire.ListAttributeDefsRequest, mcswire.ListAttributeDefsResponse](r, "listAttributeDefs")
	pinned[mcswire.GetWriterRequest, mcswire.GetWriterResponse](r, "getWriter")
	pinned[mcswire.ListExternalCatalogsRequest, mcswire.ListExternalCatalogsResponse](r, "listExternalCatalogs")

	// Cross-shard reads scatter-gather.
	r.registerScatterOps()
}

// registerGrantRevoke mounts grant and revoke: keyed by object when one is
// named, broadcast when the grant is global.
func (r *Router) registerGrantRevoke() {
	r.table.Register(mcswire.Handler{
		Name:     "grant",
		Mutating: true,
		New:      func() any { return new(mcswire.GrantRequest) },
		Call: func(ctx *mcswire.Ctx, req any) (any, error) {
			q := req.(*mcswire.GrantRequest)
			if q.Object == "" {
				return broadcastCall[mcswire.GrantRequest, mcswire.GrantResponse](r, ctx, "grant", q)
			}
			b, err := r.owner(q.Object)
			if err != nil {
				return nil, err
			}
			return call[mcswire.GrantResponse](r, ctx, b, "grant", q, "")
		},
	})
	r.table.Register(mcswire.Handler{
		Name:     "revoke",
		Mutating: true,
		New:      func() any { return new(mcswire.RevokeRequest) },
		Call: func(ctx *mcswire.Ctx, req any) (any, error) {
			q := req.(*mcswire.RevokeRequest)
			if q.Object == "" {
				return broadcastCall[mcswire.RevokeRequest, mcswire.RevokeResponse](r, ctx, "revoke", q)
			}
			b, err := r.owner(q.Object)
			if err != nil {
				return nil, err
			}
			return call[mcswire.RevokeResponse](r, ctx, b, "revoke", q, "")
		},
	})
}

// registerCollectionContents mounts collectionContents with both the unary
// and the streamed (NDJSON passthrough) paths.
func (r *Router) registerCollectionContents() {
	r.table.Register(mcswire.Handler{
		Name: "collectionContents",
		New:  func() any { return new(mcswire.CollectionContentsRequest) },
		Call: func(ctx *mcswire.Ctx, req any) (any, error) {
			q := req.(*mcswire.CollectionContentsRequest)
			b, err := r.owner(q.Name)
			if err != nil {
				return nil, err
			}
			return call[mcswire.CollectionContentsResponse](r, ctx, b, "collectionContents", q, "")
		},
		Stream: func(ctx *mcswire.Ctx, req any, emit func(row any) error) error {
			q := req.(*mcswire.CollectionContentsRequest)
			b, err := r.owner(q.Name)
			if err != nil {
				return err
			}
			injectCaller(q, ctx.DN)
			cctx, cancel := context.WithTimeout(context.Background(), r.callTimeout)
			defer cancel()
			err = b.client.StreamCtx(cctx, "collectionContents", forwardHeaders(ctx, "collectionContents", ""), q,
				func() any { return new(mcswire.ContentsRow) },
				func(row any) error { return emit(row) })
			return r.mapBackendError(b, err)
		},
	})
}

// batchOpKey extracts the routing name of one batched mutation.
func batchOpKey(op mcswire.WireBatchOp) (string, error) {
	switch {
	case op.Create != nil:
		if op.Create.Collection != "" {
			return op.Create.Collection, nil
		}
		return op.Create.Name, nil
	case op.Update != nil:
		return op.Update.Name, nil
	case op.Delete != nil:
		return op.Delete.Name, nil
	case op.SetAttr != nil:
		return op.SetAttr.Object, nil
	case op.Annotate != nil:
		return op.Annotate.Object, nil
	}
	return "", fmt.Errorf("empty batch op")
}

// ServeHTTP routes diagnostics, then the JSON wire, then SOAP — the same
// surface a single mcsd presents, so clients and probes need no
// router-specific configuration.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if r.metrics != nil {
		switch req.URL.Path {
		case "/metrics":
			r.serveMetrics(w, req)
			return
		case "/healthz":
			r.serveHealthz(w, req)
			return
		case "/statz":
			r.serveStatz(w, req)
			return
		}
	}
	if strings.HasPrefix(req.URL.Path, jsonwire.Prefix) {
		r.json.ServeHTTP(w, req)
		return
	}
	r.soap.ServeHTTP(w, req)
}

func (r *Router) serveMetrics(w http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		r.metrics.WriteJSON(w) //nolint:errcheck // best-effort response write
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.metrics.WritePrometheus(w) //nolint:errcheck // best-effort response write
}

// serveHealthz probes every shard with a cheap ping. The router is healthy
// while at least one shard answers — single-shard operations on surviving
// shards keep succeeding — and reports "degraded" with the unreachable
// endpoints listed; it only goes 503 when no shard answers at all.
func (r *Router) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	down := r.probeShards()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case len(down) == 0:
		io.WriteString(w, "ok\n") //nolint:errcheck // best-effort response write
	case len(down) < len(r.backends):
		fmt.Fprintf(w, "degraded: unreachable shards: %s\n", strings.Join(down, ", "))
	default:
		http.Error(w, fmt.Sprintf("all shards unreachable: %s", strings.Join(down, ", ")),
			http.StatusServiceUnavailable)
	}
}

// probeShards pings every shard concurrently and returns the endpoints that
// failed to answer.
func (r *Router) probeShards() []string {
	errs := make([]error, len(r.backends))
	var wg sync.WaitGroup
	for i, b := range r.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			errs[i] = b.client.CallCtx(ctx, "ping", &mcswire.PingRequest{}, &mcswire.PingResponse{})
		}(i, b)
	}
	wg.Wait()
	var down []string
	for i, err := range errs {
		if err != nil {
			down = append(down, r.backends[i].name)
		}
	}
	return down
}

func (r *Router) serveStatz(w http.ResponseWriter, _ *http.Request) {
	now := r.now()
	shards := make([]status, len(r.backends))
	for i, b := range r.backends {
		shards[i] = b.status(now)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct { //nolint:errcheck // best-effort response write
		Role                string   `json:"role"`
		UptimeSeconds       int64    `json:"uptime_seconds"`
		Shards              []status `json:"shards"`
		ScatterOps          int64    `json:"scatter_ops"`
		ScatterSubqueries   int64    `json:"scatter_subqueries"`
		ScatterFanoutMax    int64    `json:"scatter_fanout_max"`
		ScatterFanoutMean   float64  `json:"scatter_fanout_mean"`
		BloomFalsePositives int64    `json:"bloom_fp_subqueries"`
	}{
		Role:                "router",
		UptimeSeconds:       int64(now.Sub(r.started).Seconds()),
		Shards:              shards,
		ScatterOps:          r.fanout.Count(),
		ScatterSubqueries:   r.fanout.Sum(),
		ScatterFanoutMax:    r.fanout.Max(),
		ScatterFanoutMean:   r.fanout.Mean(),
		BloomFalsePositives: r.bloomFP.Load(),
	})
}
