package shard

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mcs/internal/core"
	"mcs/internal/mcswire"
	"mcs/internal/obs"
)

// candidate is one shard selected for a scatter: screened marks backends a
// fresh bloom summary positively admitted (so an empty result counts as a
// bloom false positive in the metrics).
type candidate struct {
	b        *backend
	screened bool
}

// screenQuery selects the shards a discovery query must visit. Shards whose
// fresh bloom summary proves "no object here can match" are screened out;
// everything else — stale summary, missing summary, unscreenable predicate
// shape — is included. Summaries index file attribute pairs only, so only
// file-target queries screen at all. A predicate that fails to parse
// disables screening entirely: every shard then reproduces exactly the
// invalid-input error a direct server would report.
func (r *Router) screenQuery(target string, preds []mcswire.WirePredicate) []candidate {
	q, err := coreQuery(target, preds)
	screenable := err == nil && (target == "" || target == string(core.ObjectFile))
	now := r.now()
	cands := make([]candidate, 0, len(r.backends))
	for _, b := range r.backends {
		if screenable {
			if sum, ok := b.freshSummary(now, r.ttl); ok {
				if !sum.MayMatch(q) {
					continue
				}
				cands = append(cands, candidate{b: b, screened: true})
				continue
			}
		}
		cands = append(cands, candidate{b: b})
	}
	return cands
}

// coreQuery mirrors the server's queryFromWire: the router evaluates the
// same parsed query against summaries that the shard will evaluate against
// its catalog.
func coreQuery(target string, preds []mcswire.WirePredicate) (core.Query, error) {
	q := core.Query{Target: core.ObjectType(target)}
	for _, wp := range preds {
		v, err := core.ParseAttrValue(core.AttrType(wp.Type), wp.Value)
		if err != nil {
			return core.Query{}, err
		}
		q.Predicates = append(q.Predicates, core.Predicate{
			Attribute: wp.Attribute, Op: core.Op(wp.Op), Value: v,
		})
	}
	return q, nil
}

// partialError reports a scatter that lost one or more shards while others
// answered. It unwraps to mcswire.ErrPartialResult only — deliberately NOT
// to the per-shard cause — so a partial result is never mistaken for a
// retryable transport failure (retrying cannot conjure the dead shard's
// rows) and maps to the PartialResult wire code, not the cause's.
type partialError struct {
	failed []string // shard endpoints that failed
	cause  error    // first shard error, for the message
}

func (e *partialError) Error() string {
	return fmt.Sprintf("%v: shards %s failed: %v",
		mcswire.ErrPartialResult, strings.Join(e.failed, ", "), e.cause)
}

func (e *partialError) Unwrap() error { return mcswire.ErrPartialResult }

// gather resolves a scatter's errors. All-shards-failed with one shared
// sentinel keeps the shards' verdict (a total Unavailable outage stays
// retryable, a unanimous Denied stays Denied); a mixed or partial failure
// becomes ErrPartialResult.
func (r *Router) gather(cands []candidate, errs []error) error {
	var failed []string
	var firstErr error
	sameCode, code := true, ""
	for i, err := range errs {
		if err == nil {
			continue
		}
		failed = append(failed, cands[i].b.name)
		if firstErr == nil {
			firstErr = err
			code = mcswire.CodeForError(err)
		} else if mcswire.CodeForError(err) != code {
			sameCode = false
		}
	}
	if firstErr == nil {
		return nil
	}
	if len(failed) == len(cands) && sameCode && code != "" {
		return firstErr
	}
	return &partialError{failed: failed, cause: firstErr}
}

// scatterCall is the common unary scatter body: inject the authenticated
// caller once, fan out concurrently, account bloom false positives via
// empty, then gather errors. resps[i]/errs[i] belong to cands[i].
func scatterCall[Req, Resp any](r *Router, ctx *mcswire.Ctx, op string, req *Req, cands []candidate, empty func(*Resp) bool) ([]*Resp, error) {
	injectCaller(req, ctx.DN)
	hdr := forwardHeaders(ctx, op, "")
	resps := make([]*Resp, len(cands))
	errs := make([]error, len(cands))
	var wg sync.WaitGroup
	for i, c := range cands {
		wg.Add(1)
		go func(i int, c candidate) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(context.Background(), r.callTimeout)
			defer cancel()
			var om *obs.OpMetrics
			if r.metrics != nil {
				om = r.metrics.TransportOp("shard:"+c.b.name, op)
				om.Begin()
			}
			start := time.Now()
			resp := new(Resp)
			err := c.b.client.CallHdrCtx(cctx, op, hdr, req, resp)
			if om != nil {
				om.End(time.Since(start), err)
			}
			c.b.forwarded.Add(1)
			if err != nil {
				errs[i] = r.mapBackendError(c.b, err)
				return
			}
			resps[i] = resp
		}(i, c)
	}
	wg.Wait()
	r.fanout.Observe(len(cands))
	for i, resp := range resps {
		if errs[i] == nil && cands[i].screened && empty(resp) {
			r.bloomFP.Add(1)
		}
	}
	if err := r.gather(cands, errs); err != nil {
		return nil, err
	}
	return resps, nil
}

// registerScatterOps mounts the cross-shard reads: query (unary + streamed),
// queryAttrs, queryPage, listCollections and stats.
func (r *Router) registerScatterOps() {
	r.table.Register(mcswire.Handler{
		Name: "query",
		New:  func() any { return new(mcswire.QueryRequest) },
		Call: func(ctx *mcswire.Ctx, req any) (any, error) {
			q := req.(*mcswire.QueryRequest)
			cands := r.screenQuery(q.Target, q.Predicates)
			resps, err := scatterCall[mcswire.QueryRequest, mcswire.QueryResponse](
				r, ctx, "query", q, cands,
				func(resp *mcswire.QueryResponse) bool { return len(resp.Names) == 0 })
			if err != nil {
				return nil, err
			}
			// Shards are disjoint, so the union has no duplicates; each shard
			// applied Limit locally, so the union is a superset of the global
			// top-Limit and truncating the sorted union is exact.
			var names []string
			for _, resp := range resps {
				names = append(names, resp.Names...)
			}
			sort.Strings(names)
			if q.Limit > 0 && len(names) > q.Limit {
				names = names[:q.Limit]
			}
			return &mcswire.QueryResponse{Names: names}, nil
		},
		Stream: func(ctx *mcswire.Ctx, req any, emit func(row any) error) error {
			return r.streamQuery(ctx, req.(*mcswire.QueryRequest), emit)
		},
	})

	r.table.Register(mcswire.Handler{
		Name: "queryAttrs",
		New:  func() any { return new(mcswire.QueryAttrsRequest) },
		Call: func(ctx *mcswire.Ctx, req any) (any, error) {
			q := req.(*mcswire.QueryAttrsRequest)
			cands := r.screenQuery(q.Target, q.Predicates)
			resps, err := scatterCall[mcswire.QueryAttrsRequest, mcswire.QueryAttrsResponse](
				r, ctx, "queryAttrs", q, cands,
				func(resp *mcswire.QueryAttrsResponse) bool { return len(resp.Results) == 0 })
			if err != nil {
				return nil, err
			}
			var results []mcswire.WireQueryResult
			for _, resp := range resps {
				results = append(results, resp.Results...)
			}
			sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
			if q.Limit > 0 && len(results) > q.Limit {
				results = results[:q.Limit]
			}
			return &mcswire.QueryAttrsResponse{Results: results}, nil
		},
	})

	// listCollections scatters unscreened: its LIKE pattern is opaque to
	// bloom summaries (which index attribute pairs, not name shapes).
	r.table.Register(mcswire.Handler{
		Name: "listCollections",
		New:  func() any { return new(mcswire.ListCollectionsRequest) },
		Call: func(ctx *mcswire.Ctx, req any) (any, error) {
			q := req.(*mcswire.ListCollectionsRequest)
			cands := r.allCandidates()
			resps, err := scatterCall[mcswire.ListCollectionsRequest, mcswire.ListCollectionsResponse](
				r, ctx, "listCollections", q, cands,
				func(resp *mcswire.ListCollectionsResponse) bool { return len(resp.Names) == 0 })
			if err != nil {
				return nil, err
			}
			var names []string
			for _, resp := range resps {
				names = append(names, resp.Names...)
			}
			sort.Strings(names)
			return &mcswire.ListCollectionsResponse{Names: names}, nil
		},
	})

	// stats sums per-shard row counts, except AttrDefs: attribute
	// definitions are broadcast-replicated to every shard, so the first
	// shard's count is the deployment's count — summing would multiply it.
	r.table.Register(mcswire.Handler{
		Name: "stats",
		New:  func() any { return new(mcswire.StatsRequest) },
		Call: func(ctx *mcswire.Ctx, req any) (any, error) {
			q := req.(*mcswire.StatsRequest)
			cands := r.allCandidates()
			resps, err := scatterCall[mcswire.StatsRequest, mcswire.StatsResponse](
				r, ctx, "stats", q, cands,
				func(*mcswire.StatsResponse) bool { return false })
			if err != nil {
				return nil, err
			}
			out := &mcswire.StatsResponse{AttrDefs: resps[0].AttrDefs}
			for _, resp := range resps {
				out.Files += resp.Files
				out.Collections += resp.Collections
				out.Views += resp.Views
				out.Attributes += resp.Attributes
			}
			return out, nil
		},
	})

	r.table.Register(mcswire.Handler{
		Name: "queryPage",
		New:  func() any { return new(mcswire.QueryPageRequest) },
		Call: func(ctx *mcswire.Ctx, req any) (any, error) {
			return r.queryPage(ctx, req.(*mcswire.QueryPageRequest))
		},
	})
}

// allCandidates returns every backend, unscreened.
func (r *Router) allCandidates() []candidate {
	cands := make([]candidate, len(r.backends))
	for i, b := range r.backends {
		cands[i] = candidate{b: b}
	}
	return cands
}

// --- Composed pagination ---

// pageToken is the router's composed continuation token: which shard (by
// index into the deterministic sorted-endpoint order) the scan is on, plus
// that shard's own opaque token. Shard tokens are stateless cursor
// encodings, so a composed token survives both shard and router restarts.
type pageToken struct {
	Shard int    `json:"s"`
	Inner string `json:"t,omitempty"`
}

func encodePageToken(t pageToken) string {
	raw, _ := json.Marshal(t)
	return base64.URLEncoding.EncodeToString(raw)
}

func decodePageToken(s string) (pageToken, error) {
	var t pageToken
	raw, err := base64.URLEncoding.DecodeString(s)
	if err == nil {
		err = json.Unmarshal(raw, &t)
	}
	if err != nil {
		return pageToken{}, fmt.Errorf("%w: malformed page token", core.ErrInvalidInput)
	}
	return t, nil
}

// queryPage walks the shards in deterministic order, one shard at a time,
// composing each shard's continuation token into the router's own. Pages
// arrive shard-grouped rather than globally sorted; a full iteration yields
// exactly the union of the shards' results.
func (r *Router) queryPage(ctx *mcswire.Ctx, q *mcswire.QueryPageRequest) (*mcswire.QueryPageResponse, error) {
	tok := pageToken{}
	if q.Token != "" {
		var err error
		if tok, err = decodePageToken(q.Token); err != nil {
			return nil, err
		}
	}
	if tok.Shard < 0 || tok.Shard >= len(r.backends) {
		return nil, fmt.Errorf("%w: page token names shard %d of %d", core.ErrInvalidInput, tok.Shard, len(r.backends))
	}
	for {
		b := r.backends[tok.Shard]
		fwd := *q
		fwd.Token = tok.Inner
		resp, err := call[mcswire.QueryPageResponse](r, ctx, b, "queryPage", &fwd, "")
		if err != nil {
			return nil, err
		}
		if resp.Next != "" {
			return &mcswire.QueryPageResponse{
				Names: resp.Names,
				Next:  encodePageToken(pageToken{Shard: tok.Shard, Inner: resp.Next}),
			}, nil
		}
		// This shard is exhausted; hand the scan to the next one.
		if tok.Shard+1 < len(r.backends) {
			if len(resp.Names) > 0 {
				return &mcswire.QueryPageResponse{
					Names: resp.Names,
					Next:  encodePageToken(pageToken{Shard: tok.Shard + 1}),
				}, nil
			}
			// Empty final page: advance immediately rather than returning a
			// zero-row page mid-scan.
			tok = pageToken{Shard: tok.Shard + 1}
			continue
		}
		return &mcswire.QueryPageResponse{Names: resp.Names}, nil
	}
}

// streamQuery serves the streamed query by merging the shards' individually
// sorted streams into one globally sorted stream, row by row.
func (r *Router) streamQuery(ctx *mcswire.Ctx, q *mcswire.QueryRequest, emit func(row any) error) error {
	cands := r.screenQuery(q.Target, q.Predicates)
	injectCaller(q, ctx.DN)
	hdr := forwardHeaders(ctx, "query", "")

	// Stream without a limit shard-side: the global limit can only be
	// applied after the merge (any one shard might hold all the winners).
	fwd := *q
	fwd.Limit = 0

	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	chans := make([]chan string, len(cands))
	errs := make([]error, len(cands))
	counts := make([]int, len(cands))
	var wg sync.WaitGroup
	for i, c := range cands {
		chans[i] = make(chan string, 64)
		wg.Add(1)
		go func(i int, c candidate) {
			defer wg.Done()
			defer close(chans[i])
			err := c.b.client.StreamCtx(cctx, "query", hdr, &fwd,
				func() any { return new(mcswire.QueryRow) },
				func(row any) error {
					select {
					case chans[i] <- row.(*mcswire.QueryRow).Name:
						counts[i]++
						return nil
					case <-cctx.Done():
						return cctx.Err()
					}
				})
			c.b.forwarded.Add(1)
			// This write precedes the deferred close(chans[i]), so the merge
			// loop observing the close also observes the error.
			if err != nil && cctx.Err() == nil {
				errs[i] = r.mapBackendError(c.b, err)
			}
		}(i, c)
	}
	r.fanout.Observe(len(cands))

	// Linear-scan k-way merge: per-shard streams are name-sorted, so the
	// smallest head across shards is the globally next row.
	heads := make([]*string, len(cands))
	open := make([]bool, len(cands))
	for i := range cands {
		open[i] = true
	}
	sent := 0
	for {
		minIdx := -1
		for i := range cands {
			if heads[i] == nil && open[i] {
				name, ok := <-chans[i]
				if !ok {
					open[i] = false
					continue
				}
				heads[i] = &name
			}
			if heads[i] != nil && (minIdx == -1 || *heads[i] < *heads[minIdx]) {
				minIdx = i
			}
		}
		if minIdx == -1 {
			break
		}
		if err := emit(mcswire.QueryRow{Name: *heads[minIdx]}); err != nil {
			cancel()
			wg.Wait()
			return err
		}
		heads[minIdx] = nil
		sent++
		if q.Limit > 0 && sent >= q.Limit {
			// Limit reached: tear the remaining shard streams down; their
			// cancellation errors are expected, not failures.
			cancel()
			wg.Wait()
			return nil
		}
	}
	wg.Wait()
	// All streams closed; surface shard failures and count bloom FPs.
	for i, c := range cands {
		if errs[i] == nil && c.screened && counts[i] == 0 {
			r.bloomFP.Add(1)
		}
	}
	return r.gather(cands, errs)
}
