package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses a textual fault schedule into rules. The grammar is a
// semicolon-separated list of rules, each a comma-separated list of k=v
// fields:
//
//	site=dispatch,op=createFile,kind=error,calls=1-3
//	site=transport,kind=drop,every=13;site=db,op=insert,kind=latency,delay=5ms,prob=0.1,times=100
//
// Fields:
//
//	site     dispatch | after | transport | db | wal   (required)
//	kind     error | latency | drop | partial    (required)
//	op       op name, or statement verb for site=db ("" = any)
//	reqid    exact request ID ("" = any)
//	calls    N or N-M: specific 1-based call numbers at (site, op)
//	every    fault every Nth call
//	prob     per-call probability in [0, 1]
//	times    stop after N injections from this rule
//	delay    Go duration (latency kind, or extra delay on any kind)
//	truncate bytes of response body to keep for kind=partial
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, rs := range strings.Split(spec, ";") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		var r Rule
		for _, field := range strings.Split(rs, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: field %q is not k=v", field)
			}
			var err error
			switch k {
			case "site":
				switch Site(v) {
				case SiteDispatch, SiteAfter, SiteTransport, SiteDB, SiteWAL:
					r.Site = Site(v)
				default:
					err = fmt.Errorf("unknown site %q", v)
				}
			case "kind":
				switch Kind(v) {
				case KindError, KindLatency, KindDrop, KindPartial:
					r.Kind = Kind(v)
				default:
					err = fmt.Errorf("unknown kind %q", v)
				}
			case "op":
				r.Op = v
			case "reqid":
				r.RequestID = v
			case "calls":
				r.Calls, err = parseCalls(v)
			case "every":
				r.Every, err = strconv.ParseUint(v, 10, 64)
			case "prob":
				r.Prob, err = strconv.ParseFloat(v, 64)
				if err == nil && (r.Prob < 0 || r.Prob > 1) {
					err = fmt.Errorf("prob %v out of [0, 1]", r.Prob)
				}
			case "times":
				r.Times, err = strconv.ParseUint(v, 10, 64)
			case "delay":
				r.Delay, err = time.ParseDuration(v)
			case "truncate":
				r.TruncateAt, err = strconv.Atoi(v)
			default:
				err = fmt.Errorf("unknown field %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("faultinject: rule %q: %v", rs, err)
			}
		}
		if r.Site == "" || r.Kind == "" {
			return nil, fmt.Errorf("faultinject: rule %q needs site= and kind=", rs)
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// parseCalls parses "N" or "N-M" into an explicit call-number list.
func parseCalls(v string) ([]uint64, error) {
	lo, hi, isRange := strings.Cut(v, "-")
	a, err := strconv.ParseUint(lo, 10, 64)
	if err != nil || a == 0 {
		return nil, fmt.Errorf("bad calls value %q (1-based)", v)
	}
	b := a
	if isRange {
		b, err = strconv.ParseUint(hi, 10, 64)
		if err != nil || b < a {
			return nil, fmt.Errorf("bad calls range %q", v)
		}
	}
	if b-a > 10000 {
		return nil, fmt.Errorf("calls range %q too wide", v)
	}
	out := make([]uint64, 0, b-a+1)
	for n := a; n <= b; n++ {
		out = append(out, n)
	}
	return out, nil
}
