// Package faultinject is a deterministic, seedable fault-injection layer
// for chaos-testing the metadata catalog service. Injection points ("sites")
// are threaded into the SOAP server dispatch path, the HTTP response
// transport, and the sqldb engine; each site asks an Injector whether the
// current call should fail, and how.
//
// Every decision is a pure function of the injector's seed, the rule set,
// and per-(site, op) call counters — no wall clock, no global rand — so a
// failure schedule observed once can be replayed exactly by re-running with
// the same seed.
package faultinject

import (
	"fmt"
	"sync"
	"time"
)

// Site names an injection point in the server stack.
type Site string

// Injection sites, in request order.
const (
	// SiteDispatch fires after the operation is decoded and resolved but
	// before its handler runs: the request fails without any effect.
	SiteDispatch Site = "dispatch"
	// SiteAfter fires after the handler has run (and committed) but before
	// the response is written: the effect is applied, the reply is lost.
	// This is the site that exercises idempotent retry.
	SiteAfter Site = "after"
	// SiteTransport fires while the response is being written: the
	// connection drops cleanly (drop) or mid-body (partial).
	SiteTransport Site = "transport"
	// SiteDB fires inside the database engine, once per statement; the op
	// name seen by rules is the statement verb ("select", "insert",
	// "update", "delete", "ddl"). A db fault aborts the statement and
	// rolls back any enclosing transaction.
	SiteDB Site = "db"
	// SiteWAL fires inside the write-ahead log; the op name is "append"
	// (one commit's record write — error aborts the commit before it is
	// published; partial simulates a torn write using truncate as the byte
	// count) or "fsync" (one group-commit flush — error fails every commit
	// the round covers).
	SiteWAL Site = "wal"
)

// Kind selects how an injected fault manifests.
type Kind string

// Fault kinds.
const (
	// KindError fails the call with the rule's Err (or the injector's
	// DefaultErr), surfaced to SOAP clients as an Unavailable fault.
	KindError Kind = "error"
	// KindLatency delays the call by the rule's Delay and then lets it
	// proceed normally.
	KindLatency Kind = "latency"
	// KindDrop severs the connection without writing a response.
	KindDrop Kind = "drop"
	// KindPartial writes a truncated response body under a full
	// Content-Length, then severs the connection (transport site only;
	// elsewhere it degrades to KindError).
	KindPartial Kind = "partial"
)

// Rule matches a subset of calls at one site and describes the fault to
// inject there. Zero-valued selectors match everything; Calls, Every and
// Prob additionally gate which of the matching calls actually fault (a call
// faults if ANY configured gate selects it; with no gates, every match
// faults).
type Rule struct {
	Site      Site   // required
	Op        string // op name (or db statement verb); "" matches any
	RequestID string // exact request ID; "" matches any

	Kind Kind // required

	Calls []uint64 // specific 1-based call numbers per (site, op)
	Every uint64   // every Nth call (0 = off)
	Prob  float64  // per-call probability in [0,1], seeded hash (0 = off)
	Times uint64   // stop after this many injections from this rule (0 = unlimited)

	Delay      time.Duration // latency to add (KindLatency, or extra on any kind)
	TruncateAt int           // bytes of response to keep for KindPartial (0 = half)
	Err        error         // error for KindError (nil = Injector.DefaultErr)
}

// Fault is one injection decision returned by Eval.
type Fault struct {
	Site       Site
	Op         string
	Kind       Kind
	Delay      time.Duration
	TruncateAt int
	Err        error
	Call       uint64 // 1-based call number at (Site, Op) that faulted
}

// Injector evaluates fault rules. It is safe for concurrent use.
type Injector struct {
	// DefaultErr backs KindError rules whose Err is nil. The server wires
	// this to its Unavailable sentinel so injected errors are retryable.
	DefaultErr error

	mu       sync.Mutex
	seed     uint64
	rules    []Rule
	fired    []uint64 // per-rule injection counts (Times enforcement)
	calls    map[string]uint64
	injected map[Site]uint64
	total    uint64
	enabled  bool
	sleep    func(time.Duration)
}

// New returns an enabled Injector with the given seed and rules.
func New(seed uint64, rules ...Rule) *Injector {
	return &Injector{
		seed:     seed,
		rules:    rules,
		fired:    make([]uint64, len(rules)),
		calls:    make(map[string]uint64),
		injected: make(map[Site]uint64),
		enabled:  true,
	}
}

// SetEnabled turns evaluation on or off. While disabled, Eval returns nil
// without counting the call — test fixtures disable the injector during
// setup and verification so those calls don't consume the fault schedule.
func (in *Injector) SetEnabled(v bool) {
	in.mu.Lock()
	in.enabled = v
	in.mu.Unlock()
}

// SetSleep overrides how latency faults wait (tests substitute a recorder
// for time.Sleep).
func (in *Injector) SetSleep(fn func(time.Duration)) {
	in.mu.Lock()
	in.sleep = fn
	in.mu.Unlock()
}

// Sleep waits for d using the configured sleep function.
func (in *Injector) Sleep(d time.Duration) {
	in.mu.Lock()
	fn := in.sleep
	in.mu.Unlock()
	if fn == nil {
		fn = time.Sleep
	}
	fn(d)
}

// Eval records one call at (site, op) and returns the fault to inject, or
// nil to proceed normally. The first matching rule wins. Safe on a nil
// receiver (returns nil), so call sites don't need injector presence checks.
func (in *Injector) Eval(site Site, op, requestID string) *Fault {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.enabled {
		return nil
	}
	key := string(site) + "|" + op
	in.calls[key]++
	n := in.calls[key]
	for i := range in.rules {
		r := &in.rules[i]
		if r.Site != site || (r.Op != "" && r.Op != op) || (r.RequestID != "" && r.RequestID != requestID) {
			continue
		}
		if r.Times > 0 && in.fired[i] >= r.Times {
			continue
		}
		if !in.selects(r, key, n) {
			continue
		}
		in.fired[i]++
		in.injected[site]++
		in.total++
		f := &Fault{
			Site: site, Op: op, Kind: r.Kind,
			Delay: r.Delay, TruncateAt: r.TruncateAt, Err: r.Err, Call: n,
		}
		if f.Err == nil {
			f.Err = in.DefaultErr
		}
		if f.Err == nil {
			f.Err = fmt.Errorf("faultinject: injected %s fault at %s/%s call %d", r.Kind, site, op, n)
		}
		return f
	}
	return nil
}

// selects reports whether rule r gates in call n of counter key. Called
// with in.mu held.
func (in *Injector) selects(r *Rule, key string, n uint64) bool {
	if len(r.Calls) == 0 && r.Every == 0 && r.Prob == 0 {
		return true
	}
	for _, c := range r.Calls {
		if c == n {
			return true
		}
	}
	if r.Every > 0 && n%r.Every == 0 {
		return true
	}
	if r.Prob > 0 && unitFloat(in.seed^fnv64(key)^n) < r.Prob {
		return true
	}
	return false
}

// Total returns the number of faults injected so far.
func (in *Injector) Total() uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.total
}

// Injected returns the number of faults injected at one site.
func (in *Injector) Injected(site Site) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected[site]
}

// CallCount returns how many calls have been evaluated at (site, op).
func (in *Injector) CallCount(site Site, op string) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[string(site)+"|"+op]
}

// Reset zeroes all counters, restarting the fault schedule with the same
// seed and rules.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.calls = make(map[string]uint64)
	in.injected = make(map[Site]uint64)
	in.fired = make([]uint64, len(in.rules))
	in.total = 0
}

// fnv64 is the FNV-1a hash of s.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// unitFloat maps x through a splitmix64 finalizer onto [0, 1).
func unitFloat(x uint64) float64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
