package faultinject

import (
	"errors"
	"testing"
	"time"
)

func schedule(in *Injector, site Site, op string, n int) []uint64 {
	var hits []uint64
	for i := 0; i < n; i++ {
		if f := in.Eval(site, op, ""); f != nil {
			hits = append(hits, f.Call)
		}
	}
	return hits
}

func TestCallsRuleDeterministic(t *testing.T) {
	in := New(1, Rule{Site: SiteDispatch, Op: "createFile", Kind: Kind("error"), Calls: []uint64{1, 2, 3}})
	got := schedule(in, SiteDispatch, "createFile", 10)
	want := []uint64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("faulted calls %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("faulted calls %v, want %v", got, want)
		}
	}
	if in.Total() != 3 || in.Injected(SiteDispatch) != 3 {
		t.Fatalf("Total=%d Injected=%d, want 3/3", in.Total(), in.Injected(SiteDispatch))
	}
	if in.CallCount(SiteDispatch, "createFile") != 10 {
		t.Fatalf("CallCount = %d, want 10", in.CallCount(SiteDispatch, "createFile"))
	}
}

func TestOpAndSiteFiltering(t *testing.T) {
	in := New(1, Rule{Site: SiteDB, Op: "insert", Kind: KindError})
	if f := in.Eval(SiteDB, "select", ""); f != nil {
		t.Fatalf("op filter leaked: %+v", f)
	}
	if f := in.Eval(SiteDispatch, "insert", ""); f != nil {
		t.Fatalf("site filter leaked: %+v", f)
	}
	if f := in.Eval(SiteDB, "insert", ""); f == nil {
		t.Fatal("matching call did not fault")
	}
}

func TestRequestIDFilter(t *testing.T) {
	in := New(1, Rule{Site: SiteDispatch, RequestID: "req-7", Kind: KindDrop})
	if f := in.Eval(SiteDispatch, "ping", "req-6"); f != nil {
		t.Fatalf("request-ID filter leaked: %+v", f)
	}
	f := in.Eval(SiteDispatch, "ping", "req-7")
	if f == nil || f.Kind != KindDrop {
		t.Fatalf("got %+v, want drop fault", f)
	}
}

func TestEveryAndTimes(t *testing.T) {
	in := New(1, Rule{Site: SiteTransport, Kind: KindDrop, Every: 3, Times: 2})
	got := schedule(in, SiteTransport, "query", 12)
	if len(got) != 2 || got[0] != 3 || got[1] != 6 {
		t.Fatalf("faulted calls %v, want [3 6]", got)
	}
}

func TestProbSeededAndReproducible(t *testing.T) {
	mk := func(seed uint64) []uint64 {
		in := New(seed, Rule{Site: SiteDispatch, Kind: KindError, Prob: 0.3})
		return schedule(in, SiteDispatch, "ping", 200)
	}
	a, b := mk(42), mk(42)
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("prob 0.3 faulted %d/200 calls", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %d vs %d faults", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at fault %d: call %d vs %d", i, a[i], b[i])
		}
	}
	if c := mk(43); len(c) == len(a) && func() bool {
		for i := range a {
			if a[i] != c[i] {
				return false
			}
		}
		return true
	}() {
		t.Fatal("different seeds produced an identical 200-call schedule")
	}
}

func TestDefaultErrAndRuleErr(t *testing.T) {
	sentinel := errors.New("unavailable")
	ruleErr := errors.New("disk on fire")
	in := New(1,
		Rule{Site: SiteDispatch, Op: "a", Kind: KindError},
		Rule{Site: SiteDispatch, Op: "b", Kind: KindError, Err: ruleErr},
	)
	in.DefaultErr = sentinel
	if f := in.Eval(SiteDispatch, "a", ""); !errors.Is(f.Err, sentinel) {
		t.Fatalf("default err = %v, want %v", f.Err, sentinel)
	}
	if f := in.Eval(SiteDispatch, "b", ""); !errors.Is(f.Err, ruleErr) {
		t.Fatalf("rule err = %v, want %v", f.Err, ruleErr)
	}
}

func TestSetEnabledSkipsCounting(t *testing.T) {
	in := New(1, Rule{Site: SiteDispatch, Kind: KindError, Calls: []uint64{1}})
	in.SetEnabled(false)
	for i := 0; i < 5; i++ {
		if f := in.Eval(SiteDispatch, "ping", ""); f != nil {
			t.Fatalf("disabled injector faulted: %+v", f)
		}
	}
	if in.CallCount(SiteDispatch, "ping") != 0 {
		t.Fatal("disabled injector counted calls")
	}
	in.SetEnabled(true)
	if f := in.Eval(SiteDispatch, "ping", ""); f == nil {
		t.Fatal("call 1 after enable did not fault")
	}
}

func TestNilInjectorIsSafe(t *testing.T) {
	var in *Injector
	if in.Eval(SiteDispatch, "ping", "") != nil || in.Total() != 0 || in.Injected(SiteDB) != 0 {
		t.Fatal("nil injector misbehaved")
	}
}

func TestSleepHook(t *testing.T) {
	in := New(1)
	var got time.Duration
	in.SetSleep(func(d time.Duration) { got = d })
	in.Sleep(42 * time.Millisecond)
	if got != 42*time.Millisecond {
		t.Fatalf("sleep hook got %v", got)
	}
}

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec(
		"site=dispatch,op=createFile,kind=error,calls=1-3;" +
			" site=transport,kind=partial,every=13,truncate=12 ;" +
			"site=db,op=insert,kind=latency,delay=5ms,prob=0.25,times=100,reqid=r9")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("got %d rules", len(rules))
	}
	r := rules[0]
	if r.Site != SiteDispatch || r.Op != "createFile" || r.Kind != KindError || len(r.Calls) != 3 || r.Calls[2] != 3 {
		t.Fatalf("rule 0 = %+v", r)
	}
	r = rules[1]
	if r.Site != SiteTransport || r.Kind != KindPartial || r.Every != 13 || r.TruncateAt != 12 {
		t.Fatalf("rule 1 = %+v", r)
	}
	r = rules[2]
	if r.Site != SiteDB || r.Op != "insert" || r.Kind != KindLatency ||
		r.Delay != 5*time.Millisecond || r.Prob != 0.25 || r.Times != 100 || r.RequestID != "r9" {
		t.Fatalf("rule 2 = %+v", r)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"kind=error",                       // missing site
		"site=dispatch",                    // missing kind
		"site=bogus,kind=error",            // bad site
		"site=db,kind=bogus",               // bad kind
		"site=db,kind=error,calls=0",       // calls are 1-based
		"site=db,kind=error,calls=5-2",     // inverted range
		"site=db,kind=error,prob=1.5",      // prob out of range
		"site=db,kind=error,delay=fast",    // bad duration
		"site=db,kind=error,banana=1",      // unknown field
		"site=db,kind=error,calls",         // not k=v
		"site=db,kind=error,calls=1-99999", // absurd range
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
	rules, err := ParseSpec(" ; ;")
	if err != nil || len(rules) != 0 {
		t.Fatalf("empty spec: rules=%v err=%v", rules, err)
	}
}
