package container

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestCreateAddExtract(t *testing.T) {
	s := NewService("svc")
	id := s.Create()
	if id == "" {
		t.Fatal("empty container id")
	}
	if err := s.Add(id, "obj1", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(id, "obj2", []byte("world")); err != nil {
		t.Fatal(err)
	}
	data, err := s.Extract(id, "obj1")
	if err != nil || string(data) != "hello" {
		t.Fatalf("Extract = %q, %v", data, err)
	}
	names, err := s.List(id)
	if err != nil || len(names) != 2 {
		t.Fatalf("List = %v, %v", names, err)
	}
}

func TestDuplicateObjectRejected(t *testing.T) {
	s := NewService("svc")
	id := s.Create()
	s.Add(id, "x", []byte("1")) //nolint:errcheck
	if err := s.Add(id, "x", []byte("2")); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestSealedContainerImmutable(t *testing.T) {
	s := NewService("svc")
	id := s.Create()
	s.Add(id, "x", []byte("1")) //nolint:errcheck
	if err := s.Seal(id); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(id, "y", []byte("2")); !errors.Is(err, ErrSealed) {
		t.Fatalf("err = %v", err)
	}
	// Extraction still works after sealing.
	if _, err := s.Extract(id, "x"); err != nil {
		t.Fatal(err)
	}
}

func TestExportRequiresSeal(t *testing.T) {
	s := NewService("svc")
	id := s.Create()
	s.Add(id, "x", []byte("1")) //nolint:errcheck
	if _, err := s.Export(id); !errors.Is(err, ErrNotSealed) {
		t.Fatalf("err = %v", err)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	src := NewService("src")
	id := src.Create()
	for i := 0; i < 50; i++ {
		if err := src.Add(id, fmt.Sprintf("obj-%02d", i), bytes.Repeat([]byte{byte(i)}, i*10)); err != nil {
			t.Fatal(err)
		}
	}
	src.Seal(id) //nolint:errcheck
	raw, err := src.Export(id)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewService("dst")
	if err := dst.Import("imported-1", raw); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("obj-%02d", i)
		want, _ := src.Extract(id, name)
		got, err := dst.Extract("imported-1", name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("object %s differs after import: %v", name, err)
		}
	}
	// Imported containers are sealed.
	if err := dst.Add("imported-1", "new", nil); !errors.Is(err, ErrSealed) {
		t.Fatalf("err = %v", err)
	}
}

func TestImportMalformed(t *testing.T) {
	s := NewService("svc")
	if err := s.Import("x", []byte("NOPE")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := s.Import("x", []byte("MCSC\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01")); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestImportDuplicateID(t *testing.T) {
	s := NewService("svc")
	id := s.Create()
	s.Seal(id) //nolint:errcheck
	raw, _ := s.Export(id)
	if err := s.Import("dup", raw); err != nil {
		t.Fatal(err)
	}
	if err := s.Import("dup", raw); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestMissingLookups(t *testing.T) {
	s := NewService("svc")
	if _, err := s.Extract("no", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.List("no"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Seal("no"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	id := s.Create()
	if _, err := s.Extract(id, "no"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestDataIsolation(t *testing.T) {
	s := NewService("svc")
	id := s.Create()
	buf := []byte("abc")
	s.Add(id, "x", buf) //nolint:errcheck
	buf[0] = 'Z'
	got, _ := s.Extract(id, "x")
	if got[0] != 'a' {
		t.Fatal("Add aliases caller buffer")
	}
	got[0] = 'Q'
	got2, _ := s.Extract(id, "x")
	if got2[0] != 'a' {
		t.Fatal("Extract aliases internal buffer")
	}
}

func TestContainersListing(t *testing.T) {
	s := NewService("svc")
	a := s.Create()
	b := s.Create()
	ids := s.Containers()
	if len(ids) != 2 || ids[0] != a || ids[1] != b {
		t.Fatalf("Containers = %v", ids)
	}
}
