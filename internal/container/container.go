// Package container implements the external container service referenced by
// the MCS schema: it groups large numbers of relatively small data objects
// into containers for efficient storage and transfer, and extracts
// individual objects on demand. The MCS stores only the (containerId,
// containerService) attributes; this service owns the container contents.
//
// The design follows the SRB container facility the paper cites: a
// container is built incrementally, sealed, and thereafter immutable; sealed
// containers can be shipped whole (e.g. over gridftp) and objects extracted
// at the far side.
package container

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Errors returned by the service.
var (
	ErrNotFound  = errors.New("container: not found")
	ErrSealed    = errors.New("container: container is sealed")
	ErrNotSealed = errors.New("container: container is not sealed")
	ErrExists    = errors.New("container: already exists")
)

// object is one member of a container.
type object struct {
	name string
	data []byte
}

// Container aggregates small objects under one identifier.
type Container struct {
	ID     string
	sealed bool
	objs   []object
	index  map[string]int
}

// Service manages containers. All methods are safe for concurrent use.
type Service struct {
	// Name identifies this service instance; it is what MCS stores in the
	// containerService attribute.
	Name string

	mu         sync.RWMutex
	containers map[string]*Container
	nextID     int
}

// NewService returns an empty container service.
func NewService(name string) *Service {
	return &Service{Name: name, containers: make(map[string]*Container)}
}

// Create opens a new container and returns its identifier.
func (s *Service) Create() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := fmt.Sprintf("%s-c%06d", s.Name, s.nextID)
	s.containers[id] = &Container{ID: id, index: make(map[string]int)}
	return id
}

// Add appends an object to an unsealed container.
func (s *Service) Add(containerID, objectName string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.containers[containerID]
	if !ok {
		return fmt.Errorf("%w: container %q", ErrNotFound, containerID)
	}
	if c.sealed {
		return fmt.Errorf("%w: %q", ErrSealed, containerID)
	}
	if _, dup := c.index[objectName]; dup {
		return fmt.Errorf("%w: object %q in %q", ErrExists, objectName, containerID)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.index[objectName] = len(c.objs)
	c.objs = append(c.objs, object{name: objectName, data: cp})
	return nil
}

// Seal freezes a container; sealed containers are immutable and exportable.
func (s *Service) Seal(containerID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.containers[containerID]
	if !ok {
		return fmt.Errorf("%w: container %q", ErrNotFound, containerID)
	}
	c.sealed = true
	return nil
}

// Extract returns one object's content from a container.
func (s *Service) Extract(containerID, objectName string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.containers[containerID]
	if !ok {
		return nil, fmt.Errorf("%w: container %q", ErrNotFound, containerID)
	}
	i, ok := c.index[objectName]
	if !ok {
		return nil, fmt.Errorf("%w: object %q in %q", ErrNotFound, objectName, containerID)
	}
	out := make([]byte, len(c.objs[i].data))
	copy(out, c.objs[i].data)
	return out, nil
}

// List returns the object names in a container, sorted.
func (s *Service) List(containerID string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.containers[containerID]
	if !ok {
		return nil, fmt.Errorf("%w: container %q", ErrNotFound, containerID)
	}
	names := make([]string, 0, len(c.objs))
	for _, o := range c.objs {
		names = append(names, o.name)
	}
	sort.Strings(names)
	return names, nil
}

// Export serializes a sealed container to a portable byte stream
// (magic, object count, then length-prefixed name/data pairs).
func (s *Service) Export(containerID string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.containers[containerID]
	if !ok {
		return nil, fmt.Errorf("%w: container %q", ErrNotFound, containerID)
	}
	if !c.sealed {
		return nil, fmt.Errorf("%w: %q", ErrNotSealed, containerID)
	}
	var buf bytes.Buffer
	buf.WriteString("MCSC")
	writeUvarint(&buf, uint64(len(c.objs)))
	for _, o := range c.objs {
		writeUvarint(&buf, uint64(len(o.name)))
		buf.WriteString(o.name)
		writeUvarint(&buf, uint64(len(o.data)))
		buf.Write(o.data)
	}
	return buf.Bytes(), nil
}

// Import registers an exported container under the given identifier.
// The imported container is sealed.
func (s *Service) Import(containerID string, raw []byte) error {
	r := bytes.NewReader(raw)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != "MCSC" {
		return errors.New("container: bad container stream magic")
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("container: read object count: %w", err)
	}
	c := &Container{ID: containerID, sealed: true, index: make(map[string]int)}
	for i := uint64(0); i < n; i++ {
		name, err := readBlob(r)
		if err != nil {
			return fmt.Errorf("container: read object name: %w", err)
		}
		data, err := readBlob(r)
		if err != nil {
			return fmt.Errorf("container: read object data: %w", err)
		}
		c.index[string(name)] = len(c.objs)
		c.objs = append(c.objs, object{name: string(name), data: data})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.containers[containerID]; dup {
		return fmt.Errorf("%w: container %q", ErrExists, containerID)
	}
	s.containers[containerID] = c
	return nil
}

// Containers lists the known container IDs, sorted.
func (s *Service) Containers() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.containers))
	for id := range s.containers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func readBlob(r *bytes.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) {
		return nil, errors.New("length exceeds remaining stream")
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, err
	}
	return out, nil
}
