package rls

import (
	"errors"
	"testing"
	"time"
)

// A failed initial push must leave the updater in a state where Stop is a
// safe no-op (regression test: Stop used to block forever here).
func TestUpdaterStopAfterFailedStart(t *testing.T) {
	u := &Updater{
		LRC: NewLRC("x"), TTL: time.Minute,
		Push: func(string, []string, *Bloom, time.Duration) error {
			return errors.New("index unreachable")
		},
	}
	if err := u.Start(); err == nil {
		t.Fatal("Start with failing push succeeded")
	}
	done := make(chan struct{})
	go func() {
		u.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop blocked after failed Start")
	}
}

func TestUpdaterDoubleStop(t *testing.T) {
	u := &Updater{
		LRC: NewLRC("x"), TTL: time.Minute, Interval: time.Hour,
		Push: func(string, []string, *Bloom, time.Duration) error { return nil },
	}
	if err := u.Start(); err != nil {
		t.Fatal(err)
	}
	u.Stop()
	u.Stop() // must not panic or block
}
