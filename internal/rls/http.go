package rls

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// HTTP bindings for the RLS, so the Figure-2 scenario (MCS query → RLS
// lookup → GridFTP transfer) runs over real network services. The original
// RLS spoke a custom RPC protocol; JSON over HTTP carries the same
// operations.

// Server exposes one LRC and one RLI over HTTP:
//
//	POST /lrc/add      {"lfn": ..., "pfn": ...}
//	POST /lrc/remove   {"lfn": ..., "pfn": ...}
//	GET  /lrc/lookup?lfn=...
//	GET  /rli/query?lfn=...
//	POST /rli/update   {"lrc": ..., "lfns": [...], "bloom": {...}, "ttlSeconds": n}
//
// Either component may be nil to serve only the other role.
type Server struct {
	LRC *LRC
	RLI *RLI
	mux *http.ServeMux
}

// NewServer wires the HTTP handlers around the given components.
func NewServer(lrc *LRC, rli *RLI) *Server {
	s := &Server{LRC: lrc, RLI: rli, mux: http.NewServeMux()}
	if lrc != nil {
		s.mux.HandleFunc("/lrc/add", s.handleAdd)
		s.mux.HandleFunc("/lrc/remove", s.handleRemove)
		s.mux.HandleFunc("/lrc/lookup", s.handleLookup)
	}
	if rli != nil {
		s.mux.HandleFunc("/rli/query", s.handleQuery)
		s.mux.HandleFunc("/rli/update", s.handleUpdate)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

type mappingRequest struct {
	LFN string `json:"lfn"`
	PFN string `json:"pfn"`
}

type updateRequest struct {
	LRC        string   `json:"lrc"`
	LFNs       []string `json:"lfns,omitempty"`
	Bloom      *Bloom   `json:"bloom,omitempty"`
	TTLSeconds int      `json:"ttlSeconds"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck // best-effort response write
}

func readJSON(r *http.Request, v any) error {
	raw, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, v)
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req mappingRequest
	if err := readJSON(r, &req); err != nil || req.LFN == "" || req.PFN == "" {
		http.Error(w, "bad mapping request", http.StatusBadRequest)
		return
	}
	s.LRC.Add(req.LFN, req.PFN)
	writeJSON(w, map[string]bool{"ok": true})
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	var req mappingRequest
	if err := readJSON(r, &req); err != nil {
		http.Error(w, "bad mapping request", http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]bool{"ok": s.LRC.Remove(req.LFN, req.PFN)})
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	lfn := r.URL.Query().Get("lfn")
	writeJSON(w, map[string][]string{"pfns": s.LRC.Lookup(lfn)})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	lfn := r.URL.Query().Get("lfn")
	writeJSON(w, map[string][]string{"lrcs": s.RLI.Query(lfn)})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	if err := readJSON(r, &req); err != nil || req.LRC == "" {
		http.Error(w, "bad update request", http.StatusBadRequest)
		return
	}
	ttl := time.Duration(req.TTLSeconds) * time.Second
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	if req.Bloom != nil {
		s.RLI.UpdateBloom(req.LRC, req.Bloom, ttl)
	} else {
		s.RLI.UpdateFull(req.LRC, req.LFNs, ttl)
	}
	writeJSON(w, map[string]bool{"ok": true})
}

// Client talks to LRC/RLI HTTP endpoints.
type Client struct {
	Endpoint string
	HTTP     *http.Client
}

// NewClient returns a client for an RLS server at endpoint.
func NewClient(endpoint string) *Client {
	return &Client{Endpoint: endpoint, HTTP: &http.Client{Timeout: 15 * time.Second}}
}

func (c *Client) post(path string, req, resp any) error {
	raw, err := json.Marshal(req)
	if err != nil {
		return err
	}
	httpResp, err := c.HTTP.Post(c.Endpoint+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(httpResp.Body, 4096))
		return fmt.Errorf("rls: %s: %s: %s", path, httpResp.Status, bytes.TrimSpace(body))
	}
	return json.NewDecoder(httpResp.Body).Decode(resp)
}

func (c *Client) get(path string, resp any) error {
	httpResp, err := c.HTTP.Get(c.Endpoint + path)
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return fmt.Errorf("rls: GET %s: %s", path, httpResp.Status)
	}
	return json.NewDecoder(httpResp.Body).Decode(resp)
}

// AddMapping registers lfn → pfn in the remote LRC.
func (c *Client) AddMapping(lfn, pfn string) error {
	var resp map[string]bool
	return c.post("/lrc/add", mappingRequest{LFN: lfn, PFN: pfn}, &resp)
}

// RemoveMapping deletes a mapping from the remote LRC.
func (c *Client) RemoveMapping(lfn, pfn string) error {
	var resp map[string]bool
	return c.post("/lrc/remove", mappingRequest{LFN: lfn, PFN: pfn}, &resp)
}

// Lookup returns the physical locations of lfn at the remote LRC.
func (c *Client) Lookup(lfn string) ([]string, error) {
	var resp map[string][]string
	if err := c.get("/lrc/lookup?lfn="+queryEscape(lfn), &resp); err != nil {
		return nil, err
	}
	return resp["pfns"], nil
}

// QueryRLI returns the LRCs that may hold replicas of lfn.
func (c *Client) QueryRLI(lfn string) ([]string, error) {
	var resp map[string][]string
	if err := c.get("/rli/query?lfn="+queryEscape(lfn), &resp); err != nil {
		return nil, err
	}
	return resp["lrcs"], nil
}

// SendUpdate pushes a soft-state update to the remote RLI (full list when
// bloom is nil).
func (c *Client) SendUpdate(lrcName string, lfns []string, bloom *Bloom, ttl time.Duration) error {
	var resp map[string]bool
	return c.post("/rli/update", updateRequest{
		LRC: lrcName, LFNs: lfns, Bloom: bloom, TTLSeconds: int(ttl / time.Second),
	}, &resp)
}

// queryEscape is a minimal percent-encoder for query values.
func queryEscape(s string) string {
	const hex = "0123456789ABCDEF"
	var out []byte
	for i := 0; i < len(s); i++ {
		ch := s[i]
		switch {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z', ch >= '0' && ch <= '9',
			ch == '-', ch == '_', ch == '.', ch == '~':
			out = append(out, ch)
		default:
			out = append(out, '%', hex[ch>>4], hex[ch&0xf])
		}
	}
	return string(out)
}
