// Package rls implements a Replica Location Service in the style of the
// Giggle framework (Chervenak et al., SC 2002), the companion service the
// MCS paper federates with: Local Replica Catalogs (LRCs) map logical file
// names to physical locations, and Replica Location Indices (RLIs) answer
// "which LRCs know this logical name" using soft-state summaries — either
// full name lists or compressed bloom filters — that expire unless
// refreshed.
package rls

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
)

// Bloom is a fixed-size bloom filter with k independent hash functions,
// used to compress LRC soft-state updates (Giggle's "compression of state
// updates" option).
type Bloom struct {
	bits []uint64
	m    uint64 // number of bits
	k    int    // number of hash functions
}

// NewBloom sizes a filter for n expected entries at false-positive rate p.
func NewBloom(n int, p float64) *Bloom {
	if n < 1 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Bloom{bits: make([]uint64, (m+63)/64), m: m, k: k}
}

// hashPair derives two independent 64-bit hashes of s (Kirsch–Mitzenmacher
// double hashing drives the k probes).
func hashPair(s string) (uint64, uint64) {
	h1 := fnv.New64a()
	h1.Write([]byte(s)) //nolint:errcheck // fnv never fails
	a := h1.Sum64()
	h2 := fnv.New64()
	h2.Write([]byte(s)) //nolint:errcheck // fnv never fails
	h2.Write([]byte{0x9e, 0x37})
	b := h2.Sum64() | 1 // odd so probes cover the space
	return a, b
}

// Add inserts s into the filter.
func (b *Bloom) Add(s string) {
	h1, h2 := hashPair(s)
	for i := 0; i < b.k; i++ {
		idx := (h1 + uint64(i)*h2) % b.m
		b.bits[idx/64] |= 1 << (idx % 64)
	}
}

// Test reports whether s may be in the filter (false positives possible,
// false negatives impossible).
func (b *Bloom) Test(s string) bool {
	h1, h2 := hashPair(s)
	for i := 0; i < b.k; i++ {
		idx := (h1 + uint64(i)*h2) % b.m
		if b.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// FillRatio returns the fraction of set bits (diagnostic).
func (b *Bloom) FillRatio() float64 {
	ones := 0
	for _, w := range b.bits {
		for ; w != 0; w &= w - 1 {
			ones++
		}
	}
	return float64(ones) / float64(b.m)
}

// bloomWire is the JSON encoding of a filter.
type bloomWire struct {
	M    uint64 `json:"m"`
	K    int    `json:"k"`
	Bits string `json:"bits"` // base64 of little-endian words
}

// MarshalJSON encodes the filter for soft-state transport.
func (b *Bloom) MarshalJSON() ([]byte, error) {
	raw := make([]byte, len(b.bits)*8)
	for i, w := range b.bits {
		for j := 0; j < 8; j++ {
			raw[i*8+j] = byte(w >> (8 * j))
		}
	}
	return json.Marshal(bloomWire{M: b.m, K: b.k, Bits: base64.StdEncoding.EncodeToString(raw)})
}

// UnmarshalJSON decodes a filter.
func (b *Bloom) UnmarshalJSON(data []byte) error {
	var w bloomWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	raw, err := base64.StdEncoding.DecodeString(w.Bits)
	if err != nil {
		return fmt.Errorf("rls: decode bloom bits: %w", err)
	}
	if w.M == 0 || w.K < 1 || w.K > 64 || uint64(len(raw))*8 < w.M {
		return fmt.Errorf("rls: malformed bloom filter")
	}
	b.m = w.M
	b.k = w.K
	b.bits = make([]uint64, len(raw)/8)
	for i := range b.bits {
		var v uint64
		for j := 0; j < 8; j++ {
			v |= uint64(raw[i*8+j]) << (8 * j)
		}
		b.bits[i] = v
	}
	return nil
}
