package rls

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// LRC is a Local Replica Catalog: authoritative logical-name → physical-
// file-name mappings for one site.
type LRC struct {
	// Name identifies this LRC in RLI indexes (typically its endpoint URL).
	Name string

	mu       sync.RWMutex
	mappings map[string]map[string]bool // lfn -> set of pfns
}

// NewLRC returns an empty local replica catalog.
func NewLRC(name string) *LRC {
	return &LRC{Name: name, mappings: make(map[string]map[string]bool)}
}

// Add registers a physical replica of a logical file.
func (l *LRC) Add(lfn, pfn string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	set, ok := l.mappings[lfn]
	if !ok {
		set = make(map[string]bool)
		l.mappings[lfn] = set
	}
	set[pfn] = true
}

// Remove deletes one replica mapping; it reports whether it existed.
func (l *LRC) Remove(lfn, pfn string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	set, ok := l.mappings[lfn]
	if !ok || !set[pfn] {
		return false
	}
	delete(set, pfn)
	if len(set) == 0 {
		delete(l.mappings, lfn)
	}
	return true
}

// Lookup returns the physical locations of a logical file at this site,
// sorted for determinism.
func (l *LRC) Lookup(lfn string) []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	set := l.mappings[lfn]
	pfns := make([]string, 0, len(set))
	for pfn := range set {
		pfns = append(pfns, pfn)
	}
	sort.Strings(pfns)
	return pfns
}

// LFNs returns every logical name with at least one replica here.
func (l *LRC) LFNs() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.mappings))
	for lfn := range l.mappings {
		out = append(out, lfn)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of logical names mapped here.
func (l *LRC) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.mappings)
}

// Summary builds a bloom-filter summary of this LRC's logical names for a
// compressed soft-state update.
func (l *LRC) Summary(fpRate float64) *Bloom {
	l.mu.RLock()
	defer l.mu.RUnlock()
	b := NewBloom(len(l.mappings)+1, fpRate)
	for lfn := range l.mappings {
		b.Add(lfn)
	}
	return b
}

// lrcState is what an RLI knows about one LRC.
type lrcState struct {
	full    map[string]bool // nil when a bloom summary is in use
	bloom   *Bloom
	expires time.Time
}

// RLI is a Replica Location Index: it answers "which LRCs may know this
// logical name" from soft-state summaries that expire unless refreshed.
type RLI struct {
	mu      sync.RWMutex
	entries map[string]*lrcState
	clock   func() time.Time
}

// NewRLI returns an empty index.
func NewRLI() *RLI { return &RLI{entries: make(map[string]*lrcState), clock: time.Now} }

// SetClock overrides the clock (tests).
func (r *RLI) SetClock(fn func() time.Time) { r.clock = fn }

// UpdateFull replaces the index's knowledge of lrc with a full name list.
func (r *RLI) UpdateFull(lrc string, lfns []string, ttl time.Duration) {
	set := make(map[string]bool, len(lfns))
	for _, lfn := range lfns {
		set[lfn] = true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[lrc] = &lrcState{full: set, expires: r.clock().Add(ttl)}
}

// UpdateBloom replaces the index's knowledge of lrc with a bloom summary.
func (r *RLI) UpdateBloom(lrc string, b *Bloom, ttl time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[lrc] = &lrcState{bloom: b, expires: r.clock().Add(ttl)}
}

// Query returns the names of the LRCs that may hold replicas of lfn.
// Bloom-backed answers can include false positives; clients resolve them by
// querying the LRC (exactly Giggle's contract).
func (r *RLI) Query(lfn string) []string {
	now := r.clock()
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for name, st := range r.entries {
		if now.After(st.expires) {
			continue
		}
		switch {
		case st.full != nil:
			if st.full[lfn] {
				out = append(out, name)
			}
		case st.bloom != nil:
			if st.bloom.Test(lfn) {
				out = append(out, name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Expire drops entries whose TTL has lapsed; it returns how many were
// removed. Query already ignores expired entries, so calling Expire is an
// optimization, not a correctness requirement.
func (r *RLI) Expire() int {
	now := r.clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for name, st := range r.entries {
		if now.After(st.expires) {
			delete(r.entries, name)
			n++
		}
	}
	return n
}

// KnownLRCs lists the LRC names with unexpired state.
func (r *RLI) KnownLRCs() []string {
	now := r.clock()
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for name, st := range r.entries {
		if !now.After(st.expires) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Updater pushes periodic soft-state summaries from an LRC to RLIs, the
// Giggle soft-state protocol. Push targets are abstract so the same
// machinery drives in-process and HTTP-connected RLIs.
type Updater struct {
	LRC *LRC
	// TTL each update carries.
	TTL time.Duration
	// Interval between pushes; should be < TTL.
	Interval time.Duration
	// Bloom selects compressed updates at the given false-positive rate;
	// 0 sends full name lists.
	BloomFP float64
	// Push delivers one update; set by the caller.
	Push func(lrcName string, lfns []string, bloom *Bloom, ttl time.Duration) error

	stop chan struct{}
	done chan struct{}
}

// Start begins periodic pushes (and pushes once immediately).
func (u *Updater) Start() error {
	if u.Push == nil {
		return fmt.Errorf("rls: Updater.Push not set")
	}
	if u.TTL <= 0 {
		u.TTL = 30 * time.Second
	}
	if u.Interval <= 0 {
		u.Interval = u.TTL / 3
	}
	if err := u.pushOnce(); err != nil {
		return err
	}
	u.stop = make(chan struct{})
	u.done = make(chan struct{})
	go func() {
		defer close(u.done)
		ticker := time.NewTicker(u.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-u.stop:
				return
			case <-ticker.C:
				u.pushOnce() //nolint:errcheck // soft state tolerates lost updates
			}
		}
	}()
	return nil
}

func (u *Updater) pushOnce() error {
	if u.BloomFP > 0 {
		return u.Push(u.LRC.Name, nil, u.LRC.Summary(u.BloomFP), u.TTL)
	}
	return u.Push(u.LRC.Name, u.LRC.LFNs(), nil, u.TTL)
}

// Stop halts the updater and waits for the push loop to exit; it is safe
// to call more than once.
func (u *Updater) Stop() {
	if u.stop == nil {
		return
	}
	select {
	case <-u.stop: // already closed
	default:
		close(u.stop)
	}
	<-u.done
}
