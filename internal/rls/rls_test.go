package rls

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"testing/quick"
	"time"
)

func TestLRCBasic(t *testing.T) {
	l := NewLRC("lrc://isi")
	l.Add("lfn1", "gsiftp://a/lfn1")
	l.Add("lfn1", "gsiftp://b/lfn1")
	l.Add("lfn2", "gsiftp://a/lfn2")
	if got := l.Lookup("lfn1"); len(got) != 2 {
		t.Fatalf("Lookup = %v", got)
	}
	if got := l.Lookup("nosuch"); len(got) != 0 {
		t.Fatalf("missing Lookup = %v", got)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if !l.Remove("lfn1", "gsiftp://a/lfn1") {
		t.Fatal("Remove reported false")
	}
	if l.Remove("lfn1", "gsiftp://a/lfn1") {
		t.Fatal("double Remove reported true")
	}
	l.Remove("lfn1", "gsiftp://b/lfn1")
	if l.Len() != 1 {
		t.Fatalf("Len after removes = %d", l.Len())
	}
	if got := l.LFNs(); len(got) != 1 || got[0] != "lfn2" {
		t.Fatalf("LFNs = %v", got)
	}
}

func TestRLIFullUpdates(t *testing.T) {
	r := NewRLI()
	r.UpdateFull("lrcA", []string{"f1", "f2"}, time.Minute)
	r.UpdateFull("lrcB", []string{"f2", "f3"}, time.Minute)
	if got := r.Query("f2"); len(got) != 2 {
		t.Fatalf("Query(f2) = %v", got)
	}
	if got := r.Query("f1"); len(got) != 1 || got[0] != "lrcA" {
		t.Fatalf("Query(f1) = %v", got)
	}
	if got := r.Query("nosuch"); len(got) != 0 {
		t.Fatalf("Query(miss) = %v", got)
	}
	// Replacement semantics: a new update supersedes the old list.
	r.UpdateFull("lrcA", []string{"f9"}, time.Minute)
	if got := r.Query("f1"); len(got) != 0 {
		t.Fatalf("stale mapping survived update: %v", got)
	}
}

func TestRLISoftStateExpiry(t *testing.T) {
	now := time.Now()
	r := NewRLI()
	r.SetClock(func() time.Time { return now })
	r.UpdateFull("lrcA", []string{"f1"}, 10*time.Second)
	if got := r.Query("f1"); len(got) != 1 {
		t.Fatalf("fresh Query = %v", got)
	}
	now = now.Add(11 * time.Second)
	if got := r.Query("f1"); len(got) != 0 {
		t.Fatalf("expired Query = %v", got)
	}
	if n := r.Expire(); n != 1 {
		t.Fatalf("Expire removed %d", n)
	}
	if got := r.KnownLRCs(); len(got) != 0 {
		t.Fatalf("KnownLRCs = %v", got)
	}
}

func TestRLIBloomUpdates(t *testing.T) {
	l := NewLRC("lrcA")
	for i := 0; i < 1000; i++ {
		l.Add(fmt.Sprintf("file-%04d", i), "pfn")
	}
	r := NewRLI()
	r.UpdateBloom("lrcA", l.Summary(0.01), time.Minute)
	// No false negatives.
	for i := 0; i < 1000; i++ {
		if got := r.Query(fmt.Sprintf("file-%04d", i)); len(got) != 1 {
			t.Fatalf("bloom false negative on file-%04d", i)
		}
	}
	// Bounded false positives (1% target; allow 5% slack on 1000 misses).
	fp := 0
	for i := 0; i < 1000; i++ {
		if len(r.Query(fmt.Sprintf("miss-%04d", i))) > 0 {
			fp++
		}
	}
	if fp > 50 {
		t.Fatalf("false positive count = %d", fp)
	}
}

func TestBloomRoundTripJSON(t *testing.T) {
	b := NewBloom(100, 0.01)
	for i := 0; i < 100; i++ {
		b.Add(fmt.Sprintf("k%d", i))
	}
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var b2 Bloom
	if err := json.Unmarshal(raw, &b2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if !b2.Test(fmt.Sprintf("k%d", i)) {
			t.Fatalf("round-tripped filter lost k%d", i)
		}
	}
	if b.FillRatio() != b2.FillRatio() {
		t.Fatal("fill ratios differ after round trip")
	}
}

func TestBloomMalformedJSON(t *testing.T) {
	var b Bloom
	if err := json.Unmarshal([]byte(`{"m":0,"k":1,"bits":""}`), &b); err == nil {
		t.Fatal("malformed bloom accepted")
	}
	if err := json.Unmarshal([]byte(`{"m":1024,"k":4,"bits":"AA=="}`), &b); err == nil {
		t.Fatal("short bloom accepted")
	}
}

// Property: no false negatives for any added key set.
func TestQuickBloomNoFalseNegatives(t *testing.T) {
	f := func(keys []string) bool {
		b := NewBloom(len(keys)+1, 0.01)
		for _, k := range keys {
			b.Add(k)
		}
		for _, k := range keys {
			if !b.Test(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	lrc := NewLRC("lrc://site-a")
	rli := NewRLI()
	ts := httptest.NewServer(NewServer(lrc, rli))
	defer ts.Close()
	c := NewClient(ts.URL)

	if err := c.AddMapping("lfn with spaces & specials?", "gsiftp://a/x"); err != nil {
		t.Fatal(err)
	}
	pfns, err := c.Lookup("lfn with spaces & specials?")
	if err != nil || len(pfns) != 1 {
		t.Fatalf("Lookup = %v, %v", pfns, err)
	}
	// Soft-state update via HTTP, full list.
	if err := c.SendUpdate("lrc://site-a", lrc.LFNs(), nil, time.Minute); err != nil {
		t.Fatal(err)
	}
	lrcs, err := c.QueryRLI("lfn with spaces & specials?")
	if err != nil || len(lrcs) != 1 || lrcs[0] != "lrc://site-a" {
		t.Fatalf("QueryRLI = %v, %v", lrcs, err)
	}
	// Bloom update via HTTP.
	if err := c.SendUpdate("lrc://site-b", nil, lrc.Summary(0.01), time.Minute); err != nil {
		t.Fatal(err)
	}
	lrcs, _ = c.QueryRLI("lfn with spaces & specials?")
	if len(lrcs) != 2 {
		t.Fatalf("after bloom update QueryRLI = %v", lrcs)
	}
	// Remove.
	if err := c.RemoveMapping("lfn with spaces & specials?", "gsiftp://a/x"); err != nil {
		t.Fatal(err)
	}
	pfns, _ = c.Lookup("lfn with spaces & specials?")
	if len(pfns) != 0 {
		t.Fatalf("post-remove Lookup = %v", pfns)
	}
}

func TestUpdaterPushesPeriodically(t *testing.T) {
	lrc := NewLRC("lrc://auto")
	lrc.Add("f1", "pfn1")
	rli := NewRLI()
	u := &Updater{
		LRC:      lrc,
		TTL:      time.Minute,
		Interval: 5 * time.Millisecond,
		Push: func(name string, lfns []string, bloom *Bloom, ttl time.Duration) error {
			rli.UpdateFull(name, lfns, ttl)
			return nil
		},
	}
	if err := u.Start(); err != nil {
		t.Fatal(err)
	}
	defer u.Stop()
	// The immediate push must have registered f1.
	if got := rli.Query("f1"); len(got) != 1 {
		t.Fatalf("initial push missing: %v", got)
	}
	// A later mapping appears after the next tick.
	lrc.Add("f2", "pfn2")
	deadline := time.After(2 * time.Second)
	for {
		if got := rli.Query("f2"); len(got) == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("periodic push never delivered f2")
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func TestUpdaterBloomMode(t *testing.T) {
	lrc := NewLRC("lrc://bloom")
	lrc.Add("x", "p")
	var gotBloom *Bloom
	u := &Updater{
		LRC: lrc, TTL: time.Minute, Interval: time.Hour, BloomFP: 0.01,
		Push: func(name string, lfns []string, bloom *Bloom, ttl time.Duration) error {
			gotBloom = bloom
			return nil
		},
	}
	if err := u.Start(); err != nil {
		t.Fatal(err)
	}
	u.Stop()
	if gotBloom == nil || !gotBloom.Test("x") {
		t.Fatal("bloom-mode push did not carry the filter")
	}
}

func TestUpdaterRequiresPush(t *testing.T) {
	u := &Updater{LRC: NewLRC("x")}
	if err := u.Start(); err == nil {
		t.Fatal("Start without Push succeeded")
	}
}
