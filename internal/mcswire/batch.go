package mcswire

import (
	"encoding/xml"
	"fmt"

	"mcs/internal/core"
)

// --- Batched writes ---

// WireBatchCreate is a batched createFile (same fields as CreateFileRequest
// minus the envelope).
type WireBatchCreate struct {
	Name             string     `xml:"name" json:"name"`
	Version          int        `xml:"version,omitempty" json:"version,omitempty"`
	DataType         string     `xml:"dataType,omitempty" json:"dataType,omitempty"`
	Collection       string     `xml:"collection,omitempty" json:"collection,omitempty"`
	ContainerID      string     `xml:"containerId,omitempty" json:"containerId,omitempty"`
	ContainerService string     `xml:"containerService,omitempty" json:"containerService,omitempty"`
	MasterCopy       string     `xml:"masterCopy,omitempty" json:"masterCopy,omitempty"`
	Audited          bool       `xml:"audited,omitempty" json:"audited,omitempty"`
	Provenance       string     `xml:"provenance,omitempty" json:"provenance,omitempty"`
	Attributes       []WireAttr `xml:"attributes>attribute" json:"attributes"`
}

// WireBatchUpdate is a batched updateFile; the Set* flags distinguish
// clearing a value from leaving it unchanged, as in UpdateFileRequest.
type WireBatchUpdate struct {
	Name                string `xml:"name" json:"name"`
	Version             int    `xml:"version,omitempty" json:"version,omitempty"`
	SetDataType         bool   `xml:"setDataType" json:"setDataType"`
	DataType            string `xml:"dataType,omitempty" json:"dataType,omitempty"`
	SetValid            bool   `xml:"setValid" json:"setValid"`
	Valid               bool   `xml:"valid,omitempty" json:"valid,omitempty"`
	SetContainerID      bool   `xml:"setContainerId" json:"setContainerId"`
	ContainerID         string `xml:"containerId,omitempty" json:"containerId,omitempty"`
	SetContainerService bool   `xml:"setContainerService" json:"setContainerService"`
	ContainerService    string `xml:"containerService,omitempty" json:"containerService,omitempty"`
	SetMasterCopy       bool   `xml:"setMasterCopy" json:"setMasterCopy"`
	MasterCopy          string `xml:"masterCopy,omitempty" json:"masterCopy,omitempty"`
}

// WireBatchDelete is a batched deleteFile.
type WireBatchDelete struct {
	Name    string `xml:"name" json:"name"`
	Version int    `xml:"version,omitempty" json:"version,omitempty"`
}

// WireBatchSetAttr is a batched setAttribute.
type WireBatchSetAttr struct {
	ObjectType string   `xml:"objectType" json:"objectType"`
	Object     string   `xml:"object" json:"object"`
	Attribute  WireAttr `xml:"attribute" json:"attribute"`
}

// WireBatchAnnotate is a batched annotate.
type WireBatchAnnotate struct {
	ObjectType string `xml:"objectType" json:"objectType"`
	Object     string `xml:"object" json:"object"`
	Text       string `xml:"text" json:"text"`
}

// WireBatchOp is one mutation in a batchWrite; exactly one member element is
// present.
type WireBatchOp struct {
	Create   *WireBatchCreate   `xml:"create" json:"create"`
	Update   *WireBatchUpdate   `xml:"update" json:"update"`
	Delete   *WireBatchDelete   `xml:"delete" json:"delete"`
	SetAttr  *WireBatchSetAttr  `xml:"setAttribute" json:"setAttribute"`
	Annotate *WireBatchAnnotate `xml:"annotate" json:"annotate"`
}

// BatchWriteRequest applies a sequence of mutations in one transaction.
// Quiet suppresses the per-op results: bulk loaders that never read the acks
// save serializing, shipping and parsing one result element per op.
type BatchWriteRequest struct {
	XMLName xml.Name      `xml:"urn:mcs batchWrite" json:"-"`
	Caller  string        `xml:"caller,omitempty" json:"caller,omitempty"`
	Quiet   bool          `xml:"quiet,omitempty" json:"quiet,omitempty"`
	Ops     []WireBatchOp `xml:"ops>op" json:"ops"`
}

// WireBatchResult is the outcome of one op in a committed batch. Results are
// compact acks — action, object ID and (for file ops) the resulting version
// — rather than full file echoes: serializing N WireFiles back would cost as
// much XML as the request itself and defeat the point of batching.
type WireBatchResult struct {
	Action  string `xml:"action" json:"action"`
	ID      int64  `xml:"id,omitempty" json:"id,omitempty"`
	Version int    `xml:"version,omitempty" json:"version,omitempty"`
}

// BatchWriteResponse returns one result per op, in request order. Count is
// the number of ops applied; quiet batches return only the count.
type BatchWriteResponse struct {
	XMLName xml.Name          `xml:"urn:mcs batchWriteResponse" json:"-"`
	Count   int               `xml:"count" json:"count"`
	Results []WireBatchResult `xml:"results>result" json:"results"`
}

// BatchOpToWire converts a core batch op to its wire form.
func BatchOpToWire(op core.BatchOp) (WireBatchOp, error) {
	switch {
	case op.CreateFile != nil:
		s := op.CreateFile
		w := &WireBatchCreate{
			Name: s.Name, Version: s.Version, DataType: s.DataType,
			Collection: s.Collection, ContainerID: s.ContainerID,
			ContainerService: s.ContainerService, MasterCopy: s.MasterCopy,
			Audited: s.Audited, Provenance: s.Provenance,
		}
		for _, a := range s.Attributes {
			w.Attributes = append(w.Attributes, FromCore(a))
		}
		return WireBatchOp{Create: w}, nil
	case op.UpdateFile != nil:
		u := op.UpdateFile
		w := &WireBatchUpdate{Name: u.Name, Version: u.Version}
		if u.Update.DataType != nil {
			w.SetDataType, w.DataType = true, *u.Update.DataType
		}
		if u.Update.Valid != nil {
			w.SetValid, w.Valid = true, *u.Update.Valid
		}
		if u.Update.ContainerID != nil {
			w.SetContainerID, w.ContainerID = true, *u.Update.ContainerID
		}
		if u.Update.ContainerService != nil {
			w.SetContainerService, w.ContainerService = true, *u.Update.ContainerService
		}
		if u.Update.MasterCopy != nil {
			w.SetMasterCopy, w.MasterCopy = true, *u.Update.MasterCopy
		}
		return WireBatchOp{Update: w}, nil
	case op.DeleteFile != nil:
		return WireBatchOp{Delete: &WireBatchDelete{Name: op.DeleteFile.Name, Version: op.DeleteFile.Version}}, nil
	case op.SetAttribute != nil:
		s := op.SetAttribute
		return WireBatchOp{SetAttr: &WireBatchSetAttr{
			ObjectType: string(s.Object), Object: s.Name, Attribute: FromCore(s.Attribute),
		}}, nil
	case op.Annotate != nil:
		a := op.Annotate
		return WireBatchOp{Annotate: &WireBatchAnnotate{
			ObjectType: string(a.Object), Object: a.Name, Text: a.Text,
		}}, nil
	}
	return WireBatchOp{}, fmt.Errorf("batch op sets no operation")
}

// BatchOpFromWire converts a wire batch op back to the core form.
func BatchOpFromWire(w WireBatchOp) (core.BatchOp, error) {
	switch {
	case w.Create != nil:
		c := w.Create
		spec := core.FileSpec{
			Name: c.Name, Version: c.Version, DataType: c.DataType,
			Collection: c.Collection, ContainerID: c.ContainerID,
			ContainerService: c.ContainerService, MasterCopy: c.MasterCopy,
			Audited: c.Audited, Provenance: c.Provenance,
		}
		for _, wa := range c.Attributes {
			a, err := wa.ToCore()
			if err != nil {
				return core.BatchOp{}, err
			}
			spec.Attributes = append(spec.Attributes, a)
		}
		return core.BatchOp{CreateFile: &spec}, nil
	case w.Update != nil:
		u := w.Update
		upd := core.BatchFileUpdate{Name: u.Name, Version: u.Version}
		if u.SetDataType {
			upd.Update.DataType = &u.DataType
		}
		if u.SetValid {
			upd.Update.Valid = &u.Valid
		}
		if u.SetContainerID {
			upd.Update.ContainerID = &u.ContainerID
		}
		if u.SetContainerService {
			upd.Update.ContainerService = &u.ContainerService
		}
		if u.SetMasterCopy {
			upd.Update.MasterCopy = &u.MasterCopy
		}
		return core.BatchOp{UpdateFile: &upd}, nil
	case w.Delete != nil:
		return core.BatchOp{DeleteFile: &core.BatchFileRef{Name: w.Delete.Name, Version: w.Delete.Version}}, nil
	case w.SetAttr != nil:
		a, err := w.SetAttr.Attribute.ToCore()
		if err != nil {
			return core.BatchOp{}, err
		}
		return core.BatchOp{SetAttribute: &core.BatchSetAttribute{
			Object: core.ObjectType(w.SetAttr.ObjectType), Name: w.SetAttr.Object, Attribute: a,
		}}, nil
	case w.Annotate != nil:
		return core.BatchOp{Annotate: &core.BatchAnnotation{
			Object: core.ObjectType(w.Annotate.ObjectType), Name: w.Annotate.Object, Text: w.Annotate.Text,
		}}, nil
	}
	return core.BatchOp{}, fmt.Errorf("batch op sets no operation")
}

// --- Paginated queries ---

// QueryPageRequest runs a discovery query returning one bounded page of
// names plus a continuation token.
type QueryPageRequest struct {
	XMLName    xml.Name        `xml:"urn:mcs queryPage" json:"-"`
	Caller     string          `xml:"caller,omitempty" json:"caller,omitempty"`
	Target     string          `xml:"target,omitempty" json:"target,omitempty"`
	Predicates []WirePredicate `xml:"predicates>predicate" json:"predicates"`
	PageSize   int             `xml:"pageSize,omitempty" json:"pageSize,omitempty"`
	Token      string          `xml:"token,omitempty" json:"token,omitempty"`
}

// QueryPageResponse returns one page of matching names. Next is the token
// for the following page; "" means the scan is complete. A page may be
// shorter than pageSize (authorization filtering) while Next is non-empty.
type QueryPageResponse struct {
	XMLName xml.Name `xml:"urn:mcs queryPageResponse" json:"-"`
	Names   []string `xml:"names>name" json:"names"`
	Next    string   `xml:"next,omitempty" json:"next,omitempty"`
}

// CollectionContentsPageRequest lists one bounded page of a collection's
// direct members.
type CollectionContentsPageRequest struct {
	XMLName  xml.Name `xml:"urn:mcs collectionContentsPage" json:"-"`
	Caller   string   `xml:"caller,omitempty" json:"caller,omitempty"`
	Name     string   `xml:"name" json:"name"`
	PageSize int      `xml:"pageSize,omitempty" json:"pageSize,omitempty"`
	Token    string   `xml:"token,omitempty" json:"token,omitempty"`
}

// CollectionContentsPageResponse returns one page of members
// (sub-collections first, then files) and a continuation token.
type CollectionContentsPageResponse struct {
	XMLName        xml.Name         `xml:"urn:mcs collectionContentsPageResponse" json:"-"`
	Files          []WireFile       `xml:"files>file" json:"files"`
	SubCollections []WireCollection `xml:"subCollections>collection" json:"subCollections"`
	Next           string           `xml:"next,omitempty" json:"next,omitempty"`
}
