package mcswire

import (
	"errors"
	"strings"

	"mcs/internal/core"
)

// ErrPartialResult marks a scatter-gather operation that could not reach
// every shard it needed: the router returns no data rather than a silently
// truncated result set. It deliberately does not wrap ErrUnavailable or the
// client transport sentinel — a retried scatter would re-run healthy
// subqueries against a shard that is still down, so the caller (not the
// retry loop) decides whether to retry, degrade, or surface the outage.
var ErrPartialResult = errors.New("mcs: partial result: one or more shards unavailable")

// Sentinels is the exhaustive, symmetric mapping between the catalog's
// sentinel errors and wire error-code suffixes. The server encodes a handler
// error as faultcode soapenv:Server.<Code> (SOAP) or code Server.<Code>
// (JSON); the client decodes the code back to the same sentinel, so
// errors.Is works identically on both sides of the wire — and across the
// router's extra hop. Every core.Err* sentinel must appear here exactly once
// (TestFaultSentinelTableExhaustive enforces it).
var Sentinels = []struct {
	Code string
	Err  error
}{
	{"NotFound", core.ErrNotFound},
	{"Exists", core.ErrExists},
	{"Denied", core.ErrDenied},
	{"InvalidInput", core.ErrInvalidInput},
	{"Cycle", core.ErrCycle},
	{"NotEmpty", core.ErrNotEmpty},
	{"AmbiguousFile", core.ErrAmbiguousFile},
	{"Unavailable", core.ErrUnavailable},
	{"PartialResult", ErrPartialResult},
}

// CodeForError maps a handler error to its wire code suffix ("" when the
// error wraps no known sentinel).
func CodeForError(err error) string {
	for _, s := range Sentinels {
		if errors.Is(err, s.Err) {
			return s.Code
		}
	}
	return ""
}

// SentinelForCode maps a wire error code (e.g. "soapenv:Server.NotFound" or
// "Server.NotFound") back to its sentinel, or nil for unrecognized codes.
func SentinelForCode(code string) error {
	i := strings.LastIndex(code, ".")
	if i < 0 {
		return nil
	}
	suffix := code[i+1:]
	for _, s := range Sentinels {
		if s.Code == suffix {
			return s.Err
		}
	}
	return nil
}

// MutatingOps lists the operations that change catalog state. Retried
// mutations carry an idempotency key so the server applies them exactly
// once no matter how many attempts reach it; read-only operations are
// trivially safe to repeat and need no key. The router consults the same
// table to know which forwarded calls must carry the client's key through.
var MutatingOps = map[string]bool{
	"createFile":              true,
	"updateFile":              true,
	"deleteFile":              true,
	"moveFile":                true,
	"batchWrite":              true,
	"createCollection":        true,
	"deleteCollection":        true,
	"createView":              true,
	"addToView":               true,
	"removeFromView":          true,
	"deleteView":              true,
	"defineAttribute":         true,
	"setAttribute":            true,
	"unsetAttribute":          true,
	"annotate":                true,
	"addProvenance":           true,
	"grant":                   true,
	"revoke":                  true,
	"registerWriter":          true,
	"registerExternalCatalog": true,
}
