package mcswire

import "encoding/xml"

// DiscoverySummaryRequest asks a catalog for its soft-state discovery
// summary (the federation bloom filter plus defined attribute names). The
// shard router polls this periodically to screen scatter queries; FP is the
// requested bloom false-positive rate (0 means the server default).
type DiscoverySummaryRequest struct {
	XMLName xml.Name `xml:"urn:mcs discoverySummary" json:"-"`
	Caller  string   `xml:"caller,omitempty" json:"caller,omitempty"`
	FP      float64  `xml:"fp,omitempty" json:"fp,omitempty"`
}

// DiscoverySummaryResponse carries one federation.Summary. The bloom filter
// travels as base64 of its JSON encoding so the same payload is legal in
// both the XML and JSON wire bodies.
type DiscoverySummaryResponse struct {
	XMLName xml.Name `xml:"urn:mcs discoverySummaryResponse" json:"-"`
	Catalog string   `xml:"catalog" json:"catalog"`
	Attrs   []string `xml:"attrs>attr,omitempty" json:"attrs,omitempty"`
	Pairs   string   `xml:"pairs" json:"pairs"`
	Objects int      `xml:"objects" json:"objects"`
}
