package mcswire

import (
	"encoding/xml"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"mcs/internal/core"
)

// roundTrip marshals v and unmarshals into out (a pointer of v's type).
func roundTrip(t *testing.T, v, out any) {
	t.Helper()
	raw, err := xml.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	if err := xml.Unmarshal(raw, out); err != nil {
		t.Fatalf("unmarshal %T: %v\n%s", v, err, raw)
	}
}

func TestCreateFileRequestRoundTrip(t *testing.T) {
	req := &CreateFileRequest{
		Caller: "/O=Grid/CN=Alice", Name: "f<&>.dat", Version: 3, DataType: "binary",
		Collection: "col", ContainerID: "c1", ContainerService: "svc",
		MasterCopy: "gsiftp://x/y", Audited: true, Provenance: "made by hand",
		Attributes: []WireAttr{
			{Name: "a", Type: "string", Value: "v & w"},
			{Name: "b", Type: "int", Value: "-42"},
		},
	}
	var got CreateFileRequest
	roundTrip(t, req, &got)
	got.XMLName = xml.Name{}
	req2 := *req
	if !reflect.DeepEqual(got.Attributes, req2.Attributes) ||
		got.Name != req.Name || got.Version != req.Version ||
		got.Audited != req.Audited || got.Provenance != req.Provenance {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, req2)
	}
}

func TestQueryRequestRoundTrip(t *testing.T) {
	req := &QueryRequest{
		Caller: "x", Target: "file", Limit: 7,
		Predicates: []WirePredicate{
			{Attribute: "freq", Op: ">=", Type: "float", Value: "40.5"},
			{Attribute: "run", Op: "=", Type: "string", Value: "S2"},
		},
	}
	var got QueryRequest
	roundTrip(t, req, &got)
	if len(got.Predicates) != 2 || got.Predicates[0].Op != ">=" || got.Limit != 7 {
		t.Fatalf("got %+v", got)
	}
}

func TestWireFileTimeFields(t *testing.T) {
	now := time.Date(2003, 11, 15, 12, 0, 0, 0, time.UTC)
	f := core.File{
		ID: 9, Name: "n", Version: 2, Valid: true,
		Created: now, Modified: now.Add(time.Hour),
	}
	w := FileToWire(f)
	resp := &GetFileResponse{File: w}
	var got GetFileResponse
	roundTrip(t, resp, &got)
	back := FileFromWire(got.File)
	if !back.Created.Equal(f.Created) || !back.Modified.Equal(f.Modified) {
		t.Fatalf("time fields: %+v", back)
	}
	if back.ID != 9 || back.Version != 2 || !back.Valid {
		t.Fatalf("scalar fields: %+v", back)
	}
}

func TestWireAttrToCore(t *testing.T) {
	cases := []struct {
		wa   WireAttr
		ok   bool
		want core.AttrType
	}{
		{WireAttr{Name: "a", Type: "string", Value: "x"}, true, core.AttrString},
		{WireAttr{Name: "a", Type: "int", Value: "5"}, true, core.AttrInt},
		{WireAttr{Name: "a", Type: "float", Value: "2.5"}, true, core.AttrFloat},
		{WireAttr{Name: "a", Type: "date", Value: "2003-11-15"}, true, core.AttrDate},
		{WireAttr{Name: "a", Type: "time", Value: "10:30:00"}, true, core.AttrTime},
		{WireAttr{Name: "a", Type: "datetime", Value: "2003-11-15T10:30:00Z"}, true, core.AttrDateTime},
		{WireAttr{Name: "a", Type: "int", Value: "nope"}, false, ""},
		{WireAttr{Name: "a", Type: "nosuch", Value: "x"}, false, ""},
	}
	for _, c := range cases {
		a, err := c.wa.ToCore()
		if c.ok && (err != nil || a.Value.Type != c.want) {
			t.Errorf("%+v -> %v, %v", c.wa, a, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%+v accepted", c.wa)
		}
	}
}

// Property: FromCore/ToCore round-trips every representable string attr.
func TestQuickAttrRoundTrip(t *testing.T) {
	f := func(name, value string) bool {
		if name == "" {
			return true
		}
		a := core.Attribute{Name: name, Value: core.String(value)}
		back, err := FromCore(a).ToCore()
		return err == nil && back.Name == name && back.Value.S == value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: int attrs survive the wire encoding for all values.
func TestQuickIntAttrRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		back, err := FromCore(core.Attribute{Name: "n", Value: core.Int(v)}).ToCore()
		return err == nil && back.Value.I == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateFileRequestFlagSemantics(t *testing.T) {
	// The Set* booleans distinguish "clear to empty" from "leave alone".
	req := &UpdateFileRequest{Name: "f", SetDataType: true, DataType: ""}
	var got UpdateFileRequest
	roundTrip(t, req, &got)
	if !got.SetDataType || got.DataType != "" {
		t.Fatalf("got %+v", got)
	}
	if got.SetValid || got.SetMasterCopy {
		t.Fatalf("unset flags flipped: %+v", got)
	}
}

func TestCollectionAndViewWireForms(t *testing.T) {
	col := core.Collection{ID: 1, Name: "c", ParentID: 2, Audited: true,
		Created: time.Now().UTC().Truncate(time.Second)}
	back := CollectionFromWire(CollectionToWire(col))
	if back.ID != col.ID || back.ParentID != 2 || !back.Audited {
		t.Fatalf("collection: %+v", back)
	}
	v := core.View{ID: 3, Name: "v", Description: "d"}
	wv := ViewToWire(v)
	if wv.ID != 3 || wv.Name != "v" || wv.Description != "d" {
		t.Fatalf("view: %+v", wv)
	}
}
