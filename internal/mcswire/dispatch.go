package mcswire

import (
	"fmt"
	"net/http"
	"sort"
)

// Ctx carries per-request context into transport-neutral operation handlers.
// Both wire servers (SOAP and JSON) build one per request, so a handler never
// learns which encoding carried its call.
type Ctx struct {
	// DN is the authenticated distinguished name of the caller, or "" when
	// the service runs without authentication.
	DN string
	// RemoteAddr is the peer's network address.
	RemoteAddr string
	// Header exposes the raw request headers (capability assertions etc.).
	Header http.Header
	// RequestID is the correlation ID of this call: taken from the
	// X-MCS-Request-ID request header when present, generated otherwise.
	RequestID string
	// IdempotencyKey is the client's deduplication key for a mutating call
	// (the X-MCS-Idempotency-Key request header), "" when absent.
	IdempotencyKey string
	// Transport names the wire that carried the call ("soap" or "json");
	// informational only — handlers must not branch on it.
	Transport string
}

// Handler is one catalog operation in the transport-neutral dispatch table:
// a request factory plus a type-erased call. The wire servers own decoding
// (XML or JSON) into the fresh request and encoding of the returned response;
// everything between — authorization, the core call, error identity — is
// shared and therefore provably identical across transports.
type Handler struct {
	// Name is the operation name (SOAP body element / /api/v1/<name> path).
	Name string
	// Mutating marks operations that change catalog state; mutating calls
	// carry idempotency keys so retries apply exactly once.
	Mutating bool
	// New returns a pointer to a fresh request struct for the decoder.
	New func() any
	// Call executes the operation. req is the pointer New returned, already
	// decoded; the result is the response struct for the encoder.
	Call func(ctx *Ctx, req any) (any, error)
	// Stream, when non-nil, serves the operation incrementally: rows are
	// handed to emit one at a time so arbitrarily large result sets never
	// materialize server-side. Transports without a streaming encoding
	// (SOAP) ignore it and use Call.
	Stream func(ctx *Ctx, req any, emit func(row any) error) error
}

// QueryRow is one streamed query result row: a single matched logical name
// per NDJSON line.
type QueryRow struct {
	Name string `json:"name"`
}

// ContentsRow is one streamed collectionContents result row; exactly one of
// File or Collection is set.
type ContentsRow struct {
	File       *WireFile       `json:"file,omitempty"`
	Collection *WireCollection `json:"collection,omitempty"`
}

// Table is the dispatch table shared by every wire server. Operations are
// registered exactly once; both muxes mount the same handlers.
type Table struct {
	ops map[string]*Handler
}

// NewTable returns an empty dispatch table.
func NewTable() *Table {
	return &Table{ops: make(map[string]*Handler)}
}

// Register adds a handler; registering the same name twice is a programming
// error and panics.
func (t *Table) Register(h Handler) {
	if h.Name == "" || h.New == nil || h.Call == nil {
		panic("mcswire: incomplete handler registration")
	}
	if _, dup := t.ops[h.Name]; dup {
		panic(fmt.Sprintf("mcswire: operation %q registered twice", h.Name))
	}
	hc := h
	t.ops[h.Name] = &hc
}

// Lookup returns the named handler, or nil when unregistered.
func (t *Table) Lookup(name string) *Handler { return t.ops[name] }

// Ops returns the registered operation names, sorted.
func (t *Table) Ops() []string {
	names := make([]string, 0, len(t.ops))
	for n := range t.ops {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
