// Package mcswire defines the SOAP wire schema of the Metadata Catalog
// Service: one request/response struct pair per operation of the MCS client
// API listed in the paper (create/query/modify/delete of logical objects,
// user-defined attributes, annotations, aggregation, authorization, audit).
//
// Attribute values travel as (name, type, rendered-string) triples; the
// typed forms are reconstructed with core.ParseAttrValue on the receiving
// side, matching how the original Java client marshalled values through
// Axis.
package mcswire

import (
	"encoding/xml"
	"time"

	"mcs/internal/core"
)

// NS is the XML namespace of all MCS operations.
const NS = "urn:mcs"

// WireAttr is the wire form of one user-defined attribute value.
type WireAttr struct {
	Name  string `xml:"name"`
	Type  string `xml:"type"`
	Value string `xml:"value"`
}

// ToCore converts a wire attribute to its typed form.
func (w WireAttr) ToCore() (core.Attribute, error) {
	v, err := core.ParseAttrValue(core.AttrType(w.Type), w.Value)
	if err != nil {
		return core.Attribute{}, err
	}
	return core.Attribute{Name: w.Name, Value: v}, nil
}

// FromCore converts a typed attribute to its wire form.
func FromCore(a core.Attribute) WireAttr {
	return WireAttr{Name: a.Name, Type: string(a.Value.Type), Value: a.Value.Render()}
}

// WirePredicate is the wire form of one query predicate.
type WirePredicate struct {
	Attribute string `xml:"attribute"`
	Op        string `xml:"op"`
	Type      string `xml:"type"`
	Value     string `xml:"value"`
}

// WireFile is the wire form of a logical file's static metadata.
type WireFile struct {
	ID               int64     `xml:"id"`
	Name             string    `xml:"name"`
	Version          int       `xml:"version"`
	DataType         string    `xml:"dataType"`
	Valid            bool      `xml:"valid"`
	CollectionID     int64     `xml:"collectionId"`
	ContainerID      string    `xml:"containerId"`
	ContainerService string    `xml:"containerService"`
	MasterCopy       string    `xml:"masterCopy"`
	Creator          string    `xml:"creator"`
	LastModifier     string    `xml:"lastModifier"`
	Created          time.Time `xml:"created"`
	Modified         time.Time `xml:"modified"`
	Audited          bool      `xml:"audited"`
}

// FileToWire converts core file metadata to the wire form.
func FileToWire(f core.File) WireFile {
	return WireFile{
		ID: f.ID, Name: f.Name, Version: f.Version, DataType: f.DataType,
		Valid: f.Valid, CollectionID: f.CollectionID, ContainerID: f.ContainerID,
		ContainerService: f.ContainerService, MasterCopy: f.MasterCopy,
		Creator: f.Creator, LastModifier: f.LastModifier,
		Created: f.Created, Modified: f.Modified, Audited: f.Audited,
	}
}

// FileFromWire converts wire file metadata back to the core form.
func FileFromWire(w WireFile) core.File {
	return core.File{
		ID: w.ID, Name: w.Name, Version: w.Version, DataType: w.DataType,
		Valid: w.Valid, CollectionID: w.CollectionID, ContainerID: w.ContainerID,
		ContainerService: w.ContainerService, MasterCopy: w.MasterCopy,
		Creator: w.Creator, LastModifier: w.LastModifier,
		Created: w.Created, Modified: w.Modified, Audited: w.Audited,
	}
}

// --- File operations ---

// CreateFileRequest registers a logical file.
type CreateFileRequest struct {
	XMLName          xml.Name   `xml:"urn:mcs createFile"`
	Caller           string     `xml:"caller,omitempty"`
	Name             string     `xml:"name"`
	Version          int        `xml:"version,omitempty"`
	DataType         string     `xml:"dataType,omitempty"`
	Collection       string     `xml:"collection,omitempty"`
	ContainerID      string     `xml:"containerId,omitempty"`
	ContainerService string     `xml:"containerService,omitempty"`
	MasterCopy       string     `xml:"masterCopy,omitempty"`
	Audited          bool       `xml:"audited,omitempty"`
	Provenance       string     `xml:"provenance,omitempty"`
	Attributes       []WireAttr `xml:"attributes>attribute"`
}

// CreateFileResponse returns the created file.
type CreateFileResponse struct {
	XMLName xml.Name `xml:"urn:mcs createFileResponse"`
	File    WireFile `xml:"file"`
}

// GetFileRequest fetches static file metadata by name (and version).
type GetFileRequest struct {
	XMLName xml.Name `xml:"urn:mcs getFile"`
	Caller  string   `xml:"caller,omitempty"`
	Name    string   `xml:"name"`
	Version int      `xml:"version,omitempty"`
}

// GetFileResponse returns static file metadata.
type GetFileResponse struct {
	XMLName xml.Name `xml:"urn:mcs getFileResponse"`
	File    WireFile `xml:"file"`
}

// FileVersionsRequest lists all versions of a logical name.
type FileVersionsRequest struct {
	XMLName xml.Name `xml:"urn:mcs fileVersions"`
	Caller  string   `xml:"caller,omitempty"`
	Name    string   `xml:"name"`
}

// FileVersionsResponse returns every version's metadata.
type FileVersionsResponse struct {
	XMLName xml.Name   `xml:"urn:mcs fileVersionsResponse"`
	Files   []WireFile `xml:"files>file"`
}

// UpdateFileRequest modifies static file attributes; empty strings mean
// "leave unchanged", the Set* flags distinguish clearing from omission.
type UpdateFileRequest struct {
	XMLName             xml.Name `xml:"urn:mcs updateFile"`
	Caller              string   `xml:"caller,omitempty"`
	Name                string   `xml:"name"`
	Version             int      `xml:"version,omitempty"`
	SetDataType         bool     `xml:"setDataType"`
	DataType            string   `xml:"dataType,omitempty"`
	SetValid            bool     `xml:"setValid"`
	Valid               bool     `xml:"valid,omitempty"`
	SetContainerID      bool     `xml:"setContainerId"`
	ContainerID         string   `xml:"containerId,omitempty"`
	SetContainerService bool     `xml:"setContainerService"`
	ContainerService    string   `xml:"containerService,omitempty"`
	SetMasterCopy       bool     `xml:"setMasterCopy"`
	MasterCopy          string   `xml:"masterCopy,omitempty"`
}

// UpdateFileResponse returns the file after the update.
type UpdateFileResponse struct {
	XMLName xml.Name `xml:"urn:mcs updateFileResponse"`
	File    WireFile `xml:"file"`
}

// DeleteFileRequest removes a logical file.
type DeleteFileRequest struct {
	XMLName xml.Name `xml:"urn:mcs deleteFile"`
	Caller  string   `xml:"caller,omitempty"`
	Name    string   `xml:"name"`
	Version int      `xml:"version,omitempty"`
}

// DeleteFileResponse acknowledges a delete.
type DeleteFileResponse struct {
	XMLName xml.Name `xml:"urn:mcs deleteFileResponse"`
	OK      bool     `xml:"ok"`
}

// MoveFileRequest reassigns a file's logical collection.
type MoveFileRequest struct {
	XMLName    xml.Name `xml:"urn:mcs moveFile"`
	Caller     string   `xml:"caller,omitempty"`
	Name       string   `xml:"name"`
	Version    int      `xml:"version,omitempty"`
	Collection string   `xml:"collection"`
}

// MoveFileResponse acknowledges a move.
type MoveFileResponse struct {
	XMLName xml.Name `xml:"urn:mcs moveFileResponse"`
	OK      bool     `xml:"ok"`
}

// --- Collection operations ---

// CreateCollectionRequest registers a logical collection.
type CreateCollectionRequest struct {
	XMLName     xml.Name   `xml:"urn:mcs createCollection"`
	Caller      string     `xml:"caller,omitempty"`
	Name        string     `xml:"name"`
	Description string     `xml:"description,omitempty"`
	Parent      string     `xml:"parent,omitempty"`
	Audited     bool       `xml:"audited,omitempty"`
	Attributes  []WireAttr `xml:"attributes>attribute"`
}

// WireCollection is the wire form of collection metadata.
type WireCollection struct {
	ID           int64     `xml:"id"`
	Name         string    `xml:"name"`
	Description  string    `xml:"description"`
	ParentID     int64     `xml:"parentId"`
	Creator      string    `xml:"creator"`
	LastModifier string    `xml:"lastModifier"`
	Created      time.Time `xml:"created"`
	Modified     time.Time `xml:"modified"`
	Audited      bool      `xml:"audited"`
}

// CollectionToWire converts core collection metadata to the wire form.
func CollectionToWire(c core.Collection) WireCollection {
	return WireCollection{
		ID: c.ID, Name: c.Name, Description: c.Description, ParentID: c.ParentID,
		Creator: c.Creator, LastModifier: c.LastModifier,
		Created: c.Created, Modified: c.Modified, Audited: c.Audited,
	}
}

// CollectionFromWire converts wire collection metadata to the core form.
func CollectionFromWire(w WireCollection) core.Collection {
	return core.Collection{
		ID: w.ID, Name: w.Name, Description: w.Description, ParentID: w.ParentID,
		Creator: w.Creator, LastModifier: w.LastModifier,
		Created: w.Created, Modified: w.Modified, Audited: w.Audited,
	}
}

// CreateCollectionResponse returns the created collection.
type CreateCollectionResponse struct {
	XMLName    xml.Name       `xml:"urn:mcs createCollectionResponse"`
	Collection WireCollection `xml:"collection"`
}

// GetCollectionRequest fetches collection metadata by name.
type GetCollectionRequest struct {
	XMLName xml.Name `xml:"urn:mcs getCollection"`
	Caller  string   `xml:"caller,omitempty"`
	Name    string   `xml:"name"`
}

// GetCollectionResponse returns collection metadata.
type GetCollectionResponse struct {
	XMLName    xml.Name       `xml:"urn:mcs getCollectionResponse"`
	Collection WireCollection `xml:"collection"`
}

// CollectionContentsRequest lists a collection's direct members.
type CollectionContentsRequest struct {
	XMLName xml.Name `xml:"urn:mcs collectionContents"`
	Caller  string   `xml:"caller,omitempty"`
	Name    string   `xml:"name"`
}

// CollectionContentsResponse returns files and sub-collections.
type CollectionContentsResponse struct {
	XMLName        xml.Name         `xml:"urn:mcs collectionContentsResponse"`
	Files          []WireFile       `xml:"files>file"`
	SubCollections []WireCollection `xml:"subCollections>collection"`
}

// DeleteCollectionRequest removes an empty collection.
type DeleteCollectionRequest struct {
	XMLName xml.Name `xml:"urn:mcs deleteCollection"`
	Caller  string   `xml:"caller,omitempty"`
	Name    string   `xml:"name"`
}

// DeleteCollectionResponse acknowledges a delete.
type DeleteCollectionResponse struct {
	XMLName xml.Name `xml:"urn:mcs deleteCollectionResponse"`
	OK      bool     `xml:"ok"`
}

// ListCollectionsRequest lists collection names matching a LIKE pattern.
type ListCollectionsRequest struct {
	XMLName xml.Name `xml:"urn:mcs listCollections"`
	Caller  string   `xml:"caller,omitempty"`
	Pattern string   `xml:"pattern,omitempty"`
}

// ListCollectionsResponse returns the matching names.
type ListCollectionsResponse struct {
	XMLName xml.Name `xml:"urn:mcs listCollectionsResponse"`
	Names   []string `xml:"names>name"`
}

// --- View operations ---

// WireView is the wire form of view metadata.
type WireView struct {
	ID           int64     `xml:"id"`
	Name         string    `xml:"name"`
	Description  string    `xml:"description"`
	Creator      string    `xml:"creator"`
	LastModifier string    `xml:"lastModifier"`
	Created      time.Time `xml:"created"`
	Modified     time.Time `xml:"modified"`
	Audited      bool      `xml:"audited"`
}

// ViewToWire converts core view metadata to the wire form.
func ViewToWire(v core.View) WireView {
	return WireView{
		ID: v.ID, Name: v.Name, Description: v.Description,
		Creator: v.Creator, LastModifier: v.LastModifier,
		Created: v.Created, Modified: v.Modified, Audited: v.Audited,
	}
}

// CreateViewRequest registers a logical view.
type CreateViewRequest struct {
	XMLName     xml.Name   `xml:"urn:mcs createView"`
	Caller      string     `xml:"caller,omitempty"`
	Name        string     `xml:"name"`
	Description string     `xml:"description,omitempty"`
	Audited     bool       `xml:"audited,omitempty"`
	Attributes  []WireAttr `xml:"attributes>attribute"`
}

// CreateViewResponse returns the created view.
type CreateViewResponse struct {
	XMLName xml.Name `xml:"urn:mcs createViewResponse"`
	View    WireView `xml:"view"`
}

// AddToViewRequest aggregates an object into a view.
type AddToViewRequest struct {
	XMLName    xml.Name `xml:"urn:mcs addToView"`
	Caller     string   `xml:"caller,omitempty"`
	View       string   `xml:"view"`
	ObjectType string   `xml:"objectType"`
	Member     string   `xml:"member"`
}

// AddToViewResponse acknowledges the addition.
type AddToViewResponse struct {
	XMLName xml.Name `xml:"urn:mcs addToViewResponse"`
	OK      bool     `xml:"ok"`
}

// RemoveFromViewRequest removes a member from a view.
type RemoveFromViewRequest struct {
	XMLName    xml.Name `xml:"urn:mcs removeFromView"`
	Caller     string   `xml:"caller,omitempty"`
	View       string   `xml:"view"`
	ObjectType string   `xml:"objectType"`
	Member     string   `xml:"member"`
}

// RemoveFromViewResponse acknowledges the removal.
type RemoveFromViewResponse struct {
	XMLName xml.Name `xml:"urn:mcs removeFromViewResponse"`
	OK      bool     `xml:"ok"`
}

// WireViewMember is one element of a view listing.
type WireViewMember struct {
	Type string `xml:"type"`
	ID   int64  `xml:"id"`
	Name string `xml:"name"`
}

// ViewContentsRequest lists a view's direct members.
type ViewContentsRequest struct {
	XMLName xml.Name `xml:"urn:mcs viewContents"`
	Caller  string   `xml:"caller,omitempty"`
	Name    string   `xml:"name"`
}

// ViewContentsResponse returns the members.
type ViewContentsResponse struct {
	XMLName xml.Name         `xml:"urn:mcs viewContentsResponse"`
	Members []WireViewMember `xml:"members>member"`
}

// ExpandViewRequest recursively resolves a view to file names.
type ExpandViewRequest struct {
	XMLName xml.Name `xml:"urn:mcs expandView"`
	Caller  string   `xml:"caller,omitempty"`
	Name    string   `xml:"name"`
}

// ExpandViewResponse returns the reachable logical file names.
type ExpandViewResponse struct {
	XMLName xml.Name `xml:"urn:mcs expandViewResponse"`
	Names   []string `xml:"names>name"`
}

// DeleteViewRequest removes a view.
type DeleteViewRequest struct {
	XMLName xml.Name `xml:"urn:mcs deleteView"`
	Caller  string   `xml:"caller,omitempty"`
	Name    string   `xml:"name"`
}

// DeleteViewResponse acknowledges a delete.
type DeleteViewResponse struct {
	XMLName xml.Name `xml:"urn:mcs deleteViewResponse"`
	OK      bool     `xml:"ok"`
}

// --- Attribute operations ---

// DefineAttributeRequest declares a user-defined attribute.
type DefineAttributeRequest struct {
	XMLName     xml.Name `xml:"urn:mcs defineAttribute"`
	Caller      string   `xml:"caller,omitempty"`
	Name        string   `xml:"name"`
	Type        string   `xml:"type"`
	Description string   `xml:"description,omitempty"`
}

// DefineAttributeResponse returns the declaration.
type DefineAttributeResponse struct {
	XMLName     xml.Name `xml:"urn:mcs defineAttributeResponse"`
	ID          int64    `xml:"id"`
	Name        string   `xml:"name"`
	Type        string   `xml:"type"`
	Description string   `xml:"description"`
}

// ListAttributeDefsRequest lists all attribute declarations.
type ListAttributeDefsRequest struct {
	XMLName xml.Name `xml:"urn:mcs listAttributeDefs"`
	Caller  string   `xml:"caller,omitempty"`
}

// WireAttrDef is one attribute declaration on the wire.
type WireAttrDef struct {
	ID          int64  `xml:"id"`
	Name        string `xml:"name"`
	Type        string `xml:"type"`
	Description string `xml:"description"`
}

// ListAttributeDefsResponse returns all declarations.
type ListAttributeDefsResponse struct {
	XMLName xml.Name      `xml:"urn:mcs listAttributeDefsResponse"`
	Defs    []WireAttrDef `xml:"defs>def"`
}

// SetAttributeRequest binds a user-defined attribute value on an object.
type SetAttributeRequest struct {
	XMLName    xml.Name `xml:"urn:mcs setAttribute"`
	Caller     string   `xml:"caller,omitempty"`
	ObjectType string   `xml:"objectType"`
	Object     string   `xml:"object"`
	Attribute  WireAttr `xml:"attribute"`
}

// SetAttributeResponse acknowledges the binding.
type SetAttributeResponse struct {
	XMLName xml.Name `xml:"urn:mcs setAttributeResponse"`
	OK      bool     `xml:"ok"`
}

// UnsetAttributeRequest removes a user-defined attribute from an object.
type UnsetAttributeRequest struct {
	XMLName    xml.Name `xml:"urn:mcs unsetAttribute"`
	Caller     string   `xml:"caller,omitempty"`
	ObjectType string   `xml:"objectType"`
	Object     string   `xml:"object"`
	Attribute  string   `xml:"attribute"`
}

// UnsetAttributeResponse acknowledges the removal.
type UnsetAttributeResponse struct {
	XMLName xml.Name `xml:"urn:mcs unsetAttributeResponse"`
	OK      bool     `xml:"ok"`
}

// GetAttributesRequest lists the user-defined attributes of an object.
type GetAttributesRequest struct {
	XMLName    xml.Name `xml:"urn:mcs getAttributes"`
	Caller     string   `xml:"caller,omitempty"`
	ObjectType string   `xml:"objectType"`
	Object     string   `xml:"object"`
}

// GetAttributesResponse returns the attribute bindings.
type GetAttributesResponse struct {
	XMLName    xml.Name   `xml:"urn:mcs getAttributesResponse"`
	Attributes []WireAttr `xml:"attributes>attribute"`
}

// --- Query ---

// QueryRequest runs an attribute-based discovery query.
type QueryRequest struct {
	XMLName    xml.Name        `xml:"urn:mcs query"`
	Caller     string          `xml:"caller,omitempty"`
	Target     string          `xml:"target,omitempty"`
	Predicates []WirePredicate `xml:"predicates>predicate"`
	Limit      int             `xml:"limit,omitempty"`
}

// QueryResponse returns the matching logical names.
type QueryResponse struct {
	XMLName xml.Name `xml:"urn:mcs queryResponse"`
	Names   []string `xml:"names>name"`
}

// QueryAttrsRequest runs a discovery query that also returns the values of
// the listed user-defined attributes for every match.
type QueryAttrsRequest struct {
	XMLName    xml.Name        `xml:"urn:mcs queryAttrs"`
	Caller     string          `xml:"caller,omitempty"`
	Target     string          `xml:"target,omitempty"`
	Predicates []WirePredicate `xml:"predicates>predicate"`
	Limit      int             `xml:"limit,omitempty"`
	Return     []string        `xml:"return>attribute"`
}

// WireQueryResult is one matched name with its requested attribute values.
type WireQueryResult struct {
	Name       string     `xml:"name"`
	Attributes []WireAttr `xml:"attributes>attribute"`
}

// QueryAttrsResponse returns the matches and their attribute values.
type QueryAttrsResponse struct {
	XMLName xml.Name          `xml:"urn:mcs queryAttrsResponse"`
	Results []WireQueryResult `xml:"results>result"`
}

// --- Annotations, provenance, audit ---

// AnnotateRequest attaches an annotation to an object.
type AnnotateRequest struct {
	XMLName    xml.Name `xml:"urn:mcs annotate"`
	Caller     string   `xml:"caller,omitempty"`
	ObjectType string   `xml:"objectType"`
	Object     string   `xml:"object"`
	Text       string   `xml:"text"`
}

// AnnotateResponse returns the stored annotation's ID.
type AnnotateResponse struct {
	XMLName xml.Name `xml:"urn:mcs annotateResponse"`
	ID      int64    `xml:"id"`
}

// WireAnnotation is one annotation on the wire.
type WireAnnotation struct {
	ID      int64     `xml:"id"`
	Text    string    `xml:"text"`
	Creator string    `xml:"creator"`
	At      time.Time `xml:"at"`
}

// GetAnnotationsRequest lists the annotations on an object.
type GetAnnotationsRequest struct {
	XMLName    xml.Name `xml:"urn:mcs getAnnotations"`
	Caller     string   `xml:"caller,omitempty"`
	ObjectType string   `xml:"objectType"`
	Object     string   `xml:"object"`
}

// GetAnnotationsResponse returns the annotations, oldest first.
type GetAnnotationsResponse struct {
	XMLName     xml.Name         `xml:"urn:mcs getAnnotationsResponse"`
	Annotations []WireAnnotation `xml:"annotations>annotation"`
}

// AddProvenanceRequest appends a transformation-history record to a file.
type AddProvenanceRequest struct {
	XMLName     xml.Name `xml:"urn:mcs addProvenance"`
	Caller      string   `xml:"caller,omitempty"`
	Name        string   `xml:"name"`
	Version     int      `xml:"version,omitempty"`
	Description string   `xml:"description"`
}

// AddProvenanceResponse acknowledges the append.
type AddProvenanceResponse struct {
	XMLName xml.Name `xml:"urn:mcs addProvenanceResponse"`
	OK      bool     `xml:"ok"`
}

// WireProvenance is one history record on the wire.
type WireProvenance struct {
	ID          int64     `xml:"id"`
	Description string    `xml:"description"`
	At          time.Time `xml:"at"`
}

// GetProvenanceRequest lists a file's transformation history.
type GetProvenanceRequest struct {
	XMLName xml.Name `xml:"urn:mcs getProvenance"`
	Caller  string   `xml:"caller,omitempty"`
	Name    string   `xml:"name"`
	Version int      `xml:"version,omitempty"`
}

// GetProvenanceResponse returns the history, oldest first.
type GetProvenanceResponse struct {
	XMLName xml.Name         `xml:"urn:mcs getProvenanceResponse"`
	Records []WireProvenance `xml:"records>record"`
}

// WireAudit is one audit record on the wire.
type WireAudit struct {
	ID        int64     `xml:"id"`
	Action    string    `xml:"action"`
	DN        string    `xml:"dn"`
	Detail    string    `xml:"detail"`
	RequestID string    `xml:"requestId,omitempty"`
	At        time.Time `xml:"at"`
}

// AuditLogRequest lists the audit trail of an object.
type AuditLogRequest struct {
	XMLName    xml.Name `xml:"urn:mcs auditLog"`
	Caller     string   `xml:"caller,omitempty"`
	ObjectType string   `xml:"objectType"`
	Object     string   `xml:"object"`
}

// AuditLogResponse returns the audit records, oldest first.
type AuditLogResponse struct {
	XMLName xml.Name    `xml:"urn:mcs auditLogResponse"`
	Records []WireAudit `xml:"records>record"`
}

// --- Authorization ---

// GrantRequest grants a permission on an object.
type GrantRequest struct {
	XMLName    xml.Name `xml:"urn:mcs grant"`
	Caller     string   `xml:"caller,omitempty"`
	ObjectType string   `xml:"objectType"`
	Object     string   `xml:"object,omitempty"`
	Principal  string   `xml:"principal"`
	Permission string   `xml:"permission"`
}

// GrantResponse acknowledges the grant.
type GrantResponse struct {
	XMLName xml.Name `xml:"urn:mcs grantResponse"`
	OK      bool     `xml:"ok"`
}

// RevokeRequest revokes a permission on an object.
type RevokeRequest struct {
	XMLName    xml.Name `xml:"urn:mcs revoke"`
	Caller     string   `xml:"caller,omitempty"`
	ObjectType string   `xml:"objectType"`
	Object     string   `xml:"object,omitempty"`
	Principal  string   `xml:"principal"`
	Permission string   `xml:"permission"`
}

// RevokeResponse acknowledges the revocation.
type RevokeResponse struct {
	XMLName xml.Name `xml:"urn:mcs revokeResponse"`
	OK      bool     `xml:"ok"`
}

// --- Writers, external catalogs, service ---

// RegisterWriterRequest stores a metadata-writer contact record.
type RegisterWriterRequest struct {
	XMLName     xml.Name `xml:"urn:mcs registerWriter"`
	Caller      string   `xml:"caller,omitempty"`
	DN          string   `xml:"dn"`
	Description string   `xml:"description,omitempty"`
	Institution string   `xml:"institution,omitempty"`
	Address     string   `xml:"address,omitempty"`
	Phone       string   `xml:"phone,omitempty"`
	Email       string   `xml:"email,omitempty"`
}

// RegisterWriterResponse acknowledges the registration.
type RegisterWriterResponse struct {
	XMLName xml.Name `xml:"urn:mcs registerWriterResponse"`
	OK      bool     `xml:"ok"`
}

// GetWriterRequest fetches a writer contact record.
type GetWriterRequest struct {
	XMLName xml.Name `xml:"urn:mcs getWriter"`
	Caller  string   `xml:"caller,omitempty"`
	DN      string   `xml:"dn"`
}

// GetWriterResponse returns the contact record.
type GetWriterResponse struct {
	XMLName     xml.Name `xml:"urn:mcs getWriterResponse"`
	DN          string   `xml:"dn"`
	Description string   `xml:"description"`
	Institution string   `xml:"institution"`
	Address     string   `xml:"address"`
	Phone       string   `xml:"phone"`
	Email       string   `xml:"email"`
}

// RegisterExternalCatalogRequest records a pointer to another catalog.
type RegisterExternalCatalogRequest struct {
	XMLName     xml.Name `xml:"urn:mcs registerExternalCatalog"`
	Caller      string   `xml:"caller,omitempty"`
	Name        string   `xml:"name"`
	Type        string   `xml:"type"`
	Host        string   `xml:"host,omitempty"`
	IP          string   `xml:"ip,omitempty"`
	Description string   `xml:"description,omitempty"`
}

// RegisterExternalCatalogResponse returns the assigned ID.
type RegisterExternalCatalogResponse struct {
	XMLName xml.Name `xml:"urn:mcs registerExternalCatalogResponse"`
	ID      int64    `xml:"id"`
}

// WireExternalCatalog is one external catalog pointer on the wire.
type WireExternalCatalog struct {
	ID          int64  `xml:"id"`
	Name        string `xml:"name"`
	Type        string `xml:"type"`
	Host        string `xml:"host"`
	IP          string `xml:"ip"`
	Description string `xml:"description"`
}

// ListExternalCatalogsRequest lists the registered external catalogs.
type ListExternalCatalogsRequest struct {
	XMLName xml.Name `xml:"urn:mcs listExternalCatalogs"`
	Caller  string   `xml:"caller,omitempty"`
}

// ListExternalCatalogsResponse returns the catalog pointers.
type ListExternalCatalogsResponse struct {
	XMLName  xml.Name              `xml:"urn:mcs listExternalCatalogsResponse"`
	Catalogs []WireExternalCatalog `xml:"catalogs>catalog"`
}

// StatsRequest asks for catalog row counts.
type StatsRequest struct {
	XMLName xml.Name `xml:"urn:mcs stats"`
	Caller  string   `xml:"caller,omitempty"`
}

// StatsResponse returns the row counts.
type StatsResponse struct {
	XMLName     xml.Name `xml:"urn:mcs statsResponse"`
	Files       int      `xml:"files"`
	Collections int      `xml:"collections"`
	Views       int      `xml:"views"`
	Attributes  int      `xml:"attributes"`
	AttrDefs    int      `xml:"attrDefs"`
}

// PingRequest is a liveness probe.
type PingRequest struct {
	XMLName xml.Name `xml:"urn:mcs ping"`
}

// PingResponse acknowledges a ping and reports the caller's DN as seen by
// the server (useful for verifying authentication end to end).
type PingResponse struct {
	XMLName xml.Name `xml:"urn:mcs pingResponse"`
	DN      string   `xml:"dn"`
}
