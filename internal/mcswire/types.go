// Package mcswire defines the SOAP wire schema of the Metadata Catalog
// Service: one request/response struct pair per operation of the MCS client
// API listed in the paper (create/query/modify/delete of logical objects,
// user-defined attributes, annotations, aggregation, authorization, audit).
//
// Attribute values travel as (name, type, rendered-string) triples; the
// typed forms are reconstructed with core.ParseAttrValue on the receiving
// side, matching how the original Java client marshalled values through
// Axis.
package mcswire

import (
	"encoding/xml"
	"time"

	"mcs/internal/core"
)

// NS is the XML namespace of all MCS operations.
const NS = "urn:mcs"

// WireAttr is the wire form of one user-defined attribute value.
type WireAttr struct {
	Name  string `xml:"name" json:"name"`
	Type  string `xml:"type" json:"type"`
	Value string `xml:"value" json:"value"`
}

// ToCore converts a wire attribute to its typed form.
func (w WireAttr) ToCore() (core.Attribute, error) {
	v, err := core.ParseAttrValue(core.AttrType(w.Type), w.Value)
	if err != nil {
		return core.Attribute{}, err
	}
	return core.Attribute{Name: w.Name, Value: v}, nil
}

// FromCore converts a typed attribute to its wire form.
func FromCore(a core.Attribute) WireAttr {
	return WireAttr{Name: a.Name, Type: string(a.Value.Type), Value: a.Value.Render()}
}

// WirePredicate is the wire form of one query predicate.
type WirePredicate struct {
	Attribute string `xml:"attribute" json:"attribute"`
	Op        string `xml:"op" json:"op"`
	Type      string `xml:"type" json:"type"`
	Value     string `xml:"value" json:"value"`
}

// WireFile is the wire form of a logical file's static metadata.
type WireFile struct {
	ID               int64     `xml:"id" json:"id"`
	Name             string    `xml:"name" json:"name"`
	Version          int       `xml:"version" json:"version"`
	DataType         string    `xml:"dataType" json:"dataType"`
	Valid            bool      `xml:"valid" json:"valid"`
	CollectionID     int64     `xml:"collectionId" json:"collectionId"`
	ContainerID      string    `xml:"containerId" json:"containerId"`
	ContainerService string    `xml:"containerService" json:"containerService"`
	MasterCopy       string    `xml:"masterCopy" json:"masterCopy"`
	Creator          string    `xml:"creator" json:"creator"`
	LastModifier     string    `xml:"lastModifier" json:"lastModifier"`
	Created          time.Time `xml:"created" json:"created"`
	Modified         time.Time `xml:"modified" json:"modified"`
	Audited          bool      `xml:"audited" json:"audited"`
}

// FileToWire converts core file metadata to the wire form.
func FileToWire(f core.File) WireFile {
	return WireFile{
		ID: f.ID, Name: f.Name, Version: f.Version, DataType: f.DataType,
		Valid: f.Valid, CollectionID: f.CollectionID, ContainerID: f.ContainerID,
		ContainerService: f.ContainerService, MasterCopy: f.MasterCopy,
		Creator: f.Creator, LastModifier: f.LastModifier,
		Created: f.Created, Modified: f.Modified, Audited: f.Audited,
	}
}

// FileFromWire converts wire file metadata back to the core form.
func FileFromWire(w WireFile) core.File {
	return core.File{
		ID: w.ID, Name: w.Name, Version: w.Version, DataType: w.DataType,
		Valid: w.Valid, CollectionID: w.CollectionID, ContainerID: w.ContainerID,
		ContainerService: w.ContainerService, MasterCopy: w.MasterCopy,
		Creator: w.Creator, LastModifier: w.LastModifier,
		Created: w.Created, Modified: w.Modified, Audited: w.Audited,
	}
}

// --- File operations ---

// CreateFileRequest registers a logical file.
type CreateFileRequest struct {
	XMLName          xml.Name   `xml:"urn:mcs createFile" json:"-"`
	Caller           string     `xml:"caller,omitempty" json:"caller,omitempty"`
	Name             string     `xml:"name" json:"name"`
	Version          int        `xml:"version,omitempty" json:"version,omitempty"`
	DataType         string     `xml:"dataType,omitempty" json:"dataType,omitempty"`
	Collection       string     `xml:"collection,omitempty" json:"collection,omitempty"`
	ContainerID      string     `xml:"containerId,omitempty" json:"containerId,omitempty"`
	ContainerService string     `xml:"containerService,omitempty" json:"containerService,omitempty"`
	MasterCopy       string     `xml:"masterCopy,omitempty" json:"masterCopy,omitempty"`
	Audited          bool       `xml:"audited,omitempty" json:"audited,omitempty"`
	Provenance       string     `xml:"provenance,omitempty" json:"provenance,omitempty"`
	Attributes       []WireAttr `xml:"attributes>attribute" json:"attributes"`
}

// CreateFileResponse returns the created file.
type CreateFileResponse struct {
	XMLName xml.Name `xml:"urn:mcs createFileResponse" json:"-"`
	File    WireFile `xml:"file" json:"file"`
}

// GetFileRequest fetches static file metadata by name (and version).
type GetFileRequest struct {
	XMLName xml.Name `xml:"urn:mcs getFile" json:"-"`
	Caller  string   `xml:"caller,omitempty" json:"caller,omitempty"`
	Name    string   `xml:"name" json:"name"`
	Version int      `xml:"version,omitempty" json:"version,omitempty"`
}

// GetFileResponse returns static file metadata.
type GetFileResponse struct {
	XMLName xml.Name `xml:"urn:mcs getFileResponse" json:"-"`
	File    WireFile `xml:"file" json:"file"`
}

// FileVersionsRequest lists all versions of a logical name.
type FileVersionsRequest struct {
	XMLName xml.Name `xml:"urn:mcs fileVersions" json:"-"`
	Caller  string   `xml:"caller,omitempty" json:"caller,omitempty"`
	Name    string   `xml:"name" json:"name"`
}

// FileVersionsResponse returns every version's metadata.
type FileVersionsResponse struct {
	XMLName xml.Name   `xml:"urn:mcs fileVersionsResponse" json:"-"`
	Files   []WireFile `xml:"files>file" json:"files"`
}

// UpdateFileRequest modifies static file attributes; empty strings mean
// "leave unchanged", the Set* flags distinguish clearing from omission.
type UpdateFileRequest struct {
	XMLName             xml.Name `xml:"urn:mcs updateFile" json:"-"`
	Caller              string   `xml:"caller,omitempty" json:"caller,omitempty"`
	Name                string   `xml:"name" json:"name"`
	Version             int      `xml:"version,omitempty" json:"version,omitempty"`
	SetDataType         bool     `xml:"setDataType" json:"setDataType"`
	DataType            string   `xml:"dataType,omitempty" json:"dataType,omitempty"`
	SetValid            bool     `xml:"setValid" json:"setValid"`
	Valid               bool     `xml:"valid,omitempty" json:"valid,omitempty"`
	SetContainerID      bool     `xml:"setContainerId" json:"setContainerId"`
	ContainerID         string   `xml:"containerId,omitempty" json:"containerId,omitempty"`
	SetContainerService bool     `xml:"setContainerService" json:"setContainerService"`
	ContainerService    string   `xml:"containerService,omitempty" json:"containerService,omitempty"`
	SetMasterCopy       bool     `xml:"setMasterCopy" json:"setMasterCopy"`
	MasterCopy          string   `xml:"masterCopy,omitempty" json:"masterCopy,omitempty"`
}

// UpdateFileResponse returns the file after the update.
type UpdateFileResponse struct {
	XMLName xml.Name `xml:"urn:mcs updateFileResponse" json:"-"`
	File    WireFile `xml:"file" json:"file"`
}

// DeleteFileRequest removes a logical file.
type DeleteFileRequest struct {
	XMLName xml.Name `xml:"urn:mcs deleteFile" json:"-"`
	Caller  string   `xml:"caller,omitempty" json:"caller,omitempty"`
	Name    string   `xml:"name" json:"name"`
	Version int      `xml:"version,omitempty" json:"version,omitempty"`
}

// DeleteFileResponse acknowledges a delete.
type DeleteFileResponse struct {
	XMLName xml.Name `xml:"urn:mcs deleteFileResponse" json:"-"`
	OK      bool     `xml:"ok" json:"ok"`
}

// MoveFileRequest reassigns a file's logical collection.
type MoveFileRequest struct {
	XMLName    xml.Name `xml:"urn:mcs moveFile" json:"-"`
	Caller     string   `xml:"caller,omitempty" json:"caller,omitempty"`
	Name       string   `xml:"name" json:"name"`
	Version    int      `xml:"version,omitempty" json:"version,omitempty"`
	Collection string   `xml:"collection" json:"collection"`
}

// MoveFileResponse acknowledges a move.
type MoveFileResponse struct {
	XMLName xml.Name `xml:"urn:mcs moveFileResponse" json:"-"`
	OK      bool     `xml:"ok" json:"ok"`
}

// --- Collection operations ---

// CreateCollectionRequest registers a logical collection.
type CreateCollectionRequest struct {
	XMLName     xml.Name   `xml:"urn:mcs createCollection" json:"-"`
	Caller      string     `xml:"caller,omitempty" json:"caller,omitempty"`
	Name        string     `xml:"name" json:"name"`
	Description string     `xml:"description,omitempty" json:"description,omitempty"`
	Parent      string     `xml:"parent,omitempty" json:"parent,omitempty"`
	Audited     bool       `xml:"audited,omitempty" json:"audited,omitempty"`
	Attributes  []WireAttr `xml:"attributes>attribute" json:"attributes"`
}

// WireCollection is the wire form of collection metadata.
type WireCollection struct {
	ID           int64     `xml:"id" json:"id"`
	Name         string    `xml:"name" json:"name"`
	Description  string    `xml:"description" json:"description"`
	ParentID     int64     `xml:"parentId" json:"parentId"`
	Creator      string    `xml:"creator" json:"creator"`
	LastModifier string    `xml:"lastModifier" json:"lastModifier"`
	Created      time.Time `xml:"created" json:"created"`
	Modified     time.Time `xml:"modified" json:"modified"`
	Audited      bool      `xml:"audited" json:"audited"`
}

// CollectionToWire converts core collection metadata to the wire form.
func CollectionToWire(c core.Collection) WireCollection {
	return WireCollection{
		ID: c.ID, Name: c.Name, Description: c.Description, ParentID: c.ParentID,
		Creator: c.Creator, LastModifier: c.LastModifier,
		Created: c.Created, Modified: c.Modified, Audited: c.Audited,
	}
}

// CollectionFromWire converts wire collection metadata to the core form.
func CollectionFromWire(w WireCollection) core.Collection {
	return core.Collection{
		ID: w.ID, Name: w.Name, Description: w.Description, ParentID: w.ParentID,
		Creator: w.Creator, LastModifier: w.LastModifier,
		Created: w.Created, Modified: w.Modified, Audited: w.Audited,
	}
}

// CreateCollectionResponse returns the created collection.
type CreateCollectionResponse struct {
	XMLName    xml.Name       `xml:"urn:mcs createCollectionResponse" json:"-"`
	Collection WireCollection `xml:"collection" json:"collection"`
}

// GetCollectionRequest fetches collection metadata by name.
type GetCollectionRequest struct {
	XMLName xml.Name `xml:"urn:mcs getCollection" json:"-"`
	Caller  string   `xml:"caller,omitempty" json:"caller,omitempty"`
	Name    string   `xml:"name" json:"name"`
}

// GetCollectionResponse returns collection metadata.
type GetCollectionResponse struct {
	XMLName    xml.Name       `xml:"urn:mcs getCollectionResponse" json:"-"`
	Collection WireCollection `xml:"collection" json:"collection"`
}

// CollectionContentsRequest lists a collection's direct members.
type CollectionContentsRequest struct {
	XMLName xml.Name `xml:"urn:mcs collectionContents" json:"-"`
	Caller  string   `xml:"caller,omitempty" json:"caller,omitempty"`
	Name    string   `xml:"name" json:"name"`
}

// CollectionContentsResponse returns files and sub-collections.
type CollectionContentsResponse struct {
	XMLName        xml.Name         `xml:"urn:mcs collectionContentsResponse" json:"-"`
	Files          []WireFile       `xml:"files>file" json:"files"`
	SubCollections []WireCollection `xml:"subCollections>collection" json:"subCollections"`
}

// DeleteCollectionRequest removes an empty collection.
type DeleteCollectionRequest struct {
	XMLName xml.Name `xml:"urn:mcs deleteCollection" json:"-"`
	Caller  string   `xml:"caller,omitempty" json:"caller,omitempty"`
	Name    string   `xml:"name" json:"name"`
}

// DeleteCollectionResponse acknowledges a delete.
type DeleteCollectionResponse struct {
	XMLName xml.Name `xml:"urn:mcs deleteCollectionResponse" json:"-"`
	OK      bool     `xml:"ok" json:"ok"`
}

// ListCollectionsRequest lists collection names matching a LIKE pattern.
type ListCollectionsRequest struct {
	XMLName xml.Name `xml:"urn:mcs listCollections" json:"-"`
	Caller  string   `xml:"caller,omitempty" json:"caller,omitempty"`
	Pattern string   `xml:"pattern,omitempty" json:"pattern,omitempty"`
}

// ListCollectionsResponse returns the matching names.
type ListCollectionsResponse struct {
	XMLName xml.Name `xml:"urn:mcs listCollectionsResponse" json:"-"`
	Names   []string `xml:"names>name" json:"names"`
}

// --- View operations ---

// WireView is the wire form of view metadata.
type WireView struct {
	ID           int64     `xml:"id" json:"id"`
	Name         string    `xml:"name" json:"name"`
	Description  string    `xml:"description" json:"description"`
	Creator      string    `xml:"creator" json:"creator"`
	LastModifier string    `xml:"lastModifier" json:"lastModifier"`
	Created      time.Time `xml:"created" json:"created"`
	Modified     time.Time `xml:"modified" json:"modified"`
	Audited      bool      `xml:"audited" json:"audited"`
}

// ViewToWire converts core view metadata to the wire form.
func ViewToWire(v core.View) WireView {
	return WireView{
		ID: v.ID, Name: v.Name, Description: v.Description,
		Creator: v.Creator, LastModifier: v.LastModifier,
		Created: v.Created, Modified: v.Modified, Audited: v.Audited,
	}
}

// CreateViewRequest registers a logical view.
type CreateViewRequest struct {
	XMLName     xml.Name   `xml:"urn:mcs createView" json:"-"`
	Caller      string     `xml:"caller,omitempty" json:"caller,omitempty"`
	Name        string     `xml:"name" json:"name"`
	Description string     `xml:"description,omitempty" json:"description,omitempty"`
	Audited     bool       `xml:"audited,omitempty" json:"audited,omitempty"`
	Attributes  []WireAttr `xml:"attributes>attribute" json:"attributes"`
}

// CreateViewResponse returns the created view.
type CreateViewResponse struct {
	XMLName xml.Name `xml:"urn:mcs createViewResponse" json:"-"`
	View    WireView `xml:"view" json:"view"`
}

// AddToViewRequest aggregates an object into a view.
type AddToViewRequest struct {
	XMLName    xml.Name `xml:"urn:mcs addToView" json:"-"`
	Caller     string   `xml:"caller,omitempty" json:"caller,omitempty"`
	View       string   `xml:"view" json:"view"`
	ObjectType string   `xml:"objectType" json:"objectType"`
	Member     string   `xml:"member" json:"member"`
}

// AddToViewResponse acknowledges the addition.
type AddToViewResponse struct {
	XMLName xml.Name `xml:"urn:mcs addToViewResponse" json:"-"`
	OK      bool     `xml:"ok" json:"ok"`
}

// RemoveFromViewRequest removes a member from a view.
type RemoveFromViewRequest struct {
	XMLName    xml.Name `xml:"urn:mcs removeFromView" json:"-"`
	Caller     string   `xml:"caller,omitempty" json:"caller,omitempty"`
	View       string   `xml:"view" json:"view"`
	ObjectType string   `xml:"objectType" json:"objectType"`
	Member     string   `xml:"member" json:"member"`
}

// RemoveFromViewResponse acknowledges the removal.
type RemoveFromViewResponse struct {
	XMLName xml.Name `xml:"urn:mcs removeFromViewResponse" json:"-"`
	OK      bool     `xml:"ok" json:"ok"`
}

// WireViewMember is one element of a view listing.
type WireViewMember struct {
	Type string `xml:"type" json:"type"`
	ID   int64  `xml:"id" json:"id"`
	Name string `xml:"name" json:"name"`
}

// ViewContentsRequest lists a view's direct members.
type ViewContentsRequest struct {
	XMLName xml.Name `xml:"urn:mcs viewContents" json:"-"`
	Caller  string   `xml:"caller,omitempty" json:"caller,omitempty"`
	Name    string   `xml:"name" json:"name"`
}

// ViewContentsResponse returns the members.
type ViewContentsResponse struct {
	XMLName xml.Name         `xml:"urn:mcs viewContentsResponse" json:"-"`
	Members []WireViewMember `xml:"members>member" json:"members"`
}

// ExpandViewRequest recursively resolves a view to file names.
type ExpandViewRequest struct {
	XMLName xml.Name `xml:"urn:mcs expandView" json:"-"`
	Caller  string   `xml:"caller,omitempty" json:"caller,omitempty"`
	Name    string   `xml:"name" json:"name"`
}

// ExpandViewResponse returns the reachable logical file names.
type ExpandViewResponse struct {
	XMLName xml.Name `xml:"urn:mcs expandViewResponse" json:"-"`
	Names   []string `xml:"names>name" json:"names"`
}

// DeleteViewRequest removes a view.
type DeleteViewRequest struct {
	XMLName xml.Name `xml:"urn:mcs deleteView" json:"-"`
	Caller  string   `xml:"caller,omitempty" json:"caller,omitempty"`
	Name    string   `xml:"name" json:"name"`
}

// DeleteViewResponse acknowledges a delete.
type DeleteViewResponse struct {
	XMLName xml.Name `xml:"urn:mcs deleteViewResponse" json:"-"`
	OK      bool     `xml:"ok" json:"ok"`
}

// --- Attribute operations ---

// DefineAttributeRequest declares a user-defined attribute.
type DefineAttributeRequest struct {
	XMLName     xml.Name `xml:"urn:mcs defineAttribute" json:"-"`
	Caller      string   `xml:"caller,omitempty" json:"caller,omitempty"`
	Name        string   `xml:"name" json:"name"`
	Type        string   `xml:"type" json:"type"`
	Description string   `xml:"description,omitempty" json:"description,omitempty"`
}

// DefineAttributeResponse returns the declaration.
type DefineAttributeResponse struct {
	XMLName     xml.Name `xml:"urn:mcs defineAttributeResponse" json:"-"`
	ID          int64    `xml:"id" json:"id"`
	Name        string   `xml:"name" json:"name"`
	Type        string   `xml:"type" json:"type"`
	Description string   `xml:"description" json:"description"`
}

// ListAttributeDefsRequest lists all attribute declarations.
type ListAttributeDefsRequest struct {
	XMLName xml.Name `xml:"urn:mcs listAttributeDefs" json:"-"`
	Caller  string   `xml:"caller,omitempty" json:"caller,omitempty"`
}

// WireAttrDef is one attribute declaration on the wire.
type WireAttrDef struct {
	ID          int64  `xml:"id" json:"id"`
	Name        string `xml:"name" json:"name"`
	Type        string `xml:"type" json:"type"`
	Description string `xml:"description" json:"description"`
}

// ListAttributeDefsResponse returns all declarations.
type ListAttributeDefsResponse struct {
	XMLName xml.Name      `xml:"urn:mcs listAttributeDefsResponse" json:"-"`
	Defs    []WireAttrDef `xml:"defs>def" json:"defs"`
}

// SetAttributeRequest binds a user-defined attribute value on an object.
type SetAttributeRequest struct {
	XMLName    xml.Name `xml:"urn:mcs setAttribute" json:"-"`
	Caller     string   `xml:"caller,omitempty" json:"caller,omitempty"`
	ObjectType string   `xml:"objectType" json:"objectType"`
	Object     string   `xml:"object" json:"object"`
	Attribute  WireAttr `xml:"attribute" json:"attribute"`
}

// SetAttributeResponse acknowledges the binding.
type SetAttributeResponse struct {
	XMLName xml.Name `xml:"urn:mcs setAttributeResponse" json:"-"`
	OK      bool     `xml:"ok" json:"ok"`
}

// UnsetAttributeRequest removes a user-defined attribute from an object.
type UnsetAttributeRequest struct {
	XMLName    xml.Name `xml:"urn:mcs unsetAttribute" json:"-"`
	Caller     string   `xml:"caller,omitempty" json:"caller,omitempty"`
	ObjectType string   `xml:"objectType" json:"objectType"`
	Object     string   `xml:"object" json:"object"`
	Attribute  string   `xml:"attribute" json:"attribute"`
}

// UnsetAttributeResponse acknowledges the removal.
type UnsetAttributeResponse struct {
	XMLName xml.Name `xml:"urn:mcs unsetAttributeResponse" json:"-"`
	OK      bool     `xml:"ok" json:"ok"`
}

// GetAttributesRequest lists the user-defined attributes of an object.
type GetAttributesRequest struct {
	XMLName    xml.Name `xml:"urn:mcs getAttributes" json:"-"`
	Caller     string   `xml:"caller,omitempty" json:"caller,omitempty"`
	ObjectType string   `xml:"objectType" json:"objectType"`
	Object     string   `xml:"object" json:"object"`
}

// GetAttributesResponse returns the attribute bindings.
type GetAttributesResponse struct {
	XMLName    xml.Name   `xml:"urn:mcs getAttributesResponse" json:"-"`
	Attributes []WireAttr `xml:"attributes>attribute" json:"attributes"`
}

// --- Query ---

// QueryRequest runs an attribute-based discovery query.
type QueryRequest struct {
	XMLName    xml.Name        `xml:"urn:mcs query" json:"-"`
	Caller     string          `xml:"caller,omitempty" json:"caller,omitempty"`
	Target     string          `xml:"target,omitempty" json:"target,omitempty"`
	Predicates []WirePredicate `xml:"predicates>predicate" json:"predicates"`
	Limit      int             `xml:"limit,omitempty" json:"limit,omitempty"`
}

// QueryResponse returns the matching logical names.
type QueryResponse struct {
	XMLName xml.Name `xml:"urn:mcs queryResponse" json:"-"`
	Names   []string `xml:"names>name" json:"names"`
}

// QueryAttrsRequest runs a discovery query that also returns the values of
// the listed user-defined attributes for every match.
type QueryAttrsRequest struct {
	XMLName    xml.Name        `xml:"urn:mcs queryAttrs" json:"-"`
	Caller     string          `xml:"caller,omitempty" json:"caller,omitempty"`
	Target     string          `xml:"target,omitempty" json:"target,omitempty"`
	Predicates []WirePredicate `xml:"predicates>predicate" json:"predicates"`
	Limit      int             `xml:"limit,omitempty" json:"limit,omitempty"`
	Return     []string        `xml:"return>attribute" json:"return"`
}

// WireQueryResult is one matched name with its requested attribute values.
type WireQueryResult struct {
	Name       string     `xml:"name" json:"name"`
	Attributes []WireAttr `xml:"attributes>attribute" json:"attributes"`
}

// QueryAttrsResponse returns the matches and their attribute values.
type QueryAttrsResponse struct {
	XMLName xml.Name          `xml:"urn:mcs queryAttrsResponse" json:"-"`
	Results []WireQueryResult `xml:"results>result" json:"results"`
}

// --- Annotations, provenance, audit ---

// AnnotateRequest attaches an annotation to an object.
type AnnotateRequest struct {
	XMLName    xml.Name `xml:"urn:mcs annotate" json:"-"`
	Caller     string   `xml:"caller,omitempty" json:"caller,omitempty"`
	ObjectType string   `xml:"objectType" json:"objectType"`
	Object     string   `xml:"object" json:"object"`
	Text       string   `xml:"text" json:"text"`
}

// AnnotateResponse returns the stored annotation's ID.
type AnnotateResponse struct {
	XMLName xml.Name `xml:"urn:mcs annotateResponse" json:"-"`
	ID      int64    `xml:"id" json:"id"`
}

// WireAnnotation is one annotation on the wire.
type WireAnnotation struct {
	ID      int64     `xml:"id" json:"id"`
	Text    string    `xml:"text" json:"text"`
	Creator string    `xml:"creator" json:"creator"`
	At      time.Time `xml:"at" json:"at"`
}

// GetAnnotationsRequest lists the annotations on an object.
type GetAnnotationsRequest struct {
	XMLName    xml.Name `xml:"urn:mcs getAnnotations" json:"-"`
	Caller     string   `xml:"caller,omitempty" json:"caller,omitempty"`
	ObjectType string   `xml:"objectType" json:"objectType"`
	Object     string   `xml:"object" json:"object"`
}

// GetAnnotationsResponse returns the annotations, oldest first.
type GetAnnotationsResponse struct {
	XMLName     xml.Name         `xml:"urn:mcs getAnnotationsResponse" json:"-"`
	Annotations []WireAnnotation `xml:"annotations>annotation" json:"annotations"`
}

// AddProvenanceRequest appends a transformation-history record to a file.
type AddProvenanceRequest struct {
	XMLName     xml.Name `xml:"urn:mcs addProvenance" json:"-"`
	Caller      string   `xml:"caller,omitempty" json:"caller,omitempty"`
	Name        string   `xml:"name" json:"name"`
	Version     int      `xml:"version,omitempty" json:"version,omitempty"`
	Description string   `xml:"description" json:"description"`
}

// AddProvenanceResponse acknowledges the append.
type AddProvenanceResponse struct {
	XMLName xml.Name `xml:"urn:mcs addProvenanceResponse" json:"-"`
	OK      bool     `xml:"ok" json:"ok"`
}

// WireProvenance is one history record on the wire.
type WireProvenance struct {
	ID          int64     `xml:"id" json:"id"`
	Description string    `xml:"description" json:"description"`
	At          time.Time `xml:"at" json:"at"`
}

// GetProvenanceRequest lists a file's transformation history.
type GetProvenanceRequest struct {
	XMLName xml.Name `xml:"urn:mcs getProvenance" json:"-"`
	Caller  string   `xml:"caller,omitempty" json:"caller,omitempty"`
	Name    string   `xml:"name" json:"name"`
	Version int      `xml:"version,omitempty" json:"version,omitempty"`
}

// GetProvenanceResponse returns the history, oldest first.
type GetProvenanceResponse struct {
	XMLName xml.Name         `xml:"urn:mcs getProvenanceResponse" json:"-"`
	Records []WireProvenance `xml:"records>record" json:"records"`
}

// WireAudit is one audit record on the wire.
type WireAudit struct {
	ID        int64     `xml:"id" json:"id"`
	Action    string    `xml:"action" json:"action"`
	DN        string    `xml:"dn" json:"dn"`
	Detail    string    `xml:"detail" json:"detail"`
	RequestID string    `xml:"requestId,omitempty" json:"requestId,omitempty"`
	At        time.Time `xml:"at" json:"at"`
}

// AuditLogRequest lists the audit trail of an object.
type AuditLogRequest struct {
	XMLName    xml.Name `xml:"urn:mcs auditLog" json:"-"`
	Caller     string   `xml:"caller,omitempty" json:"caller,omitempty"`
	ObjectType string   `xml:"objectType" json:"objectType"`
	Object     string   `xml:"object" json:"object"`
}

// AuditLogResponse returns the audit records, oldest first.
type AuditLogResponse struct {
	XMLName xml.Name    `xml:"urn:mcs auditLogResponse" json:"-"`
	Records []WireAudit `xml:"records>record" json:"records"`
}

// --- Authorization ---

// GrantRequest grants a permission on an object.
type GrantRequest struct {
	XMLName    xml.Name `xml:"urn:mcs grant" json:"-"`
	Caller     string   `xml:"caller,omitempty" json:"caller,omitempty"`
	ObjectType string   `xml:"objectType" json:"objectType"`
	Object     string   `xml:"object,omitempty" json:"object,omitempty"`
	Principal  string   `xml:"principal" json:"principal"`
	Permission string   `xml:"permission" json:"permission"`
}

// GrantResponse acknowledges the grant.
type GrantResponse struct {
	XMLName xml.Name `xml:"urn:mcs grantResponse" json:"-"`
	OK      bool     `xml:"ok" json:"ok"`
}

// RevokeRequest revokes a permission on an object.
type RevokeRequest struct {
	XMLName    xml.Name `xml:"urn:mcs revoke" json:"-"`
	Caller     string   `xml:"caller,omitempty" json:"caller,omitempty"`
	ObjectType string   `xml:"objectType" json:"objectType"`
	Object     string   `xml:"object,omitempty" json:"object,omitempty"`
	Principal  string   `xml:"principal" json:"principal"`
	Permission string   `xml:"permission" json:"permission"`
}

// RevokeResponse acknowledges the revocation.
type RevokeResponse struct {
	XMLName xml.Name `xml:"urn:mcs revokeResponse" json:"-"`
	OK      bool     `xml:"ok" json:"ok"`
}

// --- Writers, external catalogs, service ---

// RegisterWriterRequest stores a metadata-writer contact record.
type RegisterWriterRequest struct {
	XMLName     xml.Name `xml:"urn:mcs registerWriter" json:"-"`
	Caller      string   `xml:"caller,omitempty" json:"caller,omitempty"`
	DN          string   `xml:"dn" json:"dn"`
	Description string   `xml:"description,omitempty" json:"description,omitempty"`
	Institution string   `xml:"institution,omitempty" json:"institution,omitempty"`
	Address     string   `xml:"address,omitempty" json:"address,omitempty"`
	Phone       string   `xml:"phone,omitempty" json:"phone,omitempty"`
	Email       string   `xml:"email,omitempty" json:"email,omitempty"`
}

// RegisterWriterResponse acknowledges the registration.
type RegisterWriterResponse struct {
	XMLName xml.Name `xml:"urn:mcs registerWriterResponse" json:"-"`
	OK      bool     `xml:"ok" json:"ok"`
}

// GetWriterRequest fetches a writer contact record.
type GetWriterRequest struct {
	XMLName xml.Name `xml:"urn:mcs getWriter" json:"-"`
	Caller  string   `xml:"caller,omitempty" json:"caller,omitempty"`
	DN      string   `xml:"dn" json:"dn"`
}

// GetWriterResponse returns the contact record.
type GetWriterResponse struct {
	XMLName     xml.Name `xml:"urn:mcs getWriterResponse" json:"-"`
	DN          string   `xml:"dn" json:"dn"`
	Description string   `xml:"description" json:"description"`
	Institution string   `xml:"institution" json:"institution"`
	Address     string   `xml:"address" json:"address"`
	Phone       string   `xml:"phone" json:"phone"`
	Email       string   `xml:"email" json:"email"`
}

// RegisterExternalCatalogRequest records a pointer to another catalog.
type RegisterExternalCatalogRequest struct {
	XMLName     xml.Name `xml:"urn:mcs registerExternalCatalog" json:"-"`
	Caller      string   `xml:"caller,omitempty" json:"caller,omitempty"`
	Name        string   `xml:"name" json:"name"`
	Type        string   `xml:"type" json:"type"`
	Host        string   `xml:"host,omitempty" json:"host,omitempty"`
	IP          string   `xml:"ip,omitempty" json:"ip,omitempty"`
	Description string   `xml:"description,omitempty" json:"description,omitempty"`
}

// RegisterExternalCatalogResponse returns the assigned ID.
type RegisterExternalCatalogResponse struct {
	XMLName xml.Name `xml:"urn:mcs registerExternalCatalogResponse" json:"-"`
	ID      int64    `xml:"id" json:"id"`
}

// WireExternalCatalog is one external catalog pointer on the wire.
type WireExternalCatalog struct {
	ID          int64  `xml:"id" json:"id"`
	Name        string `xml:"name" json:"name"`
	Type        string `xml:"type" json:"type"`
	Host        string `xml:"host" json:"host"`
	IP          string `xml:"ip" json:"ip"`
	Description string `xml:"description" json:"description"`
}

// ListExternalCatalogsRequest lists the registered external catalogs.
type ListExternalCatalogsRequest struct {
	XMLName xml.Name `xml:"urn:mcs listExternalCatalogs" json:"-"`
	Caller  string   `xml:"caller,omitempty" json:"caller,omitempty"`
}

// ListExternalCatalogsResponse returns the catalog pointers.
type ListExternalCatalogsResponse struct {
	XMLName  xml.Name              `xml:"urn:mcs listExternalCatalogsResponse" json:"-"`
	Catalogs []WireExternalCatalog `xml:"catalogs>catalog" json:"catalogs"`
}

// StatsRequest asks for catalog row counts.
type StatsRequest struct {
	XMLName xml.Name `xml:"urn:mcs stats" json:"-"`
	Caller  string   `xml:"caller,omitempty" json:"caller,omitempty"`
}

// StatsResponse returns the row counts.
type StatsResponse struct {
	XMLName     xml.Name `xml:"urn:mcs statsResponse" json:"-"`
	Files       int      `xml:"files" json:"files"`
	Collections int      `xml:"collections" json:"collections"`
	Views       int      `xml:"views" json:"views"`
	Attributes  int      `xml:"attributes" json:"attributes"`
	AttrDefs    int      `xml:"attrDefs" json:"attrDefs"`
}

// PingRequest is a liveness probe.
type PingRequest struct {
	XMLName xml.Name `xml:"urn:mcs ping" json:"-"`
}

// PingResponse acknowledges a ping and reports the caller's DN as seen by
// the server (useful for verifying authentication end to end).
type PingResponse struct {
	XMLName xml.Name `xml:"urn:mcs pingResponse" json:"-"`
	DN      string   `xml:"dn" json:"dn"`
}
