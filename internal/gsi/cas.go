package gsi

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// The Community Authorization Service (CAS) of Pearlman et al., which the
// paper plans to integrate with MCS: a community server holds the policy of
// a virtual organization and issues signed capability assertions that a
// resource (here, the MCS) validates instead of keeping per-user ACLs.

// Right names one action a community member may perform.
type Right string

// Rights used by the MCS integration.
const (
	RightRead     Right = "read"
	RightWrite    Right = "write"
	RightCreate   Right = "create"
	RightDelete   Right = "delete"
	RightAnnotate Right = "annotate"
)

// Assertion is a signed capability statement: subject may exercise Rights
// on resources matching Scope until Expiry.
type Assertion struct {
	Community string    `json:"community"`
	Subject   string    `json:"subject"` // DN of the member
	Scope     string    `json:"scope"`   // resource prefix, e.g. a collection path
	Rights    []Right   `json:"rights"`
	Expiry    time.Time `json:"expiry"`
	Signature []byte    `json:"signature"`
}

func (a *Assertion) tbs() []byte {
	rights := make([]string, len(a.Rights))
	for i, r := range a.Rights {
		rights[i] = string(r)
	}
	sort.Strings(rights)
	return []byte(strings.Join([]string{
		a.Community, a.Subject, a.Scope,
		strings.Join(rights, ","),
		a.Expiry.UTC().Format(time.RFC3339),
	}, "|"))
}

// Grants reports whether the assertion covers right r on resource at now.
func (a *Assertion) Grants(r Right, resource string, now time.Time) bool {
	if now.After(a.Expiry) {
		return false
	}
	if !strings.HasPrefix(resource, a.Scope) {
		return false
	}
	for _, have := range a.Rights {
		if have == r {
			return true
		}
	}
	return false
}

// CAS is a community authorization server.
type CAS struct {
	Community string
	pub       ed25519.PublicKey
	key       ed25519.PrivateKey

	mu     sync.RWMutex
	policy map[string][]grant // member DN -> grants
}

type grant struct {
	scope  string
	rights []Right
}

// NewCAS creates a community server with a fresh signing key.
func NewCAS(community string) (*CAS, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("gsi: generate CAS key: %w", err)
	}
	return &CAS{
		Community: community,
		pub:       pub,
		key:       priv,
		policy:    make(map[string][]grant),
	}, nil
}

// PublicKey returns the key resources use to validate assertions.
func (c *CAS) PublicKey() ed25519.PublicKey { return c.pub }

// Grant records community policy: member may exercise rights within scope.
func (c *CAS) Grant(memberDN, scope string, rights ...Right) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.policy[memberDN] = append(c.policy[memberDN], grant{scope: scope, rights: rights})
}

// Revoke removes all grants for a member.
func (c *CAS) Revoke(memberDN string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.policy, memberDN)
}

// IssueAssertion returns a signed assertion covering the member's grant for
// scope, or an error if policy does not allow it.
func (c *CAS) IssueAssertion(memberDN, scope string, validity time.Duration) (*Assertion, error) {
	c.mu.RLock()
	grants := c.policy[memberDN]
	c.mu.RUnlock()
	for _, g := range grants {
		if strings.HasPrefix(scope, g.scope) {
			a := &Assertion{
				Community: c.Community,
				Subject:   memberDN,
				Scope:     scope,
				Rights:    g.rights,
				Expiry:    time.Now().Add(validity),
			}
			a.Signature = ed25519.Sign(c.key, a.tbs())
			return a, nil
		}
	}
	return nil, fmt.Errorf("gsi: community %q policy grants %q nothing under %q",
		c.Community, memberDN, scope)
}

// EncodeAssertion serializes an assertion for transport in an HTTP header.
func EncodeAssertion(a *Assertion) (string, error) {
	raw, err := json.Marshal(a)
	if err != nil {
		return "", err
	}
	return base64.StdEncoding.EncodeToString(raw), nil
}

// DecodeAssertion reverses EncodeAssertion and verifies the signature
// against the community public key.
func DecodeAssertion(encoded string, communityKey ed25519.PublicKey) (*Assertion, error) {
	raw, err := base64.StdEncoding.DecodeString(encoded)
	if err != nil {
		return nil, fmt.Errorf("gsi: decode assertion: %w", err)
	}
	var a Assertion
	if err := json.Unmarshal(raw, &a); err != nil {
		return nil, fmt.Errorf("gsi: parse assertion: %w", err)
	}
	if !ed25519.Verify(communityKey, a.tbs(), a.Signature) {
		return nil, errors.New("gsi: assertion signature invalid")
	}
	return &a, nil
}

// AssertionHeader is the HTTP header carrying a CAS assertion.
const AssertionHeader = "X-CAS-Assertion"
