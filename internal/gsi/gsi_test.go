package gsi

import (
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"
)

func newTestCA(t *testing.T) *CA {
	t.Helper()
	ca, err := NewCA("/O=Grid/CN=TestCA")
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func TestIssueAndVerify(t *testing.T) {
	ca := newTestCA(t)
	cred, err := ca.Issue("/O=Grid/CN=Alice", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if cred.DN() != "/O=Grid/CN=Alice" {
		t.Fatalf("DN = %q", cred.DN())
	}
	trust := NewTrustStore(ca.Root)
	dn, err := trust.VerifyChain(cred.Chain, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if dn != "/O=Grid/CN=Alice" {
		t.Fatalf("verified DN = %q", dn)
	}
}

func TestUntrustedCA(t *testing.T) {
	ca := newTestCA(t)
	other, err := NewCA("/O=Other/CN=OtherCA")
	if err != nil {
		t.Fatal(err)
	}
	cred, _ := ca.Issue("/O=Grid/CN=Mallory", time.Hour)
	trust := NewTrustStore(other.Root)
	if _, err := trust.VerifyChain(cred.Chain, time.Now()); !errors.Is(err, ErrUntrusted) {
		t.Fatalf("err = %v, want ErrUntrusted", err)
	}
}

func TestExpiredCredential(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=Grid/CN=Alice", time.Hour)
	trust := NewTrustStore(ca.Root)
	if _, err := trust.VerifyChain(cred.Chain, time.Now().Add(2*time.Hour)); !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
}

func TestTamperedCertificate(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=Grid/CN=Alice", time.Hour)
	cred.Chain[0].Subject = "/O=Grid/CN=Eve"
	trust := NewTrustStore(ca.Root)
	if _, err := trust.VerifyChain(cred.Chain, time.Now()); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestProxyDelegation(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=Grid/CN=Alice", time.Hour)
	proxy, err := cred.Delegate(30 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if proxy.DN() != "/O=Grid/CN=Alice" {
		t.Fatalf("proxy effective DN = %q", proxy.DN())
	}
	if !strings.HasSuffix(proxy.SubjectDN(), "/CN=proxy") {
		t.Fatalf("proxy subject = %q", proxy.SubjectDN())
	}
	trust := NewTrustStore(ca.Root)
	dn, err := trust.VerifyChain(proxy.Chain, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if dn != "/O=Grid/CN=Alice" {
		t.Fatalf("verified proxy DN = %q", dn)
	}
	// Second-level delegation (proxy of a proxy).
	proxy2, err := proxy.Delegate(10 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if dn, err := trust.VerifyChain(proxy2.Chain, time.Now()); err != nil || dn != "/O=Grid/CN=Alice" {
		t.Fatalf("second-level proxy: dn=%q err=%v", dn, err)
	}
}

func TestProxyValidityClamped(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=Grid/CN=Alice", time.Minute)
	proxy, _ := cred.Delegate(24 * time.Hour)
	if proxy.Chain[0].NotAfter.After(cred.Chain[0].NotAfter) {
		t.Fatal("proxy outlives its delegator")
	}
}

func TestRequestSigning(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=Grid/CN=Alice", time.Hour)
	body := []byte("<soap body>")
	req, _ := http.NewRequest(http.MethodPost, "http://mcs.example/mcs", nil)
	if err := cred.Sign(req, body); err != nil {
		t.Fatal(err)
	}
	v := &Verifier{Trust: NewTrustStore(ca.Root)}
	dn, err := v.Authenticate(req, body)
	if err != nil {
		t.Fatal(err)
	}
	if dn != "/O=Grid/CN=Alice" {
		t.Fatalf("authenticated DN = %q", dn)
	}
}

func TestRequestSigningRejectsTamperedBody(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=Grid/CN=Alice", time.Hour)
	req, _ := http.NewRequest(http.MethodPost, "http://mcs.example/mcs", nil)
	cred.Sign(req, []byte("original")) //nolint:errcheck
	v := &Verifier{Trust: NewTrustStore(ca.Root)}
	if _, err := v.Authenticate(req, []byte("tampered")); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestRequestSigningRejectsStaleTimestamp(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=Grid/CN=Alice", time.Hour)
	body := []byte("b")
	req, _ := http.NewRequest(http.MethodPost, "http://mcs.example/mcs", nil)
	cred.Sign(req, body) //nolint:errcheck
	v := &Verifier{
		Trust: NewTrustStore(ca.Root),
		Now:   func() time.Time { return time.Now().Add(10 * time.Minute) },
	}
	if _, err := v.Authenticate(req, body); !errors.Is(err, ErrStale) {
		t.Fatalf("err = %v, want ErrStale", err)
	}
}

func TestUnsignedRequestRejected(t *testing.T) {
	ca := newTestCA(t)
	v := &Verifier{Trust: NewTrustStore(ca.Root)}
	req, _ := http.NewRequest(http.MethodPost, "http://mcs.example/mcs", nil)
	if _, err := v.Authenticate(req, nil); err == nil {
		t.Fatal("unsigned request accepted")
	}
}

func TestCASIssueAndValidate(t *testing.T) {
	cas, err := NewCAS("ligo.org")
	if err != nil {
		t.Fatal(err)
	}
	cas.Grant("/O=Grid/CN=Alice", "/ligo/s2", RightRead, RightWrite)
	a, err := cas.IssueAssertion("/O=Grid/CN=Alice", "/ligo/s2/run1", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeAssertion(a)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeAssertion(enc, cas.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if !dec.Grants(RightRead, "/ligo/s2/run1/file1", now) {
		t.Fatal("assertion does not grant covered read")
	}
	if dec.Grants(RightDelete, "/ligo/s2/run1/file1", now) {
		t.Fatal("assertion grants un-granted right")
	}
	if dec.Grants(RightRead, "/cms/data", now) {
		t.Fatal("assertion grants out-of-scope resource")
	}
	if dec.Grants(RightRead, "/ligo/s2/run1/file1", now.Add(2*time.Hour)) {
		t.Fatal("expired assertion still grants")
	}
}

func TestCASPolicyDenied(t *testing.T) {
	cas, _ := NewCAS("ligo.org")
	if _, err := cas.IssueAssertion("/O=Grid/CN=Nobody", "/ligo", time.Hour); err == nil {
		t.Fatal("assertion issued against empty policy")
	}
	cas.Grant("/O=Grid/CN=Bob", "/ligo/s2", RightRead)
	if _, err := cas.IssueAssertion("/O=Grid/CN=Bob", "/other", time.Hour); err == nil {
		t.Fatal("assertion issued outside granted scope")
	}
}

func TestCASRevoke(t *testing.T) {
	cas, _ := NewCAS("ligo.org")
	cas.Grant("/O=Grid/CN=Bob", "/ligo", RightRead)
	if _, err := cas.IssueAssertion("/O=Grid/CN=Bob", "/ligo/x", time.Hour); err != nil {
		t.Fatal(err)
	}
	cas.Revoke("/O=Grid/CN=Bob")
	if _, err := cas.IssueAssertion("/O=Grid/CN=Bob", "/ligo/x", time.Hour); err == nil {
		t.Fatal("revoked member still issued assertion")
	}
}

func TestCASTamperedAssertion(t *testing.T) {
	cas, _ := NewCAS("ligo.org")
	cas.Grant("/O=Grid/CN=Alice", "/ligo", RightRead)
	a, _ := cas.IssueAssertion("/O=Grid/CN=Alice", "/ligo", time.Hour)
	a.Rights = append(a.Rights, RightDelete)
	enc, _ := EncodeAssertion(a)
	if _, err := DecodeAssertion(enc, cas.PublicKey()); err == nil {
		t.Fatal("tampered assertion validated")
	}
}
