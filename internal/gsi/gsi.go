// Package gsi is a Grid Security Infrastructure stand-in.
//
// The original MCS authenticates callers with GSI: X.509 identity
// certificates issued by a certificate authority, short-lived proxy
// credentials delegated from them, and per-connection proof of possession.
// This package reproduces those semantics with Ed25519 keys and a compact
// JSON certificate encoding: a CA issues identity credentials for
// distinguished names, credentials can delegate proxies (chains of any
// depth), and HTTP requests are signed so the server can both verify the
// chain back to a trusted CA and check proof of possession of the leaf key.
package gsi

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Errors returned by verification.
var (
	ErrExpired      = errors.New("gsi: credential expired or not yet valid")
	ErrBadSignature = errors.New("gsi: signature verification failed")
	ErrUntrusted    = errors.New("gsi: chain does not terminate at a trusted CA")
	ErrStale        = errors.New("gsi: request timestamp outside freshness window")
)

// Certificate binds a subject DN to a public key, signed by an issuer.
type Certificate struct {
	Subject   string            `json:"subject"`
	Issuer    string            `json:"issuer"`
	PublicKey ed25519.PublicKey `json:"publicKey"`
	NotBefore time.Time         `json:"notBefore"`
	NotAfter  time.Time         `json:"notAfter"`
	Proxy     bool              `json:"proxy"`
	Signature []byte            `json:"signature"`
}

// tbs returns the canonical to-be-signed bytes of the certificate.
func (c *Certificate) tbs() []byte {
	return []byte(strings.Join([]string{
		c.Subject,
		c.Issuer,
		base64.StdEncoding.EncodeToString(c.PublicKey),
		c.NotBefore.UTC().Format(time.RFC3339),
		c.NotAfter.UTC().Format(time.RFC3339),
		fmt.Sprint(c.Proxy),
	}, "|"))
}

// ValidAt reports whether the certificate's validity window covers t.
func (c *Certificate) ValidAt(t time.Time) bool {
	return !t.Before(c.NotBefore) && !t.After(c.NotAfter)
}

// Credential is a certificate chain plus the private key of the leaf.
// Chain[0] is the leaf; the last element is signed by a CA.
type Credential struct {
	Chain      []*Certificate
	PrivateKey ed25519.PrivateKey
}

// DN returns the effective identity: the subject of the first non-proxy
// certificate in the chain, matching GSI's treatment of proxy credentials
// as acting *as* their issuing identity.
func (c *Credential) DN() string {
	for _, cert := range c.Chain {
		if !cert.Proxy {
			return cert.Subject
		}
	}
	if len(c.Chain) > 0 {
		return c.Chain[0].Subject
	}
	return ""
}

// SubjectDN returns the leaf subject (proxies include a /CN=proxy suffix).
func (c *Credential) SubjectDN() string {
	if len(c.Chain) == 0 {
		return ""
	}
	return c.Chain[0].Subject
}

// CA is a certificate authority with a self-signed root.
type CA struct {
	Root *Certificate
	key  ed25519.PrivateKey
}

// NewCA creates a certificate authority for the given DN with a 10-year root.
func NewCA(dn string) (*CA, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("gsi: generate CA key: %w", err)
	}
	root := &Certificate{
		Subject:   dn,
		Issuer:    dn,
		PublicKey: pub,
		NotBefore: time.Now().Add(-time.Minute),
		NotAfter:  time.Now().Add(10 * 365 * 24 * time.Hour),
	}
	root.Signature = ed25519.Sign(priv, root.tbs())
	return &CA{Root: root, key: priv}, nil
}

// Issue creates an identity credential for subject, valid for validity.
func (ca *CA) Issue(subject string, validity time.Duration) (*Credential, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("gsi: generate key: %w", err)
	}
	cert := &Certificate{
		Subject:   subject,
		Issuer:    ca.Root.Subject,
		PublicKey: pub,
		NotBefore: time.Now().Add(-time.Minute),
		NotAfter:  time.Now().Add(validity),
	}
	cert.Signature = ed25519.Sign(ca.key, cert.tbs())
	return &Credential{Chain: []*Certificate{cert}, PrivateKey: priv}, nil
}

// Delegate creates a proxy credential signed by c, as gsi proxy-init does.
// The proxy's subject is the delegator's subject with a /CN=proxy component
// appended, and its validity is clamped to the delegator's.
func (c *Credential) Delegate(validity time.Duration) (*Credential, error) {
	if len(c.Chain) == 0 {
		return nil, errors.New("gsi: cannot delegate from empty credential")
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("gsi: generate proxy key: %w", err)
	}
	parent := c.Chain[0]
	notAfter := time.Now().Add(validity)
	if notAfter.After(parent.NotAfter) {
		notAfter = parent.NotAfter
	}
	cert := &Certificate{
		Subject:   parent.Subject + "/CN=proxy",
		Issuer:    parent.Subject,
		PublicKey: pub,
		NotBefore: time.Now().Add(-time.Minute),
		NotAfter:  notAfter,
		Proxy:     true,
	}
	cert.Signature = ed25519.Sign(c.PrivateKey, cert.tbs())
	return &Credential{
		Chain:      append([]*Certificate{cert}, c.Chain...),
		PrivateKey: priv,
	}, nil
}

// TrustStore holds the CA roots a verifier accepts.
type TrustStore struct {
	mu    sync.RWMutex
	roots map[string]ed25519.PublicKey // issuer DN -> key
}

// NewTrustStore returns a trust store containing the given CA roots.
func NewTrustStore(roots ...*Certificate) *TrustStore {
	ts := &TrustStore{roots: make(map[string]ed25519.PublicKey)}
	for _, r := range roots {
		ts.Add(r)
	}
	return ts
}

// Add trusts an additional CA root.
func (ts *TrustStore) Add(root *Certificate) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.roots[root.Subject] = root.PublicKey
}

// VerifyChain validates a certificate chain (leaf first) at time now:
// every certificate within its validity window, each signed by the next,
// and the final one signed by a trusted CA. It returns the effective DN.
func (ts *TrustStore) VerifyChain(chain []*Certificate, now time.Time) (string, error) {
	if len(chain) == 0 {
		return "", errors.New("gsi: empty certificate chain")
	}
	for i, cert := range chain {
		if !cert.ValidAt(now) {
			return "", fmt.Errorf("%w: %s", ErrExpired, cert.Subject)
		}
		var issuerKey ed25519.PublicKey
		if i+1 < len(chain) {
			issuerKey = chain[i+1].PublicKey
			if cert.Issuer != chain[i+1].Subject {
				return "", fmt.Errorf("gsi: chain broken: %q issued by %q, next subject %q",
					cert.Subject, cert.Issuer, chain[i+1].Subject)
			}
		} else {
			ts.mu.RLock()
			issuerKey = ts.roots[cert.Issuer]
			ts.mu.RUnlock()
			if issuerKey == nil {
				return "", fmt.Errorf("%w: issuer %q", ErrUntrusted, cert.Issuer)
			}
		}
		if !ed25519.Verify(issuerKey, cert.tbs(), cert.Signature) {
			return "", fmt.Errorf("%w: certificate %q", ErrBadSignature, cert.Subject)
		}
		// Only proxy certificates may be issued by non-CA certificates.
		if i+1 < len(chain) && !cert.Proxy {
			return "", fmt.Errorf("gsi: non-proxy certificate %q issued by end entity", cert.Subject)
		}
	}
	cred := &Credential{Chain: chain}
	return cred.DN(), nil
}

// Request-signing headers.
const (
	headerChain     = "X-Grid-Cert-Chain"
	headerTimestamp = "X-Grid-Timestamp"
	headerSignature = "X-Grid-Signature"
)

// maxClockSkew bounds how old or future a signed request may be.
const maxClockSkew = 5 * time.Minute

// signingBytes binds the signature to method, path, time and body digest.
func signingBytes(method, path, timestamp string, body []byte) []byte {
	digest := sha256.Sum256(body)
	return []byte(method + "\n" + path + "\n" + timestamp + "\n" +
		base64.StdEncoding.EncodeToString(digest[:]))
}

// Sign returns a request-signing function for use as soap.Client.Sign.
func (c *Credential) Sign(req *http.Request, body []byte) error {
	chain, err := json.Marshal(c.Chain)
	if err != nil {
		return fmt.Errorf("gsi: encode chain: %w", err)
	}
	path := req.URL.Path
	if path == "" {
		path = "/" // net/http serves requests for the empty path as "/"
	}
	ts := time.Now().UTC().Format(time.RFC3339)
	sig := ed25519.Sign(c.PrivateKey, signingBytes(req.Method, path, ts, body))
	req.Header.Set(headerChain, base64.StdEncoding.EncodeToString(chain))
	req.Header.Set(headerTimestamp, ts)
	req.Header.Set(headerSignature, base64.StdEncoding.EncodeToString(sig))
	return nil
}

// Verifier authenticates signed requests against a trust store. It
// implements soap.Authenticator.
type Verifier struct {
	Trust *TrustStore
	// Now allows tests to control the clock; defaults to time.Now.
	Now func() time.Time
}

// Authenticate verifies the certificate chain and request signature,
// returning the caller's effective DN.
func (v *Verifier) Authenticate(r *http.Request, body []byte) (string, error) {
	chainB64 := r.Header.Get(headerChain)
	if chainB64 == "" {
		return "", errors.New("gsi: request not signed")
	}
	chainJSON, err := base64.StdEncoding.DecodeString(chainB64)
	if err != nil {
		return "", fmt.Errorf("gsi: decode chain: %w", err)
	}
	var chain []*Certificate
	if err := json.Unmarshal(chainJSON, &chain); err != nil {
		return "", fmt.Errorf("gsi: parse chain: %w", err)
	}
	now := time.Now()
	if v.Now != nil {
		now = v.Now()
	}
	dn, err := v.Trust.VerifyChain(chain, now)
	if err != nil {
		return "", err
	}
	tsStr := r.Header.Get(headerTimestamp)
	ts, err := time.Parse(time.RFC3339, tsStr)
	if err != nil {
		return "", fmt.Errorf("gsi: bad timestamp: %w", err)
	}
	if d := now.Sub(ts); d > maxClockSkew || d < -maxClockSkew {
		return "", ErrStale
	}
	sig, err := base64.StdEncoding.DecodeString(r.Header.Get(headerSignature))
	if err != nil {
		return "", fmt.Errorf("gsi: decode signature: %w", err)
	}
	if !ed25519.Verify(chain[0].PublicKey, signingBytes(r.Method, r.URL.Path, tsStr, body), sig) {
		return "", ErrBadSignature
	}
	return dn, nil
}
