package soap

import (
	"bytes"
	"context"
	"errors"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mcs/internal/obs"
)

// Observability behavior of the transport layer: dispatch instrumentation,
// request-ID correlation, slow-op logging, context handling and typed fault
// codes.

func TestDispatchMetrics(t *testing.T) {
	s, ts := newEchoServer(t)
	reg := obs.NewRegistry()
	s.SetMetrics(reg)
	c := NewClient(ts.URL)

	var resp echoResponse
	for i := 0; i < 3; i++ {
		if err := c.Call("echo", &echoRequest{Message: "hi"}, &resp); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Call("echo", &echoRequest{Message: "boom"}, &resp); err == nil {
		t.Fatal("boom succeeded")
	}
	m := reg.Op("echo")
	if m.Requests() != 4 || m.Errors() != 1 || m.InFlight() != 0 {
		t.Fatalf("requests=%d errors=%d inflight=%d", m.Requests(), m.Errors(), m.InFlight())
	}
	if m.Latency().Count() != 4 {
		t.Fatalf("latency samples = %d", m.Latency().Count())
	}

	// Unknown operations and garbage count as malformed, not per-op.
	type otherReq struct {
		XMLName struct{} `xml:"urn:test nosuch"`
	}
	_ = c.Call("nosuch", &otherReq{}, &resp)
	http.Post(ts.URL, "text/xml", strings.NewReader("junk")) //nolint:errcheck
	if reg.MalformedCount() != 2 {
		t.Fatalf("malformed = %d", reg.MalformedCount())
	}
}

func TestDispatchMetricsConcurrent(t *testing.T) {
	s, ts := newEchoServer(t)
	reg := obs.NewRegistry()
	s.SetMetrics(reg)

	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewClient(ts.URL)
			var resp echoResponse
			for i := 0; i < per; i++ {
				if err := c.Call("echo", &echoRequest{Message: "x", N: i}, &resp); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	m := reg.Op("echo")
	if m.Requests() != workers*per || m.Errors() != 0 || m.InFlight() != 0 {
		t.Fatalf("requests=%d errors=%d inflight=%d", m.Requests(), m.Errors(), m.InFlight())
	}
}

func TestRequestIDGeneratedAndEchoed(t *testing.T) {
	s := NewServer("TestService", "urn:test")
	var seen []string
	Handle(s, "echo", func(ctx *Ctx, req *echoRequest) (*echoResponse, error) {
		seen = append(seen, ctx.RequestID)
		return &echoResponse{Message: req.Message}, nil
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// The client generates a fresh ID per call...
	c := NewClient(ts.URL)
	var resp echoResponse
	if err := c.Call("echo", &echoRequest{}, &resp); err != nil {
		t.Fatal(err)
	}
	if err := c.Call("echo", &echoRequest{}, &resp); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] == "" || seen[0] == seen[1] {
		t.Fatalf("request IDs = %v", seen)
	}

	// ...and a caller-supplied header value wins and is echoed back.
	c.Header = http.Header{}
	c.Header.Set(obs.RequestIDHeader, "my-trace-42")
	payload, err := Marshal(&echoRequest{})
	if err != nil {
		t.Fatal(err)
	}
	httpReq, _ := http.NewRequest(http.MethodPost, ts.URL, bytes.NewReader(payload))
	httpReq.Header.Set(obs.RequestIDHeader, "my-trace-42")
	httpResp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if got := httpResp.Header.Get(obs.RequestIDHeader); got != "my-trace-42" {
		t.Fatalf("echoed request ID = %q", got)
	}
	if seen[len(seen)-1] != "my-trace-42" {
		t.Fatalf("handler saw %q", seen[len(seen)-1])
	}
}

func TestSlowOpLogged(t *testing.T) {
	s := NewServer("TestService", "urn:test")
	Handle(s, "echo", func(ctx *Ctx, req *echoRequest) (*echoResponse, error) {
		time.Sleep(5 * time.Millisecond)
		return &echoResponse{}, nil
	})
	var buf bytes.Buffer
	slow := obs.NewSlowOpLog(time.Millisecond, log.New(&buf, "", 0))
	s.SetSlowOpLog(slow)
	ts := httptest.NewServer(s)
	defer ts.Close()

	c := NewClient(ts.URL)
	var resp echoResponse
	if err := c.Call("echo", &echoRequest{}, &resp); err != nil {
		t.Fatal(err)
	}
	if slow.Count() != 1 {
		t.Fatalf("slow count = %d", slow.Count())
	}
	if text := buf.String(); !strings.Contains(text, "op=echo") || !strings.Contains(text, "req=") {
		t.Fatalf("slow log = %q", text)
	}
}

func TestCallCtxCancellation(t *testing.T) {
	block := make(chan struct{})
	s := NewServer("TestService", "urn:test")
	Handle(s, "echo", func(ctx *Ctx, req *echoRequest) (*echoResponse, error) {
		<-block
		return &echoResponse{}, nil
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer close(block)

	c := NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	var resp echoResponse
	start := time.Now()
	err := c.CallCtx(ctx, "echo", &echoRequest{}, &resp)
	if err == nil {
		t.Fatal("call with expired deadline succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded in chain", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not abort the call promptly")
	}
}

func TestCallCtxAlreadyCanceled(t *testing.T) {
	_, ts := newEchoServer(t)
	c := NewClient(ts.URL)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var resp echoResponse
	if err := c.CallCtx(ctx, "echo", &echoRequest{}, &resp); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled in chain", err)
	}
}

func TestErrorCodeHook(t *testing.T) {
	sentinel := errors.New("special failure")
	s := NewServer("TestService", "urn:test")
	Handle(s, "echo", func(ctx *Ctx, req *echoRequest) (*echoResponse, error) {
		return nil, sentinel
	})
	s.SetErrorCode(func(err error) string {
		if errors.Is(err, sentinel) {
			return "Special"
		}
		return ""
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	c := NewClient(ts.URL)
	var resp echoResponse
	err := c.Call("echo", &echoRequest{}, &resp)
	var fault *Fault
	if !errors.As(err, &fault) {
		t.Fatalf("err = %v", err)
	}
	if fault.Code != "soapenv:Server.Special" {
		t.Fatalf("fault code = %q", fault.Code)
	}
}
