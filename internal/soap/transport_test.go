package soap

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// A connection cut mid-body must still surface the HTTP status line and the
// received body prefix — the bytes that did arrive are the only diagnostic
// evidence of what the server was saying when the connection died.
func TestClientMidBodyDropReportsStatusAndPrefix(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Promise a full body, deliver a fragment, then sever the
		// connection without completing the response.
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		w.Header().Set("Content-Length", "1000")
		io.WriteString(w, "<soapenv:Envelope><partial-reply") //nolint:errcheck
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler)
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	var resp echoResponse
	err := c.Call("echo", &echoRequest{Message: "hi"}, &resp)
	if err == nil {
		t.Fatal("expected an error from a truncated response")
	}
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("error = %T %v, want *TransportError", err, err)
	}
	if !strings.Contains(te.Status, "200") {
		t.Errorf("Status = %q, want the 200 status line that arrived", te.Status)
	}
	if !strings.Contains(te.Body, "partial-reply") {
		t.Errorf("Body = %q, want the received prefix", te.Body)
	}
	if te.Err == nil {
		t.Error("Err = nil, want the underlying read error")
	}
	if msg := err.Error(); !strings.Contains(msg, "truncated") || !strings.Contains(msg, "200") {
		t.Errorf("Error() = %q, want status and truncation mentioned", msg)
	}
}

// A clean refusal with no response at all keeps the bare-cause rendering and
// unwraps to the underlying error.
func TestClientConnectionRefusedIsTransportError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close() // nothing listens here anymore

	c := NewClient(url)
	var resp echoResponse
	err := c.Call("echo", &echoRequest{Message: "hi"}, &resp)
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("error = %T %v, want *TransportError", err, err)
	}
	if te.Status != "" || te.Err == nil {
		t.Errorf("TransportError = %+v, want no status and a cause", te)
	}
}
