package soap

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"mcs/internal/faultinject"
	"mcs/internal/obs"
)

// Ctx carries per-request context into operation handlers.
type Ctx struct {
	// DN is the authenticated distinguished name of the caller, or "" when
	// the service runs without authentication.
	DN string
	// RemoteAddr is the peer's network address.
	RemoteAddr string
	// Header exposes the raw request headers (capability assertions etc.).
	Header http.Header
	// RequestID is the correlation ID of this call: taken from the
	// X-MCS-Request-ID request header when present, generated otherwise.
	// It is echoed in the response and attached to audit records and the
	// slow-operation log.
	RequestID string
	// IdempotencyKey is the client's deduplication key for a mutating
	// call (the X-MCS-Idempotency-Key request header), "" when absent.
	// Handlers forward it to the catalog's replay cache so a retried
	// write applies exactly once.
	IdempotencyKey string
}

// Authenticator verifies a request before dispatch and returns the caller's
// DN. The gsi package provides an implementation.
type Authenticator interface {
	Authenticate(r *http.Request, body []byte) (dn string, err error)
}

// handlerFunc is the internal type-erased operation handler. It decodes the
// operation element from dec (positioned at start) and executes the call.
type handlerFunc func(ctx *Ctx, dec *xml.Decoder, start *xml.StartElement) (any, error)

// Server dispatches SOAP requests to registered operations by the local
// name of the first Body element.
type Server struct {
	mu   sync.RWMutex
	ops  map[string]handlerFunc
	auth Authenticator
	// ServiceName and Namespace feed the generated WSDL.
	ServiceName string
	Namespace   string

	metrics *obs.Registry
	slow    *obs.SlowOpLog
	faults  *faultinject.Injector
	// errorCode, when set, maps a handler error to a SOAP fault code suffix
	// (e.g. "NotFound" → faultcode soapenv:Server.NotFound), letting typed
	// errors round-trip to clients. An empty return means plain "Server".
	errorCode func(error) string
}

// NewServer returns a server with no registered operations.
func NewServer(serviceName, namespace string) *Server {
	return &Server{
		ops:         make(map[string]handlerFunc),
		ServiceName: serviceName,
		Namespace:   namespace,
	}
}

// SetAuthenticator installs a request authenticator; nil disables auth.
func (s *Server) SetAuthenticator(a Authenticator) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.auth = a
}

// SetMetrics installs a metrics registry recording every dispatch; nil
// disables instrumentation.
func (s *Server) SetMetrics(r *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = r
}

// Metrics returns the installed metrics registry (nil when disabled).
func (s *Server) Metrics() *obs.Registry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.metrics
}

// SetSlowOpLog installs a slow-operation log; nil disables it.
func (s *Server) SetSlowOpLog(l *obs.SlowOpLog) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slow = l
}

// SetFaultInjector installs a chaos fault injector evaluated at the
// dispatch, after and transport sites of every call; nil (the default)
// disables injection.
func (s *Server) SetFaultInjector(in *faultinject.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = in
}

// SetErrorCode installs the error→fault-code mapping used when handlers
// fail; nil restores the plain "Server" fault code.
func (s *Server) SetErrorCode(fn func(error) string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.errorCode = fn
}

// Handle registers a typed operation handler. The request element's local
// name must equal name; the handler's response is marshalled as the reply
// payload. Req and Resp must be XML-marshallable structs.
func Handle[Req, Resp any](s *Server, name string, fn func(ctx *Ctx, req *Req) (*Resp, error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.ops[name]; dup {
		panic(fmt.Sprintf("soap: operation %q registered twice", name))
	}
	s.ops[name] = func(ctx *Ctx, dec *xml.Decoder, start *xml.StartElement) (any, error) {
		var req Req
		if err := dec.DecodeElement(&req, start); err != nil {
			return nil, fmt.Errorf("decode %s request: %w", name, err)
		}
		return fn(ctx, &req)
	}
}

// HandleAny registers a type-erased operation handler, the mount point for
// transport-neutral dispatch tables: newReq yields a fresh request struct for
// the decoder and call executes the operation. Handle remains the typed
// convenience for directly-registered operations.
func (s *Server) HandleAny(name string, newReq func() any, call func(ctx *Ctx, req any) (any, error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.ops[name]; dup {
		panic(fmt.Sprintf("soap: operation %q registered twice", name))
	}
	s.ops[name] = func(ctx *Ctx, dec *xml.Decoder, start *xml.StartElement) (any, error) {
		req := newReq()
		if err := dec.DecodeElement(req, start); err != nil {
			return nil, fmt.Errorf("decode %s request: %w", name, err)
		}
		return call(ctx, req)
	}
}

// Operations returns the sorted operation names (for WSDL generation).
func (s *Server) Operations() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.ops))
	for n := range s.ops {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// malformed counts one pre-dispatch rejection when metrics are enabled.
func (s *Server) malformed(m *obs.Registry) {
	if m != nil {
		m.Malformed()
	}
}

// ServeHTTP implements http.Handler: POST with a SOAP envelope dispatches an
// operation; GET with ?wsdl returns the service description.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		if _, ok := r.URL.Query()["wsdl"]; ok {
			w.Header().Set("Content-Type", "text/xml; charset=utf-8")
			io.WriteString(w, s.WSDL()) //nolint:errcheck // best-effort response write
			return
		}
		http.Error(w, "MCS SOAP endpoint; POST SOAP envelopes here", http.StatusOK)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}

	s.mu.RLock()
	auth, metrics, slow, inj := s.auth, s.metrics, s.slow, s.faults
	s.mu.RUnlock()

	// Correlate the call: accept the client's request ID or mint one, and
	// echo it so the caller can quote it when chasing a slow or failed op.
	reqID := r.Header.Get(obs.RequestIDHeader)
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	w.Header().Set(obs.RequestIDHeader, reqID)

	raw, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		s.malformed(metrics)
		s.writeFault(w, "Client", fmt.Sprintf("read request: %v", err))
		return
	}
	ctx := &Ctx{
		RemoteAddr:     r.RemoteAddr,
		Header:         r.Header,
		RequestID:      reqID,
		IdempotencyKey: r.Header.Get(obs.IdempotencyKeyHeader),
	}

	if auth != nil {
		dn, err := auth.Authenticate(r, raw)
		if err != nil {
			s.malformed(metrics)
			s.writeFault(w, "Client.Authentication", err.Error())
			return
		}
		ctx.DN = dn
	}

	dec := xml.NewDecoder(bytes.NewReader(raw))
	se, err := decodeBody(dec)
	if err != nil {
		s.malformed(metrics)
		s.writeFault(w, "Client", err.Error())
		return
	}
	s.mu.RLock()
	fn, ok := s.ops[se.Name.Local]
	s.mu.RUnlock()
	if !ok {
		s.malformed(metrics)
		s.writeFault(w, "Client", fmt.Sprintf("unknown operation %q", se.Name.Local))
		return
	}

	// Dispatch-site injection: the call fails before its handler runs, so
	// it has no effect to deduplicate — the plainest retryable failure.
	if f := s.inject(inj, metrics, faultinject.SiteDispatch, se.Name.Local, reqID); f != nil {
		switch f.Kind {
		case faultinject.KindLatency:
			// Slow dispatch only; the handler still runs below.
		case faultinject.KindDrop:
			panic(http.ErrAbortHandler)
		default:
			s.writeFault(w, s.faultCode(f.Err),
				fmt.Sprintf("injected %s fault before %s: %v", f.Kind, se.Name.Local, f.Err))
			return
		}
	}

	// Instrumented dispatch: in-flight gauge around the handler, then
	// request/error counters and the latency histogram on completion.
	var om *obs.OpMetrics
	if metrics != nil {
		om = metrics.Op(se.Name.Local)
		om.Begin()
	}
	start := time.Now()
	resp, err := fn(ctx, dec, &se)
	elapsed := time.Since(start)
	if om != nil {
		om.End(elapsed, err)
	}
	slow.Record(se.Name.Local, reqID, ctx.DN, elapsed, err)

	if err != nil {
		s.writeFault(w, s.faultCode(err), err.Error())
		return
	}

	// After-site injection: the handler has run (and committed) but the
	// reply is lost. Only an idempotent retry recovers from this one.
	if f := s.inject(inj, metrics, faultinject.SiteAfter, se.Name.Local, reqID); f != nil {
		switch f.Kind {
		case faultinject.KindLatency:
		case faultinject.KindDrop:
			panic(http.ErrAbortHandler)
		default:
			s.writeFault(w, s.faultCode(f.Err),
				fmt.Sprintf("injected %s fault after %s: %v", f.Kind, se.Name.Local, f.Err))
			return
		}
	}

	out, err := Marshal(resp)
	if err != nil {
		s.writeFault(w, "Server", err.Error())
		return
	}

	// Transport-site injection: the response write itself misbehaves.
	if f := s.inject(inj, metrics, faultinject.SiteTransport, se.Name.Local, reqID); f != nil {
		switch f.Kind {
		case faultinject.KindDrop:
			panic(http.ErrAbortHandler)
		case faultinject.KindPartial:
			// Advertise the full length, deliver a prefix, sever the
			// connection: the client's body read fails mid-stream with
			// the status line already in hand.
			n := f.TruncateAt
			if n <= 0 || n >= len(out) {
				n = len(out) / 2
			}
			w.Header().Set("Content-Type", "text/xml; charset=utf-8")
			w.Header().Set("Content-Length", strconv.Itoa(len(out)))
			w.Write(out[:n]) //nolint:errcheck // deliberately truncated write
			if fl, ok := w.(http.Flusher); ok {
				fl.Flush()
			}
			panic(http.ErrAbortHandler)
		case faultinject.KindError:
			s.writeFault(w, s.faultCode(f.Err),
				fmt.Sprintf("injected error fault writing %s reply: %v", se.Name.Local, f.Err))
			return
		}
	}

	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.Write(out) //nolint:errcheck // best-effort response write
}

// inject evaluates one fault site, counting the injection and applying any
// latency component; the caller applies the fault's visible effect.
func (s *Server) inject(inj *faultinject.Injector, m *obs.Registry, site faultinject.Site, op, reqID string) *faultinject.Fault {
	f := inj.Eval(site, op, reqID)
	if f == nil {
		return nil
	}
	if m != nil {
		m.FaultInjected(string(site))
	}
	if f.Delay > 0 {
		inj.Sleep(f.Delay)
	}
	return f
}

// faultCode renders the fault code for a handler error, consulting the
// installed error→code mapping.
func (s *Server) faultCode(err error) string {
	s.mu.RLock()
	fn := s.errorCode
	s.mu.RUnlock()
	if fn != nil {
		if suffix := fn(err); suffix != "" {
			return "Server." + suffix
		}
	}
	return "Server"
}

func (s *Server) writeFault(w http.ResponseWriter, code, msg string) {
	f := Fault{Code: "soapenv:" + code, String: msg}
	out, err := Marshal(&f)
	if err != nil {
		http.Error(w, msg, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.WriteHeader(http.StatusInternalServerError)
	w.Write(out) //nolint:errcheck // best-effort response write
}

// WSDL renders a minimal WSDL 1.1 description of the registered operations.
// The original MCS generated its Java client stubs from exactly this kind of
// document.
func (s *Server) WSDL() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s", xml.Header)
	fmt.Fprintf(&b, `<definitions name=%q targetNamespace=%q
  xmlns="http://schemas.xmlsoap.org/wsdl/"
  xmlns:soap="http://schemas.xmlsoap.org/wsdl/soap/"
  xmlns:tns=%q>
`, s.ServiceName, s.Namespace, s.Namespace)
	for _, op := range s.Operations() {
		fmt.Fprintf(&b, "  <message name=%q/>\n", op+"Request")
		fmt.Fprintf(&b, "  <message name=%q/>\n", op+"Response")
	}
	fmt.Fprintf(&b, "  <portType name=%q>\n", s.ServiceName+"PortType")
	for _, op := range s.Operations() {
		fmt.Fprintf(&b, `    <operation name=%q>
      <input message="tns:%sRequest"/>
      <output message="tns:%sResponse"/>
    </operation>
`, op, op, op)
	}
	fmt.Fprintf(&b, "  </portType>\n</definitions>\n")
	return b.String()
}
