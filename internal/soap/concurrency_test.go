package soap

import (
	"encoding/xml"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

type ctrRequest struct {
	XMLName xml.Name `xml:"urn:test incr"`
	By      int      `xml:"by"`
}

type ctrResponse struct {
	XMLName xml.Name `xml:"urn:test incrResponse"`
	Total   int64    `xml:"total"`
}

// TestConcurrentCalls hammers one server from many goroutines and checks
// that every call is dispatched exactly once with its own payload.
func TestConcurrentCalls(t *testing.T) {
	var total atomic.Int64
	s := NewServer("Ctr", "urn:test")
	Handle(s, "incr", func(ctx *Ctx, req *ctrRequest) (*ctrResponse, error) {
		return &ctrResponse{Total: total.Add(int64(req.By))}, nil
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	const workers = 16
	const callsPerWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewClient(ts.URL)
			for i := 0; i < callsPerWorker; i++ {
				var resp ctrResponse
				if err := c.Call("incr", &ctrRequest{By: 1}, &resp); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := total.Load(); got != workers*callsPerWorker {
		t.Fatalf("total = %d, want %d", got, workers*callsPerWorker)
	}
}

// TestClientSharedAcrossGoroutines verifies one Client (one "host") is safe
// for concurrent threads, as the bench harness assumes.
func TestClientSharedAcrossGoroutines(t *testing.T) {
	s := NewServer("Echo2", "urn:test")
	Handle(s, "incr", func(ctx *Ctx, req *ctrRequest) (*ctrResponse, error) {
		return &ctrResponse{Total: int64(req.By) * 2}, nil
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := NewClient(ts.URL)
	var wg sync.WaitGroup
	fail := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var resp ctrResponse
				if err := c.Call("incr", &ctrRequest{By: g*100 + i}, &resp); err != nil {
					fail <- err.Error()
					return
				}
				if resp.Total != int64(g*100+i)*2 {
					fail <- "response mismatch: answers crossed between goroutines"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}
}
