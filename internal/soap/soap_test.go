package soap

import (
	"encoding/xml"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

type echoRequest struct {
	XMLName xml.Name `xml:"urn:test echo"`
	Message string   `xml:"message"`
	N       int      `xml:"n"`
}

type echoResponse struct {
	XMLName xml.Name `xml:"urn:test echoResponse"`
	Message string   `xml:"message"`
	N       int      `xml:"n"`
}

func newEchoServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer("TestService", "urn:test")
	Handle(s, "echo", func(ctx *Ctx, req *echoRequest) (*echoResponse, error) {
		if req.Message == "boom" {
			return nil, errors.New("handler exploded")
		}
		return &echoResponse{Message: req.Message, N: req.N * 2}, nil
	})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func TestRoundTrip(t *testing.T) {
	_, ts := newEchoServer(t)
	c := NewClient(ts.URL)
	var resp echoResponse
	if err := c.Call("echo", &echoRequest{Message: "hi", N: 21}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Message != "hi" || resp.N != 42 {
		t.Fatalf("response = %+v", resp)
	}
}

func TestFaultPropagation(t *testing.T) {
	_, ts := newEchoServer(t)
	c := NewClient(ts.URL)
	var resp echoResponse
	err := c.Call("echo", &echoRequest{Message: "boom"}, &resp)
	var fault *Fault
	if !errors.As(err, &fault) {
		t.Fatalf("error = %v, want *Fault", err)
	}
	if !strings.Contains(fault.String, "handler exploded") {
		t.Fatalf("fault string = %q", fault.String)
	}
	if fault.Code != "soapenv:Server" {
		t.Fatalf("fault code = %q", fault.Code)
	}
}

func TestUnknownOperation(t *testing.T) {
	_, ts := newEchoServer(t)
	c := NewClient(ts.URL)
	type otherReq struct {
		XMLName xml.Name `xml:"urn:test nosuch"`
	}
	var resp echoResponse
	err := c.Call("nosuch", &otherReq{}, &resp)
	var fault *Fault
	if !errors.As(err, &fault) || !strings.Contains(fault.String, "unknown operation") {
		t.Fatalf("error = %v", err)
	}
}

func TestMalformedEnvelope(t *testing.T) {
	_, ts := newEchoServer(t)
	resp, err := http.Post(ts.URL, "text/xml", strings.NewReader("this is not xml"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestSpecialCharactersSurviveXML(t *testing.T) {
	_, ts := newEchoServer(t)
	c := NewClient(ts.URL)
	msg := `<>&"'` + "\n\ttabs & ümläuts 日本語"
	var resp echoResponse
	if err := c.Call("echo", &echoRequest{Message: msg}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Message != msg {
		t.Fatalf("round-tripped %q, want %q", resp.Message, msg)
	}
}

func TestWSDLGeneration(t *testing.T) {
	s, ts := newEchoServer(t)
	if ops := s.Operations(); len(ops) != 1 || ops[0] != "echo" {
		t.Fatalf("Operations() = %v", ops)
	}
	resp, err := http.Get(ts.URL + "?wsdl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	wsdl := string(buf[:n])
	for _, want := range []string{"definitions", "TestService", "echoRequest", "echoResponse", "portType"} {
		if !strings.Contains(wsdl, want) {
			t.Errorf("WSDL missing %q", want)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newEchoServer(t)
	req, _ := http.NewRequest(http.MethodPut, ts.URL, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	s := NewServer("x", "urn:x")
	Handle(s, "op", func(ctx *Ctx, req *echoRequest) (*echoResponse, error) { return nil, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Handle(s, "op", func(ctx *Ctx, req *echoRequest) (*echoResponse, error) { return nil, nil })
}

type denyAuth struct{}

func (denyAuth) Authenticate(r *http.Request, body []byte) (string, error) {
	if r.Header.Get("X-Token") == "letmein" {
		return "CN=alice", nil
	}
	return "", errors.New("bad credentials")
}

func TestAuthenticatorHook(t *testing.T) {
	s := NewServer("TestService", "urn:test")
	var gotDN string
	Handle(s, "echo", func(ctx *Ctx, req *echoRequest) (*echoResponse, error) {
		gotDN = ctx.DN
		return &echoResponse{Message: req.Message}, nil
	})
	s.SetAuthenticator(denyAuth{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	c := NewClient(ts.URL)
	var resp echoResponse
	err := c.Call("echo", &echoRequest{Message: "m"}, &resp)
	var fault *Fault
	if !errors.As(err, &fault) || !strings.Contains(fault.Code, "Authentication") {
		t.Fatalf("unauthenticated call error = %v", err)
	}

	c.Sign = func(req *http.Request, body []byte) error {
		req.Header.Set("X-Token", "letmein")
		return nil
	}
	if err := c.Call("echo", &echoRequest{Message: "m"}, &resp); err != nil {
		t.Fatal(err)
	}
	if gotDN != "CN=alice" {
		t.Fatalf("handler DN = %q", gotDN)
	}
}

func TestMarshalUnmarshalDirect(t *testing.T) {
	raw, err := Marshal(&echoRequest{Message: "x", N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "Envelope") || !strings.Contains(string(raw), "Body") {
		t.Fatalf("envelope missing: %s", raw)
	}
	var req echoRequest
	if err := Unmarshal(raw, &req); err != nil {
		t.Fatal(err)
	}
	if req.Message != "x" || req.N != 3 {
		t.Fatalf("round trip = %+v", req)
	}
}

func TestUnmarshalFault(t *testing.T) {
	raw, err := Marshal(&Fault{Code: "soapenv:Server", String: "nope"})
	if err != nil {
		t.Fatal(err)
	}
	var resp echoResponse
	err = Unmarshal(raw, &resp)
	var fault *Fault
	if !errors.As(err, &fault) || fault.String != "nope" {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptyBody(t *testing.T) {
	raw := []byte(xml.Header + `<soapenv:Envelope xmlns:soapenv="` + EnvelopeNS + `"><soapenv:Body></soapenv:Body></soapenv:Envelope>`)
	var resp echoResponse
	if err := Unmarshal(raw, &resp); err == nil {
		t.Fatal("empty body did not fail")
	}
}
