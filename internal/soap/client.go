package soap

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"mcs/internal/obs"
)

// Client issues SOAP calls to a single endpoint over HTTP.
//
// Each Client owns its own http.Client and connection pool, so benchmark
// harnesses can model independent "client hosts" by constructing one Client
// per simulated host.
type Client struct {
	Endpoint string
	HTTP     *http.Client
	// Sign, when set, is called with the serialized envelope and may add
	// authentication headers (the gsi package provides an implementation).
	Sign func(req *http.Request, body []byte) error
	// Header holds extra headers attached to every request (e.g. CAS
	// capability assertions).
	Header http.Header
	// RequestIDHeader names the header carrying the per-call correlation
	// ID (default obs.RequestIDHeader). Set it to "" to disable request-ID
	// propagation entirely.
	RequestIDHeader string
	// NewRequestID generates a correlation ID for calls that do not carry
	// one already; nil uses obs.NewRequestID.
	NewRequestID func() string
}

// NewClient returns a client for endpoint with a dedicated connection pool.
func NewClient(endpoint string) *Client {
	return &Client{
		Endpoint: endpoint,
		HTTP: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 64,
			},
		},
		RequestIDHeader: obs.RequestIDHeader,
	}
}

// Call performs one SOAP round trip with no deadline beyond the client's
// HTTP timeout. See CallCtx.
func (c *Client) Call(action string, req, resp any) error {
	return c.CallCtx(context.Background(), action, req, resp)
}

// CallCtx performs one SOAP request/response round trip. action names the
// operation (sent as the SOAPAction header), req is marshalled as the Body
// payload and the reply payload is unmarshalled into resp. A SOAP fault is
// returned as a *Fault error.
//
// The context's deadline and cancellation are honored by the HTTP
// transport: an expired or canceled ctx aborts the request (including any
// in-flight response read) and surfaces ctx.Err in the returned error
// chain. Every call also carries a request correlation ID in the
// RequestIDHeader header, generated per call unless the header is already
// present in c.Header.
func (c *Client) CallCtx(ctx context.Context, action string, req, resp any) error {
	payload, err := Marshal(req)
	if err != nil {
		return err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Endpoint, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("soap: build request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "text/xml; charset=utf-8")
	httpReq.Header.Set("SOAPAction", `"`+action+`"`)
	for k, vals := range c.Header {
		for _, v := range vals {
			httpReq.Header.Add(k, v)
		}
	}
	if c.RequestIDHeader != "" && httpReq.Header.Get(c.RequestIDHeader) == "" {
		gen := c.NewRequestID
		if gen == nil {
			gen = obs.NewRequestID
		}
		httpReq.Header.Set(c.RequestIDHeader, gen())
	}
	if c.Sign != nil {
		if err := c.Sign(httpReq, payload); err != nil {
			return fmt.Errorf("soap: sign request: %w", err)
		}
	}
	httpResp, err := c.HTTP.Do(httpReq)
	if err != nil {
		return fmt.Errorf("soap: call %s: %w", action, err)
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(httpResp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("soap: read response: %w", err)
	}
	if httpResp.StatusCode < 200 || httpResp.StatusCode > 299 {
		// Servers report SOAP faults with an error status (HTTP 500 per the
		// SOAP 1.1 binding) — surface those as *Fault. Anything else —
		// typically an intermediary's error page — must not reach the XML
		// decoder as if it were a reply, so quote the status and a body
		// prefix instead of an opaque parse error.
		if err := Unmarshal(raw, resp); err != nil {
			if _, ok := err.(*Fault); ok {
				return err
			}
		}
		return fmt.Errorf("soap: call %s: server returned %s: %q",
			action, httpResp.Status, bodyPrefix(raw))
	}
	if err := Unmarshal(raw, resp); err != nil {
		return err
	}
	return nil
}

// bodyPrefix returns the leading bytes of a response body for error
// messages, truncating long bodies.
func bodyPrefix(raw []byte) string {
	const max = 256
	if len(raw) > max {
		return string(raw[:max]) + "..."
	}
	return string(raw)
}
