package soap

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client issues SOAP calls to a single endpoint over HTTP.
//
// Each Client owns its own http.Client and connection pool, so benchmark
// harnesses can model independent "client hosts" by constructing one Client
// per simulated host.
type Client struct {
	Endpoint string
	HTTP     *http.Client
	// Sign, when set, is called with the serialized envelope and may add
	// authentication headers (the gsi package provides an implementation).
	Sign func(req *http.Request, body []byte) error
	// Header holds extra headers attached to every request (e.g. CAS
	// capability assertions).
	Header http.Header
}

// NewClient returns a client for endpoint with a dedicated connection pool.
func NewClient(endpoint string) *Client {
	return &Client{
		Endpoint: endpoint,
		HTTP: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 64,
			},
		},
	}
}

// Call performs one SOAP request/response round trip. action names the
// operation (sent as the SOAPAction header), req is marshalled as the Body
// payload and the reply payload is unmarshalled into resp. A SOAP fault is
// returned as a *Fault error.
func (c *Client) Call(action string, req, resp any) error {
	payload, err := Marshal(req)
	if err != nil {
		return err
	}
	httpReq, err := http.NewRequest(http.MethodPost, c.Endpoint, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("soap: build request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "text/xml; charset=utf-8")
	httpReq.Header.Set("SOAPAction", `"`+action+`"`)
	for k, vals := range c.Header {
		for _, v := range vals {
			httpReq.Header.Add(k, v)
		}
	}
	if c.Sign != nil {
		if err := c.Sign(httpReq, payload); err != nil {
			return fmt.Errorf("soap: sign request: %w", err)
		}
	}
	httpResp, err := c.HTTP.Do(httpReq)
	if err != nil {
		return fmt.Errorf("soap: call %s: %w", action, err)
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(httpResp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("soap: read response: %w", err)
	}
	if err := Unmarshal(raw, resp); err != nil {
		return err
	}
	return nil
}
