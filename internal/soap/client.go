package soap

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"mcs/internal/obs"
)

// Client issues SOAP calls to a single endpoint over HTTP.
//
// Each Client owns its own http.Client and connection pool, so benchmark
// harnesses can model independent "client hosts" by constructing one Client
// per simulated host.
type Client struct {
	Endpoint string
	HTTP     *http.Client
	// Sign, when set, is called with the serialized envelope and may add
	// authentication headers (the gsi package provides an implementation).
	Sign func(req *http.Request, body []byte) error
	// Header holds extra headers attached to every request (e.g. CAS
	// capability assertions).
	Header http.Header
	// RequestIDHeader names the header carrying the per-call correlation
	// ID (default obs.RequestIDHeader). Set it to "" to disable request-ID
	// propagation entirely.
	RequestIDHeader string
	// NewRequestID generates a correlation ID for calls that do not carry
	// one already; nil uses obs.NewRequestID.
	NewRequestID func() string
}

// NewClient returns a client for endpoint with a dedicated connection pool.
func NewClient(endpoint string) *Client {
	return &Client{
		Endpoint: endpoint,
		HTTP: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 64,
			},
		},
		RequestIDHeader: obs.RequestIDHeader,
	}
}

// Call performs one SOAP round trip with no deadline beyond the client's
// HTTP timeout. See CallCtx.
func (c *Client) Call(action string, req, resp any) error {
	return c.CallCtx(context.Background(), action, req, resp)
}

// TransportError reports a SOAP call that failed without a decodable SOAP
// reply: the request never completed, the connection dropped mid-body, or a
// non-SOAP intermediary answered. Status and Body carry whatever did arrive
// — a connection cut while streaming the response still yields the HTTP
// status line and the received body prefix, not just a bare read error.
type TransportError struct {
	Action string
	Status string // HTTP status line; "" when no response arrived at all
	Body   string // prefix of the (possibly partial) body
	Err    error  // underlying cause; nil for a clean non-2xx reply
}

// Error renders the most specific description the available evidence
// allows.
func (e *TransportError) Error() string {
	switch {
	case e.Err == nil:
		return fmt.Sprintf("soap: call %s: server returned %s: %q", e.Action, e.Status, e.Body)
	case e.Status != "":
		return fmt.Sprintf("soap: call %s: response truncated after %s: %v (partial body %q)",
			e.Action, e.Status, e.Err, e.Body)
	default:
		return fmt.Sprintf("soap: call %s: %v", e.Action, e.Err)
	}
}

// Unwrap exposes the underlying cause for errors.Is/As.
func (e *TransportError) Unwrap() error { return e.Err }

// CallCtx performs one SOAP request/response round trip. action names the
// operation (sent as the SOAPAction header), req is marshalled as the Body
// payload and the reply payload is unmarshalled into resp. A SOAP fault is
// returned as a *Fault error.
//
// The context's deadline and cancellation are honored by the HTTP
// transport: an expired or canceled ctx aborts the request (including any
// in-flight response read) and surfaces ctx.Err in the returned error
// chain. Every call also carries a request correlation ID in the
// RequestIDHeader header, generated per call unless the header is already
// present in c.Header.
func (c *Client) CallCtx(ctx context.Context, action string, req, resp any) error {
	return c.CallHdrCtx(ctx, action, nil, req, resp)
}

// CallHdrCtx is CallCtx with extra per-call headers, applied before the
// automatic request-ID generation so a pinned ID suppresses it. Retry
// layers use extra to repeat one request ID and idempotency key across
// every attempt of a logical call.
func (c *Client) CallHdrCtx(ctx context.Context, action string, extra http.Header, req, resp any) error {
	payload, err := Marshal(req)
	if err != nil {
		return err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Endpoint, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("soap: build request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "text/xml; charset=utf-8")
	httpReq.Header.Set("SOAPAction", `"`+action+`"`)
	for k, vals := range c.Header {
		for _, v := range vals {
			httpReq.Header.Add(k, v)
		}
	}
	for k, vals := range extra {
		httpReq.Header.Del(k)
		for _, v := range vals {
			httpReq.Header.Add(k, v)
		}
	}
	if c.RequestIDHeader != "" && httpReq.Header.Get(c.RequestIDHeader) == "" {
		gen := c.NewRequestID
		if gen == nil {
			gen = obs.NewRequestID
		}
		httpReq.Header.Set(c.RequestIDHeader, gen())
	}
	if c.Sign != nil {
		if err := c.Sign(httpReq, payload); err != nil {
			return fmt.Errorf("soap: sign request: %w", err)
		}
	}
	httpResp, err := c.HTTP.Do(httpReq)
	if err != nil {
		return &TransportError{Action: action, Err: err}
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(httpResp.Body, 64<<20))
	if err != nil {
		// The connection dropped mid-body. The status line and whatever
		// bytes did arrive are still diagnostic gold, so carry them.
		return &TransportError{
			Action: action, Status: httpResp.Status, Body: bodyPrefix(raw), Err: err,
		}
	}
	if httpResp.StatusCode < 200 || httpResp.StatusCode > 299 {
		// Servers report SOAP faults with an error status (HTTP 500 per the
		// SOAP 1.1 binding) — surface those as *Fault. Anything else —
		// typically an intermediary's error page — must not reach the XML
		// decoder as if it were a reply, so quote the status and a body
		// prefix instead of an opaque parse error.
		if err := Unmarshal(raw, resp); err != nil {
			if _, ok := err.(*Fault); ok {
				return err
			}
		}
		return &TransportError{Action: action, Status: httpResp.Status, Body: bodyPrefix(raw)}
	}
	if err := Unmarshal(raw, resp); err != nil {
		return err
	}
	return nil
}

// bodyPrefix returns the leading bytes of a response body for error
// messages, truncating long bodies.
func bodyPrefix(raw []byte) string {
	const max = 256
	if len(raw) > max {
		return string(raw[:max]) + "..."
	}
	return string(raw)
}
