// Package soap implements the SOAP 1.1 over HTTP transport used between the
// MCS client and server.
//
// It stands in for the Apache Axis/Tomcat stack of the original deployment:
// requests and responses are Go structs marshalled into a SOAP envelope with
// encoding/xml, carried in an HTTP POST, and dispatched by body element name.
// Application errors travel as SOAP faults. The round trip through XML and
// HTTP is precisely the "web service overhead" the paper's evaluation
// quantifies, so this layer is implemented honestly rather than bypassed.
package soap

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
)

// EnvelopeNS is the SOAP 1.1 envelope namespace.
const EnvelopeNS = "http://schemas.xmlsoap.org/soap/envelope/"

// envelope is the wire representation of a SOAP message.
type envelope struct {
	XMLName xml.Name `xml:"http://schemas.xmlsoap.org/soap/envelope/ Envelope"`
	Body    body     `xml:"http://schemas.xmlsoap.org/soap/envelope/ Body"`
}

type body struct {
	Inner []byte `xml:",innerxml"`
}

// Fault is a SOAP 1.1 fault, used to carry application errors.
type Fault struct {
	XMLName xml.Name `xml:"http://schemas.xmlsoap.org/soap/envelope/ Fault"`
	Code    string   `xml:"faultcode"`
	String  string   `xml:"faultstring"`
	Detail  string   `xml:"detail,omitempty"`
}

// Error implements the error interface so faults flow naturally to callers.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault %s: %s", f.Code, f.String)
}

// envOpen and envClose are the constant envelope bytes around a marshalled
// payload — exactly what xml.Marshal(envelope{...}) used to produce. Writing
// them as literals means one xml.Encoder per message instead of two (each
// xml.Marshal allocates a 4 KiB bufio.Writer internally, which the
// allocation profile showed as the single largest source of garbage on the
// SOAP add path) and no intermediate copy of the payload bytes.
var (
	envOpen  = []byte(xml.Header + `<Envelope xmlns="` + EnvelopeNS + `"><Body xmlns="` + EnvelopeNS + `">`)
	envClose = []byte(`</Body></Envelope>`)
)

// Marshal wraps payload (a struct with an XMLName) in a SOAP envelope.
func Marshal(payload any) ([]byte, error) {
	inner, err := xml.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("soap: marshal payload: %w", err)
	}
	out := make([]byte, 0, len(envOpen)+len(inner)+len(envClose))
	out = append(out, envOpen...)
	out = append(out, inner...)
	out = append(out, envClose...)
	return out, nil
}

// decodeBody advances dec to the first element inside the SOAP Body and
// returns its start element, leaving the decoder positioned so that
// DecodeElement consumes exactly that element. Streaming to the payload in
// one pass matters: the envelope used to be tokenized once to slice out the
// Body and a second time to unmarshal it, which doubled the XML cost of
// every call — and of every operation inside a large batchWrite body.
func decodeBody(dec *xml.Decoder) (xml.StartElement, error) {
	depth := 0
	inBody := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			if inBody {
				return xml.StartElement{}, fmt.Errorf("soap: empty Body")
			}
			return xml.StartElement{}, fmt.Errorf("soap: no Body element")
		}
		if err != nil {
			return xml.StartElement{}, fmt.Errorf("soap: parse envelope: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			if inBody {
				return t, nil
			}
			if depth == 1 && (t.Name.Space != EnvelopeNS || t.Name.Local != "Envelope") {
				return xml.StartElement{}, fmt.Errorf("soap: parse envelope: unexpected root element <%s>", t.Name.Local)
			}
			if depth == 2 && t.Name.Space == EnvelopeNS && t.Name.Local == "Body" {
				inBody = true
			}
		case xml.EndElement:
			depth--
			if inBody {
				// Leaving the Body without seeing a payload element.
				return xml.StartElement{}, fmt.Errorf("soap: empty Body")
			}
		}
	}
}

// Unmarshal extracts the first Body element of a SOAP message into v.
// If the body is a Fault, it is returned as the error.
func Unmarshal(raw []byte, v any) error {
	dec := xml.NewDecoder(bytes.NewReader(raw))
	se, err := decodeBody(dec)
	if err != nil {
		return err
	}
	if se.Name.Local == "Fault" {
		var f Fault
		if err := dec.DecodeElement(&f, &se); err != nil {
			return fmt.Errorf("soap: parse fault: %w", err)
		}
		return &f
	}
	if err := dec.DecodeElement(v, &se); err != nil {
		return fmt.Errorf("soap: unmarshal %s: %w", se.Name.Local, err)
	}
	return nil
}
