// Package soap implements the SOAP 1.1 over HTTP transport used between the
// MCS client and server.
//
// It stands in for the Apache Axis/Tomcat stack of the original deployment:
// requests and responses are Go structs marshalled into a SOAP envelope with
// encoding/xml, carried in an HTTP POST, and dispatched by body element name.
// Application errors travel as SOAP faults. The round trip through XML and
// HTTP is precisely the "web service overhead" the paper's evaluation
// quantifies, so this layer is implemented honestly rather than bypassed.
package soap

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
)

// EnvelopeNS is the SOAP 1.1 envelope namespace.
const EnvelopeNS = "http://schemas.xmlsoap.org/soap/envelope/"

// envelope is the wire representation of a SOAP message.
type envelope struct {
	XMLName xml.Name `xml:"http://schemas.xmlsoap.org/soap/envelope/ Envelope"`
	Body    body     `xml:"http://schemas.xmlsoap.org/soap/envelope/ Body"`
}

type body struct {
	Inner []byte `xml:",innerxml"`
}

// Fault is a SOAP 1.1 fault, used to carry application errors.
type Fault struct {
	XMLName xml.Name `xml:"http://schemas.xmlsoap.org/soap/envelope/ Fault"`
	Code    string   `xml:"faultcode"`
	String  string   `xml:"faultstring"`
	Detail  string   `xml:"detail,omitempty"`
}

// Error implements the error interface so faults flow naturally to callers.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault %s: %s", f.Code, f.String)
}

// Marshal wraps payload (a struct with an XMLName) in a SOAP envelope.
func Marshal(payload any) ([]byte, error) {
	inner, err := xml.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("soap: marshal payload: %w", err)
	}
	env := envelope{Body: body{Inner: inner}}
	out, err := xml.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("soap: marshal envelope: %w", err)
	}
	return append([]byte(xml.Header), out...), nil
}

// bodyElement extracts the name of the first element inside the Body and the
// raw bytes of the Body content.
func bodyElement(raw []byte) (xml.Name, []byte, error) {
	var env envelope
	if err := xml.Unmarshal(raw, &env); err != nil {
		return xml.Name{}, nil, fmt.Errorf("soap: parse envelope: %w", err)
	}
	dec := xml.NewDecoder(bytes.NewReader(env.Body.Inner))
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return xml.Name{}, nil, fmt.Errorf("soap: empty Body")
		}
		if err != nil {
			return xml.Name{}, nil, fmt.Errorf("soap: parse body: %w", err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			return se.Name, env.Body.Inner, nil
		}
	}
}

// Unmarshal extracts the first Body element of a SOAP message into v.
// If the body is a Fault, it is returned as the error.
func Unmarshal(raw []byte, v any) error {
	name, inner, err := bodyElement(raw)
	if err != nil {
		return err
	}
	if name.Local == "Fault" {
		var f Fault
		if err := xml.Unmarshal(inner, &f); err != nil {
			return fmt.Errorf("soap: parse fault: %w", err)
		}
		return &f
	}
	if err := xml.Unmarshal(inner, v); err != nil {
		return fmt.Errorf("soap: unmarshal %s: %w", name.Local, err)
	}
	return nil
}
