package xmlshred

import (
	"strings"
	"testing"

	"mcs/internal/core"
)

const netcdfDoc = `<?xml version="1.0"?>
<netcdf name="pcmdi.t42">
  <dimension name="lat" length="64"/>
  <dimension name="lon" length="128"/>
  <variable name="temperature">
    <units>K</units>
    <missing>-999.9</missing>
  </variable>
  <global>
    <institution>NCAR</institution>
    <model>CCSM2</model>
    <created>2002-08-15</created>
    <runDate>2002-08-15T12:30:00Z</runDate>
  </global>
</netcdf>`

func TestShredNetCDF(t *testing.T) {
	fields, err := Shred(strings.NewReader(netcdfDoc), "esg")
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Field{}
	for _, f := range fields {
		byName[f.Name] = f
	}
	// Element attributes shredded with @.
	if f, ok := byName["esg.netcdf@name"]; !ok || f.Value.S != "pcmdi.t42" {
		t.Fatalf("netcdf@name = %+v (have %v)", f, keys(byName))
	}
	// Repeated paths suffixed.
	if _, ok := byName["esg.netcdf.dimension@name"]; !ok {
		t.Fatal("first dimension@name missing")
	}
	if _, ok := byName["esg.netcdf.dimension@name.2"]; !ok {
		t.Fatal("second dimension@name missing")
	}
	// Type inference.
	if f := byName["esg.netcdf.dimension@length"]; f.Type != core.AttrInt || f.Value.I != 64 {
		t.Fatalf("length = %+v", f)
	}
	if f := byName["esg.netcdf.variable.missing"]; f.Type != core.AttrFloat || f.Value.F != -999.9 {
		t.Fatalf("missing = %+v", f)
	}
	if f := byName["esg.netcdf.global.created"]; f.Type != core.AttrDate {
		t.Fatalf("created = %+v", f)
	}
	if f := byName["esg.netcdf.global.runDate"]; f.Type != core.AttrDateTime {
		t.Fatalf("runDate = %+v", f)
	}
	if f := byName["esg.netcdf.global.institution"]; f.Type != core.AttrString || f.Value.S != "NCAR" {
		t.Fatalf("institution = %+v", f)
	}
}

func keys(m map[string]Field) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestShredMalformed(t *testing.T) {
	if _, err := Shred(strings.NewReader("<a><b></a>"), ""); err == nil {
		t.Fatal("mismatched tags accepted")
	}
	if _, err := Shred(strings.NewReader("<unclosed>"), ""); err == nil {
		t.Fatal("unclosed element accepted")
	}
}

func TestShredEmptyElementsSkipped(t *testing.T) {
	fields, err := Shred(strings.NewReader("<a><b>  </b><c>x</c></a>"), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != 1 || fields[0].Name != "a.c" {
		t.Fatalf("fields = %+v", fields)
	}
}

const dcDoc = `<record xmlns:dc="http://purl.org/dc/elements/1.1/">
  <dc:title>Community Climate System Model output</dc:title>
  <dc:creator>NCAR</dc:creator>
  <dc:creator>PCMDI</dc:creator>
  <dc:date>2002-08-15</dc:date>
  <dc:format>netCDF</dc:format>
  <internal>ignore me</internal>
</record>`

func TestShredDublinCore(t *testing.T) {
	fields, err := ShredDublinCore(strings.NewReader(dcDoc))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Field{}
	for _, f := range fields {
		byName[f.Name] = f
	}
	if f, ok := byName["dc.title"]; !ok || !strings.Contains(f.Value.S, "Climate") {
		t.Fatalf("dc.title = %+v", f)
	}
	// Repeated creators both captured.
	if _, ok := byName["dc.creator"]; !ok {
		t.Fatal("dc.creator missing")
	}
	if _, ok := byName["dc.creator.2"]; !ok {
		t.Fatal("dc.creator.2 missing")
	}
	if f := byName["dc.date"]; f.Type != core.AttrDate {
		t.Fatalf("dc.date = %+v", f)
	}
	if _, ok := byName["dc.internal"]; ok {
		t.Fatal("non-DC element leaked through")
	}
}

func TestIngestIntoCatalog(t *testing.T) {
	cat, err := core.Open(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const dn = "/CN=esg-loader"
	if _, err := cat.CreateFile(dn, core.FileSpec{Name: "t42.nc"}); err != nil {
		t.Fatal(err)
	}
	fields, err := Shred(strings.NewReader(netcdfDoc), "esg")
	if err != nil {
		t.Fatal(err)
	}
	defined, set, errs := Ingest(cat, dn, core.ObjectFile, "t42.nc", fields)
	if len(errs) != 0 {
		t.Fatalf("ingest errors: %v", errs)
	}
	if defined == 0 || set != len(fields) {
		t.Fatalf("defined=%d set=%d want set=%d", defined, set, len(fields))
	}
	// The shredded metadata is now queryable through MCS.
	names, err := cat.RunQuery(dn, core.Query{Predicates: []core.Predicate{
		{Attribute: "esg.netcdf.global.model", Op: core.OpEq, Value: core.String("CCSM2")},
	}})
	if err != nil || len(names) != 1 || names[0] != "t42.nc" {
		t.Fatalf("query = %v, %v", names, err)
	}
	// Second ingest of the same doc reuses the definitions.
	if _, err := cat.CreateFile(dn, core.FileSpec{Name: "t63.nc"}); err != nil {
		t.Fatal(err)
	}
	defined2, set2, errs2 := Ingest(cat, dn, core.ObjectFile, "t63.nc", fields)
	if defined2 != 0 || set2 != len(fields) || len(errs2) != 0 {
		t.Fatalf("re-ingest: defined=%d set=%d errs=%v", defined2, set2, errs2)
	}
}

func TestIngestTypeConflictRerendered(t *testing.T) {
	cat, _ := core.Open(core.Options{})
	const dn = "/CN=x"
	cat.CreateFile(dn, core.FileSpec{Name: "f"})             //nolint:errcheck
	cat.DefineAttribute(dn, "esg.v", core.AttrString, "was") //nolint:errcheck
	fields := []Field{{Name: "esg.v", Type: core.AttrInt, Value: core.Int(7)}}
	_, set, errs := Ingest(cat, dn, core.ObjectFile, "f", fields)
	if set != 1 || len(errs) != 0 {
		t.Fatalf("set=%d errs=%v", set, errs)
	}
	attrs, _ := cat.GetAttributes(dn, core.ObjectFile, "f")
	if len(attrs) != 1 || attrs[0].Value.Type != core.AttrString || attrs[0].Value.S != "7" {
		t.Fatalf("attrs = %v", attrs)
	}
}
