// Package xmlshred reproduces the Earth System Grid ingestion path of the
// paper: ESG metadata arrived as XML documents (netCDF-convention
// descriptions plus Dublin Core records) and was "parsed or shredded …
// to extract individual attribute values" that were then stored as MCS
// user-defined attributes.
//
// The shredder flattens an XML document into dotted-path fields, infers an
// MCS attribute type for each value (int, float, datetime, date, string)
// and returns them ready to feed core.DefineAttribute / SetAttribute. A
// dedicated Dublin Core mapping renames the dc:* elements to their
// conventional attribute names.
package xmlshred

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"mcs/internal/core"
)

// Field is one shredded attribute candidate.
type Field struct {
	// Name is the dotted element path (e.g. "variable.temperature.units"),
	// prefixed with the prefix given to Shred.
	Name string
	// Type is the inferred MCS attribute type.
	Type core.AttrType
	// Value is the typed value.
	Value core.AttrValue
}

// Attribute converts the field to a core attribute binding.
func (f Field) Attribute() core.Attribute {
	return core.Attribute{Name: f.Name, Value: f.Value}
}

// Shred flattens one XML document into fields. Element paths are joined
// with dots; attributes contribute path@attr entries; repeated paths get
// .2, .3 … suffixes so no value is lost. Elements with only whitespace
// content contribute nothing.
func Shred(r io.Reader, prefix string) ([]Field, error) {
	dec := xml.NewDecoder(r)
	var stack []string
	var fields []Field
	counts := map[string]int{}

	emit := func(path, value string) {
		value = strings.TrimSpace(value)
		if value == "" {
			return
		}
		if prefix != "" {
			path = prefix + "." + path
		}
		counts[path]++
		if n := counts[path]; n > 1 {
			path = fmt.Sprintf("%s.%d", path, n)
		}
		typ, v := inferValue(value)
		fields = append(fields, Field{Name: path, Type: typ, Value: v})
	}

	var text strings.Builder
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlshred: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			stack = append(stack, t.Name.Local)
			text.Reset()
			path := strings.Join(stack, ".")
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				emit(path+"@"+a.Name.Local, a.Value)
			}
		case xml.CharData:
			text.Write(t)
		case xml.EndElement:
			if len(stack) > 0 {
				emit(strings.Join(stack, "."), text.String())
				stack = stack[:len(stack)-1]
			}
			text.Reset()
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmlshred: unclosed element %q", stack[len(stack)-1])
	}
	return fields, nil
}

// inferValue guesses the narrowest MCS type for a string value.
func inferValue(s string) (core.AttrType, core.AttrValue) {
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return core.AttrInt, core.Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return core.AttrFloat, core.Float(f)
	}
	for _, layout := range []string{time.RFC3339, "2006-01-02 15:04:05"} {
		if t, err := time.Parse(layout, s); err == nil {
			return core.AttrDateTime, core.DateTime(t)
		}
	}
	if t, err := time.Parse("2006-01-02", s); err == nil {
		return core.AttrDate, core.Date(t)
	}
	return core.AttrString, core.String(s)
}

// DublinCore element names (the 15-element core the ESG scientists used).
var dublinCoreElements = map[string]bool{
	"title": true, "creator": true, "subject": true, "description": true,
	"publisher": true, "contributor": true, "date": true, "type": true,
	"format": true, "identifier": true, "source": true, "language": true,
	"relation": true, "coverage": true, "rights": true,
}

// ShredDublinCore extracts dc:* elements from a document, emitting fields
// named dc.<element>. Non-DC elements are ignored.
func ShredDublinCore(r io.Reader) ([]Field, error) {
	all, err := Shred(r, "")
	if err != nil {
		return nil, err
	}
	var out []Field
	counts := map[string]int{}
	for _, f := range all {
		parts := strings.Split(f.Name, ".")
		leaf := parts[len(parts)-1]
		// Strip duplicate-suffix digits to find the element name.
		if _, err := strconv.Atoi(leaf); err == nil && len(parts) >= 2 {
			leaf = parts[len(parts)-2]
		}
		if !dublinCoreElements[leaf] {
			continue
		}
		name := "dc." + leaf
		counts[name]++
		if n := counts[name]; n > 1 {
			name = fmt.Sprintf("%s.%d", name, n)
		}
		f.Name = name
		out = append(out, f)
	}
	return out, nil
}

// Ingest defines any missing attribute declarations and binds every field
// to the object — the full ESG publication path in one call. It returns
// how many attributes were defined and how many were set. Fields whose
// inferred type conflicts with an existing declaration are re-rendered as
// the declared type when possible, else skipped with an error entry.
func Ingest(cat *core.Catalog, dn string, objType core.ObjectType, object string, fields []Field) (defined, set int, errs []error) {
	for _, f := range fields {
		def, err := cat.GetAttributeDef(f.Name)
		if err != nil {
			if def, err = cat.DefineAttribute(dn, f.Name, f.Type, "shredded from XML"); err != nil {
				errs = append(errs, fmt.Errorf("define %q: %w", f.Name, err))
				continue
			}
			defined++
		}
		v := f.Value
		if def.Type != v.Type {
			// Re-render as the declared type (e.g. an int-looking value in
			// a string-typed attribute).
			if rv, err := core.ParseAttrValue(def.Type, f.Value.Render()); err == nil {
				v = rv
			} else {
				errs = append(errs, fmt.Errorf("bind %q: declared %s, value %q", f.Name, def.Type, f.Value.Render()))
				continue
			}
		}
		if err := cat.SetAttribute(dn, objType, object, f.Name, v); err != nil {
			errs = append(errs, fmt.Errorf("set %q: %w", f.Name, err))
			continue
		}
		set++
	}
	return defined, set, errs
}
