package obs

import (
	"log"
	"sync/atomic"
	"time"
)

// SlowOpLog logs operations whose latency exceeds a threshold, with enough
// correlation (operation, request ID, caller DN) to chase an individual
// slow request through the audit trail. It is safe for concurrent use.
type SlowOpLog struct {
	// Threshold is the latency above which an operation is logged.
	// A zero or negative threshold disables logging.
	Threshold time.Duration
	// Logger receives slow-op lines; nil uses log.Default().
	Logger *log.Logger

	count atomic.Int64
}

// NewSlowOpLog returns a slow-op log with the given threshold writing to
// logger (nil for the process default).
func NewSlowOpLog(threshold time.Duration, logger *log.Logger) *SlowOpLog {
	return &SlowOpLog{Threshold: threshold, Logger: logger}
}

// Record logs the operation if it exceeded the threshold and returns
// whether it was logged.
func (s *SlowOpLog) Record(op, requestID, dn string, d time.Duration, err error) bool {
	if s == nil || s.Threshold <= 0 || d < s.Threshold {
		return false
	}
	s.count.Add(1)
	lg := s.Logger
	if lg == nil {
		lg = log.Default()
	}
	status := "ok"
	if err != nil {
		status = "error: " + err.Error()
	}
	if dn == "" {
		dn = "-"
	}
	lg.Printf("slow-op op=%s req=%s dn=%q took=%s threshold=%s status=%s",
		op, requestID, dn, d.Round(time.Microsecond), s.Threshold, status)
	return true
}

// Count returns the number of operations logged so far.
func (s *SlowOpLog) Count() int64 {
	if s == nil {
		return 0
	}
	return s.count.Load()
}
