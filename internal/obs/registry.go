package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// OpMetrics holds the counters of one operation. All fields are updated
// atomically; a single OpMetrics is shared by every request dispatching the
// operation.
type OpMetrics struct {
	name string
	// transport labels the wire that carried the operation ("json"); ""
	// (the default SOAP path) keeps the label off rendered metrics so
	// long-standing dashboards and scrapes stay stable.
	transport string
	requests  atomic.Int64
	errors    atomic.Int64
	inflight  atomic.Int64
	latency   Histogram
}

// Name returns the operation name.
func (m *OpMetrics) Name() string { return m.name }

// Transport returns the wire label, "" for the default (SOAP) path.
func (m *OpMetrics) Transport() string { return m.transport }

// Requests returns the number of dispatches (including failed ones).
func (m *OpMetrics) Requests() int64 { return m.requests.Load() }

// Errors returns the number of dispatches that returned an error.
func (m *OpMetrics) Errors() int64 { return m.errors.Load() }

// InFlight returns the number of dispatches currently executing.
func (m *OpMetrics) InFlight() int64 { return m.inflight.Load() }

// Latency returns the operation's latency histogram.
func (m *OpMetrics) Latency() *Histogram { return &m.latency }

// Begin marks a dispatch as started. Pair with End.
func (m *OpMetrics) Begin() { m.inflight.Add(1) }

// End marks a dispatch as finished, recording its duration and outcome.
func (m *OpMetrics) End(d time.Duration, err error) {
	m.inflight.Add(-1)
	m.requests.Add(1)
	if err != nil {
		m.errors.Add(1)
	}
	m.latency.Observe(d)
}

// SizeDist tracks a distribution of sizes (ops per batch, names per page)
// as count/sum/max. All fields are updated atomically.
type SizeDist struct {
	count atomic.Int64
	sum   atomic.Int64
	max   atomic.Int64
}

// Observe records one size sample.
func (d *SizeDist) Observe(n int) {
	d.count.Add(1)
	d.sum.Add(int64(n))
	for {
		cur := d.max.Load()
		if int64(n) <= cur || d.max.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// Count returns the number of samples.
func (d *SizeDist) Count() int64 { return d.count.Load() }

// Sum returns the total of all samples.
func (d *SizeDist) Sum() int64 { return d.sum.Load() }

// Max returns the largest sample seen.
func (d *SizeDist) Max() int64 { return d.max.Load() }

// Mean returns the average sample, 0 when empty.
func (d *SizeDist) Mean() float64 {
	n := d.count.Load()
	if n == 0 {
		return 0
	}
	return float64(d.sum.Load()) / float64(n)
}

// Registry tracks per-operation metrics plus service-wide counters. The
// zero value is not usable; construct with NewRegistry.
type Registry struct {
	mu  sync.RWMutex
	ops map[string]*OpMetrics
	// Malformed counts requests rejected before dispatch (bad envelope,
	// unknown operation, failed authentication).
	malformed atomic.Int64
	// batchSizes records ops per batchWrite; pageSizes records entries
	// returned per paged query/listing.
	batchSizes SizeDist
	pageSizes  SizeDist
	// faults counts injected faults by site (non-zero only in chaos runs
	// with a fault injector configured).
	faultMu sync.Mutex
	faults  map[string]int64
	// external holds callback-backed counters owned by other subsystems
	// (e.g. the write-ahead log), sampled at render time.
	extMu    sync.Mutex
	external []externalCounter
	start    time.Time
}

// externalCounter is a counter registered via RegisterCounter.
type externalCounter struct {
	name string
	help string
	fn   func() int64
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{ops: make(map[string]*OpMetrics), start: time.Now()}
}

// ObserveBatchSize records the op count of one batchWrite.
func (r *Registry) ObserveBatchSize(n int) { r.batchSizes.Observe(n) }

// ObservePageSize records the entry count of one returned page.
func (r *Registry) ObservePageSize(n int) { r.pageSizes.Observe(n) }

// BatchSizes returns the distribution of ops per batch.
func (r *Registry) BatchSizes() *SizeDist { return &r.batchSizes }

// PageSizes returns the distribution of entries per page.
func (r *Registry) PageSizes() *SizeDist { return &r.pageSizes }

// Op returns the metrics of the named operation on the default (SOAP)
// transport, creating them on first use.
func (r *Registry) Op(name string) *OpMetrics {
	return r.TransportOp("", name)
}

// TransportOp returns the metrics of the named operation on the labeled
// transport, creating them on first use. The empty transport is the default
// (SOAP) path and renders without a transport label.
func (r *Registry) TransportOp(transport, name string) *OpMetrics {
	key := name
	if transport != "" {
		key = transport + "\x00" + name
	}
	r.mu.RLock()
	m, ok := r.ops[key]
	r.mu.RUnlock()
	if ok {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok = r.ops[key]; ok {
		return m
	}
	m = &OpMetrics{name: name, transport: transport}
	r.ops[key] = m
	return m
}

// FaultInjected counts one injected fault at the named site.
func (r *Registry) FaultInjected(site string) {
	r.faultMu.Lock()
	if r.faults == nil {
		r.faults = make(map[string]int64)
	}
	r.faults[site]++
	r.faultMu.Unlock()
}

// FaultsInjected returns a copy of the per-site injected-fault counts.
func (r *Registry) FaultsInjected() map[string]int64 {
	r.faultMu.Lock()
	defer r.faultMu.Unlock()
	out := make(map[string]int64, len(r.faults))
	for k, v := range r.faults {
		out[k] = v
	}
	return out
}

// RegisterCounter exposes a counter owned by another subsystem under name
// (a full Prometheus metric name, e.g. "mcs_wal_fsyncs_total"). The
// callback is sampled on every /metrics render, so the owner keeps its own
// atomic state and the registry stays free of cross-package dependencies.
// Registering the same name again replaces the callback.
func (r *Registry) RegisterCounter(name, help string, fn func() int64) {
	r.extMu.Lock()
	defer r.extMu.Unlock()
	for i := range r.external {
		if r.external[i].name == name {
			r.external[i] = externalCounter{name: name, help: help, fn: fn}
			return
		}
	}
	r.external = append(r.external, externalCounter{name: name, help: help, fn: fn})
	sort.Slice(r.external, func(i, j int) bool { return r.external[i].name < r.external[j].name })
}

// Counters samples every registered external counter by name.
func (r *Registry) Counters() map[string]int64 {
	r.extMu.Lock()
	ext := append([]externalCounter(nil), r.external...)
	r.extMu.Unlock()
	out := make(map[string]int64, len(ext))
	for _, c := range ext {
		out[c.name] = c.fn()
	}
	return out
}

// Malformed counts one pre-dispatch rejection.
func (r *Registry) Malformed() { r.malformed.Add(1) }

// MalformedCount returns the number of pre-dispatch rejections.
func (r *Registry) MalformedCount() int64 { return r.malformed.Load() }

// Ops returns the recorded operations sorted by name.
func (r *Registry) Ops() []*OpMetrics {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*OpMetrics, 0, len(r.ops))
	for _, m := range r.ops {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].transport < out[j].transport
	})
	return out
}

// opKey names one (operation, transport) pair in JSON renderings: the bare
// operation name on the default path, "transport:name" otherwise.
func opKey(m *OpMetrics) string {
	if m.transport == "" {
		return m.name
	}
	return m.transport + ":" + m.name
}

// opLabels renders the Prometheus label set of one (operation, transport)
// pair; the default path keeps the historical single-label form.
func opLabels(m *OpMetrics) string {
	if m.transport == "" {
		return fmt.Sprintf("op=%q", m.name)
	}
	return fmt.Sprintf("op=%q,transport=%q", m.name, m.transport)
}

// opSnapshot is the JSON shape of one operation's metrics.
type opSnapshot struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	InFlight int64   `json:"in_flight"`
	MeanUS   int64   `json:"mean_us"`
	P50US    int64   `json:"p50_us"`
	P95US    int64   `json:"p95_us"`
	P99US    int64   `json:"p99_us"`
	Buckets  []int64 `json:"buckets"`
}

// sizeSnapshot is the JSON shape of a size distribution.
type sizeSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
}

func snapshotDist(d *SizeDist) sizeSnapshot {
	return sizeSnapshot{Count: d.Count(), Sum: d.Sum(), Max: d.Max(), Mean: d.Mean()}
}

// WriteJSON renders the registry expvar-style: one JSON object keyed by
// operation name, with latency quantiles in microseconds.
func (r *Registry) WriteJSON(w io.Writer) error {
	body := struct {
		UptimeSeconds int64                 `json:"uptime_seconds"`
		Malformed     int64                 `json:"malformed_requests"`
		BatchSizes    sizeSnapshot          `json:"batch_sizes"`
		PageSizes     sizeSnapshot          `json:"page_sizes"`
		Faults        map[string]int64      `json:"faults_injected"`
		Counters      map[string]int64      `json:"counters"`
		Operations    map[string]opSnapshot `json:"operations"`
	}{
		UptimeSeconds: int64(time.Since(r.start).Seconds()),
		Malformed:     r.malformed.Load(),
		BatchSizes:    snapshotDist(&r.batchSizes),
		PageSizes:     snapshotDist(&r.pageSizes),
		Faults:        r.FaultsInjected(),
		Counters:      r.Counters(),
		Operations:    make(map[string]opSnapshot),
	}
	for _, m := range r.Ops() {
		body.Operations[opKey(m)] = opSnapshot{
			Requests: m.Requests(),
			Errors:   m.Errors(),
			InFlight: m.InFlight(),
			MeanUS:   m.latency.Mean().Microseconds(),
			P50US:    m.latency.Quantile(0.50).Microseconds(),
			P95US:    m.latency.Quantile(0.95).Microseconds(),
			P99US:    m.latency.Quantile(0.99).Microseconds(),
			Buckets:  m.latency.Buckets(),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(body)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (counters, gauges and cumulative histograms).
func (r *Registry) WritePrometheus(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# HELP mcs_requests_total Operations dispatched.\n# TYPE mcs_requests_total counter\n")
	for _, m := range r.Ops() {
		p("mcs_requests_total{%s} %d\n", opLabels(m), m.Requests())
	}
	p("# HELP mcs_errors_total Operations that returned an error.\n# TYPE mcs_errors_total counter\n")
	for _, m := range r.Ops() {
		p("mcs_errors_total{%s} %d\n", opLabels(m), m.Errors())
	}
	p("# HELP mcs_in_flight Operations currently executing.\n# TYPE mcs_in_flight gauge\n")
	for _, m := range r.Ops() {
		p("mcs_in_flight{%s} %d\n", opLabels(m), m.InFlight())
	}
	p("# HELP mcs_malformed_requests_total Requests rejected before dispatch.\n# TYPE mcs_malformed_requests_total counter\n")
	p("mcs_malformed_requests_total %d\n", r.malformed.Load())
	p("# HELP mcs_faults_injected_total Faults injected by the chaos harness.\n# TYPE mcs_faults_injected_total counter\n")
	faults := r.FaultsInjected()
	sites := make([]string, 0, len(faults))
	for site := range faults {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	for _, site := range sites {
		p("mcs_faults_injected_total{site=%q} %d\n", site, faults[site])
	}
	r.extMu.Lock()
	ext := append([]externalCounter(nil), r.external...)
	r.extMu.Unlock()
	for _, c := range ext {
		p("# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.fn())
	}
	p("# HELP mcs_batch_ops Operations carried per batchWrite request.\n# TYPE mcs_batch_ops summary\n")
	p("mcs_batch_ops_sum %d\nmcs_batch_ops_count %d\n", r.batchSizes.Sum(), r.batchSizes.Count())
	p("# HELP mcs_page_entries Entries returned per result page.\n# TYPE mcs_page_entries summary\n")
	p("mcs_page_entries_sum %d\nmcs_page_entries_count %d\n", r.pageSizes.Sum(), r.pageSizes.Count())
	p("# HELP mcs_latency_seconds Operation latency.\n# TYPE mcs_latency_seconds histogram\n")
	for _, m := range r.Ops() {
		cum := m.latency.Buckets()
		labels := opLabels(m)
		for i := 0; i < NumBuckets; i++ {
			p("mcs_latency_seconds_bucket{%s,le=\"%g\"} %d\n",
				labels, BucketBound(i).Seconds(), cum[i])
		}
		p("mcs_latency_seconds_bucket{%s,le=\"+Inf\"} %d\n", labels, cum[NumBuckets])
		p("mcs_latency_seconds_sum{%s} %g\n", labels, m.latency.Sum().Seconds())
		p("mcs_latency_seconds_count{%s} %d\n", labels, m.latency.Count())
	}
	return err
}
