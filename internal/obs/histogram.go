// Package obs is the observability layer of the MCS reproduction: latency
// histograms, per-operation request/error/in-flight metrics, request-ID
// correlation and a slow-operation log, all stdlib-only and safe for
// concurrent use on the hot path.
//
// The paper's evaluation (Figs. 3–6 of the SC'03 paper; reproduced here as
// Figures 5–11) is a latency/throughput study under concurrent clients.
// This package makes the same quantities observable on a live server: the
// SOAP dispatch loop records every operation into a Registry, which the
// server exposes at /metrics in both expvar-style JSON and Prometheus text
// format. The benchmark harness (internal/bench) records into the same
// Histogram type, so offline percentiles and live percentiles come from one
// implementation.
package obs

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: exponential, factor 2, from 64µs up. The span
// covers sub-millisecond in-memory catalog hits through multi-minute
// complex queries on loaded servers; the last bucket is +Inf.
const (
	// NumBuckets is the number of finite histogram buckets.
	NumBuckets = 24
	// bucket0 is the upper bound of the first bucket.
	bucket0 = 64 * time.Microsecond
)

// BucketBound returns the inclusive upper bound of bucket i; the final
// bucket (i == NumBuckets) is unbounded and reports a negative duration.
func BucketBound(i int) time.Duration {
	if i >= NumBuckets {
		return -1 // +Inf
	}
	return bucket0 << uint(i)
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	bound := bucket0
	for i := 0; i < NumBuckets; i++ {
		if d <= bound {
			return i
		}
		bound <<= 1
	}
	return NumBuckets
}

// Histogram is a fixed-bucket latency histogram safe for concurrent
// observation without locks. The zero value is ready to use.
type Histogram struct {
	counts [NumBuckets + 1]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all recorded samples.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the bucket counts,
// reporting the upper bound of the bucket containing it. With no samples it
// returns 0. Samples beyond the last finite bucket report that bucket's
// bound (the histogram cannot resolve further).
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i <= NumBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i == NumBuckets {
				return BucketBound(NumBuckets - 1)
			}
			return BucketBound(i)
		}
	}
	return BucketBound(NumBuckets - 1)
}

// Buckets returns a snapshot of the cumulative bucket counts, Prometheus
// style: Buckets()[i] counts samples <= BucketBound(i), and the final entry
// is the total count (+Inf bucket).
func (h *Histogram) Buckets() []int64 {
	out := make([]int64, NumBuckets+1)
	var cum int64
	for i := 0; i <= NumBuckets; i++ {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// Summary renders the histogram as a one-line p50/p95/p99 summary.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s",
		h.Count(), h.Mean().Round(time.Microsecond),
		h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
}
