package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// RequestIDHeader is the HTTP header carrying the request correlation ID.
// Clients set it per call (generating an ID when the caller supplied none);
// the server accepts an incoming value or generates its own, echoes it in
// the response, and attaches it to audit records and the slow-op log.
const RequestIDHeader = "X-MCS-Request-ID"

// IdempotencyKeyHeader carries the client-chosen deduplication key of a
// mutating call. Every retry of one logical call repeats the same key; the
// server answers replays from its bounded replay cache instead of applying
// the write twice. Reads never send it.
const IdempotencyKeyHeader = "X-MCS-Idempotency-Key"

// reqCounter disambiguates IDs if the random source ever fails.
var reqCounter atomic.Int64

// NewRequestID returns a fresh correlation ID: 16 hex characters of
// cryptographic randomness, falling back to a process-local counter when
// the random source is unavailable.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("mcs-%016x", reqCounter.Add(1))
	}
	return hex.EncodeToString(b[:])
}
