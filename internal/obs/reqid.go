package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// RequestIDHeader is the HTTP header carrying the request correlation ID.
// Clients set it per call (generating an ID when the caller supplied none);
// the server accepts an incoming value or generates its own, echoes it in
// the response, and attaches it to audit records and the slow-op log.
const RequestIDHeader = "X-MCS-Request-ID"

// reqCounter disambiguates IDs if the random source ever fails.
var reqCounter atomic.Int64

// NewRequestID returns a fresh correlation ID: 16 hex characters of
// cryptographic randomness, falling back to a process-local counter when
// the random source is unavailable.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("mcs-%016x", reqCounter.Add(1))
	}
	return hex.EncodeToString(b[:])
}
