package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"log"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("zero histogram not empty")
	}
	h.Observe(50 * time.Microsecond) // bucket 0 (<=64µs)
	h.Observe(100 * time.Microsecond)
	h.Observe(time.Millisecond)
	h.Observe(time.Second)
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	want := 50*time.Microsecond + 100*time.Microsecond + time.Millisecond + time.Second
	if h.Sum() != want {
		t.Fatalf("sum = %s, want %s", h.Sum(), want)
	}
	// p50 falls in the second sample's bucket: 100µs <= 128µs.
	if q := h.Quantile(0.5); q != 128*time.Microsecond {
		t.Fatalf("p50 = %s", q)
	}
	// p100 covers the 1s sample; its bucket bound is the first power-of-two
	// multiple of 64µs at or above 1s.
	if q := h.Quantile(1.0); q < time.Second || q > 2*time.Second {
		t.Fatalf("p100 = %s", q)
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)   // clamped to 0
	h.Observe(72 * time.Hour) // beyond the last finite bucket
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(0.25); q != BucketBound(0) {
		t.Fatalf("p25 = %s, want %s", q, BucketBound(0))
	}
	// The overflow sample reports the last finite bound rather than +Inf.
	if q := h.Quantile(1.0); q != BucketBound(NumBuckets-1) {
		t.Fatalf("p100 = %s, want %s", q, BucketBound(NumBuckets-1))
	}
	buckets := h.Buckets()
	if buckets[NumBuckets] != 2 {
		t.Fatalf("cumulative +Inf bucket = %d", buckets[NumBuckets])
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	b := h.Buckets()
	for i := 1; i < len(b); i++ {
		if b[i] < b[i-1] {
			t.Fatalf("buckets not cumulative at %d: %v", i, b)
		}
	}
	if b[len(b)-1] != 100 {
		t.Fatalf("total = %d", b[len(b)-1])
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 16, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	if b := h.Buckets(); b[len(b)-1] != workers*per {
		t.Fatalf("bucket total = %d", b[len(b)-1])
	}
}

func TestRegistryCounters(t *testing.T) {
	r := NewRegistry()
	m := r.Op("createFile")
	if m != r.Op("createFile") {
		t.Fatal("Op not idempotent")
	}
	m.Begin()
	if m.InFlight() != 1 {
		t.Fatalf("inflight = %d", m.InFlight())
	}
	m.End(time.Millisecond, nil)
	m.Begin()
	m.End(2*time.Millisecond, errors.New("boom"))
	if m.Requests() != 2 || m.Errors() != 1 || m.InFlight() != 0 {
		t.Fatalf("requests=%d errors=%d inflight=%d", m.Requests(), m.Errors(), m.InFlight())
	}
	r.Malformed()
	if r.MalformedCount() != 1 {
		t.Fatalf("malformed = %d", r.MalformedCount())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	ops := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m := r.Op(ops[(w+i)%len(ops)])
				m.Begin()
				m.End(time.Duration(i)*time.Microsecond, nil)
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, m := range r.Ops() {
		total += m.Requests()
	}
	if total != 8*500 {
		t.Fatalf("total requests = %d", total)
	}
}

func TestRegistryJSON(t *testing.T) {
	r := NewRegistry()
	m := r.Op("query")
	m.Begin()
	m.End(5*time.Millisecond, nil)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Operations map[string]struct {
			Requests int64 `json:"requests"`
			P50US    int64 `json:"p50_us"`
		} `json:"operations"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	q, ok := out.Operations["query"]
	if !ok || q.Requests != 1 || q.P50US <= 0 {
		t.Fatalf("JSON = %s", buf.String())
	}
}

func TestRegistryPrometheus(t *testing.T) {
	r := NewRegistry()
	m := r.Op("getFile")
	m.Begin()
	m.End(time.Millisecond, errors.New("x"))
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`mcs_requests_total{op="getFile"} 1`,
		`mcs_errors_total{op="getFile"} 1`,
		`mcs_in_flight{op="getFile"} 0`,
		`mcs_latency_seconds_bucket{op="getFile",le="+Inf"} 1`,
		`mcs_latency_seconds_count{op="getFile"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if len(id) != 16 {
			t.Fatalf("id %q has length %d", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestSlowOpLog(t *testing.T) {
	var buf bytes.Buffer
	s := NewSlowOpLog(10*time.Millisecond, log.New(&buf, "", 0))
	if s.Record("fast", "r1", "/CN=a", time.Millisecond, nil) {
		t.Fatal("fast op logged")
	}
	if !s.Record("slow", "r2", "/CN=a", 20*time.Millisecond, nil) {
		t.Fatal("slow op not logged")
	}
	if !s.Record("slowerr", "r3", "", 30*time.Millisecond, errors.New("kaput")) {
		t.Fatal("slow failing op not logged")
	}
	if s.Count() != 2 {
		t.Fatalf("count = %d", s.Count())
	}
	text := buf.String()
	for _, want := range []string{"op=slow", "req=r2", "op=slowerr", "status=error: kaput", `dn="-"`} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in %q", want, text)
		}
	}
	if strings.Contains(text, "op=fast") {
		t.Fatalf("fast op in log: %q", text)
	}
}

func TestSlowOpLogDisabled(t *testing.T) {
	var s *SlowOpLog
	if s.Record("x", "r", "", time.Hour, nil) || s.Count() != 0 {
		t.Fatal("nil slow-op log recorded")
	}
	z := NewSlowOpLog(0, nil)
	if z.Record("x", "r", "", time.Hour, nil) {
		t.Fatal("zero-threshold slow-op log recorded")
	}
}

func TestSlowOpLogConcurrent(t *testing.T) {
	var buf syncBuffer
	s := NewSlowOpLog(time.Nanosecond, log.New(&buf, "", 0))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Record("op", NewRequestID(), "/CN=x", time.Millisecond, nil)
			}
		}()
	}
	wg.Wait()
	if s.Count() != 800 {
		t.Fatalf("count = %d", s.Count())
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for concurrent log output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}
