package jsonwire

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"mcs/internal/obs"
)

// Client issues JSON API calls to a single endpoint over HTTP.
//
// Each Client owns its own http.Client and connection pool by default, so
// benchmark harnesses can model independent "client hosts" by constructing
// one Client per simulated host. Field semantics mirror soap.Client exactly;
// the top-level mcs.Client points both wire clients at one shared pool and
// header set so functional options apply to whichever transport is selected.
type Client struct {
	// Endpoint is the service base URL; operations POST to
	// Endpoint + "/api/v1/<op>".
	Endpoint string
	HTTP     *http.Client
	// Sign, when set, is called with the serialized body and may add
	// authentication headers (the gsi package provides an implementation).
	Sign func(req *http.Request, body []byte) error
	// Header holds extra headers attached to every request (e.g. CAS
	// capability assertions).
	Header http.Header
	// RequestIDHeader names the header carrying the per-call correlation
	// ID (default obs.RequestIDHeader). Set it to "" to disable request-ID
	// propagation entirely.
	RequestIDHeader string
	// NewRequestID generates a correlation ID for calls that do not carry
	// one already; nil uses obs.NewRequestID.
	NewRequestID func() string
}

// NewClient returns a client for endpoint with a dedicated connection pool.
func NewClient(endpoint string) *Client {
	return &Client{
		Endpoint: strings.TrimSuffix(endpoint, "/"),
		HTTP: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 64,
			},
		},
		RequestIDHeader: obs.RequestIDHeader,
	}
}

// NewClientWithHTTP returns a client for endpoint that shares an existing
// *http.Client (pool, timeout, transport). The shard router points one pool
// at every backend so scatter fan-out reuses warm connections instead of
// growing one idle pool per shard.
func NewClientWithHTTP(endpoint string, h *http.Client) *Client {
	return &Client{
		Endpoint:        strings.TrimSuffix(endpoint, "/"),
		HTTP:            h,
		RequestIDHeader: obs.RequestIDHeader,
	}
}

// TransportError reports a JSON API call that failed without a decodable
// reply: the request never completed, the connection dropped mid-body, or a
// non-JSON intermediary answered. Status and Body carry whatever did arrive
// — identical diagnostics to the SOAP wire's soap.TransportError.
type TransportError struct {
	Action string
	Status string // HTTP status line; "" when no response arrived at all
	Body   string // prefix of the (possibly partial) body
	Err    error  // underlying cause; nil for a clean non-2xx reply
}

// Error renders the most specific description the available evidence
// allows.
func (e *TransportError) Error() string {
	switch {
	case e.Err == nil:
		return fmt.Sprintf("json: call %s: server returned %s: %q", e.Action, e.Status, e.Body)
	case e.Status != "":
		return fmt.Sprintf("json: call %s: response truncated after %s: %v (partial body %q)",
			e.Action, e.Status, e.Err, e.Body)
	default:
		return fmt.Sprintf("json: call %s: %v", e.Action, e.Err)
	}
}

// Unwrap exposes the underlying cause for errors.Is/As.
func (e *TransportError) Unwrap() error { return e.Err }

// Call performs one round trip with no deadline beyond the client's HTTP
// timeout. See CallCtx.
func (c *Client) Call(action string, req, resp any) error {
	return c.CallCtx(context.Background(), action, req, resp)
}

// CallCtx performs one JSON request/response round trip. action names the
// operation (the /api/v1/<action> path), req is marshalled as the request
// body and the reply is unmarshalled into resp. A server-side error reply is
// returned as a *Error carrying the wire code.
func (c *Client) CallCtx(ctx context.Context, action string, req, resp any) error {
	return c.CallHdrCtx(ctx, action, nil, req, resp)
}

// CallHdrCtx is CallCtx with extra per-call headers, applied before the
// automatic request-ID generation so a pinned ID suppresses it. Retry layers
// use extra to repeat one request ID and idempotency key across every
// attempt of a logical call.
func (c *Client) CallHdrCtx(ctx context.Context, action string, extra http.Header, req, resp any) error {
	httpResp, raw, err := c.roundTrip(ctx, action, extra, req, "")
	if err != nil {
		return err
	}
	if httpResp.StatusCode < 200 || httpResp.StatusCode > 299 {
		// Servers report application errors with a JSON error envelope;
		// surface those as *Error. Anything else — typically an
		// intermediary's error page — must not reach the decoder as if it
		// were a reply, so quote the status and a body prefix instead.
		if werr := decodeError(raw); werr != nil {
			return werr
		}
		return &TransportError{Action: action, Status: httpResp.Status, Body: bodyPrefix(raw)}
	}
	if resp != nil {
		if err := json.Unmarshal(raw, resp); err != nil {
			return fmt.Errorf("json: decode %s reply: %w", action, err)
		}
	}
	return nil
}

// StreamCtx performs one streamed (NDJSON) call: rows are decoded into a
// fresh value from newRow and handed to row as they arrive, so arbitrarily
// large results never materialize client-side either. The server terminates
// a successful stream with {"end":true}; a stream that ends without the
// terminator was severed mid-flight and returns a *TransportError.
func (c *Client) StreamCtx(ctx context.Context, action string, extra http.Header, req any,
	newRow func() any, row func(any) error) error {
	httpResp, _, err := c.roundTrip(ctx, action, extra, req, "ndjson")
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode < 200 || httpResp.StatusCode > 299 {
		raw, _ := io.ReadAll(io.LimitReader(httpResp.Body, 64<<20))
		if werr := decodeError(raw); werr != nil {
			return werr
		}
		return &TransportError{Action: action, Status: httpResp.Status, Body: bodyPrefix(raw)}
	}
	sc := bufio.NewScanner(httpResp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Error *Error `json:"error"`
			End   bool   `json:"end"`
		}
		if err := json.Unmarshal(line, &probe); err == nil {
			if probe.Error != nil {
				return probe.Error
			}
			if probe.End {
				return nil
			}
		}
		r := newRow()
		if err := json.Unmarshal(line, r); err != nil {
			return fmt.Errorf("json: decode %s stream row: %w", action, err)
		}
		if err := row(r); err != nil {
			return err
		}
	}
	err = sc.Err()
	// EOF without the {"end":true} terminator: the connection was severed
	// mid-stream and the result may be incomplete.
	return &TransportError{Action: action, Status: httpResp.Status, Err: fmt.Errorf("stream ended without terminator: %w", orEOF(err))}
}

// orEOF substitutes io.ErrUnexpectedEOF for a nil scanner error so the
// truncation always carries a cause.
func orEOF(err error) error {
	if err != nil {
		return err
	}
	return io.ErrUnexpectedEOF
}

// roundTrip builds and issues one request. For unary calls (stream == "")
// the body is fully read and the response is closed; for streamed calls the
// open response is returned with a nil body slice.
func (c *Client) roundTrip(ctx context.Context, action string, extra http.Header, req any, stream string) (*http.Response, []byte, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, nil, fmt.Errorf("json: marshal %s request: %w", action, err)
	}
	url := c.Endpoint + Prefix + action
	if stream != "" {
		url += "?stream=" + stream
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return nil, nil, fmt.Errorf("json: build request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if stream != "" {
		httpReq.Header.Set("Accept", "application/x-ndjson")
	}
	for k, vals := range c.Header {
		for _, v := range vals {
			httpReq.Header.Add(k, v)
		}
	}
	for k, vals := range extra {
		httpReq.Header.Del(k)
		for _, v := range vals {
			httpReq.Header.Add(k, v)
		}
	}
	if c.RequestIDHeader != "" && httpReq.Header.Get(c.RequestIDHeader) == "" {
		gen := c.NewRequestID
		if gen == nil {
			gen = obs.NewRequestID
		}
		httpReq.Header.Set(c.RequestIDHeader, gen())
	}
	if c.Sign != nil {
		if err := c.Sign(httpReq, payload); err != nil {
			return nil, nil, fmt.Errorf("json: sign request: %w", err)
		}
	}
	httpResp, err := c.HTTP.Do(httpReq)
	if err != nil {
		return nil, nil, &TransportError{Action: action, Err: err}
	}
	if stream != "" {
		return httpResp, nil, nil
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(httpResp.Body, 64<<20))
	if err != nil {
		// The connection dropped mid-body. The status line and whatever
		// bytes did arrive are still diagnostic gold, so carry them.
		return nil, nil, &TransportError{
			Action: action, Status: httpResp.Status, Body: bodyPrefix(raw), Err: err,
		}
	}
	return httpResp, raw, nil
}

// decodeError extracts a wire error envelope from an error reply body, or
// nil when the body is not a decodable envelope.
func decodeError(raw []byte) *Error {
	var env errEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Error == nil || env.Error.Code == "" {
		return nil
	}
	return env.Error
}

// bodyPrefix returns the leading bytes of a response body for error
// messages, truncating long bodies.
func bodyPrefix(raw []byte) string {
	const max = 256
	if len(raw) > max {
		return string(raw[:max]) + "..."
	}
	return string(raw)
}
