// Package jsonwire is the compact JSON-over-HTTP wire of the Metadata
// Catalog Service: the same operations, sentinel mapping and correlation
// headers as the SOAP endpoint, minus the XML envelope cost. Both wires
// mount the same transport-neutral dispatch table (mcswire.Table), so an
// operation registered once is served identically over either encoding.
//
// Requests POST a JSON body to /api/v1/<op>; replies are the bare response
// object. Errors carry {"error":{"code","message"}} where code is the same
// "Server.<Sentinel>" string the SOAP fault code carries, so the client maps
// both wires onto one sentinel table. Streamable operations (query) can ask
// for application/x-ndjson and receive rows one line at a time, terminated
// by {"end":true} — a missing terminator is a truncated reply.
package jsonwire

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"mcs/internal/faultinject"
	"mcs/internal/mcswire"
	"mcs/internal/obs"
)

// Prefix is the URL prefix all JSON API operations live under.
const Prefix = "/api/v1/"

// TransportLabel tags this wire's metrics ({transport="json"}).
const TransportLabel = "json"

// Authenticator verifies a request before dispatch and returns the caller's
// DN. Structurally identical to soap.Authenticator, so one gsi.Verifier
// serves both wires.
type Authenticator interface {
	Authenticate(r *http.Request, body []byte) (dn string, err error)
}

// Error is an application error carried over the JSON wire: the counterpart
// of a SOAP fault. Code uses the same "Server.<Sentinel>" suffix convention
// as SOAP fault codes, so one code→sentinel table decodes both wires.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error renders the server's message (the code travels for errors.Is
// mapping, not for display).
func (e *Error) Error() string { return e.Message }

// errEnvelope is the JSON error reply shape.
type errEnvelope struct {
	Error *Error `json:"error"`
}

// Server dispatches JSON API requests to the operations of a shared
// transport-neutral table. It implements http.Handler for paths under
// Prefix.
type Server struct {
	mu      sync.RWMutex
	table   *mcswire.Table
	auth    Authenticator
	metrics *obs.Registry
	slow    *obs.SlowOpLog
	faults  *faultinject.Injector
	// errorCode maps a handler error to a code suffix (e.g. "NotFound" →
	// "Server.NotFound"); empty means plain "Server".
	errorCode func(error) string
}

// NewServer returns a JSON wire server over the given dispatch table.
func NewServer(table *mcswire.Table) *Server {
	return &Server{table: table}
}

// SetAuthenticator installs a request authenticator; nil disables auth.
func (s *Server) SetAuthenticator(a Authenticator) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.auth = a
}

// SetMetrics installs a metrics registry recording every dispatch under the
// "json" transport label; nil disables instrumentation.
func (s *Server) SetMetrics(r *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = r
}

// SetSlowOpLog installs a slow-operation log; nil disables it.
func (s *Server) SetSlowOpLog(l *obs.SlowOpLog) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slow = l
}

// SetFaultInjector installs a chaos fault injector evaluated at the
// dispatch, after and transport sites of every call, exactly as on the SOAP
// wire; nil disables injection.
func (s *Server) SetFaultInjector(in *faultinject.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = in
}

// SetErrorCode installs the error→code mapping used when handlers fail; nil
// restores the plain "Server" code.
func (s *Server) SetErrorCode(fn func(error) string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.errorCode = fn
}

// malformed counts one pre-dispatch rejection when metrics are enabled.
func (s *Server) malformed(m *obs.Registry) {
	if m != nil {
		m.Malformed()
	}
}

// wantsStream reports whether the request asked for an NDJSON streamed
// reply (Accept: application/x-ndjson or ?stream=ndjson / ?stream=1).
func wantsStream(r *http.Request) bool {
	if v := r.URL.Query().Get("stream"); v == "ndjson" || v == "1" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// ServeHTTP implements http.Handler: POST /api/v1/<op> dispatches an
// operation; GET /api/v1/ lists the registered operations.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	auth, metrics, slow, inj := s.auth, s.metrics, s.slow, s.faults
	s.mu.RUnlock()

	if !strings.HasPrefix(r.URL.Path, Prefix) {
		http.NotFound(w, r)
		return
	}
	op := strings.TrimPrefix(r.URL.Path, Prefix)

	if r.Method == http.MethodGet {
		if op == "" || op == "ops" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(struct { //nolint:errcheck // best-effort response write
				Ops []string `json:"ops"`
			}{Ops: s.table.Ops()})
			return
		}
		http.Error(w, "MCS JSON endpoint; POST JSON requests to /api/v1/<op>", http.StatusMethodNotAllowed)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}

	// Correlate the call exactly as the SOAP wire does: accept the client's
	// request ID or mint one, and echo it back.
	reqID := r.Header.Get(obs.RequestIDHeader)
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	w.Header().Set(obs.RequestIDHeader, reqID)

	raw, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		s.malformed(metrics)
		s.writeError(w, "Client", fmt.Sprintf("read request: %v", err), http.StatusBadRequest)
		return
	}
	ctx := &mcswire.Ctx{
		RemoteAddr:     r.RemoteAddr,
		Header:         r.Header,
		RequestID:      reqID,
		IdempotencyKey: r.Header.Get(obs.IdempotencyKeyHeader),
		Transport:      TransportLabel,
	}
	if auth != nil {
		dn, err := auth.Authenticate(r, raw)
		if err != nil {
			s.malformed(metrics)
			s.writeError(w, "Client.Authentication", err.Error(), http.StatusUnauthorized)
			return
		}
		ctx.DN = dn
	}

	h := s.table.Lookup(op)
	if h == nil {
		s.malformed(metrics)
		s.writeError(w, "Client", fmt.Sprintf("unknown operation %q", op), http.StatusNotFound)
		return
	}
	req := h.New()
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, req); err != nil {
			s.malformed(metrics)
			s.writeError(w, "Client", fmt.Sprintf("decode %s request: %v", op, err), http.StatusBadRequest)
			return
		}
	}

	// Dispatch-site injection: the call fails before its handler runs.
	if f := s.inject(inj, metrics, faultinject.SiteDispatch, op, reqID); f != nil {
		switch f.Kind {
		case faultinject.KindLatency:
			// Slow dispatch only; the handler still runs below.
		case faultinject.KindDrop:
			panic(http.ErrAbortHandler)
		default:
			s.writeError(w, s.code(f.Err),
				fmt.Sprintf("injected %s fault before %s: %v", f.Kind, op, f.Err), http.StatusInternalServerError)
			return
		}
	}

	if h.Stream != nil && wantsStream(r) {
		s.serveStream(w, h, ctx, req, metrics, slow, reqID)
		return
	}

	var om *obs.OpMetrics
	if metrics != nil {
		om = metrics.TransportOp(TransportLabel, op)
		om.Begin()
	}
	start := time.Now()
	resp, err := h.Call(ctx, req)
	elapsed := time.Since(start)
	if om != nil {
		om.End(elapsed, err)
	}
	slow.Record(op, reqID, ctx.DN, elapsed, err)

	if err != nil {
		s.writeError(w, s.code(err), err.Error(), http.StatusInternalServerError)
		return
	}

	// After-site injection: the handler has run (and committed) but the
	// reply is lost. Only an idempotent retry recovers from this one.
	if f := s.inject(inj, metrics, faultinject.SiteAfter, op, reqID); f != nil {
		switch f.Kind {
		case faultinject.KindLatency:
		case faultinject.KindDrop:
			panic(http.ErrAbortHandler)
		default:
			s.writeError(w, s.code(f.Err),
				fmt.Sprintf("injected %s fault after %s: %v", f.Kind, op, f.Err), http.StatusInternalServerError)
			return
		}
	}

	out, err := json.Marshal(resp)
	if err != nil {
		s.writeError(w, "Server", err.Error(), http.StatusInternalServerError)
		return
	}

	// Transport-site injection: the response write itself misbehaves.
	if f := s.inject(inj, metrics, faultinject.SiteTransport, op, reqID); f != nil {
		switch f.Kind {
		case faultinject.KindDrop:
			panic(http.ErrAbortHandler)
		case faultinject.KindPartial:
			// Advertise the full length, deliver a prefix, sever the
			// connection — the client's body read fails mid-stream with the
			// status line already in hand.
			n := f.TruncateAt
			if n <= 0 || n >= len(out) {
				n = len(out) / 2
			}
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Length", strconv.Itoa(len(out)))
			w.Write(out[:n]) //nolint:errcheck // deliberately truncated write
			if fl, ok := w.(http.Flusher); ok {
				fl.Flush()
			}
			panic(http.ErrAbortHandler)
		case faultinject.KindError:
			s.writeError(w, s.code(f.Err),
				fmt.Sprintf("injected error fault writing %s reply: %v", op, f.Err), http.StatusInternalServerError)
			return
		}
	}

	w.Header().Set("Content-Type", "application/json")
	w.Write(out) //nolint:errcheck // best-effort response write
}

// serveStream answers one streamable operation as NDJSON: one JSON object
// per row, flushed in small batches, terminated by {"end":true}. Rows are
// emitted as the handler produces them, so the reply never materializes
// server-side. An error before the first row is an ordinary error reply; an
// error mid-stream becomes a {"error":...} line, distinguishable from a
// severed connection by the missing terminator.
func (s *Server) serveStream(w http.ResponseWriter, h *mcswire.Handler, ctx *mcswire.Ctx, req any,
	metrics *obs.Registry, slow *obs.SlowOpLog, reqID string) {
	var om *obs.OpMetrics
	if metrics != nil {
		om = metrics.TransportOp(TransportLabel, h.Name)
		om.Begin()
	}
	start := time.Now()

	const flushEvery = 64
	wrote := 0
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(row any) error {
		if wrote == 0 {
			w.Header().Set("Content-Type", "application/x-ndjson")
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
		wrote++
		if fl != nil && wrote%flushEvery == 0 {
			fl.Flush()
		}
		return nil
	}
	err := h.Stream(ctx, req, emit)
	elapsed := time.Since(start)
	if om != nil {
		om.End(elapsed, err)
	}
	slow.Record(h.Name, reqID, ctx.DN, elapsed, err)

	if err != nil {
		if wrote == 0 {
			s.writeError(w, s.code(err), err.Error(), http.StatusInternalServerError)
			return
		}
		enc.Encode(errEnvelope{Error: &Error{Code: s.code(err), Message: err.Error()}}) //nolint:errcheck // best-effort trailer
		return
	}
	enc.Encode(struct { //nolint:errcheck // best-effort terminator
		End bool `json:"end"`
	}{End: true})
}

// inject evaluates one fault site, counting the injection and applying any
// latency component; the caller applies the fault's visible effect.
func (s *Server) inject(inj *faultinject.Injector, m *obs.Registry, site faultinject.Site, op, reqID string) *faultinject.Fault {
	f := inj.Eval(site, op, reqID)
	if f == nil {
		return nil
	}
	if m != nil {
		m.FaultInjected(string(site))
	}
	if f.Delay > 0 {
		inj.Sleep(f.Delay)
	}
	return f
}

// code renders the error code for a handler error, consulting the installed
// error→code mapping.
func (s *Server) code(err error) string {
	s.mu.RLock()
	fn := s.errorCode
	s.mu.RUnlock()
	if fn != nil {
		if suffix := fn(err); suffix != "" {
			return "Server." + suffix
		}
	}
	return "Server"
}

func (s *Server) writeError(w http.ResponseWriter, code, msg string, status int) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errEnvelope{Error: &Error{Code: code, Message: msg}}) //nolint:errcheck // best-effort response write
}
