// External test package: this test drives federation through real mcs
// servers, and the root package now imports federation (the
// discoverySummary op), so an in-package test importing mcs would cycle.
package federation_test

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"mcs"
	"mcs/internal/core"
	"mcs/internal/federation"
)

const dn = "/O=Grid/CN=federator"

func newSite(t *testing.T, project string, files int) *core.Catalog {
	t.Helper()
	cat, err := core.Open(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.DefineAttribute(dn, "project", core.AttrString, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.DefineAttribute(dn, "index", core.AttrInt, ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < files; i++ {
		_, err := cat.CreateFile(dn, core.FileSpec{
			Name: fmt.Sprintf("%s-file-%03d", project, i),
			Attributes: []core.Attribute{
				{Name: "project", Value: core.String(project)},
				{Name: "index", Value: core.Int(int64(i))},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func TestFederatedQueryOverSOAP(t *testing.T) {
	// Full stack: three MCS servers behind SOAP, index screening, network
	// subqueries through the real client.
	endpoints := map[string]string{}
	cats := map[string]*core.Catalog{
		"siteA": newSite(t, "alpha", 5),
		"siteB": newSite(t, "beta", 5),
	}
	for name, cat := range cats {
		srv, err := mcs.NewServer(mcs.ServerOptions{Catalog: cat})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		endpoints[name] = ts.URL
	}
	ix := federation.NewIndex()
	for name, cat := range cats {
		s, err := federation.Summarize(cat, name, 0.001)
		if err != nil {
			t.Fatal(err)
		}
		ix.Update(s, time.Minute)
	}
	fc := &federation.Client{
		Index: ix,
		Dial: func(name string) (federation.Querier, error) {
			return mcs.NewClient(endpoints[name], dn), nil
		},
	}
	res, err := fc.Query(core.Query{Predicates: []core.Predicate{
		{Attribute: "project", Op: core.OpEq, Value: core.String("beta")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names["siteB"]) != 5 || len(res.Names["siteA"]) != 0 {
		t.Fatalf("names = %v", res.Names)
	}
}
