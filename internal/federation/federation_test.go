package federation

import (
	"fmt"
	"testing"
	"time"

	"mcs/internal/core"
)

const dn = "/O=Grid/CN=federator"

// newSite builds one local catalog publishing files tagged with the site's
// project name.
func newSite(t *testing.T, project string, files int) *core.Catalog {
	t.Helper()
	cat, err := core.Open(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.DefineAttribute(dn, "project", core.AttrString, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.DefineAttribute(dn, "index", core.AttrInt, ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < files; i++ {
		_, err := cat.CreateFile(dn, core.FileSpec{
			Name: fmt.Sprintf("%s-file-%03d", project, i),
			Attributes: []core.Attribute{
				{Name: "project", Value: core.String(project)},
				{Name: "index", Value: core.Int(int64(i))},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func localDialer(cats map[string]*core.Catalog) func(string) (Querier, error) {
	return func(name string) (Querier, error) {
		cat, ok := cats[name]
		if !ok {
			return nil, fmt.Errorf("unknown catalog %q", name)
		}
		return adapter{cat}, nil
	}
}

type adapter struct{ cat *core.Catalog }

func (a adapter) RunQuery(q core.Query) ([]string, error) { return a.cat.RunQuery(dn, q) }

func TestSummaryScreening(t *testing.T) {
	ligo := newSite(t, "ligo", 20)
	esg := newSite(t, "esg", 20)
	ix := NewIndex()
	for name, cat := range map[string]*core.Catalog{"ligo-cat": ligo, "esg-cat": esg} {
		s, err := Summarize(cat, name, 0.001)
		if err != nil {
			t.Fatal(err)
		}
		ix.Update(s, time.Minute)
	}
	// Equality on a value only one site has -> one candidate.
	cands := ix.Candidates(core.Query{Predicates: []core.Predicate{
		{Attribute: "project", Op: core.OpEq, Value: core.String("ligo")},
	}})
	if len(cands) != 1 || cands[0] != "ligo-cat" {
		t.Fatalf("candidates = %v", cands)
	}
	// Unknown attribute -> no candidates.
	cands = ix.Candidates(core.Query{Predicates: []core.Predicate{
		{Attribute: "nosuch", Op: core.OpEq, Value: core.String("x")},
	}})
	if len(cands) != 0 {
		t.Fatalf("unknown-attr candidates = %v", cands)
	}
	// Inequality cannot be screened by value: both sites have the attr.
	cands = ix.Candidates(core.Query{Predicates: []core.Predicate{
		{Attribute: "index", Op: core.OpGt, Value: core.Int(5)},
	}})
	if len(cands) != 2 {
		t.Fatalf("range candidates = %v", cands)
	}
	// Static predicates never narrow.
	cands = ix.Candidates(core.Query{Predicates: []core.Predicate{
		{Attribute: "dataType", Op: core.OpEq, Value: core.String("binary")},
	}})
	if len(cands) != 2 {
		t.Fatalf("static candidates = %v", cands)
	}
}

func TestSoftStateExpiry(t *testing.T) {
	cat := newSite(t, "x", 1)
	ix := NewIndex()
	now := time.Now()
	ix.SetClock(func() time.Time { return now })
	s, _ := Summarize(cat, "x-cat", 0.01)
	ix.Update(s, 10*time.Second)
	if len(ix.Known()) != 1 {
		t.Fatal("fresh summary not known")
	}
	now = now.Add(11 * time.Second)
	if len(ix.Known()) != 0 {
		t.Fatal("expired summary still known")
	}
	if cands := ix.Candidates(core.Query{}); len(cands) != 0 {
		t.Fatalf("expired candidates = %v", cands)
	}
}

func TestFederatedQueryMergesAndSkips(t *testing.T) {
	cats := map[string]*core.Catalog{
		"ligo-cat": newSite(t, "ligo", 10),
		"esg-cat":  newSite(t, "esg", 10),
		"sdss-cat": newSite(t, "sdss", 10),
	}
	ix := NewIndex()
	for name, cat := range cats {
		s, err := Summarize(cat, name, 0.0001)
		if err != nil {
			t.Fatal(err)
		}
		ix.Update(s, time.Minute)
	}
	fc := &Client{Index: ix, Dial: localDialer(cats)}

	// Value held by exactly one site: two subqueries skipped.
	res, err := fc.Query(core.Query{Predicates: []core.Predicate{
		{Attribute: "project", Op: core.OpEq, Value: core.String("esg")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 1 || res.Skipped != 2 {
		t.Fatalf("candidates=%v skipped=%d", res.Candidates, res.Skipped)
	}
	if got := res.Merged(); len(got) != 10 {
		t.Fatalf("merged = %v", got)
	}
	// Range predicate fans out to all three and merges 3x5 results.
	res, err = fc.Query(core.Query{Predicates: []core.Predicate{
		{Attribute: "index", Op: core.OpGe, Value: core.Int(5)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 3 {
		t.Fatalf("candidates = %v", res.Candidates)
	}
	if got := res.Merged(); len(got) != 15 {
		t.Fatalf("merged %d names", len(got))
	}
}

func TestUpdaterRefreshesSummaries(t *testing.T) {
	cat := newSite(t, "dyn", 1)
	ix := NewIndex()
	u := &Updater{
		Catalog: cat, Name: "dyn-cat", TTL: time.Minute, Interval: 5 * time.Millisecond,
		Push: func(s *Summary, ttl time.Duration) error {
			ix.Update(s, ttl)
			return nil
		},
	}
	if err := u.Start(); err != nil {
		t.Fatal(err)
	}
	defer u.Stop()
	// A newly published value appears in the index after a refresh.
	if _, err := cat.CreateFile(dn, core.FileSpec{
		Name:       "late-file",
		Attributes: []core.Attribute{{Name: "project", Value: core.String("late-project")}},
	}); err != nil {
		t.Fatal(err)
	}
	q := core.Query{Predicates: []core.Predicate{
		{Attribute: "project", Op: core.OpEq, Value: core.String("late-project")},
	}}
	deadline := time.After(2 * time.Second)
	for {
		if cands := ix.Candidates(q); len(cands) == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("refresh never carried the new value")
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func TestUpdaterRequiresPush(t *testing.T) {
	cat := newSite(t, "x", 0)
	u := &Updater{Catalog: cat, Name: "x"}
	if err := u.Start(); err == nil {
		t.Fatal("Start without Push succeeded")
	}
}

func TestDialFailureSurfaces(t *testing.T) {
	cats := map[string]*core.Catalog{"good": newSite(t, "p", 1)}
	ix := NewIndex()
	s, _ := Summarize(cats["good"], "good", 0.01)
	ix.Update(s, time.Minute)
	bad, _ := Summarize(cats["good"], "bad", 0.01)
	bad.Catalog = "bad"
	ix.Update(bad, time.Minute)
	fc := &Client{Index: ix, Dial: localDialer(cats)} // "bad" will fail to dial
	res, err := fc.Query(core.Query{Predicates: []core.Predicate{
		{Attribute: "project", Op: core.OpEq, Value: core.String("p")},
	}})
	// Partial success: the good catalog's answer is returned.
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names["good"]) != 1 {
		t.Fatalf("names = %v", res.Names)
	}
	// Total failure: error surfaces.
	ix.Remove("good")
	if _, err := fc.Query(core.Query{Predicates: []core.Predicate{
		{Attribute: "project", Op: core.OpEq, Value: core.String("p")},
	}}); err == nil {
		t.Fatal("all-failed query returned no error")
	}
}
