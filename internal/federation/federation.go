// Package federation implements the distributed MCS design sketched in the
// paper's "Summary and Future Directions" (section 9): self-consistent
// local metadata catalogs use soft-state update mechanisms to send periodic
// summaries of their metadata discovery information to aggregating index
// nodes; clients query the indexes to find which catalogs may hold matching
// data sets, then issue subqueries to those local catalogs — the same
// architecture as the Replica Location Service and the Monitoring and
// Discovery Service, lifted to descriptive metadata.
//
// A summary carries a bloom filter over the catalog's (attribute, value)
// bindings plus the plain set of attribute names it defines: equality
// predicates are screened through the filter, while inequality/LIKE
// predicates (whose value sets cannot be enumerated) only require the
// attribute to be present. The index therefore never produces false
// negatives — a catalog it rules out cannot match — and false positives
// cost one wasted subquery, resolved by the local catalog itself.
package federation

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"mcs/internal/core"
	"mcs/internal/rls"
)

// pairKey canonicalizes an (attribute, value) binding for the bloom filter.
func pairKey(attr, value string) string {
	return fmt.Sprintf("%d:%s=%s", len(attr), attr, value)
}

// Summary is one local catalog's soft-state discovery summary.
type Summary struct {
	// Catalog names the local MCS (typically its endpoint URL).
	Catalog string
	// Pairs is a bloom filter over pairKey(attr, value) for every
	// user-defined attribute binding on logical files.
	Pairs *rls.Bloom
	// Attrs lists the attribute names the catalog defines.
	Attrs map[string]bool
	// Objects counts the summarized bindings (diagnostics).
	Objects int
}

// Summarize builds a summary of a local catalog at false-positive rate fp.
func Summarize(cat *core.Catalog, name string, fp float64) (*Summary, error) {
	st, err := cat.Stats()
	if err != nil {
		return nil, err
	}
	s := &Summary{
		Catalog: name,
		Pairs:   rls.NewBloom(st.Attributes+1, fp),
		Attrs:   make(map[string]bool),
	}
	defs, err := cat.ListAttributeDefs()
	if err != nil {
		return nil, err
	}
	for _, d := range defs {
		s.Attrs[d.Name] = true
	}
	err = cat.AttributePairs(core.ObjectFile, func(attr, value string) bool {
		s.Pairs.Add(pairKey(attr, value))
		s.Objects++
		return true
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// MayMatch reports whether the summarized catalog may hold objects matching
// q. False negatives are impossible — a summary that rules a catalog out is
// authoritative — while a false positive costs one wasted subquery. The
// shard router uses this to screen scatter queries per shard.
func (s *Summary) MayMatch(q core.Query) bool { return summaryMayMatch(s, q) }

// indexEntry is what the index holds for one local catalog.
type indexEntry struct {
	summary *Summary
	expires time.Time
}

// Index is an aggregating index node.
type Index struct {
	mu      sync.RWMutex
	entries map[string]*indexEntry
	clock   func() time.Time
}

// NewIndex returns an empty aggregating index.
func NewIndex() *Index {
	return &Index{entries: make(map[string]*indexEntry), clock: time.Now}
}

// SetClock overrides the clock (tests).
func (ix *Index) SetClock(fn func() time.Time) { ix.clock = fn }

// Update installs or refreshes a catalog's summary with the given TTL.
func (ix *Index) Update(s *Summary, ttl time.Duration) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.entries[s.Catalog] = &indexEntry{summary: s, expires: ix.clock().Add(ttl)}
}

// Remove drops a catalog from the index.
func (ix *Index) Remove(catalog string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	delete(ix.entries, catalog)
}

// Known lists catalogs with unexpired summaries.
func (ix *Index) Known() []string {
	now := ix.clock()
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []string
	for name, e := range ix.entries {
		if !now.After(e.expires) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Candidates returns the catalogs that may satisfy the query. Static
// predicates (predefined attributes like name or dataType) cannot be
// screened, so they do not narrow the candidate set; user-defined equality
// predicates are screened through the bloom filter and all user-defined
// predicates require the attribute to be defined at the catalog.
func (ix *Index) Candidates(q core.Query) []string {
	now := ix.clock()
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []string
	for name, e := range ix.entries {
		if now.After(e.expires) {
			continue
		}
		if summaryMayMatch(e.summary, q) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// staticAttrs are the predefined attribute names that every catalog can
// answer (the summary cannot screen them).
var staticAttrs = map[string]bool{
	"name": true, "version": true, "dataType": true, "creator": true,
	"lastModifier": true, "containerId": true, "containerService": true,
	"masterCopy": true, "created": true, "modified": true, "valid": true,
	"collectionId": true,
}

func summaryMayMatch(s *Summary, q core.Query) bool {
	for _, p := range q.Predicates {
		if staticAttrs[p.Attribute] {
			continue
		}
		if !s.Attrs[p.Attribute] {
			return false
		}
		if p.Op == core.OpEq && !s.Pairs.Test(pairKey(p.Attribute, p.Value.Render())) {
			return false
		}
	}
	return true
}

// Updater periodically pushes a local catalog's summary to index nodes.
type Updater struct {
	Catalog *core.Catalog
	Name    string
	// FP is the bloom false-positive rate (default 0.01).
	FP float64
	// TTL carried by each update (default 60s); Interval defaults to TTL/3.
	TTL      time.Duration
	Interval time.Duration
	// Push delivers a summary to the index (or indexes).
	Push func(s *Summary, ttl time.Duration) error

	stop chan struct{}
	done chan struct{}
}

// Start pushes immediately and then on every interval tick.
func (u *Updater) Start() error {
	if u.Push == nil {
		return fmt.Errorf("federation: Updater.Push not set")
	}
	if u.FP <= 0 {
		u.FP = 0.01
	}
	if u.TTL <= 0 {
		u.TTL = time.Minute
	}
	if u.Interval <= 0 {
		u.Interval = u.TTL / 3
	}
	if err := u.pushOnce(); err != nil {
		return err
	}
	u.stop = make(chan struct{})
	u.done = make(chan struct{})
	go func() {
		defer close(u.done)
		t := time.NewTicker(u.Interval)
		defer t.Stop()
		for {
			select {
			case <-u.stop:
				return
			case <-t.C:
				u.pushOnce() //nolint:errcheck // soft state tolerates lost updates
			}
		}
	}()
	return nil
}

func (u *Updater) pushOnce() error {
	s, err := Summarize(u.Catalog, u.Name, u.FP)
	if err != nil {
		return err
	}
	return u.Push(s, u.TTL)
}

// Stop halts the background pushes; it is safe to call more than once.
func (u *Updater) Stop() {
	if u.stop == nil {
		return
	}
	select {
	case <-u.stop: // already closed
	default:
		close(u.stop)
	}
	<-u.done
}

// Querier answers MCS queries; both mcs.Client and the dn-bound local
// adapter satisfy it.
type Querier interface {
	RunQuery(q core.Query) ([]string, error)
}

// Client performs federated discovery: screen through the index, then
// subquery each candidate catalog and merge.
type Client struct {
	Index *Index
	// Dial returns a querier for a catalog named in the index.
	Dial func(catalog string) (Querier, error)
}

// Result is the outcome of one federated query.
type Result struct {
	// Names maps catalog name to the logical names it matched.
	Names map[string][]string
	// Candidates is the screened candidate list (diagnostics: how much the
	// index narrowed the fan-out).
	Candidates []string
	// Skipped counts catalogs the index ruled out without a subquery.
	Skipped int
}

// Merged returns the union of all matched names, sorted and de-duplicated.
func (r *Result) Merged() []string {
	seen := map[string]bool{}
	var out []string
	for _, names := range r.Names {
		for _, n := range names {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Query fans the query out to every candidate catalog.
func (c *Client) Query(q core.Query) (*Result, error) {
	candidates := c.Index.Candidates(q)
	res := &Result{
		Names:      make(map[string][]string, len(candidates)),
		Candidates: candidates,
		Skipped:    len(c.Index.Known()) - len(candidates),
	}
	type answer struct {
		catalog string
		names   []string
		err     error
	}
	ch := make(chan answer, len(candidates))
	for _, catalog := range candidates {
		go func(catalog string) {
			qr, err := c.Dial(catalog)
			if err != nil {
				ch <- answer{catalog: catalog, err: err}
				return
			}
			names, err := qr.RunQuery(q)
			ch <- answer{catalog: catalog, names: names, err: err}
		}(catalog)
	}
	var firstErr error
	for range candidates {
		a := <-ch
		if a.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("federation: subquery %s: %w", a.catalog, a.err)
			}
			continue
		}
		if len(a.names) > 0 {
			res.Names[a.catalog] = a.names
		}
	}
	if firstErr != nil && len(res.Names) == 0 {
		return nil, firstErr
	}
	return res, nil
}
