package gridftp

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"
)

// Client transfers files to and from a gridftp server using parallel TCP
// streams, mirroring GridFTP's striped/parallel data channels.
type Client struct {
	Addr string
	// Streams is the data-channel parallelism (GridFTP's "-p"); minimum 1.
	Streams int
	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration
}

// NewClient returns a client for the server at addr using the given number
// of parallel streams.
func NewClient(addr string, streams int) *Client {
	if streams < 1 {
		streams = 1
	}
	return &Client{Addr: addr, Streams: streams, DialTimeout: 10 * time.Second}
}

// conn is one control/data connection.
type conn struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

func (cl *Client) dial() (*conn, error) {
	c, err := net.DialTimeout("tcp", cl.Addr, cl.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("gridftp: dial %s: %w", cl.Addr, err)
	}
	return &conn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}, nil
}

func (co *conn) close() { co.c.Close() }

// cmd sends one command line and parses the "NNN rest" reply line.
func (co *conn) cmd(format string, args ...any) (code int, rest string, err error) {
	fmt.Fprintf(co.w, format+"\n", args...)
	if err := co.w.Flush(); err != nil {
		return 0, "", err
	}
	line, err := co.r.ReadString('\n')
	if err != nil {
		return 0, "", err
	}
	line = strings.TrimSpace(line)
	idx := strings.IndexByte(line, ' ')
	if idx < 0 {
		idx = len(line)
	}
	code, err = strconv.Atoi(line[:idx])
	if err != nil {
		return 0, "", fmt.Errorf("%w: %q", errShort, line)
	}
	if idx < len(line) {
		rest = line[idx+1:]
	}
	return code, rest, nil
}

// Size returns the size of a remote file.
func (cl *Client) Size(name string) (int64, error) {
	co, err := cl.dial()
	if err != nil {
		return 0, err
	}
	defer co.close()
	code, rest, err := co.cmd("SIZE %s", name)
	if err != nil {
		return 0, err
	}
	if code != 213 {
		return 0, fmt.Errorf("gridftp: SIZE %s: %d %s", name, code, rest)
	}
	return strconv.ParseInt(rest, 10, 64)
}

// Checksum returns the remote sha256 of a file.
func (cl *Client) Checksum(name string) (string, error) {
	co, err := cl.dial()
	if err != nil {
		return "", err
	}
	defer co.close()
	code, rest, err := co.cmd("CKSM %s", name)
	if err != nil {
		return "", err
	}
	if code != 213 {
		return "", fmt.Errorf("gridftp: CKSM %s: %d %s", name, code, rest)
	}
	return rest, nil
}

// List returns the remote file names.
func (cl *Client) List() ([]string, error) {
	co, err := cl.dial()
	if err != nil {
		return nil, err
	}
	defer co.close()
	code, rest, err := co.cmd("LIST")
	if err != nil {
		return nil, err
	}
	if code != 212 {
		return nil, fmt.Errorf("gridftp: LIST: %d %s", code, rest)
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return nil, errShort
	}
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		line, err := co.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		names = append(names, strings.TrimSpace(line))
	}
	return names, nil
}

// stripe describes one parallel transfer range.
type stripe struct {
	off, length int64
}

// stripes splits total bytes across n streams.
func stripes(total int64, n int) []stripe {
	if n < 1 {
		n = 1
	}
	if int64(n) > total && total > 0 {
		n = int(total)
	}
	if total == 0 {
		return []stripe{{0, 0}}
	}
	out := make([]stripe, 0, n)
	base := total / int64(n)
	rem := total % int64(n)
	var off int64
	for i := 0; i < n; i++ {
		length := base
		if int64(i) < rem {
			length++
		}
		out = append(out, stripe{off, length})
		off += length
	}
	return out
}

// Retrieve fetches a remote file with parallel range streams and verifies
// its checksum.
func (cl *Client) Retrieve(name string) ([]byte, error) {
	size, err := cl.Size(name)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	parts := stripes(size, cl.Streams)
	errs := make(chan error, len(parts))
	for _, p := range parts {
		go func(p stripe) {
			errs <- cl.retrStripe(name, p, buf)
		}(p)
	}
	for range parts {
		if err := <-errs; err != nil {
			return nil, err
		}
	}
	want, err := cl.Checksum(name)
	if err != nil {
		return nil, err
	}
	if got := checksum(buf); got != want {
		return nil, fmt.Errorf("gridftp: checksum mismatch for %s: got %s want %s", name, got, want)
	}
	return buf, nil
}

func (cl *Client) retrStripe(name string, p stripe, buf []byte) error {
	co, err := cl.dial()
	if err != nil {
		return err
	}
	defer co.close()
	code, rest, err := co.cmd("RETR %s %d %d", name, p.off, p.length)
	if err != nil {
		return err
	}
	if code != 150 {
		return fmt.Errorf("gridftp: RETR %s: %d %s", name, code, rest)
	}
	_, err = io.ReadFull(co.r, buf[p.off:p.off+p.length])
	return err
}

// Store uploads data under name using parallel striped streams.
func (cl *Client) Store(name string, data []byte) error {
	co, err := cl.dial()
	if err != nil {
		return err
	}
	defer co.close()
	code, id, err := co.cmd("ALLO %s %d", name, len(data))
	if err != nil {
		return err
	}
	if code != 200 {
		return fmt.Errorf("gridftp: ALLO %s: %d %s", name, code, id)
	}
	parts := stripes(int64(len(data)), cl.Streams)
	errs := make(chan error, len(parts))
	for _, p := range parts {
		go func(p stripe) {
			errs <- cl.stowStripe(id, p, data)
		}(p)
	}
	for range parts {
		if err := <-errs; err != nil {
			return err
		}
	}
	code, rest, err := co.cmd("FIN %s", id)
	if err != nil {
		return err
	}
	if code != 226 {
		return fmt.Errorf("gridftp: FIN: %d %s", code, rest)
	}
	return nil
}

func (cl *Client) stowStripe(id string, p stripe, data []byte) error {
	co, err := cl.dial()
	if err != nil {
		return err
	}
	defer co.close()
	code, rest, err := co.cmd("STOW %s %d %d", id, p.off, p.length)
	if err != nil {
		return err
	}
	if code != 150 {
		return fmt.Errorf("gridftp: STOW: %d %s", code, rest)
	}
	if _, err := co.w.Write(data[p.off : p.off+p.length]); err != nil {
		return err
	}
	if err := co.w.Flush(); err != nil {
		return err
	}
	code, rest, err = co.readReply()
	if err != nil {
		return err
	}
	if code != 226 {
		return fmt.Errorf("gridftp: STOW data: %d %s", code, rest)
	}
	return nil
}

// readReply parses one reply line without sending a command.
func (co *conn) readReply() (int, string, error) {
	line, err := co.r.ReadString('\n')
	if err != nil {
		return 0, "", err
	}
	line = strings.TrimSpace(line)
	idx := strings.IndexByte(line, ' ')
	if idx < 0 {
		idx = len(line)
	}
	code, err := strconv.Atoi(line[:idx])
	if err != nil {
		return 0, "", fmt.Errorf("%w: %q", errShort, line)
	}
	rest := ""
	if idx < len(line) {
		rest = line[idx+1:]
	}
	return code, rest, nil
}
