package gridftp

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func startTestServer(t *testing.T) (*Server, *MemStore, string) {
	t.Helper()
	store := NewMemStore()
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, store, addr
}

func randBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, n)
	rng.Read(buf)
	return buf
}

func TestSizeAndChecksum(t *testing.T) {
	_, store, addr := startTestServer(t)
	data := randBytes(1000, 1)
	store.Put("f.dat", data)
	c := NewClient(addr, 1)
	size, err := c.Size("f.dat")
	if err != nil || size != 1000 {
		t.Fatalf("Size = %d, %v", size, err)
	}
	sum, err := c.Checksum("f.dat")
	if err != nil || sum != checksum(data) {
		t.Fatalf("Checksum = %s, %v", sum, err)
	}
	if _, err := c.Size("nosuch"); err == nil {
		t.Fatal("Size of missing file succeeded")
	}
}

func TestRetrieveSingleStream(t *testing.T) {
	_, store, addr := startTestServer(t)
	data := randBytes(64*1024, 2)
	store.Put("big.dat", data)
	got, err := NewClient(addr, 1).Retrieve("big.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("retrieved bytes differ")
	}
}

func TestRetrieveParallelStreams(t *testing.T) {
	_, store, addr := startTestServer(t)
	for _, streams := range []int{2, 4, 8} {
		data := randBytes(100000+streams, int64(streams))
		name := fmt.Sprintf("f%d.dat", streams)
		store.Put(name, data)
		got, err := NewClient(addr, streams).Retrieve(name)
		if err != nil {
			t.Fatalf("streams=%d: %v", streams, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("streams=%d: bytes differ", streams)
		}
	}
}

func TestRetrieveEmptyFile(t *testing.T) {
	_, store, addr := startTestServer(t)
	store.Put("empty", nil)
	got, err := NewClient(addr, 4).Retrieve("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d bytes", len(got))
	}
}

func TestStoreParallelStreams(t *testing.T) {
	_, store, addr := startTestServer(t)
	data := randBytes(123457, 3)
	if err := NewClient(addr, 4).Store("up.dat", data); err != nil {
		t.Fatal(err)
	}
	got, ok := store.Get("up.dat")
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("stored bytes differ")
	}
}

func TestStoreThenRetrieveRoundTrip(t *testing.T) {
	_, _, addr := startTestServer(t)
	c := NewClient(addr, 3)
	data := randBytes(50000, 4)
	if err := c.Store("rt.dat", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Retrieve("rt.dat")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestList(t *testing.T) {
	_, store, addr := startTestServer(t)
	store.Put("a", nil)
	store.Put("b", nil)
	names, err := NewClient(addr, 1).List()
	if err != nil || len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("List = %v, %v", names, err)
	}
}

func TestThirdPartyStyleCopy(t *testing.T) {
	// Two servers; data moves source -> client -> destination, as the
	// Fig. 2 client would stage data between storage systems.
	_, srcStore, srcAddr := startTestServer(t)
	_, dstStore, dstAddr := startTestServer(t)
	data := randBytes(20000, 5)
	srcStore.Put("x", data)
	got, err := NewClient(srcAddr, 2).Retrieve("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := NewClient(dstAddr, 2).Store("x", got); err != nil {
		t.Fatal(err)
	}
	final, _ := dstStore.Get("x")
	if !bytes.Equal(final, data) {
		t.Fatal("third-party copy corrupted data")
	}
}

func TestStripesCoverExactly(t *testing.T) {
	f := func(total uint16, n uint8) bool {
		parts := stripes(int64(total), int(n))
		var covered int64
		expectedOff := int64(0)
		for _, p := range parts {
			if p.off != expectedOff || p.length < 0 {
				return false
			}
			covered += p.length
			expectedOff += p.length
		}
		return covered == int64(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestServerRejectsBadCommands(t *testing.T) {
	_, _, addr := startTestServer(t)
	c := NewClient(addr, 1)
	co, err := c.dial()
	if err != nil {
		t.Fatal(err)
	}
	defer co.close()
	cases := []struct {
		cmd      string
		wantCode int
	}{
		{"NOSUCHCMD", 500},
		{"SIZE", 501},
		{"RETR f 0", 501},
		{"RETR missing 0 10", 550},
		{"STOW nope 0 10", 550},
		{"FIN nope", 550},
		{"ALLO f notanumber", 501},
	}
	for _, tc := range cases {
		code, _, err := co.cmd("%s", tc.cmd)
		if err != nil {
			t.Fatalf("%q: %v", tc.cmd, err)
		}
		if code != tc.wantCode {
			t.Errorf("%q -> %d, want %d", tc.cmd, code, tc.wantCode)
		}
	}
	// QUIT closes politely.
	code, _, _ := co.cmd("QUIT")
	if code != 221 {
		t.Fatalf("QUIT -> %d", code)
	}
}

func TestRangeBeyondEOF(t *testing.T) {
	_, store, addr := startTestServer(t)
	store.Put("small", []byte("12345"))
	c := NewClient(addr, 1)
	co, _ := c.dial()
	defer co.close()
	code, _, _ := co.cmd("RETR small 3 10")
	if code != 550 {
		t.Fatalf("overlong range -> %d", code)
	}
}

func TestIncompleteUploadRejected(t *testing.T) {
	_, _, addr := startTestServer(t)
	c := NewClient(addr, 1)
	co, _ := c.dial()
	defer co.close()
	code, id, err := co.cmd("ALLO partial 100")
	if err != nil || code != 200 {
		t.Fatalf("ALLO: %d %v", code, err)
	}
	// Send only 10 of 100 bytes, then FIN.
	code, _, _ = co.cmd("STOW %s 0 10", id)
	if code != 150 {
		t.Fatalf("STOW: %d", code)
	}
	co.w.WriteString(strings.Repeat("x", 10)) //nolint:errcheck
	co.w.Flush()                              //nolint:errcheck
	code, _, _ = co.readReply()
	if code != 226 {
		t.Fatalf("STOW data: %d", code)
	}
	code, rest, _ := co.cmd("FIN %s", id)
	if code != 550 || !strings.Contains(rest, "incomplete") {
		t.Fatalf("FIN incomplete -> %d %s", code, rest)
	}
}

func TestMemStoreIsolation(t *testing.T) {
	s := NewMemStore()
	data := []byte("abc")
	s.Put("f", data)
	data[0] = 'X' // caller mutation must not leak in
	got, _ := s.Get("f")
	if got[0] != 'a' {
		t.Fatal("MemStore aliases caller buffer")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}
