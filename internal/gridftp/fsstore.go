package gridftp

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// DirStore is a Store backed by a directory tree, for gridftpd deployments
// that serve real files rather than the in-memory store used in tests and
// examples. Names are slash-separated relative paths; anything resolving
// outside the root is treated as absent.
type DirStore struct {
	root string
}

// NewDirStore serves the files under root.
func NewDirStore(root string) *DirStore {
	return &DirStore{root: filepath.Clean(root)}
}

// resolve maps a logical name to an absolute path inside the root, or ""
// when the name escapes it.
func (d *DirStore) resolve(name string) string {
	if name == "" || strings.Contains(name, "\x00") {
		return ""
	}
	p := filepath.Join(d.root, filepath.FromSlash(name))
	if p != d.root && !strings.HasPrefix(p, d.root+string(filepath.Separator)) {
		return ""
	}
	return p
}

// Get returns the content of name.
func (d *DirStore) Get(name string) ([]byte, bool) {
	p := d.resolve(name)
	if p == "" {
		return nil, false
	}
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	return data, true
}

// Put stores content under name, creating parent directories as needed.
// Errors are reported by making the file absent on the next Get; the
// transfer protocol's checksum step catches silent failures.
func (d *DirStore) Put(name string, data []byte) {
	p := d.resolve(name)
	if p == "" {
		return
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return
	}
	tmp := p + ".part"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	os.Rename(tmp, p) //nolint:errcheck // absence on Get signals the failure
}

// List returns the relative paths of all regular files under the root.
func (d *DirStore) List() []string {
	var names []string
	filepath.Walk(d.root, func(path string, info os.FileInfo, err error) error { //nolint:errcheck
		if err != nil || info.IsDir() || strings.HasSuffix(path, ".part") {
			return nil
		}
		rel, err := filepath.Rel(d.root, path)
		if err != nil {
			return nil
		}
		names = append(names, filepath.ToSlash(rel))
		return nil
	})
	sort.Strings(names)
	return names
}
