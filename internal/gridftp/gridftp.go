// Package gridftp implements a GridFTP-style file transfer service: a
// text control protocol with striped, parallel TCP data transfer, integrity
// checksums and third-party-transfer-friendly range requests. It completes
// steps (5)–(6) of the paper's Figure 2 scenario — after the MCS resolves
// attributes to logical names and the RLS resolves names to locations, the
// data itself moves over this protocol.
//
// Control protocol (one text line per command, FTP-style reply codes):
//
//	SIZE <name>                          -> 213 <bytes> | 550 <err>
//	CKSM <name>                          -> 213 <sha256-hex> | 550 <err>
//	RETR <name> <offset> <length>        -> 150 <length> + raw bytes
//	ALLO <name> <total>                  -> 200 <upload-id>
//	STOW <upload-id> <offset> <length>   -> 150 ok, then raw bytes -> 226 ok
//	FIN  <upload-id>                     -> 226 ok | 550 <err>
//	LIST                                 -> 212 <n> + n lines
//	QUIT                                 -> 221 bye
package gridftp

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
)

// Store abstracts the storage a server fronts.
type Store interface {
	// Get returns the content of name.
	Get(name string) ([]byte, bool)
	// Put stores content under name, replacing any previous content.
	Put(name string, data []byte)
	// List returns all stored names, sorted.
	List() []string
}

// MemStore is an in-memory Store, standing in for the storage systems of
// the original testbed.
type MemStore struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{files: make(map[string][]byte)}
}

// Get returns the content of name.
func (m *MemStore) Get(name string) ([]byte, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.files[name]
	return data, ok
}

// Put stores content under name.
func (m *MemStore) Put(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	m.files[name] = cp
}

// List returns all stored names, sorted.
func (m *MemStore) List() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of stored files.
func (m *MemStore) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.files)
}

// checksum returns the hex sha256 of data.
func checksum(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// upload tracks one in-progress striped store.
type upload struct {
	mu       sync.Mutex
	name     string
	buf      []byte
	received int64
}

// uploads is the server-side registry of open striped stores.
type uploads struct {
	mu   sync.Mutex
	next int64
	m    map[string]*upload
}

func newUploads() *uploads { return &uploads{m: make(map[string]*upload)} }

func (u *uploads) create(name string, total int64) (string, error) {
	if total < 0 || total > 1<<31 {
		return "", fmt.Errorf("gridftp: bad upload size %d", total)
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	u.next++
	id := fmt.Sprintf("u%d", u.next)
	u.m[id] = &upload{name: name, buf: make([]byte, total)}
	return id, nil
}

func (u *uploads) get(id string) (*upload, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	up, ok := u.m[id]
	return up, ok
}

func (u *uploads) finish(id string) (*upload, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	up, ok := u.m[id]
	if !ok {
		return nil, fmt.Errorf("gridftp: unknown upload %q", id)
	}
	delete(u.m, id)
	up.mu.Lock()
	defer up.mu.Unlock()
	if up.received != int64(len(up.buf)) {
		return nil, fmt.Errorf("gridftp: upload %q incomplete: %d of %d bytes",
			id, up.received, len(up.buf))
	}
	return up, nil
}
