package gridftp

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestDirStorePutGet(t *testing.T) {
	d := NewDirStore(t.TempDir())
	d.Put("a/b/c.dat", []byte("hello"))
	got, ok := d.Get("a/b/c.dat")
	if !ok || string(got) != "hello" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := d.Get("missing"); ok {
		t.Fatal("missing file reported present")
	}
	names := d.List()
	if len(names) != 1 || names[0] != "a/b/c.dat" {
		t.Fatalf("List = %v", names)
	}
}

func TestDirStoreOverwrite(t *testing.T) {
	d := NewDirStore(t.TempDir())
	d.Put("f", []byte("one"))
	d.Put("f", []byte("two"))
	got, _ := d.Get("f")
	if string(got) != "two" {
		t.Fatalf("overwrite = %q", got)
	}
	// No .part residue.
	for _, n := range d.List() {
		if filepath.Ext(n) == ".part" {
			t.Fatalf("partial file listed: %s", n)
		}
	}
}

func TestDirStorePathEscapeBlocked(t *testing.T) {
	root := t.TempDir()
	outside := filepath.Join(root, "..", "escape.txt")
	d := NewDirStore(filepath.Join(root, "serve"))
	os.MkdirAll(filepath.Join(root, "serve"), 0o755) //nolint:errcheck
	d.Put("../escape.txt", []byte("evil"))
	if _, err := os.Stat(outside); !os.IsNotExist(err) {
		t.Fatal("path escaped the root on Put")
	}
	if _, ok := d.Get("../../etc/passwd"); ok {
		t.Fatal("path escaped the root on Get")
	}
	if _, ok := d.Get(""); ok {
		t.Fatal("empty name resolved")
	}
}

func TestDirStoreServesTransfers(t *testing.T) {
	root := t.TempDir()
	d := NewDirStore(root)
	data := randBytes(30000, 9)
	d.Put("big.dat", data)

	srv := NewServer(d)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	got, err := NewClient(addr, 3).Retrieve("big.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("dir-backed retrieve differs")
	}
	// Upload lands on disk.
	up := randBytes(5000, 10)
	if err := NewClient(addr, 2).Store("up/loaded.dat", up); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(filepath.Join(root, "up", "loaded.dat"))
	if err != nil || !bytes.Equal(onDisk, up) {
		t.Fatalf("upload not on disk: %v", err)
	}
}
