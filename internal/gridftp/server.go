package gridftp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
)

// Server speaks the gridftp control/data protocol over TCP.
type Server struct {
	Store Store

	uploads *uploads

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
}

// NewServer fronts store with a transfer server.
func NewServer(store Store) *Server {
	return &Server{Store: store, uploads: newUploads(), conns: make(map[net.Conn]bool)}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serving happens on background goroutines until
// Close.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("gridftp: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.handle(conn)
		}()
	}
}

// Close stops the listener and closes open connections.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
}

// handle runs the command loop for one control/data connection.
func (s *Server) handle(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	for {
		w.Flush() //nolint:errcheck // per-command flush
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "SIZE":
			if len(fields) != 2 {
				fmt.Fprintf(w, "501 SIZE takes one argument\n")
				continue
			}
			data, ok := s.Store.Get(fields[1])
			if !ok {
				fmt.Fprintf(w, "550 no such file %s\n", fields[1])
				continue
			}
			fmt.Fprintf(w, "213 %d\n", len(data))
		case "CKSM":
			if len(fields) != 2 {
				fmt.Fprintf(w, "501 CKSM takes one argument\n")
				continue
			}
			data, ok := s.Store.Get(fields[1])
			if !ok {
				fmt.Fprintf(w, "550 no such file %s\n", fields[1])
				continue
			}
			fmt.Fprintf(w, "213 %s\n", checksum(data))
		case "RETR":
			if len(fields) != 4 {
				fmt.Fprintf(w, "501 RETR takes name offset length\n")
				continue
			}
			s.retr(w, fields[1], fields[2], fields[3])
		case "ALLO":
			if len(fields) != 3 {
				fmt.Fprintf(w, "501 ALLO takes name total\n")
				continue
			}
			total, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				fmt.Fprintf(w, "501 bad total\n")
				continue
			}
			id, err := s.uploads.create(fields[1], total)
			if err != nil {
				fmt.Fprintf(w, "550 %v\n", err)
				continue
			}
			fmt.Fprintf(w, "200 %s\n", id)
		case "STOW":
			if len(fields) != 4 {
				fmt.Fprintf(w, "501 STOW takes id offset length\n")
				continue
			}
			s.stow(r, w, fields[1], fields[2], fields[3])
		case "FIN":
			if len(fields) != 2 {
				fmt.Fprintf(w, "501 FIN takes one argument\n")
				continue
			}
			up, err := s.uploads.finish(fields[1])
			if err != nil {
				fmt.Fprintf(w, "550 %v\n", err)
				continue
			}
			s.Store.Put(up.name, up.buf)
			fmt.Fprintf(w, "226 ok\n")
		case "LIST":
			names := s.Store.List()
			fmt.Fprintf(w, "212 %d\n", len(names))
			for _, n := range names {
				fmt.Fprintf(w, "%s\n", n)
			}
		case "QUIT":
			fmt.Fprintf(w, "221 bye\n")
			return
		default:
			fmt.Fprintf(w, "500 unknown command %s\n", fields[0])
		}
	}
}

func (s *Server) retr(w *bufio.Writer, name, offStr, lenStr string) {
	off, err1 := strconv.ParseInt(offStr, 10, 64)
	length, err2 := strconv.ParseInt(lenStr, 10, 64)
	if err1 != nil || err2 != nil || off < 0 || length < 0 {
		fmt.Fprintf(w, "501 bad range\n")
		return
	}
	data, ok := s.Store.Get(name)
	if !ok {
		fmt.Fprintf(w, "550 no such file %s\n", name)
		return
	}
	if off > int64(len(data)) || off+length > int64(len(data)) {
		fmt.Fprintf(w, "550 range beyond end of file\n")
		return
	}
	fmt.Fprintf(w, "150 %d\n", length)
	w.Write(data[off : off+length]) //nolint:errcheck // connection errors surface on flush
}

func (s *Server) stow(r *bufio.Reader, w *bufio.Writer, id, offStr, lenStr string) {
	off, err1 := strconv.ParseInt(offStr, 10, 64)
	length, err2 := strconv.ParseInt(lenStr, 10, 64)
	if err1 != nil || err2 != nil || off < 0 || length < 0 {
		fmt.Fprintf(w, "501 bad range\n")
		return
	}
	up, ok := s.uploads.get(id)
	if !ok {
		fmt.Fprintf(w, "550 unknown upload %s\n", id)
		return
	}
	if off+length > int64(len(up.buf)) {
		fmt.Fprintf(w, "550 range beyond allocation\n")
		return
	}
	fmt.Fprintf(w, "150 ok\n")
	w.Flush() //nolint:errcheck // client waits for go-ahead before sending
	buf := make([]byte, length)
	if _, err := io.ReadFull(r, buf); err != nil {
		fmt.Fprintf(w, "426 short stripe: %v\n", err)
		return
	}
	up.mu.Lock()
	copy(up.buf[off:], buf)
	up.received += length
	up.mu.Unlock()
	fmt.Fprintf(w, "226 ok\n")
}

// errShort is returned when a reply line cannot be parsed.
var errShort = errors.New("gridftp: malformed reply")
