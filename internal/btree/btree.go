// Package btree implements an in-memory B-tree with user-supplied ordering
// and O(1) copy-on-write cloning.
//
// It is the storage structure behind sqldb's tables and indexes. Keys are
// kept in sorted order, so equality lookups, range scans and ordered
// iteration are all O(log n + k). Clone returns a new tree sharing all nodes
// with the original; each tree copies a node the first time it mutates it,
// so a clone costs O(1) and mutations cost an extra O(log n) node copies
// amortized. A single tree is not safe for concurrent mutation (sqldb
// serializes writers above this layer), but any number of goroutines may
// read a tree concurrently with mutations of its clones, provided the tree
// itself is no longer mutated after cloning — the discipline sqldb's MVCC
// roots follow.
//
// Fan-out is per tree: New uses DefaultDegree, tuned for read-mostly maps;
// NewDegree lets write-heavy trees (sqldb's secondary indexes) pick a small
// degree so each copy-on-write path copy moves fewer bytes.
package btree

// DefaultDegree is the minimum number of children of an internal node for
// trees built with New. Nodes hold between degree-1 and 2*degree-1 items.
// 32 keeps nodes around a cache line multiple without deep trees for
// million-row tables.
const DefaultDegree = 32

// cow is a copy-on-write ownership token. Every node records the token of
// the tree that created (or last copied) it; a tree may mutate a node in
// place only when the tokens match, otherwise it works on a private copy.
type cow struct{ _ byte }

// Tree is a B-tree mapping keys of type K to values of type V.
// The zero value is not usable; construct with New or NewDegree.
type Tree[K, V any] struct {
	less func(a, b K) bool
	root *node[K, V]
	size int
	cow  *cow

	// maxItems/minItems derive from the tree's degree and travel through
	// Clone, so every version of a tree splits and merges identically.
	maxItems int
	minItems int
}

type item[K, V any] struct {
	key K
	val V
}

type node[K, V any] struct {
	cow *cow
	// itemsCow is the ownership token for the items slice specifically: a
	// path copy of an interior node shares the source's items array (the
	// separators only change on a split, merge or rotation, which are rare
	// next to plain descents) and copies it lazily via ownItems the first
	// time they actually change. Leaves always copy — reaching a leaf means
	// mutating it. This matters because the items array is ~90% of an
	// interior node's bytes; sharing it makes an interior path copy cost a
	// node header plus a child-pointer slice instead of a full node.
	itemsCow *cow
	items    []item[K, V]
	children []*node[K, V] // nil for leaves
}

// New returns an empty tree of DefaultDegree ordered by less.
func New[K, V any](less func(a, b K) bool) *Tree[K, V] {
	return NewDegree[K, V](DefaultDegree, less)
}

// NewDegree returns an empty tree ordered by less whose nodes have between
// degree and 2*degree children (degree-1 to 2*degree-1 items). Smaller
// degrees copy fewer bytes per copy-on-write mutation at the cost of a
// deeper tree; degree must be at least 2.
func NewDegree[K, V any](degree int, less func(a, b K) bool) *Tree[K, V] {
	if degree < 2 {
		panic("btree: degree must be at least 2")
	}
	c := &cow{}
	return &Tree[K, V]{
		less:     less,
		root:     &node[K, V]{cow: c, itemsCow: c},
		cow:      c,
		maxItems: 2*degree - 1,
		minItems: degree - 1,
	}
}

// Clone returns a copy of the tree in O(1): both trees share every node
// until one of them writes. The clone carries a fresh ownership token, so
// its first mutation along any path copies the shared nodes it touches.
// After Clone, the original must not be mutated if the clone (or readers of
// the original) are still live; sqldb guarantees this by never mutating a
// committed root.
func (t *Tree[K, V]) Clone() *Tree[K, V] {
	return &Tree[K, V]{
		less: t.less, root: t.root, size: t.size, cow: &cow{},
		maxItems: t.maxItems, minItems: t.minItems,
	}
}

// mutable returns n if this tree owns it, otherwise a private copy stamped
// with this tree's token. Callers must store the result back into the
// parent (or the root) before mutating it. An interior copy shares the
// source's items array — the source belongs to an earlier, now-immutable
// generation, so sharing is safe until this tree mutates the separators, at
// which point ownItems copies them. A leaf copy takes its items eagerly.
func (t *Tree[K, V]) mutable(n *node[K, V]) *node[K, V] {
	if n.cow == t.cow {
		return n
	}
	cp := &node[K, V]{cow: t.cow}
	if n.leaf() {
		// Size the copy by occupancy, not by the source's capacity: nodes
		// sit around 2/3 full on average, and full-capacity leaf copies are
		// the dominant allocation of a copy-on-write mutation. A small
		// headroom keeps the common insert-after-copy from growing the
		// slice again immediately.
		c := len(n.items) + 4
		if c > t.maxItems {
			c = t.maxItems
		}
		cp.itemsCow = t.cow
		cp.items = append(make([]item[K, V], 0, c), n.items...)
		return cp
	}
	cp.itemsCow = n.itemsCow
	cp.items = n.items
	cc := len(n.children) + 4
	if cc > t.maxItems+1 {
		cc = t.maxItems + 1
	}
	cp.children = append(make([]*node[K, V], 0, cc), n.children...)
	return cp
}

// ownItems makes n's items array private to this tree (copying it if it is
// still shared with an earlier generation) so separators can be mutated in
// place. n itself must already be mutable.
func (t *Tree[K, V]) ownItems(n *node[K, V]) {
	if n.itemsCow == t.cow {
		return
	}
	c := len(n.items) + 4
	if c > t.maxItems {
		c = t.maxItems
	}
	n.items = append(make([]item[K, V], 0, c), n.items...)
	n.itemsCow = t.cow
}

// clearItems zeroes vacated item slots so shrunk nodes do not pin deleted
// keys and values (Rows, strings) for as long as the node stays reachable
// from a published MVCC root.
func clearItems[K, V any](s []item[K, V], from, to int) {
	var zero item[K, V]
	for i := from; i < to; i++ {
		s[i] = zero
	}
}

// clearChildren zeroes vacated child-pointer slots; a stale pointer beyond
// len would otherwise keep an entire detached subtree alive.
func clearChildren[K, V any](s []*node[K, V], from, to int) {
	for i := from; i < to; i++ {
		s[i] = nil
	}
}

// Len reports the number of items stored in the tree.
func (t *Tree[K, V]) Len() int { return t.size }

func (n *node[K, V]) leaf() bool { return len(n.children) == 0 }

// find returns the index of the first item in n not less than key, and
// whether that item's key equals key (i.e. neither orders before the other).
func (t *Tree[K, V]) find(n *node[K, V], key K) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.less(n.items[mid].key, key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.items) && !t.less(key, n.items[lo].key) {
		return lo, true
	}
	return lo, false
}

// Get returns the value stored under key.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	n := t.root
	for {
		i, ok := t.find(n, key)
		if ok {
			return n.items[i].val, true
		}
		if n.leaf() {
			var zero V
			return zero, false
		}
		n = n.children[i]
	}
}

// Set inserts key/val, replacing any existing value under an equal key.
// It reports whether an existing value was replaced.
func (t *Tree[K, V]) Set(key K, val V) bool {
	t.root = t.mutable(t.root)
	if len(t.root.items) == t.maxItems {
		old := t.root
		t.root = &node[K, V]{cow: t.cow, itemsCow: t.cow, children: []*node[K, V]{old}}
		t.splitChild(t.root, 0)
	}
	replaced := t.insertNonFull(t.root, key, val)
	if !replaced {
		t.size++
	}
	return replaced
}

// insertNonFull descends from n (which the caller has made mutable and
// non-full) to a leaf, copying shared nodes along the way.
func (t *Tree[K, V]) insertNonFull(n *node[K, V], key K, val V) bool {
	for {
		i, ok := t.find(n, key)
		if ok {
			t.ownItems(n)
			n.items[i].val = val
			return true
		}
		if n.leaf() {
			n.items = append(n.items, item[K, V]{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = item[K, V]{key: key, val: val}
			return false
		}
		if len(n.children[i].items) == t.maxItems {
			t.splitChild(n, i)
			// The promoted separator may equal or order before key.
			if !t.less(key, n.items[i].key) {
				if !t.less(n.items[i].key, key) {
					n.items[i].val = val
					return true
				}
				i++
			}
		}
		n.children[i] = t.mutable(n.children[i])
		n = n.children[i]
	}
}

// splitChild splits the full child at index i of n, promoting its median
// item into n. n must be mutable.
func (t *Tree[K, V]) splitChild(n *node[K, V], i int) {
	n.children[i] = t.mutable(n.children[i])
	child := n.children[i]
	mid := t.maxItems / 2
	median := child.items[mid]

	right := &node[K, V]{cow: t.cow, itemsCow: t.cow}
	right.items = append(make([]item[K, V], 0, mid+4), child.items[mid+1:]...)
	if child.itemsCow == t.cow {
		clearItems(child.items, mid, len(child.items))
		child.items = child.items[:mid]
	} else {
		// Shared with an earlier generation: take the left half directly
		// instead of copying all items only to truncate them.
		child.items = append(make([]item[K, V], 0, mid+4), child.items[:mid]...)
		child.itemsCow = t.cow
	}
	if !child.leaf() {
		right.children = append(right.children, child.children[mid+1:]...)
		clearChildren(child.children, mid+1, len(child.children))
		child.children = child.children[:mid+1]
	}

	t.ownItems(n)
	n.items = append(n.items, item[K, V]{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = median
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Delete removes key from the tree and reports whether it was present.
func (t *Tree[K, V]) Delete(key K) bool {
	t.root = t.mutable(t.root)
	deleted := t.delete(t.root, key)
	if len(t.root.items) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	if deleted {
		t.size--
	}
	return deleted
}

// delete removes key from the subtree rooted at n; n must be mutable.
func (t *Tree[K, V]) delete(n *node[K, V], key K) bool {
	i, found := t.find(n, key)
	if n.leaf() {
		if !found {
			return false
		}
		copy(n.items[i:], n.items[i+1:])
		clearItems(n.items, len(n.items)-1, len(n.items))
		n.items = n.items[:len(n.items)-1]
		return true
	}
	if found {
		// Replace with predecessor from the left subtree, then delete it there.
		if left := n.children[i]; len(left.items) > t.minItems {
			pred := t.max(left)
			t.ownItems(n)
			n.items[i] = pred
			n.children[i] = t.mutable(left)
			return t.delete(n.children[i], pred.key)
		}
		if right := n.children[i+1]; len(right.items) > t.minItems {
			succ := t.min(right)
			t.ownItems(n)
			n.items[i] = succ
			n.children[i+1] = t.mutable(right)
			return t.delete(n.children[i+1], succ.key)
		}
		t.mergeChildren(n, i)
		return t.delete(n.children[i], key)
	}
	// Descend, topping up the child if it is minimal.
	if len(n.children[i].items) == t.minItems {
		i = t.fixChild(n, i)
	}
	n.children[i] = t.mutable(n.children[i])
	return t.delete(n.children[i], key)
}

func (t *Tree[K, V]) max(n *node[K, V]) item[K, V] {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

func (t *Tree[K, V]) min(n *node[K, V]) item[K, V] {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

// fixChild ensures n.children[i] has more than minItems items, borrowing
// from a sibling or merging. It returns the (possibly shifted) child index.
// n must be mutable; the child and any touched sibling are made mutable.
func (t *Tree[K, V]) fixChild(n *node[K, V], i int) int {
	n.children[i] = t.mutable(n.children[i])
	child := n.children[i]
	if i > 0 && len(n.children[i-1].items) > t.minItems {
		// Rotate right: left sibling's last item -> separator -> child front.
		n.children[i-1] = t.mutable(n.children[i-1])
		left := n.children[i-1]
		t.ownItems(n)
		t.ownItems(child)
		t.ownItems(left)
		child.items = append(child.items, item[K, V]{})
		copy(child.items[1:], child.items)
		child.items[0] = n.items[i-1]
		n.items[i-1] = left.items[len(left.items)-1]
		clearItems(left.items, len(left.items)-1, len(left.items))
		left.items = left.items[:len(left.items)-1]
		if !child.leaf() {
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = left.children[len(left.children)-1]
			clearChildren(left.children, len(left.children)-1, len(left.children))
			left.children = left.children[:len(left.children)-1]
		}
		return i
	}
	if i < len(n.children)-1 && len(n.children[i+1].items) > t.minItems {
		// Rotate left.
		n.children[i+1] = t.mutable(n.children[i+1])
		right := n.children[i+1]
		t.ownItems(n)
		t.ownItems(child)
		t.ownItems(right)
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		copy(right.items, right.items[1:])
		clearItems(right.items, len(right.items)-1, len(right.items))
		right.items = right.items[:len(right.items)-1]
		if !child.leaf() {
			child.children = append(child.children, right.children[0])
			copy(right.children, right.children[1:])
			clearChildren(right.children, len(right.children)-1, len(right.children))
			right.children = right.children[:len(right.children)-1]
		}
		return i
	}
	if i == len(n.children)-1 {
		i--
	}
	t.mergeChildren(n, i)
	return i
}

// mergeChildren merges child i, separator i and child i+1 into child i.
// n must be mutable; the left child is made mutable (the right is only read).
func (t *Tree[K, V]) mergeChildren(n *node[K, V], i int) {
	n.children[i] = t.mutable(n.children[i])
	left, right := n.children[i], n.children[i+1]
	t.ownItems(n)
	t.ownItems(left)
	left.items = append(left.items, n.items[i])
	left.items = append(left.items, right.items...)
	left.children = append(left.children, right.children...)
	copy(n.items[i:], n.items[i+1:])
	clearItems(n.items, len(n.items)-1, len(n.items))
	n.items = n.items[:len(n.items)-1]
	copy(n.children[i+1:], n.children[i+2:])
	clearChildren(n.children, len(n.children)-1, len(n.children))
	n.children = n.children[:len(n.children)-1]
}

// Ascend calls fn for each item in key order, starting at the smallest key,
// until fn returns false.
func (t *Tree[K, V]) Ascend(fn func(key K, val V) bool) {
	t.ascend(t.root, fn)
}

func (t *Tree[K, V]) ascend(n *node[K, V], fn func(K, V) bool) bool {
	for i, it := range n.items {
		if !n.leaf() && !t.ascend(n.children[i], fn) {
			return false
		}
		if !fn(it.key, it.val) {
			return false
		}
	}
	if !n.leaf() {
		return t.ascend(n.children[len(n.children)-1], fn)
	}
	return true
}

// AscendRange calls fn in key order for every item with ge <= key < lt,
// until fn returns false.
func (t *Tree[K, V]) AscendRange(ge, lt K, fn func(key K, val V) bool) {
	t.ascendGE(t.root, ge, func(k K, v V) bool {
		if !t.less(k, lt) {
			return false
		}
		return fn(k, v)
	})
}

// AscendGE calls fn in key order for every item with key >= ge,
// until fn returns false.
func (t *Tree[K, V]) AscendGE(ge K, fn func(key K, val V) bool) {
	t.ascendGE(t.root, ge, fn)
}

func (t *Tree[K, V]) ascendGE(n *node[K, V], ge K, fn func(K, V) bool) bool {
	i, _ := t.find(n, ge)
	if !n.leaf() {
		if !t.ascendGE(n.children[i], ge, fn) {
			return false
		}
	}
	for ; i < len(n.items); i++ {
		if !fn(n.items[i].key, n.items[i].val) {
			return false
		}
		if !n.leaf() && !t.ascend(n.children[i+1], fn) {
			return false
		}
	}
	return true
}

// Min returns the smallest key and its value.
func (t *Tree[K, V]) Min() (K, V, bool) {
	if t.size == 0 {
		var k K
		var v V
		return k, v, false
	}
	it := t.min(t.root)
	return it.key, it.val, true
}

// Max returns the largest key and its value.
func (t *Tree[K, V]) Max() (K, V, bool) {
	if t.size == 0 {
		var k K
		var v V
		return k, v, false
	}
	it := t.max(t.root)
	return it.key, it.val, true
}
