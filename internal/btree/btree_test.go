package btree

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func intTree() *Tree[int, string] {
	return New[int, string](func(a, b int) bool { return a < b })
}

func TestEmptyTree(t *testing.T) {
	tr := intTree()
	if tr.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", tr.Len())
	}
	if _, ok := tr.Get(42); ok {
		t.Fatal("Get on empty tree reported ok")
	}
	if tr.Delete(42) {
		t.Fatal("Delete on empty tree reported true")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree reported ok")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree reported ok")
	}
}

func TestSetGet(t *testing.T) {
	tr := intTree()
	if tr.Set(1, "a") {
		t.Fatal("first Set reported replacement")
	}
	if !tr.Set(1, "b") {
		t.Fatal("second Set did not report replacement")
	}
	v, ok := tr.Get(1)
	if !ok || v != "b" {
		t.Fatalf("Get(1) = %q, %v; want b, true", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", tr.Len())
	}
}

func TestSequentialInsertDelete(t *testing.T) {
	const n = 5000
	tr := intTree()
	for i := 0; i < n; i++ {
		tr.Set(i, "v")
	}
	if tr.Len() != n {
		t.Fatalf("Len() = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		if _, ok := tr.Get(i); !ok {
			t.Fatalf("Get(%d) missing", i)
		}
	}
	for i := 0; i < n; i += 2 {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len() = %d, want %d", tr.Len(), n/2)
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
		}
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := intTree()
	ref := map[int]string{}
	vals := []string{"a", "b", "c", "d"}
	for op := 0; op < 20000; op++ {
		k := rng.Intn(2000)
		switch rng.Intn(3) {
		case 0, 1:
			v := vals[rng.Intn(len(vals))]
			wantReplace := false
			if _, ok := ref[k]; ok {
				wantReplace = true
			}
			if got := tr.Set(k, v); got != wantReplace {
				t.Fatalf("op %d: Set(%d) replaced=%v, want %v", op, k, got, wantReplace)
			}
			ref[k] = v
		case 2:
			_, want := ref[k]
			if got := tr.Delete(k); got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, got, want)
			}
			delete(ref, k)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("op %d: Len() = %d, want %d", op, tr.Len(), len(ref))
		}
	}
	for k, v := range ref {
		got, ok := tr.Get(k)
		if !ok || got != v {
			t.Fatalf("final Get(%d) = %q, %v; want %q", k, got, ok, v)
		}
	}
}

func TestAscendOrder(t *testing.T) {
	tr := intTree()
	perm := rand.New(rand.NewSource(1)).Perm(1000)
	for _, k := range perm {
		tr.Set(k, "v")
	}
	var got []int
	tr.Ascend(func(k int, _ string) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 1000 {
		t.Fatalf("Ascend visited %d items, want 1000", len(got))
	}
	if !sort.IntsAreSorted(got) {
		t.Fatal("Ascend visited keys out of order")
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := intTree()
	for i := 0; i < 100; i++ {
		tr.Set(i, "v")
	}
	count := 0
	tr.Ascend(func(k int, _ string) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early-stopped Ascend visited %d, want 10", count)
	}
}

func TestAscendRange(t *testing.T) {
	tr := intTree()
	for i := 0; i < 200; i += 2 { // even keys only
		tr.Set(i, "v")
	}
	var got []int
	tr.AscendRange(31, 71, func(k int, _ string) bool {
		got = append(got, k)
		return true
	})
	var want []int
	for i := 32; i < 71; i += 2 {
		want = append(want, i)
	}
	if len(got) != len(want) {
		t.Fatalf("AscendRange returned %d keys, want %d: %v", len(got), len(want), got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("AscendRange[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAscendGE(t *testing.T) {
	tr := intTree()
	for i := 0; i < 50; i++ {
		tr.Set(i*3, "v")
	}
	var got []int
	tr.AscendGE(100, func(k int, _ string) bool {
		got = append(got, k)
		return true
	})
	for _, k := range got {
		if k < 100 {
			t.Fatalf("AscendGE(100) visited %d", k)
		}
	}
	// keys are 0,3,...,147; >= 100 means 102..147 -> 16 keys
	if len(got) != 16 {
		t.Fatalf("AscendGE(100) visited %d keys, want 16", len(got))
	}
}

func TestMinMax(t *testing.T) {
	tr := intTree()
	for _, k := range []int{5, 1, 9, 3, 7} {
		tr.Set(k, "v")
	}
	if k, _, _ := tr.Min(); k != 1 {
		t.Fatalf("Min = %d, want 1", k)
	}
	if k, _, _ := tr.Max(); k != 9 {
		t.Fatalf("Max = %d, want 9", k)
	}
}

func TestStringKeys(t *testing.T) {
	tr := New[string, int](func(a, b string) bool { return a < b })
	words := []string{"pear", "apple", "fig", "banana", "cherry"}
	for i, w := range words {
		tr.Set(w, i)
	}
	var got []string
	tr.Ascend(func(k string, _ int) bool {
		got = append(got, k)
		return true
	})
	if !sort.StringsAreSorted(got) {
		t.Fatalf("string keys out of order: %v", got)
	}
}

// Property: inserting any set of keys then iterating yields exactly the
// sorted unique keys.
func TestQuickInsertIterate(t *testing.T) {
	f := func(keys []int16) bool {
		tr := intTree()
		uniq := map[int]bool{}
		for _, k := range keys {
			tr.Set(int(k), "v")
			uniq[int(k)] = true
		}
		var got []int
		tr.Ascend(func(k int, _ string) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(uniq) {
			return false
		}
		if !sort.IntsAreSorted(got) {
			return false
		}
		for _, k := range got {
			if !uniq[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: delete of all inserted keys, in any order, empties the tree.
func TestQuickInsertDeleteAll(t *testing.T) {
	f := func(keys []uint8, seed int64) bool {
		tr := intTree()
		uniq := map[int]bool{}
		for _, k := range keys {
			tr.Set(int(k), "v")
			uniq[int(k)] = true
		}
		order := make([]int, 0, len(uniq))
		for k := range uniq {
			order = append(order, k)
		}
		rand.New(rand.NewSource(seed)).Shuffle(len(order), func(i, j int) {
			order[i], order[j] = order[j], order[i]
		})
		for _, k := range order {
			if !tr.Delete(k) {
				return false
			}
		}
		return tr.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsolation(t *testing.T) {
	tr := intTree()
	for i := 0; i < 3000; i++ {
		tr.Set(i, "orig")
	}
	cl := tr.Clone()
	for i := 0; i < 3000; i += 2 {
		cl.Delete(i)
	}
	for i := 3000; i < 4000; i++ {
		cl.Set(i, "new")
	}
	for i := 1; i < 3000; i += 3 {
		cl.Set(i, "changed")
	}
	// The original is untouched.
	if tr.Len() != 3000 {
		t.Fatalf("original Len() = %d, want 3000", tr.Len())
	}
	for i := 0; i < 3000; i++ {
		v, ok := tr.Get(i)
		if !ok || v != "orig" {
			t.Fatalf("original Get(%d) = %q, %v; want orig, true", i, v, ok)
		}
	}
	if _, ok := tr.Get(3500); ok {
		t.Fatal("original sees key inserted into clone")
	}
	// The clone sees its own mutations: 1500 odd survivors, 1000 new keys,
	// and 500 even keys re-inserted by the "changed" loop (i = 4 mod 6).
	if cl.Len() != 3000 {
		t.Fatalf("clone Len() = %d, want 3000", cl.Len())
	}
	if _, ok := cl.Get(102); ok {
		t.Fatal("clone still has deleted key 102")
	}
	if v, _ := cl.Get(3500); v != "new" {
		t.Fatalf("clone Get(3500) = %q, want new", v)
	}
}

// Generations of clones: each frozen generation keeps matching the reference
// snapshot taken when it was cloned, while later generations diverge.
func TestCloneGenerations(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cur := intTree()
	ref := map[int]string{}
	type gen struct {
		tree *Tree[int, string]
		snap map[int]string
	}
	var frozen []gen
	for g := 0; g < 6; g++ {
		for op := 0; op < 800; op++ {
			k := rng.Intn(500)
			if rng.Intn(3) == 0 {
				cur.Delete(k)
				delete(ref, k)
			} else {
				cur.Set(k, "g"+string(rune('0'+g)))
				ref[k] = "g" + string(rune('0'+g))
			}
		}
		snap := make(map[int]string, len(ref))
		for k, v := range ref {
			snap[k] = v
		}
		frozen = append(frozen, gen{cur, snap})
		cur = cur.Clone() // freeze this generation; mutate only the clone
	}
	for gi, g := range frozen {
		if g.tree.Len() != len(g.snap) {
			t.Fatalf("gen %d: Len() = %d, want %d", gi, g.tree.Len(), len(g.snap))
		}
		for k, want := range g.snap {
			got, ok := g.tree.Get(k)
			if !ok || got != want {
				t.Fatalf("gen %d: Get(%d) = %q, %v; want %q", gi, k, got, ok, want)
			}
		}
		count := 0
		g.tree.Ascend(func(k int, v string) bool {
			if g.snap[k] != v {
				t.Fatalf("gen %d: Ascend saw %d=%q, want %q", gi, k, v, g.snap[k])
			}
			count++
			return true
		})
		if count != len(g.snap) {
			t.Fatalf("gen %d: Ascend visited %d, want %d", gi, count, len(g.snap))
		}
	}
}

// Readers of a frozen tree race against mutation of its clone; run with
// -race to prove node sharing never lets a clone write into a frozen node.
func TestCloneConcurrentReaders(t *testing.T) {
	tr := intTree()
	for i := 0; i < 5000; i++ {
		tr.Set(i, "v")
	}
	cl := tr.Clone()
	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, ok := tr.Get(rng.Intn(5000)); !ok {
					t.Error("frozen tree lost a key during clone mutation")
					return
				}
				n := 0
				tr.AscendGE(rng.Intn(5000), func(int, string) bool {
					n++
					return n < 50
				})
			}
		}(int64(r))
	}
	for i := 0; i < 5000; i++ {
		cl.Set(rand.Intn(10000), "w")
		cl.Delete(rand.Intn(10000))
	}
	close(done)
	readers.Wait()
	if tr.Len() != 5000 {
		t.Fatalf("frozen tree Len() = %d, want 5000", tr.Len())
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := intTree()
	for i := 0; i < b.N; i++ {
		tr.Set(i, "v")
	}
}

func BenchmarkGet(b *testing.B) {
	tr := intTree()
	for i := 0; i < 100000; i++ {
		tr.Set(i, "v")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(i % 100000)
	}
}

// TestNewDegree exercises a small-fanout tree through the same workload as
// the randomized test: the split/merge thresholds derive from the degree, so
// a degree-3 tree hits rebalancing constantly.
func TestNewDegree(t *testing.T) {
	tr := NewDegree[int, int](3, func(a, b int) bool { return a < b })
	rng := rand.New(rand.NewSource(7))
	ref := map[int]int{}
	for i := 0; i < 5000; i++ {
		k := rng.Intn(600)
		switch rng.Intn(3) {
		case 0, 1:
			tr.Set(k, i)
			ref[k] = i
		case 2:
			tr.Delete(k)
			delete(ref, k)
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
	}
	for k, want := range ref {
		got, ok := tr.Get(k)
		if !ok || got != want {
			t.Fatalf("Get(%d) = %d,%v want %d,true", k, got, ok, want)
		}
	}
	clone := tr.Clone()
	for k := range ref {
		tr.Delete(k)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len after delete-all = %d", tr.Len())
	}
	if clone.Len() != len(ref) {
		t.Fatalf("clone.Len = %d, want %d", clone.Len(), len(ref))
	}
	if got := tr.Clone().Len(); got != 0 {
		t.Fatalf("Clone of emptied tree has Len %d", got)
	}
}

func TestDegreePanicsBelowTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDegree(1, ...) did not panic")
		}
	}()
	NewDegree[int, int](1, func(a, b int) bool { return a < b })
}

// checkNoRetention walks every node asserting that the slots between len and
// cap of its slices are zeroed: a non-zero slot past len pins a deleted key,
// value or detached subtree for as long as the node is reachable from a live
// root. Every shrink site (leaf delete, split truncation, rotations, merges)
// must clear the slots it vacates.
func checkNoRetention(t *testing.T, tr *Tree[int, *[]byte]) {
	t.Helper()
	var walk func(n *node[int, *[]byte])
	walk = func(n *node[int, *[]byte]) {
		spare := n.items[len(n.items):cap(n.items)]
		for i := range spare {
			if spare[i].key != 0 || spare[i].val != nil {
				t.Fatalf("stale item %d/%d past len %d: key=%d val=%p",
					i, len(spare), len(n.items), spare[i].key, spare[i].val)
			}
		}
		spareC := n.children[len(n.children):cap(n.children)]
		for i := range spareC {
			if spareC[i] != nil {
				t.Fatalf("stale child pointer %d past len %d", i, len(n.children))
			}
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(tr.root)
}

// TestDeleteDoesNotRetainValues drives trees of two fan-outs through a
// clone-heavy mixed workload — the access pattern of sqldb's MVCC roots —
// and verifies no vacated slice slot still references a deleted value.
func TestDeleteDoesNotRetainValues(t *testing.T) {
	for _, degree := range []int{3, 8, DefaultDegree} {
		tr := NewDegree[int, *[]byte](degree, func(a, b int) bool { return a < b })
		rng := rand.New(rand.NewSource(int64(degree)))
		live := map[int]*[]byte{}
		for i := 0; i < 8000; i++ {
			k := 1 + rng.Intn(900)
			switch rng.Intn(5) {
			case 0, 1, 2:
				v := make([]byte, 16)
				tr.Set(k, &v)
				live[k] = &v
			case 3:
				tr.Delete(k)
				delete(live, k)
			case 4:
				// Shift ownership the way a committed root hands off to the
				// next writer's clone; the old tree is dropped.
				tr = tr.Clone()
			}
		}
		checkNoRetention(t, tr)
		for k, want := range live {
			got, ok := tr.Get(k)
			if !ok || got != want {
				t.Fatalf("degree %d: Get(%d) lost value after workload", degree, k)
			}
		}
		// Drain completely: the delete path's merges and rotations must also
		// leave nothing behind.
		for k := range live {
			tr.Delete(k)
		}
		if tr.Len() != 0 {
			t.Fatalf("degree %d: Len=%d after drain", degree, tr.Len())
		}
		checkNoRetention(t, tr)
	}
}

// TestMutableCopySizedByOccupancy asserts the copy-on-write node copy
// allocates by occupancy rather than inheriting the source capacity, so a
// once-full node that shrank doesn't stay expensive to copy forever.
func TestMutableCopySizedByOccupancy(t *testing.T) {
	tr := New[int, int](func(a, b int) bool { return a < b })
	for i := 0; i < 200; i++ {
		tr.Set(i, i)
	}
	for i := 0; i < 200; i += 2 {
		tr.Delete(i)
	}
	clone := tr.Clone()
	clone.Set(1, -1) // force a path copy in the clone
	var walk func(n *node[int, int])
	walk = func(n *node[int, int]) {
		// Only items arrays this clone allocated itself: interior copies
		// share the source generation's arrays until a separator changes.
		if n.itemsCow == clone.cow {
			if cap(n.items) > len(n.items)+4 && cap(n.items) > clone.maxItems {
				t.Fatalf("copied node cap %d for len %d exceeds occupancy sizing",
					cap(n.items), len(n.items))
			}
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(clone.root)
}
