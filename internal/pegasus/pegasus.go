// Package pegasus implements a workflow planner in the style of Pegasus
// (Planning for Execution in Grids), the system the paper describes as the
// primary MCS consumer: Pegasus receives an abstract workflow, queries the
// MCS to discover already-materialized data products (pruning the jobs that
// would recreate them), maps the remaining jobs onto sites, inserts
// stage-in transfers for inputs located through the RLS, and registers
// newly created products back into the MCS and RLS.
package pegasus

import (
	"errors"
	"fmt"
	"sort"

	"mcs/internal/core"
)

// Errors returned by planning and execution.
var (
	ErrCyclicWorkflow = errors.New("pegasus: abstract workflow has a cycle")
	ErrUnboundInput   = errors.New("pegasus: input has no producer and no replica")
	ErrNoTransform    = errors.New("pegasus: no implementation registered for transformation")
)

// MetadataCatalog is the slice of the MCS API the planner needs. Both the
// dn-bound core catalog adapter and the SOAP client satisfy it.
type MetadataCatalog interface {
	// RunQuery returns logical names matching the predicates.
	RunQuery(q core.Query) ([]string, error)
	// CreateFile registers a new data product.
	CreateFile(spec core.FileSpec) (core.File, error)
}

// ReplicaCatalog is the slice of the RLS API the planner needs.
type ReplicaCatalog interface {
	// Lookup returns physical locations of a logical file.
	Lookup(lfn string) []string
	// Add registers a new physical replica.
	Add(lfn, pfn string)
}

// CatalogAdapter binds a core.Catalog to a DN so it satisfies
// MetadataCatalog.
type CatalogAdapter struct {
	Catalog *core.Catalog
	DN      string
}

// RunQuery implements MetadataCatalog.
func (a CatalogAdapter) RunQuery(q core.Query) ([]string, error) {
	return a.Catalog.RunQuery(a.DN, q)
}

// CreateFile implements MetadataCatalog.
func (a CatalogAdapter) CreateFile(spec core.FileSpec) (core.File, error) {
	return a.Catalog.CreateFile(a.DN, spec)
}

// Job is one transformation in an abstract workflow.
type Job struct {
	ID         string
	Executable string
	Args       []string
	Inputs     []string // logical file names consumed
	Outputs    []string // logical file names produced
	// OutputMeta carries the user-defined attributes to attach to each
	// output when it is registered (keyed by logical name).
	OutputMeta map[string][]core.Attribute
}

// Workflow is an abstract (resource-independent) workflow.
type Workflow struct {
	Name string
	Jobs []Job
}

// JobType classifies concrete-plan nodes.
type JobType string

// Concrete job types.
const (
	JobCompute  JobType = "compute"
	JobStageIn  JobType = "stage-in"
	JobRegister JobType = "register"
)

// ConcreteJob is one node of the executable plan.
type ConcreteJob struct {
	ID   string
	Type JobType
	// Compute fields.
	Abstract *Job
	Site     string
	// Stage-in fields: copy SourcePFN to the site as logical name LFN.
	LFN       string
	SourcePFN string
	// DependsOn lists concrete job IDs that must finish first.
	DependsOn []string
}

// Plan is the concrete, executable workflow.
type Plan struct {
	Workflow string
	Site     string
	Jobs     []ConcreteJob
	// Pruned lists abstract jobs skipped because every output already
	// existed in the MCS (data reuse).
	Pruned []string
	// Reused lists the logical files satisfied from existing products.
	Reused []string
}

// Planner maps abstract workflows to concrete plans.
type Planner struct {
	Metadata MetadataCatalog
	Replicas ReplicaCatalog
	// Site is the execution site jobs are mapped to.
	Site string
	// PFNPrefix forms physical names for new products,
	// e.g. "gsiftp://host:port/". Defaults to "site://<Site>/".
	PFNPrefix string
}

// topoOrder sorts jobs so producers precede consumers.
func topoOrder(jobs []Job) ([]int, error) {
	producer := map[string]int{}
	for i, j := range jobs {
		for _, out := range j.Outputs {
			producer[out] = i
		}
	}
	adj := make([][]int, len(jobs))
	indeg := make([]int, len(jobs))
	for i, j := range jobs {
		for _, in := range j.Inputs {
			if p, ok := producer[in]; ok && p != i {
				adj[p] = append(adj[p], i)
				indeg[i]++
			}
		}
	}
	var queue []int
	for i := range jobs {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	sort.Ints(queue)
	var order []int
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, m := range adj[n] {
			indeg[m]--
			if indeg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	if len(order) != len(jobs) {
		return nil, ErrCyclicWorkflow
	}
	return order, nil
}

// exists reports whether the MCS already has a valid file with this name.
func (p *Planner) exists(lfn string) (bool, error) {
	names, err := p.Metadata.RunQuery(core.Query{Predicates: []core.Predicate{
		{Attribute: "name", Op: core.OpEq, Value: core.String(lfn)},
		{Attribute: "valid", Op: core.OpEq, Value: core.Int(1)},
	}, Limit: 1})
	if err != nil {
		return false, err
	}
	return len(names) > 0, nil
}

// Plan compiles an abstract workflow into a concrete plan:
//
//  1. Jobs whose outputs all exist in the MCS (and are locatable via the
//     RLS) are pruned — the paper's data-reuse behaviour.
//  2. Inputs not produced by an upstream kept job become stage-in jobs
//     using a replica location from the RLS.
//  3. Each kept compute job gets a register job that publishes its outputs.
func (p *Planner) Plan(wf Workflow) (*Plan, error) {
	order, err := topoOrder(wf.Jobs)
	if err != nil {
		return nil, err
	}
	site := p.Site
	if site == "" {
		site = "local"
	}
	plan := &Plan{Workflow: wf.Name, Site: site}

	producedBy := map[string]int{} // lfn -> abstract index of kept producer
	computeID := map[int]string{}  // abstract index -> concrete compute id
	staged := map[string]string{}  // lfn -> stage-in job id
	reusedSet := map[string]bool{}

	for _, idx := range order {
		job := &wf.Jobs[idx]
		// Data reuse: prune when every output already exists.
		allExist := len(job.Outputs) > 0
		for _, out := range job.Outputs {
			ok, err := p.exists(out)
			if err != nil {
				return nil, err
			}
			if !ok {
				allExist = false
				break
			}
		}
		if allExist {
			plan.Pruned = append(plan.Pruned, job.ID)
			for _, out := range job.Outputs {
				reusedSet[out] = true
			}
			continue
		}
		cid := "compute-" + job.ID
		computeID[idx] = cid
		var deps []string
		for _, in := range job.Inputs {
			if prodIdx, ok := producedBy[in]; ok {
				deps = append(deps, computeID[prodIdx])
				continue
			}
			if sid, ok := staged[in]; ok {
				deps = append(deps, sid)
				continue
			}
			// Locate an existing replica via the RLS.
			pfns := p.Replicas.Lookup(in)
			if len(pfns) == 0 {
				return nil, fmt.Errorf("%w: %q for job %q", ErrUnboundInput, in, job.ID)
			}
			sid := "stagein-" + in
			plan.Jobs = append(plan.Jobs, ConcreteJob{
				ID: sid, Type: JobStageIn, LFN: in, SourcePFN: pfns[0], Site: site,
			})
			staged[in] = sid
			deps = append(deps, sid)
			reusedSet[in] = true
		}
		plan.Jobs = append(plan.Jobs, ConcreteJob{
			ID: cid, Type: JobCompute, Abstract: job, Site: site, DependsOn: deps,
		})
		for _, out := range job.Outputs {
			producedBy[out] = idx
		}
		plan.Jobs = append(plan.Jobs, ConcreteJob{
			ID: "register-" + job.ID, Type: JobRegister, Abstract: job,
			Site: site, DependsOn: []string{cid},
		})
	}
	for lfn := range reusedSet {
		plan.Reused = append(plan.Reused, lfn)
	}
	sort.Strings(plan.Reused)
	return plan, nil
}

// TransformFunc materializes a transformation: inputs are the staged file
// contents keyed by logical name; it returns the produced contents keyed by
// logical name.
type TransformFunc func(args []string, inputs map[string][]byte) (map[string][]byte, error)

// Executor runs a concrete plan at one site.
type Executor struct {
	Metadata MetadataCatalog
	Replicas ReplicaCatalog
	// Transforms maps executable names to implementations.
	Transforms map[string]TransformFunc
	// ReadLocal returns the content of a logical file already at the site.
	ReadLocal func(lfn string) ([]byte, bool)
	// WriteLocal stores content at the site under a logical name.
	WriteLocal func(lfn string, data []byte)
	// Fetch resolves a remote physical name during stage-in.
	Fetch func(pfn string) ([]byte, error)
	// PFNPrefix forms the physical names of registered outputs.
	PFNPrefix string
	// DataType is stamped on registered products (default "binary").
	DataType string
}

// Result summarizes one plan execution.
type Result struct {
	ComputeRan int
	StagedIn   int
	Registered int
}

// Execute runs the plan's jobs in dependency order.
func (e *Executor) Execute(plan *Plan) (Result, error) {
	var res Result
	done := map[string]bool{}
	byID := map[string]*ConcreteJob{}
	for i := range plan.Jobs {
		byID[plan.Jobs[i].ID] = &plan.Jobs[i]
	}
	var run func(id string) error
	run = func(id string) error {
		if done[id] {
			return nil
		}
		job, ok := byID[id]
		if !ok {
			return fmt.Errorf("pegasus: missing plan job %q", id)
		}
		for _, dep := range job.DependsOn {
			if err := run(dep); err != nil {
				return err
			}
		}
		switch job.Type {
		case JobStageIn:
			data, err := e.Fetch(job.SourcePFN)
			if err != nil {
				return fmt.Errorf("pegasus: stage-in %q from %q: %w", job.LFN, job.SourcePFN, err)
			}
			e.WriteLocal(job.LFN, data)
			res.StagedIn++
		case JobCompute:
			fn, ok := e.Transforms[job.Abstract.Executable]
			if !ok {
				return fmt.Errorf("%w: %q", ErrNoTransform, job.Abstract.Executable)
			}
			inputs := make(map[string][]byte, len(job.Abstract.Inputs))
			for _, in := range job.Abstract.Inputs {
				data, ok := e.ReadLocal(in)
				if !ok {
					return fmt.Errorf("pegasus: input %q not present at site for job %q", in, job.ID)
				}
				inputs[in] = data
			}
			outputs, err := fn(job.Abstract.Args, inputs)
			if err != nil {
				return fmt.Errorf("pegasus: job %q failed: %w", job.ID, err)
			}
			for _, out := range job.Abstract.Outputs {
				data, ok := outputs[out]
				if !ok {
					return fmt.Errorf("pegasus: job %q did not produce declared output %q", job.ID, out)
				}
				e.WriteLocal(out, data)
			}
			res.ComputeRan++
		case JobRegister:
			for _, out := range job.Abstract.Outputs {
				spec := core.FileSpec{
					Name:       out,
					DataType:   e.dataType(),
					Attributes: job.Abstract.OutputMeta[out],
					Provenance: fmt.Sprintf("produced by %s(%s)", job.Abstract.Executable, job.Abstract.ID),
				}
				if _, err := e.Metadata.CreateFile(spec); err != nil {
					return fmt.Errorf("pegasus: register %q: %w", out, err)
				}
				e.Replicas.Add(out, e.PFNPrefix+out)
				res.Registered++
			}
		}
		done[id] = true
		return nil
	}
	for i := range plan.Jobs {
		if err := run(plan.Jobs[i].ID); err != nil {
			return res, err
		}
	}
	return res, nil
}

func (e *Executor) dataType() string {
	if e.DataType == "" {
		return "binary"
	}
	return e.DataType
}
