package pegasus

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"mcs/internal/core"
	"mcs/internal/rls"
)

const dn = "/O=LIGO/CN=planner"

// testRig wires a catalog, an LRC and a local in-memory site store.
type testRig struct {
	cat   *core.Catalog
	lrc   *rls.LRC
	local map[string][]byte
	// remote physical storage keyed by pfn
	remote map[string][]byte
}

func newRig(t *testing.T) *testRig {
	t.Helper()
	cat, err := core.Open(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{
		cat:    cat,
		lrc:    rls.NewLRC("lrc://test"),
		local:  map[string][]byte{},
		remote: map[string][]byte{},
	}
}

func (r *testRig) planner() *Planner {
	return &Planner{
		Metadata: CatalogAdapter{Catalog: r.cat, DN: dn},
		Replicas: r.lrc,
		Site:     "isi-condor",
	}
}

func (r *testRig) executor() *Executor {
	return &Executor{
		Metadata: CatalogAdapter{Catalog: r.cat, DN: dn},
		Replicas: r.lrc,
		Transforms: map[string]TransformFunc{
			"concat": func(args []string, inputs map[string][]byte) (map[string][]byte, error) {
				var sb strings.Builder
				for _, name := range args[1:] {
					sb.Write(inputs[name])
				}
				return map[string][]byte{args[0]: []byte(sb.String())}, nil
			},
			"upper": func(args []string, inputs map[string][]byte) (map[string][]byte, error) {
				out := map[string][]byte{}
				for _, name := range args[1:] {
					out[args[0]] = append(out[args[0]], []byte(strings.ToUpper(string(inputs[name])))...)
				}
				return out, nil
			},
		},
		ReadLocal: func(lfn string) ([]byte, bool) {
			d, ok := r.local[lfn]
			return d, ok
		},
		WriteLocal: func(lfn string, data []byte) { r.local[lfn] = data },
		Fetch: func(pfn string) ([]byte, error) {
			d, ok := r.remote[pfn]
			if !ok {
				return nil, fmt.Errorf("no such pfn %q", pfn)
			}
			return d, nil
		},
		PFNPrefix: "site://isi-condor/",
	}
}

// seed registers a raw input in MCS + RLS + remote storage.
func (r *testRig) seed(t *testing.T, lfn string, data []byte) {
	t.Helper()
	if _, err := r.cat.CreateFile(dn, core.FileSpec{Name: lfn}); err != nil {
		t.Fatal(err)
	}
	pfn := "gsiftp://archive/" + lfn
	r.lrc.Add(lfn, pfn)
	r.remote[pfn] = data
}

func twoStageWorkflow() Workflow {
	return Workflow{
		Name: "pulsar-search",
		Jobs: []Job{
			{
				ID: "j2", Executable: "upper",
				Args:    []string{"final.out", "merged.dat"},
				Inputs:  []string{"merged.dat"},
				Outputs: []string{"final.out"},
			},
			{
				ID: "j1", Executable: "concat",
				Args:    []string{"merged.dat", "raw1.gwf", "raw2.gwf"},
				Inputs:  []string{"raw1.gwf", "raw2.gwf"},
				Outputs: []string{"merged.dat"},
			},
		},
	}
}

func TestPlanTopologyAndStageIns(t *testing.T) {
	r := newRig(t)
	r.seed(t, "raw1.gwf", []byte("ab"))
	r.seed(t, "raw2.gwf", []byte("cd"))
	plan, err := r.planner().Plan(twoStageWorkflow())
	if err != nil {
		t.Fatal(err)
	}
	// Expect 2 stage-ins + 2 computes + 2 registers.
	counts := map[JobType]int{}
	for _, j := range plan.Jobs {
		counts[j.Type]++
	}
	if counts[JobStageIn] != 2 || counts[JobCompute] != 2 || counts[JobRegister] != 2 {
		t.Fatalf("plan shape = %v", counts)
	}
	// j2's compute must depend on j1's compute (producer ordering).
	var j2 *ConcreteJob
	for i := range plan.Jobs {
		if plan.Jobs[i].ID == "compute-j2" {
			j2 = &plan.Jobs[i]
		}
	}
	if j2 == nil {
		t.Fatal("compute-j2 missing")
	}
	found := false
	for _, d := range j2.DependsOn {
		if d == "compute-j1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("compute-j2 deps = %v", j2.DependsOn)
	}
}

func TestExecuteEndToEnd(t *testing.T) {
	r := newRig(t)
	r.seed(t, "raw1.gwf", []byte("ab"))
	r.seed(t, "raw2.gwf", []byte("cd"))
	plan, err := r.planner().Plan(twoStageWorkflow())
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.executor().Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.ComputeRan != 2 || res.StagedIn != 2 || res.Registered != 2 {
		t.Fatalf("result = %+v", res)
	}
	if string(r.local["final.out"]) != "ABCD" {
		t.Fatalf("final.out = %q", r.local["final.out"])
	}
	// Outputs registered in MCS with provenance, and in the RLS.
	f, err := r.cat.GetFile(dn, "final.out", 0)
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := r.cat.Provenance(dn, "final.out", 0)
	if len(recs) != 1 || !strings.Contains(recs[0].Description, "upper(j2)") {
		t.Fatalf("provenance = %v", recs)
	}
	if pfns := r.lrc.Lookup("final.out"); len(pfns) != 1 || !strings.HasPrefix(pfns[0], "site://isi-condor/") {
		t.Fatalf("replica = %v", pfns)
	}
	_ = f
}

func TestDataReusePrunesJobs(t *testing.T) {
	r := newRig(t)
	r.seed(t, "raw1.gwf", []byte("ab"))
	r.seed(t, "raw2.gwf", []byte("cd"))
	// First run materializes everything.
	plan1, _ := r.planner().Plan(twoStageWorkflow())
	if _, err := r.executor().Execute(plan1); err != nil {
		t.Fatal(err)
	}
	// Second plan: all outputs exist, every job pruned.
	plan2, err := r.planner().Plan(twoStageWorkflow())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan2.Pruned) != 2 {
		t.Fatalf("pruned = %v", plan2.Pruned)
	}
	if len(plan2.Jobs) != 0 {
		t.Fatalf("plan2 still has %d jobs", len(plan2.Jobs))
	}
}

func TestPartialReuse(t *testing.T) {
	r := newRig(t)
	r.seed(t, "raw1.gwf", []byte("ab"))
	r.seed(t, "raw2.gwf", []byte("cd"))
	// Pre-materialize only the intermediate product.
	if _, err := r.cat.CreateFile(dn, core.FileSpec{Name: "merged.dat"}); err != nil {
		t.Fatal(err)
	}
	r.lrc.Add("merged.dat", "gsiftp://archive/merged.dat")
	r.remote["gsiftp://archive/merged.dat"] = []byte("abcd")
	plan, err := r.planner().Plan(twoStageWorkflow())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Pruned) != 1 || plan.Pruned[0] != "j1" {
		t.Fatalf("pruned = %v", plan.Pruned)
	}
	// j2 still runs, staging the reused intermediate from its replica.
	res, err := r.executor().Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.ComputeRan != 1 || res.StagedIn != 1 {
		t.Fatalf("result = %+v", res)
	}
	if string(r.local["final.out"]) != "ABCD" {
		t.Fatalf("final.out = %q", r.local["final.out"])
	}
}

func TestInvalidatedProductNotReused(t *testing.T) {
	r := newRig(t)
	r.seed(t, "raw1.gwf", []byte("ab"))
	r.seed(t, "raw2.gwf", []byte("cd"))
	plan1, _ := r.planner().Plan(twoStageWorkflow())
	r.executor().Execute(plan1) //nolint:errcheck
	// Invalidate the final product; replanning must re-run j2 (not j1).
	if err := r.cat.InvalidateFile(dn, "final.out", 0); err != nil {
		t.Fatal(err)
	}
	plan2, err := r.planner().Plan(twoStageWorkflow())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan2.Pruned) != 1 || plan2.Pruned[0] != "j1" {
		t.Fatalf("pruned = %v", plan2.Pruned)
	}
}

func TestUnboundInputFails(t *testing.T) {
	r := newRig(t)
	// raw inputs never seeded.
	_, err := r.planner().Plan(twoStageWorkflow())
	if !errors.Is(err, ErrUnboundInput) {
		t.Fatalf("err = %v", err)
	}
}

func TestCyclicWorkflowRejected(t *testing.T) {
	r := newRig(t)
	wf := Workflow{Jobs: []Job{
		{ID: "a", Executable: "concat", Inputs: []string{"y"}, Outputs: []string{"x"}},
		{ID: "b", Executable: "concat", Inputs: []string{"x"}, Outputs: []string{"y"}},
	}}
	if _, err := r.planner().Plan(wf); !errors.Is(err, ErrCyclicWorkflow) {
		t.Fatalf("err = %v", err)
	}
}

func TestMissingTransformFails(t *testing.T) {
	r := newRig(t)
	r.seed(t, "in", []byte("x"))
	wf := Workflow{Jobs: []Job{{
		ID: "j", Executable: "nosuch", Inputs: []string{"in"}, Outputs: []string{"out"},
	}}}
	plan, err := r.planner().Plan(wf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.executor().Execute(plan); !errors.Is(err, ErrNoTransform) {
		t.Fatalf("err = %v", err)
	}
}

func TestOutputMetadataRegistered(t *testing.T) {
	r := newRig(t)
	if _, err := r.cat.DefineAttribute(dn, "band", core.AttrString, ""); err != nil {
		t.Fatal(err)
	}
	r.seed(t, "in", []byte("x"))
	wf := Workflow{Jobs: []Job{{
		ID: "j", Executable: "upper",
		Args: []string{"out", "in"}, Inputs: []string{"in"}, Outputs: []string{"out"},
		OutputMeta: map[string][]core.Attribute{
			"out": {{Name: "band", Value: core.String("high")}},
		},
	}}}
	plan, _ := r.planner().Plan(wf)
	if _, err := r.executor().Execute(plan); err != nil {
		t.Fatal(err)
	}
	names, err := r.cat.RunQuery(dn, core.Query{Predicates: []core.Predicate{
		{Attribute: "band", Op: core.OpEq, Value: core.String("high")},
	}})
	if err != nil || len(names) != 1 || names[0] != "out" {
		t.Fatalf("metadata query = %v, %v", names, err)
	}
}
