// Package bench reproduces the paper's scalability study (section 7).
//
// Workload, exactly as described: logical collections of 1000 files; every
// file carries 10 user-defined attributes of mixed types (string, float,
// integer, date, datetime) and every collection carries 10 attributes;
// indexes on names, ids and (name,id) pairs. The measured operations are
//
//   - add: create a logical file with its ten attributes, followed by a
//     delete of the same file so the database size stays constant;
//   - simple query: a value match on a single static attribute of a
//     logical file;
//   - complex query: value matches on all ten user-defined attributes.
//
// Each operation runs against two targets: Direct (straight into the
// catalog engine, the paper's "MySQL without web service" baseline, which
// still pays the cost of converting requests to SQL) and SOAP (through the
// web-service stack, the paper's "MCS" series).
package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mcs/internal/core"
	"mcs/internal/obs"
)

// LoaderDN is the identity used to populate and exercise the catalog.
const LoaderDN = "/O=Grid/OU=Bench/CN=loader"

// valueGroups is the cardinality of each attribute's value space: every
// (attribute, value) pair matches Files/valueGroups files, so complex-query
// cost scales with database size — the effect Figures 7, 10 and 11 show.
const valueGroups = 50

// Config describes one benchmark database.
type Config struct {
	// Files is the number of logical files to load.
	Files int
	// FilesPerCollection matches the paper's 1000.
	FilesPerCollection int
	// AttrsPerFile matches the paper's 10.
	AttrsPerFile int
}

// DefaultConfig returns the paper's workload shape at the given size.
func DefaultConfig(files int) Config {
	return Config{Files: files, FilesPerCollection: 1000, AttrsPerFile: 10}
}

// attrName returns the j-th user-defined attribute's name.
func attrName(j int) string { return fmt.Sprintf("bench_attr_%02d", j) }

// attrType cycles the value types across the ten attributes.
func attrType(j int) core.AttrType {
	switch j % 5 {
	case 0, 1:
		return core.AttrString
	case 2:
		return core.AttrFloat
	case 3:
		return core.AttrInt
	default:
		return core.AttrDateTime
	}
}

// benchEpoch anchors the datetime attribute values.
var benchEpoch = time.Date(2003, 11, 15, 0, 0, 0, 0, time.UTC)

// attrValue computes attribute j's value for value-group g.
func attrValue(j, g int) core.AttrValue {
	switch attrType(j) {
	case core.AttrString:
		return core.String(fmt.Sprintf("s%02d-%04d", j, g))
	case core.AttrFloat:
		return core.Float(float64(j)*1000 + float64(g) + 0.5)
	case core.AttrInt:
		return core.Int(int64(j)*100000 + int64(g))
	default:
		return core.DateTime(benchEpoch.Add(time.Duration(g) * time.Minute))
	}
}

// FileName returns the logical name of the i-th loaded file.
func FileName(i int) string { return fmt.Sprintf("bench-file-%08d", i) }

// FileAttributes returns the ten attribute bindings of the i-th file.
// All ten attributes share the file's value group (i mod valueGroups), so a
// conjunction over k of them matches exactly Files/valueGroups files.
func FileAttributes(i, attrsPerFile int) []core.Attribute {
	g := i % valueGroups
	attrs := make([]core.Attribute, attrsPerFile)
	for j := 0; j < attrsPerFile; j++ {
		attrs[j] = core.Attribute{Name: attrName(j), Value: attrValue(j, g)}
	}
	return attrs
}

// Predicates returns k equality predicates matching value-group g — the
// complex-query workload (k = 10) and the Fig. 11 attribute sweep (k = 1..10).
func Predicates(k, g int) []core.Predicate {
	preds := make([]core.Predicate, k)
	for j := 0; j < k; j++ {
		preds[j] = core.Predicate{Attribute: attrName(j), Op: core.OpEq, Value: attrValue(j, g)}
	}
	return preds
}

// Load populates a fresh catalog per the paper's setup and returns it.
func Load(cfg Config) (*core.Catalog, error) {
	cat, err := core.Open(core.Options{})
	if err != nil {
		return nil, err
	}
	if err := LoadInto(cat, cfg); err != nil {
		return nil, err
	}
	return cat, nil
}

// LoadInto populates an existing catalog with the benchmark dataset.
func LoadInto(cat *core.Catalog, cfg Config) error {
	if cfg.FilesPerCollection <= 0 {
		cfg.FilesPerCollection = 1000
	}
	if cfg.AttrsPerFile <= 0 {
		cfg.AttrsPerFile = 10
	}
	for j := 0; j < cfg.AttrsPerFile; j++ {
		if _, err := cat.DefineAttribute(LoaderDN, attrName(j), attrType(j), "bench attribute"); err != nil {
			return err
		}
	}
	nColl := (cfg.Files + cfg.FilesPerCollection - 1) / cfg.FilesPerCollection
	for ci := 0; ci < nColl; ci++ {
		// Ten attributes per collection, as in the paper.
		attrs := FileAttributes(ci, cfg.AttrsPerFile)
		if _, err := cat.CreateCollection(LoaderDN, core.CollectionSpec{
			Name:       fmt.Sprintf("bench-coll-%05d", ci),
			Attributes: attrs,
		}); err != nil {
			return err
		}
	}
	for i := 0; i < cfg.Files; i++ {
		if _, err := cat.CreateFile(LoaderDN, core.FileSpec{
			Name:       FileName(i),
			DataType:   "binary",
			Collection: fmt.Sprintf("bench-coll-%05d", i/cfg.FilesPerCollection),
			Attributes: FileAttributes(i, cfg.AttrsPerFile),
		}); err != nil {
			return err
		}
	}
	return nil
}

// Target abstracts the two access paths (direct catalog vs SOAP client).
type Target interface {
	// AddAndDelete creates a uniquely named file with ten attributes and
	// deletes it again (the paper's add workload).
	AddAndDelete(name string, attrs []core.Attribute) error
	// SimpleQuery matches a single static attribute (the file name).
	SimpleQuery(name string) error
	// AttrQuery matches k user-defined attributes.
	AttrQuery(preds []core.Predicate) error
}

// Direct runs operations straight against the catalog engine.
type Direct struct{ Catalog *core.Catalog }

// AddAndDelete implements Target.
func (d Direct) AddAndDelete(name string, attrs []core.Attribute) error {
	if _, err := d.Catalog.CreateFile(LoaderDN, core.FileSpec{
		Name: name, DataType: "binary", Attributes: attrs,
	}); err != nil {
		return err
	}
	return d.Catalog.DeleteFile(LoaderDN, name, 0)
}

// SimpleQuery implements Target.
func (d Direct) SimpleQuery(name string) error {
	_, err := d.Catalog.RunQuery(LoaderDN, core.Query{Predicates: []core.Predicate{
		{Attribute: "name", Op: core.OpEq, Value: core.String(name)},
	}})
	return err
}

// AttrQuery implements Target.
func (d Direct) AttrQuery(preds []core.Predicate) error {
	_, err := d.Catalog.RunQuery(LoaderDN, core.Query{Predicates: preds})
	return err
}

// SOAPClient is the subset of the mcs.Client API the harness uses; declared
// as an interface to avoid an import cycle with the root package.
type SOAPClient interface {
	CreateFile(spec core.FileSpec) (core.File, error)
	DeleteFile(name string, version int) error
	RunQuery(q core.Query) ([]string, error)
	BatchWrite(ops []core.BatchOp) ([]core.BatchResult, error)
	BatchWriteQuiet(ops []core.BatchOp) (int, error)
}

// SOAP runs operations through the web-service stack.
type SOAP struct{ Client SOAPClient }

// AddAndDelete implements Target.
func (s SOAP) AddAndDelete(name string, attrs []core.Attribute) error {
	if _, err := s.Client.CreateFile(core.FileSpec{
		Name: name, DataType: "binary", Attributes: attrs,
	}); err != nil {
		return err
	}
	return s.Client.DeleteFile(name, 0)
}

// SimpleQuery implements Target.
func (s SOAP) SimpleQuery(name string) error {
	_, err := s.Client.RunQuery(core.Query{Predicates: []core.Predicate{
		{Attribute: "name", Op: core.OpEq, Value: core.String(name)},
	}})
	return err
}

// AttrQuery implements Target.
func (s SOAP) AttrQuery(preds []core.Predicate) error {
	_, err := s.Client.RunQuery(core.Query{Predicates: preds})
	return err
}

// Op selects a workload.
type Op int

// Workloads.
const (
	OpAdd Op = iota
	OpSimpleQuery
	OpComplexQuery
)

// RunRate drives hosts×threads workers against per-host targets for the
// given duration and returns the aggregate operation rate per second.
// attrK is the predicate count for OpComplexQuery (the paper uses 10).
func RunRate(targets []Target, threadsPerHost int, d time.Duration, op Op, cfg Config, attrK int) float64 {
	return RunRateHist(targets, threadsPerHost, d, op, cfg, attrK, nil)
}

// RunRateHist is RunRate with per-operation latency recording: every
// completed operation's wall time is observed into hist (the same
// fixed-bucket histogram the server's /metrics endpoint uses, so client-side
// p50/p95/p99 are directly comparable with server-side numbers). A nil hist
// disables recording.
func RunRateHist(targets []Target, threadsPerHost int, d time.Duration, op Op, cfg Config, attrK int, hist *obs.Histogram) float64 {
	var total atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for h, tgt := range targets {
		for t := 0; t < threadsPerHost; t++ {
			wg.Add(1)
			go func(h, t int, tgt Target) {
				defer wg.Done()
				iter := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					iter++
					var err error
					opStart := time.Now()
					switch op {
					case OpAdd:
						name := fmt.Sprintf("bench-add-h%02d-t%02d-%08d", h, t, iter)
						err = tgt.AddAndDelete(name, FileAttributes(iter, cfg.AttrsPerFile))
					case OpSimpleQuery:
						err = tgt.SimpleQuery(FileName((h*31 + t*17 + iter*7919) % cfg.Files))
					case OpComplexQuery:
						err = tgt.AttrQuery(Predicates(attrK, (h+t+iter)%valueGroups))
					}
					if hist != nil {
						hist.Observe(time.Since(opStart))
					}
					if err != nil {
						// Benchmark operations are designed not to fail;
						// surface problems loudly rather than skewing rates.
						panic(fmt.Sprintf("bench: worker h=%d t=%d: %v", h, t, err))
					}
					total.Add(1)
				}
			}(h, t, tgt)
		}
	}
	start := time.Now()
	time.Sleep(d)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	return float64(total.Load()) / elapsed.Seconds()
}

// MixedPoint is one measurement of the read-path sweep (Fig. 14): Threads
// reader threads running simple queries concurrently with one writer thread
// doing add/delete cycles against the same catalog.
type MixedPoint struct {
	Threads  int     `json:"threads"`
	QueryOps float64 `json:"query_ops_per_sec"`
	WriteOps float64 `json:"write_ops_per_sec"`
}

// RunMixedRate measures the mixed read/write workload directly against the
// catalog engine: one writer thread cycling add/delete plus threads reader
// threads issuing simple queries, all for duration d. Under the MVCC read
// path the queries are wait-free snapshot reads of the last committed root,
// so the aggregate query rate should scale with reader threads instead of
// serializing behind the writer.
func RunMixedRate(cat *core.Catalog, threads int, d time.Duration, cfg Config) MixedPoint {
	var reads, writes atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	tgt := Direct{Catalog: cat}
	wg.Add(1)
	go func() {
		defer wg.Done()
		iter := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			iter++
			name := fmt.Sprintf("bench-mixed-%08d", iter)
			if err := tgt.AddAndDelete(name, FileAttributes(iter, cfg.AttrsPerFile)); err != nil {
				panic(fmt.Sprintf("bench: mixed writer: %v", err))
			}
			writes.Add(1)
		}
	}()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			iter := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				iter++
				if err := tgt.SimpleQuery(FileName((t*17 + iter*7919) % cfg.Files)); err != nil {
					panic(fmt.Sprintf("bench: mixed reader t=%d: %v", t, err))
				}
				reads.Add(1)
			}
		}(t)
	}
	start := time.Now()
	time.Sleep(d)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return MixedPoint{
		Threads:  threads,
		QueryOps: float64(reads.Load()) / elapsed,
		WriteOps: float64(writes.Load()) / elapsed,
	}
}

// ReadPathSweep runs RunMixedRate at each reader thread count.
func ReadPathSweep(cat *core.Catalog, threads []int, d time.Duration, cfg Config) []MixedPoint {
	points := make([]MixedPoint, 0, len(threads))
	for _, t := range threads {
		points = append(points, RunMixedRate(cat, t, d, cfg))
	}
	return points
}

// BatchRegistrationAttrs is the attribute count of the Fig. 12 bulk-
// registration workload: bare logical names, no attributes. Bulk loads
// register names first and attach rich metadata later (the POOL catalog's
// bulk registration works the same way), so the sweep isolates per-call
// transport overhead — the quantity batching amortizes.
const BatchRegistrationAttrs = 0

// RunBatchRate measures bulk-registration throughput (files created per
// second) through the web-service stack at a given batch size, on one
// client thread — the per-call-overhead-bound regime of Fig. 5. Batch size
// 1 is the baseline: one createFile call per file, the only option before
// batchWrite existed. Batches use the quiet form, as a bulk loader would:
// the per-op acks are never read. The catalog grows for the duration of
// the window; callers give each measurement a fresh catalog.
func RunBatchRate(client SOAPClient, batchSize int, d time.Duration, attrsPerFile int) float64 {
	var files int64
	iter := 0
	start := time.Now()
	deadline := start.Add(d)
	for time.Now().Before(deadline) {
		if batchSize <= 1 {
			iter++
			_, err := client.CreateFile(core.FileSpec{
				Name:       fmt.Sprintf("bench-batch-%09d", iter),
				Attributes: FileAttributes(iter, attrsPerFile),
			})
			if err != nil {
				panic(fmt.Sprintf("bench: batch size 1: %v", err))
			}
			files++
			continue
		}
		ops := make([]core.BatchOp, batchSize)
		for k := range ops {
			iter++
			spec := core.FileSpec{
				Name:       fmt.Sprintf("bench-batch-%09d", iter),
				Attributes: FileAttributes(iter, attrsPerFile),
			}
			ops[k] = core.BatchOp{CreateFile: &spec}
		}
		if _, err := client.BatchWriteQuiet(ops); err != nil {
			panic(fmt.Sprintf("bench: batch size %d: %v", batchSize, err))
		}
		files += int64(batchSize)
	}
	return float64(files) / time.Since(start).Seconds()
}
