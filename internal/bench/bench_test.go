package bench_test

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mcs"
	"mcs/internal/bench"
	"mcs/internal/core"
)

func testEnv(t *testing.T) bench.Env {
	t.Helper()
	return bench.Env{
		StartServer: func(cat *core.Catalog) (string, func(), error) {
			srv, err := mcs.NewServer(mcs.ServerOptions{Catalog: cat})
			if err != nil {
				return "", nil, err
			}
			ts := httptest.NewServer(srv)
			return ts.URL, ts.Close, nil
		},
		NewClient: func(url string) bench.SOAPClient {
			return mcs.NewClient(url, bench.LoaderDN)
		},
	}
}

func TestLoadShape(t *testing.T) {
	cfg := bench.Config{Files: 250, FilesPerCollection: 100, AttrsPerFile: 10}
	cat, err := bench.Load(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := cat.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 250 {
		t.Fatalf("files = %d", st.Files)
	}
	if st.Collections != 3 { // ceil(250/100)
		t.Fatalf("collections = %d", st.Collections)
	}
	// 10 attrs per file + 10 per collection.
	if st.Attributes != 250*10+3*10 {
		t.Fatalf("attributes = %d", st.Attributes)
	}
	if st.AttrDefs != 10 {
		t.Fatalf("attr defs = %d", st.AttrDefs)
	}
}

func TestComplexQuerySelectivity(t *testing.T) {
	// With 50 value groups, a full 10-attribute conjunction over N files
	// must match exactly N/50 files.
	cat, err := bench.Load(bench.Config{Files: 500, FilesPerCollection: 100, AttrsPerFile: 10})
	if err != nil {
		t.Fatal(err)
	}
	names, err := cat.RunQuery(bench.LoaderDN, core.Query{Predicates: bench.Predicates(10, 7)})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 10 { // 500/50
		t.Fatalf("complex query matched %d files, want 10", len(names))
	}
	// Fewer predicates match a superset (same groups), not fewer files.
	names1, err := cat.RunQuery(bench.LoaderDN, core.Query{Predicates: bench.Predicates(1, 7)})
	if err != nil {
		t.Fatal(err)
	}
	if len(names1) != 10 {
		t.Fatalf("1-attr query matched %d files, want 10", len(names1))
	}
}

func TestDirectTargetOps(t *testing.T) {
	cat, err := bench.Load(bench.Config{Files: 100, FilesPerCollection: 100, AttrsPerFile: 10})
	if err != nil {
		t.Fatal(err)
	}
	d := bench.Direct{Catalog: cat}
	if err := d.AddAndDelete("tmp-file", bench.FileAttributes(3, 10)); err != nil {
		t.Fatal(err)
	}
	st, _ := cat.Stats()
	if st.Files != 100 {
		t.Fatalf("add/delete changed size: %d", st.Files)
	}
	if err := d.SimpleQuery(bench.FileName(5)); err != nil {
		t.Fatal(err)
	}
	if err := d.AttrQuery(bench.Predicates(10, 0)); err != nil {
		t.Fatal(err)
	}
}

func TestSOAPTargetOps(t *testing.T) {
	cat, err := bench.Load(bench.Config{Files: 100, FilesPerCollection: 100, AttrsPerFile: 10})
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(t)
	url, stop, err := env.StartServer(cat)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	s := bench.SOAP{Client: env.NewClient(url)}
	if err := s.AddAndDelete("tmp-soap", bench.FileAttributes(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.SimpleQuery(bench.FileName(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.AttrQuery(bench.Predicates(5, 3)); err != nil {
		t.Fatal(err)
	}
}

func TestRunRateCounts(t *testing.T) {
	cat, err := bench.Load(bench.Config{Files: 200, FilesPerCollection: 100, AttrsPerFile: 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := bench.DefaultConfig(200)
	rate := bench.RunRate([]bench.Target{bench.Direct{Catalog: cat}}, 2,
		100*time.Millisecond, bench.OpSimpleQuery, cfg, 10)
	if rate <= 0 {
		t.Fatalf("rate = %f", rate)
	}
}

func TestRunMixedRateCounts(t *testing.T) {
	cat, err := bench.Load(bench.Config{Files: 200, FilesPerCollection: 100, AttrsPerFile: 10})
	if err != nil {
		t.Fatal(err)
	}
	points := bench.ReadPathSweep(cat, []int{1, 2}, 100*time.Millisecond, bench.DefaultConfig(200))
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.QueryOps <= 0 {
			t.Fatalf("threads=%d: query rate %f", p.Threads, p.QueryOps)
		}
		if p.WriteOps <= 0 {
			t.Fatalf("threads=%d: write rate %f (writer starved)", p.Threads, p.WriteOps)
		}
	}
}

func TestFigureSmoke(t *testing.T) {
	// A miniature end-to-end run of each figure to prove the harness works.
	opt := bench.FigureOptions{
		Sizes:          []int{200},
		Threads:        []int{1, 2},
		Hosts:          []int{1, 2},
		ThreadsPerHost: 1,
		Duration:       50 * time.Millisecond,
		AttrSweep:      []int{1, 3},
		BatchSizes:     []int{1, 2},
		Env:            testEnv(t),
	}
	for _, fig := range []int{5, 6, 7, 8, 9, 10, 11, 12, 14} {
		series, err := bench.Figure(fig, opt)
		if err != nil {
			t.Fatalf("figure %d: %v", fig, err)
		}
		if len(series) == 0 {
			t.Fatalf("figure %d produced no series", fig)
		}
		for _, s := range series {
			for _, p := range s.Points {
				if p.Y <= 0 {
					t.Fatalf("figure %d series %q has nonpositive rate at x=%d", fig, s.Label, p.X)
				}
			}
		}
		text := bench.Render(fig, series)
		if !strings.Contains(text, "Fig.") {
			t.Fatalf("render missing title: %s", text)
		}
	}
}

func TestFigureUnknown(t *testing.T) {
	if _, err := bench.Figure(13, bench.FigureOptions{Env: testEnv(t)}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}
