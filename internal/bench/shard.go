package bench

import (
	"fmt"
	"hash/fnv"

	"mcs/internal/core"
)

// ShardPoint is one measurement of the sharding sweep (Fig. 18): the
// aggregate operation rate through the scatter-gather router at a given
// shard count.
type ShardPoint struct {
	Shards    int     `json:"shards"`
	Op        string  `json:"op"`
	Threads   int     `json:"threads"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// ShardOf assigns a workload name to one of n shards by hash. The loader
// and the workload wrapper share this function, so a prefixed name always
// lands on the shard that holds (or will hold) it.
func ShardOf(name string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(n))
}

// ShardPrefix is shard i's routing prefix in the sweep's shard map.
func ShardPrefix(i int) string { return fmt.Sprintf("s%d-", i) }

// LoadShardInto populates cat with shard's slice of the n-shard benchmark
// dataset: the files whose unprefixed names hash to shard, created under
// the shard's routing prefix. Attribute definitions are replicated on every
// shard (the router broadcasts defineAttribute the same way), and each file
// keeps its global value group, so complex-query selectivity matches the
// unsharded dataset.
func LoadShardInto(cat *core.Catalog, cfg Config, shard, n int) error {
	if cfg.FilesPerCollection <= 0 {
		cfg.FilesPerCollection = 1000
	}
	if cfg.AttrsPerFile <= 0 {
		cfg.AttrsPerFile = 10
	}
	for j := 0; j < cfg.AttrsPerFile; j++ {
		if _, err := cat.DefineAttribute(LoaderDN, attrName(j), attrType(j), "bench attribute"); err != nil {
			return err
		}
	}
	nColl := (cfg.Files + cfg.FilesPerCollection - 1) / cfg.FilesPerCollection
	for ci := 0; ci < nColl; ci++ {
		if _, err := cat.CreateCollection(LoaderDN, core.CollectionSpec{
			Name:       fmt.Sprintf("%sbench-coll-%05d", ShardPrefix(shard), ci),
			Attributes: FileAttributes(ci, cfg.AttrsPerFile),
		}); err != nil {
			return err
		}
	}
	for i := 0; i < cfg.Files; i++ {
		name := FileName(i)
		if ShardOf(name, n) != shard {
			continue
		}
		if _, err := cat.CreateFile(LoaderDN, core.FileSpec{
			Name:       ShardPrefix(shard) + name,
			DataType:   "binary",
			Collection: fmt.Sprintf("%sbench-coll-%05d", ShardPrefix(shard), i/cfg.FilesPerCollection),
			Attributes: FileAttributes(i, cfg.AttrsPerFile),
		}); err != nil {
			return err
		}
	}
	return nil
}

// ShardTarget adapts a router-facing Target to the sharded namespace: adds
// and simple queries get the owning shard's prefix (so writes forward to
// exactly one shard and spread across all of them), while complex attribute
// queries pass through unprefixed and scatter to every shard the router
// cannot screen out.
type ShardTarget struct {
	Inner Target
	N     int
}

// AddAndDelete implements Target.
func (s ShardTarget) AddAndDelete(name string, attrs []core.Attribute) error {
	return s.Inner.AddAndDelete(ShardPrefix(ShardOf(name, s.N))+name, attrs)
}

// SimpleQuery implements Target.
func (s ShardTarget) SimpleQuery(name string) error {
	return s.Inner.SimpleQuery(ShardPrefix(ShardOf(name, s.N)) + name)
}

// AttrQuery implements Target.
func (s ShardTarget) AttrQuery(preds []core.Predicate) error {
	return s.Inner.AttrQuery(preds)
}

// ShardSweep measures Fig. 18: aggregate add, simple-query and
// complex-query (scatter) rates through the router over the shard-count
// axis, on the smallest configured database. Each shard count gets a fresh
// deployment holding the same global dataset partitioned by name hash, so
// rates across shard counts compare identical logical workloads.
func ShardSweep(opt FigureOptions, shardCounts []int, threads int) ([]ShardPoint, error) {
	opt = opt.Defaults()
	if opt.Env.StartShardedRouter == nil {
		return nil, fmt.Errorf("bench: figure 18 requires Env.StartShardedRouter")
	}
	if opt.Env.NewJSONClient == nil {
		return nil, fmt.Errorf("bench: figure 18 requires Env.NewJSONClient")
	}
	if threads <= 0 {
		threads = 4
	}
	size := opt.Sizes[0]
	for _, s := range opt.Sizes[1:] {
		if s < size {
			size = s
		}
	}
	cfg := DefaultConfig(size)
	ops := []struct {
		name string
		op   Op
	}{
		{"add", OpAdd},
		{"query", OpSimpleQuery},
		{"scatter", OpComplexQuery},
	}
	var out []ShardPoint
	for _, n := range shardCounts {
		if n <= 0 {
			return nil, fmt.Errorf("bench: bad shard count %d", n)
		}
		cats := make([]*core.Catalog, n)
		for i := range cats {
			cat, err := core.Open(core.Options{})
			if err != nil {
				return nil, err
			}
			if err := LoadShardInto(cat, cfg, i, n); err != nil {
				return nil, err
			}
			cats[i] = cat
		}
		url, stop, err := opt.Env.StartShardedRouter(cats)
		if err != nil {
			return nil, err
		}
		target := ShardTarget{Inner: SOAP{Client: opt.Env.NewJSONClient(url)}, N: n}
		for _, o := range ops {
			out = append(out, ShardPoint{
				Shards: n, Op: o.name, Threads: threads,
				OpsPerSec: RunRate([]Target{target}, threads, opt.Duration, o.op, cfg, opt.AttrK),
			})
		}
		stop()
	}
	return out, nil
}

// ShardPointSeries renders the sharding sweep as figure series, one line
// per operation over the shard-count axis.
func ShardPointSeries(size int, points []ShardPoint) []Series {
	var out []Series
	idx := map[string]int{}
	for _, p := range points {
		i, ok := idx[p.Op]
		if !ok {
			i = len(out)
			idx[p.Op] = i
			out = append(out, Series{Label: sizeLabel(size) + " database, " + p.Op + " via router"})
		}
		out[i].Points = append(out[i].Points, Point{X: p.Shards, Y: p.OpsPerSec})
	}
	return out
}
