package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcs/internal/core"
	"mcs/internal/obs"
	"mcs/internal/sqldb"
)

// Env supplies the web-service plumbing without importing the root package
// (the mcs package provides both functions; see cmd/mcsbench).
type Env struct {
	// StartServer serves cat over SOAP/HTTP, returning the base URL and a
	// shutdown function.
	StartServer func(cat *core.Catalog) (url string, stop func(), err error)
	// NewClient returns an independent SOAP client ("client host") for url.
	NewClient func(url string) SOAPClient
	// StartDegradedServer serves cat with deterministic fault injection
	// enabled (periodic dispatch errors and dropped replies); used by the
	// Fig. 13 degraded-mode comparison. Optional — only Figure 13 needs it.
	StartDegradedServer func(cat *core.Catalog) (url string, stop func(), err error)
	// NewRetryClient returns a client with retries, backoff and idempotency
	// keys enabled, matching the degraded server. Optional — Figure 13 only.
	NewRetryClient func(url string) SOAPClient
	// NewJSONClient returns a client speaking the compact JSON wire
	// (/api/v1/) against the same server NewClient's SOAP client talks to.
	// Optional — only the Fig. 16 wire comparison and the Fig. 18 sharding
	// sweep need it.
	NewJSONClient func(url string) SOAPClient
	// StartShardedRouter serves each catalog as its own shard — shard i
	// owning the ShardPrefix(i) namespace, shard 0 doubling as the
	// catch-all — behind a scatter-gather router, and returns the router's
	// base URL. Optional — only the Fig. 18 sharding sweep needs it.
	StartShardedRouter func(cats []*core.Catalog) (url string, stop func(), err error)
}

// Point is one measurement: X is the swept parameter, Y the rate (ops/s).
// Hist carries the per-operation latency distribution of the measurement
// window when FigureOptions.Latency is set (nil otherwise).
type Point struct {
	X    int
	Y    float64
	Hist *obs.Histogram
}

// Series is one line of a figure.
type Series struct {
	Label  string
	Points []Point
}

// FigureOptions parameterizes figure regeneration. The paper's full-scale
// settings (sizes 100k/1M/5M, threads to 16, hosts to 10) reproduce at
// laptop scale with smaller sizes; the shapes are preserved.
type FigureOptions struct {
	// Sizes are the database sizes (number of logical files).
	Sizes []int
	// Threads is the thread sweep for single-host figures (5–7).
	Threads []int
	// Hosts is the host sweep for multi-host figures (8–10).
	Hosts []int
	// ThreadsPerHost matches the paper's 4 for figures 8–10.
	ThreadsPerHost int
	// Duration is the measurement window per point.
	Duration time.Duration
	// AttrK is the complex-query attribute count (paper: 10).
	AttrK int
	// AttrSweep is the Fig. 11 attribute-count sweep.
	AttrSweep []int
	// BatchSizes is the Fig. 12 batch-size sweep.
	BatchSizes []int
	// Latency also records a per-operation latency histogram per data point
	// (rendered as p50/p95/p99 below the rate table).
	Latency bool
	// Env provides the web-service plumbing.
	Env Env
	// Catalogs supplies preloaded databases keyed by size; Figure loads any
	// missing size itself. Use LoadAll to share loads across figures.
	Catalogs map[int]*core.Catalog
}

// LoadAll prepares one catalog per size for reuse across multiple figures.
func LoadAll(sizes []int) (map[int]*core.Catalog, error) {
	return loadAll(sizes, nil)
}

// Defaults fills unset fields with laptop-scale defaults.
func (o FigureOptions) Defaults() FigureOptions {
	if len(o.Sizes) == 0 {
		o.Sizes = []int{10000, 50000, 100000}
	}
	if len(o.Threads) == 0 {
		o.Threads = []int{1, 2, 4, 8, 12, 16}
	}
	if len(o.Hosts) == 0 {
		o.Hosts = []int{1, 2, 4, 6, 8, 10}
	}
	if o.ThreadsPerHost == 0 {
		o.ThreadsPerHost = 4
	}
	if o.Duration == 0 {
		o.Duration = 2 * time.Second
	}
	if o.AttrK == 0 {
		o.AttrK = 10
	}
	if len(o.AttrSweep) == 0 {
		o.AttrSweep = []int{1, 2, 4, 6, 8, 10}
	}
	if len(o.BatchSizes) == 0 {
		o.BatchSizes = []int{1, 10, 100, 1000}
	}
	return o
}

// loadAll prepares one catalog per size (expensive; shared across series).
// Sizes already present in have are reused.
func loadAll(sizes []int, have map[int]*core.Catalog) (map[int]*core.Catalog, error) {
	cats := make(map[int]*core.Catalog, len(sizes))
	for _, size := range sizes {
		if cat, ok := have[size]; ok {
			cats[size] = cat
			continue
		}
		cat, err := Load(DefaultConfig(size))
		if err != nil {
			return nil, fmt.Errorf("bench: load %d files: %w", size, err)
		}
		cats[size] = cat
	}
	return cats, nil
}

// sizeLabel renders a database size the way the paper captions it.
func sizeLabel(n int) string {
	switch {
	case n >= 1000000 && n%1000000 == 0:
		return fmt.Sprintf("%dM", n/1000000)
	case n >= 1000 && n%1000 == 0:
		return fmt.Sprintf("%dk", n/1000)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// opForFigure maps figure numbers to workloads.
func opForFigure(fig int) (Op, error) {
	switch fig {
	case 5, 8:
		return OpAdd, nil
	case 6, 9:
		return OpSimpleQuery, nil
	case 7, 10, 11:
		return OpComplexQuery, nil
	}
	return 0, fmt.Errorf("bench: no figure %d in the paper's evaluation", fig)
}

// Figure regenerates one of the paper's Figures 5–11, or the follow-on
// Fig. 12 batch-size sweep, and returns its series.
func Figure(fig int, opt FigureOptions) ([]Series, error) {
	opt = opt.Defaults()
	if fig == 12 {
		return batchFigure(opt)
	}
	if fig == 13 {
		return degradedFigure(opt)
	}
	if fig == 14 {
		return mixedFigure(opt)
	}
	if fig == 15 {
		return walFigure(opt)
	}
	if fig == 16 {
		return transportFigure(opt)
	}
	if fig == 17 {
		return addPathFigure(opt)
	}
	op, err := opForFigure(fig)
	if err != nil {
		return nil, err
	}
	cats, err := loadAll(opt.Sizes, opt.Catalogs)
	if err != nil {
		return nil, err
	}
	var out []Series

	measure := func(cat *core.Catalog, size, hosts, threads int, web bool, attrK int) (float64, *obs.Histogram, error) {
		cfg := DefaultConfig(size)
		targets := make([]Target, hosts)
		if web {
			url, stop, err := opt.Env.StartServer(cat)
			if err != nil {
				return 0, nil, err
			}
			defer stop()
			for h := range targets {
				targets[h] = SOAP{Client: opt.Env.NewClient(url)}
			}
		} else {
			for h := range targets {
				targets[h] = Direct{Catalog: cat}
			}
		}
		var hist *obs.Histogram
		if opt.Latency {
			hist = &obs.Histogram{}
		}
		return RunRateHist(targets, threads, opt.Duration, op, cfg, attrK, hist), hist, nil
	}

	switch fig {
	case 5, 6, 7:
		// Single host, thread sweep, direct and web series per size.
		for _, web := range []bool{false, true} {
			for _, size := range opt.Sizes {
				label := sizeLabel(size) + " database, no web service"
				if web {
					label = sizeLabel(size) + " database, with web service"
				}
				s := Series{Label: label}
				for _, threads := range opt.Threads {
					rate, hist, err := measure(cats[size], size, 1, threads, web, opt.AttrK)
					if err != nil {
						return nil, err
					}
					s.Points = append(s.Points, Point{X: threads, Y: rate, Hist: hist})
				}
				out = append(out, s)
			}
		}
	case 8, 9, 10:
		// Host sweep at fixed threads-per-host, direct and web per size.
		for _, web := range []bool{false, true} {
			for _, size := range opt.Sizes {
				label := sizeLabel(size) + " database, no web service"
				if web {
					label = sizeLabel(size) + " database, with web service"
				}
				s := Series{Label: label}
				for _, hosts := range opt.Hosts {
					rate, hist, err := measure(cats[size], size, hosts, opt.ThreadsPerHost, web, opt.AttrK)
					if err != nil {
						return nil, err
					}
					s.Points = append(s.Points, Point{X: hosts, Y: rate, Hist: hist})
				}
				out = append(out, s)
			}
		}
	case 11:
		// Attribute-count sweep, database only (no web service).
		for _, size := range opt.Sizes {
			s := Series{Label: sizeLabel(size) + " database"}
			for _, k := range opt.AttrSweep {
				rate, hist, err := measure(cats[size], size, 1, 4, false, k)
				if err != nil {
					return nil, err
				}
				s.Points = append(s.Points, Point{X: k, Y: rate, Hist: hist})
			}
			out = append(out, s)
		}
	}
	return out, nil
}

// batchFigure measures Fig. 12: bulk-registration throughput through the web
// service as the write batch size grows. Each point starts from a fresh,
// empty catalog (bulk registration populates an empty database) and runs one
// client thread, the regime where per-call overhead dominates in Fig. 5.
// Batch size 1 means one createFile call per file — the pre-batchWrite
// baseline the sweep is measured against.
func batchFigure(opt FigureOptions) ([]Series, error) {
	s := Series{Label: "bulk registration, with web service"}
	for _, bs := range opt.BatchSizes {
		cat, err := Load(DefaultConfig(0))
		if err != nil {
			return nil, fmt.Errorf("bench: fig 12 setup: %w", err)
		}
		url, stop, err := opt.Env.StartServer(cat)
		if err != nil {
			return nil, err
		}
		rate := RunBatchRate(opt.Env.NewClient(url), bs, opt.Duration, BatchRegistrationAttrs)
		stop()
		s.Points = append(s.Points, Point{X: bs, Y: rate})
	}
	return []Series{s}, nil
}

// degradedFigure measures Fig. 13: add rate and latency through the web
// service on a healthy server versus a degraded one — periodic injected
// dispatch errors and dropped replies — reached by a client with retries,
// backoff and idempotency keys. The gap between the two series is the price
// of riding out the failures; the paper's evaluation assumes a healthy
// service, so this is a follow-on figure. Uses the smallest configured
// database and always records latency (the degraded tail is the point).
func degradedFigure(opt FigureOptions) ([]Series, error) {
	if opt.Env.StartDegradedServer == nil || opt.Env.NewRetryClient == nil {
		return nil, fmt.Errorf("bench: figure 13 requires Env.StartDegradedServer and Env.NewRetryClient")
	}
	size := opt.Sizes[0]
	for _, s := range opt.Sizes[1:] {
		if s < size {
			size = s
		}
	}
	cats, err := loadAll([]int{size}, opt.Catalogs)
	if err != nil {
		return nil, err
	}
	cat := cats[size]
	cfg := DefaultConfig(size)

	measure := func(start func(*core.Catalog) (string, func(), error), newClient func(string) SOAPClient, threads int) (float64, *obs.Histogram, error) {
		url, stop, err := start(cat)
		if err != nil {
			return 0, nil, err
		}
		defer stop()
		targets := []Target{SOAP{Client: newClient(url)}}
		hist := &obs.Histogram{}
		return RunRateHist(targets, threads, opt.Duration, OpAdd, cfg, opt.AttrK, hist), hist, nil
	}

	healthy := Series{Label: sizeLabel(size) + " database, healthy"}
	degraded := Series{Label: sizeLabel(size) + " database, degraded + retry"}
	for _, threads := range opt.Threads {
		rate, hist, err := measure(opt.Env.StartServer, opt.Env.NewClient, threads)
		if err != nil {
			return nil, err
		}
		healthy.Points = append(healthy.Points, Point{X: threads, Y: rate, Hist: hist})
		rate, hist, err = measure(opt.Env.StartDegradedServer, opt.Env.NewRetryClient, threads)
		if err != nil {
			return nil, err
		}
		degraded.Points = append(degraded.Points, Point{X: threads, Y: rate, Hist: hist})
	}
	return []Series{healthy, degraded}, nil
}

// mixedFigure measures Fig. 14: the MVCC read-path sweep. One writer thread
// cycles add/delete while 1..N reader threads run simple queries against the
// same catalog (the smallest configured size, directly, no web service).
// Before MVCC the readers serialized behind the writer's lock; now they read
// the last committed root wait-free, so the query series should scale with
// reader threads on a multicore host while the writer keeps committing.
func mixedFigure(opt FigureOptions) ([]Series, error) {
	size := opt.Sizes[0]
	for _, s := range opt.Sizes[1:] {
		if s < size {
			size = s
		}
	}
	cats, err := loadAll([]int{size}, opt.Catalogs)
	if err != nil {
		return nil, err
	}
	points := ReadPathSweep(cats[size], opt.Threads, opt.Duration, DefaultConfig(size))
	return MixedPointSeries(size, points), nil
}

// WALPoint is one measurement of the durability sweep (Fig. 15): add rate
// at a given thread count under one durability mode. Appends and Fsyncs are
// the write-ahead log's counter deltas over the measurement window; their
// ratio is the group-commit batching factor (fsyncs ≪ appends under load).
type WALPoint struct {
	Mode       string  `json:"mode"`
	Threads    int     `json:"threads"`
	AddsPerSec float64 `json:"adds_per_sec"`
	Appends    uint64  `json:"wal_appends"`
	Fsyncs     uint64  `json:"wal_fsyncs"`
}

// WALSweep measures Fig. 15: the durability tax. Add rate directly against
// the catalog engine (the regime where commit cost dominates — through the
// web service the SOAP overhead would mask it) in three modes: snapshot-only
// (the pre-WAL baseline: commits are memory-only until the next checkpoint),
// write-ahead log with group-commit fsync (every ack durable), and the log
// without fsync (bound the cost of serializing redo records alone). Each
// mode gets a freshly loaded catalog and, for the log modes, a throwaway
// log file in a temp directory.
func WALSweep(size int, threads []int, d time.Duration) ([]WALPoint, error) {
	cfg := DefaultConfig(size)
	modes := []struct {
		name   string
		attach bool
		opts   sqldb.WALOptions
	}{
		{"snapshot-only", false, sqldb.WALOptions{}},
		{"wal group commit", true, sqldb.WALOptions{}},
		{"wal nosync", true, sqldb.WALOptions{NoSync: true}},
	}
	var out []WALPoint
	for _, m := range modes {
		cat, err := Load(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: fig 15 setup: %w", err)
		}
		var w *sqldb.WAL
		var dir string
		if m.attach {
			dir, err = os.MkdirTemp("", "mcsbench-wal-")
			if err != nil {
				return nil, err
			}
			w, _, err = cat.OpenWAL(filepath.Join(dir, "bench.snap.wal"), m.opts)
			if err != nil {
				os.RemoveAll(dir)
				return nil, fmt.Errorf("bench: fig 15 wal: %w", err)
			}
		}
		tgt := []Target{Direct{Catalog: cat}}
		for _, th := range threads {
			var before sqldb.WALStats
			if w != nil {
				before = w.Stats()
			}
			p := WALPoint{Mode: m.name, Threads: th, AddsPerSec: RunRate(tgt, th, d, OpAdd, cfg, 10)}
			if w != nil {
				st := w.Stats()
				p.Appends = st.Appends - before.Appends
				p.Fsyncs = st.Fsyncs - before.Fsyncs
			}
			out = append(out, p)
		}
		if w != nil {
			w.Close()
			os.RemoveAll(dir)
		}
	}
	return out, nil
}

// walFigure measures Fig. 15 over the smallest configured database.
func walFigure(opt FigureOptions) ([]Series, error) {
	size := opt.Sizes[0]
	for _, s := range opt.Sizes[1:] {
		if s < size {
			size = s
		}
	}
	points, err := WALSweep(size, opt.Threads, opt.Duration)
	if err != nil {
		return nil, err
	}
	return WALPointSeries(size, points), nil
}

// AddPathPoint is one measurement of the write-amplification sweep (Fig. 17):
// pure add rate — CreateFile only, no compensating delete, so the database
// grows for the duration of the window — at a given thread count through one
// ingestion mode. BytesPerAdd is heap bytes allocated per add over the
// window (from the runtime's monotonic allocation counter), the quantity the
// compact-Value and batched-index-maintenance work drives down.
type AddPathPoint struct {
	Mode        string  `json:"mode"` // "single" or "batch100"
	Threads     int     `json:"threads"`
	AddsPerSec  float64 `json:"adds_per_sec"`
	BytesPerAdd float64 `json:"bytes_per_add"`
}

// AddPathBatchSize is the ops-per-call of the Fig. 17 batch mode.
const AddPathBatchSize = 100

// AddPathSweep measures Fig. 17: direct add throughput (the paper's add
// workload minus the compensating delete — the bulk-ingest regime) swept
// over threads in two modes: one CreateFile call per file, and 100 creates
// per BatchWrite transaction. Each mode starts from a freshly loaded catalog
// of the given size and keeps it across its thread points; the growth over a
// few measurement windows is small against the preloaded population.
func AddPathSweep(size int, threads []int, d time.Duration) ([]AddPathPoint, error) {
	cfg := DefaultConfig(size)
	var out []AddPathPoint
	for _, mode := range []string{"single", "batch100"} {
		cat, err := Load(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: fig 17 setup: %w", err)
		}
		var seq atomic.Int64
		for _, th := range threads {
			out = append(out, runAddPath(cat, mode, th, d, cfg, &seq))
		}
	}
	return out, nil
}

// runAddPath drives threads workers doing pure adds in the given mode for
// duration d and returns the aggregate rate and bytes allocated per add.
func runAddPath(cat *core.Catalog, mode string, threads int, d time.Duration, cfg Config, seq *atomic.Int64) AddPathPoint {
	var total atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if mode == "single" {
					i := seq.Add(1)
					_, err := cat.CreateFile(LoaderDN, core.FileSpec{
						Name:       fmt.Sprintf("bench-addpath-%010d", i),
						DataType:   "binary",
						Attributes: FileAttributes(int(i), cfg.AttrsPerFile),
					})
					if err != nil {
						panic(fmt.Sprintf("bench: addpath single: %v", err))
					}
					total.Add(1)
					continue
				}
				ops := make([]core.BatchOp, AddPathBatchSize)
				for k := range ops {
					i := seq.Add(1)
					spec := core.FileSpec{
						Name:       fmt.Sprintf("bench-addpath-%010d", i),
						DataType:   "binary",
						Attributes: FileAttributes(int(i), cfg.AttrsPerFile),
					}
					ops[k] = core.BatchOp{CreateFile: &spec}
				}
				if _, err := cat.BatchWrite(LoaderDN, ops); err != nil {
					panic(fmt.Sprintf("bench: addpath batch: %v", err))
				}
				total.Add(AddPathBatchSize)
			}
		}()
	}
	start := time.Now()
	time.Sleep(d)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	p := AddPathPoint{
		Mode:       mode,
		Threads:    threads,
		AddsPerSec: float64(total.Load()) / elapsed.Seconds(),
	}
	if n := total.Load(); n > 0 {
		p.BytesPerAdd = float64(after.TotalAlloc-before.TotalAlloc) / float64(n)
	}
	return p
}

// addPathFigure measures Fig. 17 over the smallest configured database.
func addPathFigure(opt FigureOptions) ([]Series, error) {
	size := opt.Sizes[0]
	for _, s := range opt.Sizes[1:] {
		if s < size {
			size = s
		}
	}
	points, err := AddPathSweep(size, opt.Threads, opt.Duration)
	if err != nil {
		return nil, err
	}
	return AddPathPointSeries(size, points), nil
}

// AddPathPointSeries renders the add-path sweep as figure series, one line
// per mode over the thread axis.
func AddPathPointSeries(size int, points []AddPathPoint) []Series {
	var out []Series
	idx := map[string]int{}
	for _, p := range points {
		i, ok := idx[p.Mode]
		if !ok {
			i = len(out)
			idx[p.Mode] = i
			out = append(out, Series{Label: sizeLabel(size) + " database, " + p.Mode + " adds"})
		}
		out[i].Points = append(out[i].Points, Point{X: p.Threads, Y: p.AddsPerSec})
	}
	return out
}

// TransportPoint is one measurement of the wire comparison (Fig. 16):
// throughput of one operation at a given thread count through one wire
// encoding — the same server, the same handlers, only the envelope differs.
type TransportPoint struct {
	Transport string  `json:"transport"`
	Op        string  `json:"op"`
	Threads   int     `json:"threads"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// TransportSweep measures Fig. 16: add and simple-query rate through the
// web service over the SOAP wire versus the compact JSON wire, swept over
// client threads on the smallest configured database. Both clients hit the
// same server instance — the dispatch table behind both endpoints is
// shared — so any gap is pure encoding and framing cost.
func TransportSweep(opt FigureOptions) ([]TransportPoint, error) {
	opt = opt.Defaults()
	if opt.Env.NewJSONClient == nil {
		return nil, fmt.Errorf("bench: figure 16 requires Env.NewJSONClient")
	}
	size := opt.Sizes[0]
	for _, s := range opt.Sizes[1:] {
		if s < size {
			size = s
		}
	}
	cats, err := loadAll([]int{size}, opt.Catalogs)
	if err != nil {
		return nil, err
	}
	cfg := DefaultConfig(size)
	url, stop, err := opt.Env.StartServer(cats[size])
	if err != nil {
		return nil, err
	}
	defer stop()

	wires := []struct {
		name      string
		newClient func(url string) SOAPClient
	}{
		{"soap", opt.Env.NewClient},
		{"json", opt.Env.NewJSONClient},
	}
	ops := []struct {
		name string
		op   Op
	}{
		{"add", OpAdd},
		{"query", OpSimpleQuery},
	}
	var out []TransportPoint
	for _, wire := range wires {
		targets := []Target{SOAP{Client: wire.newClient(url)}}
		for _, o := range ops {
			for _, th := range opt.Threads {
				out = append(out, TransportPoint{
					Transport: wire.name, Op: o.name, Threads: th,
					OpsPerSec: RunRate(targets, th, opt.Duration, o.op, cfg, opt.AttrK),
				})
			}
		}
	}
	return out, nil
}

// transportFigure measures Fig. 16 over the smallest configured database.
func transportFigure(opt FigureOptions) ([]Series, error) {
	size := opt.Sizes[0]
	for _, s := range opt.Sizes[1:] {
		if s < size {
			size = s
		}
	}
	points, err := TransportSweep(opt)
	if err != nil {
		return nil, err
	}
	return TransportPointSeries(size, points), nil
}

// TransportPointSeries renders the wire comparison as figure series, one
// line per (wire, operation) pair over the thread axis.
func TransportPointSeries(size int, points []TransportPoint) []Series {
	var out []Series
	idx := map[string]int{}
	for _, p := range points {
		key := p.Transport + "/" + p.Op
		i, ok := idx[key]
		if !ok {
			i = len(out)
			idx[key] = i
			out = append(out, Series{Label: sizeLabel(size) + " database, " + p.Op + " over " + p.Transport})
		}
		out[i].Points = append(out[i].Points, Point{X: p.Threads, Y: p.OpsPerSec})
	}
	return out
}

// WALPointSeries renders the durability sweep as figure series, one line
// per mode over the thread axis.
func WALPointSeries(size int, points []WALPoint) []Series {
	var out []Series
	idx := map[string]int{}
	for _, p := range points {
		i, ok := idx[p.Mode]
		if !ok {
			i = len(out)
			idx[p.Mode] = i
			out = append(out, Series{Label: sizeLabel(size) + " database, " + p.Mode})
		}
		out[i].Points = append(out[i].Points, Point{X: p.Threads, Y: p.AddsPerSec})
	}
	return out
}

// MixedPointSeries renders read-path sweep points as figure series (queries
// and writes as separate lines over the reader-thread axis).
func MixedPointSeries(size int, points []MixedPoint) []Series {
	queries := Series{Label: sizeLabel(size) + " database, queries (readers)"}
	writes := Series{Label: sizeLabel(size) + " database, adds (1 writer)"}
	for _, p := range points {
		queries.Points = append(queries.Points, Point{X: p.Threads, Y: p.QueryOps})
		writes.Points = append(writes.Points, Point{X: p.Threads, Y: p.WriteOps})
	}
	return []Series{queries, writes}
}

// FigureTitle returns the caption of a figure.
func FigureTitle(fig int) string {
	switch fig {
	case 5:
		return "Fig. 5: Add rate with varying threads on a single client host (adds/s)"
	case 6:
		return "Fig. 6: Simple query rate with varying threads on a single client host (queries/s)"
	case 7:
		return "Fig. 7: Complex query rate with varying threads on a single client host (queries/s)"
	case 8:
		return "Fig. 8: Add rate with varying client hosts, 4 threads each (adds/s)"
	case 9:
		return "Fig. 9: Simple query rate with varying client hosts (queries/s)"
	case 10:
		return "Fig. 10: Complex query rate with varying client hosts (queries/s)"
	case 11:
		return "Fig. 11: Complex query rate vs number of attributes, database only (queries/s)"
	case 12:
		return "Fig. 12: Bulk-registration rate vs write batch size, single client thread (adds/s)"
	case 13:
		return "Fig. 13: Add rate and latency under injected faults, healthy vs degraded-with-retry (adds/s)"
	case 14:
		return "Fig. 14: Mixed read/write rate, 1 writer + varying reader threads, database only (ops/s)"
	case 15:
		return "Fig. 15: Add rate, snapshot-only vs write-ahead log with group commit, database only (adds/s)"
	case 16:
		return "Fig. 16: Add and simple-query rate, SOAP wire vs compact JSON wire, same server (ops/s)"
	case 17:
		return "Fig. 17: Pure add rate, single CreateFile vs 100-op batches, database only (adds/s)"
	case 18:
		return "Fig. 18: Aggregate add, simple-query and scatter-query rate through the shard router vs shard count (ops/s)"
	}
	return fmt.Sprintf("unknown figure %d", fig)
}

// xAxis returns the swept-parameter label of a figure.
func xAxis(fig int) string {
	switch fig {
	case 5, 6, 7, 13, 14, 15, 16, 17:
		return "threads"
	case 8, 9, 10:
		return "hosts"
	case 12:
		return "batch"
	case 18:
		return "shards"
	default:
		return "attributes"
	}
}

// Render formats figure series as an aligned text table, one row per X.
func Render(fig int, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", FigureTitle(fig))
	xs := map[int]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]int, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Ints(sorted)

	fmt.Fprintf(&b, "%-12s", xAxis(fig))
	for _, s := range series {
		fmt.Fprintf(&b, "  %28s", s.Label)
	}
	b.WriteString("\n")
	for _, x := range sorted {
		fmt.Fprintf(&b, "%-12d", x)
		for _, s := range series {
			val := "-"
			for _, p := range s.Points {
				if p.X == x {
					val = fmt.Sprintf("%.1f", p.Y)
					break
				}
			}
			fmt.Fprintf(&b, "  %28s", val)
		}
		b.WriteString("\n")
	}

	// Latency summaries, when the run recorded them (FigureOptions.Latency).
	withLat := false
	for _, s := range series {
		for _, p := range s.Points {
			if p.Hist != nil && p.Hist.Count() > 0 {
				withLat = true
			}
		}
	}
	if withLat {
		b.WriteString("\nper-operation latency:\n")
		for _, s := range series {
			for _, p := range s.Points {
				if p.Hist == nil || p.Hist.Count() == 0 {
					continue
				}
				fmt.Fprintf(&b, "  %-40s %s=%-4d %s\n", s.Label, xAxis(fig), p.X, p.Hist.Summary())
			}
		}
	}
	return b.String()
}
