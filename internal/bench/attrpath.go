package bench

import (
	"fmt"
	"runtime"
	"time"

	"mcs/internal/core"
)

// AttrPathPoint is one measurement of the attribute sweep (Fig. 11):
// complex-query rate at a given predicate count on one thread, directly
// against the engine, together with the EXPLAIN rendering of the plan the
// cost-based planner chose for that count. The plan string makes regressions
// diagnosable from the report alone: a point that slowed down because an
// attribute stage fell off its covered index shows up as a changed plan, not
// just a changed number.
type AttrPathPoint struct {
	Attrs         int     `json:"attrs"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	Plan          string  `json:"plan"`
}

// AttrPathWarmup is the per-point warmup iteration count of AttrPathSweep.
const AttrPathWarmup = 50

// AttrPathRepeats is how many measurement windows AttrPathSweep runs per
// point; the point keeps the fastest. Interference on a loaded host — a
// garbage-collection cycle or scheduler hiccup landing inside a window —
// only ever subtracts throughput, so the peak is the least-biased estimate
// of per-query cost (the addpath report picks its peak the same way).
const AttrPathRepeats = 3

// AttrPathSweep measures Fig. 11 — complex-query rate as the predicate count
// grows — with a methodology tuned for trustworthy ratios rather than peak
// throughput: a single query thread (so points measure per-query cost, not
// scheduler behaviour), AttrPathWarmup warmup queries per point (so plan
// compilation and cache warming happen outside the window), and a forced
// garbage collection before each window. The last one matters most on small
// hosts: the loaded catalog keeps hundreds of megabytes live, a concurrent
// mark takes whole seconds of one core, and without the settle a GC cycle
// lands inside some windows and not others, swamping the effect the sweep
// exists to show.
func AttrPathSweep(cat *core.Catalog, ks []int, d time.Duration, cfg Config) ([]AttrPathPoint, error) {
	tgt := Direct{Catalog: cat}
	out := make([]AttrPathPoint, 0, len(ks))
	for _, k := range ks {
		sql, err := cat.ExplainQuery(core.Query{Predicates: Predicates(k, 0)})
		if err != nil {
			return nil, fmt.Errorf("bench: fig 11 sql k=%d: %w", k, err)
		}
		plan, err := cat.DB().Explain(sql)
		if err != nil {
			return nil, fmt.Errorf("bench: fig 11 explain k=%d: %w", k, err)
		}
		for i := 0; i < AttrPathWarmup; i++ {
			if err := tgt.AttrQuery(Predicates(k, i%valueGroups)); err != nil {
				return nil, fmt.Errorf("bench: fig 11 warmup k=%d: %w", k, err)
			}
		}
		var best float64
		for r := 0; r < AttrPathRepeats; r++ {
			runtime.GC()
			start := time.Now()
			n := 0
			for time.Since(start) < d {
				if err := tgt.AttrQuery(Predicates(k, n%valueGroups)); err != nil {
					return nil, fmt.Errorf("bench: fig 11 k=%d: %w", k, err)
				}
				n++
			}
			if rate := float64(n) / time.Since(start).Seconds(); rate > best {
				best = rate
			}
		}
		out = append(out, AttrPathPoint{Attrs: k, QueriesPerSec: best, Plan: plan})
	}
	return out, nil
}

// AttrPathPointSeries renders the attribute sweep as one figure series over
// the predicate-count axis.
func AttrPathPointSeries(size int, points []AttrPathPoint) []Series {
	s := Series{Label: sizeLabel(size) + " database"}
	for _, p := range points {
		s.Points = append(s.Points, Point{X: p.Attrs, Y: p.QueriesPerSec})
	}
	return []Series{s}
}
