package core

import (
	"fmt"

	"mcs/internal/sqldb"
)

// auditTx appends an audit record inside an existing transaction. requestID
// is the correlation ID of the call that caused the write ("" when the
// operation was not requested over the instrumented transport).
func (c *Catalog) auditTx(tx *sqldb.Tx, objType ObjectType, id int64, action, dn, detail, requestID string) error {
	_, err := tx.Exec(
		"INSERT INTO audit_log (object_type, object_id, action, dn, detail, request_id, at) VALUES (?, ?, ?, ?, ?, ?, ?)",
		sqldb.Text(string(objType)), sqldb.Int(id), sqldb.Text(action),
		sqldb.Text(dn), sqldb.Text(detail), sqldb.Text(requestID), c.now())
	if err != nil {
		// Catalogs restored from snapshots taken before the request_id
		// column existed keep working; those records just lack the ID.
		_, err = tx.Exec(
			"INSERT INTO audit_log (object_type, object_id, action, dn, detail, at) VALUES (?, ?, ?, ?, ?, ?)",
			sqldb.Text(string(objType)), sqldb.Int(id), sqldb.Text(action),
			sqldb.Text(dn), sqldb.Text(detail), c.now())
	}
	return err
}

// AuditLog returns the audit records for one object, oldest first.
func (c *Catalog) AuditLog(dn string, objType ObjectType, objectName string) ([]AuditRecord, error) {
	id, err := c.resolveObject(dn, objType, objectName)
	if err != nil {
		return nil, err
	}
	if err := c.requireObject(dn, objType, id, PermRead); err != nil {
		return nil, err
	}
	rows, err := c.db.Query(
		`SELECT id, object_type, object_id, action, dn, detail, request_id, at FROM audit_log
		 WHERE object_type = ? AND object_id = ? ORDER BY id`,
		sqldb.Text(string(objType)), sqldb.Int(id))
	if err == nil {
		recs := make([]AuditRecord, 0, len(rows.Data))
		for _, r := range rows.Data {
			recs = append(recs, AuditRecord{
				ID: r[0].Int(), Object: ObjectType(r[1].S), ObjectID: r[2].Int(),
				Action: r[3].S, DN: r[4].S, Detail: r[5].S, RequestID: r[6].S, At: r[7].Time(),
			})
		}
		return recs, nil
	}
	// Legacy-snapshot schema without the request_id column.
	rows, err = c.db.Query(
		`SELECT id, object_type, object_id, action, dn, detail, at FROM audit_log
		 WHERE object_type = ? AND object_id = ? ORDER BY id`,
		sqldb.Text(string(objType)), sqldb.Int(id))
	if err != nil {
		return nil, err
	}
	recs := make([]AuditRecord, 0, len(rows.Data))
	for _, r := range rows.Data {
		recs = append(recs, AuditRecord{
			ID: r[0].Int(), Object: ObjectType(r[1].S), ObjectID: r[2].Int(),
			Action: r[3].S, DN: r[4].S, Detail: r[5].S, At: r[6].Time(),
		})
	}
	return recs, nil
}

// Annotate attaches a free-text annotation to a file, collection or view.
func (c *Catalog) Annotate(dn string, objType ObjectType, objectName, text string, opts ...OpOption) (Annotation, error) {
	op := applyOpOptions(opts)
	var out Annotation
	err := c.withReplay(op, "annotate", &out, func(tx *sqldb.Tx) error {
		var err error
		out, err = c.annotateTx(tx, dn, objType, objectName, text)
		return err
	})
	if err != nil {
		return Annotation{}, err
	}
	return out, nil
}

// annotateTx is Annotate inside an existing transaction.
func (c *Catalog) annotateTx(tx *sqldb.Tx, dn string, objType ObjectType, objectName, text string) (Annotation, error) {
	if text == "" {
		return Annotation{}, fmt.Errorf("%w: empty annotation", ErrInvalidInput)
	}
	id, err := c.resolveMemberQ(tx, dn, objType, objectName)
	if err != nil {
		return Annotation{}, err
	}
	if err := c.requireObjectQ(tx, dn, objType, id, PermAnnotate); err != nil {
		return Annotation{}, err
	}
	now := c.now()
	res, err := tx.Exec(
		"INSERT INTO annotation (object_type, object_id, annotation, dn, at) VALUES (?, ?, ?, ?, ?)",
		sqldb.Text(string(objType)), sqldb.Int(id), sqldb.Text(text), sqldb.Text(dn), now)
	if err != nil {
		return Annotation{}, err
	}
	return Annotation{
		ID: res.LastInsertID, Object: objType, ObjectID: id,
		Text: text, Creator: dn, CreatedAt: now.Time(),
	}, nil
}

// Annotations lists the annotations on an object, oldest first.
func (c *Catalog) Annotations(dn string, objType ObjectType, objectName string) ([]Annotation, error) {
	id, err := c.resolveObject(dn, objType, objectName)
	if err != nil {
		return nil, err
	}
	if err := c.requireObject(dn, objType, id, PermRead); err != nil {
		return nil, err
	}
	rows, err := c.db.Query(
		`SELECT id, annotation, dn, at FROM annotation
		 WHERE object_type = ? AND object_id = ? ORDER BY id`,
		sqldb.Text(string(objType)), sqldb.Int(id))
	if err != nil {
		return nil, err
	}
	anns := make([]Annotation, 0, len(rows.Data))
	for _, r := range rows.Data {
		anns = append(anns, Annotation{
			ID: r[0].Int(), Object: objType, ObjectID: id,
			Text: r[1].S, Creator: r[2].S, CreatedAt: r[3].Time(),
		})
	}
	return anns, nil
}

// AddProvenance appends a creation/transformation history record to a file.
func (c *Catalog) AddProvenance(dn, fileName string, version int, description string, opts ...OpOption) error {
	op := applyOpOptions(opts)
	f, err := c.GetFile(dn, fileName, version)
	if err != nil {
		return err
	}
	if err := c.requireFile(dn, &f, PermWrite); err != nil {
		return err
	}
	return c.withReplay(op, "addProvenance", nil, func(tx *sqldb.Tx) error {
		_, err := tx.Exec("INSERT INTO provenance (file_id, description, at) VALUES (?, ?, ?)",
			sqldb.Int(f.ID), sqldb.Text(description), c.now())
		return err
	})
}

// Provenance returns a file's transformation history, oldest first.
func (c *Catalog) Provenance(dn, fileName string, version int) ([]ProvenanceRecord, error) {
	f, err := c.GetFile(dn, fileName, version)
	if err != nil {
		return nil, err
	}
	rows, err := c.db.Query(
		"SELECT id, file_id, description, at FROM provenance WHERE file_id = ? ORDER BY id",
		sqldb.Int(f.ID))
	if err != nil {
		return nil, err
	}
	recs := make([]ProvenanceRecord, 0, len(rows.Data))
	for _, r := range rows.Data {
		recs = append(recs, ProvenanceRecord{ID: r[0].Int(), FileID: r[1].Int(), Description: r[2].S, At: r[3].Time()})
	}
	return recs, nil
}

// RegisterWriter stores (or updates) the contact record of a metadata
// writer.
func (c *Catalog) RegisterWriter(dn string, w Writer, opts ...OpOption) error {
	op := applyOpOptions(opts)
	if w.DN == "" {
		return fmt.Errorf("%w: writer DN required", ErrInvalidInput)
	}
	return c.withReplay(op, "registerWriter", nil, func(tx *sqldb.Tx) error {
		if _, err := tx.Exec("DELETE FROM writer WHERE dn = ?", sqldb.Text(w.DN)); err != nil {
			return err
		}
		_, err := tx.Exec(
			"INSERT INTO writer (dn, description, institution, address, phone, email) VALUES (?, ?, ?, ?, ?, ?)",
			sqldb.Text(w.DN), sqldb.Text(w.Description), sqldb.Text(w.Institution),
			sqldb.Text(w.Address), sqldb.Text(w.Phone), sqldb.Text(w.Email))
		return err
	})
}

// GetWriter fetches a writer's contact record by DN.
func (c *Catalog) GetWriter(dn, writerDN string) (Writer, error) {
	rows, err := c.db.Query(
		"SELECT dn, description, institution, address, phone, email FROM writer WHERE dn = ?",
		sqldb.Text(writerDN))
	if err != nil {
		return Writer{}, err
	}
	if len(rows.Data) == 0 {
		return Writer{}, fmt.Errorf("%w: writer %q", ErrNotFound, writerDN)
	}
	r := rows.Data[0]
	return Writer{DN: r[0].S, Description: r[1].S, Institution: r[2].S,
		Address: r[3].S, Phone: r[4].S, Email: r[5].S}, nil
}

// RegisterExternalCatalog records a pointer to another metadata catalog.
func (c *Catalog) RegisterExternalCatalog(dn string, ec ExternalCatalog, opts ...OpOption) (ExternalCatalog, error) {
	op := applyOpOptions(opts)
	if ec.Name == "" {
		return ExternalCatalog{}, fmt.Errorf("%w: external catalog name required", ErrInvalidInput)
	}
	if err := c.requireService(dn, PermCreate); err != nil {
		return ExternalCatalog{}, err
	}
	err := c.withReplay(op, "registerExternalCatalog", &ec, func(tx *sqldb.Tx) error {
		res, err := tx.Exec(
			"INSERT INTO external_catalog (name, type, host, ip, description) VALUES (?, ?, ?, ?, ?)",
			sqldb.Text(ec.Name), sqldb.Text(ec.Type), sqldb.Text(ec.Host),
			sqldb.Text(ec.IP), sqldb.Text(ec.Description))
		if err != nil {
			return fmt.Errorf("%w: external catalog %q", ErrExists, ec.Name)
		}
		ec.ID = res.LastInsertID
		return nil
	})
	if err != nil {
		return ExternalCatalog{}, err
	}
	return ec, nil
}

// ExternalCatalogs lists the registered external catalogs.
func (c *Catalog) ExternalCatalogs(dn string) ([]ExternalCatalog, error) {
	rows, err := c.db.Query(
		"SELECT id, name, type, host, ip, description FROM external_catalog ORDER BY name")
	if err != nil {
		return nil, err
	}
	out := make([]ExternalCatalog, 0, len(rows.Data))
	for _, r := range rows.Data {
		out = append(out, ExternalCatalog{
			ID: r[0].Int(), Name: r[1].S, Type: r[2].S, Host: r[3].S, IP: r[4].S, Description: r[5].S,
		})
	}
	return out, nil
}

// AttributePairs calls fn with every (attribute name, rendered value)
// binding on objects of the given type, until fn returns false. The
// federation index uses this to build discovery summaries.
func (c *Catalog) AttributePairs(objType ObjectType, fn func(attr, value string) bool) error {
	rows, err := c.db.Query(`SELECT d.name, d.type, ua.sval, ua.ival, ua.fval, ua.tval
		FROM user_attribute ua JOIN attribute_def d ON d.id = ua.attr_id
		WHERE ua.object_type = ?`, sqldb.Text(string(objType)))
	if err != nil {
		return err
	}
	for _, r := range rows.Data {
		typ := AttrType(r[1].S)
		var v AttrValue
		switch typ {
		case AttrString:
			v = String(r[2].S)
		case AttrInt:
			v = Int(r[3].Int())
		case AttrFloat:
			v = Float(r[4].Float())
		case AttrDate:
			v = AttrValue{Type: AttrDate, T: r[5].Time()}
		case AttrTime:
			v = AttrValue{Type: AttrTime, T: r[5].Time()}
		default:
			v = AttrValue{Type: AttrDateTime, T: r[5].Time()}
		}
		if !fn(r[0].S, v.Render()) {
			return nil
		}
	}
	return nil
}

// Stats reports catalog row counts (diagnostics and the bench harness).
type Stats struct {
	Files       int
	Collections int
	Views       int
	Attributes  int
	AttrDefs    int
}

// Stats returns current row counts.
func (c *Catalog) Stats() (Stats, error) {
	var s Stats
	for _, q := range []struct {
		table string
		dst   *int
	}{
		{"logical_file", &s.Files},
		{"logical_collection", &s.Collections},
		{"logical_view", &s.Views},
		{"user_attribute", &s.Attributes},
		{"attribute_def", &s.AttrDefs},
	} {
		n, err := c.db.RowCount(q.table)
		if err != nil {
			return Stats{}, err
		}
		*q.dst = n
	}
	return s, nil
}
