package core

import (
	"fmt"

	"mcs/internal/sqldb"
)

const viewColumns = `id, name, description, creator, last_modifier, created, modified, audited`

func scanView(row []sqldb.Value) View {
	return View{
		ID:           row[0].Int(),
		Name:         row[1].S,
		Description:  row[2].S,
		Creator:      row[3].S,
		LastModifier: row[4].S,
		Created:      row[5].Time(),
		Modified:     row[6].Time(),
		Audited:      row[7].Bool(),
	}
}

// ViewSpec describes a logical view to create.
type ViewSpec struct {
	Name        string
	Description string
	Audited     bool
	Attributes  []Attribute
}

// CreateView registers a logical view: a free-form, non-authorizing
// aggregation of files, collections and other views ("loosely analogous to
// creating a symbolic link", per the paper).
func (c *Catalog) CreateView(dn string, spec ViewSpec, opts ...OpOption) (View, error) {
	op := applyOpOptions(opts)
	if spec.Name == "" {
		return View{}, fmt.Errorf("%w: view name required", ErrInvalidInput)
	}
	if err := c.requireService(dn, PermCreate); err != nil {
		return View{}, err
	}
	var out View
	err := c.withReplay(op, "createView", &out, func(tx *sqldb.Tx) error {
		now := c.now()
		res, err := tx.Exec(`INSERT INTO logical_view
			(name, description, creator, last_modifier, created, modified, audited)
			VALUES (?, ?, ?, ?, ?, ?, ?)`,
			sqldb.Text(spec.Name), sqldb.Text(spec.Description),
			sqldb.Text(dn), sqldb.Text(dn), now, now, sqldb.Bool(spec.Audited))
		if err != nil {
			return err
		}
		if spec.Audited {
			if err := c.auditTx(tx, ObjectView, res.LastInsertID, "create", dn, spec.Name, op.requestID); err != nil {
				return err
			}
		}
		out = View{
			ID: res.LastInsertID, Name: spec.Name, Description: spec.Description,
			Creator: dn, LastModifier: dn, Created: now.Time(), Modified: now.Time(), Audited: spec.Audited,
		}
		return nil
	})
	if err != nil {
		return View{}, err
	}
	for _, a := range spec.Attributes {
		if err := c.SetAttribute(dn, ObjectView, spec.Name, a.Name, a.Value); err != nil {
			return View{}, err
		}
	}
	return out, nil
}

// GetView fetches a logical view by name.
func (c *Catalog) GetView(dn, name string) (View, error) {
	return c.getViewQ(c.db, dn, name)
}

// getViewQ is GetView reading through q.
func (c *Catalog) getViewQ(q querier, dn, name string) (View, error) {
	rows, err := q.Query("SELECT "+viewColumns+" FROM logical_view WHERE name = ?", sqldb.Text(name))
	if err != nil {
		return View{}, err
	}
	if len(rows.Data) == 0 {
		return View{}, fmt.Errorf("%w: view %q", ErrNotFound, name)
	}
	return scanView(rows.Data[0]), nil
}

// resolveMember maps an (objectType, name) pair to the member's numeric ID.
// Views may aggregate files, collections and other views.
func (c *Catalog) resolveMember(dn string, objType ObjectType, name string) (int64, error) {
	return c.resolveMemberQ(c.db, dn, objType, name)
}

// resolveMemberQ is resolveMember reading through q.
func (c *Catalog) resolveMemberQ(q querier, dn string, objType ObjectType, name string) (int64, error) {
	switch objType {
	case ObjectFile:
		f, err := c.getFileQ(q, dn, name, 0)
		if err != nil {
			return 0, err
		}
		return f.ID, nil
	case ObjectCollection:
		col, err := c.getCollectionQ(q, dn, name)
		if err != nil {
			return 0, err
		}
		return col.ID, nil
	case ObjectView:
		v, err := c.getViewQ(q, dn, name)
		if err != nil {
			return 0, err
		}
		return v.ID, nil
	}
	return 0, fmt.Errorf("%w: object type %q cannot join a view", ErrInvalidInput, objType)
}

// viewReaches reports whether the view graph starting at fromID reaches
// view targetID (cycle detection for view-in-view membership).
func (c *Catalog) viewReaches(fromID, targetID int64) (bool, error) {
	if fromID == targetID {
		return true, nil
	}
	rows, err := c.db.Query(
		"SELECT object_id FROM view_member WHERE view_id = ? AND object_type = ?",
		sqldb.Int(fromID), sqldb.Text(string(ObjectView)))
	if err != nil {
		return false, err
	}
	for _, r := range rows.Data {
		hit, err := c.viewReaches(r[0].Int(), targetID)
		if err != nil || hit {
			return hit, err
		}
	}
	return false, nil
}

// AddToView aggregates an object into a view. Files and collections may
// belong to many views; view-in-view membership must stay acyclic.
func (c *Catalog) AddToView(dn, viewName string, objType ObjectType, memberName string, opts ...OpOption) error {
	op := applyOpOptions(opts)
	v, err := c.GetView(dn, viewName)
	if err != nil {
		return err
	}
	if err := c.requireObject(dn, ObjectView, v.ID, PermWrite); err != nil {
		return err
	}
	memberID, err := c.resolveMember(dn, objType, memberName)
	if err != nil {
		return err
	}
	if objType == ObjectView {
		reaches, err := c.viewReaches(memberID, v.ID)
		if err != nil {
			return err
		}
		if reaches {
			return fmt.Errorf("%w: adding view %q to %q", ErrCycle, memberName, viewName)
		}
	}
	// The duplicate check runs inside the transaction, after the replay
	// lookup: a retried addToView whose first attempt committed must be
	// answered from the replay cache, not rejected as ErrExists.
	return c.withReplay(op, "addToView", nil, func(tx *sqldb.Tx) error {
		dup, err := tx.Query(
			"SELECT id FROM view_member WHERE view_id = ? AND object_type = ? AND object_id = ?",
			sqldb.Int(v.ID), sqldb.Text(string(objType)), sqldb.Int(memberID))
		if err != nil {
			return err
		}
		if len(dup.Data) > 0 {
			return fmt.Errorf("%w: %s %q already in view %q", ErrExists, objType, memberName, viewName)
		}
		if _, err := tx.Exec(
			"INSERT INTO view_member (view_id, object_type, object_id) VALUES (?, ?, ?)",
			sqldb.Int(v.ID), sqldb.Text(string(objType)), sqldb.Int(memberID)); err != nil {
			return err
		}
		if v.Audited {
			return c.auditTx(tx, ObjectView, v.ID, "add-member", dn,
				fmt.Sprintf("%s %s", objType, memberName), op.requestID)
		}
		return nil
	})
}

// RemoveFromView removes a member from a view.
func (c *Catalog) RemoveFromView(dn, viewName string, objType ObjectType, memberName string, opts ...OpOption) error {
	op := applyOpOptions(opts)
	v, err := c.GetView(dn, viewName)
	if err != nil {
		return err
	}
	if err := c.requireObject(dn, ObjectView, v.ID, PermWrite); err != nil {
		return err
	}
	memberID, err := c.resolveMember(dn, objType, memberName)
	if err != nil {
		return err
	}
	return c.withReplay(op, "removeFromView", nil, func(tx *sqldb.Tx) error {
		res, err := tx.Exec(
			"DELETE FROM view_member WHERE view_id = ? AND object_type = ? AND object_id = ?",
			sqldb.Int(v.ID), sqldb.Text(string(objType)), sqldb.Int(memberID))
		if err != nil {
			return err
		}
		if res.RowsAffected == 0 {
			return fmt.Errorf("%w: %s %q in view %q", ErrNotFound, objType, memberName, viewName)
		}
		return nil
	})
}

// ViewContents lists the direct members of a view with their names.
// Reading a view's contents requires read permission on the view's members'
// own scopes only when the member is subsequently dereferenced; the listing
// itself follows the paper's rule that views do not affect authorization.
func (c *Catalog) ViewContents(dn, viewName string) ([]ViewMember, error) {
	v, err := c.GetView(dn, viewName)
	if err != nil {
		return nil, err
	}
	rows, err := c.db.Query(
		"SELECT object_type, object_id FROM view_member WHERE view_id = ? ORDER BY id",
		sqldb.Int(v.ID))
	if err != nil {
		return nil, err
	}
	members := make([]ViewMember, 0, len(rows.Data))
	for _, r := range rows.Data {
		m := ViewMember{Type: ObjectType(r[0].S), ID: r[1].Int()}
		var table string
		switch m.Type {
		case ObjectFile:
			table = "logical_file"
		case ObjectCollection:
			table = "logical_collection"
		case ObjectView:
			table = "logical_view"
		default:
			continue
		}
		nr, err := c.db.Query("SELECT name FROM "+table+" WHERE id = ?", sqldb.Int(m.ID))
		if err != nil {
			return nil, err
		}
		if len(nr.Data) > 0 {
			m.Name = nr.Data[0][0].S
		}
		members = append(members, m)
	}
	return members, nil
}

// ExpandView recursively resolves a view to the set of logical file names it
// reaches: direct file members, every file of member collections (and their
// sub-collections), and the expansion of member views.
func (c *Catalog) ExpandView(dn, viewName string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	var expandView func(name string) error
	var expandCollection func(id int64) error
	expandCollection = func(id int64) error {
		frows, err := c.db.Query("SELECT name FROM logical_file WHERE collection_id = ?", sqldb.Int(id))
		if err != nil {
			return err
		}
		for _, r := range frows.Data {
			if !seen[r[0].S] {
				seen[r[0].S] = true
				out = append(out, r[0].S)
			}
		}
		crows, err := c.db.Query("SELECT id FROM logical_collection WHERE parent_id = ?", sqldb.Int(id))
		if err != nil {
			return err
		}
		for _, r := range crows.Data {
			if err := expandCollection(r[0].Int()); err != nil {
				return err
			}
		}
		return nil
	}
	expandView = func(name string) error {
		members, err := c.ViewContents(dn, name)
		if err != nil {
			return err
		}
		for _, m := range members {
			switch m.Type {
			case ObjectFile:
				if !seen[m.Name] {
					seen[m.Name] = true
					out = append(out, m.Name)
				}
			case ObjectCollection:
				if err := expandCollection(m.ID); err != nil {
					return err
				}
			case ObjectView:
				if err := expandView(m.Name); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := expandView(viewName); err != nil {
		return nil, err
	}
	return out, nil
}

// DeleteView removes a view and its membership records (not its members).
func (c *Catalog) DeleteView(dn, name string, opts ...OpOption) error {
	op := applyOpOptions(opts)
	if hit, err := c.replayedEarly(op, "deleteView", nil); hit || err != nil {
		return err
	}
	v, err := c.GetView(dn, name)
	if err != nil {
		return err
	}
	if err := c.requireObject(dn, ObjectView, v.ID, PermDelete); err != nil {
		return err
	}
	return c.withReplay(op, "deleteView", nil, func(tx *sqldb.Tx) error {
		id := sqldb.Int(v.ID)
		vt := sqldb.Text(string(ObjectView))
		if _, err := tx.Exec("DELETE FROM logical_view WHERE id = ?", id); err != nil {
			return err
		}
		if _, err := tx.Exec("DELETE FROM view_member WHERE view_id = ?", id); err != nil {
			return err
		}
		for _, stmt := range []string{
			"DELETE FROM user_attribute WHERE object_type = ? AND object_id = ?",
			"DELETE FROM annotation WHERE object_type = ? AND object_id = ?",
			"DELETE FROM acl WHERE object_type = ? AND object_id = ?",
			"DELETE FROM view_member WHERE object_type = ? AND object_id = ?",
		} {
			if _, err := tx.Exec(stmt, vt, id); err != nil {
				return err
			}
		}
		if v.Audited {
			return c.auditTx(tx, ObjectView, v.ID, "delete", dn, v.Name, op.requestID)
		}
		return nil
	})
}
