package core

import "testing"

// Audited writes must carry the caller's request correlation ID into the
// audit log when one is supplied, and leave it empty otherwise.
func TestAuditRecordsCarryRequestID(t *testing.T) {
	c, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	dn := "/CN=auditor"

	if _, err := c.CreateFile(dn, FileSpec{Name: "f1", Audited: true}, WithRequestID("req-create")); err != nil {
		t.Fatal(err)
	}
	valid := false
	if _, err := c.UpdateFile(dn, "f1", 0, FileUpdate{Valid: &valid}, WithRequestID("req-update")); err != nil {
		t.Fatal(err)
	}
	recs, err := c.AuditLog(dn, ObjectFile, "f1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("audit records = %d", len(recs))
	}
	if recs[0].Action != "create" || recs[0].RequestID != "req-create" {
		t.Fatalf("create record = %+v", recs[0])
	}
	if recs[1].Action != "update" || recs[1].RequestID != "req-update" {
		t.Fatalf("update record = %+v", recs[1])
	}

	// Without the option the field stays empty (embedded use).
	if _, err := c.CreateFile(dn, FileSpec{Name: "f2", Audited: true}); err != nil {
		t.Fatal(err)
	}
	recs, err = c.AuditLog(dn, ObjectFile, "f2")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].RequestID != "" {
		t.Fatalf("records = %+v", recs)
	}

	// Collections and views thread the ID too.
	if _, err := c.CreateCollection(dn, CollectionSpec{Name: "coll", Audited: true}, WithRequestID("req-coll")); err != nil {
		t.Fatal(err)
	}
	recs, err = c.AuditLog(dn, ObjectCollection, "coll")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].RequestID != "req-coll" {
		t.Fatalf("collection records = %+v", recs)
	}
	if _, err := c.CreateView(dn, ViewSpec{Name: "v", Audited: true}, WithRequestID("req-view")); err != nil {
		t.Fatal(err)
	}
	if err := c.AddToView(dn, "v", ObjectFile, "f1", WithRequestID("req-member")); err != nil {
		t.Fatal(err)
	}
	recs, err = c.AuditLog(dn, ObjectView, "v")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].RequestID != "req-view" || recs[1].RequestID != "req-member" {
		t.Fatalf("view records = %+v", recs)
	}
}
