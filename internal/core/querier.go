package core

import "mcs/internal/sqldb"

// querier is the read interface shared by *sqldb.DB and *sqldb.Tx. Catalog
// read helpers are written against it so the same lookup code serves two
// regimes: ordinary operations read the last committed MVCC root through
// the database (wait-free, and eligible for the epoch-versioned caches in
// cache.go), while BatchWrite reads through its open transaction — not for
// locking, since database reads never block behind a writer anymore, but
// because the batch must observe its own uncommitted writes, which only
// the transaction's shadow root holds.
type querier interface {
	Query(sql string, args ...sqldb.Value) (*sqldb.Rows, error)
}

var (
	_ querier = (*sqldb.DB)(nil)
	_ querier = (*sqldb.Tx)(nil)
)
