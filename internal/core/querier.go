package core

import "mcs/internal/sqldb"

// querier is the read interface shared by *sqldb.DB and *sqldb.Tx. Catalog
// read helpers are written against it so the same lookup code serves two
// regimes: ordinary operations read through the database (shared read lock),
// while BatchWrite reads through its open transaction — the database's write
// lock is held for the whole batch and is not reentrant, so any read through
// c.db.Query from inside the transaction would deadlock.
type querier interface {
	Query(sql string, args ...sqldb.Value) (*sqldb.Rows, error)
}

var (
	_ querier = (*sqldb.DB)(nil)
	_ querier = (*sqldb.Tx)(nil)
)
