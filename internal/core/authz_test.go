package core

import (
	"errors"
	"testing"
)

func TestAuthzServiceLevelCreate(t *testing.T) {
	c := openAuthzCatalog(t)
	// Alice has no grants: create must fail.
	if _, err := c.CreateFile(alice, FileSpec{Name: "f"}); !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v, want ErrDenied", err)
	}
	// Admin (owner) may grant Alice service create.
	if err := c.Grant(admin, ObjectService, "", alice, PermCreate); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateFile(alice, FileSpec{Name: "f"}); err != nil {
		t.Fatal(err)
	}
}

func setupAuthz(t *testing.T) *Catalog {
	t.Helper()
	c := openAuthzCatalog(t)
	for _, dn := range []string{alice, bob} {
		if err := c.Grant(admin, ObjectService, "", dn, PermCreate); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestAuthzCreatorHasAllPermissions(t *testing.T) {
	c := setupAuthz(t)
	c.CreateFile(alice, FileSpec{Name: "af"}) //nolint:errcheck
	// Creator can read, update, annotate, delete.
	if _, err := c.GetFile(alice, "af", 0); err != nil {
		t.Fatal(err)
	}
	dt := "xml"
	if _, err := c.UpdateFile(alice, "af", 0, FileUpdate{DataType: &dt}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Annotate(alice, ObjectFile, "af", "mine"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteFile(alice, "af", 0); err != nil {
		t.Fatal(err)
	}
}

func TestAuthzOtherUserDenied(t *testing.T) {
	c := setupAuthz(t)
	c.CreateFile(alice, FileSpec{Name: "af"}) //nolint:errcheck
	if _, err := c.GetFile(bob, "af", 0); !errors.Is(err, ErrDenied) {
		t.Fatalf("read err = %v", err)
	}
	dt := "xml"
	if _, err := c.UpdateFile(bob, "af", 0, FileUpdate{DataType: &dt}); !errors.Is(err, ErrDenied) {
		t.Fatalf("write err = %v", err)
	}
	if err := c.DeleteFile(bob, "af", 0); !errors.Is(err, ErrDenied) {
		t.Fatalf("delete err = %v", err)
	}
}

func TestAuthzDirectGrantOnFile(t *testing.T) {
	c := setupAuthz(t)
	c.CreateFile(alice, FileSpec{Name: "af"}) //nolint:errcheck
	if err := c.Grant(alice, ObjectFile, "af", bob, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetFile(bob, "af", 0); err != nil {
		t.Fatal(err)
	}
	// Read does not imply write.
	dt := "xml"
	if _, err := c.UpdateFile(bob, "af", 0, FileUpdate{DataType: &dt}); !errors.Is(err, ErrDenied) {
		t.Fatalf("write err = %v", err)
	}
	// Revoke restores denial.
	if err := c.Revoke(alice, ObjectFile, "af", bob, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetFile(bob, "af", 0); !errors.Is(err, ErrDenied) {
		t.Fatalf("post-revoke read err = %v", err)
	}
}

func TestAuthzCollectionInheritance(t *testing.T) {
	c := setupAuthz(t)
	c.CreateCollection(alice, CollectionSpec{Name: "root"})                //nolint:errcheck
	c.CreateCollection(alice, CollectionSpec{Name: "sub", Parent: "root"}) //nolint:errcheck
	c.CreateFile(alice, FileSpec{Name: "deep", Collection: "sub"})         //nolint:errcheck
	// Grant read on the ROOT collection; it must flow down to the file
	// through the hierarchy (union-of-permissions rule).
	if err := c.Grant(alice, ObjectCollection, "root", bob, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetFile(bob, "deep", 0); err != nil {
		t.Fatalf("inherited read failed: %v", err)
	}
	// Sub-collection readable too.
	if _, err := c.GetCollection(bob, "sub"); err != nil {
		t.Fatalf("inherited collection read failed: %v", err)
	}
	// But write is not inherited from a read grant.
	dt := "x"
	if _, err := c.UpdateFile(bob, "deep", 0, FileUpdate{DataType: &dt}); !errors.Is(err, ErrDenied) {
		t.Fatalf("write err = %v", err)
	}
}

func TestAuthzUnionSemantics(t *testing.T) {
	c := setupAuthz(t)
	c.CreateCollection(alice, CollectionSpec{Name: "col"})      //nolint:errcheck
	c.CreateFile(alice, FileSpec{Name: "f", Collection: "col"}) //nolint:errcheck
	// Read granted on file, write granted on collection: bob has both
	// (effective set is the union).
	c.Grant(alice, ObjectFile, "f", bob, PermRead)          //nolint:errcheck
	c.Grant(alice, ObjectCollection, "col", bob, PermWrite) //nolint:errcheck
	if _, err := c.GetFile(bob, "f", 0); err != nil {
		t.Fatal(err)
	}
	dt := "x"
	if _, err := c.UpdateFile(bob, "f", 0, FileUpdate{DataType: &dt}); err != nil {
		t.Fatalf("union write failed: %v", err)
	}
}

func TestAuthzViewsDoNotAffectAuthorization(t *testing.T) {
	c := setupAuthz(t)
	c.CreateFile(alice, FileSpec{Name: "private"}) //nolint:errcheck
	c.CreateView(bob, ViewSpec{Name: "bobs-view"}) //nolint:errcheck
	// Bob cannot use a view to gain access: adding requires read on the file.
	if err := c.AddToView(bob, "bobs-view", ObjectFile, "private"); !errors.Is(err, ErrDenied) {
		t.Fatalf("add err = %v", err)
	}
	// Even if alice adds her file to bob's view (with permission on view)...
	c.Grant(bob, ObjectView, "bobs-view", alice, PermWrite) //nolint:errcheck
	if err := c.AddToView(alice, "bobs-view", ObjectFile, "private"); err != nil {
		t.Fatal(err)
	}
	// ...bob still cannot read the file itself.
	if _, err := c.GetFile(bob, "private", 0); !errors.Is(err, ErrDenied) {
		t.Fatalf("view leaked access: %v", err)
	}
}

func TestAuthzQueryFiltersResults(t *testing.T) {
	c := setupAuthz(t)
	c.DefineAttribute(admin, "tag", AttrString, "") //nolint:errcheck
	c.CreateFile(alice, FileSpec{Name: "a-file",
		Attributes: []Attribute{{"tag", String("x")}}}) //nolint:errcheck
	c.CreateFile(bob, FileSpec{Name: "b-file",
		Attributes: []Attribute{{"tag", String("x")}}}) //nolint:errcheck
	names, err := c.RunQuery(alice, Query{Predicates: []Predicate{
		{"tag", OpEq, String("x")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "a-file" {
		t.Fatalf("filtered query = %v", names)
	}
	// Admin sees everything.
	names, _ = c.RunQuery(admin, Query{Predicates: []Predicate{
		{"tag", OpEq, String("x")},
	}})
	if len(names) != 2 {
		t.Fatalf("admin query = %v", names)
	}
}

func TestAuthzGrantRequiresWrite(t *testing.T) {
	c := setupAuthz(t)
	c.CreateFile(alice, FileSpec{Name: "af"}) //nolint:errcheck
	// Bob cannot grant himself access.
	if err := c.Grant(bob, ObjectFile, "af", bob, PermRead); !errors.Is(err, ErrDenied) {
		t.Fatalf("self-grant err = %v", err)
	}
}

func TestAuthzOwnerBypasses(t *testing.T) {
	c := setupAuthz(t)
	c.CreateFile(alice, FileSpec{Name: "af"}) //nolint:errcheck
	if _, err := c.GetFile(admin, "af", 0); err != nil {
		t.Fatalf("owner read failed: %v", err)
	}
	if err := c.DeleteFile(admin, "af", 0); err != nil {
		t.Fatalf("owner delete failed: %v", err)
	}
}

func TestAuthzDisabledAllowsAll(t *testing.T) {
	c := openCatalog(t)
	c.CreateFile(alice, FileSpec{Name: "f"}) //nolint:errcheck
	if _, err := c.GetFile(bob, "f", 0); err != nil {
		t.Fatalf("authz-off read failed: %v", err)
	}
}

func TestAuthzRequiresOwner(t *testing.T) {
	if _, err := Open(Options{EnforceAuthz: true}); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("err = %v", err)
	}
}

func TestPermissionsListing(t *testing.T) {
	c := setupAuthz(t)
	c.CreateFile(alice, FileSpec{Name: "f"})           //nolint:errcheck
	c.Grant(alice, ObjectFile, "f", bob, PermRead)     //nolint:errcheck
	c.Grant(alice, ObjectFile, "f", bob, PermAnnotate) //nolint:errcheck
	perms, err := c.Permissions(alice, ObjectFile, "f")
	if err != nil {
		t.Fatal(err)
	}
	if len(perms[bob]) != 2 {
		t.Fatalf("perms = %v", perms)
	}
	// Idempotent re-grant does not duplicate.
	c.Grant(alice, ObjectFile, "f", bob, PermRead) //nolint:errcheck
	perms, _ = c.Permissions(alice, ObjectFile, "f")
	if len(perms[bob]) != 2 {
		t.Fatalf("re-grant duplicated: %v", perms)
	}
}

func TestInvalidPermissionRejected(t *testing.T) {
	c := setupAuthz(t)
	c.CreateFile(alice, FileSpec{Name: "f"}) //nolint:errcheck
	if err := c.Grant(alice, ObjectFile, "f", bob, Permission("fly")); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("err = %v", err)
	}
}
