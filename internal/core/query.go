package core

import (
	"fmt"
	"sort"
	"strings"

	"mcs/internal/sqldb"
)

// The attribute-based discovery engine. A query is a conjunction of
// predicates over predefined (static) attributes and user-defined
// attributes; the result is the set of logical names whose metadata
// matches — step (1)/(2) of the paper's Figure 2 scenario.
//
// Query compilation keeps the relational shape the original MCS server
// used against MySQL: static predicates filter the object table directly;
// each user-defined attribute predicate becomes one join against the
// user_attribute table, so an N-attribute "complex query" is an N-way
// self-join. How that join executes is the engine's business, not this
// package's: sqldb's cost-based planner turns the equi-join conjunction
// into per-attribute probes of the (attr_id, object_type, value,
// object_id) covering indexes combined by sorted-rowid intersection,
// ordered most-selective-first from index cardinality stats — which is
// what keeps Fig. 11 flat instead of cliff-shaped as N grows. ExplainQuery
// exposes the generated SQL so tests can pin the chosen plan via EXPLAIN.

// targetTable returns the object table and alias for a query target.
func targetTable(t ObjectType) (string, error) {
	switch t {
	case ObjectFile, "":
		return "logical_file", nil
	case ObjectCollection:
		return "logical_collection", nil
	case ObjectView:
		return "logical_view", nil
	}
	return "", fmt.Errorf("%w: query target %q", ErrInvalidInput, t)
}

// staticColumnFor resolves a static attribute name for the given target.
func staticColumnFor(target ObjectType, attr string) (column string, typ AttrType, ok bool) {
	if target == ObjectFile || target == "" {
		sc, ok := staticFileColumns[attr]
		return sc.column, sc.typ, ok
	}
	// Collections and views share a small static vocabulary.
	switch attr {
	case "name", "description", "creator", "lastModifier":
		cols := map[string]string{
			"name": "name", "description": "description",
			"creator": "creator", "lastModifier": "last_modifier",
		}
		return cols[attr], AttrString, true
	}
	return "", "", false
}

// staticTypeCompatible reports whether a predicate value of type got can
// meaningfully compare against a static column of type want (numeric types
// interconvert; everything else must match exactly).
func staticTypeCompatible(want, got AttrType) bool {
	if want == got {
		return true
	}
	numeric := func(t AttrType) bool { return t == AttrInt || t == AttrFloat }
	if numeric(want) && numeric(got) {
		return true
	}
	// The datetime-ish static columns accept any of the three time kinds.
	timeish := func(t AttrType) bool { return t == AttrDate || t == AttrTime || t == AttrDateTime }
	return timeish(want) && timeish(got)
}

// sqlOp maps a query operator to its SQL spelling.
func sqlOp(op Op) (string, error) {
	switch op {
	case OpEq:
		return "=", nil
	case OpNe:
		return "!=", nil
	case OpLt, OpLe, OpGt, OpGe:
		return string(op), nil
	case OpLike:
		return "LIKE", nil
	}
	return "", fmt.Errorf("%w: operator %q", ErrInvalidInput, op)
}

// compileQuery translates a Query into SQL and its parameters.
func (c *Catalog) compileQuery(q Query) (string, []sqldb.Value, error) {
	return c.compileQueryEx(q, "", 0)
}

// compileQueryEx is compileQuery with an optional pagination window: when
// pageSize > 0 the result is restricted to names strictly after `after`,
// ordered by name, at most pageSize rows — the stateless cursor behind
// RunQueryPage.
func (c *Catalog) compileQueryEx(q Query, after string, pageSize int) (string, []sqldb.Value, error) {
	target := q.Target
	if target == "" {
		target = ObjectFile
	}
	table, err := targetTable(target)
	if err != nil {
		return "", nil, err
	}

	type userPred struct {
		def AttributeDef
		op  string
		val sqldb.Value
	}
	var staticConds []string
	var staticArgs []sqldb.Value
	var userPreds []userPred

	for _, p := range q.Predicates {
		op, err := sqlOp(p.Op)
		if err != nil {
			return "", nil, err
		}
		if col, typ, ok := staticColumnFor(target, p.Attribute); ok {
			v := p.Value.sqlValue()
			// The valid flag is stored as BOOLEAN; accept int 0/1 predicates.
			if p.Attribute == "valid" {
				v = sqldb.Bool(p.Value.I != 0)
			} else if !staticTypeCompatible(typ, p.Value.Type) {
				return "", nil, fmt.Errorf("%w: static attribute %q is %s, predicate value is %s",
					ErrInvalidInput, p.Attribute, typ, p.Value.Type)
			}
			staticConds = append(staticConds, fmt.Sprintf("t.%s %s ?", col, op))
			staticArgs = append(staticArgs, v)
			continue
		}
		def, err := c.GetAttributeDef(p.Attribute)
		if err != nil {
			return "", nil, err
		}
		if def.Type != p.Value.Type {
			return "", nil, fmt.Errorf("%w: attribute %q is %s, predicate value is %s",
				ErrInvalidInput, p.Attribute, def.Type, p.Value.Type)
		}
		userPreds = append(userPreds, userPred{def: def, op: op, val: p.Value.sqlValue()})
	}

	if pageSize > 0 && after != "" {
		staticConds = append(staticConds, "t.name > ?")
		staticArgs = append(staticArgs, sqldb.Text(after))
	}

	var sb strings.Builder
	var args []sqldb.Value
	if len(userPreds) == 0 {
		sb.WriteString("SELECT t.name FROM " + table + " t")
		if len(staticConds) > 0 {
			sb.WriteString(" WHERE " + strings.Join(staticConds, " AND "))
			args = append(args, staticArgs...)
		}
	} else {
		// a0 drives the scan through the (attr_id, value) index; the object
		// table and the remaining attribute instances join off it.
		sb.WriteString("SELECT DISTINCT t.name FROM user_attribute a0")
		sb.WriteString(" JOIN " + table + " t ON t.id = a0.object_id")
		for i := 1; i < len(userPreds); i++ {
			fmt.Fprintf(&sb, " JOIN user_attribute a%d ON a%d.object_id = a0.object_id", i, i)
		}
		var conds []string
		for i, up := range userPreds {
			a := fmt.Sprintf("a%d", i)
			conds = append(conds, fmt.Sprintf("%s.object_type = ?", a))
			args = append(args, sqldb.Text(string(target)))
			conds = append(conds, fmt.Sprintf("%s.attr_id = ?", a))
			args = append(args, sqldb.Int(up.def.ID))
			conds = append(conds, fmt.Sprintf("%s.%s %s ?", a, up.def.Type.storageColumn(), up.op))
			args = append(args, up.val)
		}
		conds = append(conds, staticConds...)
		args = append(args, staticArgs...)
		sb.WriteString(" WHERE " + strings.Join(conds, " AND "))
	}
	if pageSize > 0 {
		fmt.Fprintf(&sb, " ORDER BY t.name LIMIT %d", pageSize)
	} else if q.Limit > 0 {
		fmt.Fprintf(&sb, " LIMIT %d", q.Limit)
	}
	return sb.String(), args, nil
}

// RunQuery executes an attribute-based query and returns the matching
// logical names. With authorization enabled, names the caller may not read
// are filtered from the result.
func (c *Catalog) RunQuery(dn string, q Query) ([]string, error) {
	sql, args, err := c.compileQuery(q)
	if err != nil {
		return nil, err
	}
	rows, err := c.db.Query(sql, args...)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(rows.Data))
	for _, r := range rows.Data {
		names = append(names, r[0].S)
	}
	if !c.authz {
		return names, nil
	}
	target := q.Target
	if target == "" {
		target = ObjectFile
	}
	table, err := targetTable(target)
	if err != nil {
		return nil, err
	}
	// Resolve every matched name with IN-list batches instead of one lookup
	// per name; the per-object permission checks that follow are memoized in
	// the epoch-versioned authorization cache.
	idsByName, err := c.objectIDsByName(table, names)
	if err != nil {
		return nil, err
	}
	visible := names[:0]
	for _, name := range names {
		ids := idsByName[name]
		// Zero ids: the name vanished since the match. Several ids: a file
		// name with multiple versions, unresolvable without an explicit
		// version. Both were skipped by the per-name path too.
		if len(ids) != 1 {
			continue
		}
		ok, err := c.allowed(dn, target, ids[0], PermRead)
		if err != nil {
			return nil, err
		}
		if ok {
			visible = append(visible, name)
		}
	}
	return visible, nil
}

// inChunkMax caps the width of one IN-list batch statement.
const inChunkMax = 1024

// inChunks invokes fn over items in IN-list-sized chunks, each padded to a
// power-of-two length by repeating the last element, so the engine's
// prepared-statement cache sees a handful of SQL shapes instead of one per
// distinct item count. The planner deduplicates IN values, making the
// padding free.
func inChunks[T any](items []T, fn func(chunk []T) error) error {
	for start := 0; start < len(items); start += inChunkMax {
		end := start + inChunkMax
		if end > len(items) {
			end = len(items)
		}
		chunk := items[start:end]
		n := 1
		for n < len(chunk) {
			n <<= 1
		}
		if n > len(chunk) {
			padded := make([]T, n)
			copy(padded, chunk)
			for i := len(chunk); i < n; i++ {
				padded[i] = chunk[len(chunk)-1]
			}
			chunk = padded
		}
		if err := fn(chunk); err != nil {
			return err
		}
	}
	return nil
}

// placeholders returns "?, ?, ..., ?" with n markers.
func placeholders(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteByte('?')
	}
	return sb.String()
}

// objectIDsByName maps each name to its object IDs in table. Multi-version
// file names map to several IDs; absent names are absent from the map.
func (c *Catalog) objectIDsByName(table string, names []string) (map[string][]int64, error) {
	out := make(map[string][]int64, len(names))
	err := inChunks(names, func(chunk []string) error {
		args := make([]sqldb.Value, len(chunk))
		for i, n := range chunk {
			args[i] = sqldb.Text(n)
		}
		rows, err := c.db.Query(
			"SELECT name, id FROM "+table+" WHERE name IN ("+placeholders(len(chunk))+")", args...)
		if err != nil {
			return err
		}
		for _, r := range rows.Data {
			out[r[0].S] = append(out[r[0].S], r[1].Int())
		}
		return nil
	})
	return out, err
}

// attributesBatch fetches the user-defined attributes of many objects in
// IN-list batches, grouped by object ID and sorted by attribute name — the
// hydration half of RunQueryAttrs without its former query per name.
func (c *Catalog) attributesBatch(objType ObjectType, ids []int64) (map[int64][]Attribute, error) {
	uniq := make([]int64, 0, len(ids))
	seen := make(map[int64]bool, len(ids))
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			uniq = append(uniq, id)
		}
	}
	out := make(map[int64][]Attribute, len(uniq))
	err := inChunks(uniq, func(chunk []int64) error {
		args := make([]sqldb.Value, 0, len(chunk)+1)
		args = append(args, sqldb.Text(string(objType)))
		for _, id := range chunk {
			args = append(args, sqldb.Int(id))
		}
		rows, err := c.db.Query(`SELECT ua.object_id, d.name, d.type, ua.sval, ua.ival, ua.fval, ua.tval
			FROM user_attribute ua JOIN attribute_def d ON d.id = ua.attr_id
			WHERE ua.object_type = ? AND ua.object_id IN (`+placeholders(len(chunk))+`)`, args...)
		if err != nil {
			return err
		}
		for _, r := range rows.Data {
			out[r[0].Int()] = append(out[r[0].Int()], decodeAttrRow(r[1:]))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for id := range out {
		sortAttrs(out[id])
	}
	return out, nil
}

// QueryResult couples one matched logical name with the values of the
// attributes the caller asked to be returned.
type QueryResult struct {
	Name       string
	Attributes []Attribute
}

// RunQueryAttrs executes a query and, per the requirements of section 3 of
// the paper ("queries must also return the values of one or more additional
// metadata attributes associated with the logical name attribute"), fetches
// the named user-defined attributes of every match. Attributes a match does
// not carry are simply absent from its result.
func (c *Catalog) RunQueryAttrs(dn string, q Query, returnAttrs []string) ([]QueryResult, error) {
	names, err := c.RunQuery(dn, q)
	if err != nil {
		return nil, err
	}
	target := q.Target
	if target == "" {
		target = ObjectFile
	}
	want := make(map[string]bool, len(returnAttrs))
	for _, a := range returnAttrs {
		if _, err := c.GetAttributeDef(a); err != nil {
			return nil, err
		}
		want[a] = true
	}
	out := make([]QueryResult, 0, len(names))
	if len(want) == 0 || len(names) == 0 {
		for _, name := range names {
			out = append(out, QueryResult{Name: name})
		}
		return out, nil
	}
	// Hydrate all matches with two IN-list batches (resolve names, then
	// fetch attributes) instead of one GetAttributes round per name. The
	// per-name semantics are preserved: an unresolvable or unreadable name
	// fails the call exactly as GetAttributes did.
	table, err := targetTable(target)
	if err != nil {
		return nil, err
	}
	idsByName, err := c.objectIDsByName(table, names)
	if err != nil {
		return nil, err
	}
	ids := make([]int64, 0, len(names))
	for _, name := range names {
		resolved := idsByName[name]
		if len(resolved) == 0 {
			return nil, fmt.Errorf("%w: %s %q", ErrNotFound, target, name)
		}
		if len(resolved) > 1 {
			return nil, fmt.Errorf("%w: file %q has %d versions", ErrAmbiguousFile, name, len(resolved))
		}
		if err := c.requireObject(dn, target, resolved[0], PermRead); err != nil {
			return nil, err
		}
		ids = append(ids, resolved[0])
	}
	attrsByID, err := c.attributesBatch(target, ids)
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		res := QueryResult{Name: name}
		for _, a := range attrsByID[ids[i]] {
			if want[a.Name] {
				res.Attributes = append(res.Attributes, a)
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// QueryFiles runs a file-targeted query and loads the full static metadata
// of each match.
func (c *Catalog) QueryFiles(dn string, q Query) ([]File, error) {
	q.Target = ObjectFile
	names, err := c.RunQuery(dn, q)
	if err != nil {
		return nil, err
	}
	// Load every version of every match in IN-list batches, then regroup
	// per name (versions ascending) with the same per-version read
	// filtering FileVersions applies.
	uniq := make([]string, 0, len(names))
	seenName := make(map[string]bool, len(names))
	for _, name := range names {
		if !seenName[name] {
			seenName[name] = true
			uniq = append(uniq, name)
		}
	}
	byName := make(map[string][]File, len(uniq))
	err = inChunks(uniq, func(chunk []string) error {
		args := make([]sqldb.Value, len(chunk))
		for i, n := range chunk {
			args[i] = sqldb.Text(n)
		}
		rows, err := c.db.Query(
			"SELECT "+fileColumns+" FROM logical_file WHERE name IN ("+placeholders(len(chunk))+")", args...)
		if err != nil {
			return err
		}
		for _, row := range rows.Data {
			f := scanFile(row)
			byName[f.Name] = append(byName[f.Name], f)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, vs := range byName {
		sort.Slice(vs, func(i, j int) bool { return vs[i].Version < vs[j].Version })
	}
	files := make([]File, 0, len(names))
	for _, name := range names {
		for _, f := range byName[name] {
			if ok, err := c.allowed(dn, ObjectFile, f.ID, PermRead); err == nil && ok {
				files = append(files, f)
			}
		}
	}
	return files, nil
}

// ExplainQuery exposes the compiled SQL of a query (diagnostics, tests and
// the ablation benchmarks).
func (c *Catalog) ExplainQuery(q Query) (string, error) {
	sql, _, err := c.compileQuery(q)
	return sql, err
}
