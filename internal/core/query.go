package core

import (
	"fmt"
	"strings"

	"mcs/internal/sqldb"
)

// The attribute-based discovery engine. A query is a conjunction of
// predicates over predefined (static) attributes and user-defined
// attributes; the result is the set of logical names whose metadata
// matches — step (1)/(2) of the paper's Figure 2 scenario.
//
// Query compilation mirrors what the original MCS server did against MySQL:
// static predicates filter the object table directly; each user-defined
// attribute predicate becomes one join against the user_attribute table,
// so an N-attribute "complex query" is an N-way self-join. The first
// user-attribute predicate drives the access path through the
// (attr_id, value) index; subsequent instances join on object_id.

// targetTable returns the object table and alias for a query target.
func targetTable(t ObjectType) (string, error) {
	switch t {
	case ObjectFile, "":
		return "logical_file", nil
	case ObjectCollection:
		return "logical_collection", nil
	case ObjectView:
		return "logical_view", nil
	}
	return "", fmt.Errorf("%w: query target %q", ErrInvalidInput, t)
}

// staticColumnFor resolves a static attribute name for the given target.
func staticColumnFor(target ObjectType, attr string) (column string, typ AttrType, ok bool) {
	if target == ObjectFile || target == "" {
		sc, ok := staticFileColumns[attr]
		return sc.column, sc.typ, ok
	}
	// Collections and views share a small static vocabulary.
	switch attr {
	case "name", "description", "creator", "lastModifier":
		cols := map[string]string{
			"name": "name", "description": "description",
			"creator": "creator", "lastModifier": "last_modifier",
		}
		return cols[attr], AttrString, true
	}
	return "", "", false
}

// staticTypeCompatible reports whether a predicate value of type got can
// meaningfully compare against a static column of type want (numeric types
// interconvert; everything else must match exactly).
func staticTypeCompatible(want, got AttrType) bool {
	if want == got {
		return true
	}
	numeric := func(t AttrType) bool { return t == AttrInt || t == AttrFloat }
	if numeric(want) && numeric(got) {
		return true
	}
	// The datetime-ish static columns accept any of the three time kinds.
	timeish := func(t AttrType) bool { return t == AttrDate || t == AttrTime || t == AttrDateTime }
	return timeish(want) && timeish(got)
}

// sqlOp maps a query operator to its SQL spelling.
func sqlOp(op Op) (string, error) {
	switch op {
	case OpEq:
		return "=", nil
	case OpNe:
		return "!=", nil
	case OpLt, OpLe, OpGt, OpGe:
		return string(op), nil
	case OpLike:
		return "LIKE", nil
	}
	return "", fmt.Errorf("%w: operator %q", ErrInvalidInput, op)
}

// compileQuery translates a Query into SQL and its parameters.
func (c *Catalog) compileQuery(q Query) (string, []sqldb.Value, error) {
	return c.compileQueryEx(q, "", 0)
}

// compileQueryEx is compileQuery with an optional pagination window: when
// pageSize > 0 the result is restricted to names strictly after `after`,
// ordered by name, at most pageSize rows — the stateless cursor behind
// RunQueryPage.
func (c *Catalog) compileQueryEx(q Query, after string, pageSize int) (string, []sqldb.Value, error) {
	target := q.Target
	if target == "" {
		target = ObjectFile
	}
	table, err := targetTable(target)
	if err != nil {
		return "", nil, err
	}

	type userPred struct {
		def AttributeDef
		op  string
		val sqldb.Value
	}
	var staticConds []string
	var staticArgs []sqldb.Value
	var userPreds []userPred

	for _, p := range q.Predicates {
		op, err := sqlOp(p.Op)
		if err != nil {
			return "", nil, err
		}
		if col, typ, ok := staticColumnFor(target, p.Attribute); ok {
			v := p.Value.sqlValue()
			// The valid flag is stored as BOOLEAN; accept int 0/1 predicates.
			if p.Attribute == "valid" {
				v = sqldb.Bool(p.Value.I != 0)
			} else if !staticTypeCompatible(typ, p.Value.Type) {
				return "", nil, fmt.Errorf("%w: static attribute %q is %s, predicate value is %s",
					ErrInvalidInput, p.Attribute, typ, p.Value.Type)
			}
			staticConds = append(staticConds, fmt.Sprintf("t.%s %s ?", col, op))
			staticArgs = append(staticArgs, v)
			continue
		}
		def, err := c.GetAttributeDef(p.Attribute)
		if err != nil {
			return "", nil, err
		}
		if def.Type != p.Value.Type {
			return "", nil, fmt.Errorf("%w: attribute %q is %s, predicate value is %s",
				ErrInvalidInput, p.Attribute, def.Type, p.Value.Type)
		}
		userPreds = append(userPreds, userPred{def: def, op: op, val: p.Value.sqlValue()})
	}

	if pageSize > 0 && after != "" {
		staticConds = append(staticConds, "t.name > ?")
		staticArgs = append(staticArgs, sqldb.Text(after))
	}

	var sb strings.Builder
	var args []sqldb.Value
	if len(userPreds) == 0 {
		sb.WriteString("SELECT t.name FROM " + table + " t")
		if len(staticConds) > 0 {
			sb.WriteString(" WHERE " + strings.Join(staticConds, " AND "))
			args = append(args, staticArgs...)
		}
	} else {
		// a0 drives the scan through the (attr_id, value) index; the object
		// table and the remaining attribute instances join off it.
		sb.WriteString("SELECT DISTINCT t.name FROM user_attribute a0")
		sb.WriteString(" JOIN " + table + " t ON t.id = a0.object_id")
		for i := 1; i < len(userPreds); i++ {
			fmt.Fprintf(&sb, " JOIN user_attribute a%d ON a%d.object_id = a0.object_id", i, i)
		}
		var conds []string
		for i, up := range userPreds {
			a := fmt.Sprintf("a%d", i)
			conds = append(conds, fmt.Sprintf("%s.object_type = ?", a))
			args = append(args, sqldb.Text(string(target)))
			conds = append(conds, fmt.Sprintf("%s.attr_id = ?", a))
			args = append(args, sqldb.Int(up.def.ID))
			conds = append(conds, fmt.Sprintf("%s.%s %s ?", a, up.def.Type.storageColumn(), up.op))
			args = append(args, up.val)
		}
		conds = append(conds, staticConds...)
		args = append(args, staticArgs...)
		sb.WriteString(" WHERE " + strings.Join(conds, " AND "))
	}
	if pageSize > 0 {
		fmt.Fprintf(&sb, " ORDER BY t.name LIMIT %d", pageSize)
	} else if q.Limit > 0 {
		fmt.Fprintf(&sb, " LIMIT %d", q.Limit)
	}
	return sb.String(), args, nil
}

// RunQuery executes an attribute-based query and returns the matching
// logical names. With authorization enabled, names the caller may not read
// are filtered from the result.
func (c *Catalog) RunQuery(dn string, q Query) ([]string, error) {
	sql, args, err := c.compileQuery(q)
	if err != nil {
		return nil, err
	}
	rows, err := c.db.Query(sql, args...)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(rows.Data))
	for _, r := range rows.Data {
		names = append(names, r[0].S)
	}
	if !c.authz {
		return names, nil
	}
	target := q.Target
	if target == "" {
		target = ObjectFile
	}
	visible := names[:0]
	for _, name := range names {
		id, err := c.resolveObject(dn, target, name)
		if err != nil {
			continue
		}
		ok, err := c.allowed(dn, target, id, PermRead)
		if err != nil {
			return nil, err
		}
		if ok {
			visible = append(visible, name)
		}
	}
	return visible, nil
}

// QueryResult couples one matched logical name with the values of the
// attributes the caller asked to be returned.
type QueryResult struct {
	Name       string
	Attributes []Attribute
}

// RunQueryAttrs executes a query and, per the requirements of section 3 of
// the paper ("queries must also return the values of one or more additional
// metadata attributes associated with the logical name attribute"), fetches
// the named user-defined attributes of every match. Attributes a match does
// not carry are simply absent from its result.
func (c *Catalog) RunQueryAttrs(dn string, q Query, returnAttrs []string) ([]QueryResult, error) {
	names, err := c.RunQuery(dn, q)
	if err != nil {
		return nil, err
	}
	target := q.Target
	if target == "" {
		target = ObjectFile
	}
	want := make(map[string]bool, len(returnAttrs))
	for _, a := range returnAttrs {
		if _, err := c.GetAttributeDef(a); err != nil {
			return nil, err
		}
		want[a] = true
	}
	out := make([]QueryResult, 0, len(names))
	for _, name := range names {
		res := QueryResult{Name: name}
		if len(want) > 0 {
			attrs, err := c.GetAttributes(dn, target, name)
			if err != nil {
				return nil, err
			}
			for _, a := range attrs {
				if want[a.Name] {
					res.Attributes = append(res.Attributes, a)
				}
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// QueryFiles runs a file-targeted query and loads the full static metadata
// of each match.
func (c *Catalog) QueryFiles(dn string, q Query) ([]File, error) {
	q.Target = ObjectFile
	names, err := c.RunQuery(dn, q)
	if err != nil {
		return nil, err
	}
	files := make([]File, 0, len(names))
	for _, name := range names {
		vs, err := c.FileVersions(dn, name)
		if err != nil {
			continue
		}
		files = append(files, vs...)
	}
	return files, nil
}

// ExplainQuery exposes the compiled SQL of a query (diagnostics, tests and
// the ablation benchmarks).
func (c *Catalog) ExplainQuery(q Query) (string, error) {
	sql, _, err := c.compileQuery(q)
	return sql, err
}
