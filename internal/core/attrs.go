package core

import (
	"fmt"
	"sort"

	"mcs/internal/sqldb"
)

// DefineAttribute declares a new user-defined attribute usable on files,
// collections and views. This is the paper's extensibility mechanism for
// domain-specific, virtual-organization and user metadata ontologies.
func (c *Catalog) DefineAttribute(dn, name string, typ AttrType, description string, opts ...OpOption) (AttributeDef, error) {
	op := applyOpOptions(opts)
	if name == "" {
		return AttributeDef{}, fmt.Errorf("%w: attribute name required", ErrInvalidInput)
	}
	if !typ.Valid() {
		return AttributeDef{}, fmt.Errorf("%w: attribute type %q", ErrInvalidInput, typ)
	}
	if _, ok := staticFileColumns[name]; ok {
		return AttributeDef{}, fmt.Errorf("%w: %q shadows a predefined attribute", ErrInvalidInput, name)
	}
	if err := c.requireService(dn, PermCreate); err != nil {
		return AttributeDef{}, err
	}
	var out AttributeDef
	err := c.withReplay(op, "defineAttribute", &out, func(tx *sqldb.Tx) error {
		now := c.now()
		res, err := tx.Exec(
			"INSERT INTO attribute_def (name, type, description, creator, created) VALUES (?, ?, ?, ?, ?)",
			sqldb.Text(name), sqldb.Text(string(typ)), sqldb.Text(description), sqldb.Text(dn), now)
		if err != nil {
			return fmt.Errorf("%w: attribute %q", ErrExists, name)
		}
		out = AttributeDef{
			ID: res.LastInsertID, Name: name, Type: typ,
			Description: description, Creator: dn, Created: now.Time(),
		}
		return nil
	})
	if err != nil {
		return AttributeDef{}, err
	}
	return out, nil
}

// GetAttributeDef looks up a user-defined attribute declaration by name.
func (c *Catalog) GetAttributeDef(name string) (AttributeDef, error) {
	return c.getAttributeDefQ(c.db, name)
}

// getAttributeDefQ is GetAttributeDef reading through q.
func (c *Catalog) getAttributeDefQ(q querier, name string) (AttributeDef, error) {
	rows, err := q.Query(
		"SELECT id, name, type, description, creator, created FROM attribute_def WHERE name = ?",
		sqldb.Text(name))
	if err != nil {
		return AttributeDef{}, err
	}
	if len(rows.Data) == 0 {
		return AttributeDef{}, fmt.Errorf("%w: attribute %q", ErrNotFound, name)
	}
	r := rows.Data[0]
	return AttributeDef{
		ID: r[0].Int(), Name: r[1].S, Type: AttrType(r[2].S),
		Description: r[3].S, Creator: r[4].S, Created: r[5].Time(),
	}, nil
}

// ListAttributeDefs returns all user-defined attribute declarations, sorted
// by name.
func (c *Catalog) ListAttributeDefs() ([]AttributeDef, error) {
	rows, err := c.db.Query(
		"SELECT id, name, type, description, creator, created FROM attribute_def ORDER BY name")
	if err != nil {
		return nil, err
	}
	defs := make([]AttributeDef, 0, len(rows.Data))
	for _, r := range rows.Data {
		defs = append(defs, AttributeDef{
			ID: r[0].Int(), Name: r[1].S, Type: AttrType(r[2].S),
			Description: r[3].S, Creator: r[4].S, Created: r[5].Time(),
		})
	}
	return defs, nil
}

// attrDef resolves an attribute definition through q, memoizing in cache
// when one is supplied. BatchWrite passes a per-batch cache so a thousand
// creates with the same ten attributes cost ten definition lookups, not ten
// thousand.
func (c *Catalog) attrDef(q querier, cache map[string]AttributeDef, name string) (AttributeDef, error) {
	if cache != nil {
		if def, ok := cache[name]; ok {
			return def, nil
		}
	}
	def, err := c.getAttributeDefQ(q, name)
	if err == nil && cache != nil {
		cache[name] = def
	}
	return def, err
}

// resolveObject maps (type, name) to the object's ID, with a read check.
func (c *Catalog) resolveObject(dn string, objType ObjectType, name string) (int64, error) {
	return c.resolveMember(dn, objType, name)
}

// SetAttribute binds (or rebinds) a user-defined attribute value on an
// object. Replacement semantics: a second Set with the same attribute name
// overwrites the previous value.
func (c *Catalog) SetAttribute(dn string, objType ObjectType, objectName, attrName string, v AttrValue, opts ...OpOption) error {
	op := applyOpOptions(opts)
	return c.withReplay(op, "setAttribute", nil, func(tx *sqldb.Tx) error {
		return c.setAttributeTx(tx, dn, objType, objectName, attrName, v, nil)
	})
}

// setAttributeTx is SetAttribute inside an existing transaction; defs, when
// non-nil, memoizes attribute definitions across a batch.
func (c *Catalog) setAttributeTx(tx *sqldb.Tx, dn string, objType ObjectType, objectName, attrName string, v AttrValue, defs map[string]AttributeDef) error {
	def, err := c.attrDef(tx, defs, attrName)
	if err != nil {
		return err
	}
	if def.Type != v.Type {
		return fmt.Errorf("%w: attribute %q is %s, value is %s", ErrInvalidInput, attrName, def.Type, v.Type)
	}
	id, err := c.resolveMemberQ(tx, dn, objType, objectName)
	if err != nil {
		return err
	}
	if err := c.requireObjectQ(tx, dn, objType, id, PermWrite); err != nil {
		return err
	}
	if _, err := tx.Exec(
		"DELETE FROM user_attribute WHERE object_type = ? AND object_id = ? AND attr_id = ?",
		sqldb.Text(string(objType)), sqldb.Int(id), sqldb.Int(def.ID)); err != nil {
		return err
	}
	_, err = tx.Exec(fmt.Sprintf(
		"INSERT INTO user_attribute (object_type, object_id, attr_id, %s) VALUES (?, ?, ?, ?)",
		def.Type.storageColumn()),
		sqldb.Text(string(objType)), sqldb.Int(id), sqldb.Int(def.ID), v.sqlValue())
	return err
}

// UnsetAttribute removes a user-defined attribute from an object.
func (c *Catalog) UnsetAttribute(dn string, objType ObjectType, objectName, attrName string, opts ...OpOption) error {
	op := applyOpOptions(opts)
	def, err := c.GetAttributeDef(attrName)
	if err != nil {
		return err
	}
	id, err := c.resolveObject(dn, objType, objectName)
	if err != nil {
		return err
	}
	if err := c.requireObject(dn, objType, id, PermWrite); err != nil {
		return err
	}
	return c.withReplay(op, "unsetAttribute", nil, func(tx *sqldb.Tx) error {
		res, err := tx.Exec(
			"DELETE FROM user_attribute WHERE object_type = ? AND object_id = ? AND attr_id = ?",
			sqldb.Text(string(objType)), sqldb.Int(id), sqldb.Int(def.ID))
		if err != nil {
			return err
		}
		if res.RowsAffected == 0 {
			return fmt.Errorf("%w: attribute %q on %s %q", ErrNotFound, attrName, objType, objectName)
		}
		return nil
	})
}

// GetAttributes returns every user-defined attribute bound to an object,
// sorted by attribute name.
func (c *Catalog) GetAttributes(dn string, objType ObjectType, objectName string) ([]Attribute, error) {
	id, err := c.resolveObject(dn, objType, objectName)
	if err != nil {
		return nil, err
	}
	if err := c.requireObject(dn, objType, id, PermRead); err != nil {
		return nil, err
	}
	rows, err := c.db.Query(`SELECT d.name, d.type, ua.sval, ua.ival, ua.fval, ua.tval
		FROM user_attribute ua JOIN attribute_def d ON d.id = ua.attr_id
		WHERE ua.object_type = ? AND ua.object_id = ?`,
		sqldb.Text(string(objType)), sqldb.Int(id))
	if err != nil {
		return nil, err
	}
	attrs := make([]Attribute, 0, len(rows.Data))
	for _, r := range rows.Data {
		attrs = append(attrs, decodeAttrRow(r))
	}
	sortAttrs(attrs)
	return attrs, nil
}

// decodeAttrRow turns a (d.name, d.type, ua.sval, ua.ival, ua.fval, ua.tval)
// result row into an Attribute.
func decodeAttrRow(r []sqldb.Value) Attribute {
	typ := AttrType(r[1].S)
	var v AttrValue
	switch typ {
	case AttrString:
		v = String(r[2].S)
	case AttrInt:
		v = Int(r[3].Int())
	case AttrFloat:
		v = Float(r[4].Float())
	case AttrDate:
		v = AttrValue{Type: AttrDate, T: r[5].Time()}
	case AttrTime:
		v = AttrValue{Type: AttrTime, T: r[5].Time()}
	default:
		v = AttrValue{Type: AttrDateTime, T: r[5].Time()}
	}
	return Attribute{Name: r[0].S, Value: v}
}

func sortAttrs(attrs []Attribute) {
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].Name < attrs[j].Name })
}
