package core

import (
	"encoding/base64"
	"fmt"
	"strconv"
	"strings"

	"mcs/internal/sqldb"
)

// Continuation tokens are stateless cursors: an opaque base64url encoding of
// the last logical name the server scanned (plus a phase prefix for
// collection listings). The server keeps nothing between pages, so tokens
// survive restarts and can be resumed against any replica holding the same
// data. Because authorization filtering happens after the page is cut, a
// page may come back shorter than pageSize — or even empty — while the
// token is still non-empty; iteration ends only when the returned token is
// the empty string.

// DefaultPageSize bounds paged results when the caller does not pick a size.
const DefaultPageSize = 1000

func encodePageToken(cursor string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(cursor))
}

func decodePageToken(token string) (string, error) {
	if token == "" {
		return "", nil
	}
	b, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return "", fmt.Errorf("%w: malformed page token", ErrInvalidInput)
	}
	return string(b), nil
}

// RunQueryPage is RunQuery with bounded results: it returns at most pageSize
// matching names (ordered by name) and a continuation token for the next
// page ("" when the scan is exhausted). Query.Limit is ignored in paged
// mode. pageSize <= 0 selects DefaultPageSize.
func (c *Catalog) RunQueryPage(dn string, q Query, pageSize int, token string) ([]string, string, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	after, err := decodePageToken(token)
	if err != nil {
		return nil, "", err
	}
	sql, args, err := c.compileQueryEx(q, after, pageSize)
	if err != nil {
		return nil, "", err
	}
	rows, err := c.db.Query(sql, args...)
	if err != nil {
		return nil, "", err
	}
	names := make([]string, 0, len(rows.Data))
	for _, r := range rows.Data {
		names = append(names, r[0].S)
	}
	// The cursor advances over what was scanned, not what survives the
	// authorization filter below — otherwise a page of invisible names
	// would loop forever.
	next := ""
	if len(names) == pageSize {
		next = encodePageToken(names[len(names)-1])
	}
	if !c.authz {
		return names, next, nil
	}
	target := q.Target
	if target == "" {
		target = ObjectFile
	}
	visible := names[:0]
	for _, name := range names {
		id, err := c.resolveObject(dn, target, name)
		if err != nil {
			continue
		}
		ok, err := c.allowed(dn, target, id, PermRead)
		if err != nil {
			return nil, "", err
		}
		if ok {
			visible = append(visible, name)
		}
	}
	return visible, next, nil
}

// QueryFilesPage is QueryFiles with bounded results: one page of matching
// names, expanded to full static metadata (all versions of each name).
func (c *Catalog) QueryFilesPage(dn string, q Query, pageSize int, token string) ([]File, string, error) {
	q.Target = ObjectFile
	names, next, err := c.RunQueryPage(dn, q, pageSize, token)
	if err != nil {
		return nil, "", err
	}
	files := make([]File, 0, len(names))
	for _, name := range names {
		vs, err := c.FileVersions(dn, name)
		if err != nil {
			continue
		}
		files = append(files, vs...)
	}
	return files, next, nil
}

// Collection listing pages walk two phases under one cursor: first the
// sub-collections ("c|<last name>"), then the files ("f|<version>|<last
// name>" — files carry the version too, because several versions share one
// name and a page boundary may fall between them). A page may straddle the
// phase boundary.
const (
	pagePhaseCollections = "c|"
	pagePhaseFiles       = "f|"
)

// CollectionContentsPage is CollectionContents with bounded results. Each
// call returns up to pageSize entries (sub-collections first, then files,
// both ordered by name) and a continuation token ("" when done).
func (c *Catalog) CollectionContentsPage(dn, name string, pageSize int, token string) (files []File, subs []Collection, next string, err error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	col, err := c.GetCollection(dn, name)
	if err != nil {
		return nil, nil, "", err
	}
	cursor, err := decodePageToken(token)
	if err != nil {
		return nil, nil, "", err
	}
	phase, after, afterVersion := pagePhaseCollections, "", 0
	switch {
	case cursor == "":
	case strings.HasPrefix(cursor, pagePhaseCollections):
		after = cursor[len(pagePhaseCollections):]
	case strings.HasPrefix(cursor, pagePhaseFiles):
		phase = pagePhaseFiles
		rest := cursor[len(pagePhaseFiles):]
		sep := strings.IndexByte(rest, '|')
		if sep < 0 {
			return nil, nil, "", fmt.Errorf("%w: malformed page token", ErrInvalidInput)
		}
		v, verr := strconv.Atoi(rest[:sep])
		if verr != nil {
			return nil, nil, "", fmt.Errorf("%w: malformed page token", ErrInvalidInput)
		}
		after, afterVersion = rest[sep+1:], v
	default:
		return nil, nil, "", fmt.Errorf("%w: malformed page token", ErrInvalidInput)
	}

	budget := pageSize
	if phase == pagePhaseCollections {
		crows, err := c.db.Query(fmt.Sprintf(
			"SELECT "+collectionColumns+" FROM logical_collection WHERE parent_id = ? AND name > ? ORDER BY name LIMIT %d",
			budget), sqldb.Int(col.ID), sqldb.Text(after))
		if err != nil {
			return nil, nil, "", err
		}
		for _, row := range crows.Data {
			subs = append(subs, scanCollection(row))
		}
		if len(subs) == budget {
			return nil, subs, encodePageToken(pagePhaseCollections + subs[len(subs)-1].Name), nil
		}
		// Sub-collections exhausted: spend the rest of the page on files,
		// starting from the top of the file listing.
		budget -= len(subs)
		after, afterVersion = "", 0
	}
	frows, err := c.db.Query(fmt.Sprintf(
		"SELECT "+fileColumns+` FROM logical_file
		 WHERE collection_id = ? AND (name > ? OR (name = ? AND version > ?))
		 ORDER BY name, version LIMIT %d`, budget),
		sqldb.Int(col.ID), sqldb.Text(after), sqldb.Text(after), sqldb.Int(int64(afterVersion)))
	if err != nil {
		return nil, nil, "", err
	}
	for _, row := range frows.Data {
		files = append(files, scanFile(row))
	}
	if len(files) == budget {
		last := files[len(files)-1]
		next = encodePageToken(fmt.Sprintf("%s%d|%s", pagePhaseFiles, last.Version, last.Name))
	}
	return files, subs, next, nil
}
