package core

import (
	"errors"
	"testing"
)

func TestRunQueryAttrs(t *testing.T) {
	c := openCatalog(t)
	c.DefineAttribute(alice, "band", AttrString, "") //nolint:errcheck
	c.DefineAttribute(alice, "dur", AttrInt, "")     //nolint:errcheck
	c.CreateFile(alice, FileSpec{Name: "a", Attributes: []Attribute{
		{Name: "band", Value: String("high")}, {Name: "dur", Value: Int(30)},
	}}) //nolint:errcheck
	c.CreateFile(alice, FileSpec{Name: "b", Attributes: []Attribute{
		{Name: "band", Value: String("high")},
	}}) //nolint:errcheck

	results, err := c.RunQueryAttrs(alice, Query{Predicates: []Predicate{
		{Attribute: "band", Op: OpEq, Value: String("high")},
	}}, []string{"dur"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %v", results)
	}
	byName := map[string][]Attribute{}
	for _, r := range results {
		byName[r.Name] = r.Attributes
	}
	// File a carries dur; file b does not, so its result has no attributes.
	if len(byName["a"]) != 1 || byName["a"][0].Value.I != 30 {
		t.Fatalf("a attrs = %v", byName["a"])
	}
	if len(byName["b"]) != 0 {
		t.Fatalf("b attrs = %v", byName["b"])
	}

	// Empty return list degenerates to plain name results.
	results, err = c.RunQueryAttrs(alice, Query{Predicates: []Predicate{
		{Attribute: "band", Op: OpEq, Value: String("high")},
	}}, nil)
	if err != nil || len(results) != 2 || results[0].Attributes != nil {
		t.Fatalf("plain results = %v, %v", results, err)
	}

	// Unknown return attribute fails.
	if _, err := c.RunQueryAttrs(alice, Query{}, []string{"ghost"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunQueryAttrsOnCollections(t *testing.T) {
	c := openCatalog(t)
	c.DefineAttribute(alice, "project", AttrString, "") //nolint:errcheck
	c.CreateCollection(alice, CollectionSpec{Name: "col", Attributes: []Attribute{
		{Name: "project", Value: String("esg")},
	}}) //nolint:errcheck
	results, err := c.RunQueryAttrs(alice, Query{
		Target:     ObjectCollection,
		Predicates: []Predicate{{Attribute: "project", Op: OpEq, Value: String("esg")}},
	}, []string{"project"})
	if err != nil || len(results) != 1 || results[0].Name != "col" {
		t.Fatalf("results = %v, %v", results, err)
	}
	if len(results[0].Attributes) != 1 || results[0].Attributes[0].Value.S != "esg" {
		t.Fatalf("attrs = %v", results[0].Attributes)
	}
}

func TestStaticPredicateTypeChecked(t *testing.T) {
	c := openCatalog(t)
	c.CreateFile(alice, FileSpec{Name: "f"}) //nolint:errcheck
	// name is a string attribute; an int predicate value is a caller bug.
	if _, err := c.RunQuery(alice, Query{Predicates: []Predicate{
		{Attribute: "name", Op: OpEq, Value: Int(1)},
	}}); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("err = %v", err)
	}
	// version is int; float compares numerically and is accepted.
	if _, err := c.RunQuery(alice, Query{Predicates: []Predicate{
		{Attribute: "version", Op: OpEq, Value: Float(1)},
	}}); err != nil {
		t.Fatal(err)
	}
}
