package core

import (
	"fmt"
	"io"
	"time"

	"mcs/internal/sqldb"
)

// Snapshot writes the catalog's full contents (schema, rows, indexes) to w,
// from a consistent point-in-time view. Together with Restore it gives the
// in-memory engine the restart durability of the paper's MySQL backend.
func (c *Catalog) Snapshot(w io.Writer) error {
	return c.db.Dump(w)
}

// Restore opens a catalog from a stream written by Snapshot. Options are
// applied as in Open, except that the schema and any bootstrap ACL rows
// come from the snapshot rather than being re-created.
func Restore(opts Options, r io.Reader) (*Catalog, error) {
	if opts.EnforceAuthz && opts.Owner == "" {
		return nil, fmt.Errorf("%w: authorization requires an owner DN", ErrInvalidInput)
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	db := sqldb.New()
	if err := db.LoadSnapshot(r); err != nil {
		return nil, err
	}
	// Sanity-check that this snapshot carries an MCS schema.
	for _, required := range []string{"logical_file", "logical_collection", "user_attribute"} {
		if _, err := db.RowCount(required); err != nil {
			return nil, fmt.Errorf("mcs: snapshot lacks table %q: %w", required, err)
		}
	}
	// Snapshots taken before the replay cache existed gain the (empty)
	// table here, so idempotent retry keeps working across the upgrade.
	if _, err := db.Exec(replayTableDDL); err != nil {
		return nil, err
	}
	return &Catalog{db: db, opts: opts, authz: opts.EnforceAuthz}, nil
}
