package core

import (
	"fmt"
	"io"
	"time"

	"mcs/internal/sqldb"
)

// Snapshot writes the catalog's full contents (schema, rows, indexes) to w,
// from a consistent point-in-time view. Together with Restore it gives the
// in-memory engine the restart durability of the paper's MySQL backend.
func (c *Catalog) Snapshot(w io.Writer) error {
	return c.db.Dump(w)
}

// Restore opens a catalog from a stream written by Snapshot. Options are
// applied as in Open, except that the schema and any bootstrap ACL rows
// come from the snapshot rather than being re-created.
func Restore(opts Options, r io.Reader) (*Catalog, error) {
	if opts.EnforceAuthz && opts.Owner == "" {
		return nil, fmt.Errorf("%w: authorization requires an owner DN", ErrInvalidInput)
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	db := sqldb.New()
	if err := db.LoadSnapshot(r); err != nil {
		return nil, err
	}
	// Sanity-check that this snapshot carries an MCS schema.
	for _, required := range []string{"logical_file", "logical_collection", "user_attribute"} {
		if _, err := db.RowCount(required); err != nil {
			return nil, fmt.Errorf("mcs: snapshot lacks table %q: %w", required, err)
		}
	}
	// Snapshots taken before the replay cache existed gain the (empty)
	// table here, so idempotent retry keeps working across the upgrade.
	if _, err := db.Exec(replayTableDDL); err != nil {
		return nil, err
	}
	return &Catalog{db: db, opts: opts, authz: opts.EnforceAuthz}, nil
}

// LastLSN returns the write-ahead-log sequence number of the catalog's last
// logged commit (0 without a WAL). A snapshot taken now embeds at least
// this LSN, which is what makes it a checkpoint: log records at or below it
// are covered and may be dropped.
func (c *Catalog) LastLSN() uint64 { return c.db.LastLSN() }

// OpenWAL opens (creating if absent) the write-ahead log at path, replays
// into the catalog every record the restored snapshot does not already
// cover, and attaches the log so subsequent mutations are durably logged.
// Call it exactly once, after Open or Restore and before serving traffic:
// the catalog's own bootstrap (schema, ACL seeds, replay-cache DDL) runs
// pre-attach and is deliberately never logged — it is deterministic, so a
// fresh boot re-creates it identically before replay.
func (c *Catalog) OpenWAL(path string, opts sqldb.WALOptions) (*sqldb.WAL, sqldb.ReplayStats, error) {
	w, stats, err := sqldb.OpenWAL(path, c.db, c.db.LastLSN(), opts)
	if err != nil {
		return nil, stats, err
	}
	c.db.AttachWAL(w)
	return w, stats, nil
}
