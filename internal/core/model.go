// Package core implements the Metadata Catalog Service itself: the data
// model (logical files, logical collections, logical views), the predefined
// domain-independent schema, user-defined attribute extensibility,
// attribute-based queries, authorization, auditing, annotations and
// provenance — everything section 5 of the paper specifies, on top of the
// sqldb relational engine.
package core

import (
	"fmt"
	"time"

	"mcs/internal/sqldb"
)

// ObjectType distinguishes the three aggregation levels of the MCS data
// model.
type ObjectType string

// Object types.
const (
	ObjectFile       ObjectType = "file"
	ObjectCollection ObjectType = "collection"
	ObjectView       ObjectType = "view"
	// ObjectService is the MCS itself, used for service-level permissions
	// such as the right to create new logical files.
	ObjectService ObjectType = "service"
)

// Valid reports whether t is a known object type.
func (t ObjectType) Valid() bool {
	switch t {
	case ObjectFile, ObjectCollection, ObjectView, ObjectService:
		return true
	}
	return false
}

// AttrType enumerates the value types of user-defined attributes.
// The paper's schema supports string, float, date, time and date/time;
// integer is added because the evaluation workload uses it.
type AttrType string

// User-defined attribute types.
const (
	AttrString   AttrType = "string"
	AttrInt      AttrType = "int"
	AttrFloat    AttrType = "float"
	AttrDate     AttrType = "date"
	AttrTime     AttrType = "time"
	AttrDateTime AttrType = "datetime"
)

// Valid reports whether t is a known attribute type.
func (t AttrType) Valid() bool {
	switch t {
	case AttrString, AttrInt, AttrFloat, AttrDate, AttrTime, AttrDateTime:
		return true
	}
	return false
}

// AttrValue is one typed user-defined attribute value.
type AttrValue struct {
	Type AttrType
	S    string
	I    int64
	F    float64
	T    time.Time
}

// String returns a string-typed attribute value.
func String(s string) AttrValue { return AttrValue{Type: AttrString, S: s} }

// Int returns an int-typed attribute value.
func Int(i int64) AttrValue { return AttrValue{Type: AttrInt, I: i} }

// Float returns a float-typed attribute value.
func Float(f float64) AttrValue { return AttrValue{Type: AttrFloat, F: f} }

// Date returns a date-typed attribute value (time-of-day discarded).
func Date(t time.Time) AttrValue {
	y, m, d := t.UTC().Date()
	return AttrValue{Type: AttrDate, T: time.Date(y, m, d, 0, 0, 0, 0, time.UTC)}
}

// TimeOfDay returns a time-typed attribute value (date part normalized).
func TimeOfDay(t time.Time) AttrValue {
	u := t.UTC()
	return AttrValue{Type: AttrTime, T: time.Date(1, 1, 1, u.Hour(), u.Minute(), u.Second(), 0, time.UTC)}
}

// DateTime returns a datetime-typed attribute value.
func DateTime(t time.Time) AttrValue {
	return AttrValue{Type: AttrDateTime, T: t.UTC().Truncate(time.Second)}
}

// Render formats the value for display and wire transport.
func (v AttrValue) Render() string {
	switch v.Type {
	case AttrString:
		return v.S
	case AttrInt:
		return fmt.Sprintf("%d", v.I)
	case AttrFloat:
		return fmt.Sprintf("%g", v.F)
	case AttrDate:
		return v.T.Format("2006-01-02")
	case AttrTime:
		return v.T.Format("15:04:05")
	case AttrDateTime:
		return v.T.Format(time.RFC3339)
	}
	return ""
}

// ParseAttrValue parses s as a value of type t (inverse of Render).
func ParseAttrValue(t AttrType, s string) (AttrValue, error) {
	switch t {
	case AttrString:
		return String(s), nil
	case AttrInt:
		var i int64
		if _, err := fmt.Sscanf(s, "%d", &i); err != nil {
			return AttrValue{}, fmt.Errorf("mcs: parse int attribute %q: %w", s, err)
		}
		return Int(i), nil
	case AttrFloat:
		var f float64
		if _, err := fmt.Sscanf(s, "%g", &f); err != nil {
			return AttrValue{}, fmt.Errorf("mcs: parse float attribute %q: %w", s, err)
		}
		return Float(f), nil
	case AttrDate:
		tm, err := time.Parse("2006-01-02", s)
		if err != nil {
			return AttrValue{}, fmt.Errorf("mcs: parse date attribute %q: %w", s, err)
		}
		return Date(tm), nil
	case AttrTime:
		tm, err := time.Parse("15:04:05", s)
		if err != nil {
			return AttrValue{}, fmt.Errorf("mcs: parse time attribute %q: %w", s, err)
		}
		return TimeOfDay(tm), nil
	case AttrDateTime:
		tm, err := time.Parse(time.RFC3339, s)
		if err != nil {
			return AttrValue{}, fmt.Errorf("mcs: parse datetime attribute %q: %w", s, err)
		}
		return DateTime(tm), nil
	}
	return AttrValue{}, fmt.Errorf("mcs: unknown attribute type %q", t)
}

// sqlValue converts the attribute value to the sqldb column value for its
// type's storage column.
func (v AttrValue) sqlValue() sqldb.Value {
	switch v.Type {
	case AttrString:
		return sqldb.Text(v.S)
	case AttrInt:
		return sqldb.Int(v.I)
	case AttrFloat:
		return sqldb.Float(v.F)
	default:
		return sqldb.Time(v.T)
	}
}

// storageColumn names the user_attribute column holding values of type t.
func (t AttrType) storageColumn() string {
	switch t {
	case AttrString:
		return "sval"
	case AttrInt:
		return "ival"
	case AttrFloat:
		return "fval"
	default:
		return "tval"
	}
}

// File is the static (predefined-schema) metadata of a logical file.
type File struct {
	ID               int64
	Name             string
	Version          int
	DataType         string // e.g. "binary", "xml", "html"
	Valid            bool
	CollectionID     int64 // 0 when the file is in no collection
	ContainerID      string
	ContainerService string
	MasterCopy       string
	Creator          string
	LastModifier     string
	Created          time.Time
	Modified         time.Time
	Audited          bool
}

// Collection is the static metadata of a logical collection.
type Collection struct {
	ID           int64
	Name         string
	Description  string
	ParentID     int64 // 0 for a root collection
	Creator      string
	LastModifier string
	Created      time.Time
	Modified     time.Time
	Audited      bool
}

// View is the static metadata of a logical view.
type View struct {
	ID           int64
	Name         string
	Description  string
	Creator      string
	LastModifier string
	Created      time.Time
	Modified     time.Time
	Audited      bool
}

// ViewMember is one element aggregated by a logical view.
type ViewMember struct {
	Type ObjectType
	ID   int64
	Name string
}

// AttributeDef is a user-defined attribute declaration.
type AttributeDef struct {
	ID          int64
	Name        string
	Type        AttrType
	Description string
	Creator     string
	Created     time.Time
}

// Attribute is a user-defined attribute bound to an object.
type Attribute struct {
	Name  string
	Value AttrValue
}

// Annotation is a free-text note attached to an object.
type Annotation struct {
	ID        int64
	Object    ObjectType
	ObjectID  int64
	Text      string
	Creator   string
	CreatedAt time.Time
}

// ProvenanceRecord describes one creation or transformation step of a file.
type ProvenanceRecord struct {
	ID          int64
	FileID      int64
	Description string
	At          time.Time
}

// AuditRecord is one entry of the service's audit log.
type AuditRecord struct {
	ID       int64
	Object   ObjectType
	ObjectID int64
	Action   string
	DN       string
	Detail   string
	// RequestID correlates the record with the request that caused it
	// (see WithRequestID); "" for embedded or legacy writes.
	RequestID string
	At        time.Time
}

// Writer is the user (metadata-writer) contact record of the MCS schema.
type Writer struct {
	DN          string
	Description string
	Institution string
	Address     string
	Phone       string
	Email       string
}

// ExternalCatalog points at another metadata catalog holding related
// attributes (the schema's federation hook).
type ExternalCatalog struct {
	ID          int64
	Name        string
	Type        string // e.g. "relational", "xml"
	Host        string
	IP          string
	Description string
}

// Permission names one right on an object.
type Permission string

// Permissions understood by the authorization layer.
const (
	PermRead     Permission = "read"
	PermWrite    Permission = "write"
	PermCreate   Permission = "create"
	PermDelete   Permission = "delete"
	PermAnnotate Permission = "annotate"
)

// Valid reports whether p is a known permission.
func (p Permission) Valid() bool {
	switch p {
	case PermRead, PermWrite, PermCreate, PermDelete, PermAnnotate:
		return true
	}
	return false
}

// Op is a comparison operator usable in attribute queries.
type Op string

// Query operators.
const (
	OpEq   Op = "="
	OpNe   Op = "!="
	OpLt   Op = "<"
	OpLe   Op = "<="
	OpGt   Op = ">"
	OpGe   Op = ">="
	OpLike Op = "like"
)

// Valid reports whether o is a known operator.
func (o Op) Valid() bool {
	switch o {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpLike:
		return true
	}
	return false
}

// Predicate is one attribute constraint in a query. Attribute may name
// either a predefined (static) logical-file attribute or a user-defined
// attribute.
type Predicate struct {
	Attribute string
	Op        Op
	Value     AttrValue
}

// Query describes an attribute-based discovery request.
type Query struct {
	// Target selects what kind of object to search (default files).
	Target ObjectType
	// Predicates are ANDed together, as in the original MCS query API.
	Predicates []Predicate
	// Limit bounds the number of returned names; 0 means no limit.
	Limit int
}
