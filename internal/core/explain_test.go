package core

import (
	"fmt"
	"strings"
	"testing"

	"mcs/internal/sqldb"
)

// EXPLAIN goldens for the catalog's own hot statements. These pin the
// access paths of the three query shapes the paper's workload leans on —
// the authz ancestor-chain ACL check, the multi-attribute (Fig. 11) query,
// and the IN-list batch hydration — so a cardinality-stats or planner
// regression flips a test, not just a benchmark curve.

// explainPlan compiles sql against the catalog's database and returns the
// one-line plan rendering.
func explainPlan(t *testing.T, c *Catalog, sql string, args ...sqldb.Value) string {
	t.Helper()
	plan, err := c.DB().Explain(sql, args...)
	if err != nil {
		t.Fatalf("explain %q: %v", sql, err)
	}
	return plan
}

// populateExplainCatalog creates enough files and attribute rows that the
// stats registry has real cardinalities to rank indexes with.
func populateExplainCatalog(t *testing.T, c *Catalog, attrs int) {
	t.Helper()
	for i := 0; i < attrs; i++ {
		name := fmt.Sprintf("x%d", i)
		if _, err := c.DefineAttribute(alice, name, AttrString, ""); err != nil {
			t.Fatal(err)
		}
	}
	for f := 0; f < 30; f++ {
		fname := fmt.Sprintf("ef%02d", f)
		if _, err := c.CreateFile(alice, FileSpec{Name: fname, DataType: "raw"}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < attrs; i++ {
			attr := fmt.Sprintf("x%d", i)
			if err := c.SetAttribute(alice, ObjectFile, fname, attr,
				String(fmt.Sprintf("g%d", f%5))); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestExplainAuthzAncestorChain(t *testing.T) {
	c := openCatalog(t)
	// The batched ancestor-chain ACL check from authz.go: one IN-list probe
	// across the whole collection chain. acl_object leads with object_type,
	// so the probe is an equality prefix extended by the IN list.
	plan := explainPlan(t, c,
		"SELECT id FROM acl WHERE object_type = ? AND principal = ? AND permission = ? AND object_id IN (?, ?, ?)",
		sqldb.Text("collection"), sqldb.Text(alice), sqldb.Text("read"),
		sqldb.Int(1), sqldb.Int(2), sqldb.Int(3))
	if plan != "index-in(acl_object)" {
		t.Fatalf("authz chain plan = %s", plan)
	}
}

func TestExplainAttributeBatchHydration(t *testing.T) {
	c := openCatalog(t)
	populateExplainCatalog(t, c, 4)
	// attributesBatch's statement (query.go): per-object attribute fetch for
	// a page of query results, batched through one IN list on ua_object. The
	// join to attribute_def intersects on attr_id; the def table is a handful
	// of rows, so scanning it outright ranks ahead of the IN probe.
	plan := explainPlan(t, c,
		"SELECT ua.object_id, ad.name, ad.attr_type, ua.sval, ua.ival, ua.fval, ua.tval "+
			"FROM user_attribute ua JOIN attribute_def ad ON ad.id = ua.attr_id "+
			"WHERE ua.object_type = ? AND ua.object_id IN (?, ?, ?)",
		sqldb.Text("file"), sqldb.Int(1), sqldb.Int(2), sqldb.Int(3))
	want := "intersect[ad full-scan(attribute_def) & ua index-in(ua_object)]"
	if plan != want {
		t.Fatalf("attribute batch plan:\n  got  %s\n  want %s", plan, want)
	}
}

func TestExplainEightAttributeQuery(t *testing.T) {
	c := openCatalog(t)
	populateExplainCatalog(t, c, 8)
	preds := make([]Predicate, 8)
	for i := range preds {
		preds[i] = Predicate{fmt.Sprintf("x%d", i), OpEq, String("g2")}
	}
	q := Query{Predicates: preds}
	sql, err := c.ExplainQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	plan := explainPlan(t, c, sql, mustCompileArgs(t, c, q)...)
	// All eight predicates are string-typed, so every attribute stage is a
	// covered equality probe of ua_attr_s and the file table is reached by
	// key probes — the flat Fig. 11 shape. Stage order among equal
	// estimates is statement order (stable sort).
	want := "intersect[" + strings.Repeat("a%d index-eq(ua_attr_s) & ", 8) +
		"t key-probe(logical_file_id_key)]"
	wantArgs := make([]interface{}, 8)
	for i := range wantArgs {
		wantArgs[i] = i
	}
	want = fmt.Sprintf(want, wantArgs...)
	if plan != want {
		t.Fatalf("8-attribute plan:\n  got  %s\n  want %s", plan, want)
	}
}
