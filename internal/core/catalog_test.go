package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"mcs/internal/sqldb"
)

const (
	alice = "/O=Grid/CN=Alice"
	bob   = "/O=Grid/CN=Bob"
	admin = "/O=Grid/CN=Admin"
)

func openCatalog(t *testing.T) *Catalog {
	t.Helper()
	c, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func openAuthzCatalog(t *testing.T) *Catalog {
	t.Helper()
	c, err := Open(Options{Owner: admin, EnforceAuthz: true})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCreateAndGetFile(t *testing.T) {
	c := openCatalog(t)
	f, err := c.CreateFile(alice, FileSpec{Name: "run1.gwf", DataType: "binary"})
	if err != nil {
		t.Fatal(err)
	}
	if f.ID == 0 || f.Version != 1 || !f.Valid || f.Creator != alice {
		t.Fatalf("created file = %+v", f)
	}
	got, err := c.GetFile(alice, "run1.gwf", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != f.ID || got.DataType != "binary" {
		t.Fatalf("got = %+v", got)
	}
	if _, err := c.GetFile(alice, "nosuch", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing file err = %v", err)
	}
}

func TestFileVersioning(t *testing.T) {
	c := openCatalog(t)
	f1, _ := c.CreateFile(alice, FileSpec{Name: "data"})
	f2, err := c.CreateFile(alice, FileSpec{Name: "data"})
	if err != nil {
		t.Fatal(err)
	}
	if f1.Version != 1 || f2.Version != 2 {
		t.Fatalf("versions = %d, %d", f1.Version, f2.Version)
	}
	// With multiple versions, an unversioned get must fail.
	if _, err := c.GetFile(alice, "data", 0); !errors.Is(err, ErrAmbiguousFile) {
		t.Fatalf("unversioned get err = %v", err)
	}
	got, err := c.GetFile(alice, "data", 2)
	if err != nil || got.ID != f2.ID {
		t.Fatalf("versioned get = %+v, %v", got, err)
	}
	vs, err := c.FileVersions(alice, "data")
	if err != nil || len(vs) != 2 {
		t.Fatalf("FileVersions = %v, %v", vs, err)
	}
	// Explicit duplicate version must fail.
	if _, err := c.CreateFile(alice, FileSpec{Name: "data", Version: 2}); !errors.Is(err, ErrExists) {
		t.Fatalf("dup version err = %v", err)
	}
}

func TestCreateFileWithAttributesAtomic(t *testing.T) {
	c := openCatalog(t)
	if _, err := c.DefineAttribute(alice, "frequency", AttrFloat, "band Hz"); err != nil {
		t.Fatal(err)
	}
	_, err := c.CreateFile(alice, FileSpec{
		Name: "f1",
		Attributes: []Attribute{
			{Name: "frequency", Value: Float(40.5)},
			{Name: "undefined-attr", Value: String("x")},
		},
	})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	// Nothing must have been created (atomicity).
	if _, err := c.GetFile(alice, "f1", 0); !errors.Is(err, ErrNotFound) {
		t.Fatal("partial file survived failed create")
	}
	st, _ := c.Stats()
	if st.Attributes != 0 {
		t.Fatalf("dangling attributes: %+v", st)
	}
	// Successful path.
	f, err := c.CreateFile(alice, FileSpec{
		Name:       "f1",
		Attributes: []Attribute{{Name: "frequency", Value: Float(40.5)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := c.GetAttributes(alice, ObjectFile, "f1")
	if err != nil || len(attrs) != 1 || attrs[0].Value.F != 40.5 {
		t.Fatalf("attrs = %v, %v", attrs, err)
	}
	_ = f
}

func TestUpdateFileStaticAttributes(t *testing.T) {
	c := openCatalog(t)
	c.CreateFile(alice, FileSpec{Name: "f", DataType: "binary"}) //nolint:errcheck
	dt := "xml"
	mc := "gsiftp://host/path"
	f, err := c.UpdateFile(alice, "f", 0, FileUpdate{DataType: &dt, MasterCopy: &mc})
	if err != nil {
		t.Fatal(err)
	}
	if f.DataType != "xml" || f.MasterCopy != mc {
		t.Fatalf("updated = %+v", f)
	}
	got, _ := c.GetFile(alice, "f", 0)
	if got.DataType != "xml" || got.MasterCopy != mc || got.LastModifier != alice {
		t.Fatalf("persisted = %+v", got)
	}
}

func TestInvalidateFile(t *testing.T) {
	c := openCatalog(t)
	c.CreateFile(alice, FileSpec{Name: "bad-data"}) //nolint:errcheck
	if err := c.InvalidateFile(alice, "bad-data", 0); err != nil {
		t.Fatal(err)
	}
	f, _ := c.GetFile(alice, "bad-data", 0)
	if f.Valid {
		t.Fatal("file still valid after invalidation")
	}
	// Invalid files are excluded by a valid=1 predicate.
	names, err := c.RunQuery(alice, Query{Predicates: []Predicate{
		{Attribute: "valid", Op: OpEq, Value: Int(1)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("invalid file matched valid=1: %v", names)
	}
}

func TestDeleteFileCleansUp(t *testing.T) {
	c := openCatalog(t)
	c.DefineAttribute(alice, "k", AttrString, "")                                        //nolint:errcheck
	c.CreateFile(alice, FileSpec{Name: "f", Attributes: []Attribute{{"k", String("v")}}, //nolint:errcheck
		Provenance: "created by test"})
	c.Annotate(alice, ObjectFile, "f", "a note") //nolint:errcheck
	v, _ := c.CreateView(alice, ViewSpec{Name: "view1"})
	_ = v
	c.AddToView(alice, "view1", ObjectFile, "f") //nolint:errcheck
	if err := c.DeleteFile(alice, "f", 0); err != nil {
		t.Fatal(err)
	}
	st, _ := c.Stats()
	if st.Files != 0 || st.Attributes != 0 {
		t.Fatalf("leftovers: %+v", st)
	}
	members, _ := c.ViewContents(alice, "view1")
	if len(members) != 0 {
		t.Fatalf("view still references deleted file: %v", members)
	}
	// Name can be reused.
	if _, err := c.CreateFile(alice, FileSpec{Name: "f"}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectionsHierarchy(t *testing.T) {
	c := openCatalog(t)
	root, err := c.CreateCollection(alice, CollectionSpec{Name: "ligo", Description: "LIGO data"})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.CreateCollection(alice, CollectionSpec{Name: "ligo-s2", Parent: "ligo"})
	if err != nil {
		t.Fatal(err)
	}
	if s2.ParentID != root.ID {
		t.Fatalf("parent = %d, want %d", s2.ParentID, root.ID)
	}
	c.CreateFile(alice, FileSpec{Name: "a.gwf", Collection: "ligo-s2"}) //nolint:errcheck
	c.CreateFile(alice, FileSpec{Name: "b.gwf", Collection: "ligo-s2"}) //nolint:errcheck
	files, subs, err := c.CollectionContents(alice, "ligo-s2")
	if err != nil || len(files) != 2 || len(subs) != 0 {
		t.Fatalf("contents = %v, %v, %v", files, subs, err)
	}
	_, subs, _ = c.CollectionContents(alice, "ligo")
	if len(subs) != 1 || subs[0].Name != "ligo-s2" {
		t.Fatalf("root subs = %v", subs)
	}
}

func TestCollectionCycleRejected(t *testing.T) {
	c := openCatalog(t)
	c.CreateCollection(alice, CollectionSpec{Name: "a"})              //nolint:errcheck
	c.CreateCollection(alice, CollectionSpec{Name: "b", Parent: "a"}) //nolint:errcheck
	c.CreateCollection(alice, CollectionSpec{Name: "c", Parent: "b"}) //nolint:errcheck
	if err := c.SetCollectionParent(alice, "a", "c"); !errors.Is(err, ErrCycle) {
		t.Fatalf("cycle err = %v", err)
	}
	// Legitimate re-parent still works.
	if err := c.SetCollectionParent(alice, "c", "a"); err != nil {
		t.Fatal(err)
	}
	// Self-parent is a cycle.
	if err := c.SetCollectionParent(alice, "a", "a"); !errors.Is(err, ErrCycle) {
		t.Fatalf("self-parent err = %v", err)
	}
}

func TestDeleteCollectionRequiresEmpty(t *testing.T) {
	c := openCatalog(t)
	c.CreateCollection(alice, CollectionSpec{Name: "col"})      //nolint:errcheck
	c.CreateFile(alice, FileSpec{Name: "f", Collection: "col"}) //nolint:errcheck
	if err := c.DeleteCollection(alice, "col"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("err = %v", err)
	}
	c.DeleteFile(alice, "f", 0) //nolint:errcheck
	if err := c.DeleteCollection(alice, "col"); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateCollectionName(t *testing.T) {
	c := openCatalog(t)
	c.CreateCollection(alice, CollectionSpec{Name: "dup"}) //nolint:errcheck
	if _, err := c.CreateCollection(alice, CollectionSpec{Name: "dup"}); err == nil {
		t.Fatal("duplicate collection name accepted")
	}
}

func TestFileInAtMostOneCollection(t *testing.T) {
	c := openCatalog(t)
	c.CreateCollection(alice, CollectionSpec{Name: "c1"})      //nolint:errcheck
	c.CreateCollection(alice, CollectionSpec{Name: "c2"})      //nolint:errcheck
	c.CreateFile(alice, FileSpec{Name: "f", Collection: "c1"}) //nolint:errcheck
	if err := c.MoveFile(alice, "f", 0, "c2"); err != nil {
		t.Fatal(err)
	}
	files, _, _ := c.CollectionContents(alice, "c1")
	if len(files) != 0 {
		t.Fatal("file still in old collection after move")
	}
	files, _, _ = c.CollectionContents(alice, "c2")
	if len(files) != 1 {
		t.Fatal("file not in new collection")
	}
	// Remove from all collections.
	if err := c.MoveFile(alice, "f", 0, ""); err != nil {
		t.Fatal(err)
	}
	files, _, _ = c.CollectionContents(alice, "c2")
	if len(files) != 0 {
		t.Fatal("file still in collection after removal")
	}
}

func TestViewsAggregation(t *testing.T) {
	c := openCatalog(t)
	c.CreateCollection(alice, CollectionSpec{Name: "col"})        //nolint:errcheck
	c.CreateFile(alice, FileSpec{Name: "f1", Collection: "col"})  //nolint:errcheck
	c.CreateFile(alice, FileSpec{Name: "f2"})                     //nolint:errcheck
	c.CreateView(alice, ViewSpec{Name: "v1", Description: "sel"}) //nolint:errcheck
	if err := c.AddToView(alice, "v1", ObjectFile, "f2"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddToView(alice, "v1", ObjectCollection, "col"); err != nil {
		t.Fatal(err)
	}
	members, err := c.ViewContents(alice, "v1")
	if err != nil || len(members) != 2 {
		t.Fatalf("members = %v, %v", members, err)
	}
	names, err := c.ExpandView(alice, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 { // f2 directly, f1 via collection
		t.Fatalf("expanded = %v", names)
	}
	// Duplicate membership rejected.
	if err := c.AddToView(alice, "v1", ObjectFile, "f2"); !errors.Is(err, ErrExists) {
		t.Fatalf("dup member err = %v", err)
	}
	// A file may belong to many views (unlike collections).
	c.CreateView(alice, ViewSpec{Name: "v2"}) //nolint:errcheck
	if err := c.AddToView(alice, "v2", ObjectFile, "f2"); err != nil {
		t.Fatal(err)
	}
}

func TestViewCycleRejected(t *testing.T) {
	c := openCatalog(t)
	c.CreateView(alice, ViewSpec{Name: "a"}) //nolint:errcheck
	c.CreateView(alice, ViewSpec{Name: "b"}) //nolint:errcheck
	c.CreateView(alice, ViewSpec{Name: "c"}) //nolint:errcheck
	c.AddToView(alice, "a", ObjectView, "b") //nolint:errcheck
	c.AddToView(alice, "b", ObjectView, "c") //nolint:errcheck
	if err := c.AddToView(alice, "c", ObjectView, "a"); !errors.Is(err, ErrCycle) {
		t.Fatalf("view cycle err = %v", err)
	}
	if err := c.AddToView(alice, "a", ObjectView, "a"); !errors.Is(err, ErrCycle) {
		t.Fatalf("self view err = %v", err)
	}
	// Nested expansion works.
	c.CreateFile(alice, FileSpec{Name: "deep"}) //nolint:errcheck
	c.AddToView(alice, "c", ObjectFile, "deep") //nolint:errcheck
	names, err := c.ExpandView(alice, "a")
	if err != nil || len(names) != 1 || names[0] != "deep" {
		t.Fatalf("nested expansion = %v, %v", names, err)
	}
}

func TestRemoveFromView(t *testing.T) {
	c := openCatalog(t)
	c.CreateView(alice, ViewSpec{Name: "v"}) //nolint:errcheck
	c.CreateFile(alice, FileSpec{Name: "f"}) //nolint:errcheck
	c.AddToView(alice, "v", ObjectFile, "f") //nolint:errcheck
	if err := c.RemoveFromView(alice, "v", ObjectFile, "f"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveFromView(alice, "v", ObjectFile, "f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove err = %v", err)
	}
}

func TestUserAttributeLifecycle(t *testing.T) {
	c := openCatalog(t)
	def, err := c.DefineAttribute(alice, "channel", AttrString, "LIGO channel name")
	if err != nil {
		t.Fatal(err)
	}
	if def.Type != AttrString {
		t.Fatalf("def = %+v", def)
	}
	// Redefinition fails.
	if _, err := c.DefineAttribute(alice, "channel", AttrInt, ""); !errors.Is(err, ErrExists) {
		t.Fatalf("redefine err = %v", err)
	}
	// Shadowing a static attribute fails.
	if _, err := c.DefineAttribute(alice, "dataType", AttrString, ""); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("shadow err = %v", err)
	}
	c.CreateFile(alice, FileSpec{Name: "f"}) //nolint:errcheck
	if err := c.SetAttribute(alice, ObjectFile, "f", "channel", String("H1")); err != nil {
		t.Fatal(err)
	}
	// Type mismatch.
	if err := c.SetAttribute(alice, ObjectFile, "f", "channel", Int(2)); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("type mismatch err = %v", err)
	}
	// Replacement semantics.
	if err := c.SetAttribute(alice, ObjectFile, "f", "channel", String("L1")); err != nil {
		t.Fatal(err)
	}
	attrs, _ := c.GetAttributes(alice, ObjectFile, "f")
	if len(attrs) != 1 || attrs[0].Value.S != "L1" {
		t.Fatalf("attrs = %v", attrs)
	}
	// Unset.
	if err := c.UnsetAttribute(alice, ObjectFile, "f", "channel"); err != nil {
		t.Fatal(err)
	}
	if err := c.UnsetAttribute(alice, ObjectFile, "f", "channel"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double unset err = %v", err)
	}
}

func TestAttributesOnCollectionsAndViews(t *testing.T) {
	c := openCatalog(t)
	c.DefineAttribute(alice, "project", AttrString, "") //nolint:errcheck
	c.CreateCollection(alice, CollectionSpec{Name: "col",
		Attributes: []Attribute{{"project", String("esg")}}}) //nolint:errcheck
	c.CreateView(alice, ViewSpec{Name: "v",
		Attributes: []Attribute{{"project", String("ligo")}}}) //nolint:errcheck
	ca, err := c.GetAttributes(alice, ObjectCollection, "col")
	if err != nil || len(ca) != 1 || ca[0].Value.S != "esg" {
		t.Fatalf("collection attrs = %v, %v", ca, err)
	}
	va, err := c.GetAttributes(alice, ObjectView, "v")
	if err != nil || len(va) != 1 || va[0].Value.S != "ligo" {
		t.Fatalf("view attrs = %v, %v", va, err)
	}
	// Collection query by attribute.
	names, err := c.RunQuery(alice, Query{
		Target:     ObjectCollection,
		Predicates: []Predicate{{Attribute: "project", Op: OpEq, Value: String("esg")}},
	})
	if err != nil || len(names) != 1 || names[0] != "col" {
		t.Fatalf("collection query = %v, %v", names, err)
	}
}

func TestAllAttributeTypes(t *testing.T) {
	c := openCatalog(t)
	now := time.Date(2003, 11, 15, 10, 30, 0, 0, time.UTC)
	c.DefineAttribute(alice, "s", AttrString, "")    //nolint:errcheck
	c.DefineAttribute(alice, "i", AttrInt, "")       //nolint:errcheck
	c.DefineAttribute(alice, "fl", AttrFloat, "")    //nolint:errcheck
	c.DefineAttribute(alice, "d", AttrDate, "")      //nolint:errcheck
	c.DefineAttribute(alice, "tm", AttrTime, "")     //nolint:errcheck
	c.DefineAttribute(alice, "dt", AttrDateTime, "") //nolint:errcheck
	c.CreateFile(alice, FileSpec{Name: "f", Attributes: []Attribute{
		{"s", String("str")}, {"i", Int(-7)}, {"fl", Float(2.5)},
		{"d", Date(now)}, {"tm", TimeOfDay(now)}, {"dt", DateTime(now)},
	}}) //nolint:errcheck
	attrs, err := c.GetAttributes(alice, ObjectFile, "f")
	if err != nil || len(attrs) != 6 {
		t.Fatalf("attrs = %v, %v", attrs, err)
	}
	byName := map[string]AttrValue{}
	for _, a := range attrs {
		byName[a.Name] = a.Value
	}
	if byName["s"].S != "str" || byName["i"].I != -7 || byName["fl"].F != 2.5 {
		t.Fatalf("scalar values = %v", byName)
	}
	if byName["d"].T.Hour() != 0 || byName["d"].T.Day() != 15 {
		t.Fatalf("date = %v", byName["d"].T)
	}
	if byName["tm"].T.Hour() != 10 || byName["tm"].T.Minute() != 30 {
		t.Fatalf("time = %v", byName["tm"].T)
	}
	if !byName["dt"].T.Equal(now) {
		t.Fatalf("datetime = %v", byName["dt"].T)
	}
	// Each type is queryable.
	for _, p := range []Predicate{
		{"s", OpEq, String("str")},
		{"i", OpEq, Int(-7)},
		{"fl", OpGt, Float(2.0)},
		{"d", OpEq, Date(now)},
		{"dt", OpLe, DateTime(now)},
	} {
		names, err := c.RunQuery(alice, Query{Predicates: []Predicate{p}})
		if err != nil || len(names) != 1 {
			t.Fatalf("query on %s: %v, %v", p.Attribute, names, err)
		}
	}
}

func TestRenderParseRoundTrip(t *testing.T) {
	now := time.Date(2003, 11, 15, 10, 30, 45, 0, time.UTC)
	vals := []AttrValue{
		String("hello world"), Int(-42), Float(3.25),
		Date(now), TimeOfDay(now), DateTime(now),
	}
	for _, v := range vals {
		parsed, err := ParseAttrValue(v.Type, v.Render())
		if err != nil {
			t.Fatalf("parse %s %q: %v", v.Type, v.Render(), err)
		}
		if parsed.Render() != v.Render() {
			t.Fatalf("round trip %s: %q != %q", v.Type, parsed.Render(), v.Render())
		}
	}
	if _, err := ParseAttrValue(AttrInt, "not a number"); err == nil {
		t.Fatal("bad int parse accepted")
	}
	if _, err := ParseAttrValue(AttrDate, "15/11/2003"); err == nil {
		t.Fatal("bad date parse accepted")
	}
}

func TestQueryStaticAndUserMix(t *testing.T) {
	c := openCatalog(t)
	c.DefineAttribute(alice, "band", AttrString, "") //nolint:errcheck
	c.DefineAttribute(alice, "dur", AttrInt, "")     //nolint:errcheck
	for i := 0; i < 20; i++ {
		band := "low"
		if i%2 == 0 {
			band = "high"
		}
		c.CreateFile(alice, FileSpec{
			Name:     fmt.Sprintf("f%02d", i),
			DataType: "binary",
			Attributes: []Attribute{
				{"band", String(band)},
				{"dur", Int(int64(i * 10))},
			},
		}) //nolint:errcheck
	}
	// Single user attribute.
	names, err := c.RunQuery(alice, Query{Predicates: []Predicate{
		{"band", OpEq, String("high")},
	}})
	if err != nil || len(names) != 10 {
		t.Fatalf("band query = %d, %v", len(names), err)
	}
	// Conjunction of two user attributes.
	names, err = c.RunQuery(alice, Query{Predicates: []Predicate{
		{"band", OpEq, String("high")},
		{"dur", OpGe, Int(100)},
	}})
	if err != nil || len(names) != 5 {
		t.Fatalf("band+dur query = %v, %v", names, err)
	}
	// Static + user mix.
	names, err = c.RunQuery(alice, Query{Predicates: []Predicate{
		{"dataType", OpEq, String("binary")},
		{"band", OpEq, String("low")},
		{"dur", OpLt, Int(50)},
	}})
	if err != nil || len(names) != 3 { // f01, f03 -> dur 10,30 ... wait: odd i => low; dur<50 => i in {1,3} -> 2? recompute below
		// odd i: 1,3,5,... dur = i*10 => dur<50 => i in {1,3} => 2 files.
		if len(names) != 2 {
			t.Fatalf("mixed query = %v, %v", names, err)
		}
	}
	// LIKE on the static name.
	names, err = c.RunQuery(alice, Query{Predicates: []Predicate{
		{"name", OpLike, String("f1%")},
	}})
	if err != nil || len(names) != 10 {
		t.Fatalf("LIKE query = %d, %v", len(names), err)
	}
	// Limit.
	names, _ = c.RunQuery(alice, Query{
		Predicates: []Predicate{{"dataType", OpEq, String("binary")}},
		Limit:      5,
	})
	if len(names) != 5 {
		t.Fatalf("limited query = %d", len(names))
	}
	// No match.
	names, _ = c.RunQuery(alice, Query{Predicates: []Predicate{
		{"band", OpEq, String("none")},
	}})
	if len(names) != 0 {
		t.Fatalf("no-match query = %v", names)
	}
}

func TestQueryUsesAttributeIndex(t *testing.T) {
	c := openCatalog(t)
	c.DefineAttribute(alice, "x", AttrString, "") //nolint:errcheck
	sql, err := c.ExplainQuery(Query{Predicates: []Predicate{{"x", OpEq, String("v")}}})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := c.DB().Explain(sql, mustCompileArgs(t, c, Query{Predicates: []Predicate{{"x", OpEq, String("v")}}})...)
	if err != nil {
		t.Fatal(err)
	}
	if plan == "full-scan(user_attribute)" {
		t.Fatalf("complex query plans a full scan: %s", plan)
	}
}

func mustCompileArgs(t *testing.T, c *Catalog, q Query) []sqldb.Value {
	t.Helper()
	_, args, err := c.compileQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	return args
}

func TestQueryFiles(t *testing.T) {
	c := openCatalog(t)
	c.CreateFile(alice, FileSpec{Name: "qf", DataType: "xml"}) //nolint:errcheck
	files, err := c.QueryFiles(alice, Query{Predicates: []Predicate{
		{"dataType", OpEq, String("xml")},
	}})
	if err != nil || len(files) != 1 || files[0].Name != "qf" {
		t.Fatalf("QueryFiles = %v, %v", files, err)
	}
}

func TestAnnotations(t *testing.T) {
	c := openCatalog(t)
	c.CreateFile(alice, FileSpec{Name: "f"}) //nolint:errcheck
	a, err := c.Annotate(bob, ObjectFile, "f", "looks suspicious around t=1500")
	if err != nil {
		t.Fatal(err)
	}
	if a.Creator != bob {
		t.Fatalf("annotation = %+v", a)
	}
	c.Annotate(alice, ObjectFile, "f", "recalibrated") //nolint:errcheck
	anns, err := c.Annotations(alice, ObjectFile, "f")
	if err != nil || len(anns) != 2 {
		t.Fatalf("annotations = %v, %v", anns, err)
	}
	if anns[0].Text != "looks suspicious around t=1500" {
		t.Fatalf("order wrong: %v", anns)
	}
	if _, err := c.Annotate(alice, ObjectFile, "f", ""); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("empty annotation err = %v", err)
	}
}

func TestProvenance(t *testing.T) {
	c := openCatalog(t)
	c.CreateFile(alice, FileSpec{Name: "derived", Provenance: "created by pulsar-search v1.2"}) //nolint:errcheck
	c.AddProvenance(alice, "derived", 0, "recalibrated with v1.3")                              //nolint:errcheck
	recs, err := c.Provenance(alice, "derived", 0)
	if err != nil || len(recs) != 2 {
		t.Fatalf("provenance = %v, %v", recs, err)
	}
	if recs[0].Description != "created by pulsar-search v1.2" {
		t.Fatalf("order: %v", recs)
	}
}

func TestAuditTrail(t *testing.T) {
	c := openCatalog(t)
	c.CreateFile(alice, FileSpec{Name: "f", Audited: true}) //nolint:errcheck
	dt := "xml"
	c.UpdateFile(bob, "f", 0, FileUpdate{DataType: &dt}) //nolint:errcheck
	recs, err := c.AuditLog(alice, ObjectFile, "f")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Action != "create" || recs[1].Action != "update" {
		t.Fatalf("audit = %v", recs)
	}
	if recs[0].DN != alice || recs[1].DN != bob {
		t.Fatalf("audit DNs = %v", recs)
	}
	// Unaudited file records nothing.
	c.CreateFile(alice, FileSpec{Name: "quiet"})               //nolint:errcheck
	c.UpdateFile(alice, "quiet", 0, FileUpdate{DataType: &dt}) //nolint:errcheck
	recs, _ = c.AuditLog(alice, ObjectFile, "quiet")
	if len(recs) != 0 {
		t.Fatalf("unaudited file has audit records: %v", recs)
	}
}

func TestWriters(t *testing.T) {
	c := openCatalog(t)
	w := Writer{DN: alice, Institution: "ISI", Email: "alice@isi.edu"}
	if err := c.RegisterWriter(alice, w); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetWriter(alice, alice)
	if err != nil || got.Institution != "ISI" {
		t.Fatalf("writer = %+v, %v", got, err)
	}
	// Upsert.
	w.Institution = "USC/ISI"
	c.RegisterWriter(alice, w) //nolint:errcheck
	got, _ = c.GetWriter(alice, alice)
	if got.Institution != "USC/ISI" {
		t.Fatalf("updated writer = %+v", got)
	}
	if _, err := c.GetWriter(alice, "/CN=nobody"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing writer err = %v", err)
	}
}

func TestExternalCatalogs(t *testing.T) {
	c := openCatalog(t)
	ec, err := c.RegisterExternalCatalog(alice, ExternalCatalog{
		Name: "esg-xml", Type: "xml", Host: "esg.llnl.gov", IP: "198.128.0.1",
	})
	if err != nil || ec.ID == 0 {
		t.Fatalf("register = %+v, %v", ec, err)
	}
	list, err := c.ExternalCatalogs(alice)
	if err != nil || len(list) != 1 || list[0].Name != "esg-xml" {
		t.Fatalf("list = %v, %v", list, err)
	}
	if _, err := c.RegisterExternalCatalog(alice, ExternalCatalog{Name: "esg-xml", Type: "x"}); !errors.Is(err, ErrExists) {
		t.Fatalf("dup err = %v", err)
	}
}
