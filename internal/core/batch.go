package core

import (
	"fmt"

	"mcs/internal/sqldb"
)

// BatchOp is one mutation inside a BatchWrite. Exactly one of the pointer
// fields must be set; the rest stay nil.
type BatchOp struct {
	CreateFile   *FileSpec
	UpdateFile   *BatchFileUpdate
	DeleteFile   *BatchFileRef
	SetAttribute *BatchSetAttribute
	Annotate     *BatchAnnotation
}

// BatchFileUpdate names the file (and optionally a version; 0 means latest)
// an embedded FileUpdate applies to.
type BatchFileUpdate struct {
	Name    string
	Version int
	Update  FileUpdate
}

// BatchFileRef identifies a file version for deletion (version 0 = latest).
type BatchFileRef struct {
	Name    string
	Version int
}

// BatchSetAttribute binds one user-defined attribute value on an object.
type BatchSetAttribute struct {
	Object    ObjectType
	Name      string
	Attribute Attribute
}

// BatchAnnotation attaches free text to an object.
type BatchAnnotation struct {
	Object ObjectType
	Name   string
	Text   string
}

// BatchResult reports the outcome of one op in a committed batch.
type BatchResult struct {
	// Action is the op kind: "createFile", "updateFile", "deleteFile",
	// "setAttribute" or "annotate".
	Action string
	// File is the resulting file for create/update ops — in-process callers
	// only. Batch acks over the wire are compact (a bulk load does not need
	// its metadata echoed back N times), so Client.BatchWrite leaves File
	// nil; fetch full metadata with GetFile when needed.
	File *File
	// ID is the object or annotation ID the op touched, when it has one.
	ID int64
	// Version is the resulting file version for create/update ops.
	Version int
}

// kind returns the op's action name, or "" if zero or more than one field
// is set.
func (op BatchOp) kind() string {
	var k string
	set := 0
	if op.CreateFile != nil {
		k, set = "createFile", set+1
	}
	if op.UpdateFile != nil {
		k, set = "updateFile", set+1
	}
	if op.DeleteFile != nil {
		k, set = "deleteFile", set+1
	}
	if op.SetAttribute != nil {
		k, set = "setAttribute", set+1
	}
	if op.Annotate != nil {
		k, set = "annotate", set+1
	}
	if set != 1 {
		return ""
	}
	return k
}

// BatchWrite applies a sequence of heterogeneous mutations in one
// transaction. The whole batch is all-or-nothing: if any op fails, every
// preceding op — including its audit record — is rolled back and the error
// identifies the offending op by index. The write lock is taken once for
// the batch, so a thousand creates cost one lock acquisition and one
// undo-log commit instead of a thousand; attribute definitions referenced
// repeatedly are resolved once per batch.
func (c *Catalog) BatchWrite(dn string, ops []BatchOp, opts ...OpOption) ([]BatchResult, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrInvalidInput)
	}
	op := applyOpOptions(opts)
	defs := make(map[string]AttributeDef)
	results := make([]BatchResult, 0, len(ops))
	err := c.withReplay(op, "batchWrite", &results, func(tx *sqldb.Tx) error {
		for i, b := range ops {
			res, err := c.applyBatchOp(tx, dn, b, op, defs)
			if err != nil {
				return fmt.Errorf("batch op %d: %w", i, err)
			}
			results = append(results, res)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// applyBatchOp dispatches one batch op inside the batch transaction.
func (c *Catalog) applyBatchOp(tx *sqldb.Tx, dn string, b BatchOp, op opSettings, defs map[string]AttributeDef) (BatchResult, error) {
	switch b.kind() {
	case "createFile":
		f, err := c.createFileTx(tx, dn, *b.CreateFile, op, defs)
		if err != nil {
			return BatchResult{}, err
		}
		return BatchResult{Action: "createFile", File: &f, ID: f.ID, Version: f.Version}, nil
	case "updateFile":
		u := b.UpdateFile
		f, err := c.updateFileTx(tx, dn, u.Name, u.Version, u.Update, op)
		if err != nil {
			return BatchResult{}, err
		}
		return BatchResult{Action: "updateFile", File: &f, ID: f.ID, Version: f.Version}, nil
	case "deleteFile":
		d := b.DeleteFile
		id, err := c.deleteFileTx(tx, dn, d.Name, d.Version, op)
		if err != nil {
			return BatchResult{}, err
		}
		return BatchResult{Action: "deleteFile", ID: id}, nil
	case "setAttribute":
		s := b.SetAttribute
		err := c.setAttributeTx(tx, dn, s.Object, s.Name, s.Attribute.Name, s.Attribute.Value, defs)
		if err != nil {
			return BatchResult{}, err
		}
		return BatchResult{Action: "setAttribute"}, nil
	case "annotate":
		a := b.Annotate
		ann, err := c.annotateTx(tx, dn, a.Object, a.Name, a.Text)
		if err != nil {
			return BatchResult{}, err
		}
		return BatchResult{Action: "annotate", ID: ann.ID}, nil
	default:
		return BatchResult{}, fmt.Errorf("%w: batch op must set exactly one operation", ErrInvalidInput)
	}
}
