package core

import (
	"sync"

	"mcs/internal/sqldb"
)

// Epoch-versioned hot-path caches.
//
// The sqldb engine bumps a commit epoch exactly once per committed write
// (DML, DDL, snapshot load) and never on reads or rollbacks, so a value
// derived from committed state is valid for as long as the epoch stands.
// Catalog memoizes three read-path computations on that basis: the
// collection parent map (the authorization hierarchy walk), individual
// authorization decisions, and file-by-name lookups.
//
// The protocol: capture the epoch BEFORE issuing the underlying query,
// then store the result under that epoch. If a commit lands in between,
// the query may observe the newer root and the entry holds data fresher
// than its epoch tag — equivalent to the uncached read racing the commit
// and landing after it, so still correct. The reverse (stale data under a
// fresh tag) cannot happen: queries never observe roots older than a
// previously loaded epoch.
//
// Caches apply only to reads through the database itself. Reads through an
// open transaction must see the transaction's own uncommitted writes and
// therefore always bypass the caches (see cacheEpoch).

// cacheMaxEntries bounds each cache's footprint; one arbitrary entry is
// evicted on overflow (the same single-victim policy as the statement
// cache — epoch bumps clear everything anyway on the next write).
const cacheMaxEntries = 8192

// epochCache is a mutex-protected memo valid for exactly one commit epoch.
// A lookup or store tagged with a different epoch than the cache currently
// holds discards the generation wholesale.
type epochCache[K comparable, V any] struct {
	mu    sync.Mutex
	epoch uint64
	m     map[K]V
}

func (ec *epochCache[K, V]) get(epoch uint64, k K) (V, bool) {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	if ec.m == nil || ec.epoch != epoch {
		var zero V
		return zero, false
	}
	v, ok := ec.m[k]
	return v, ok
}

func (ec *epochCache[K, V]) put(epoch uint64, k K, v V) {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	if ec.m == nil || ec.epoch != epoch {
		if epoch < ec.epoch {
			return // a reader that began before the last commit; ignore
		}
		ec.epoch = epoch
		ec.m = make(map[K]V)
	}
	if len(ec.m) >= cacheMaxEntries {
		for old := range ec.m {
			delete(ec.m, old)
			break
		}
	}
	ec.m[k] = v
}

// authzCacheKey identifies one authorization decision.
type authzCacheKey struct {
	dn   string
	typ  ObjectType
	id   int64
	perm Permission
}

// fileCacheKey identifies one file lookup; version 0 is the "sole version"
// resolution, cached only when it succeeds (so a cached entry is known
// unambiguous at its epoch).
type fileCacheKey struct {
	name    string
	version int
}

// cacheEpoch reports whether reads through q may consult the epoch caches,
// and at which epoch. Only direct database reads qualify: a transaction
// must observe its own uncommitted writes, which no committed-state cache
// can reflect.
func (c *Catalog) cacheEpoch(q querier) (uint64, bool) {
	if db, ok := q.(*sqldb.DB); ok && db == c.db {
		return db.Epoch(), true
	}
	return 0, false
}
