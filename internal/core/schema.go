package core

import (
	"fmt"

	"mcs/internal/sqldb"
)

// ddl is the predefined MCS schema, following section 5 of the paper.
// The index set mirrors the evaluation setup: "indexes on logical file
// names, logical collection names and logical views … on the
// database-assigned identifiers for these items and on (name,id) pairs",
// plus per-type value indexes for user-defined attribute matching.
var ddl = []string{
	`CREATE TABLE logical_file (
		id INTEGER PRIMARY KEY AUTOINCREMENT,
		name TEXT NOT NULL,
		version INTEGER NOT NULL,
		data_type TEXT,
		valid BOOLEAN NOT NULL,
		collection_id INTEGER,
		container_id TEXT,
		container_service TEXT,
		master_copy TEXT,
		creator TEXT NOT NULL,
		last_modifier TEXT,
		created DATETIME NOT NULL,
		modified DATETIME,
		audited BOOLEAN NOT NULL
	)`,
	`CREATE INDEX lf_name ON logical_file (name, version)`,
	`CREATE INDEX lf_name_id ON logical_file (name, id)`,
	`CREATE INDEX lf_collection ON logical_file (collection_id)`,

	`CREATE TABLE logical_collection (
		id INTEGER PRIMARY KEY AUTOINCREMENT,
		name TEXT NOT NULL UNIQUE,
		description TEXT,
		parent_id INTEGER,
		creator TEXT NOT NULL,
		last_modifier TEXT,
		created DATETIME NOT NULL,
		modified DATETIME,
		audited BOOLEAN NOT NULL
	)`,
	`CREATE INDEX lc_name_id ON logical_collection (name, id)`,
	`CREATE INDEX lc_parent ON logical_collection (parent_id)`,

	`CREATE TABLE logical_view (
		id INTEGER PRIMARY KEY AUTOINCREMENT,
		name TEXT NOT NULL UNIQUE,
		description TEXT,
		creator TEXT NOT NULL,
		last_modifier TEXT,
		created DATETIME NOT NULL,
		modified DATETIME,
		audited BOOLEAN NOT NULL
	)`,
	`CREATE INDEX lv_name_id ON logical_view (name, id)`,

	`CREATE TABLE view_member (
		id INTEGER PRIMARY KEY AUTOINCREMENT,
		view_id INTEGER NOT NULL,
		object_type TEXT NOT NULL,
		object_id INTEGER NOT NULL
	)`,
	`CREATE INDEX vm_view ON view_member (view_id)`,
	`CREATE INDEX vm_object ON view_member (object_type, object_id)`,

	`CREATE TABLE attribute_def (
		id INTEGER PRIMARY KEY AUTOINCREMENT,
		name TEXT NOT NULL UNIQUE,
		type TEXT NOT NULL,
		description TEXT,
		creator TEXT,
		created DATETIME NOT NULL
	)`,

	`CREATE TABLE user_attribute (
		id INTEGER PRIMARY KEY AUTOINCREMENT,
		object_type TEXT NOT NULL,
		object_id INTEGER NOT NULL,
		attr_id INTEGER NOT NULL,
		sval TEXT,
		ival INTEGER,
		fval FLOAT,
		tval DATETIME
	)`,
	`CREATE INDEX ua_object ON user_attribute (object_type, object_id)`,
	`CREATE INDEX ua_oid ON user_attribute (object_id)`,
	// The per-type value indexes carry object_type and object_id behind the
	// probed columns so a multi-attribute query stage is fully covered: the
	// planner's set-intersection executor answers "which objects have
	// attr A = V" from index entries alone — no row fetches, no residual
	// filter evaluation — which is what keeps Fig. 11 flat as the
	// attribute count grows. Equality probes consume (attr_id, object_type,
	// value); range predicates use the (attr_id, object_type) prefix with a
	// range on the value column.
	`CREATE INDEX ua_attr_s ON user_attribute (attr_id, object_type, sval, object_id)`,
	`CREATE INDEX ua_attr_i ON user_attribute (attr_id, object_type, ival, object_id)`,
	`CREATE INDEX ua_attr_f ON user_attribute (attr_id, object_type, fval, object_id)`,
	`CREATE INDEX ua_attr_t ON user_attribute (attr_id, object_type, tval, object_id)`,

	`CREATE TABLE acl (
		id INTEGER PRIMARY KEY AUTOINCREMENT,
		object_type TEXT NOT NULL,
		object_id INTEGER NOT NULL,
		principal TEXT NOT NULL,
		permission TEXT NOT NULL
	)`,
	`CREATE INDEX acl_object ON acl (object_type, object_id)`,
	`CREATE INDEX acl_principal ON acl (principal)`,

	`CREATE TABLE audit_log (
		id INTEGER PRIMARY KEY AUTOINCREMENT,
		object_type TEXT NOT NULL,
		object_id INTEGER NOT NULL,
		action TEXT NOT NULL,
		dn TEXT NOT NULL,
		detail TEXT,
		request_id TEXT,
		at DATETIME NOT NULL
	)`,
	`CREATE INDEX audit_object ON audit_log (object_type, object_id)`,

	`CREATE TABLE annotation (
		id INTEGER PRIMARY KEY AUTOINCREMENT,
		object_type TEXT NOT NULL,
		object_id INTEGER NOT NULL,
		annotation TEXT NOT NULL,
		dn TEXT NOT NULL,
		at DATETIME NOT NULL
	)`,
	`CREATE INDEX ann_object ON annotation (object_type, object_id)`,

	`CREATE TABLE provenance (
		id INTEGER PRIMARY KEY AUTOINCREMENT,
		file_id INTEGER NOT NULL,
		description TEXT NOT NULL,
		at DATETIME NOT NULL
	)`,
	`CREATE INDEX prov_file ON provenance (file_id)`,

	`CREATE TABLE writer (
		id INTEGER PRIMARY KEY AUTOINCREMENT,
		dn TEXT NOT NULL UNIQUE,
		description TEXT,
		institution TEXT,
		address TEXT,
		phone TEXT,
		email TEXT
	)`,

	`CREATE TABLE external_catalog (
		id INTEGER PRIMARY KEY AUTOINCREMENT,
		name TEXT NOT NULL UNIQUE,
		type TEXT NOT NULL,
		host TEXT,
		ip TEXT,
		description TEXT
	)`,

	replayTableDDL,
}

// staticFileColumns maps queryable predefined logical-file attribute names
// to their column and attribute type. These are the "static attributes" of
// the paper's simple-query workload.
var staticFileColumns = map[string]struct {
	column string
	typ    AttrType
}{
	"name":             {"name", AttrString},
	"version":          {"version", AttrInt},
	"dataType":         {"data_type", AttrString},
	"creator":          {"creator", AttrString},
	"lastModifier":     {"last_modifier", AttrString},
	"containerId":      {"container_id", AttrString},
	"containerService": {"container_service", AttrString},
	"masterCopy":       {"master_copy", AttrString},
	"created":          {"created", AttrDateTime},
	"modified":         {"modified", AttrDateTime},
	"valid":            {"valid", AttrInt}, // 0/1 via int predicate
	"collectionId":     {"collection_id", AttrInt},
}

// applySchema creates all MCS tables and indexes in db.
func applySchema(db *sqldb.DB) error {
	for _, stmt := range ddl {
		if _, err := db.Exec(stmt); err != nil {
			return fmt.Errorf("mcs: apply schema: %w", err)
		}
	}
	return nil
}
