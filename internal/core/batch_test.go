package core

import (
	"errors"
	"strings"
	"testing"
)

// rowCount returns the number of rows currently in table.
func rowCount(t *testing.T, c *Catalog, table string) int {
	t.Helper()
	rows, err := c.db.Query("SELECT id FROM " + table)
	if err != nil {
		t.Fatal(err)
	}
	return len(rows.Data)
}

func TestBatchWriteMixedOps(t *testing.T) {
	c := openCatalog(t)
	if _, err := c.DefineAttribute(alice, "color", AttrString, ""); err != nil {
		t.Fatal(err)
	}
	dt := "binary"
	results, err := c.BatchWrite(alice, []BatchOp{
		{CreateFile: &FileSpec{Name: "b1"}},
		{CreateFile: &FileSpec{Name: "b2"}},
		{UpdateFile: &BatchFileUpdate{Name: "b1", Update: FileUpdate{DataType: &dt}}},
		{SetAttribute: &BatchSetAttribute{Object: ObjectFile, Name: "b2",
			Attribute: Attribute{Name: "color", Value: String("red")}}},
		{Annotate: &BatchAnnotation{Object: ObjectFile, Name: "b1", Text: "note"}},
		{DeleteFile: &BatchFileRef{Name: "b2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantActions := []string{"createFile", "createFile", "updateFile", "setAttribute", "annotate", "deleteFile"}
	if len(results) != len(wantActions) {
		t.Fatalf("got %d results, want %d", len(results), len(wantActions))
	}
	for i, r := range results {
		if r.Action != wantActions[i] {
			t.Fatalf("result %d action = %q, want %q", i, r.Action, wantActions[i])
		}
	}
	if results[0].ID == 0 || results[0].Version != 1 || results[0].File == nil {
		t.Fatalf("create result = %+v", results[0])
	}
	if results[2].Version != 1 || results[2].File == nil || results[2].File.DataType != "binary" {
		t.Fatalf("update result = %+v", results[2])
	}
	f, err := c.GetFile(alice, "b1", 0)
	if err != nil || f.DataType != "binary" {
		t.Fatalf("b1 after batch = %+v, %v", f, err)
	}
	if _, err := c.GetFile(alice, "b2", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("b2 should be deleted, err = %v", err)
	}
	anns, err := c.Annotations(alice, ObjectFile, "b1")
	if err != nil || len(anns) != 1 || anns[0].Text != "note" {
		t.Fatalf("annotations = %+v, %v", anns, err)
	}
}

func TestBatchWriteAtomicMidBatchFailure(t *testing.T) {
	c := openCatalog(t)
	if _, err := c.DefineAttribute(alice, "color", AttrString, ""); err != nil {
		t.Fatal(err)
	}
	files0 := rowCount(t, c, "logical_file")
	attrs0 := rowCount(t, c, "user_attribute")
	audit0 := rowCount(t, c, "audit_log")
	anns0 := rowCount(t, c, "annotation")

	// Three ops succeed — an audited create, an attribute bind and an
	// annotation, each of which writes rows — then op 3 references an
	// undefined attribute and must roll everything back.
	_, err := c.BatchWrite(alice, []BatchOp{
		{CreateFile: &FileSpec{Name: "atomic-1", Audited: true}},
		{SetAttribute: &BatchSetAttribute{Object: ObjectFile, Name: "atomic-1",
			Attribute: Attribute{Name: "color", Value: String("blue")}}},
		{Annotate: &BatchAnnotation{Object: ObjectFile, Name: "atomic-1", Text: "doomed"}},
		{CreateFile: &FileSpec{Name: "atomic-2", Attributes: []Attribute{
			{Name: "undefined-attr", Value: String("x")}}}},
	})
	if err == nil {
		t.Fatal("batch with bad op committed")
	}
	if !strings.Contains(err.Error(), "batch op 3") {
		t.Fatalf("error does not name the failing op: %v", err)
	}
	if _, err := c.GetFile(alice, "atomic-1", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("atomic-1 survived a failed batch, err = %v", err)
	}
	for table, before := range map[string]int{
		"logical_file": files0, "user_attribute": attrs0,
		"audit_log": audit0, "annotation": anns0,
	} {
		if n := rowCount(t, c, table); n != before {
			t.Fatalf("%s has %d rows after failed batch, want %d", table, n, before)
		}
	}
}

func TestBatchWriteValidation(t *testing.T) {
	c := openCatalog(t)
	if _, err := c.BatchWrite(alice, nil); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("empty batch err = %v", err)
	}
	// An op that sets no operation (or two) is rejected and nothing commits.
	_, err := c.BatchWrite(alice, []BatchOp{
		{CreateFile: &FileSpec{Name: "v1"}},
		{},
	})
	if !errors.Is(err, ErrInvalidInput) || !strings.Contains(err.Error(), "batch op 1") {
		t.Fatalf("zero-op batch err = %v", err)
	}
	if _, err := c.GetFile(alice, "v1", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("v1 created despite invalid batch, err = %v", err)
	}
}

func TestBatchWriteAuthzAtomic(t *testing.T) {
	c := openAuthzCatalog(t)
	// Bob has no create rights: a batch mixing an allowed caller's shape
	// with a denied op must leave nothing behind.
	_, err := c.BatchWrite(bob, []BatchOp{
		{CreateFile: &FileSpec{Name: "denied-1"}},
	})
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v, want ErrDenied", err)
	}
	if _, err := c.GetFile(admin, "denied-1", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("denied-1 exists, err = %v", err)
	}
}
