package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"mcs/internal/sqldb"
)

// A retried mutation carrying the same idempotency key must be answered
// from the replay cache: applied once, audited once, same result.
func TestReplayedCreateAppliedAndAuditedOnce(t *testing.T) {
	c, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	dn := "/CN=writer"
	opts := []OpOption{WithRequestID("req-1"), WithIdempotencyKey("key-1")}

	first, err := c.CreateFile(dn, FileSpec{Name: "f.dat", Audited: true}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := c.CreateFile(dn, FileSpec{Name: "f.dat", Audited: true}, opts...)
	if err != nil {
		t.Fatalf("replay = %v, want cached success (not ErrExists)", err)
	}
	if replayed.ID != first.ID || replayed.Version != first.Version {
		t.Fatalf("replayed = %+v, want the original result %+v", replayed, first)
	}
	if vs, _ := c.FileVersions(dn, "f.dat"); len(vs) != 1 {
		t.Fatalf("versions = %d, want exactly one", len(vs))
	}
	recs, err := c.AuditLog(dn, ObjectFile, "f.dat")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("audit records = %d, want 1 (replay must not re-audit)", len(recs))
	}
	if got := c.ReplayHits(); got != 1 {
		t.Fatalf("ReplayHits = %d, want 1", got)
	}
}

// Reusing an idempotency key for a different operation is a caller bug and
// must be rejected, not answered with the other operation's cached result.
func TestReplayKeyReuseAcrossActionsRejected(t *testing.T) {
	c, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	dn := "/CN=writer"
	if _, err := c.CreateFile(dn, FileSpec{Name: "a"}, WithIdempotencyKey("shared")); err != nil {
		t.Fatal(err)
	}
	_, err = c.CreateCollection(dn, CollectionSpec{Name: "c"}, WithIdempotencyKey("shared"))
	if !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("cross-action key reuse = %v, want ErrInvalidInput", err)
	}
}

// The replay cache is bounded: old records are pruned as new ones land, so
// a long-lived server cannot grow it without limit.
func TestReplayCacheBounded(t *testing.T) {
	c, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	const extra = 32
	for i := 0; i < ReplayCacheBound+extra; i++ {
		key := fmt.Sprintf("k-%05d", i)
		err := c.db.Update(func(tx *sqldb.Tx) error {
			return c.replayPutTx(tx, key, "test", nil)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	rows, err := c.db.Query("SELECT id FROM replay_cache")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rows.Data); n != ReplayCacheBound {
		t.Fatalf("replay cache rows = %d, want pruned to %d", n, ReplayCacheBound)
	}
	// The survivors are the newest entries; the oldest were pruned.
	ok, err := c.db.Query("SELECT id FROM replay_cache WHERE idem_key = ?", sqldb.Text("k-00000"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ok.Data) != 0 {
		t.Fatal("oldest key survived pruning")
	}
}

// Replay records ride along in snapshots: after a restart, a still-retrying
// client's replay must hit the cache, not re-apply or fail with ErrExists.
func TestReplayCacheSurvivesSnapshot(t *testing.T) {
	c, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	dn := "/CN=writer"
	first, err := c.CreateFile(dn, FileSpec{Name: "snap.dat"}, WithIdempotencyKey("snap-key"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(Options{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := restored.CreateFile(dn, FileSpec{Name: "snap.dat"}, WithIdempotencyKey("snap-key"))
	if err != nil {
		t.Fatalf("replay after restore = %v, want cached success", err)
	}
	if replayed.ID != first.ID {
		t.Fatalf("replayed ID = %d, want %d", replayed.ID, first.ID)
	}
	if vs, _ := restored.FileVersions(dn, "snap.dat"); len(vs) != 1 {
		t.Fatalf("versions after restore = %d, want 1", len(vs))
	}
}

// Snapshots taken before the replay cache existed restore cleanly: Restore
// creates the missing table so idempotent writes work immediately.
func TestRestoreUpgradesLegacySnapshot(t *testing.T) {
	c, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	dn := "/CN=writer"
	if _, err := c.CreateFile(dn, FileSpec{Name: "old.dat"}); err != nil {
		t.Fatal(err)
	}
	// Simulate a pre-replay-cache snapshot by dropping the table first.
	if _, err := c.db.Exec("DROP TABLE replay_cache"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(Options{}, &buf)
	if err != nil {
		t.Fatalf("restore of legacy snapshot = %v", err)
	}
	if _, err := restored.CreateFile(dn, FileSpec{Name: "new.dat"}, WithIdempotencyKey("up-key")); err != nil {
		t.Fatalf("idempotent write after legacy restore = %v", err)
	}
	if _, err := restored.CreateFile(dn, FileSpec{Name: "new.dat"}, WithIdempotencyKey("up-key")); err != nil {
		t.Fatalf("replay after legacy restore = %v", err)
	}
}
