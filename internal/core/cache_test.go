package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// countStatements runs fn with a fault hook that tallies statements per
// verb, returning the tally. The hook is removed afterwards.
func countStatements(c *Catalog, fn func()) map[string]int {
	var selects, writes atomic.Int64
	c.db.SetFaultHook(func(verb string) error {
		if verb == "select" {
			selects.Add(1)
		} else {
			writes.Add(1)
		}
		return nil
	})
	defer c.db.SetFaultHook(nil)
	fn()
	return map[string]int{"select": int(selects.Load()), "other": int(writes.Load())}
}

// deepCatalog builds a collection chain root -> c1 -> ... -> c<depth> with
// one file in the deepest collection, owned by admin, and grants bob read
// on the root so authorization must walk the entire chain.
func deepCatalog(t *testing.T, depth int) (*Catalog, string) {
	t.Helper()
	c := openAuthzCatalog(t)
	parent := ""
	for i := 0; i <= depth; i++ {
		name := fmt.Sprintf("c%d", i)
		if _, err := c.CreateCollection(admin, CollectionSpec{Name: name, Parent: parent}); err != nil {
			t.Fatal(err)
		}
		parent = name
	}
	if _, err := c.CreateFile(admin, FileSpec{Name: "deep.dat", Collection: parent}); err != nil {
		t.Fatal(err)
	}
	if err := c.Grant(admin, ObjectCollection, "c0", bob, PermRead); err != nil {
		t.Fatal(err)
	}
	return c, "deep.dat"
}

// TestAuthzChainStatementCountIsDepthIndependent asserts the satellite fix
// for the authorization N+1: resolving a read through an inherited grant on
// the hierarchy root must issue the same number of statements regardless of
// how deep the hierarchy is (the old walk issued three per level: the
// parent lookup, the creator lookup and the grant probe).
func TestAuthzChainStatementCountIsDepthIndependent(t *testing.T) {
	counts := make([]int, 0, 2)
	for _, depth := range []int{3, 12} {
		c, name := deepCatalog(t, depth)
		stmts := countStatements(c, func() {
			if _, err := c.GetFile(bob, name, 1); err != nil {
				t.Fatalf("depth %d: %v", depth, err)
			}
		})
		if stmts["other"] != 0 {
			t.Fatalf("depth %d: read issued %d write statements", depth, stmts["other"])
		}
		counts = append(counts, stmts["select"])
	}
	if counts[0] != counts[1] {
		t.Fatalf("statement count grows with hierarchy depth: depth 3 = %d, depth 12 = %d",
			counts[0], counts[1])
	}
	if counts[0] == 0 {
		t.Fatal("fault hook observed no statements")
	}
}

// TestEpochCachesAnswerRepeatReads asserts that a repeated read at the same
// commit epoch is answered entirely from the file and authorization caches:
// zero statements reach the engine.
func TestEpochCachesAnswerRepeatReads(t *testing.T) {
	c, name := deepCatalog(t, 4)
	if _, err := c.GetFile(bob, name, 1); err != nil { // warm the caches
		t.Fatal(err)
	}
	stmts := countStatements(c, func() {
		f, err := c.GetFile(bob, name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if f.Name != name {
			t.Fatalf("cached file = %+v", f)
		}
	})
	if stmts["select"] != 0 {
		t.Fatalf("repeat read issued %d statements, want 0 (cache hit)", stmts["select"])
	}
}

// TestEpochCachesInvalidatedByCommit asserts that cached decisions never
// outlive the epoch they were computed at: a revoke (one committed write)
// must be visible to the very next read.
func TestEpochCachesInvalidatedByCommit(t *testing.T) {
	c, name := deepCatalog(t, 4)
	if _, err := c.GetFile(bob, name, 1); err != nil {
		t.Fatal(err) // caches now hold "bob may read" at the current epoch
	}
	if err := c.Revoke(admin, ObjectCollection, "c0", bob, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetFile(bob, name, 1); !errors.Is(err, ErrDenied) {
		t.Fatalf("read after revoke = %v, want ErrDenied", err)
	}
	// And the reverse: a fresh grant is visible immediately too.
	if err := c.Grant(admin, ObjectCollection, "c2", bob, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetFile(bob, name, 1); err != nil {
		t.Fatalf("read after re-grant: %v", err)
	}
}

// TestFileCacheSeesUpdates asserts the file-by-name cache never serves
// pre-update metadata after a committed UpdateFile.
func TestFileCacheSeesUpdates(t *testing.T) {
	c := openCatalog(t)
	if _, err := c.CreateFile(alice, FileSpec{Name: "f", DataType: "binary"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetFile(alice, "f", 0); err != nil { // warm the cache
		t.Fatal(err)
	}
	newType := "hdf5"
	if _, err := c.UpdateFile(alice, "f", 0, FileUpdate{DataType: &newType}); err != nil {
		t.Fatal(err)
	}
	f, err := c.GetFile(alice, "f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.DataType != "hdf5" {
		t.Fatalf("DataType after update = %q, cache served stale metadata", f.DataType)
	}
}

// TestRunQueryAttrsStatementCountIsResultIndependent asserts the hydration
// batching: returning attributes for N matches must cost the same number of
// statements for any N (the old path ran GetAttributes once per match).
func TestRunQueryAttrsStatementCountIsResultIndependent(t *testing.T) {
	counts := make([]int, 0, 2)
	for _, n := range []int{4, 16} {
		c := openCatalog(t)
		if _, err := c.DefineAttribute(alice, "experiment", AttrString, ""); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			_, err := c.CreateFile(alice, FileSpec{
				Name:       fmt.Sprintf("file%02d", i),
				DataType:   "gwf",
				Attributes: []Attribute{{Name: "experiment", Value: String("ligo")}},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		q := Query{Predicates: []Predicate{{Attribute: "experiment", Op: OpEq, Value: String("ligo")}}}
		stmts := countStatements(c, func() {
			res, err := c.RunQueryAttrs(alice, q, []string{"experiment"})
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != n {
				t.Fatalf("results = %d, want %d", len(res), n)
			}
			for _, r := range res {
				if len(r.Attributes) != 1 || r.Attributes[0].Value.S != "ligo" {
					t.Fatalf("hydrated %q = %+v", r.Name, r.Attributes)
				}
			}
		})
		counts = append(counts, stmts["select"])
	}
	if counts[0] != counts[1] {
		t.Fatalf("statement count grows with result size: n=4 -> %d, n=16 -> %d",
			counts[0], counts[1])
	}
}

// TestQueryFilesStatementCountIsResultIndependent does the same for the
// full-metadata QueryFiles path (formerly one FileVersions per match).
func TestQueryFilesStatementCountIsResultIndependent(t *testing.T) {
	counts := make([]int, 0, 2)
	for _, n := range []int{4, 16} {
		c := openCatalog(t)
		for i := 0; i < n; i++ {
			if _, err := c.CreateFile(alice, FileSpec{Name: fmt.Sprintf("file%02d", i), DataType: "gwf"}); err != nil {
				t.Fatal(err)
			}
		}
		q := Query{Predicates: []Predicate{{Attribute: "dataType", Op: OpEq, Value: String("gwf")}}}
		stmts := countStatements(c, func() {
			files, err := c.QueryFiles(alice, q)
			if err != nil {
				t.Fatal(err)
			}
			if len(files) != n {
				t.Fatalf("files = %d, want %d", len(files), n)
			}
		})
		counts = append(counts, stmts["select"])
	}
	if counts[0] != counts[1] {
		t.Fatalf("statement count grows with result size: n=4 -> %d, n=16 -> %d",
			counts[0], counts[1])
	}
}

// TestRunQueryAuthzFilterBatched: with authorization on, the post-query
// visibility filter must not issue one resolve per matched name. The
// per-name authorization decisions themselves are epoch-cached, so a
// repeated query costs only the resolve batch plus the match query.
func TestRunQueryAuthzFilterBatched(t *testing.T) {
	c := openAuthzCatalog(t)
	if err := c.Grant(admin, ObjectService, "", alice, PermCreate); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := c.CreateFile(alice, FileSpec{Name: fmt.Sprintf("file%02d", i), DataType: "gwf"}); err != nil {
			t.Fatal(err)
		}
	}
	q := Query{Predicates: []Predicate{{Attribute: "dataType", Op: OpEq, Value: String("gwf")}}}
	first, err := c.RunQuery(alice, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 12 {
		t.Fatalf("visible = %d, want 12", len(first))
	}
	stmts := countStatements(c, func() {
		again, err := c.RunQuery(alice, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != 12 {
			t.Fatalf("visible on repeat = %d, want 12", len(again))
		}
	})
	// Match query + one resolve chunk; every allowed() decision is a cache
	// hit from the first run.
	if stmts["select"] > 2 {
		t.Fatalf("repeat authz-filtered query issued %d statements, want <= 2", stmts["select"])
	}
}
