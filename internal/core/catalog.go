package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"mcs/internal/sqldb"
)

// Sentinel errors surfaced by catalog operations.
var (
	ErrNotFound      = errors.New("mcs: not found")
	ErrExists        = errors.New("mcs: already exists")
	ErrDenied        = errors.New("mcs: permission denied")
	ErrInvalidInput  = errors.New("mcs: invalid input")
	ErrCycle         = errors.New("mcs: operation would create a cycle")
	ErrNotEmpty      = errors.New("mcs: collection not empty")
	ErrAmbiguousFile = errors.New("mcs: multiple versions exist; specify a version")
	// ErrUnavailable marks transient server-side failures (injected faults,
	// overload) that are safe to retry; the SOAP layer maps it to the
	// "Unavailable" fault code.
	ErrUnavailable = errors.New("mcs: temporarily unavailable")
)

// Options configures a Catalog.
type Options struct {
	// Owner is the DN bootstrapped with service-level rights. Required when
	// EnforceAuthz is set.
	Owner string
	// EnforceAuthz turns on authorization checks. When false the catalog
	// trusts every caller (the mode used for the scalability study).
	EnforceAuthz bool
	// Clock overrides time.Now, for deterministic tests.
	Clock func() time.Time
}

// Catalog is the Metadata Catalog Service engine. It is safe for concurrent
// use by multiple goroutines.
type Catalog struct {
	db    *sqldb.DB
	opts  Options
	authz bool
	// replayHits counts mutations answered from the replay cache instead
	// of re-applied (see withReplay).
	replayHits atomic.Int64
	// Epoch-versioned read caches, invalidated by commit epoch (cache.go).
	hierCache  epochCache[struct{}, map[int64]int64]
	authzCache epochCache[authzCacheKey, bool]
	fileCache  epochCache[fileCacheKey, File]
}

// Open creates a fresh in-memory catalog with the MCS schema applied.
func Open(opts Options) (*Catalog, error) {
	if opts.EnforceAuthz && opts.Owner == "" {
		return nil, fmt.Errorf("%w: authorization requires an owner DN", ErrInvalidInput)
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	db := sqldb.New()
	if err := applySchema(db); err != nil {
		return nil, err
	}
	c := &Catalog{db: db, opts: opts, authz: opts.EnforceAuthz}
	if opts.Owner != "" {
		for _, p := range []Permission{PermRead, PermWrite, PermCreate, PermDelete, PermAnnotate} {
			if _, err := db.Exec(
				"INSERT INTO acl (object_type, object_id, principal, permission) VALUES (?, 0, ?, ?)",
				sqldb.Text(string(ObjectService)), sqldb.Text(opts.Owner), sqldb.Text(string(p))); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// DB exposes the underlying database for the benchmark harness's
// direct-database baseline (the "MySQL without web service" series).
func (c *Catalog) DB() *sqldb.DB { return c.db }

func (c *Catalog) now() sqldb.Value { return sqldb.Time(c.opts.Clock()) }

// FileSpec describes a logical file to create.
type FileSpec struct {
	Name             string
	Version          int // 0 assigns the next version number
	DataType         string
	Collection       string // optional logical collection name
	ContainerID      string
	ContainerService string
	MasterCopy       string
	Audited          bool
	Attributes       []Attribute // user-defined attributes set atomically
	Provenance       string      // optional initial creation record
}

// CreateFile registers a logical file and its user-defined attributes as one
// atomic operation, returning the stored static metadata.
func (c *Catalog) CreateFile(dn string, spec FileSpec, opts ...OpOption) (File, error) {
	op := applyOpOptions(opts)
	var out File
	err := c.withReplay(op, "createFile", &out, func(tx *sqldb.Tx) error {
		var err error
		out, err = c.createFileTx(tx, dn, spec, op, nil)
		return err
	})
	if err != nil {
		return File{}, err
	}
	return out, nil
}

// createFileTx applies a file creation inside an open transaction. All reads
// go through the transaction (the database write lock is already held).
// defs, when non-nil, memoizes attribute definitions across a batch.
func (c *Catalog) createFileTx(tx *sqldb.Tx, dn string, spec FileSpec, op opSettings, defs map[string]AttributeDef) (File, error) {
	if spec.Name == "" {
		return File{}, fmt.Errorf("%w: file name required", ErrInvalidInput)
	}
	if err := c.requireServiceQ(tx, dn, PermCreate); err != nil {
		return File{}, err
	}
	var collectionID int64
	if spec.Collection != "" {
		col, err := c.getCollectionQ(tx, dn, spec.Collection)
		if err != nil {
			return File{}, fmt.Errorf("collection %q: %w", spec.Collection, err)
		}
		if err := c.requireObjectQ(tx, dn, ObjectCollection, col.ID, PermWrite); err != nil {
			return File{}, err
		}
		collectionID = col.ID
	}
	type resolved struct {
		attrID int64
		col    string
		val    sqldb.Value
	}
	attrs := make([]resolved, 0, len(spec.Attributes))
	for _, a := range spec.Attributes {
		def, err := c.attrDef(tx, defs, a.Name)
		if err != nil {
			return File{}, fmt.Errorf("attribute %q: %w", a.Name, err)
		}
		if def.Type != a.Value.Type {
			return File{}, fmt.Errorf("%w: attribute %q is %s, value is %s",
				ErrInvalidInput, a.Name, def.Type, a.Value.Type)
		}
		attrs = append(attrs, resolved{attrID: def.ID, col: def.Type.storageColumn(), val: a.Value.sqlValue()})
	}

	version := spec.Version
	rows, err := tx.Query("SELECT version FROM logical_file WHERE name = ? ORDER BY version DESC LIMIT 1",
		sqldb.Text(spec.Name))
	if err != nil {
		return File{}, err
	}
	if version == 0 {
		version = 1
		if len(rows.Data) > 0 {
			version = int(rows.Data[0][0].Int()) + 1
		}
	} else {
		dup, err := tx.Query("SELECT id FROM logical_file WHERE name = ? AND version = ?",
			sqldb.Text(spec.Name), sqldb.Int(int64(version)))
		if err != nil {
			return File{}, err
		}
		if len(dup.Data) > 0 {
			return File{}, fmt.Errorf("%w: file %q version %d", ErrExists, spec.Name, version)
		}
	}
	now := c.now()
	res, err := tx.Exec(`INSERT INTO logical_file
		(name, version, data_type, valid, collection_id, container_id,
		 container_service, master_copy, creator, last_modifier, created, modified, audited)
		VALUES (?, ?, ?, TRUE, ?, ?, ?, ?, ?, ?, ?, ?, ?)`,
		sqldb.Text(spec.Name), sqldb.Int(int64(version)), sqldb.Text(spec.DataType),
		nullableID(collectionID), sqldb.Text(spec.ContainerID),
		sqldb.Text(spec.ContainerService), sqldb.Text(spec.MasterCopy),
		sqldb.Text(dn), sqldb.Text(dn), now, now, sqldb.Bool(spec.Audited))
	if err != nil {
		return File{}, err
	}
	fileID := res.LastInsertID
	for _, a := range attrs {
		if _, err := tx.Exec(fmt.Sprintf(
			"INSERT INTO user_attribute (object_type, object_id, attr_id, %s) VALUES (?, ?, ?, ?)", a.col),
			sqldb.Text(string(ObjectFile)), sqldb.Int(fileID), sqldb.Int(a.attrID), a.val); err != nil {
			return File{}, err
		}
	}
	if spec.Provenance != "" {
		if _, err := tx.Exec("INSERT INTO provenance (file_id, description, at) VALUES (?, ?, ?)",
			sqldb.Int(fileID), sqldb.Text(spec.Provenance), now); err != nil {
			return File{}, err
		}
	}
	if spec.Audited {
		if err := c.auditTx(tx, ObjectFile, fileID, "create", dn, spec.Name, op.requestID); err != nil {
			return File{}, err
		}
	}
	return File{
		ID: fileID, Name: spec.Name, Version: version, DataType: spec.DataType,
		Valid: true, CollectionID: collectionID, ContainerID: spec.ContainerID,
		ContainerService: spec.ContainerService, MasterCopy: spec.MasterCopy,
		Creator: dn, LastModifier: dn,
		Created: now.Time(), Modified: now.Time(), Audited: spec.Audited,
	}, nil
}

// nullableID renders 0 as NULL for optional foreign keys.
func nullableID(id int64) sqldb.Value {
	if id == 0 {
		return sqldb.Null()
	}
	return sqldb.Int(id)
}

const fileColumns = `id, name, version, data_type, valid, collection_id,
	container_id, container_service, master_copy, creator, last_modifier,
	created, modified, audited`

func scanFile(row []sqldb.Value) File {
	f := File{
		ID:       row[0].Int(),
		Name:     row[1].S,
		Version:  int(row[2].Int()),
		DataType: row[3].S,
		Valid:    row[4].Bool(),
	}
	if !row[5].IsNull() {
		f.CollectionID = row[5].Int()
	}
	f.ContainerID = row[6].S
	f.ContainerService = row[7].S
	f.MasterCopy = row[8].S
	f.Creator = row[9].S
	f.LastModifier = row[10].S
	f.Created = row[11].Time()
	f.Modified = row[12].Time()
	f.Audited = row[13].Bool()
	return f
}

// GetFile fetches a logical file by name. version 0 selects the only
// version if unique, otherwise the call fails with ErrAmbiguousFile,
// matching the paper's rule that name and version together identify the
// item once multiple versions exist.
func (c *Catalog) GetFile(dn, name string, version int) (File, error) {
	return c.getFileQ(c.db, dn, name, version)
}

// getFileQ is GetFile reading through q. Database reads memoize the lookup
// in the epoch-versioned file cache; the authorization check always runs
// (it has its own cache) so a hit never widens access.
func (c *Catalog) getFileQ(q querier, dn, name string, version int) (File, error) {
	epoch, cacheable := c.cacheEpoch(q)
	key := fileCacheKey{name: name, version: version}
	if cacheable {
		if f, ok := c.fileCache.get(epoch, key); ok {
			if err := c.requireFileQ(q, dn, &f, PermRead); err != nil {
				return File{}, err
			}
			return f, nil
		}
	}
	var rows *sqldb.Rows
	var err error
	if version == 0 {
		rows, err = q.Query("SELECT "+fileColumns+" FROM logical_file WHERE name = ?",
			sqldb.Text(name))
	} else {
		rows, err = q.Query("SELECT "+fileColumns+" FROM logical_file WHERE name = ? AND version = ?",
			sqldb.Text(name), sqldb.Int(int64(version)))
	}
	if err != nil {
		return File{}, err
	}
	if len(rows.Data) == 0 {
		return File{}, fmt.Errorf("%w: file %q", ErrNotFound, name)
	}
	if version == 0 && len(rows.Data) > 1 {
		return File{}, fmt.Errorf("%w: file %q has %d versions", ErrAmbiguousFile, name, len(rows.Data))
	}
	f := scanFile(rows.Data[0])
	if cacheable {
		c.fileCache.put(epoch, key, f)
	}
	if err := c.requireFileQ(q, dn, &f, PermRead); err != nil {
		return File{}, err
	}
	return f, nil
}

// FileVersions lists all versions of a logical file name, oldest first.
func (c *Catalog) FileVersions(dn, name string) ([]File, error) {
	rows, err := c.db.Query("SELECT "+fileColumns+" FROM logical_file WHERE name = ? ORDER BY version",
		sqldb.Text(name))
	if err != nil {
		return nil, err
	}
	files := make([]File, 0, len(rows.Data))
	for _, row := range rows.Data {
		f := scanFile(row)
		if err := c.requireFile(dn, &f, PermRead); err != nil {
			continue // unreadable versions are filtered, not fatal
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%w: file %q", ErrNotFound, name)
	}
	return files, nil
}

// FileUpdate holds the modifiable static attributes of a logical file.
// Nil pointers leave the field unchanged.
type FileUpdate struct {
	DataType         *string
	Valid            *bool
	ContainerID      *string
	ContainerService *string
	MasterCopy       *string
}

// UpdateFile modifies static attributes of a file.
func (c *Catalog) UpdateFile(dn, name string, version int, upd FileUpdate, opts ...OpOption) (File, error) {
	op := applyOpOptions(opts)
	var out File
	err := c.withReplay(op, "updateFile", &out, func(tx *sqldb.Tx) error {
		var err error
		out, err = c.updateFileTx(tx, dn, name, version, upd, op)
		return err
	})
	if err != nil {
		return File{}, err
	}
	return out, nil
}

// updateFileTx applies a static-attribute update inside an open transaction.
func (c *Catalog) updateFileTx(tx *sqldb.Tx, dn, name string, version int, upd FileUpdate, op opSettings) (File, error) {
	f, err := c.getFileQ(tx, dn, name, version)
	if err != nil {
		return File{}, err
	}
	if err := c.requireFileQ(tx, dn, &f, PermWrite); err != nil {
		return File{}, err
	}
	set := ""
	var args []sqldb.Value
	add := func(col string, v sqldb.Value) {
		if set != "" {
			set += ", "
		}
		set += col + " = ?"
		args = append(args, v)
	}
	if upd.DataType != nil {
		add("data_type", sqldb.Text(*upd.DataType))
		f.DataType = *upd.DataType
	}
	if upd.Valid != nil {
		add("valid", sqldb.Bool(*upd.Valid))
		f.Valid = *upd.Valid
	}
	if upd.ContainerID != nil {
		add("container_id", sqldb.Text(*upd.ContainerID))
		f.ContainerID = *upd.ContainerID
	}
	if upd.ContainerService != nil {
		add("container_service", sqldb.Text(*upd.ContainerService))
		f.ContainerService = *upd.ContainerService
	}
	if upd.MasterCopy != nil {
		add("master_copy", sqldb.Text(*upd.MasterCopy))
		f.MasterCopy = *upd.MasterCopy
	}
	if set == "" {
		return f, nil
	}
	now := c.now()
	add("last_modifier", sqldb.Text(dn))
	add("modified", now)
	f.LastModifier = dn
	f.Modified = now.Time()
	args = append(args, sqldb.Int(f.ID))
	if _, err := tx.Exec("UPDATE logical_file SET "+set+" WHERE id = ?", args...); err != nil {
		return File{}, err
	}
	if f.Audited {
		if err := c.auditTx(tx, ObjectFile, f.ID, "update", dn, "static attributes", op.requestID); err != nil {
			return File{}, err
		}
	}
	return f, nil
}

// InvalidateFile clears the valid flag, the paper's fast mechanism for a
// virtual organization to mark data as bad without deleting its metadata.
func (c *Catalog) InvalidateFile(dn, name string, version int) error {
	valid := false
	_, err := c.UpdateFile(dn, name, version, FileUpdate{Valid: &valid})
	return err
}

// DeleteFile removes a logical file and everything hanging off it:
// user-defined attributes, annotations, provenance, ACL entries and view
// memberships.
func (c *Catalog) DeleteFile(dn, name string, version int, opts ...OpOption) error {
	op := applyOpOptions(opts)
	return c.withReplay(op, "deleteFile", nil, func(tx *sqldb.Tx) error {
		_, err := c.deleteFileTx(tx, dn, name, version, op)
		return err
	})
}

// deleteFileTx applies a file delete inside an open transaction and returns
// the deleted file's ID.
func (c *Catalog) deleteFileTx(tx *sqldb.Tx, dn, name string, version int, op opSettings) (int64, error) {
	f, err := c.getFileQ(tx, dn, name, version)
	if err != nil {
		return 0, err
	}
	if err := c.requireFileQ(tx, dn, &f, PermDelete); err != nil {
		return 0, err
	}
	id := sqldb.Int(f.ID)
	ft := sqldb.Text(string(ObjectFile))
	if _, err := tx.Exec("DELETE FROM logical_file WHERE id = ?", id); err != nil {
		return 0, err
	}
	for _, stmt := range []string{
		"DELETE FROM user_attribute WHERE object_type = ? AND object_id = ?",
		"DELETE FROM annotation WHERE object_type = ? AND object_id = ?",
		"DELETE FROM acl WHERE object_type = ? AND object_id = ?",
		"DELETE FROM view_member WHERE object_type = ? AND object_id = ?",
	} {
		if _, err := tx.Exec(stmt, ft, id); err != nil {
			return 0, err
		}
	}
	if _, err := tx.Exec("DELETE FROM provenance WHERE file_id = ?", id); err != nil {
		return 0, err
	}
	if f.Audited {
		if err := c.auditTx(tx, ObjectFile, f.ID, "delete", dn, f.Name, op.requestID); err != nil {
			return 0, err
		}
	}
	return f.ID, nil
}

// MoveFile reassigns a file to a different logical collection ("" removes it
// from its collection). The paper's single-collection rule is preserved.
func (c *Catalog) MoveFile(dn, name string, version int, collection string, opts ...OpOption) error {
	op := applyOpOptions(opts)
	f, err := c.GetFile(dn, name, version)
	if err != nil {
		return err
	}
	if err := c.requireFile(dn, &f, PermWrite); err != nil {
		return err
	}
	var newID int64
	if collection != "" {
		col, err := c.GetCollection(dn, collection)
		if err != nil {
			return err
		}
		if err := c.requireObject(dn, ObjectCollection, col.ID, PermWrite); err != nil {
			return err
		}
		newID = col.ID
	}
	return c.withReplay(op, "moveFile", nil, func(tx *sqldb.Tx) error {
		_, err := tx.Exec("UPDATE logical_file SET collection_id = ?, last_modifier = ?, modified = ? WHERE id = ?",
			nullableID(newID), sqldb.Text(dn), c.now(), sqldb.Int(f.ID))
		return err
	})
}
