package core

// OpOption tunes a single catalog operation. The audited write operations
// accept options so transport layers can attach correlation metadata (the
// SOAP dispatch loop passes the per-call request ID) without widening every
// core signature; plain embedded use passes none.
type OpOption func(*opSettings)

// opSettings collects the effective per-operation options.
type opSettings struct {
	requestID string
	idemKey   string
}

// WithRequestID attaches a request correlation ID to any audit record the
// operation writes, so a slow or suspect call found in the slow-op log or
// in client traces can be matched to its audit-trail entry.
func WithRequestID(id string) OpOption {
	return func(o *opSettings) { o.requestID = id }
}

// WithIdempotencyKey attaches a client-chosen deduplication key to a
// mutating operation. The first call with a given key applies the write and
// records its result; any repeat of the same key (a retry whose original
// attempt did commit but whose reply was lost) returns the recorded result
// without re-applying — including audit records, which belong to the same
// transaction. Keys live in a bounded replay cache (see ReplayCacheBound);
// the empty key disables replay protection.
func WithIdempotencyKey(key string) OpOption {
	return func(o *opSettings) { o.idemKey = key }
}

// applyOpOptions folds opts into a settings value.
func applyOpOptions(opts []OpOption) opSettings {
	var s opSettings
	for _, fn := range opts {
		fn(&s)
	}
	return s
}
