package core

// OpOption tunes a single catalog operation. The audited write operations
// accept options so transport layers can attach correlation metadata (the
// SOAP dispatch loop passes the per-call request ID) without widening every
// core signature; plain embedded use passes none.
type OpOption func(*opSettings)

// opSettings collects the effective per-operation options.
type opSettings struct {
	requestID string
}

// WithRequestID attaches a request correlation ID to any audit record the
// operation writes, so a slow or suspect call found in the slow-op log or
// in client traces can be matched to its audit-trail entry.
func WithRequestID(id string) OpOption {
	return func(o *opSettings) { o.requestID = id }
}

// applyOpOptions folds opts into a settings value.
func applyOpOptions(opts []OpOption) opSettings {
	var s opSettings
	for _, fn := range opts {
		fn(&s)
	}
	return s
}
