package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestCatalogSnapshotRestore(t *testing.T) {
	c := openCatalog(t)
	c.DefineAttribute(alice, "band", AttrString, "")       //nolint:errcheck
	c.CreateCollection(alice, CollectionSpec{Name: "col"}) //nolint:errcheck
	c.CreateFile(alice, FileSpec{
		Name: "f1", Collection: "col",
		Attributes: []Attribute{{Name: "band", Value: String("high")}},
		Provenance: "made by test",
		Audited:    true,
	}) //nolint:errcheck
	c.Annotate(bob, ObjectFile, "f1", "note") //nolint:errcheck

	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(Options{}, &buf)
	if err != nil {
		t.Fatal(err)
	}

	// Everything survives: file, collection membership, attributes,
	// provenance, annotations, audit, and the attribute definitions.
	f, err := restored.GetFile(alice, "f1", 0)
	if err != nil || f.CollectionID == 0 {
		t.Fatalf("restored file = %+v, %v", f, err)
	}
	names, err := restored.RunQuery(alice, Query{Predicates: []Predicate{
		{Attribute: "band", Op: OpEq, Value: String("high")},
	}})
	if err != nil || len(names) != 1 {
		t.Fatalf("restored query = %v, %v", names, err)
	}
	if recs, _ := restored.Provenance(alice, "f1", 0); len(recs) != 1 {
		t.Fatal("provenance lost")
	}
	if anns, _ := restored.Annotations(alice, ObjectFile, "f1"); len(anns) != 1 {
		t.Fatal("annotations lost")
	}
	if audit, _ := restored.AuditLog(alice, ObjectFile, "f1"); len(audit) != 1 {
		t.Fatal("audit lost")
	}
	// New writes continue cleanly (autoincrement, uniqueness intact).
	if _, err := restored.CreateFile(alice, FileSpec{Name: "f2", Collection: "col"}); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.CreateCollection(alice, CollectionSpec{Name: "col"}); err == nil {
		t.Fatal("unique collection name lost across restore")
	}
}

func TestRestoreKeepsAuthorization(t *testing.T) {
	c := openAuthzCatalog(t)
	if err := c.Grant(admin, ObjectService, "", alice, PermCreate); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateFile(alice, FileSpec{Name: "af"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(Options{Owner: admin, EnforceAuthz: true}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Alice's service grant survived; Bob still has nothing.
	if _, err := restored.CreateFile(alice, FileSpec{Name: "af2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.CreateFile(bob, FileSpec{Name: "bf"}); !errors.Is(err, ErrDenied) {
		t.Fatalf("bob create err = %v", err)
	}
	if _, err := restored.GetFile(bob, "af", 0); !errors.Is(err, ErrDenied) {
		t.Fatalf("bob read err = %v", err)
	}
}

func TestRestoreRejectsNonMCSSnapshot(t *testing.T) {
	if _, err := Restore(Options{}, strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}
