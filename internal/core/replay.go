package core

import (
	"encoding/json"
	"fmt"

	"mcs/internal/sqldb"
)

// ReplayCacheBound is how many completed-mutation records the replay cache
// retains. Each record is one (idempotency key, action, JSON result) row;
// at the default client retry window (a few seconds) a server would need a
// sustained multi-thousand-writes-per-second mutation rate before a live
// retry could find its key already pruned — and a pruned key simply
// re-applies, which is the pre-idempotency behavior, not a new failure
// mode.
const ReplayCacheBound = 4096

// replayTableDDL creates the replay cache. IF NOT EXISTS makes it double as
// the upgrade path for snapshots taken before the table existed (Restore
// runs it after loading).
const replayTableDDL = `CREATE TABLE IF NOT EXISTS replay_cache (
	id INTEGER PRIMARY KEY AUTOINCREMENT,
	idem_key TEXT NOT NULL UNIQUE,
	action TEXT NOT NULL,
	result TEXT,
	at DATETIME NOT NULL
)`

// replayGetTx looks key up in the replay cache inside tx. On a hit the
// recorded result is decoded into out (when both are non-nil) and the
// caller must skip re-applying the mutation. Reusing a key for a different
// action is rejected: it means two distinct logical calls chose the same
// key, and replaying either answer for the other would corrupt the caller.
func (c *Catalog) replayGetTx(tx *sqldb.Tx, key, action string, out any) (bool, error) {
	rows, err := tx.Query("SELECT action, result FROM replay_cache WHERE idem_key = ?", sqldb.Text(key))
	if err != nil {
		return false, err
	}
	if len(rows.Data) == 0 {
		return false, nil
	}
	rec := rows.Data[0]
	if rec[0].S != action {
		return false, fmt.Errorf("%w: idempotency key %q was already used for %s",
			ErrInvalidInput, key, rec[0].S)
	}
	if out != nil && rec[1].S != "" {
		if err := json.Unmarshal([]byte(rec[1].S), out); err != nil {
			return false, fmt.Errorf("%w: replay record for key %q: %v", ErrInvalidInput, key, err)
		}
	}
	c.replayHits.Add(1)
	return true, nil
}

// replayPutTx records a completed mutation's result under key and prunes
// the cache down to ReplayCacheBound entries. It runs in the mutation's own
// transaction, so the write, its audit records and its replay record commit
// or roll back together.
func (c *Catalog) replayPutTx(tx *sqldb.Tx, key, action string, result any) error {
	blob := ""
	if result != nil {
		b, err := json.Marshal(result)
		if err != nil {
			return fmt.Errorf("%w: encoding replay record: %v", ErrInvalidInput, err)
		}
		blob = string(b)
	}
	res, err := tx.Exec("INSERT INTO replay_cache (idem_key, action, result, at) VALUES (?, ?, ?, ?)",
		sqldb.Text(key), sqldb.Text(action), sqldb.Text(blob), c.now())
	if err != nil {
		return err
	}
	if cutoff := res.LastInsertID - ReplayCacheBound; cutoff > 0 {
		if _, err := tx.Exec("DELETE FROM replay_cache WHERE id <= ?", sqldb.Int(cutoff)); err != nil {
			return err
		}
	}
	return nil
}

// withReplay runs a mutating transaction body under idempotency-key replay
// protection. With a key set, a repeated call is answered from the cache
// (decoded into out) without running fn again; a first call runs fn and, on
// success, records out in the same transaction. Without a key it is plain
// db.Update.
func (c *Catalog) withReplay(op opSettings, action string, out any, fn func(tx *sqldb.Tx) error) error {
	return c.db.Update(func(tx *sqldb.Tx) error {
		if op.idemKey != "" {
			if hit, err := c.replayGetTx(tx, op.idemKey, action, out); hit || err != nil {
				return err
			}
		}
		if err := fn(tx); err != nil {
			return err
		}
		if op.idemKey != "" {
			return c.replayPutTx(tx, op.idemKey, action, out)
		}
		return nil
	})
}

// replayedEarly reports whether key has already answered action. Ops whose
// precondition reads are destroyed by their own first application (deleting
// an object removes the row the permission check needs) call this before
// those reads; withReplay still performs the authoritative in-transaction
// check for the apply path.
func (c *Catalog) replayedEarly(op opSettings, action string, out any) (bool, error) {
	if op.idemKey == "" {
		return false, nil
	}
	var hit bool
	err := c.db.Update(func(tx *sqldb.Tx) error {
		var err error
		hit, err = c.replayGetTx(tx, op.idemKey, action, out)
		return err
	})
	return hit, err
}

// ReplayHits reports how many mutations were answered from the replay cache
// instead of re-applied (diagnostic; exposed on /statz).
func (c *Catalog) ReplayHits() int64 { return c.replayHits.Load() }
